// Benchmarks regenerating the paper's evaluation (one per figure plus
// the §6.2 resource calculation and the DESIGN.md ablations). Each
// benchmark runs the corresponding experiment at a reduced simulated
// window and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. cmd/harmonia-bench runs the same
// experiments at full scale with the complete series.
package harmonia

import (
	"testing"

	"harmonia/internal/dataplane"
	"harmonia/internal/experiments"
	"harmonia/internal/model"
)

// benchScale keeps the full -bench=. sweep within a few minutes.
const benchScale experiments.Scale = 0.2

// lastPoint returns a series' final Y value.
func lastPoint(s experiments.Series) float64 {
	return s.Points[len(s.Points)-1].Y
}

func BenchmarkFig5aReadLatencyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig5a(benchScale)
		// Report the achieved throughput at the highest offered load.
		b.ReportMetric(maxAchieved(series[0]), "CR_MRPS")
		b.ReportMetric(maxAchieved(series[1]), "Harmonia_MRPS")
	}
}

func BenchmarkFig5bWriteLatencyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig5b(benchScale)
		b.ReportMetric(maxAchieved(series[0]), "CR_MRPS")
		b.ReportMetric(maxAchieved(series[1]), "Harmonia_MRPS")
	}
}

func maxAchieved(s experiments.Series) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

func BenchmarkFig6aReadVsWriteRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig6a(benchScale)
		b.ReportMetric(series[0].Points[0].Y, "CR_reads_at_low_writes_MRPS")
		b.ReportMetric(series[1].Points[0].Y, "Harmonia_reads_at_low_writes_MRPS")
	}
}

func BenchmarkFig6bThroughputVsWriteRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig6b(benchScale)
		b.ReportMetric(series[1].Points[0].Y, "Harmonia_readonly_MRPS")
		b.ReportMetric(lastPoint(series[1]), "Harmonia_writeonly_MRPS")
	}
}

func BenchmarkFig7aScalabilityReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig7(benchScale, 0)
		b.ReportMetric(lastPoint(series[0]), "CR_at_10_replicas_MRPS")
		b.ReportMetric(lastPoint(series[1]), "Harmonia_at_10_replicas_MRPS")
		b.ReportMetric(lastPoint(series[1])/lastPoint(series[0]), "speedup")
	}
}

func BenchmarkFig7bScalabilityWriteOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig7(benchScale, 1)
		b.ReportMetric(lastPoint(series[0]), "CR_at_10_replicas_MRPS")
		b.ReportMetric(lastPoint(series[1]), "Harmonia_at_10_replicas_MRPS")
	}
}

func BenchmarkFig7cScalabilityMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig7(benchScale, 0.05)
		b.ReportMetric(lastPoint(series[1]), "Harmonia_at_10_replicas_MRPS")
		b.ReportMetric(lastPoint(series[1])/lastPoint(series[0]), "speedup")
	}
}

func BenchmarkFig8SwitchMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig8(benchScale)
		b.ReportMetric(series[0].Points[0].Y, "uniform_4slots_MRPS")
		b.ReportMetric(lastPoint(series[0]), "uniform_64Kslots_MRPS")
		b.ReportMetric(series[1].Points[0].Y, "zipf_4slots_MRPS")
		b.ReportMetric(lastPoint(series[1]), "zipf_64Kslots_MRPS")
	}
}

func BenchmarkFig9aPrimaryBackupFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig9(benchScale, "pb")
		for _, s := range series {
			b.ReportMetric(s.Points[0].Y, s.Name+"_reads_MRPS")
		}
	}
}

func BenchmarkFig9bQuorumFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig9(benchScale, "quorum")
		for _, s := range series {
			b.ReportMetric(s.Points[0].Y, s.Name+"_reads_MRPS")
		}
	}
}

func BenchmarkFig10SwitchFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig10(0.5)
		pre, minDuring, post := 0.0, 1e18, 0.0
		n := len(s.Points)
		for j, p := range s.Points {
			switch {
			case j < n/5:
				if p.Y > pre {
					pre = p.Y
				}
			case j < n/2:
				if p.Y < minDuring {
					minDuring = p.Y
				}
			default:
				if p.Y > post {
					post = p.Y
				}
			}
		}
		b.ReportMetric(pre, "pre_failure_MRPS")
		b.ReportMetric(minDuring, "outage_MRPS")
		b.ReportMetric(post, "recovered_MRPS")
	}
}

func BenchmarkResourceModel(b *testing.B) {
	r := dataplane.PaperExample()
	for i := 0; i < b.N; i++ {
		_ = r.TotalRate()
	}
	b.ReportMetric(r.WriteRate()/1e6, "write_MRPS")
	b.ReportMetric(r.TotalRate()/1e9, "total_BRPS")
	b.ReportMetric(r.MemoryBytes()/1e6, "memory_MB")
}

func BenchmarkAblationEagerCompletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationEagerCompletions(0.4)
		b.ReportMetric(s[0].Points[0].Y, "delayed_rejected_pct")
		b.ReportMetric(s[1].Points[0].Y, "eager_rejected_pct")
	}
}

func BenchmarkAblationNoCleanup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationLazyCleanup(benchScale)
		b.ReportMetric(s[0].Points[0].Y, "cleanup_on_MRPS")
		b.ReportMetric(s[1].Points[0].Y, "cleanup_off_MRPS")
	}
}

func BenchmarkAblationStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationStages(benchScale)
		b.ReportMetric(s[0].Points[0].Y, "one_stage_MRPS")
		b.ReportMetric(s[1].Points[0].Y, "three_stages_MRPS")
	}
}

// BenchmarkModelChecker exercises the Appendix-B specification check —
// not a paper figure, but the correctness-budget companion to the
// performance ones.
func BenchmarkModelChecker(b *testing.B) {
	states := 0
	for i := 0; i < b.N; i++ {
		res := model.Check(model.Config{
			DataItems: 1, Replicas: 2, Switches: 1,
			MaxWrites: 2, MaxReads: 2, ReadBehind: true,
		})
		if res.Violation {
			b.Fatal("spec violated")
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// Example-style smoke check that the headline ratio prints in bench
// output even under -bench=. -benchtime=1x.
func BenchmarkHeadline10x(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig7(benchScale, 0)
		cr, h := lastPoint(series[0]), lastPoint(series[1])
		if h < 4*cr {
			b.Fatalf("scaling regression: CR=%.2f Harmonia=%.2f", cr, h)
		}
		b.ReportMetric(h/cr, "x_speedup_at_10_replicas")
	}
}
