// Hetero: a heterogeneous topology. One hot 7-replica Harmonia(CR)
// shard runs next to two cold 3-replica NOPaxos shards in a 2-switch
// rack. Capacity weights — derived from each group's calibrated
// service rate — size the slot shards and steer the pinned client
// pool, so the big shard earns roughly half the rack instead of a
// uniform third. The demo shows (1) the weighted layout and derived
// weights, (2) the weighted rack beating the same hardware
// misconfigured as uniform, and (3) a slot migrating from the CR shard
// into a NOPaxos shard — the cross-protocol handoff as routine
// topology maintenance — with the history staying linearizable.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	specs := []harmonia.GroupSpec{
		{Protocol: harmonia.ChainReplication, Replicas: 7},
		{Protocol: harmonia.NOPaxos, Replicas: 3},
		{Protocol: harmonia.NOPaxos, Replicas: 3},
	}
	build := func(uniform bool, record bool) *harmonia.Cluster {
		gs := append([]harmonia.GroupSpec(nil), specs...)
		if uniform {
			for i := range gs {
				gs[i].Weight = 1 // misconfiguration: every group "equal"
			}
		}
		c, err := harmonia.New(harmonia.Config{
			UseHarmonia: true, GroupSpecs: gs, Switches: 2,
			Seed: 42, RecordHistory: record,
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Phase 1: the weighted topology.
	c := build(false, false)
	fmt.Println("heterogeneous rack:")
	share := make([]int, c.Groups())
	for _, g := range c.SlotTable() {
		share[g]++
	}
	for g, sp := range c.GroupSpecs() {
		fmt.Printf("  group %d: %-8v ×%d  weight=%.2fM ops/s  slots=%d\n",
			g, sp.Protocol, sp.Replicas, sp.Weight/1e6, share[g])
	}

	// Phase 2: weighted vs uniform misconfiguration, same hardware.
	spec := harmonia.LoadSpec{
		Clients: 288, Duration: 15 * time.Millisecond,
		WriteRatio: 0.05, Keys: 100000, PinGroups: true,
	}
	uni := build(true, false).Run(spec)
	het := c.Run(spec)
	fmt.Printf("\nuniform misconfigured: %6.2f MOPS (GroupOps %v)\n", uni.Throughput/1e6, uni.GroupOps)
	fmt.Printf("hetero weighted:       %6.2f MOPS (GroupOps %v)\n", het.Throughput/1e6, het.GroupOps)
	fmt.Printf("speedup: %.2f×\n", het.Throughput/uni.Throughput)

	// Phase 3: cross-protocol migration as steady state, verified.
	v := build(false, true)
	cl := v.Client()
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("user:%04d", i)
		if v.GroupOf(k) == 0 {
			key = k
			break
		}
	}
	if err := cl.Set(key, nil); err != nil {
		log.Fatal(err)
	}
	slot := v.SlotOfKey(key)
	if err := v.MigrateSlot(slot, 1); err != nil {
		log.Fatal(err)
	}
	if _, ok, err := cl.Get(key); err != nil || !ok {
		log.Fatalf("migrated key unreadable: %v %v", ok, err)
	}
	fmt.Printf("\nslot %d migrated CR×7 → NOPaxos×3; key %q now served by group %d\n",
		slot, key, v.GroupOf(key))
	for g := 0; g < v.Groups(); g++ {
		res := v.CheckLinearizabilityGroup(g)
		fmt.Printf("  group %d linearizable: %v\n", g, res.Ok && res.Decided)
	}
}
