// Rebalance: online slot migration between replica groups. The switch
// front-end routes every key through a slot → group table
// (harmonia.NumSlots slots); MigrateSlot moves one slot to another
// group with the §5.3-style handoff — freeze the slot, drain the
// source group's dirty set, copy the slot's objects, flip the route —
// while the rest of the cluster keeps serving. Here a "tenant" whose
// keys landed on three different groups is consolidated onto one, and
// then spread back, without ever losing a value.
//
// The throughput side of the story (a pinned zipf hot spot collapsing
// the aggregate, then recovering ≥1.5× once its slots migrate away) is
// Figure R: `go run ./cmd/harmonia-bench -fig R`.
package main

import (
	"fmt"
	"log"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
		Groups:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl := c.Client()

	// A tenant's keys, scattered over the groups by the default slot
	// striping.
	keys := []string{
		"tenant42:profile", "tenant42:cart", "tenant42:orders",
		"tenant42:billing", "tenant42:sessions",
	}
	for _, k := range keys {
		if err := cl.Set(k, []byte("v-"+k)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("before rebalancing:")
	for _, k := range keys {
		fmt.Printf("  %-18s slot %3d → group %d\n", k, c.SlotOfKey(k), c.GroupOf(k))
	}

	// Consolidate: move every slot the tenant touches onto group 0.
	moved := map[int]bool{}
	for _, k := range keys {
		slot := c.SlotOfKey(k)
		if moved[slot] {
			continue
		}
		moved[slot] = true
		if err := c.MigrateSlot(slot, 0); err != nil {
			log.Fatalf("migrate slot %d: %v", slot, err)
		}
	}
	fmt.Printf("\nafter consolidating %d slots onto group 0:\n", len(moved))
	for _, k := range keys {
		v, ok, err := cl.Get(k)
		if err != nil || !ok {
			log.Fatalf("lost %q across the migration: %v", k, err)
		}
		fmt.Printf("  %-18s group %d  value %q\n", k, c.GroupOf(k), v)
	}

	// The slot table is the observable routing authority.
	counts := make([]int, c.Groups())
	for _, g := range c.SlotTable() {
		counts[g]++
	}
	fmt.Printf("\nslot table occupancy: %v (of %d slots)\n", counts, harmonia.NumSlots)

	// Spread the tenant back out, round-robin, and write through again.
	i := 0
	for slot := range moved {
		if err := c.MigrateSlot(slot, i%c.Groups()); err != nil {
			log.Fatalf("migrate slot %d back: %v", slot, err)
		}
		i++
	}
	for _, k := range keys {
		if err := cl.Set(k, []byte("v2-"+k)); err != nil {
			log.Fatal(err)
		}
		if v, ok, _ := cl.Get(k); !ok || string(v) != "v2-"+k {
			log.Fatalf("stale read of %q after second migration", k)
		}
	}
	fmt.Println("\nspread back, all keys re-written and re-read — no value lost.")
	st := c.SwitchStats()
	fmt.Printf("switch: %d writes, %d fast reads, %d frozen-slot drops during handoffs\n",
		st.Writes, st.FastReads, st.FrozenDrops)
}
