// Autorebalance: the cluster heals a hot shard on its own. Three empty
// replica groups have just been added to a rack whose 256 routing
// slots all still live on group 0 (the classic scale-out moment), and
// a heavy-tailed zipf-1.2 workload is hammering it. With
// Config.AutoRebalance on, the switch front-end's per-slot heat
// counters — the same register-array trick the paper uses for conflict
// state, applied to load — feed a control loop that detects the
// imbalance and migrates batches of hot slots to the cooler groups,
// with hysteresis and a move-cost veto so it never thrashes. No
// offline zipf knowledge, no operator: the only inputs are switch
// registers.
//
// The measured version of this story is Figure A:
// `go run ./cmd/harmonia-bench -fig A`.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:      harmonia.ChainReplication,
		Replicas:      3,
		UseHarmonia:   true,
		Groups:        4,
		AutoRebalance: true,
		Seed:          61,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The scale-out moment: every slot still routed to group 0, the
	// other groups idle. One batch call consolidates the whole table
	// (one freeze window and one bulk copy per source group — this is
	// MigrateSlots amortizing what 256 MigrateSlot calls would pay
	// individually).
	all := make([]int, harmonia.NumSlots)
	for s := range all {
		all[s] = s
	}
	if err := c.MigrateSlots(all, 0); err != nil {
		log.Fatal(err)
	}
	occ := func() []int {
		counts := make([]int, c.Groups())
		for _, g := range c.SlotTable() {
			counts[g]++
		}
		return counts
	}
	fmt.Printf("scale-out start: slot occupancy %v — everything on group 0\n\n", occ())

	// Drive a closed loop and let the control loop work.
	spec := harmonia.LoadSpec{
		Clients: 128, Duration: 15 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.05, Keys: 64, Dist: harmonia.Zipf12,
	}
	c.Run(spec) // convergence window: the loop finds and moves the hot slots
	after := c.Run(spec)

	// The counterfactual: an identical cluster that keeps the skewed
	// placement (no rebalancer).
	static, err := harmonia.New(harmonia.Config{
		Protocol: harmonia.ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := static.MigrateSlots(all, 0); err != nil {
		log.Fatal(err)
	}
	base := static.Run(spec)

	fmt.Printf("aggregate throughput: %.2f MQPS static placement, %.2f MQPS auto-rebalanced (%.1fx)\n",
		base.Throughput/1e6, after.Throughput/1e6, after.Throughput/base.Throughput)
	fmt.Printf("rebalancer moved %d slots on its own; slot occupancy now %v\n\n", c.Rebalances(), occ())

	// The switch's own view: hottest slots by the heat registers, and
	// where they live now.
	heat := c.SlotHeat()
	table := c.SlotTable()
	type sh struct {
		slot  int
		total uint64
	}
	var ranked []sh
	for s, h := range heat {
		if h.Total() > 0 {
			ranked = append(ranked, sh{s, h.Total()})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].total > ranked[j].total })
	fmt.Println("hottest slots by switch heat registers (EWMA-decayed):")
	for i, r := range ranked {
		if i == 6 {
			break
		}
		fmt.Printf("  slot %3d  heat %6d  reads %6d  writes %4d  → group %d\n",
			r.slot, r.total, heat[r.slot].Reads, heat[r.slot].Writes, table[r.slot])
	}

	// Per-group share of the measured window: the head-of-line shard
	// is gone.
	fmt.Println("\nper-group completions in the converged window:")
	for g, ops := range after.GroupOps {
		fmt.Printf("  group %d: %d\n", g, ops)
	}
}
