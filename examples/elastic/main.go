// Elastic membership: the rack's topology as a live object. A
// two-switch rack of four chain groups grows to six under way
// (AddGroup seeds each newcomer a weight-fair, heat-aware slot share),
// re-specs a live group from 3-replica chain to 5-replica VR without
// moving a slot, retires a group (its slots, objects, and at-most-once
// client tables evacuate to the survivors), and finally recovers a
// permanently dead switch's entire shard from the victims' replica
// stores. Every value written at the start reads back at the end.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
		Groups:      4,
		Switches:    2,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl := c.Client()

	const n = 200
	for i := 0; i < n; i++ {
		if err := cl.Set(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("boot: groups=%v epoch=%d\n", c.LiveGroups(), c.TopologyEpoch())
	fmt.Printf("baseline: %.2f MRPS\n\n", load(c))

	// Scale out: two new groups, seeded online from the hottest donors.
	for i := 0; i < 2; i++ {
		g, err := c.AddGroup(harmonia.GroupSpec{Protocol: harmonia.ChainReplication})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("AddGroup -> group %d (switch %d), epoch=%d, slots=%v\n",
			g, c.SwitchOfGroup(g), c.TopologyEpoch(), slotShare(c))
	}
	fmt.Printf("after scale-out: %.2f MRPS\n\n", load(c))

	// Respec: group 1 becomes a 5-replica VR group in place — same ID,
	// same slots, fresh member set, sequence space continued.
	if err := c.RespecGroup(1, harmonia.GroupSpec{
		Protocol: harmonia.ViewstampedReplication, Replicas: 5,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RespecGroup(1): now %v\n", c.GroupSpecs()[1])

	// Scale in: group 2 retires; its slots and client tables land on
	// the survivors by capacity weight. The ID is never reused.
	if err := c.RemoveGroup(2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RemoveGroup(2): groups=%v epoch=%d slots=%v\n\n",
		c.LiveGroups(), c.TopologyEpoch(), slotShare(c))

	// A switch dies for good. Recover its whole shard from the victim
	// groups' replica stores onto the survivors.
	if err := c.CrashSwitch(1); err != nil {
		log.Fatal(err)
	}
	if err := c.ReassignDeadSwitch(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReassignDeadSwitch(1): groups=%v epoch=%d\n", c.LiveGroups(), c.TopologyEpoch())

	for i := 0; i < n; i++ {
		v, ok, err := cl.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			log.Fatalf("lost %s after the full elastic lifecycle: %q %v %v", key(i), v, ok, err)
		}
	}
	fmt.Printf("all %d values survived scale-out, respec, retirement, and switch death\n", n)
}

func key(i int) string { return fmt.Sprintf("user%04d", i) }

// load measures a short closed-loop window.
func load(c *harmonia.Cluster) float64 {
	rep := c.Run(harmonia.LoadSpec{
		Clients: 64 * len(c.LiveGroups()), Duration: 10 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.05, Keys: 10000,
	})
	return rep.Throughput / 1e6
}

// slotShare counts routing slots per live group.
func slotShare(c *harmonia.Cluster) map[int]int {
	share := map[int]int{}
	for _, g := range c.SlotTable() {
		share[g]++
	}
	return share
}
