// Sharding: the §6.1 multi-group deployment — one switch front-end,
// four replica groups, each owning a hash slice of the key space with
// its own scheduler partition (sequence number, dirty set,
// last-committed point). Aggregate throughput grows with the group
// count because the groups share nothing but the switch ASIC, and a
// replica crash degrades only its own shard.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func saturate(c *harmonia.Cluster, groups int) harmonia.Report {
	return c.Run(harmonia.LoadSpec{
		Clients:    128 * groups,
		Duration:   20 * time.Millisecond,
		Warmup:     4 * time.Millisecond,
		WriteRatio: 0.05, // the paper's default mix
		Keys:       100000,
		Dist:       harmonia.Zipf09,
		PinGroups:  true, // shard the client pool with the data
	})
}

func build(groups int) *harmonia.Cluster {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
		Groups:      groups,
		Seed:        int64(groups),
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	// 1. Near-linear aggregate scaling along the system-size axis.
	fmt.Println("aggregate throughput (MRPS), Harmonia(CR), 3 replicas per group, 5% writes, zipf-0.9")
	fmt.Printf("%-8s %12s %10s\n", "groups", "aggregate", "scaling")
	base := 0.0
	for _, g := range []int{1, 2, 4} {
		rep := saturate(build(g), g)
		if g == 1 {
			base = rep.Throughput
		}
		fmt.Printf("%-8d %11.2fM %9.1fx\n", g, rep.Throughput/1e6, rep.Throughput/base)
	}

	// 2. Keys route by hash; per-group counters show the shard split.
	c := build(4)
	rep := saturate(c, 4)
	fmt.Println("\nper-shard view of the same 4-group run:")
	for g, n := range rep.GroupOps {
		st := c.GroupSwitchStats(g)
		fmt.Printf("  group %d: %6d ops, %7d fast reads, %5d dirty hits\n",
			g, n, st.FastReads, st.DirtyHits)
	}
	fmt.Printf("key \"user:42\" lives in group %d\n", c.GroupOf("user:42"))

	// 3. Failure injection is group-scoped: crashing a replica in group
	// 2 leaves the other three shards untouched.
	if err := c.CrashReplicaInGroup(2, 1); err != nil {
		log.Fatal(err)
	}
	after := saturate(c, 4)
	fmt.Println("\nafter crashing replica 1 of group 2:")
	for g, n := range after.GroupOps {
		fmt.Printf("  group %d: %6d ops\n", g, n)
	}
	fmt.Println("only group 2 lost a fast-read server; the rest kept their capacity.")
}
