// Rack: the multi-switch deployment. Four switch front-ends — each an
// independent epoch/lease domain owning a contiguous quarter of the
// routing slots — front eight replica groups. The demo shows (1) the
// rack serving a sharded workload through all four switches, (2) a
// slot migrating ACROSS a switch boundary with its data, route, and
// heat accounting, and (3) one switch crashing and being replaced:
// only its shard stalls, only its epoch bumps, and the §5.3 agreement
// bill names only its own groups' replicas.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
		Groups:      8,
		Switches:    4,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rack: %d switches over %d groups\n", c.Switches(), c.Groups())
	for _, st := range c.RackStats().Switches {
		fmt.Printf("  switch epoch=%d groups=%v slots=%d\n", st.Epoch, st.Groups, st.OwnedSlots)
	}

	// Phase 1: sharded load through every switch domain.
	rep := c.Run(harmonia.LoadSpec{
		Clients: 256, Duration: 10 * time.Millisecond,
		WriteRatio: 0.05, Keys: 10000, PinGroups: true,
	})
	fmt.Printf("\nphase 1: healthy rack: %.2f Mops/s aggregate\n", rep.Throughput/1e6)
	for g, ops := range rep.GroupOps {
		fmt.Printf("  group %d (switch %d): %d ops\n", g, c.SwitchOfGroup(g), ops)
	}

	// Phase 2: migrate a slot across a switch boundary. Pick a slot on
	// switch 0 and send it to a group hosted on switch 3.
	cl := c.Client()
	key := "cross-switch-demo"
	slot := c.SlotOfKey(key)
	if c.SwitchOf(slot) != 0 {
		for i := 0; ; i++ {
			key = fmt.Sprintf("cross-switch-demo-%d", i)
			slot = c.SlotOfKey(key)
			if c.SwitchOf(slot) == 0 {
				break
			}
		}
	}
	if err := cl.Set(key, []byte("travels")); err != nil {
		log.Fatal(err)
	}
	dst := c.RackStats().Switches[3].Groups[0]
	fmt.Printf("\nphase 2: migrating slot %d: switch %d group %d -> switch %d group %d\n",
		slot, c.SwitchOf(slot), c.SlotTable()[slot], 3, dst)
	if err := c.MigrateSlots([]int{slot}, dst); err != nil {
		log.Fatal(err)
	}
	v, ok, err := cl.Get(key)
	if err != nil || !ok {
		log.Fatalf("key lost in cross-switch migration: %v %v", ok, err)
	}
	fmt.Printf("  slot now on switch %d, group %d; value %q intact\n",
		c.SwitchOf(slot), c.SlotTable()[slot], v)

	// Phase 3: crash switch 1 and keep the load running — only its
	// quarter of the slot space stalls. Then replace it and read the
	// agreement bill.
	if err := c.CrashSwitch(1); err != nil {
		log.Fatal(err)
	}
	rep = c.Run(harmonia.LoadSpec{
		Clients: 256, Duration: 10 * time.Millisecond,
		WriteRatio: 0.05, Keys: 10000, PinGroups: true,
	})
	fmt.Printf("\nphase 3: switch 1 crashed: %.2f Mops/s aggregate (its groups stall, rest serve)\n",
		rep.Throughput/1e6)
	for g, ops := range rep.GroupOps {
		fmt.Printf("  group %d (switch %d): %d ops\n", g, c.SwitchOfGroup(g), ops)
	}

	if err := c.ReactivateSwitch(1); err != nil {
		log.Fatal(err)
	}
	c.AdvanceTime(15 * time.Millisecond)
	fmt.Println("\nafter replacement:")
	for s, st := range c.RackStats().Switches {
		fmt.Printf("  switch %d: epoch=%d replacements=%d agreement msgs=%d (acks=%d) latency=%v stalled ops=%d\n",
			s, st.Epoch, st.Replacements, st.AgreementMsgs, st.AgreementAcks,
			st.LastAgreementLatency, st.StalledOps)
	}
	fmt.Println("\nonly switch 1's epoch advanced; its agreement bill is one revoke+ack")
	fmt.Println("per live replica of ITS two groups — the rack's size never enters it.")
}
