// Scaling: the paper's headline result (Fig. 7) in miniature — read
// throughput as the replica count grows from 2 to 6, chain replication
// with and without Harmonia. CR stays flat at one server's capacity
// because only the tail serves reads; Harmonia grows with every
// replica added.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func measure(replicas int, useHarmonia bool) float64 {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    replicas,
		UseHarmonia: useHarmonia,
		Seed:        int64(replicas),
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := c.Run(harmonia.LoadSpec{
		Clients:    96 * replicas,
		Duration:   25 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		WriteRatio: 0, // read-only, as in Fig. 7(a)
		Keys:       10000,
	})
	return rep.Throughput
}

func main() {
	fmt.Println("read-only throughput (MRPS), chain replication ± Harmonia")
	fmt.Printf("%-10s %10s %14s %8s\n", "replicas", "CR", "Harmonia(CR)", "speedup")
	for n := 2; n <= 6; n++ {
		cr := measure(n, false)
		h := measure(n, true)
		fmt.Printf("%-10d %10.2f %14.2f %7.1fx\n", n, cr/1e6, h/1e6, h/cr)
	}
	fmt.Println("\nCR is bounded by the tail server; Harmonia grows ~linearly,")
	fmt.Println("matching Fig. 7(a) of the paper (10x at 10 replicas on the testbed).")
}
