// Quickstart: build a 3-replica Harmonia(chain-replication) cluster,
// write and read a few keys, and show how the switch routed the reads
// (fast path to a random replica vs the normal protocol path).
package main

import (
	"fmt"
	"log"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl := c.Client()

	// Basic key-value usage.
	if err := cl.Set("user:42", []byte("ada lovelace")); err != nil {
		log.Fatal(err)
	}
	if err := cl.Set("user:43", []byte("alan turing")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := cl.Get("user:42")
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("user:42 = %q\n", v)

	// Read the same uncontended key a few times: with no pending
	// writes, the switch fast-paths each read to a random replica.
	for i := 0; i < 10; i++ {
		if _, _, err := cl.Get("user:43"); err != nil {
			log.Fatal(err)
		}
	}

	if err := cl.Delete("user:43"); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := cl.Get("user:43"); ok {
		log.Fatal("delete did not take")
	}

	st := c.SwitchStats()
	fmt.Printf("switch: %d writes sequenced, %d fast-path reads, %d normal-path reads (%d dirty hits)\n",
		st.Writes, st.FastReads, st.NormalReads, st.DirtyHits)
	fmt.Printf("dirty set now holds %d objects (all writes completed)\n", st.DirtySetSize)
}
