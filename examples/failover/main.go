// Failover: the §9.6 / Fig. 10 scenario. A mixed workload runs while
// the Harmonia switch is stopped and then reactivated with a new
// epoch and empty register state. Throughput drops to zero, recovers
// to the no-Harmonia level once the replacement switch forwards
// traffic, and returns to the full level after the first
// WRITE-COMPLETION of the new epoch re-enables single-replica reads.
// The recorded history is then checked for linearizability across the
// whole incident.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:      harmonia.ChainReplication,
		Replicas:      3,
		UseHarmonia:   true,
		RecordHistory: true,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The incident timeline is a compressed version of the paper's
	// 20s-stop / 25s-reactivate experiment. The public API injects
	// failures between runs, so the run splits into phases around it.
	spec := func(d time.Duration, bucket time.Duration) harmonia.LoadSpec {
		return harmonia.LoadSpec{
			Clients: 6, Duration: d, WriteRatio: 0.2, Keys: 64, Bucket: bucket,
		}
	}

	fmt.Println("phase 1: healthy (20ms)")
	r1 := c.Run(spec(20*time.Millisecond, 2*time.Millisecond))
	printSeries(r1)

	fmt.Println("phase 2: switch stopped (10ms) — all traffic blackholed")
	c.StopSwitch()
	r2 := c.Run(spec(10*time.Millisecond, 2*time.Millisecond))
	printSeries(r2)

	fmt.Println("phase 3: replacement switch, new epoch (20ms) — recovers")
	c.ReactivateSwitch()
	r3 := c.Run(spec(20*time.Millisecond, 2*time.Millisecond))
	printSeries(r3)
	c.AdvanceTime(10 * time.Millisecond)

	st := c.SwitchStats()
	fmt.Printf("\nswitch epoch now %d; fast reads after recovery: %d\n", st.Epoch, st.FastReads)

	res := c.CheckLinearizability()
	if !res.Decided {
		log.Fatalf("history too dense to check: %s", res.Reason)
	}
	if !res.Ok {
		log.Fatalf("LINEARIZABILITY VIOLATED: %s", res.Reason)
	}
	fmt.Printf("history of %d operations is linearizable across the failover\n", len(c.History()))
}

func printSeries(r harmonia.Report) {
	for _, p := range r.Series {
		bar := int(p.Rate / 20000)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  t+%5v %8.0f ops/s %s\n", p.Start, p.Rate, stars(bar))
	}
	fmt.Printf("  total: %d ops, %d retries\n", r.Ops, r.Retries)
}

func stars(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}
