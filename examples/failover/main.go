// Failover: the §9.6 / Fig. 10 scenario. A mixed workload runs while
// the Harmonia switch is stopped and then reactivated with a new
// epoch and empty register state. Throughput drops to zero, recovers
// to the no-Harmonia level once the replacement switch forwards
// traffic, and returns to the full level after the first
// WRITE-COMPLETION of the new epoch re-enables single-replica reads.
// The recorded history is then checked for linearizability across the
// whole incident.
//
// The second half replays the incident on a multi-switch rack: there,
// rebooting one switch stalls only its own slot shard — the other
// switches' slots keep serving fast single-replica reads throughout,
// because each switch is its own epoch/lease domain and the §5.3
// agreement only touches the replaced switch's groups.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	singleSwitchIncident()
	multiSwitchIncident()
}

func singleSwitchIncident() {
	fmt.Println("=== single-switch rack: the §9.6 incident ===")
	c, err := harmonia.New(harmonia.Config{
		Protocol:      harmonia.ChainReplication,
		Replicas:      3,
		UseHarmonia:   true,
		RecordHistory: true,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The incident timeline is a compressed version of the paper's
	// 20s-stop / 25s-reactivate experiment. The public API injects
	// failures between runs, so the run splits into phases around it.
	spec := func(d time.Duration, bucket time.Duration) harmonia.LoadSpec {
		return harmonia.LoadSpec{
			Clients: 6, Duration: d, WriteRatio: 0.2, Keys: 64, Bucket: bucket,
		}
	}

	fmt.Println("phase 1: healthy (20ms)")
	r1 := c.Run(spec(20*time.Millisecond, 2*time.Millisecond))
	printSeries(r1)

	fmt.Println("phase 2: switch stopped (10ms) — all traffic blackholed")
	c.StopSwitch()
	r2 := c.Run(spec(10*time.Millisecond, 2*time.Millisecond))
	printSeries(r2)

	fmt.Println("phase 3: replacement switch, new epoch (20ms) — recovers")
	c.ReactivateSwitch()
	r3 := c.Run(spec(20*time.Millisecond, 2*time.Millisecond))
	printSeries(r3)
	c.AdvanceTime(10 * time.Millisecond)

	st := c.SwitchStats()
	fmt.Printf("\nswitch epoch now %d; fast reads after recovery: %d\n", st.Epoch, st.FastReads)

	res := c.CheckLinearizability()
	if !res.Decided {
		log.Fatalf("history too dense to check: %s", res.Reason)
	}
	if !res.Ok {
		log.Fatalf("LINEARIZABILITY VIOLATED: %s", res.Reason)
	}
	fmt.Printf("history of %d operations is linearizable across the failover\n\n", len(c.History()))
}

// multiSwitchIncident reboots ONE switch of a 4-switch rack under the
// same mixed workload: the other three shards never stop serving —
// their fast-read counters keep climbing right through the incident —
// and every group's history stays linearizable.
func multiSwitchIncident() {
	fmt.Println("=== multi-switch rack: reboot one of four switches ===")
	c, err := harmonia.New(harmonia.Config{
		Protocol:      harmonia.ChainReplication,
		Replicas:      3,
		UseHarmonia:   true,
		Groups:        8,
		Switches:      4,
		RecordHistory: true,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := harmonia.LoadSpec{
		Clients: 16, Duration: 15 * time.Millisecond,
		WriteRatio: 0.2, Keys: 256, PinGroups: true,
	}

	fastReadsOnHealthySwitches := func() uint64 {
		var n uint64
		for g := 0; g < c.Groups(); g++ {
			if c.SwitchOfGroup(g) != 1 {
				n += c.GroupSwitchStats(g).FastReads
			}
		}
		return n
	}

	r1 := c.Run(spec)
	before := fastReadsOnHealthySwitches()
	fmt.Printf("phase 1: healthy: %d ops\n", r1.Ops)

	if err := c.CrashSwitch(1); err != nil {
		log.Fatal(err)
	}
	r2 := c.Run(spec)
	during := fastReadsOnHealthySwitches()
	fmt.Printf("phase 2: switch 1 down: %d ops — only its quarter of the slots stalls\n", r2.Ops)
	fmt.Printf("         fast reads on the OTHER switches kept flowing: %d -> %d\n", before, during)
	if during <= before {
		log.Fatal("healthy switches stopped serving fast reads during the reboot")
	}

	if err := c.ReactivateSwitch(1); err != nil {
		log.Fatal(err)
	}
	r3 := c.Run(spec)
	fmt.Printf("phase 3: switch 1 replaced (epoch %d): %d ops\n",
		c.RackStats().Switches[1].Epoch, r3.Ops)
	st := c.RackStats().Switches[1]
	fmt.Printf("         agreement: %d msgs (%d acks = live replicas of ITS groups), latency %v\n",
		st.AgreementMsgs, st.AgreementAcks, st.LastAgreementLatency)

	c.AdvanceTime(10 * time.Millisecond)
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			log.Fatalf("group %d history too dense to check: %s", g, res.Reason)
		}
		if !res.Ok {
			log.Fatalf("LINEARIZABILITY VIOLATED in group %d: %s", g, res.Reason)
		}
	}
	fmt.Printf("all %d groups' histories are linearizable across the one-switch reboot\n", c.Groups())
}

func printSeries(r harmonia.Report) {
	for _, p := range r.Series {
		bar := int(p.Rate / 20000)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  t+%5v %8.0f ops/s %s\n", p.Start, p.Rate, stars(bar))
	}
	fmt.Printf("  total: %d ops, %d retries\n", r.Ops, r.Retries)
}

func stars(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}
