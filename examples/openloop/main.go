// Openloop: the latency-vs-throughput methodology on a sharded rack.
// A 2:1 capacity-weighted two-group cluster is driven by an open-loop
// Poisson stream (Rate > 0 selects open loop) swept from light load to
// past saturation. PinGroups makes each arrival draw a replica group
// in proportion to its weight and then a shard-local key, so the big
// shard is offered twice the work — Report.GroupOffered shows the
// realized split. Mean latency stays flat until the offered rate
// approaches the rack's capacity, then the tail blows up: the same
// knee as the paper's latency-vs-throughput figures, and the shape the
// tracked Figure P snapshot (bench/BENCH_figP.json) records for the
// 4-switch rack.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		UseHarmonia: true, Seed: 7,
		GroupSpecs: []harmonia.GroupSpec{
			{Protocol: harmonia.ChainReplication, Replicas: 3, Weight: 2},
			{Protocol: harmonia.NOPaxos, Replicas: 3, Weight: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("open-loop sweep, 2-group rack (weights 2:1):")
	fmt.Printf("%12s %12s %12s %12s %16s\n",
		"offered/s", "done/s", "mean", "p99", "offered split")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		// Sweep ceiling, chosen past the rack's ~3.5M op/s saturation
		// point so the last two rows sit on the knee.
		const capacity = 5.0e6
		rep := c.Run(harmonia.LoadSpec{
			Rate:     frac * capacity,
			Duration: 10 * time.Millisecond, Warmup: 2 * time.Millisecond,
			WriteRatio: 0.05, Keys: 20000, Dist: harmonia.Zipf09,
			PinGroups: true,
		})
		split := "-"
		if rep.GroupOffered != nil {
			total := rep.GroupOffered[0] + rep.GroupOffered[1]
			split = fmt.Sprintf("%.2f : %.2f",
				float64(rep.GroupOffered[0])/float64(total)*3,
				float64(rep.GroupOffered[1])/float64(total)*3)
		}
		fmt.Printf("%12.0f %12.0f %12s %12s %16s\n",
			frac*capacity, rep.Throughput,
			rep.MeanLatency.Round(time.Microsecond),
			rep.P99Latency.Round(time.Microsecond), split)
	}
	fmt.Println("\nthe knee: latency is flat until the offered rate nears",
		"capacity, then queues (and the p99) take off — the open-loop",
		"methodology behind the paper's Figs. 5-6.")
}
