// Hotkey: per-key replication for an indivisible hot spot. A celebrity
// key is the one skew slot migration cannot fix — the whole hot spot is
// a single object, and a routing slot is the smallest unit a rebalancer
// can move. Promotion breaks the key→one-group invariant instead: the
// object is copied onto holder groups behind the same switch, the
// front-end round-robins its clean reads across home + holders, and
// every write invalidates the holder copies in its switch traversal
// (Hermes-style) so reads serialize at home until a refresh carries the
// new value back out. Linearizability is preserved throughout; only
// read capacity changes.
//
// The measured version of this story is Figure K:
// `go run ./cmd/harmonia-bench -fig K`.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func main() {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    harmonia.ChainReplication,
		Replicas:    3,
		UseHarmonia: true,
		Groups:      4,
		HotKeys:     true,
		Seed:        17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The celebrity: the single key a Keys:1 load generator hammers.
	const celebrity = "obj00000000"
	cl := c.Client()
	if err := cl.Set(celebrity, []byte("v1")); err != nil {
		log.Fatal(err)
	}
	home := c.GroupOf(celebrity)

	// Every request for the celebrity lands on one group, however many
	// clients pile on.
	spec := harmonia.LoadSpec{
		Clients: 256, Duration: 10 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.0005, Keys: 1,
	}
	before := c.Run(spec)
	fmt.Printf("celebrity key lives on group %d\n", home)
	fmt.Printf("before promotion: %.2f MQPS, per-group ops %v\n\n",
		before.Throughput/1e6, before.GroupOps)

	// Promote: the controller copies the object to the heaviest other
	// groups on the key's switch and arms read spreading. Holders start
	// stale until the seeding refresh lands.
	if err := c.PromoteKey(celebrity); err != nil {
		log.Fatal(err)
	}
	c.AdvanceTime(time.Millisecond)
	info, _ := c.KeyPromoted(celebrity)
	fmt.Printf("promoted onto holder groups %v (stale copies: %d)\n", info.Holders, info.Stale)

	after := c.Run(spec)
	fmt.Printf("after promotion:  %.2f MQPS (%.1fx), per-group ops %v\n\n",
		after.Throughput/1e6, after.Throughput/before.Throughput, after.GroupOps)

	// A write invalidates every holder copy in its switch traversal;
	// the refresh re-validates them moments later with the new value.
	if err := cl.Set(celebrity, []byte("v2")); err != nil {
		log.Fatal(err)
	}
	info, _ = c.KeyPromoted(celebrity)
	fmt.Printf("right after a write: %d stale holder copies (reads serialize at home)\n", info.Stale)
	c.AdvanceTime(time.Millisecond)
	info, _ = c.KeyPromoted(celebrity)
	fmt.Printf("after the refresh:   %d stale, write generation %d\n", info.Stale, info.WriteGen)
	if v, ok, _ := cl.Get(celebrity); ok {
		fmt.Printf("spread read returns %q\n\n", v)
	}

	// Demotion collapses the key back to its home group (the holders
	// drop their copies); with sustained skew the controller instead
	// promotes and demotes on its own — see Figure K.
	c.DemoteKey(celebrity)
	promotions, demotions := c.HotKeyStats()
	fmt.Printf("demoted: %d promotions, %d demotions over the run\n", promotions, demotions)
}
