// Protocols: the §9.5 generality result in miniature — all five
// replication protocols run the same read-intensive mixed workload,
// each with and without Harmonia (except CRAQ, the protocol-level
// baseline that has no switch assistance by construction). The point
// of the figure: in-network conflict detection lifts read throughput
// for every protocol class without touching the write path.
package main

import (
	"fmt"
	"log"
	"time"

	"harmonia"
)

func run(p harmonia.Protocol, useHarmonia bool) harmonia.Report {
	c, err := harmonia.New(harmonia.Config{
		Protocol:    p,
		Replicas:    3,
		UseHarmonia: useHarmonia,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c.Run(harmonia.LoadSpec{
		Clients:    192,
		Duration:   25 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		WriteRatio: 0.05, // the paper's default mix
		Keys:       100000,
	})
}

func main() {
	fmt.Println("3 replicas, 95% reads / 5% writes, uniform keys")
	fmt.Printf("%-26s %12s %12s %12s\n", "system", "total MRPS", "reads MRPS", "writes MRPS")

	protos := []harmonia.Protocol{
		harmonia.PrimaryBackup,
		harmonia.ChainReplication,
		harmonia.CRAQ,
		harmonia.ViewstampedReplication,
		harmonia.NOPaxos,
	}
	for _, p := range protos {
		base := run(p, false)
		fmt.Printf("%-26s %12.2f %12.2f %12.2f\n",
			p.String(), base.Throughput/1e6, base.ReadThroughput/1e6, base.WriteThroughput/1e6)
		if p == harmonia.CRAQ {
			continue // CRAQ is its own (protocol-level) read-scaling baseline
		}
		h := run(p, true)
		fmt.Printf("%-26s %12.2f %12.2f %12.2f\n",
			"Harmonia("+p.String()+")", h.Throughput/1e6, h.ReadThroughput/1e6, h.WriteThroughput/1e6)
	}
	fmt.Println("\nEvery protocol gains ~3x read throughput from the 3 replicas,")
	fmt.Println("reproducing the shape of Fig. 9 (both protocol families).")
}
