// Tests for the multi-group sharded clusters (§6.1): one switch, N
// replica groups, near-linear aggregate scaling along the system-size
// axis.
package harmonia

import (
	"testing"
	"time"
)

// shardedSaturate measures closed-loop saturation throughput for a
// Harmonia(CR) cluster with the given group count at 5% writes under
// the zipf-0.9 workload.
func shardedSaturate(t testing.TB, groups, clientsPerGroup int) Report {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: groups, Seed: int64(groups)*13 + 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(LoadSpec{
		Clients: clientsPerGroup * groups, Duration: 20 * time.Millisecond,
		Warmup: 4 * time.Millisecond, WriteRatio: 0.05, Keys: 100000, Dist: Zipf09,
		PinGroups: true,
	})
}

func TestShardedAggregateThroughputScales(t *testing.T) {
	// The acceptance bar for the sharding refactor: 4 groups deliver at
	// least 3× one group's aggregate throughput at 5% writes under
	// zipf-0.9 (perfect sharing-nothing scaling would be 4×; hash
	// imbalance across shards costs a little).
	one := shardedSaturate(t, 1, 128)
	four := shardedSaturate(t, 4, 128)
	if four.Throughput < 3*one.Throughput {
		t.Fatalf("sharding does not scale: 1 group %.0f ops/s, 4 groups %.0f ops/s (%.2fx)",
			one.Throughput, four.Throughput, four.Throughput/one.Throughput)
	}
	// Every shard must have carried real load.
	if len(four.GroupOps) != 4 {
		t.Fatalf("GroupOps has %d entries, want 4", len(four.GroupOps))
	}
	for g, n := range four.GroupOps {
		if n == 0 {
			t.Fatalf("group %d completed nothing", g)
		}
	}
}

func TestShardedLinearizabilityPerGroup(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, RecordHistory: true, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 8, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		WriteRatio: 0.3, Keys: 48, Dist: Zipf09,
	})
	if rep.Ops == 0 {
		t.Fatal("no ops")
	}
	c.AdvanceTime(15 * time.Millisecond) // settle in-flight ops
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d violated linearizability: %s", g, res.Reason)
		}
	}
	// The whole-history verdict must agree (linearizability composes).
	if res := c.CheckLinearizability(); !res.Decided || !res.Ok {
		t.Fatalf("combined history: %+v", res)
	}
}

func TestShardedGroupStatsAndRouting(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for _, k := range keys {
		if err := cl.Set(k, []byte(k)); err != nil {
			t.Fatalf("Set %q: %v", k, err)
		}
		if v, ok, err := cl.Get(k); err != nil || !ok || string(v) != k {
			t.Fatalf("Get %q = %q %v %v", k, v, ok, err)
		}
	}
	// Per-group write counters must account exactly for the writes the
	// owning groups saw (plus one priming write each).
	perKey := make(map[int]uint64)
	for _, k := range keys {
		perKey[c.GroupOf(k)]++
	}
	var agg SwitchStats
	for g := 0; g < c.Groups(); g++ {
		st := c.GroupSwitchStats(g)
		if want := perKey[g] + 1; st.Writes != want {
			t.Fatalf("group %d writes = %d, want %d", g, st.Writes, want)
		}
		if st.Epoch != 1 {
			t.Fatalf("group %d epoch = %d", g, st.Epoch)
		}
		agg.Writes += st.Writes
	}
	if total := c.SwitchStats().Writes; total != agg.Writes {
		t.Fatalf("aggregate writes %d != sum of groups %d", total, agg.Writes)
	}
}

func TestShardedFailureInjectionIsGroupScoped(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashReplicaInGroup(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashReplicaInGroup(3, 0); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if err := c.CrashReplicaInGroup(-1, 0); err == nil {
		t.Fatal("negative group accepted")
	}
	if err := c.CrashReplicaInGroup(0, 99); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	// Every shard, including the degraded one, keeps serving.
	rep := c.Run(LoadSpec{
		Clients: 24, Duration: 15 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.1, Keys: 300,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("cluster stalled after group-scoped crash: %+v", rep)
	}
	for g, n := range rep.GroupOps {
		if n == 0 {
			t.Fatalf("group %d served nothing after crash in group 1", g)
		}
	}
}

func TestShardedSwitchFailoverRecoversAllGroups(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, RecordHistory: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		if err := cl.Set(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.StopSwitch()
	c.ReactivateSwitch()
	c.AdvanceTime(10 * time.Millisecond)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		if _, _, err := cl.Get(k); err != nil {
			t.Fatalf("read %q after failover: %v", k, err)
		}
	}
	for g := 0; g < c.Groups(); g++ {
		if e := c.GroupSwitchStats(g).Epoch; e != 2 {
			t.Fatalf("group %d epoch = %d after failover, want 2", g, e)
		}
	}
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			t.Fatalf("group %d after failover: %+v", g, res)
		}
	}
}

func TestGroupsOneMatchesDefault(t *testing.T) {
	// Groups: 1 must be the old single-group behavior, identical to
	// leaving Groups unset — the deterministic simulation makes this
	// an exact equality.
	run := func(groups int) (uint64, uint64) {
		c, err := New(Config{
			Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
			Groups: groups, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := c.Run(LoadSpec{
			Clients: 32, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
			WriteRatio: 0.1, Keys: 500,
		})
		return rep.Ops, rep.Retries
	}
	o0, r0 := run(0)
	o1, r1 := run(1)
	if o0 != o1 || r0 != r1 {
		t.Fatalf("Groups:1 diverges from default: (%d,%d) vs (%d,%d)", o1, r1, o0, r0)
	}
}

func TestShardedAllProtocols(t *testing.T) {
	// Every protocol must serve a sharded cluster; sharding is
	// protocol-agnostic (the partitioned scheduler wraps Algorithm 1
	// unchanged).
	for _, p := range []Protocol{PrimaryBackup, ChainReplication, CRAQ, ViewstampedReplication, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c, err := New(Config{Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 2, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			rep := c.Run(LoadSpec{
				Clients: 16, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
				WriteRatio: 0.1, Keys: 64,
			})
			if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
				t.Fatalf("sharded %s idle: %+v", p, rep)
			}
			for g, n := range rep.GroupOps {
				if n == 0 {
					t.Fatalf("sharded %s: group %d idle", p, g)
				}
			}
		})
	}
}
