// Package harmonia is a reproduction of "Harmonia: Near-Linear
// Scalability for Replicated Storage with In-Network Conflict
// Detection" (Zhu et al., VLDB 2019).
//
// Harmonia makes replicated-storage reads scale nearly linearly with
// the number of replicas without giving up linearizability: a
// programmable switch on the data path tracks the set of objects with
// in-flight writes (the dirty set) plus a last-committed point, sends
// reads of uncontended objects to a single random replica, and lets
// the replica validate the read locally against the stamped commit
// point.
//
// This package is the public face of the reproduction: it assembles a
// fully simulated rack (calibrated discrete-event simulation of
// servers, links, and the switch data plane program) running one of
// five replication protocols — primary-backup, chain replication,
// CRAQ, Viewstamped Replication, or NOPaxos — with or without Harmonia
// assistance, and exposes clients, load generation, failure injection,
// and linearizability checking.
//
// Quick start:
//
//	c, err := harmonia.New(harmonia.Config{
//		Protocol:    harmonia.ChainReplication,
//		Replicas:    3,
//		UseHarmonia: true,
//	})
//	...
//	cl := c.Client()
//	_ = cl.Set("user:42", []byte("hello"))
//	v, ok, _ := cl.Get("user:42")
package harmonia

import (
	"fmt"
	"io"
	"math"
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/dataplane"
	"harmonia/internal/lincheck"
	"harmonia/internal/metrics"
	"harmonia/internal/rack"
	"harmonia/internal/rebalance"
	"harmonia/internal/trace"
	"harmonia/internal/wire"
)

// Protocol selects the replication protocol running on the replicas.
type Protocol int

// The supported protocols (§7 of the paper; CRAQ is the protocol-level
// baseline of §9.5).
const (
	PrimaryBackup Protocol = iota
	ChainReplication
	CRAQ
	ViewstampedReplication
	NOPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string { return p.internal().String() }

func (p Protocol) internal() cluster.Protocol {
	switch p {
	case PrimaryBackup:
		return cluster.PB
	case ChainReplication:
		return cluster.Chain
	case CRAQ:
		return cluster.CRAQ
	case ViewstampedReplication:
		return cluster.VR
	case NOPaxos:
		return cluster.NOPaxos
	default:
		return cluster.Chain
	}
}

// Config describes the cluster to build. The zero value of every
// optional field selects the paper's defaults (3-stage × 64K-slot
// dirty set, 8-shard servers calibrated to 0.92/0.80 MQPS
// reads/writes, 5µs links).
type Config struct {
	// Protocol is the replication protocol.
	Protocol Protocol
	// Replicas is the group size (default 3, the paper's default).
	Replicas int
	// UseHarmonia enables in-network conflict detection; false runs
	// the unmodified protocol as a baseline.
	UseHarmonia bool

	// Groups shards the key space across this many replica groups
	// (§6.1): each group runs its own protocol instance over Replicas
	// members and its own scheduler partition (sequence number, dirty
	// set, last-committed point). Aggregate throughput scales with the
	// group count because groups share nothing but the switch ASIC.
	// Default 1, the classic single-group rack; at most MaxGroups.
	Groups int

	// GroupSpecs makes the cluster heterogeneous: one spec per replica
	// group, each naming its own protocol, size, and relative capacity
	// weight, so a hot 7-replica Harmonia(CR) shard can run next to
	// cold 3-replica NOPaxos shards in one rack. When set, Groups must
	// be zero or equal to len(GroupSpecs). Slot shards, the autonomous
	// rebalancer's thresholds, and pinned load generation all follow
	// the groups' capacity weights, and slots migrate between groups of
	// different protocols exactly as between uniform ones.
	//
	// Nil keeps today's uniform behavior — every group a copy of
	// Protocol/Replicas — bit-compatible with the pre-spec layout,
	// routing, and load split.
	GroupSpecs []GroupSpec

	// Switches spreads the groups across this many switch front-ends —
	// a multi-switch rack. Each switch owns a contiguous shard of the
	// NumSlots routing slots and is an independent failure domain: its
	// own §5.3 epoch counter, its own lease domain, its own heat
	// registers. Crashing or replacing one switch stalls only the slots
	// it owns, and the controller's replacement agreement runs per
	// (switch, group) pair, so its cost scales with groups-per-switch
	// rather than rack size. Slots migrate across switch boundaries
	// with MigrateSlot/MigrateSlots exactly as within one switch.
	// Default 1, the classic single-switch rack; at most MaxSwitches,
	// and never more than Groups (every switch hosts at least one
	// group).
	Switches int

	// Stages and SlotsPerStage size the switch's dirty-set hash table.
	Stages, SlotsPerStage int

	// DropProb / ReorderProb / ReorderDelay / LinkJitter perturb the
	// client↔switch↔replica packet path (replica↔replica channels
	// model TCP and stay reliable).
	DropProb     float64
	ReorderProb  float64
	ReorderDelay time.Duration
	LinkJitter   time.Duration

	// AutoRebalance arms the autonomous rebalancer: the switch
	// front-end's per-slot heat counters (register arrays, the §4–5
	// trick applied to load) feed a control loop that detects
	// per-group imbalance and migrates batches of hot slots on its own
	// — thresholds, hysteresis, a move-cost veto, and a cool-down keep
	// it from thrashing. No offline workload knowledge is involved.
	AutoRebalance bool

	// RebalancePolicy tunes the rebalancer; zero fields select the
	// defaults (trigger at 1.5× the fair share, re-arm below 1.25×,
	// sample every 1ms of simulated time, ≤8 slots per round).
	RebalancePolicy RebalancePolicy

	// HotKeys arms per-key hot replication: when the rebalancer
	// detects an overloaded slot it cannot split (a single key
	// dominates it), the controller promotes that key to a replicated
	// set spanning up to three extra groups on the same switch. The
	// switch round-robins clean reads of a promoted key across the
	// holders; writes keep going to the home group and piggyback a
	// switch-driven invalidation marking the other copies stale until
	// refreshed. Automatic promotion requires AutoRebalance (the heat
	// machinery drives detection); manual PromoteKey works either way.
	HotKeys bool

	// RecordHistory captures all operations for CheckLinearizability.
	RecordHistory bool

	// Trace arms sampled per-operation span tracing: one op in
	// Trace.SampleEvery rides a pooled span record from client enqueue
	// through switch sequencing, per-replica queue/service, retries,
	// and completion, and the completed spans fold into
	// Report.LatencyBreakdown. The zero value leaves tracing off, which
	// keeps the guarded fast paths allocation-free. The control-plane
	// flight recorder (Events, WriteChromeTrace) is always on and does
	// not depend on this knob.
	Trace TraceConfig

	// Seed makes runs reproducible (default 1).
	Seed int64
}

// TraceConfig sizes the span sampler (Config.Trace).
type TraceConfig = trace.Config

// GroupSpec describes one replica group of a heterogeneous cluster
// (Config.GroupSpecs).
type GroupSpec struct {
	// Protocol is this group's replication protocol. Each spec names
	// its protocol explicitly (the zero value is PrimaryBackup, as in
	// Config). A CRAQ group is always the protocol-level baseline: it
	// runs without switch assistance even in a UseHarmonia cluster,
	// and the two coexist in one rack.
	Protocol Protocol
	// Replicas is this group's size (0 inherits Config.Replicas).
	Replicas int
	// Weight is the group's relative capacity — the number the
	// weighted slot-shard layout, the rebalancer's per-capacity-unit
	// thresholds, and PinGroups load generation normalize by. 0 (the
	// default) derives it from the group's calibrated service rate, so
	// a 7-replica fast-read group automatically outweighs a 3-replica
	// one. Only ratios between groups matter — which is why Weight
	// must be set on every spec or on none: derived weights are
	// absolute service rates (millions of ops/s), a scale explicit
	// ratios like 5:1 cannot meaningfully mix with, so New rejects the
	// mixture instead of silently inverting the intended split.
	Weight float64
}

// RebalancePolicy tunes the autonomous rebalancer's control loop. All
// thresholds are measured per capacity unit: each group's load is
// normalized by its capacity weight before comparison, so on a
// heterogeneous cluster a 7-replica group legitimately carries more
// raw load than a 3-replica one without tripping the trigger. On a
// uniform cluster every weight is equal and the ratios reduce to the
// classic per-group readings.
type RebalancePolicy struct {
	// Threshold is the per-capacity-unit load ratio that triggers a
	// rebalancing round (default 1.5: the hottest group carries ≥1.5×
	// its capacity-weighted fair share).
	Threshold float64
	// Hysteresis widens the re-arm band: after a round fires, no new
	// round triggers until imbalance falls below Threshold−Hysteresis
	// (default 0.25). This is what prevents ping-pong when two groups
	// oscillate around the threshold.
	Hysteresis float64
	// Interval is the sampling cadence, which is also the heat
	// counters' EWMA decay period (default 1ms of simulated time).
	Interval time.Duration
	// MaxSlotsPerRound bounds one round's batch migration (default 8).
	MaxSlotsPerRound int
}

// MaxGroups bounds Config.Groups.
const MaxGroups = cluster.MaxGroups

// MaxSwitches bounds Config.Switches.
const MaxSwitches = cluster.MaxSwitches

// Cluster is an assembled simulated rack.
type Cluster struct {
	c *cluster.Cluster
}

// New builds and primes a cluster.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.GroupSpecs) == 0 {
		// Uniform cluster: the cluster-wide protocol is what every
		// group runs, so it is validated here. With GroupSpecs, each
		// spec names its own protocol and the cluster-wide one is only
		// a default for unset fields.
		if cfg.Protocol < PrimaryBackup || cfg.Protocol > NOPaxos {
			return nil, fmt.Errorf("harmonia: unknown protocol %d", cfg.Protocol)
		}
		if cfg.Protocol == CRAQ && cfg.UseHarmonia {
			return nil, fmt.Errorf("harmonia: CRAQ is the protocol-level baseline and does not take switch assistance")
		}
		if cfg.Replicas == 1 && cfg.Protocol == ViewstampedReplication {
			return nil, fmt.Errorf("harmonia: invalid replica count %d", cfg.Replicas)
		}
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("harmonia: invalid replica count %d", cfg.Replicas)
	}
	if cfg.Stages < 0 || cfg.SlotsPerStage < 0 {
		return nil, fmt.Errorf("harmonia: invalid dirty-set shape %d×%d", cfg.Stages, cfg.SlotsPerStage)
	}
	if cfg.Groups < 0 || cfg.Groups > MaxGroups {
		return nil, fmt.Errorf("harmonia: invalid group count %d (max %d)", cfg.Groups, MaxGroups)
	}
	if cfg.Switches < 0 || cfg.Switches > MaxSwitches {
		return nil, fmt.Errorf("harmonia: invalid switch count %d (max %d)", cfg.Switches, MaxSwitches)
	}
	effGroups := cfg.Groups
	if n := len(cfg.GroupSpecs); n > 0 {
		if n > MaxGroups {
			return nil, fmt.Errorf("harmonia: %d group specs (max %d)", n, MaxGroups)
		}
		if cfg.Groups != 0 && cfg.Groups != n {
			return nil, fmt.Errorf("harmonia: Groups %d disagrees with %d group specs (set one or make them equal)", cfg.Groups, n)
		}
		defReplicas := cfg.Replicas
		if defReplicas == 0 {
			defReplicas = 3
		}
		explicitWeights := 0
		for _, gs := range cfg.GroupSpecs {
			if gs.Weight > 0 {
				explicitWeights++
			}
		}
		if explicitWeights != 0 && explicitWeights != n {
			// Derived weights are absolute service rates; explicit ones
			// are user-scale ratios. Mixing the two scales would
			// silently starve whichever side is numerically smaller, so
			// the mixture is an error, not a guess.
			return nil, fmt.Errorf("harmonia: %d of %d group specs set Weight — set it on every spec or on none (derived and explicit weights do not share a scale)", explicitWeights, n)
		}
		for g, gs := range cfg.GroupSpecs {
			if gs.Protocol < PrimaryBackup || gs.Protocol > NOPaxos {
				return nil, fmt.Errorf("harmonia: group %d: unknown protocol %d", g, gs.Protocol)
			}
			if gs.Replicas < 0 {
				return nil, fmt.Errorf("harmonia: group %d: invalid replica count %d", g, gs.Replicas)
			}
			eff := gs.Replicas
			if eff == 0 {
				eff = defReplicas
			}
			if eff == 1 && gs.Protocol == ViewstampedReplication {
				return nil, fmt.Errorf("harmonia: group %d: invalid replica count %d for VR", g, eff)
			}
			if gs.Weight < 0 || math.IsNaN(gs.Weight) || math.IsInf(gs.Weight, 0) {
				return nil, fmt.Errorf("harmonia: group %d: invalid capacity weight %v", g, gs.Weight)
			}
		}
		effGroups = n
	}
	if effGroups == 0 {
		effGroups = 1
	}
	rp := cfg.RebalancePolicy
	if rp.Threshold < 0 || rp.Hysteresis < 0 || rp.Interval < 0 || rp.MaxSlotsPerRound < 0 {
		return nil, fmt.Errorf("harmonia: invalid rebalance policy %+v", rp)
	}
	// Compare against the EFFECTIVE threshold (zero selects the 1.5
	// default): a hysteresis at or above it makes the re-arm level
	// unreachable, so the loop would fire at most once and then go
	// silent forever.
	effThreshold := rp.Threshold
	if effThreshold == 0 {
		effThreshold = 1.5
	}
	if rp.Hysteresis >= effThreshold {
		return nil, fmt.Errorf("harmonia: rebalance hysteresis %.2f must stay below the effective threshold %.2f (both ratios are per capacity unit)", rp.Hysteresis, effThreshold)
	}
	var specs []cluster.GroupSpec
	for _, gs := range cfg.GroupSpecs {
		specs = append(specs, cluster.GroupSpec{
			Protocol: gs.Protocol.internal(),
			Replicas: gs.Replicas,
			Weight:   gs.Weight,
		})
	}
	ccfg := cluster.Config{
		Protocol:      cfg.Protocol.internal(),
		Replicas:      cfg.Replicas,
		UseHarmonia:   cfg.UseHarmonia,
		Groups:        cfg.Groups,
		GroupSpecs:    specs,
		Switches:      cfg.Switches,
		Stages:        cfg.Stages,
		SlotsPerStage: cfg.SlotsPerStage,
		DropProb:      cfg.DropProb,
		ReorderProb:   cfg.ReorderProb,
		ReorderDelay:  cfg.ReorderDelay,
		LinkJitter:    cfg.LinkJitter,
		AutoRebalance: cfg.AutoRebalance,
		HotKeys:       cfg.HotKeys,
		Rebalance: rebalance.Config{
			Threshold:        rp.Threshold,
			Hysteresis:       rp.Hysteresis,
			Interval:         rp.Interval,
			MaxSlotsPerRound: rp.MaxSlotsPerRound,
		},
		RecordHistory: cfg.RecordHistory,
		Trace:         cfg.Trace,
		Seed:          cfg.Seed,
	}
	if cfg.Switches > 1 {
		// Validate the rack shape against the groups' effective
		// capacity weights: each switch's slot shard must fit every
		// group of its block (uniform weights additionally pin the
		// historical even-shard constraints).
		if err := rack.ValidateWeights(cfg.Switches, ccfg.ResolvedWeights()); err != nil {
			return nil, fmt.Errorf("harmonia: %w", err)
		}
	}
	return &Cluster{c: cluster.New(ccfg)}, nil
}

// Client returns a synchronous client. Each call registers a new
// client identity; operations advance the simulation until the reply
// arrives.
func (cl *Cluster) Client() *Client {
	return &Client{s: cl.c.NewSyncClient()}
}

// Client issues synchronous operations against the cluster.
type Client struct {
	s *cluster.SyncClient
}

// Get reads a key. found reports whether the key exists.
func (c *Client) Get(key string) (value []byte, found bool, err error) { return c.s.Get(key) }

// Set writes a key.
func (c *Client) Set(key string, value []byte) error { return c.s.Set(key, value) }

// Delete removes a key.
func (c *Client) Delete(key string) error { return c.s.Delete(key) }

// Dist selects a key popularity distribution for load generation.
type Dist int

// Distributions from the paper's methodology (§9.1), plus the
// heavy-tailed variant the rebalancing experiments use.
const (
	Uniform Dist = iota
	Zipf09       // zipfian, θ = 0.9
	Zipf12       // zipfian, θ = 1.2 (heavy-tailed hot spot)
)

// LoadSpec describes a load-generation run.
type LoadSpec struct {
	// Closed-loop clients (default 64). When Rate > 0 the run is
	// open-loop Poisson instead and Clients is ignored.
	Clients int
	Rate    float64 // ops/second, open loop

	Duration time.Duration // measurement window (default 50ms)
	Warmup   time.Duration

	WriteRatio float64 // fraction of writes (paper default 0.05)
	Keys       int     // key-space size (default 100k)
	Dist       Dist

	// PinGroups shards load generation the way the data is sharded.
	// Closed loop: Clients are split across the replica groups by
	// capacity weight and each sub-pool draws keys only from its
	// group's slice of the key space, so shards saturate
	// independently; per-group completions land in Report.GroupOps.
	// Open loop: each Poisson arrival draws a group by weight first,
	// then a shard-local key, and the offered split lands in
	// Report.GroupOffered. Ignored for single-group clusters.
	PinGroups bool

	// Bucket > 0 additionally collects a completion-rate time series
	// (the Fig. 10 visualization).
	Bucket time.Duration
}

// Report summarizes a load run.
type Report struct {
	Ops             uint64
	Reads, Writes   uint64
	Throughput      float64 // ops/second
	ReadThroughput  float64
	WriteThroughput float64
	MeanLatency     time.Duration
	P50Latency      time.Duration
	P99Latency      time.Duration
	Retries         uint64
	// Dropped counts writes the switch rejected with FlagDropped
	// replies (dirty set full), each reissued immediately by the
	// client — distinct from the timeout-driven Retries.
	Dropped uint64
	// Rebalances counts slot moves the autonomous rebalancer completed
	// during the measurement window (0 unless Config.AutoRebalance).
	Rebalances uint64
	Series     []SeriesPoint
	// GroupOps counts completed operations per replica group (index =
	// group). Always length Config.Groups; a single-group cluster puts
	// everything in GroupOps[0].
	GroupOps []uint64
	// GroupOffered counts operations issued per replica group during
	// the measurement window by a sharded (PinGroups) open-loop run —
	// the offered-load split before completions. Nil otherwise.
	GroupOffered []uint64
	// LatencyBreakdown decomposes the sampled ops' end-to-end latency
	// into the five trace phases — queue (replica scheduler wait),
	// service (modeled per-op CPU), network (links, switch traversal,
	// unstamped replication legs), retry (loss-driven resend gaps),
	// and frozen-stall (resend gaps from migration freezes and switch
	// replacement agreements) — overall and per group/switch. The five
	// phase sums reconcile exactly with the traced ops' end-to-end
	// latency (a telescoping identity of the stamps). Nil unless
	// Config.Trace armed sampling.
	LatencyBreakdown *LatencyBreakdown
}

// LatencyBreakdown is a run's phase decomposition (see
// Report.LatencyBreakdown).
type LatencyBreakdown = cluster.LatencyBreakdown

// PhaseBreakdown is one latency decomposition: a LatencyHistogram per
// phase, with each phase's boundaries documented on its field.
type PhaseBreakdown = cluster.PhaseBreakdown

// SeriesPoint is one time-series bucket.
type SeriesPoint struct {
	Start time.Duration
	Rate  float64 // completions per second
}

// Run executes a load specification.
func (cl *Cluster) Run(spec LoadSpec) Report {
	mode := cluster.Closed
	if spec.Rate > 0 {
		mode = cluster.Open
	}
	rep := cl.c.RunLoad(cluster.LoadSpec{
		Mode:       mode,
		Clients:    spec.Clients,
		Rate:       spec.Rate,
		Duration:   spec.Duration,
		Warmup:     spec.Warmup,
		WriteRatio: spec.WriteRatio,
		Keys:       spec.Keys,
		Dist:       cluster.Dist(spec.Dist),
		PinGroups:  spec.PinGroups,
		Bucket:     spec.Bucket,
	})
	out := Report{
		Ops: rep.Ops, Reads: rep.Reads, Writes: rep.Writes,
		Throughput:       rep.Throughput,
		ReadThroughput:   rep.ReadThroughput,
		WriteThroughput:  rep.WriteThroughput,
		MeanLatency:      rep.Latency.Mean(),
		P50Latency:       rep.Latency.Quantile(0.5),
		P99Latency:       rep.Latency.Quantile(0.99),
		Retries:          rep.Retries,
		Dropped:          rep.Dropped,
		Rebalances:       rep.Rebalances,
		GroupOps:         rep.GroupOps,
		GroupOffered:     rep.GroupOffered,
		LatencyBreakdown: rep.LatencyBreakdown,
	}
	if rep.Series != nil {
		for _, p := range rep.Series.Points() {
			out.Series = append(out.Series, SeriesPoint{Start: p.Start, Rate: p.Rate})
		}
	}
	return out
}

// Preload installs n objects across the replicas before measurement.
func (cl *Cluster) Preload(n int) { cl.c.Preload(n) }

// AdvanceTime runs the simulation for d without client load.
func (cl *Cluster) AdvanceTime(d time.Duration) { cl.c.RunFor(d) }

// StopSwitch halts every switch in the rack — for a single-switch
// cluster, exactly the paper's §9.6 failure experiment. Multi-switch
// racks crash one failure domain at a time with CrashSwitch.
func (cl *Cluster) StopSwitch() { cl.c.StopSwitch() }

// CrashSwitch fails switch s: its front-end stops forwarding for the
// groups it hosts, while every other switch's slot shard keeps serving
// — including fast-path reads — undisturbed.
func (cl *Cluster) CrashSwitch(s int) error { return cl.c.CrashSwitch(s) }

// ReactivateSwitch boots replacement switches — the listed ones, or
// every switch when called with no arguments — each with a fresh epoch
// in its own epoch domain and empty register state, and runs the §5.3
// revoke/ack agreement per (switch, group) pair before the replacement
// may serve. Replacing one switch of a multi-switch rack stalls only
// its own slot shard; the agreement's message count scales with the
// groups that switch hosts, not with rack size (see RackStats). An
// out-of-range index is an error and nothing is reactivated.
func (cl *Cluster) ReactivateSwitch(switches ...int) error {
	return cl.c.ReactivateSwitch(switches...)
}

// CrashReplica fails replica i of group 0 and reconfigures the
// protocol around it where supported — the whole story for
// single-group clusters. Sharded clusters use CrashReplicaInGroup.
func (cl *Cluster) CrashReplica(i int) error { return cl.c.CrashReplica(i) }

// CrashReplicaInGroup fails replica i of group g. Only that group
// reconfigures; the other shards keep serving undisturbed. Bounds and
// protocol capabilities are per group: on a heterogeneous cluster i
// runs to that group's own replica count, and reconfiguration support
// follows that group's protocol.
func (cl *Cluster) CrashReplicaInGroup(g, i int) error { return cl.c.CrashReplicaIn(g, i) }

// Groups returns the replica-group count.
func (cl *Cluster) Groups() int { return cl.c.Groups() }

// GroupSpecs returns the effective per-group specs the cluster
// assembled with — protocol, replica count, and capacity weight, with
// every default and derived weight resolved. A cluster built without
// Config.GroupSpecs reports one uniform spec per group.
func (cl *Cluster) GroupSpecs() []GroupSpec {
	out := make([]GroupSpec, cl.c.Groups())
	for g := range out {
		sp := cl.c.SpecOf(g)
		out[g] = GroupSpec{
			Protocol: protocolFromInternal(sp.Protocol),
			Replicas: sp.Replicas,
			Weight:   sp.Weight,
		}
	}
	return out
}

// GroupWeights returns the effective per-group capacity weights — the
// vector the weighted slot layout, the rebalancer's thresholds, and
// PinGroups load generation normalize by. Only the ratios between
// entries are meaningful.
func (cl *Cluster) GroupWeights() []float64 { return cl.c.GroupWeights() }

func protocolFromInternal(p cluster.Protocol) Protocol {
	switch p {
	case cluster.PB:
		return PrimaryBackup
	case cluster.Chain:
		return ChainReplication
	case cluster.CRAQ:
		return CRAQ
	case cluster.VR:
		return ViewstampedReplication
	case cluster.NOPaxos:
		return NOPaxos
	default:
		return ChainReplication
	}
}

// Switches returns the switch front-end count.
func (cl *Cluster) Switches() int { return cl.c.Switches() }

// SwitchOf returns the switch front-end currently serving slot, per
// the rack's slot → switch map (the map clients consult to pick a
// front-end; cross-switch migrations update it at the flip).
func (cl *Cluster) SwitchOf(slot int) int { return cl.c.SwitchOf(slot) }

// SwitchOfGroup returns the switch hosting group g's scheduler
// partition. Groups never change switches; slots do.
func (cl *Cluster) SwitchOfGroup(g int) int { return cl.c.SwitchOfGroup(g) }

// SwitchDomainStats describes one switch front-end's failure domain:
// its epoch, what it owns, and the cost of its §5.3 agreements.
type SwitchDomainStats struct {
	// Epoch is the switch's current incarnation ID. Replacing a switch
	// bumps only its own epoch.
	Epoch uint32
	// Groups lists the replica groups hosted on this switch.
	Groups []int
	// OwnedSlots counts the routing slots this front-end serves.
	OwnedSlots int
	// Replacements counts completed §5.3 switch replacements.
	Replacements uint64
	// AgreementMsgs is the total §5.3 agreement message count (revokes
	// sent + acks received) across this switch's replacements — it
	// scales with the live replicas of the groups the switch hosts
	// (heterogeneous groups bill their actual sizes), never with rack
	// size.
	AgreementMsgs uint64
	// AgreementAcks is the acks-received share of AgreementMsgs: per
	// replacement, exactly one ack per live replica of each hosted
	// group — on a heterogeneous rack, the sum of those groups' own
	// replica counts, not a uniform groups×replicas product.
	AgreementAcks uint64
	// LastAgreementLatency is the most recent replacement's agreement
	// duration (first revoke to last group's completion).
	LastAgreementLatency time.Duration
	// StalledOps counts client operations dropped because a hosted
	// group's partition was still booting mid-replacement.
	StalledOps uint64
	// MisroutedDrops counts packets that arrived for a slot this
	// front-end does not own (stale maps, in-flight cross-switch
	// flips).
	MisroutedDrops uint64
	// FrozenDrops counts packets dropped on this front-end's frozen
	// (mid-migration) slots.
	FrozenDrops uint64
}

// RackStats reports the per-switch failure-domain statistics.
type RackStats struct {
	Switches []SwitchDomainStats
}

// RackStats snapshots every switch domain's epoch, ownership, and
// §5.3 agreement cost counters.
func (cl *Cluster) RackStats() RackStats {
	r := cl.c.Rack()
	out := RackStats{Switches: make([]SwitchDomainStats, r.Switches())}
	for s := 0; s < r.Switches(); s++ {
		f := r.Front(s)
		st := r.Stats(s)
		out.Switches[s] = SwitchDomainStats{
			Epoch:                r.Epoch(s),
			Groups:               r.GroupsOf(s),
			OwnedSlots:           f.OwnedSlots(),
			Replacements:         st.Replacements,
			AgreementMsgs:        st.AgreementMsgs(),
			AgreementAcks:        st.AcksReceived,
			LastAgreementLatency: st.LastAgreementLatency,
			StalledOps:           f.Stats.StalledDrops,
			MisroutedDrops:       f.Stats.MisroutedDrops,
			FrozenDrops:          f.Stats.FrozenDrops,
		}
	}
	return out
}

// GroupOf returns the replica group that currently owns key, per the
// switch front-end's slot table — the routing authority the clients
// follow.
func (cl *Cluster) GroupOf(key string) int { return cl.c.GroupOf(key) }

// NumSlots is the fixed routing-slot count: every key hashes to one of
// these slots, and the switch front-end maps each slot to the replica
// group serving it. Slots are the unit of online rebalancing.
const NumSlots = wire.NumSlots

// SlotOfKey returns key's routing slot.
func (cl *Cluster) SlotOfKey(key string) int { return cl.c.SlotOfKey(key) }

// SlotTable returns a copy of the switch front-end's slot → group
// table. Index s holds the group currently serving slot s.
func (cl *Cluster) SlotTable() []int { return cl.c.SlotTable() }

// MigrateSlot moves one routing slot to another replica group online
// — the §5.3 handoff applied to a slot: the front-end freezes the
// slot (its requests are dropped and retried by clients, as with a
// booting switch), the source group drains until its dirty set holds
// nothing for the slot, the slot's objects are copied to the
// destination replicas, and the route flips before the slot thaws.
// The call drives the simulation until the handoff completes; load
// started concurrently (via Engine timers or between Run calls) keeps
// being served throughout, except for the frozen slot's own keys.
func (cl *Cluster) MigrateSlot(slot, toGroup int) error { return cl.c.MigrateSlot(slot, toGroup) }

// MigrateSlots moves a set of routing slots to toGroup as batch
// handoffs: the slots are grouped by their current owner and each
// owner's share pays ONE freeze window, one drain, one bulk copy, and
// one route flip — amortizing the per-slot costs MigrateSlot pays
// individually. Slots already owned by toGroup are no-op successes.
func (cl *Cluster) MigrateSlots(slots []int, toGroup int) error {
	return cl.c.MigrateSlots(slots, toGroup)
}

// SwapSlots exchanges two slot sets between their owning groups (each
// set must be non-empty and uniformly owned, with distinct owners), so
// a hot slot can trade places with a cold one without changing either
// group's slot occupancy. Both directions run as concurrent batch
// handoffs.
func (cl *Cluster) SwapSlots(slotsA, slotsB []int) error {
	return cl.c.SwapSlots(slotsA, slotsB)
}

// --- Elastic membership ---
//
// The rack's topology — which groups exist, their weights, and which
// group serves each slot — is a live, epoch-versioned object. The four
// operations below mutate it at runtime; each bumps the topology epoch
// exactly once per membership revision, and every epoch-keyed consumer
// (the rebalancer's thresholds, PinGroups load splits, routing) picks
// the new membership up on its next epoch check. Group IDs are stable
// and never reused: a retired group's ID stays retired forever, so
// per-group statistics and histories remain valid across scale-in.

// validateSpec applies New's per-spec validation rules to a spec
// submitted at runtime.
func (cl *Cluster) validateSpec(spec GroupSpec) error {
	if spec.Protocol < PrimaryBackup || spec.Protocol > NOPaxos {
		return fmt.Errorf("harmonia: unknown protocol %d", spec.Protocol)
	}
	if spec.Replicas < 0 {
		return fmt.Errorf("harmonia: invalid replica count %d", spec.Replicas)
	}
	eff := spec.Replicas
	if eff == 0 {
		eff = cl.c.Config().Replicas
	}
	if eff == 1 && spec.Protocol == ViewstampedReplication {
		return fmt.Errorf("harmonia: invalid replica count %d for VR", eff)
	}
	if spec.Weight < 0 || math.IsNaN(spec.Weight) || math.IsInf(spec.Weight, 0) {
		return fmt.Errorf("harmonia: invalid capacity weight %v", spec.Weight)
	}
	return nil
}

// AddGroup grows the cluster by one replica group built from spec
// (zero fields inherit the cluster-wide settings, exactly as at
// assembly) and returns its ID. The group is placed on the alive
// switch with the most heat per capacity unit, and then seeded a
// weight-fair share of the slot space through ordinary online slot
// migrations — heat-aware, so the new group relieves the rack's hot
// spot first. The call drives the simulation until the seeding
// settles; the largest-remainder re-apportionment guarantees every
// live group keeps at least one slot and all slots stay owned.
// Explicit vs derived capacity weights must match the cluster's boot
// scale (the same all-or-none rule New enforces).
func (cl *Cluster) AddGroup(spec GroupSpec) (int, error) {
	if err := cl.validateSpec(spec); err != nil {
		return 0, err
	}
	g, err := cl.c.AddGroupWait(cluster.GroupSpec{
		Protocol: spec.Protocol.internal(),
		Replicas: spec.Replicas,
		Weight:   spec.Weight,
	})
	if err != nil {
		return g, fmt.Errorf("harmonia: %w", err)
	}
	return g, nil
}

// RemoveGroup retires group g: its slots are evacuated online to the
// remaining live groups (apportioned by capacity weight), its
// at-most-once client tables travel with them — so a retried write
// whose reply was lost replays at the destination instead of
// re-executing — and once evacuated the group leaves through the §5.3
// revoke/ack agreement: no member can serve a fast read past
// retirement. The call drives the simulation until the retirement
// completes; on failure (a batch could not drain) the group keeps its
// remaining slots and stays live.
func (cl *Cluster) RemoveGroup(g int) error {
	if err := cl.c.RemoveGroup(g); err != nil {
		return fmt.Errorf("harmonia: %w", err)
	}
	return nil
}

// RespecGroup replaces live group g's member set with one built from
// spec — a different protocol, replica count, or calibration — without
// moving any of its slots. The swap is staged: every slot of the group
// freezes, the scheduler partition drains, the old members acknowledge
// lease revocation (§5.3), the group's objects and client table copy
// into the fresh member set, and service resumes at the same switch
// epoch with the sequence space continued. Clients only observe the
// freeze window — the group's identity, slots, and routing are
// untouched.
func (cl *Cluster) RespecGroup(g int, spec GroupSpec) error {
	if err := cl.validateSpec(spec); err != nil {
		return err
	}
	if err := cl.c.RespecGroup(g, cluster.GroupSpec{
		Protocol: spec.Protocol.internal(),
		Replicas: spec.Replicas,
		Weight:   spec.Weight,
	}); err != nil {
		return fmt.Errorf("harmonia: %w", err)
	}
	return nil
}

// ReassignDeadSwitch batch-migrates a permanently dead switch's entire
// slot shard to the surviving switches' live groups. Unlike
// ReactivateSwitch (which boots a replacement for the SAME switch),
// this declares the switch unrecoverable: its groups' replica stores —
// which hold every committed write — are max-merged per slot, the
// recovered objects install on weight-apportioned surviving groups,
// the victims' client tables merge into every destination, and the
// victims retire through the revoke agreement. Afterwards every slot
// is served again and the dead switch hosts nothing.
func (cl *Cluster) ReassignDeadSwitch(s int) error {
	if err := cl.c.ReassignDeadSwitch(s); err != nil {
		return fmt.Errorf("harmonia: %w", err)
	}
	return nil
}

// TopologyEpoch returns the rack topology's membership revision
// counter. It moves exactly once per membership change (group added,
// retired, or re-weighted) and never on per-slot route flips, so
// consumers can cache derived state keyed by it.
func (cl *Cluster) TopologyEpoch() uint64 { return cl.c.Rack().TopoEpoch() }

// GroupLive reports whether group g currently serves traffic (false
// once retired; group IDs are never reused).
func (cl *Cluster) GroupLive(g int) bool { return cl.c.Rack().Live(g) }

// LiveGroups returns the IDs of the groups currently serving traffic,
// in ID order.
func (cl *Cluster) LiveGroups() []int { return cl.c.Rack().LiveGroups() }

// SlotHeat is one routing slot's recent operation counters, sampled
// from the switch front-end's per-slot register arrays. With the
// rebalancer's periodic EWMA decay the counters track a recent window;
// without it they accumulate since boot.
type SlotHeat struct {
	Reads  uint64
	Writes uint64
}

// Total is the slot's combined operation count.
func (h SlotHeat) Total() uint64 { return h.Reads + h.Writes }

// SlotHeat returns a copy of the per-slot heat counters — the signal
// the autonomous rebalancer ranks slots by, exposed for inspection and
// for custom placement tooling.
func (cl *Cluster) SlotHeat() []SlotHeat {
	raw := cl.c.SlotHeat()
	out := make([]SlotHeat, len(raw))
	for s, h := range raw {
		out[s] = SlotHeat{Reads: h.Reads, Writes: h.Writes}
	}
	return out
}

// Rebalances returns the total slot moves the autonomous rebalancer
// has completed over the cluster's lifetime (0 unless
// Config.AutoRebalance).
func (cl *Cluster) Rebalances() uint64 { return cl.c.Rebalances() }

// SwitchStats reports the scheduler's decision counters.
type SwitchStats struct {
	Writes          uint64 // writes sequenced
	WritesDropped   uint64 // dirty set full (clients got FlagDropped replies)
	FastReads       uint64 // single-replica reads
	NormalReads     uint64 // reads on the protocol path
	DirtyHits       uint64 // reads that found their object contended
	Completions     uint64 // write-completions processed
	StaleCompletion uint64 // completions ignored (older switch epoch)
	LazyCleanups    uint64 // stray dirty entries reclaimed on the read path
	ForwardedReads  uint64 // replica-rejected fast reads sent down the normal path
	SweptStale      uint64 // stray dirty entries reclaimed by the periodic sweep
	FrozenDrops     uint64 // client packets dropped on migrating (frozen) slots; aggregate view only
	DirtySetSize    int    // current contended-object count
	Epoch           uint32 // active switch incarnation
}

// SwitchStats snapshots the switch's counters summed over every
// scheduler partition (for a single-group cluster this is exactly
// group 0's view), plus the front-end's own counters — FrozenDrops
// happens before any partition is chosen, so it appears only here.
func (cl *Cluster) SwitchStats() SwitchStats {
	var out SwitchStats
	for g := 0; g < cl.c.Groups(); g++ {
		st := cl.GroupSwitchStats(g)
		out.Writes += st.Writes
		out.WritesDropped += st.WritesDropped
		out.FastReads += st.FastReads
		out.NormalReads += st.NormalReads
		out.DirtyHits += st.DirtyHits
		out.Completions += st.Completions
		out.StaleCompletion += st.StaleCompletion
		out.LazyCleanups += st.LazyCleanups
		out.ForwardedReads += st.ForwardedReads
		out.SweptStale += st.SweptStale
		out.DirtySetSize += st.DirtySetSize
		if g == 0 {
			out.Epoch = st.Epoch
		}
	}
	for s := 0; s < cl.c.Switches(); s++ {
		out.FrozenDrops += cl.c.FrontendOf(s).Stats.FrozenDrops
	}
	return out
}

// GroupSwitchStats snapshots group g's scheduler partition. A retired
// group has no partition anymore and reads as all-zero counters.
func (cl *Cluster) GroupSwitchStats(g int) SwitchStats {
	s := cl.c.GroupScheduler(g)
	if s == nil {
		return SwitchStats{}
	}
	st := s.Stats
	return SwitchStats{
		Writes: st.Writes, WritesDropped: st.WritesDropped,
		FastReads: st.FastReads, NormalReads: st.NormalReads,
		DirtyHits: st.DirtyHits, Completions: st.Completions,
		StaleCompletion: st.StaleCompletion, LazyCleanups: st.LazyCleanups,
		ForwardedReads: st.ForwardedReads, SweptStale: st.SweptStale,
		DirtySetSize: s.DirtyCount(), Epoch: s.Epoch(),
	}
}

// CheckResult is the linearizability verdict over the recorded
// history.
type CheckResult struct {
	Ok      bool
	Decided bool
	Reason  string
}

// CheckLinearizability verifies the recorded history (requires
// Config.RecordHistory). Mixing Client.Set with explicit values and
// history checking is unsupported; the load generators always use
// checkable values.
func (cl *Cluster) CheckLinearizability() CheckResult {
	res := cl.c.CheckLinearizability()
	return CheckResult{Ok: res.Ok, Decided: res.Decided, Reason: res.Reason}
}

// CheckLinearizabilityGroup verifies group g's slice of the recorded
// history. The key space is partitioned and linearizability is
// compositional, so sharded runs are checked shard by shard — each
// verdict stands on its own and the per-group searches stay small.
func (cl *Cluster) CheckLinearizabilityGroup(g int) CheckResult {
	res := cl.c.CheckLinearizabilityGroup(g)
	return CheckResult{Ok: res.Ok, Decided: res.Decided, Reason: res.Reason}
}

// CheckLinearizabilityKey verifies the slice of the recorded history
// touching a single key. A promoted hot key's reads are served by
// several groups, so neither the whole-history nor the per-group
// verdict isolates it; this checks that one replicated register on
// its own.
func (cl *Cluster) CheckLinearizabilityKey(key string) CheckResult {
	res := cl.c.CheckLinearizabilityKey(key)
	return CheckResult{Ok: res.Ok, Decided: res.Decided, Reason: res.Reason}
}

// History returns the recorded operations (for custom analysis).
func (cl *Cluster) History() []lincheck.Op { return cl.c.History() }

// HotKeyInfo describes one promoted key's replication state as the
// switch front-end sees it.
type HotKeyInfo struct {
	// Holders are the extra groups serving clean reads of the key
	// (the home group is not listed).
	Holders []int
	// Stale counts holders whose copy is invalidated by an
	// un-refreshed write; reads serialize at the home group while
	// it is nonzero.
	Stale int
	// WriteGen is the per-key write version the refresh protocol
	// matches against.
	WriteGen uint64
}

// PromoteKey replicates key's object across extra holder groups for
// read spreading (requires Config.HotKeys). With no explicit holders
// the controller picks the heaviest live groups on the key's switch.
func (cl *Cluster) PromoteKey(key string, holders ...int) error {
	return cl.c.PromoteKey(key, holders...)
}

// DemoteKey collapses a promoted key back to its home group. It
// reports whether the key was promoted.
func (cl *Cluster) DemoteKey(key string) bool { return cl.c.DemoteKey(key) }

// KeyPromoted reports whether key is currently hot-replicated, and if
// so its holder set and refresh state.
func (cl *Cluster) KeyPromoted(key string) (HotKeyInfo, bool) {
	hk, ok := cl.c.KeyPromoted(key)
	if !ok {
		return HotKeyInfo{}, false
	}
	info := HotKeyInfo{Stale: hk.InvalidCount(), WriteGen: hk.WriteGen}
	for _, h := range hk.Holders {
		info.Holders = append(info.Holders, int(h))
	}
	return info, ok
}

// HotKeyCount returns the number of currently promoted keys.
func (cl *Cluster) HotKeyCount() int { return cl.c.HotKeyCount() }

// HotKeyStats returns lifetime hot-key promotion and demotion counts.
func (cl *Cluster) HotKeyStats() (promotions, demotions uint64) {
	return cl.c.HotKeyStats()
}

// LatencyHistogram re-exports the metrics type for Report consumers
// needing more than the three quantiles.
type LatencyHistogram = metrics.Histogram

// Event is one control-plane flight-recorder entry: a timestamped,
// fixed-size record of a slot migration edge, a rebalancer tick or
// veto, a hot-key lifecycle step, a topology epoch bump, a §5.3
// agreement round, or a switch crash/reactivation.
type Event = trace.Event

// EventKind labels a flight-recorder event.
type EventKind = trace.EventKind

// Events returns the control-plane flight recorder's contents, oldest
// first. The recorder is always on and bounded: once full, each new
// event overwrites the oldest and DroppedEvents counts the loss.
func (cl *Cluster) Events() []Event { return cl.c.Events() }

// DroppedEvents reports how many flight-recorder events were
// overwritten before being read.
func (cl *Cluster) DroppedEvents() uint64 { return cl.c.DroppedEvents() }

// WriteChromeTrace dumps the flight recorder as Chrome trace_event
// JSON, openable in chrome://tracing or https://ui.perfetto.dev:
// migrations and hot-key promotions render as duration pairs, the
// rest as instant markers, one track per switch.
func (cl *Cluster) WriteChromeTrace(w io.Writer) error { return cl.c.WriteChromeTrace(w) }

// ResourceModel re-exports the §6.2 switch-memory model.
type ResourceModel = dataplane.ResourceModel

// PaperResourceExample returns the §6.2 worked example (n=3, m=64000,
// u=50%, t=1ms, w=5%).
func PaperResourceExample() ResourceModel { return dataplane.PaperExample() }
