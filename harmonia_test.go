package harmonia

import (
	"bytes"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.Set("user:42", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get("user:42")
	if err != nil || !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := cl.Delete("user:42"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get("user:42"); ok {
		t.Fatal("key survived delete")
	}
	if _, ok, _ := cl.Get("never-written"); ok {
		t.Fatal("phantom key")
	}
}

func TestAllProtocolsPublicAPI(t *testing.T) {
	for _, p := range []Protocol{PrimaryBackup, ChainReplication, CRAQ, ViewstampedReplication, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c, err := New(Config{Protocol: p, Replicas: 3})
			if err != nil {
				t.Fatal(err)
			}
			cl := c.Client()
			if err := cl.Set("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := cl.Get("k")
			if err != nil || !ok || string(v) != "v" {
				t.Fatalf("Get = %q, %v, %v", v, ok, err)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Protocol: Protocol(99)}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if _, err := New(Config{Protocol: CRAQ, UseHarmonia: true}); err == nil {
		t.Fatal("Harmonia(CRAQ) accepted")
	}
	if _, err := New(Config{Replicas: -1}); err == nil {
		t.Fatal("negative replicas accepted")
	}
}

func TestRunReportsThroughput(t *testing.T) {
	c, err := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 64, Duration: 20 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.05, Keys: 10000,
	})
	if rep.Ops == 0 || rep.Throughput == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.MeanLatency == 0 || rep.P99Latency < rep.P50Latency {
		t.Fatalf("latency stats inconsistent: %+v", rep)
	}
	st := c.SwitchStats()
	if st.FastReads == 0 || st.Writes == 0 {
		t.Fatalf("switch stats empty: %+v", st)
	}
}

func TestOpenLoopRun(t *testing.T) {
	c, _ := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	rep := c.Run(LoadSpec{
		Rate: 100000, Duration: 20 * time.Millisecond, Warmup: 2 * time.Millisecond,
		Keys: 1000,
	})
	if rep.Ops == 0 {
		t.Fatal("open loop completed nothing")
	}
}

func TestFailureInjectionAndLinCheck(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		RecordHistory: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.Set("a", nil); err != nil { // nil value: id-coded, checkable
		t.Fatal(err)
	}
	c.StopSwitch()
	c.ReactivateSwitch()
	c.AdvanceTime(10 * time.Millisecond)
	if _, _, err := cl.Get("a"); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if got := c.SwitchStats().Epoch; got != 2 {
		t.Fatalf("epoch = %d", got)
	}
	res := c.CheckLinearizability()
	if !res.Decided || !res.Ok {
		t.Fatalf("history check failed: %+v", res)
	}
	if len(c.History()) == 0 {
		t.Fatal("no history recorded")
	}
}

func TestCrashReplicaPublic(t *testing.T) {
	c, _ := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	if err := c.CrashReplica(2); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if err := cl.Set("x", []byte("1")); err != nil {
		t.Fatalf("write after tail crash: %v", err)
	}
	if err := c.CrashReplica(99); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
}

func TestSeriesCollection(t *testing.T) {
	c, _ := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	rep := c.Run(LoadSpec{
		Clients: 16, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		Keys: 100, Bucket: time.Millisecond,
	})
	if len(rep.Series) == 0 {
		t.Fatal("no time series collected")
	}
}

func TestPreloadPublic(t *testing.T) {
	c, _ := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true})
	c.Preload(5)
	cl := c.Client()
	if _, ok, _ := cl.Get("obj00000003"); !ok {
		t.Fatal("preloaded key missing")
	}
}

func TestResourceExample(t *testing.T) {
	r := PaperResourceExample()
	if r.WriteRate() != 96e6 || r.TotalRate() != 1.92e9 {
		t.Fatalf("paper numbers off: %g %g", r.WriteRate(), r.TotalRate())
	}
}
