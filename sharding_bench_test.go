package harmonia

import (
	"testing"

	"harmonia/internal/experiments"
)

// BenchmarkFigSGroupScaling regenerates the sharding experiment: one
// switch, N replica groups, near-linear aggregate scaling along the
// system-size axis.
func BenchmarkFigSGroupScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.FigS(benchScale)
		m := series[0].Points
		b.ReportMetric(m[0].Y, "one_group_MRPS")
		b.ReportMetric(m[2].Y, "four_groups_MRPS")
		b.ReportMetric(m[len(m)-1].Y, "eight_groups_MRPS")
		b.ReportMetric(m[2].Y/m[0].Y, "x_speedup_at_4_groups")
	}
}
