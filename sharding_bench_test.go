package harmonia

import (
	"testing"

	"harmonia/internal/experiments"
)

// BenchmarkFigSGroupScaling regenerates the sharding experiment: one
// switch, N replica groups, near-linear aggregate scaling along the
// system-size axis.
func BenchmarkFigSGroupScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.FigS(benchScale)
		m := series[0].Points
		b.ReportMetric(m[0].Y, "one_group_MRPS")
		b.ReportMetric(m[2].Y, "four_groups_MRPS")
		b.ReportMetric(m[len(m)-1].Y, "eight_groups_MRPS")
		b.ReportMetric(m[2].Y/m[0].Y, "x_speedup_at_4_groups")
	}
}

// BenchmarkFigRRebalance regenerates the online group-rebalancing
// experiment: a pinned zipf hot spot collapses the aggregate onto one
// group, then its hottest slots migrate away mid-run and the aggregate
// recovers.
func BenchmarkFigRRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res := experiments.FigRDetail(benchScale)
		b.ReportMetric(res.PreThroughput/1e6, "hotspot_MRPS")
		b.ReportMetric(res.PostThroughput/1e6, "rebalanced_MRPS")
		b.ReportMetric(res.PostThroughput/res.PreThroughput, "x_recovery")
	}
}
