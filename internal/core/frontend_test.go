package core

import (
	"testing"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// frontendFixture builds a 3-group front-end whose schedulers all
// share one capturing sender.
func frontendFixture(t *testing.T) (*Frontend, *capture) {
	t.Helper()
	cap := &capture{}
	f := NewFrontend(3)
	for g := 0; g < 3; g++ {
		f.SetGroup(g, New(Config{
			Epoch: 1, Stages: 1, SlotsPerStage: 8,
			Replicas: []simnet.NodeID{simnet.NodeID(10 + 3*g), simnet.NodeID(11 + 3*g)},
			WriteDst: simnet.NodeID(10 + 3*g), ReadDst: simnet.NodeID(11 + 3*g),
			ClientBase: 1000,
		}, cap))
	}
	return f, cap
}

// objInGroup finds an ObjectID hashing to group g of n.
func objInGroup(g, n int) wire.ObjectID {
	for id := uint32(1); ; id++ {
		if wire.GroupOf(wire.ObjectID(id), n) == g {
			return wire.ObjectID(id)
		}
	}
}

func TestFrontendHashesClientPacketsToGroups(t *testing.T) {
	f, _ := frontendFixture(t)
	for g := 0; g < 3; g++ {
		obj := objInGroup(g, 3)
		pkt := &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: uint64(g + 1)}
		f.Recv(1000, pkt)
		if int(pkt.Group) != g {
			t.Fatalf("obj %d stamped group %d, want %d", obj, pkt.Group, g)
		}
		if f.Group(g).Stats.Writes != 1 {
			t.Fatalf("group %d scheduler saw %d writes", g, f.Group(g).Stats.Writes)
		}
	}
}

func TestFrontendRoutesCompletionsByHeaderGroup(t *testing.T) {
	f, _ := frontendFixture(t)
	obj := objInGroup(2, 3)
	// Sequence a write through group 2 so its partition has seq state.
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1})
	seq := wire.Seq{Epoch: 1, N: 1}
	f.Recv(10, &wire.Packet{Op: wire.OpWriteCompletion, ObjID: obj, Group: 2, Seq: seq})
	if got := f.Group(2).Stats.Completions; got != 1 {
		t.Fatalf("group 2 completions = %d", got)
	}
	if f.Group(0).Stats.Completions != 0 || f.Group(1).Stats.Completions != 0 {
		t.Fatal("completion leaked into another partition")
	}
	if !f.Group(2).Ready() {
		t.Fatal("group 2 not ready after own-epoch completion")
	}
}

func TestFrontendDropsOutOfRangeGroup(t *testing.T) {
	f, _ := frontendFixture(t)
	// Corrupt header group on a replica-originated packet: dropped, no
	// panic, no partition touched.
	f.Recv(10, &wire.Packet{Op: wire.OpWriteCompletion, ObjID: 1, Group: 99, Seq: wire.Seq{Epoch: 1, N: 1}})
	for g := 0; g < 3; g++ {
		if f.Group(g).Stats.Completions != 0 {
			t.Fatalf("group %d processed a corrupt packet", g)
		}
	}
}

func TestFrontendNilSlotDropsTraffic(t *testing.T) {
	f, cap := frontendFixture(t)
	obj := objInGroup(1, 3)
	f.SetGroup(1, nil) // group 1 booting: its traffic vanishes
	before := len(cap.out)
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1})
	if len(cap.out) != before {
		t.Fatal("booting partition forwarded a packet")
	}
	// Other groups unaffected.
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: objInGroup(0, 3), ClientID: 1, ReqID: 2})
	if len(cap.out) != before+1 {
		t.Fatal("healthy partition did not forward")
	}
}

func TestFrontendRebootClearsEverySlot(t *testing.T) {
	f, _ := frontendFixture(t)
	f.Reboot()
	for g := 0; g < 3; g++ {
		if f.Group(g) != nil {
			t.Fatalf("group %d survived reboot", g)
		}
	}
}

func TestFrontendIgnoresNonPacketTraffic(t *testing.T) {
	f, cap := frontendFixture(t)
	f.Recv(10, "not a packet")
	if len(cap.out) != 0 {
		t.Fatal("non-packet message forwarded")
	}
}

// objInSlot finds an ObjectID hashing to the given routing slot.
func objInSlot(slot int) wire.ObjectID {
	for id := uint32(1); ; id++ {
		if wire.SlotOf(wire.ObjectID(id)) == slot {
			return wire.ObjectID(id)
		}
	}
}

// TestFrontendRoutingTable is the table-driven contract of the slot
// routing table: default striping, client-stamp override, route
// flips, freezes, and the replica-path exemption.
func TestFrontendRoutingTable(t *testing.T) {
	obj := objInSlot(10) // default route in a 3-group front-end: 10 % 3 = 1
	cases := []struct {
		name   string
		setup  func(f *Frontend)
		pkt    wire.Packet
		want   int  // group whose scheduler must process the packet; -1 = dropped
		stamp  int  // expected pkt.Group after Recv (client ops only); -1 = skip
		frozen bool // expect a FrozenDrops increment
	}{
		{
			name: "default striping routes by slot",
			pkt:  wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1},
			want: 1, stamp: 1,
		},
		{
			name: "stale client stamp is overridden",
			pkt:  wire.Packet{Op: wire.OpWrite, ObjID: obj, Group: 2, ClientID: 1, ReqID: 1},
			want: 1, stamp: 1,
		},
		{
			name:  "flipped route wins over the default",
			setup: func(f *Frontend) { f.SetRoute(10, 2) },
			pkt:   wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: 1},
			want:  2, stamp: 2,
		},
		{
			name:  "stale stamp cannot reach the old group after a flip",
			setup: func(f *Frontend) { f.SetRoute(10, 0) },
			pkt:   wire.Packet{Op: wire.OpWrite, ObjID: obj, Group: 1, ClientID: 1, ReqID: 1},
			want:  0, stamp: 0,
		},
		{
			name:  "frozen slot drops client writes",
			setup: func(f *Frontend) { f.FreezeSlot(10) },
			pkt:   wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1},
			want:  -1, stamp: -1, frozen: true,
		},
		{
			name:  "frozen slot drops client reads",
			setup: func(f *Frontend) { f.FreezeSlot(10) },
			pkt:   wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: 1},
			want:  -1, stamp: -1, frozen: true,
		},
		{
			name:  "thawed slot serves again",
			setup: func(f *Frontend) { f.FreezeSlot(10); f.UnfreezeSlot(10) },
			pkt:   wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1},
			want:  1, stamp: 1,
		},
		{
			name:  "replica completions pass a frozen slot by header group",
			setup: func(f *Frontend) { f.FreezeSlot(10) },
			pkt: wire.Packet{Op: wire.OpWriteCompletion, ObjID: obj, Group: 1,
				Seq: wire.Seq{Epoch: 1, N: 1}},
			want: 1, stamp: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, _ := frontendFixture(t)
			if tc.setup != nil {
				tc.setup(f)
			}
			pkt := tc.pkt
			before := f.Stats.FrozenDrops
			f.Recv(1000, &pkt)
			for g := 0; g < 3; g++ {
				st := f.Group(g).Stats
				processed := st.Writes + st.FastReads + st.NormalReads + st.Completions
				if g == tc.want && processed == 0 {
					t.Fatalf("group %d did not process the packet", g)
				}
				if g != tc.want && processed != 0 {
					t.Fatalf("group %d processed a packet routed elsewhere", g)
				}
			}
			if tc.stamp >= 0 && int(pkt.Group) != tc.stamp {
				t.Fatalf("packet stamped group %d, want %d", pkt.Group, tc.stamp)
			}
			if got := f.Stats.FrozenDrops - before; (got != 0) != tc.frozen {
				t.Fatalf("FrozenDrops delta = %d, frozen case = %v", got, tc.frozen)
			}
		})
	}
}

func TestFrontendSlotTableDefaultsAndCopy(t *testing.T) {
	f := NewFrontend(3)
	tab := f.SlotTable()
	if len(tab) != wire.NumSlots {
		t.Fatalf("slot table has %d entries", len(tab))
	}
	for s, g := range tab {
		if g != wire.DefaultGroupOfSlot(s, 3) {
			t.Fatalf("slot %d defaults to group %d, want %d", s, g, wire.DefaultGroupOfSlot(s, 3))
		}
	}
	tab[0] = 2 // mutating the copy must not touch the live table
	if f.RouteOf(0) != 0 {
		t.Fatal("SlotTable returned the live table, not a copy")
	}
}

func TestFrontendRebootKeepsRoutes(t *testing.T) {
	f := NewFrontend(3)
	f.SetRoute(5, 2)
	f.FreezeSlot(6)
	f.Reboot()
	if f.RouteOf(5) != 2 || !f.Frozen(6) {
		t.Fatal("reboot lost control-plane routing state")
	}
}

func TestGroupOfCoversAllGroupsEvenly(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		g := wire.GroupOf(wire.ObjectID(uint32(i)*2654435761+7), n)
		if g < 0 || g >= n {
			t.Fatalf("GroupOf out of range: %d", g)
		}
		counts[g]++
	}
	for g, c := range counts {
		if c < 100000/n/2 || c > 100000/n*2 {
			t.Fatalf("group %d badly unbalanced: %d of 100000", g, c)
		}
	}
	if wire.GroupOf(12345, 1) != 0 || wire.GroupOf(12345, 0) != 0 {
		t.Fatal("degenerate group counts must map to 0")
	}
}
