package core

import (
	"testing"

	"harmonia/internal/wire"
)

// hotFixture promotes an object in slot 10 (home group 1 in the
// 3-group fixture) with groups 0 and 2 as holders and validates the
// copies, the steady state in which reads spread.
func hotFixture(t *testing.T) (*Frontend, wire.ObjectID) {
	t.Helper()
	f, _ := frontendFixture(t)
	obj := objInSlot(10)
	f.Promote(obj, []int{0, 2})
	if hk, ok := f.Promoted(obj); !ok || hk.InvalidCount() != 2 {
		t.Fatalf("fresh promotion = %+v, %v; want 2 invalid holders", hk, ok)
	}
	if !f.CompleteRefresh(obj, 0) {
		t.Fatal("initial refresh at gen 0 did not validate")
	}
	return f, obj
}

func TestHotKeyPromoteSpreadsCleanReads(t *testing.T) {
	f, obj := hotFixture(t)
	for i := 0; i < 6; i++ {
		f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: uint64(i + 1)})
	}
	// Round-robin over home + 2 holders: 2 turns each.
	for g := 0; g < 3; g++ {
		st := f.Group(g).Stats
		if got := st.FastReads + st.NormalReads; got != 2 {
			t.Fatalf("group %d served %d reads, want 2", g, got)
		}
	}
	if f.Stats.SpreadReads != 4 {
		t.Fatalf("SpreadReads = %d, want 4 (home turns don't count)", f.Stats.SpreadReads)
	}
	// Spread reads must NOT inflate the home slot's heat register —
	// the register tracks load the home group actually serves. Only
	// the 2 home-turn reads count.
	if h := f.HeatOf(10); h.Reads != 2 {
		t.Fatalf("home slot heat Reads = %d, want 2", h.Reads)
	}
	// The per-key counters see everything: they feed demotion.
	if r, _ := f.HotHeatOf(obj); r != 6 {
		t.Fatalf("per-key reads = %d, want 6", r)
	}
}

func TestHotKeyWriteInvalidatesHolders(t *testing.T) {
	f, obj := hotFixture(t)
	pkt := &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1}
	f.Recv(1000, pkt)
	if pkt.Flags&wire.FlagInvalidate == 0 {
		t.Fatal("write to a promoted key did not carry FlagInvalidate")
	}
	hk, _ := f.Promoted(obj)
	if hk.InvalidCount() != 2 || hk.WriteGen != 1 {
		t.Fatalf("after write: %+v, want 2 invalid holders at gen 1", hk)
	}
	if f.Stats.Invalidations != 1 {
		t.Fatalf("Invalidations = %d", f.Stats.Invalidations)
	}
	// While any holder is invalid every read serializes at home.
	for i := 0; i < 3; i++ {
		f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: uint64(i + 2)})
	}
	if st0, st2 := f.Group(0).Stats, f.Group(2).Stats; st0.FastReads+st0.NormalReads != 0 ||
		st2.FastReads+st2.NormalReads != 0 {
		t.Fatal("read spread to a holder with an invalid copy")
	}
	// A refresh that captured the pre-write value must not validate.
	if f.CompleteRefresh(obj, 0) {
		t.Fatal("stale refresh validated")
	}
	if f.Stats.StaleRefreshes != 1 {
		t.Fatalf("StaleRefreshes = %d", f.Stats.StaleRefreshes)
	}
	// The current-generation refresh does, and spreading resumes.
	if !f.CompleteRefresh(obj, 1) {
		t.Fatal("current-generation refresh rejected")
	}
	f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: 9})
	if f.Stats.SpreadReads != 1 {
		t.Fatalf("SpreadReads = %d after revalidation", f.Stats.SpreadReads)
	}
}

func TestHotKeyRefreshCompletionConsumedAtSwitch(t *testing.T) {
	f, obj := hotFixture(t)
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1})
	// The controller's refresh completion travels as a wire packet; the
	// front-end validates the entry and consumes it — its Seq carries a
	// write generation, so no scheduler partition may ever see it.
	f.Recv(2, &wire.Packet{Op: wire.OpWriteCompletion, Flags: wire.FlagRefresh,
		ObjID: obj, Group: 1, Seq: wire.Seq{N: 1}})
	if hk, _ := f.Promoted(obj); hk.InvalidCount() != 0 {
		t.Fatalf("refresh packet did not validate: %+v", hk)
	}
	for g := 0; g < 3; g++ {
		if f.Group(g).Stats.Completions != 0 {
			t.Fatalf("group %d scheduler saw the refresh completion", g)
		}
	}
}

func TestHotKeyFrozenWriteDoesNotInvalidate(t *testing.T) {
	f, obj := hotFixture(t)
	f.FreezeSlot(10)
	pkt := &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1}
	f.Recv(1000, pkt)
	// The write was dropped, never sequenced: bumping the generation or
	// invalidating holders for it would stall spreading for nothing.
	if pkt.Flags&wire.FlagInvalidate != 0 {
		t.Fatal("dropped write carried FlagInvalidate")
	}
	if hk, _ := f.Promoted(obj); hk.WriteGen != 0 || hk.InvalidCount() != 0 {
		t.Fatalf("dropped write mutated the entry: %+v", hk)
	}
}

func TestHotKeyWriteHookFiresOnCompletion(t *testing.T) {
	f, obj := hotFixture(t)
	var hookID wire.ObjectID
	var hookGen uint64
	fires := 0
	f.SetHotWriteHook(func(id wire.ObjectID, gen uint64) { hookID, hookGen, fires = id, gen, fires+1 })
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1})
	if fires != 0 {
		t.Fatal("hook fired before any completion traversed")
	}
	f.Recv(10, &wire.Packet{Op: wire.OpWriteCompletion, ObjID: obj, Group: 1,
		Seq: wire.Seq{Epoch: 1, N: 1}})
	if fires != 1 || hookID != obj || hookGen != 1 {
		t.Fatalf("hook fires=%d id=%d gen=%d, want 1/%d/1", fires, hookID, hookGen, obj)
	}
	// The completion still reached its scheduler partition.
	if f.Group(1).Stats.Completions != 1 {
		t.Fatal("completion consumed instead of forwarded")
	}
	// Once the holders are valid again, completions stop cueing.
	f.CompleteRefresh(obj, 1)
	f.Recv(10, &wire.Packet{Op: wire.OpWriteCompletion, ObjID: obj, Group: 1,
		Seq: wire.Seq{Epoch: 1, N: 2}})
	if fires != 1 {
		t.Fatal("hook fired for a valid entry")
	}
}

func TestHotKeyRemoveHolderCompactsBitmap(t *testing.T) {
	f, obj := hotFixture(t)
	// Invalidate both holders, then drop holder 0: holder 2's invalid
	// bit must survive the compaction at its new index.
	f.Recv(1000, &wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: 1})
	if left := f.RemoveHolder(obj, 0); left != 1 {
		t.Fatalf("RemoveHolder left %d holders, want 1", left)
	}
	hk, _ := f.Promoted(obj)
	if len(hk.Holders) != 1 || hk.Holders[0] != 2 || hk.InvalidCount() != 1 {
		t.Fatalf("after removal: %+v", hk)
	}
	f.CompleteRefresh(obj, 1)
	if hk, _ = f.Promoted(obj); hk.InvalidCount() != 0 {
		t.Fatalf("refresh after removal: %+v", hk)
	}
	if left := f.RemoveHolder(obj, 2); left != 0 {
		t.Fatalf("final RemoveHolder left %d", left)
	}
	// Zero holders: every read falls through to home, no spreading.
	f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 1, ReqID: 2})
	if f.Stats.SpreadReads != 0 {
		t.Fatal("spread with zero holders")
	}
}

func TestHotKeyDemoteAndReboot(t *testing.T) {
	f, obj := hotFixture(t)
	if !f.Demote(obj) || f.Demote(obj) {
		t.Fatal("Demote must report exactly one removal")
	}
	if f.PromotedCount() != 0 {
		t.Fatalf("PromotedCount = %d after demote", f.PromotedCount())
	}
	f.Promote(obj, []int{0})
	f.Reboot()
	if f.PromotedCount() != 0 {
		t.Fatal("hot-key table survived a reboot (soft switch state must not)")
	}
}

// The per-slot hottest-key register is a Boyer–Moore majority vote: a
// key with a strict majority of the slot's traffic is always the
// candidate, with votes proportional to its dominance.
func TestHotKeyCandidateMajorityVote(t *testing.T) {
	f, _ := frontendFixture(t)
	hot := objInSlot(10)
	// A second object in the same slot, distinct from hot.
	var other wire.ObjectID
	for id := uint32(1); ; id++ {
		if o := wire.ObjectID(id); wire.SlotOf(o) == 10 && o != hot {
			other = o
			break
		}
	}
	req := uint64(1)
	for i := 0; i < 90; i++ {
		f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: hot, ClientID: 1, ReqID: req})
		req++
	}
	for i := 0; i < 30; i++ {
		f.Recv(1000, &wire.Packet{Op: wire.OpRead, ObjID: other, ClientID: 1, ReqID: req})
		req++
	}
	kh := f.KeyHeatOf(10)
	if kh.Cand != hot {
		t.Fatalf("candidate = %d, want %d", kh.Cand, hot)
	}
	if kh.Votes != 60 {
		t.Fatalf("votes = %d, want 60 (90 for − 30 against)", kh.Votes)
	}
	// ClearHeat resets the vote with the slot's registers.
	f.ClearHeat(10)
	if kh := f.KeyHeatOf(10); kh.Votes != 0 {
		t.Fatalf("votes = %d after ClearHeat", kh.Votes)
	}
}

// Satellite guard: the rack's rebalancer tick reads every switch's
// heat through SlotHeatInto, which must not allocate.
func TestSlotHeatIntoAllocs(t *testing.T) {
	f := NewFrontend(4)
	dst := make([]SlotHeat, wire.NumSlots)
	allocs := testing.AllocsPerRun(1000, func() { f.SlotHeatInto(dst) })
	if allocs != 0 {
		t.Fatalf("SlotHeatInto allocates %.1f per run, want 0", allocs)
	}
}
