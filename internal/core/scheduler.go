// Package core implements the paper's primary contribution: the
// Harmonia in-network request scheduler (Algorithm 1), which performs
// read-write conflict detection in the switch data plane.
//
// The scheduler tracks three pieces of soft state (§5):
//
//   - a monotonically increasing sequence number, stamped into every
//     write;
//   - the dirty set: object IDs with pending writes, each associated
//     with the largest sequence number of its outstanding writes,
//     stored in the multi-stage register-array hash table of
//     internal/dataplane;
//   - the last-committed point: the largest sequence number known to
//     be committed by the replication protocol.
//
// Reads for objects not in the dirty set are sent to a single random
// replica, stamped with the last-committed point so the replica can run
// the §7 visibility/integrity check locally; everything else follows
// the unmodified replication protocol. Sequence numbers are tagged with
// the switch incarnation's epoch and ordered lexicographically (epoch
// first), which is what makes switch reboot/replacement safe (§5.3).
package core

import (
	"harmonia/internal/dataplane"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// Sender abstracts packet output from the scheduler (the cluster wires
// it to the simulated network).
type Sender interface {
	Send(to simnet.NodeID, pkt *wire.Packet)
}

// SenderFunc adapts a function to Sender.
type SenderFunc func(to simnet.NodeID, pkt *wire.Packet)

// Send implements Sender.
func (f SenderFunc) Send(to simnet.NodeID, pkt *wire.Packet) { f(to, pkt) }

// Config parameterizes a scheduler instance for one replica group.
type Config struct {
	// Epoch is this switch incarnation's unique ID. Replacement
	// switches must use a strictly larger epoch (§5.3).
	Epoch uint32

	// Stages and SlotsPerStage size the dirty-set hash table. The
	// prototype in the paper uses 3 stages × 64K slots (§8).
	Stages        int
	SlotsPerStage int

	// Replicas are the data-plane addresses of the group members, used
	// for fast-path read scheduling.
	Replicas []simnet.NodeID

	// WriteDst receives writes on the normal path (primary, chain
	// head, or leader). Ignored when MulticastWrites is set.
	WriteDst simnet.NodeID

	// ReadDst receives normal-path reads (primary, chain tail, or
	// leader).
	ReadDst simnet.NodeID

	// MulticastWrites enables the NOPaxos OUM mode: sequenced writes
	// are delivered to every replica instead of a single entry point.
	// The Harmonia sequence number doubles as the OUM message number.
	MulticastWrites bool

	// ClientBase maps ClientID c to network address ClientBase +
	// NodeID(c) for reply routing.
	ClientBase simnet.NodeID

	// DisableFastReads turns Harmonia assistance off entirely: the
	// switch degrades to an L2/L3 forwarder for the normal protocol.
	// Used for baselines.
	DisableFastReads bool

	// RandomReads spreads every read over the replicas with no
	// conflict detection and no commit stamp, emulating client-side
	// load balancing. CRAQ uses this: its reads may land on any node
	// and the protocol itself resolves dirty objects via the tail.
	RandomReads bool

	// DisableCommitStamp is an ablation switch: fast-path reads are
	// sent without a meaningful last-committed point, which breaks
	// linearizability under asynchrony. Only for experiments; never
	// use in production paths.
	DisableCommitStamp bool

	// DisableLazyCleanup is an ablation switch: stray dirty-set
	// entries (from dropped WRITE-COMPLETIONs) are not reclaimed when
	// reads probe them (§5.2's cleanup rule).
	DisableLazyCleanup bool
}

// fastRand is an xorshift64* PRNG inlined into the scheduler: the
// per-read replica pick is a couple of ALU ops on a word of local
// state, matching what a real data plane would do with a hash of the
// packet header rather than calling into math/rand. It is seeded from
// the switch epoch, never from the simulation's shared RNG, so the
// scheduler's picks perturb no other component's random stream.
type fastRand uint64

func (r *fastRand) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = fastRand(x)
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n). The modulo bias is immaterial for
// replica counts (n ≤ a few dozen).
func (r *fastRand) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Stats counts scheduler decisions; the evaluation harness reads them.
type Stats struct {
	Writes          uint64 // writes sequenced and forwarded
	WritesDropped   uint64 // writes dropped: dirty set had no free slot
	FastReads       uint64 // reads sent to a single random replica
	NormalReads     uint64 // reads sent down the normal protocol path
	DirtyHits       uint64 // reads that found their object contended
	Completions     uint64 // write-completions processed (current epoch)
	StaleCompletion uint64 // completions ignored (older epoch)
	LazyCleanups    uint64 // stray entries reclaimed on the read path
	ForwardedReads  uint64 // replica-rejected reads passed to normal path
	SweptStale      uint64 // stray entries reclaimed by periodic sweeps
}

// Scheduler is the in-switch request scheduler. It is driven entirely
// by packets on the data path plus a handful of control-plane methods
// (replica add/remove) invoked by the cluster controller.
type Scheduler struct {
	cfg   Config
	seqN  uint64 // per-epoch write counter
	dirty *dataplane.Table
	last  wire.Seq // last-committed point
	out   Sender
	rng   fastRand

	// ready reports whether the switch has seen a WRITE-COMPLETION
	// carrying its own epoch. Until then it must not schedule
	// single-replica reads, because its dirty set and last-committed
	// point may not yet reflect reality (§5.3).
	ready bool

	// traceSeq, when set, fires as a TRACED write (pkt.Span != 0) is
	// assigned its sequence number — the span's switch-sequencing hop.
	// Untraced packets never invoke it.
	traceSeq func(pkt *wire.Packet)

	replicas []simnet.NodeID

	Stats Stats
}

// New builds a scheduler from cfg.
func New(cfg Config, out Sender) *Scheduler {
	if cfg.Stages <= 0 {
		cfg.Stages = 3
	}
	if cfg.SlotsPerStage <= 0 {
		cfg.SlotsPerStage = 64000
	}
	s := &Scheduler{
		cfg:      cfg,
		dirty:    dataplane.NewTable(cfg.Stages, cfg.SlotsPerStage),
		out:      out,
		replicas: append([]simnet.NodeID(nil), cfg.Replicas...),
	}
	s.rng = fastRand((uint64(cfg.Epoch)+1)*0x9e3779b97f4a7c15 | 1)
	return s
}

// Epoch returns the switch incarnation ID.
func (s *Scheduler) Epoch() uint32 { return s.cfg.Epoch }

// LastCommitted returns the switch's last-committed point.
func (s *Scheduler) LastCommitted() wire.Seq { return s.last }

// DirtyCount returns the number of tracked contended objects.
func (s *Scheduler) DirtyCount() int { return s.dirty.Used() }

// DirtyKey reports whether id currently holds a dirty-set entry — a
// write was sequenced through this partition and its completion has
// not yet traversed the switch (or the entry is a stray awaiting
// reclamation). The hot-key refresh path uses it as a commit barrier:
// while the entry stands, the newest value extractable from the
// replicas may predate the sequenced write, so a refresh must wait.
func (s *Scheduler) DirtyKey(id wire.ObjectID) bool {
	_, ok := s.dirty.Lookup(uint32(id))
	return ok
}

// Ready reports whether single-replica reads are enabled (first
// own-epoch WRITE-COMPLETION observed).
func (s *Scheduler) Ready() bool { return s.ready }

// Recv implements simnet.Handler: every packet to or from the replica
// group traverses the switch.
func (s *Scheduler) Recv(from simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		// Non-Harmonia traffic (protocol-internal messages relayed
		// through the ToR in a real deployment) is not examined here;
		// the cluster routes protocol messages directly.
		return
	}
	s.Process(pkt)
}

// Process applies Algorithm 1 to one packet and forwards it.
func (s *Scheduler) Process(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		s.processWrite(pkt)
	case wire.OpWriteCompletion:
		s.processCompletion(pkt)
		// Standalone completion notifications terminate here.
		pkt.Release()
	case wire.OpWriteReply:
		// Completions are usually piggybacked on the write reply
		// (§5.1, Fig. 2b): process the completion, then forward the
		// reply to the client.
		if !pkt.Seq.IsZero() {
			s.processCompletion(pkt)
		}
		s.toClient(pkt)
	case wire.OpReadReply:
		s.toClient(pkt)
	case wire.OpRead:
		s.processRead(pkt)
	}
}

// SetTraceHook installs the sequencing-hop callback (see traceSeq).
func (s *Scheduler) SetTraceHook(fn func(pkt *wire.Packet)) { s.traceSeq = fn }

// processWrite implements Algorithm 1 lines 1–4.
func (s *Scheduler) processWrite(pkt *wire.Packet) {
	s.seqN++
	pkt.Seq = wire.Seq{Epoch: s.cfg.Epoch, N: s.seqN}
	if pkt.Span != 0 && s.traceSeq != nil {
		s.traceSeq(pkt)
	}
	if err := s.dirty.Insert(uint32(pkt.ObjID), s.seqN); err != nil {
		// No slot available in any stage: the switch drops the write
		// (§6.1) and synthesizes a FlagDropped reply so the client
		// learns immediately instead of burning a retry timeout (and
		// so open-loop writers, which never retry on their own, are
		// not left hanging forever).
		s.Stats.WritesDropped++
		rej := wire.NewPacket()
		rej.Op = wire.OpWriteReply
		rej.Flags = wire.FlagDropped
		rej.ObjID = pkt.ObjID
		rej.Group = pkt.Group
		rej.ClientID = pkt.ClientID
		rej.ReqID = pkt.ReqID
		rej.Key = pkt.Key
		rej.Span = pkt.Span // keep the trace span alive across the reject
		s.toClient(rej)
		pkt.Release()
		return
	}
	s.Stats.Writes++
	if s.cfg.MulticastWrites {
		// One sequenced packet shared by every replica: the header was
		// stamped above and packets are immutable once sequenced (see
		// internal/wire), so OUM multicast is N sends of one pointer,
		// not N deep copies — the batched-multicast analogue of the
		// switch replicating a frame in the egress pipeline. Each
		// delivery consumes one reference, so the extras are taken up
		// front (before the first send can drop the packet to zero on a
		// lossy link).
		if len(s.replicas) == 0 {
			pkt.Release()
			return
		}
		for i := 1; i < len(s.replicas); i++ {
			pkt.Retain()
		}
		for _, r := range s.replicas {
			s.out.Send(r, pkt)
		}
		return
	}
	s.out.Send(s.cfg.WriteDst, pkt)
}

// processCompletion implements Algorithm 1 lines 5–8, restricted to the
// current epoch: the dirty set only ever contains current-epoch
// entries (register state is reset on reboot), so completions from
// earlier incarnations cannot clear anything and must not mark the
// switch ready.
func (s *Scheduler) processCompletion(pkt *wire.Packet) {
	if pkt.Seq.Epoch != s.cfg.Epoch {
		s.Stats.StaleCompletion++
		return
	}
	s.Stats.Completions++
	s.dirty.Delete(uint32(pkt.ObjID), pkt.Seq.N)
	s.last = s.last.Max(pkt.Seq)
	s.ready = true
}

// processRead implements Algorithm 1 lines 9–12 plus the §5.2 lazy
// cleanup of stray entries.
func (s *Scheduler) processRead(pkt *wire.Packet) {
	if s.cfg.RandomReads && len(s.replicas) > 0 {
		s.Stats.NormalReads++
		s.out.Send(s.replicas[s.rng.intn(len(s.replicas))], pkt)
		return
	}
	if pkt.Flags&wire.FlagForwarded != 0 {
		// A replica rejected this fast-path read; it is now a normal
		// protocol read regardless of dirty-set state.
		s.Stats.ForwardedReads++
		s.out.Send(s.cfg.ReadDst, pkt)
		return
	}
	contended := false
	if seqN, ok := s.dirty.Lookup(uint32(pkt.ObjID)); ok {
		// §5.2: stray entries (whose completions were lost) are
		// reclaimed as reads probe them, because in-order write
		// processing means a committed point at or beyond the entry's
		// sequence number proves the write finished.
		if !s.cfg.DisableLazyCleanup &&
			s.last.Epoch == s.cfg.Epoch && seqN <= s.last.N {
			s.dirty.CleanSlotIfStale(uint32(pkt.ObjID), s.last.N)
			s.Stats.LazyCleanups++
		} else {
			contended = true
		}
	}
	if contended || s.cfg.DisableFastReads || !s.ready || len(s.replicas) == 0 {
		if contended {
			s.Stats.DirtyHits++
		}
		s.Stats.NormalReads++
		s.out.Send(s.cfg.ReadDst, pkt)
		return
	}
	// Fast path: stamp the last-committed point and pick a random
	// replica. The stamped epoch equals this switch's epoch (the
	// switch is only ready after an own-epoch completion), which is
	// how replicas identify the sending switch incarnation.
	if !s.cfg.DisableCommitStamp {
		pkt.LastCommitted = s.last
	} else {
		// Ablation: stamp a maximal point so replicas always accept.
		pkt.LastCommitted = wire.Seq{Epoch: s.cfg.Epoch, N: ^uint64(0)}
	}
	pkt.Flags |= wire.FlagFastPath
	s.Stats.FastReads++
	s.out.Send(s.replicas[s.rng.intn(len(s.replicas))], pkt)
}

// toClient routes a reply packet to its client.
func (s *Scheduler) toClient(pkt *wire.Packet) {
	s.out.Send(s.cfg.ClientBase+simnet.NodeID(pkt.ClientID), pkt)
}

// Replicas returns a copy of the current fast-path replica set. A
// replacement switch's scheduler is seeded from its predecessor's set
// so reconfigurations (crashed members removed) survive the §5.3
// handover.
func (s *Scheduler) Replicas() []simnet.NodeID {
	return append([]simnet.NodeID(nil), s.replicas...)
}

// SetReplicas replaces the fast-path replica set wholesale (replacement
// switch seeding; incremental changes use Add/RemoveReplica).
func (s *Scheduler) SetReplicas(ids []simnet.NodeID) {
	s.replicas = append(s.replicas[:0:0], ids...)
}

// Targets returns the current normal-path destinations, as last set by
// SetTargets (boot defaults otherwise).
func (s *Scheduler) Targets() (writeDst, readDst simnet.NodeID) {
	return s.cfg.WriteDst, s.cfg.ReadDst
}

// RemoveReplica takes a failed server out of the fast-path address set
// (§5.3, server failures). Normal-path destinations are updated by the
// cluster controller via SetTargets as the protocol reconfigures.
func (s *Scheduler) RemoveReplica(id simnet.NodeID) {
	out := s.replicas[:0]
	for _, r := range s.replicas {
		if r != id {
			out = append(out, r)
		}
	}
	s.replicas = out
}

// AddReplica re-adds a recovered or replacement server.
func (s *Scheduler) AddReplica(id simnet.NodeID) {
	for _, r := range s.replicas {
		if r == id {
			return
		}
	}
	s.replicas = append(s.replicas, id)
}

// SetTargets points the normal-path destinations at new nodes after a
// protocol reconfiguration (new primary, new chain tail, new leader).
func (s *Scheduler) SetTargets(writeDst, readDst simnet.NodeID) {
	s.cfg.WriteDst = writeDst
	s.cfg.ReadDst = readDst
}

// AdoptFrom carries the predecessor scheduler's sequencing state into
// this one: the per-epoch write counter, the last-committed point, and
// readiness. A staged membership swap (group respec) replaces a
// group's scheduler at the SAME switch epoch — unlike a switch
// replacement, which gets a fresh epoch — so the successor must
// continue the predecessor's sequence space rather than restart it;
// restarting would let two writes of one incarnation share a sequence
// number. The dirty set is not adopted: the swap only completes after
// the group fully drained, so the predecessor's set is empty.
func (s *Scheduler) AdoptFrom(old *Scheduler) {
	if old == nil || old.cfg.Epoch != s.cfg.Epoch {
		return
	}
	s.seqN = old.seqN
	s.last = old.last
	s.ready = old.ready
}

// SweepStale periodically reclaims all stray dirty-set entries at or
// below the last-committed point (§5.2's "can also be done
// periodically"). The cluster wires it to a per-partition timer so
// strays for never-again-read objects are reclaimed without waiting
// for a read probe.
func (s *Scheduler) SweepStale() int {
	if s.last.Epoch != s.cfg.Epoch {
		return 0
	}
	n := s.dirty.SweepStale(s.last.N)
	s.Stats.SweptStale += uint64(n)
	return n
}

// DirtyInSlot counts dirty-set entries whose object hashes to the
// given routing slot. The migration controller polls it to decide when
// a frozen slot has drained: in-order write processing (§5.2) means
// that once the set holds nothing for the slot, every write the switch
// sequenced for it has either committed or can never apply, so the
// replicas' stores are the complete picture.
func (s *Scheduler) DirtyInSlot(slot int) int {
	return s.DirtyInSlots([]int{slot})
}

// DirtyInSlots counts dirty-set entries across a set of routing slots
// in one register scan — the drain probe for batch migrations, which
// freeze many slots but want a single quiescence signal.
func (s *Scheduler) DirtyInSlots(slots []int) int {
	var want [wire.NumSlots]bool
	for _, sl := range slots {
		want[sl] = true
	}
	n := 0
	s.dirty.Scan(func(key uint32, _ uint64) {
		if want[wire.SlotOf(wire.ObjectID(key))] {
			n++
		}
	})
	return n
}
