package core

import (
	"testing"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// nullSender drops packets without touching the heap, isolating the
// scheduler's own work.
type nullSender struct{ n uint64 }

func (s *nullSender) Send(to simnet.NodeID, pkt *wire.Packet) { s.n++ }

func newBenchSched(mutate func(*Config)) (*Scheduler, *nullSender) {
	out := &nullSender{}
	cfg := Config{
		Epoch:         1,
		Stages:        3,
		SlotsPerStage: 64,
		Replicas:      []simnet.NodeID{1, 2, 3},
		WriteDst:      1,
		ReadDst:       3,
		ClientBase:    1000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg, out)
	// Prime: one write + completion makes the switch ready for
	// fast-path reads.
	w := &wire.Packet{Op: wire.OpWrite, ObjID: 999999}
	s.Process(w)
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 999999, Seq: w.Seq})
	return s, out
}

// TestFastReadZeroAllocs asserts Algorithm 1's read path — dirty-set
// lookup, commit stamp, replica pick — allocates nothing per packet.
func TestFastReadZeroAllocs(t *testing.T) {
	s, _ := newBenchSched(nil)
	pkt := &wire.Packet{Op: wire.OpRead, ObjID: 7, ClientID: 1, ReqID: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		pkt.Flags = 0
		s.Process(pkt)
	})
	if allocs != 0 {
		t.Fatalf("fast read: %.1f allocs/op, want 0", allocs)
	}
	if s.Stats.FastReads == 0 {
		t.Fatal("reads did not take the fast path")
	}
}

// TestMulticastWriteZeroAllocs asserts the OUM write path — sequence
// stamp, dirty-set insert, N shared-pointer sends, completion — moves
// no memory to the heap either.
func TestMulticastWriteZeroAllocs(t *testing.T) {
	s, _ := newBenchSched(func(cfg *Config) { cfg.MulticastWrites = true })
	w := &wire.Packet{Op: wire.OpWrite, ObjID: 7, ClientID: 1, Value: []byte("v")}
	cpl := &wire.Packet{Op: wire.OpWriteCompletion, ObjID: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(w)
		cpl.Seq = w.Seq
		s.Process(cpl)
	})
	if allocs != 0 {
		t.Fatalf("multicast write: %.1f allocs/op, want 0", allocs)
	}
	if s.Stats.WritesDropped != 0 {
		t.Fatalf("%d writes dropped (dirty set filled): completions not clearing", s.Stats.WritesDropped)
	}
}

// TestFastReadZeroAllocsWithTraceHookArmed repeats the fast-read alloc
// guard with the sequencing trace hook INSTALLED: an untraced packet
// (Span == 0) must short-circuit before the closure fires, keeping the
// path at 0 allocs/op even on trace-enabled clusters.
func TestFastReadZeroAllocsWithTraceHookArmed(t *testing.T) {
	s, _ := newBenchSched(nil)
	var fired uint64
	s.SetTraceHook(func(pkt *wire.Packet) { fired++ })
	pkt := &wire.Packet{Op: wire.OpRead, ObjID: 7, ClientID: 1, ReqID: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		pkt.Flags = 0
		s.Process(pkt)
	})
	if allocs != 0 {
		t.Fatalf("fast read with trace hook armed: %.1f allocs/op, want 0", allocs)
	}
	if fired != 0 {
		t.Fatalf("trace hook fired %d times for untraced packets", fired)
	}
}

// TestMulticastWriteZeroAllocsWithTraceHookArmed is the write-path
// counterpart: the Span == 0 guard must keep sequencing alloc-free
// when the hook is present.
func TestMulticastWriteZeroAllocsWithTraceHookArmed(t *testing.T) {
	s, _ := newBenchSched(func(cfg *Config) { cfg.MulticastWrites = true })
	var fired uint64
	s.SetTraceHook(func(pkt *wire.Packet) { fired++ })
	w := &wire.Packet{Op: wire.OpWrite, ObjID: 7, ClientID: 1, Value: []byte("v")}
	cpl := &wire.Packet{Op: wire.OpWriteCompletion, ObjID: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(w)
		cpl.Seq = w.Seq
		s.Process(cpl)
	})
	if allocs != 0 {
		t.Fatalf("multicast write with trace hook armed: %.1f allocs/op, want 0", allocs)
	}
	if fired != 0 {
		t.Fatalf("trace hook fired %d times for untraced packets", fired)
	}
}

func BenchmarkFastRead(b *testing.B) {
	s, _ := newBenchSched(nil)
	pkt := &wire.Packet{Op: wire.OpRead, ObjID: 7, ClientID: 1, ReqID: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt.Flags = 0
		s.Process(pkt)
	}
}

func BenchmarkMulticastWrite(b *testing.B) {
	s, _ := newBenchSched(func(cfg *Config) { cfg.MulticastWrites = true })
	w := &wire.Packet{Op: wire.OpWrite, ObjID: 7, ClientID: 1, Value: []byte("v")}
	cpl := &wire.Packet{Op: wire.OpWriteCompletion, ObjID: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Process(w)
		cpl.Seq = w.Seq
		s.Process(cpl)
	}
}
