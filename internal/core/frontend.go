package core

import (
	"fmt"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// FrontendStats counts routing decisions the front-end makes before a
// packet reaches any scheduler partition.
type FrontendStats struct {
	// FrozenDrops counts client-originated packets dropped because
	// their routing slot was frozen mid-migration. Clients recover by
	// timeout, exactly as with a booting switch.
	FrozenDrops uint64
	// HeatDecays counts EWMA decay rounds applied to the per-slot heat
	// counters.
	HeatDecays uint64
	// MisroutedDrops counts client-originated packets that arrived at
	// this front-end for a slot it does not own — a stale client map or
	// a packet in flight across a cross-switch route flip. The client's
	// next retry consults the fresh rack map and lands correctly.
	MisroutedDrops uint64
	// StalledDrops counts client operations dropped because their
	// group's scheduler partition was still booting (the §5.3
	// revoke/ack agreement had not completed) — the rack's
	// "stalled-op" measure of how much a switch replacement costs.
	StalledDrops uint64
	// SpreadReads counts clean reads of promoted hot keys the front-end
	// served from a holder group instead of the key's home group.
	SpreadReads uint64
	// Invalidations counts writes to promoted keys that invalidated the
	// holder copies in their switch traversal (FlagInvalidate stamped).
	Invalidations uint64
	// Refreshes counts hot-key refresh completions that validated the
	// holder copies; StaleRefreshes counts refreshes discarded because
	// a newer write was sequenced while the refresh was in flight.
	Refreshes      uint64
	StaleRefreshes uint64
}

// SlotHeat is one routing slot's operation counters: the same
// register-array trick §5 uses for conflict state, applied to load.
// Reads and writes are counted separately so a policy can weight them
// (a write costs the group more than a fast-path read). With periodic
// DecayHeat calls the counters become an exponentially weighted window
// over recent traffic rather than an all-time total.
type SlotHeat struct {
	Reads  uint64
	Writes uint64
}

// Total is the slot's combined operation count.
func (h SlotHeat) Total() uint64 { return h.Reads + h.Writes }

// KeyHeat is one routing slot's hottest-key register: a Boyer–Moore
// majority candidate over the slot's client-originated operations, plus
// its surviving vote count. Like the heat registers it is soft switch
// state — two fixed-width fields per slot, decayed with the heat — and
// it answers the one question the promotion policy asks: when a slot is
// indivisibly hot, is one key responsible?
type KeyHeat struct {
	Cand  wire.ObjectID
	Votes uint64
}

// hotEntry is the front-end's live state for one promoted key: the
// holder groups (home is implicit — the routing table's entry for the
// key's slot), an invalid bitmap versioned by the write generation, the
// round-robin cursor for read spreading, and the key's own heat
// counters (decayed with the slot registers; they feed the demotion
// cool-down).
type hotEntry struct {
	holders  []uint16
	invalid  uint64 // bitmap over holders
	writeGen uint64
	rr       uint32
	reads    uint64
	writes   uint64
}

// Frontend is the multi-group switch front-end (§6.1): one physical
// switch whose register state is partitioned into n independent
// scheduler instances, one per replica group. The front-end is the
// routing authority: it owns a slot → group table (wire.NumSlots
// entries, initialized to the default striping) consulted on every
// client-originated packet. Clients stamp a group guess, but the
// front-end always overrides it from the table, so a client holding a
// stale table can never reach the wrong group. Packets originating at
// replicas (replies, write-completions) already carry their group and
// are routed by it. Algorithm 1 runs unmodified within each partition.
//
// A slot may be frozen during an online migration (§5.3 applied to a
// handoff): its client reads and writes are dropped — exactly as a
// booting switch drops everything — while the source group drains and
// the objects are copied, and the route flips before the slot thaws.
//
// A nil partition models a group whose §5.3 replacement agreement has
// not completed yet: its traffic is dropped, exactly as a booting
// switch drops everything.
type Frontend struct {
	id     int // switch ID within the rack (0 for single-switch racks)
	groups []*Scheduler
	route  [wire.NumSlots]uint16
	frozen [wire.NumSlots]bool

	// owned marks the routing slots this front-end serves. A
	// single-switch rack owns everything; in a multi-switch rack the
	// coordination layer assigns each front-end a contiguous shard and
	// flips ownership when a slot migrates across switches. Packets for
	// non-owned slots are dropped (MisroutedDrops) — the client's retry
	// consults the fresh slot → switch map.
	owned [wire.NumSlots]bool

	// heat is the per-slot op-counter register array. It is indexed by
	// the slot the front-end itself computes from the object ID — never
	// by the client's group stamp — so stale or corrupt client guesses
	// cannot skew the ranking.
	heat [wire.NumSlots]SlotHeat

	// keyCand/keyVotes are the per-slot hottest-key registers: a
	// Boyer–Moore majority vote over the slot's client-originated ops.
	// Under a single dominating key the vote count tracks (hits −
	// misses), so votes/heat approximates the key's share of the slot.
	keyCand  [wire.NumSlots]wire.ObjectID
	keyVotes [wire.NumSlots]uint64

	// hot is the hot-key table: promoted keys whose clean reads the
	// front-end spreads across holder groups. Nil until the first
	// promotion, so the unpromoted fast path pays one len check.
	hot map[wire.ObjectID]*hotEntry

	// onHotWrite, when set, is called as a write completion for a
	// promoted key with invalid holder copies traverses the switch —
	// the cluster's cue to start a refresh without waiting for a tick.
	onHotWrite func(id wire.ObjectID, gen uint64)

	// onClientDrop, when set, fires as this front-end intentionally
	// drops a TRACED client packet (pkt.Span != 0): frozen slot,
	// stalled group, or misrouted shard. The trace layer uses it to
	// attribute the client's coming retry gap to the stall rather
	// than to network loss. Untraced packets never invoke it, keeping
	// the drop paths allocation- and call-free in the common case.
	onClientDrop func(pkt *wire.Packet, reason DropReason)

	// onHotInvalidate, when set, fires when a write to a promoted key
	// invalidates its holder copies — the flight recorder's
	// hotkey-invalidate cue.
	onHotInvalidate func(id wire.ObjectID, gen uint64)

	Stats FrontendStats
}

// DropReason classifies an intentional front-end drop for the trace
// hooks.
type DropReason uint8

const (
	// DropFrozen: the packet's slot is frozen mid-migration.
	DropFrozen DropReason = iota
	// DropStalled: the group's replacement agreement is incomplete.
	DropStalled
	// DropMisrouted: the packet landed on the wrong front-end shard.
	DropMisrouted
)

// NewFrontend builds a front-end with n (initially empty) partitions,
// the default slot striping, and every slot owned — the single-switch
// configuration. Multi-switch racks carve ownership up afterwards via
// SetOwned.
func NewFrontend(n int) *Frontend {
	if n <= 0 {
		n = 1
	}
	f := &Frontend{groups: make([]*Scheduler, n)}
	for s := range f.route {
		f.route[s] = uint16(wire.DefaultGroupOfSlot(s, n))
		f.owned[s] = true
	}
	return f
}

// SetSwitchID assigns this front-end's rack-wide switch ID, stamped
// into every packet it forwards.
func (f *Frontend) SetSwitchID(id int) { f.id = id }

// SwitchID returns this front-end's rack-wide switch ID.
func (f *Frontend) SwitchID() int { return f.id }

// SetOwned marks slot as owned (or not) by this front-end.
func (f *Frontend) SetOwned(slot int, own bool) { f.owned[slot] = own }

// OwnsSlot reports whether this front-end serves slot.
func (f *Frontend) OwnsSlot(slot int) bool { return f.owned[slot] }

// OwnedSlots returns the number of slots this front-end serves.
func (f *Frontend) OwnedSlots() int {
	n := 0
	for _, o := range f.owned {
		if o {
			n++
		}
	}
	return n
}

// Groups returns the partition count.
func (f *Frontend) Groups() int { return len(f.groups) }

// Group returns partition g's scheduler (nil while booting).
func (f *Frontend) Group(g int) *Scheduler { return f.groups[g] }

// SetGroup installs (or, with nil, clears) partition g's scheduler.
// The cluster controller calls it as each group's §5.3 agreement
// completes.
func (f *Frontend) SetGroup(g int, s *Scheduler) { f.groups[g] = s }

// EnsureGroups grows the partition table to at least n entries, new
// ones nil (booting). Scale-out adds a group to the whole rack: every
// front-end must be able to route replica-originated packets that
// carry the new group ID, even front-ends that never serve its slots.
func (f *Frontend) EnsureGroups(n int) {
	for len(f.groups) < n {
		f.groups = append(f.groups, nil)
	}
}

// RouteOf returns the group currently serving slot.
func (f *Frontend) RouteOf(slot int) int { return int(f.route[slot]) }

// RouteObj returns the group currently serving id's slot.
func (f *Frontend) RouteObj(id wire.ObjectID) int { return int(f.route[wire.SlotOf(id)]) }

// SetRoute points slot at group g. The migration controller flips a
// route only after the slot has drained and its objects were copied.
func (f *Frontend) SetRoute(slot, g int) {
	if g < 0 || g >= len(f.groups) {
		panic(fmt.Sprintf("core: route for slot %d to out-of-range group %d", slot, g))
	}
	f.route[slot] = uint16(g)
}

// SlotTable returns a copy of the slot → group table.
func (f *Frontend) SlotTable() []int {
	out := make([]int, wire.NumSlots)
	for s := range f.route {
		out[s] = int(f.route[s])
	}
	return out
}

// SlotHeat returns a copy of the per-slot heat register array.
func (f *Frontend) SlotHeat() []SlotHeat {
	out := make([]SlotHeat, wire.NumSlots)
	f.SlotHeatInto(out)
	return out
}

// SlotHeatInto copies the per-slot heat registers into dst — the
// allocation-free form for periodic samplers (the rack tick reuses one
// buffer instead of allocating 256 entries per switch per interval).
// Entries beyond len(dst) are dropped; entries past wire.NumSlots are
// left untouched.
func (f *Frontend) SlotHeatInto(dst []SlotHeat) {
	copy(dst, f.heat[:])
}

// HeatOf returns slot's current heat counters.
func (f *Frontend) HeatOf(slot int) SlotHeat { return f.heat[slot] }

// KeyHeatOf returns slot's hottest-key register: the Boyer–Moore
// majority candidate over the slot's recent client ops and its vote
// count.
func (f *Frontend) KeyHeatOf(slot int) KeyHeat {
	return KeyHeat{Cand: f.keyCand[slot], Votes: f.keyVotes[slot]}
}

// ClearHeat zeroes one slot's heat counters (and its hottest-key
// register). The rack calls it on a cross-switch ownership transfer:
// the acquiring front-end counts the slot from its first packet, and
// the disowning side's frozen residue must not resurface as "current"
// heat if the slot ever migrates back.
func (f *Frontend) ClearHeat(slot int) {
	f.heat[slot] = SlotHeat{}
	f.keyCand[slot], f.keyVotes[slot] = 0, 0
}

// DecayHeat halves every heat counter — one EWMA round. Called
// periodically (the switch control plane would run this on a timer),
// it turns the counters into an exponentially weighted window whose
// half-life is the decay interval, so rankings track recent traffic
// rather than all history. The decay is register-friendly (a shift and
// a subtract per counter, no floating point) and rounds UP: x −= x>>1
// floors a once-warm counter at 1 instead of dropping it to 0. A plain
// right-shift took a heat of 1 straight to 0, so a low-rate slot's
// reading oscillated 1 → 0 → 1 across decay rounds and flapped the
// policy's hysteresis band; the sticky floor holds the reading steady
// until ClearHeat or Reboot genuinely cools the slot.
func (f *Frontend) DecayHeat() {
	for s := range f.heat {
		f.heat[s].Reads -= f.heat[s].Reads >> 1
		f.heat[s].Writes -= f.heat[s].Writes >> 1
		f.keyVotes[s] -= f.keyVotes[s] >> 1
	}
	for _, e := range f.hot {
		// Hot-entry counters feed the demotion cool-down and must reach
		// 0 once the skew stops: plain halving, no sticky floor.
		e.reads >>= 1
		e.writes >>= 1
	}
	f.Stats.HeatDecays++
}

// FreezeSlot starts dropping slot's client traffic (migration window).
func (f *Frontend) FreezeSlot(slot int) { f.frozen[slot] = true }

// UnfreezeSlot resumes slot's client traffic.
func (f *Frontend) UnfreezeSlot(slot int) { f.frozen[slot] = false }

// Frozen reports whether slot is mid-migration.
func (f *Frontend) Frozen(slot int) bool { return f.frozen[slot] }

// Reboot clears every partition: a replacement switch starts with
// empty register state and must not forward anything until the
// per-group agreements reinstall schedulers. The slot table and frozen
// flags survive — they are control-plane configuration the controller
// reinstalls on a replacement switch, not soft register state. The
// heat counters, hottest-key registers, and hot-key table do NOT
// survive: they are soft register state like the dirty set. A
// rebalancer re-learns the heat ranking within a few decay intervals,
// and the cluster's hot-key manager demotes keys whose front-end table
// entry vanished (the holder copies are then dropped and the key can
// re-earn promotion).
func (f *Frontend) Reboot() {
	for g := range f.groups {
		f.groups[g] = nil
	}
	f.heat = [wire.NumSlots]SlotHeat{}
	f.keyCand = [wire.NumSlots]wire.ObjectID{}
	f.keyVotes = [wire.NumSlots]uint64{}
	f.hot = nil
}

// --- hot-key table (per-key replication, Hermes-style) ---

// holderMask returns the all-invalid bitmap for n holders.
func holderMask(n int) uint64 { return 1<<uint(n) - 1 }

// Promote installs (or replaces) a hot-key table entry: clean reads of
// id will round-robin across its home group and holders, writes
// invalidate the holder copies in their switch traversal. Every holder
// starts INVALID — reads stay home until the first refresh confirms
// the copies exist — so promotion is safe to install before any data
// movement. Holder indices out of partition range are dropped.
func (f *Frontend) Promote(id wire.ObjectID, holders []int) {
	hs := make([]uint16, 0, len(holders))
	for _, g := range holders {
		if g >= 0 && g < len(f.groups) && len(hs) < 63 {
			hs = append(hs, uint16(g))
		}
	}
	if f.hot == nil {
		f.hot = make(map[wire.ObjectID]*hotEntry)
	}
	f.hot[id] = &hotEntry{holders: hs, invalid: holderMask(len(hs))}
}

// Demote removes id's hot-key table entry, reporting whether one
// existed. Reads of id serialize at its home group again immediately.
func (f *Frontend) Demote(id wire.ObjectID) bool {
	if _, ok := f.hot[id]; !ok {
		return false
	}
	delete(f.hot, id)
	return true
}

// Promoted returns id's hot-key table entry as its wire-level view.
func (f *Frontend) Promoted(id wire.ObjectID) (wire.HotKey, bool) {
	e := f.hot[id]
	if e == nil {
		return wire.HotKey{}, false
	}
	return wire.HotKey{
		ObjID:    id,
		Holders:  append([]uint16(nil), e.holders...),
		Invalid:  e.invalid,
		WriteGen: e.writeGen,
	}, true
}

// PromotedCount returns the number of hot-key table entries.
func (f *Frontend) PromotedCount() int { return len(f.hot) }

// RemoveHolder drops group g from id's holder set (compacting the
// invalid bitmap) and returns how many holders remain. The cluster
// calls it when a holder group retires or swaps its member set — its
// copy is gone, so a spread read must never be scheduled there again.
func (f *Frontend) RemoveHolder(id wire.ObjectID, g int) int {
	e := f.hot[id]
	if e == nil {
		return 0
	}
	out := e.holders[:0]
	var invalid uint64
	for i, h := range e.holders {
		if int(h) == g {
			continue
		}
		if e.invalid&(1<<uint(i)) != 0 {
			invalid |= 1 << uint(len(out))
		}
		out = append(out, h)
	}
	e.holders, e.invalid = out, invalid
	return len(out)
}

// WriteGen returns id's current write generation (promoted keys only).
func (f *Frontend) WriteGen(id wire.ObjectID) (uint64, bool) {
	e := f.hot[id]
	if e == nil {
		return 0, false
	}
	return e.writeGen, true
}

// HotHeatOf returns id's per-key heat counters (decayed with the slot
// registers) — the demotion cool-down's signal.
func (f *Frontend) HotHeatOf(id wire.ObjectID) (reads, writes uint64) {
	if e := f.hot[id]; e != nil {
		return e.reads, e.writes
	}
	return 0, 0
}

// SetHotWriteHook installs the write-committed callback (see
// onHotWrite). The cluster's hot-key manager uses it to refresh holder
// copies as soon as a write commits instead of polling.
func (f *Frontend) SetHotWriteHook(fn func(id wire.ObjectID, gen uint64)) { f.onHotWrite = fn }

// SetDropHook installs the traced-packet drop callback (see
// onClientDrop). The trace layer uses it to separate migration and
// agreement stalls from network-loss retries.
func (f *Frontend) SetDropHook(fn func(pkt *wire.Packet, reason DropReason)) { f.onClientDrop = fn }

// SetHotInvalidateHook installs the hot-key invalidation callback (see
// onHotInvalidate). The flight recorder uses it to timestamp the
// invalidate edge of each promoted key's write cycle.
func (f *Frontend) SetHotInvalidateHook(fn func(id wire.ObjectID, gen uint64)) {
	f.onHotInvalidate = fn
}

// CompleteRefresh validates id's holder copies against the write
// generation a refresh captured: only a refresh of the CURRENT
// generation clears the invalid bits — if a write raced the refresh,
// the holders stay invalid and the next refresh chases the newer
// value. Returns whether the refresh validated.
func (f *Frontend) CompleteRefresh(id wire.ObjectID, gen uint64) bool {
	e := f.hot[id]
	if e == nil {
		return false
	}
	if e.writeGen != gen {
		f.Stats.StaleRefreshes++
		return false
	}
	e.invalid = 0
	f.Stats.Refreshes++
	return true
}

// pickHolder advances id's round-robin cursor one turn across home +
// holders and returns the chosen HOLDER group, or ok=false when the
// turn belongs to the home group (or no live holder partition exists):
// the caller then falls through the normal home-route path.
func (f *Frontend) pickHolder(slot int, e *hotEntry) (int, bool) {
	home := int(f.route[slot])
	n := len(e.holders) + 1
	for t := 0; t < n; t++ {
		i := int(e.rr) % n
		e.rr++
		if i == len(e.holders) {
			return home, false // home's turn
		}
		g := int(e.holders[i])
		if g == home || g >= len(f.groups) || f.groups[g] == nil {
			continue // holder became home, or its partition is booting
		}
		return g, true
	}
	return home, false
}

// Recv implements simnet.Handler: every packet to or from any replica
// group traverses this one switch.
func (f *Frontend) Recv(from simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		// Non-Harmonia traffic is not examined here; the cluster
		// routes protocol-internal messages directly.
		return
	}
	switch pkt.Op {
	case wire.OpRead, wire.OpWrite:
		// Client-originated (or client-retried, or replica-forwarded)
		// packets: the switch owns the routing. A frozen slot drops
		// them — the client's timeout handles retry — so no request
		// can land on either group mid-handoff.
		slot := wire.SlotOf(pkt.ObjID)
		if !f.owned[slot] {
			// Not this front-end's shard (stale client map, or a packet
			// in flight across a cross-switch flip): drop it. The retry
			// consults the fresh slot → switch map and lands right.
			f.Stats.MisroutedDrops++
			if pkt.Span != 0 && f.onClientDrop != nil {
				f.onClientDrop(pkt, DropMisrouted)
			}
			pkt.Release()
			return
		}
		// Replica-forwarded re-entries (a fast read a replica bounced
		// back) skip all register accounting and spreading: the op was
		// already counted on its first traversal, and a bounced read
		// belongs on its home group's slow path.
		client := pkt.Flags&wire.FlagForwarded == 0
		var e *hotEntry
		if client && len(f.hot) != 0 {
			e = f.hot[pkt.ObjID]
		}
		if client {
			// Hottest-key register: Boyer–Moore majority vote over the
			// slot's client ops.
			switch {
			case f.keyVotes[slot] == 0:
				f.keyCand[slot], f.keyVotes[slot] = pkt.ObjID, 1
			case f.keyCand[slot] == pkt.ObjID:
				f.keyVotes[slot]++
			default:
				f.keyVotes[slot]--
			}
			if e != nil {
				if pkt.Op == wire.OpWrite {
					e.writes++
				} else {
					e.reads++
				}
			}
		}
		// Hot-key read spreading: a clean read of a promoted key (no
		// invalid holder copy — every committed write has been refreshed
		// everywhere, and none is in flight past the switch) round-robins
		// across home + holders. A spread read bypasses the freeze on
		// purpose: during a home-slot handoff the holder copies stay
		// valid (writes freeze with the slot), so holders keep serving.
		// It is NOT counted in the home slot's heat register — the
		// register tracks load the home group actually serves, which is
		// exactly what promotion sheds; the per-key counters above feed
		// the demotion policy instead.
		if e != nil && pkt.Op == wire.OpRead && e.invalid == 0 {
			if g, ok := f.pickHolder(slot, e); ok {
				f.Stats.SpreadReads++
				pkt.Group = uint16(g)
				pkt.Switch = uint8(f.id)
				f.groups[g].Process(pkt)
				return
			}
			// Home's turn in the rotation: the normal path below.
		}
		// Heat is counted on offered load, before the frozen check, so
		// a slot stays ranked hot while it migrates.
		if client {
			if pkt.Op == wire.OpWrite {
				f.heat[slot].Writes++
			} else {
				f.heat[slot].Reads++
			}
		}
		if f.frozen[slot] && pkt.Flags&wire.FlagFlush == 0 {
			// FlagFlush writes pass the freeze: a whole-group drain has
			// every slot frozen, and the flush that unwedges it must
			// still reach the scheduler. The flush quiesces like any
			// other write and its object is copied with the batch.
			f.Stats.FrozenDrops++
			if pkt.Span != 0 && f.onClientDrop != nil {
				f.onClientDrop(pkt, DropFrozen)
			}
			pkt.Release()
			return
		}
		if e != nil && pkt.Op == wire.OpWrite && len(e.holders) > 0 {
			// Hermes-style invalidation in the same traversal that
			// sequences the write: every holder copy is invalid until a
			// refresh catches this generation, and the packet carries
			// the wire-visible record. Reads of the key serialize at
			// the home group (through its dirty set) meanwhile.
			e.writeGen++
			e.invalid = holderMask(len(e.holders))
			pkt.Flags |= wire.FlagInvalidate
			f.Stats.Invalidations++
			if f.onHotInvalidate != nil {
				f.onHotInvalidate(pkt.ObjID, e.writeGen)
			}
		}
		pkt.Group = f.route[slot]
		pkt.Switch = uint8(f.id)
		if f.groups[pkt.Group] == nil {
			// The group's §5.3 replacement agreement has not completed:
			// the op stalls (client retries), and the rack counts it.
			f.Stats.StalledDrops++
			if pkt.Span != 0 && f.onClientDrop != nil {
				f.onClientDrop(pkt, DropStalled)
			}
			pkt.Release()
			return
		}
	default:
		if pkt.Op == wire.OpWriteCompletion && pkt.Flags&wire.FlagRefresh != 0 {
			// Control-plane refresh completion for a hot key: validate
			// the table entry and consume the packet — no scheduler
			// partition ever sees it (its Seq carries a write
			// generation, not a sequence number).
			f.CompleteRefresh(pkt.ObjID, pkt.Seq.N)
			pkt.Release()
			return
		}
		// Replica-originated packets are trusted to carry their
		// group; an out-of-range value is a corrupt packet. They pass
		// frozen slots untouched — a draining source group still needs
		// its completions and replies.
		if int(pkt.Group) >= len(f.groups) {
			pkt.Release()
			return
		}
		pkt.Switch = uint8(f.id)
		if len(f.hot) != 0 && (pkt.Op == wire.OpWriteCompletion ||
			(pkt.Op == wire.OpWriteReply && !pkt.Seq.IsZero())) {
			// A committed write to a promoted key just traversed the
			// switch — either a standalone completion or one piggybacked
			// on the write reply (§5.1, Fig. 2b), which is how every
			// read-ahead protocol ships them. Cue the refresh machinery
			// while the packet continues to its scheduler partition
			// unchanged.
			if e := f.hot[pkt.ObjID]; e != nil && e.invalid != 0 && f.onHotWrite != nil {
				f.onHotWrite(pkt.ObjID, e.writeGen)
			}
		}
	}
	if s := f.groups[pkt.Group]; s != nil {
		s.Process(pkt)
	} else {
		pkt.Release() // booting partition: replica-originated traffic stalls
	}
}
