package core

import (
	"fmt"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// FrontendStats counts routing decisions the front-end makes before a
// packet reaches any scheduler partition.
type FrontendStats struct {
	// FrozenDrops counts client-originated packets dropped because
	// their routing slot was frozen mid-migration. Clients recover by
	// timeout, exactly as with a booting switch.
	FrozenDrops uint64
	// HeatDecays counts EWMA decay rounds applied to the per-slot heat
	// counters.
	HeatDecays uint64
	// MisroutedDrops counts client-originated packets that arrived at
	// this front-end for a slot it does not own — a stale client map or
	// a packet in flight across a cross-switch route flip. The client's
	// next retry consults the fresh rack map and lands correctly.
	MisroutedDrops uint64
	// StalledDrops counts client operations dropped because their
	// group's scheduler partition was still booting (the §5.3
	// revoke/ack agreement had not completed) — the rack's
	// "stalled-op" measure of how much a switch replacement costs.
	StalledDrops uint64
}

// SlotHeat is one routing slot's operation counters: the same
// register-array trick §5 uses for conflict state, applied to load.
// Reads and writes are counted separately so a policy can weight them
// (a write costs the group more than a fast-path read). With periodic
// DecayHeat calls the counters become an exponentially weighted window
// over recent traffic rather than an all-time total.
type SlotHeat struct {
	Reads  uint64
	Writes uint64
}

// Total is the slot's combined operation count.
func (h SlotHeat) Total() uint64 { return h.Reads + h.Writes }

// Frontend is the multi-group switch front-end (§6.1): one physical
// switch whose register state is partitioned into n independent
// scheduler instances, one per replica group. The front-end is the
// routing authority: it owns a slot → group table (wire.NumSlots
// entries, initialized to the default striping) consulted on every
// client-originated packet. Clients stamp a group guess, but the
// front-end always overrides it from the table, so a client holding a
// stale table can never reach the wrong group. Packets originating at
// replicas (replies, write-completions) already carry their group and
// are routed by it. Algorithm 1 runs unmodified within each partition.
//
// A slot may be frozen during an online migration (§5.3 applied to a
// handoff): its client reads and writes are dropped — exactly as a
// booting switch drops everything — while the source group drains and
// the objects are copied, and the route flips before the slot thaws.
//
// A nil partition models a group whose §5.3 replacement agreement has
// not completed yet: its traffic is dropped, exactly as a booting
// switch drops everything.
type Frontend struct {
	id     int // switch ID within the rack (0 for single-switch racks)
	groups []*Scheduler
	route  [wire.NumSlots]uint16
	frozen [wire.NumSlots]bool

	// owned marks the routing slots this front-end serves. A
	// single-switch rack owns everything; in a multi-switch rack the
	// coordination layer assigns each front-end a contiguous shard and
	// flips ownership when a slot migrates across switches. Packets for
	// non-owned slots are dropped (MisroutedDrops) — the client's retry
	// consults the fresh slot → switch map.
	owned [wire.NumSlots]bool

	// heat is the per-slot op-counter register array. It is indexed by
	// the slot the front-end itself computes from the object ID — never
	// by the client's group stamp — so stale or corrupt client guesses
	// cannot skew the ranking.
	heat [wire.NumSlots]SlotHeat

	Stats FrontendStats
}

// NewFrontend builds a front-end with n (initially empty) partitions,
// the default slot striping, and every slot owned — the single-switch
// configuration. Multi-switch racks carve ownership up afterwards via
// SetOwned.
func NewFrontend(n int) *Frontend {
	if n <= 0 {
		n = 1
	}
	f := &Frontend{groups: make([]*Scheduler, n)}
	for s := range f.route {
		f.route[s] = uint16(wire.DefaultGroupOfSlot(s, n))
		f.owned[s] = true
	}
	return f
}

// SetSwitchID assigns this front-end's rack-wide switch ID, stamped
// into every packet it forwards.
func (f *Frontend) SetSwitchID(id int) { f.id = id }

// SwitchID returns this front-end's rack-wide switch ID.
func (f *Frontend) SwitchID() int { return f.id }

// SetOwned marks slot as owned (or not) by this front-end.
func (f *Frontend) SetOwned(slot int, own bool) { f.owned[slot] = own }

// OwnsSlot reports whether this front-end serves slot.
func (f *Frontend) OwnsSlot(slot int) bool { return f.owned[slot] }

// OwnedSlots returns the number of slots this front-end serves.
func (f *Frontend) OwnedSlots() int {
	n := 0
	for _, o := range f.owned {
		if o {
			n++
		}
	}
	return n
}

// Groups returns the partition count.
func (f *Frontend) Groups() int { return len(f.groups) }

// Group returns partition g's scheduler (nil while booting).
func (f *Frontend) Group(g int) *Scheduler { return f.groups[g] }

// SetGroup installs (or, with nil, clears) partition g's scheduler.
// The cluster controller calls it as each group's §5.3 agreement
// completes.
func (f *Frontend) SetGroup(g int, s *Scheduler) { f.groups[g] = s }

// EnsureGroups grows the partition table to at least n entries, new
// ones nil (booting). Scale-out adds a group to the whole rack: every
// front-end must be able to route replica-originated packets that
// carry the new group ID, even front-ends that never serve its slots.
func (f *Frontend) EnsureGroups(n int) {
	for len(f.groups) < n {
		f.groups = append(f.groups, nil)
	}
}

// RouteOf returns the group currently serving slot.
func (f *Frontend) RouteOf(slot int) int { return int(f.route[slot]) }

// RouteObj returns the group currently serving id's slot.
func (f *Frontend) RouteObj(id wire.ObjectID) int { return int(f.route[wire.SlotOf(id)]) }

// SetRoute points slot at group g. The migration controller flips a
// route only after the slot has drained and its objects were copied.
func (f *Frontend) SetRoute(slot, g int) {
	if g < 0 || g >= len(f.groups) {
		panic(fmt.Sprintf("core: route for slot %d to out-of-range group %d", slot, g))
	}
	f.route[slot] = uint16(g)
}

// SlotTable returns a copy of the slot → group table.
func (f *Frontend) SlotTable() []int {
	out := make([]int, wire.NumSlots)
	for s := range f.route {
		out[s] = int(f.route[s])
	}
	return out
}

// SlotHeat returns a copy of the per-slot heat register array.
func (f *Frontend) SlotHeat() []SlotHeat {
	out := make([]SlotHeat, wire.NumSlots)
	copy(out, f.heat[:])
	return out
}

// HeatOf returns slot's current heat counters.
func (f *Frontend) HeatOf(slot int) SlotHeat { return f.heat[slot] }

// ClearHeat zeroes one slot's heat counters. The rack calls it on a
// cross-switch ownership transfer: the acquiring front-end counts the
// slot from its first packet, and the disowning side's frozen residue
// must not resurface as "current" heat if the slot ever migrates back.
func (f *Frontend) ClearHeat(slot int) { f.heat[slot] = SlotHeat{} }

// DecayHeat halves every heat counter — one EWMA round. Called
// periodically (the switch control plane would run this on a timer),
// it turns the counters into an exponentially weighted window whose
// half-life is the decay interval, so rankings track recent traffic
// rather than all history. Halving is the register-friendly decay: a
// single right-shift per counter, no floating point in the data plane.
func (f *Frontend) DecayHeat() {
	for s := range f.heat {
		f.heat[s].Reads >>= 1
		f.heat[s].Writes >>= 1
	}
	f.Stats.HeatDecays++
}

// FreezeSlot starts dropping slot's client traffic (migration window).
func (f *Frontend) FreezeSlot(slot int) { f.frozen[slot] = true }

// UnfreezeSlot resumes slot's client traffic.
func (f *Frontend) UnfreezeSlot(slot int) { f.frozen[slot] = false }

// Frozen reports whether slot is mid-migration.
func (f *Frontend) Frozen(slot int) bool { return f.frozen[slot] }

// Reboot clears every partition: a replacement switch starts with
// empty register state and must not forward anything until the
// per-group agreements reinstall schedulers. The slot table and frozen
// flags survive — they are control-plane configuration the controller
// reinstalls on a replacement switch, not soft register state. The
// heat counters do NOT survive: they are soft register state like the
// dirty set, and a rebalancer simply re-learns the ranking within a
// few decay intervals.
func (f *Frontend) Reboot() {
	for g := range f.groups {
		f.groups[g] = nil
	}
	f.heat = [wire.NumSlots]SlotHeat{}
}

// Recv implements simnet.Handler: every packet to or from any replica
// group traverses this one switch.
func (f *Frontend) Recv(from simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		// Non-Harmonia traffic is not examined here; the cluster
		// routes protocol-internal messages directly.
		return
	}
	switch pkt.Op {
	case wire.OpRead, wire.OpWrite:
		// Client-originated (or client-retried, or replica-forwarded)
		// packets: the switch owns the routing. A frozen slot drops
		// them — the client's timeout handles retry — so no request
		// can land on either group mid-handoff.
		slot := wire.SlotOf(pkt.ObjID)
		if !f.owned[slot] {
			// Not this front-end's shard (stale client map, or a packet
			// in flight across a cross-switch flip): drop it. The retry
			// consults the fresh slot → switch map and lands right.
			f.Stats.MisroutedDrops++
			return
		}
		// Heat is counted on offered load, before the frozen check, so
		// a slot stays ranked hot while it migrates. Replica-forwarded
		// re-entries (a fast read a replica bounced back) are skipped:
		// the op was already counted on its first traversal.
		if pkt.Flags&wire.FlagForwarded == 0 {
			if pkt.Op == wire.OpWrite {
				f.heat[slot].Writes++
			} else {
				f.heat[slot].Reads++
			}
		}
		if f.frozen[slot] && pkt.Flags&wire.FlagFlush == 0 {
			// FlagFlush writes pass the freeze: a whole-group drain has
			// every slot frozen, and the flush that unwedges it must
			// still reach the scheduler. The flush quiesces like any
			// other write and its object is copied with the batch.
			f.Stats.FrozenDrops++
			return
		}
		pkt.Group = f.route[slot]
		pkt.Switch = uint8(f.id)
		if f.groups[pkt.Group] == nil {
			// The group's §5.3 replacement agreement has not completed:
			// the op stalls (client retries), and the rack counts it.
			f.Stats.StalledDrops++
			return
		}
	default:
		// Replica-originated packets are trusted to carry their
		// group; an out-of-range value is a corrupt packet. They pass
		// frozen slots untouched — a draining source group still needs
		// its completions and replies.
		if int(pkt.Group) >= len(f.groups) {
			return
		}
		pkt.Switch = uint8(f.id)
	}
	if s := f.groups[pkt.Group]; s != nil {
		s.Process(pkt)
	}
}
