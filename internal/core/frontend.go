package core

import (
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// Frontend is the multi-group switch front-end (§6.1): one physical
// switch whose register state is partitioned into n independent
// scheduler instances, one per replica group. The front-end hashes
// each client request's object ID to its group and dispatches to that
// group's scheduler, stamping the group ID into the header; packets
// originating at replicas (replies, write-completions, forwarded
// reads) already carry the group ID and are routed by it. Algorithm 1
// runs unmodified within each partition.
//
// A nil partition slot models a group whose §5.3 replacement agreement
// has not completed yet: its traffic is dropped, exactly as a booting
// switch drops everything.
type Frontend struct {
	groups []*Scheduler
}

// NewFrontend builds a front-end with n (initially empty) partitions.
func NewFrontend(n int) *Frontend {
	if n <= 0 {
		n = 1
	}
	return &Frontend{groups: make([]*Scheduler, n)}
}

// Groups returns the partition count.
func (f *Frontend) Groups() int { return len(f.groups) }

// Group returns partition g's scheduler (nil while booting).
func (f *Frontend) Group(g int) *Scheduler { return f.groups[g] }

// SetGroup installs (or, with nil, clears) partition g's scheduler.
// The cluster controller calls it as each group's §5.3 agreement
// completes.
func (f *Frontend) SetGroup(g int, s *Scheduler) { f.groups[g] = s }

// Reboot clears every partition: a replacement switch starts with
// empty register state and must not forward anything until the
// per-group agreements reinstall schedulers.
func (f *Frontend) Reboot() {
	for g := range f.groups {
		f.groups[g] = nil
	}
}

// Recv implements simnet.Handler: every packet to or from any replica
// group traverses this one switch.
func (f *Frontend) Recv(from simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		// Non-Harmonia traffic is not examined here; the cluster
		// routes protocol-internal messages directly.
		return
	}
	switch pkt.Op {
	case wire.OpRead, wire.OpWrite:
		// Client-originated (or client-retried) packets: the switch
		// owns the ObjectID → group mapping. Forwarded reads bounced
		// off a replica keep the group they already carry — it is the
		// same value, GroupOf is deterministic.
		pkt.Group = uint16(wire.GroupOf(pkt.ObjID, len(f.groups)))
	default:
		// Replica-originated packets are trusted to carry their
		// group; an out-of-range value is a corrupt packet.
		if int(pkt.Group) >= len(f.groups) {
			return
		}
	}
	if s := f.groups[pkt.Group]; s != nil {
		s.Process(pkt)
	}
}
