package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// The scheduler's central safety obligation: whenever it fast-paths a
// read for an object, every write to that object it ever forwarded
// must be covered by the stamped last-committed point. (The replica
// checks in §7 are sound only because of this: a stamped point ≥ the
// object's last forwarded write proves the write completed, since
// completions are processed in order.) We drive random operation
// streams — writes, in-order completions, reads, and lost completions
// — against the scheduler and assert the invariant at every fast read.
func TestFastPathCoverageInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fwd []sent
		cap := &capture{}
		sched := New(Config{
			Epoch: 1, Stages: 2, SlotsPerStage: 8,
			Replicas: []simnet.NodeID{1, 2, 3},
			WriteDst: 1, ReadDst: 3, ClientBase: 1000,
		}, SenderFunc(func(to simnet.NodeID, pkt *wire.Packet) {
			cap.Send(to, pkt)
			fwd = append(fwd, sent{to, pkt})
		}))

		// Model: last forwarded (undropped) write per object, and the
		// queue of completions not yet delivered. Completions are
		// delivered in order but may be lost (stray entries).
		lastForwarded := map[wire.ObjectID]uint64{}
		var pendingComp []*wire.Packet

		for i := 0; i < 400; i++ {
			switch rng.Intn(4) {
			case 0: // write
				obj := wire.ObjectID(rng.Intn(12))
				before := len(fwd)
				sched.Process(&wire.Packet{Op: wire.OpWrite, ObjID: obj, ClientID: 1, ReqID: uint64(i)})
				if len(fwd) > before { // not dropped by a full table
					pkt := fwd[len(fwd)-1].pkt
					if pkt.Seq.N > lastForwarded[obj] {
						lastForwarded[obj] = pkt.Seq.N
					}
					pendingComp = append(pendingComp, &wire.Packet{
						Op: wire.OpWriteCompletion, ObjID: obj, Seq: pkt.Seq,
					})
				}
			case 1: // deliver the next completion (in order)
				if len(pendingComp) > 0 {
					sched.Process(pendingComp[0])
					pendingComp = pendingComp[1:]
				}
			case 2: // lose the next completion (stray dirty entry)
				if len(pendingComp) > 1 && rng.Intn(3) == 0 {
					pendingComp = pendingComp[1:]
				}
			case 3: // read
				obj := wire.ObjectID(rng.Intn(12))
				before := len(fwd)
				sched.Process(&wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: 2, ReqID: uint64(i)})
				if len(fwd) == before {
					return false // reads are never dropped
				}
				pkt := fwd[len(fwd)-1].pkt
				if pkt.Flags&wire.FlagFastPath != 0 {
					lc := sched.LastCommitted()
					if lc.Epoch != 1 {
						return false
					}
					if lastForwarded[obj] > lc.N {
						return false // uncovered write: unsafe fast path
					}
					if pkt.LastCommitted != lc {
						return false // stamp must be the switch's point
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Sequence numbers handed to forwarded writes are strictly increasing,
// with gaps exactly where the dirty set dropped writes.
func TestSequencingMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := &capture{}
		sched := New(Config{
			Epoch: 1, Stages: 1, SlotsPerStage: 4,
			Replicas: []simnet.NodeID{1, 2}, WriteDst: 1, ReadDst: 1, ClientBase: 1000,
		}, cap)
		lastSeq := uint64(0)
		issued := uint64(0)
		for i := 0; i < 300; i++ {
			obj := wire.ObjectID(rng.Intn(64))
			before := len(cap.out)
			sched.Process(&wire.Packet{Op: wire.OpWrite, ObjID: obj})
			issued++
			if len(cap.out) > before {
				out := cap.out[len(cap.out)-1].pkt
				if out.Op == wire.OpWrite {
					// Forwarded: the sequence number must be fresh.
					seq := out.Seq
					if seq.Epoch != 1 || seq.N <= lastSeq || seq.N > issued {
						return false
					}
					lastSeq = seq.N
				} else if out.Op != wire.OpWriteReply || out.Flags&wire.FlagDropped == 0 {
					// The only non-forwarded outcome of a write is the
					// synthesized FlagDropped reply.
					return false
				}
			}
			if rng.Intn(3) == 0 { // drain an entry occasionally
				sched.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: obj,
					Seq: wire.Seq{Epoch: 1, N: issued}})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The dirty set never reports more entries than writes outstanding,
// and drains to zero once every forwarded write's completion arrives.
func TestDirtySetDrainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fwd []*wire.Packet
		sched := New(Config{
			Epoch: 1, Stages: 3, SlotsPerStage: 32,
			Replicas: []simnet.NodeID{1}, WriteDst: 1, ReadDst: 1, ClientBase: 1000,
		}, SenderFunc(func(to simnet.NodeID, pkt *wire.Packet) {
			if pkt.Op == wire.OpWrite {
				fwd = append(fwd, pkt)
			}
		}))
		for i := 0; i < 200; i++ {
			sched.Process(&wire.Packet{Op: wire.OpWrite, ObjID: wire.ObjectID(rng.Intn(40))})
		}
		if sched.DirtyCount() > len(fwd) {
			return false
		}
		for _, pkt := range fwd {
			sched.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: pkt.ObjID, Seq: pkt.Seq})
		}
		return sched.DirtyCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
