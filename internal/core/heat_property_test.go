package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// The heat registers' accounting obligations: (1) before any decay,
// the counters sum exactly to the client-originated operations the
// front-end saw — nothing double-counted, nothing missed, reads and
// writes in their own columns; (2) the counters are indexed by the
// slot the front-end computes from the object ID, so a client's group
// stamp — stale, random, or hostile — can never skew the ranking; (3)
// decay is monotone and sticky at the floor (every counter drops by
// exactly half rounded down — ceil-halving — so relative rankings
// survive a round and a live slot never flaps to zero).
func TestSlotHeatAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f4 := NewFrontend(4) // nil partitions: packets drop after routing, heat still counts
		var (
			total      uint64
			wantReads  [wire.NumSlots]uint64
			wantWrites [wire.NumSlots]uint64
		)
		for i := 0; i < 500; i++ {
			id := wire.ObjectID(rng.Uint32())
			slot := wire.SlotOf(id)
			pkt := &wire.Packet{
				ObjID: id,
				// The group stamp is an arbitrary guess; the front-end
				// must ignore it for heat indexing (and overriding it is
				// its routing job anyway).
				Group: uint16(rng.Intn(8)),
			}
			switch rng.Intn(4) {
			case 0:
				pkt.Op = wire.OpWrite
				wantWrites[slot]++
				total++
			case 1:
				pkt.Op = wire.OpRead
				wantReads[slot]++
				total++
			case 2:
				// Replica-forwarded re-entry of a fast read: already
				// counted on its first traversal, must not count again.
				pkt.Op = wire.OpRead
				pkt.Flags |= wire.FlagForwarded
				pkt.Group = 0
			default:
				// Replica-originated traffic never touches heat.
				pkt.Op = wire.OpWriteReply
				pkt.Group = 0
			}
			// Occasionally freeze the slot first: offered load counts
			// even when the packet is dropped mid-migration.
			frozen := rng.Intn(8) == 0 && pkt.Op != wire.OpWriteReply
			if frozen {
				f4.FreezeSlot(slot)
			}
			f4.Recv(simnet.NodeID(1), pkt)
			if frozen {
				f4.UnfreezeSlot(slot)
			}
		}
		heat := f4.SlotHeat()
		var sum uint64
		for s, h := range heat {
			if h.Reads != wantReads[s] || h.Writes != wantWrites[s] {
				return false
			}
			sum += h.Total()
		}
		if sum != total {
			return false
		}
		// Decay: ceil-halving (x -= x>>1), per counter, monotone —
		// nonzero counters stay nonzero, so the hysteresis band can't
		// flap a low-rate slot.
		f4.DecayHeat()
		for s, h := range f4.SlotHeat() {
			if h.Reads != heat[s].Reads-heat[s].Reads/2 || h.Writes != heat[s].Writes-heat[s].Writes/2 {
				return false
			}
			if h.Reads > heat[s].Reads || h.Writes > heat[s].Writes {
				return false
			}
			if heat[s].Reads > 0 && h.Reads == 0 || heat[s].Writes > 0 && h.Writes == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Repeated decay converges to a sticky floor of 1 per live counter —
// a slot that saw any traffic stays warm until the slot is explicitly
// cleared or the front-end reboots, so it cannot flap across the
// hysteresis band. ClearHeat and Reboot still cold-start the register.
func TestSlotHeatDecayAndReboot(t *testing.T) {
	f := NewFrontend(2)
	f.Recv(1, &wire.Packet{Op: wire.OpWrite, ObjID: 7})
	f.Recv(1, &wire.Packet{Op: wire.OpRead, ObjID: 7})
	slot := wire.SlotOf(7)
	if h := f.HeatOf(slot); h.Reads != 1 || h.Writes != 1 {
		t.Fatalf("heat = %+v, want 1 read + 1 write", h)
	}
	for i := 0; i < 64; i++ {
		f.DecayHeat()
	}
	for s, h := range f.SlotHeat() {
		if s == slot {
			if h.Reads != 1 || h.Writes != 1 {
				t.Fatalf("slot %d heat %+v after full decay, want sticky floor of 1/1", s, h)
			}
			continue
		}
		if h.Total() != 0 {
			t.Fatalf("cold slot %d heat %+v after full decay", s, h)
		}
	}
	if f.Stats.HeatDecays != 64 {
		t.Fatalf("HeatDecays = %d, want 64", f.Stats.HeatDecays)
	}
	f.ClearHeat(slot)
	if h := f.HeatOf(slot); h.Total() != 0 {
		t.Fatalf("heat %+v survived ClearHeat (explicit clears must win over the floor)", h)
	}
	f.Recv(1, &wire.Packet{Op: wire.OpWrite, ObjID: 7})
	f.Reboot()
	if h := f.HeatOf(slot); h.Total() != 0 {
		t.Fatalf("heat %+v survived a reboot (soft register state must not)", h)
	}
}
