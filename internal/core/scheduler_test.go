package core

import (
	"testing"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

type sent struct {
	to  simnet.NodeID
	pkt *wire.Packet
}

type capture struct{ out []sent }

func (c *capture) Send(to simnet.NodeID, pkt *wire.Packet) {
	c.out = append(c.out, sent{to, pkt})
}

func (c *capture) last() sent { return c.out[len(c.out)-1] }

func newTestSched(mutate func(*Config)) (*Scheduler, *capture) {
	c := &capture{}
	cfg := Config{
		Epoch:         1,
		Stages:        3,
		SlotsPerStage: 64,
		Replicas:      []simnet.NodeID{1, 2, 3},
		WriteDst:      1,
		ReadDst:       3,
		ClientBase:    1000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg, c), c
}

// prime drives one full write+completion through the scheduler so that
// it becomes ready for fast-path reads.
func prime(s *Scheduler, c *capture) {
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 999999, ClientID: 1})
	w := c.last().pkt
	s.Process(&wire.Packet{Op: wire.OpWriteReply, ObjID: w.ObjID, Seq: w.Seq, ClientID: 1})
}

func TestWriteGetsSequencedAndForwarded(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42, ClientID: 5})
	if len(c.out) != 1 {
		t.Fatalf("sent %d packets", len(c.out))
	}
	got := c.last()
	if got.to != 1 {
		t.Fatalf("write went to %d, want WriteDst 1", got.to)
	}
	if got.pkt.Seq != (wire.Seq{Epoch: 1, N: 1}) {
		t.Fatalf("seq = %v", got.pkt.Seq)
	}
	if s.DirtyCount() != 1 {
		t.Fatalf("dirty count = %d", s.DirtyCount())
	}
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 43})
	if c.last().pkt.Seq.N != 2 {
		t.Fatal("sequence numbers not increasing")
	}
}

func TestReadOnDirtyObjectTakesNormalPath(t *testing.T) {
	s, c := newTestSched(nil)
	prime(s, c)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 42, ClientID: 2})
	got := c.last()
	if got.to != 3 {
		t.Fatalf("dirty read to %d, want ReadDst 3", got.to)
	}
	if got.pkt.Flags&wire.FlagFastPath != 0 {
		t.Fatal("dirty read flagged fast-path")
	}
	if s.Stats.DirtyHits != 1 {
		t.Fatalf("DirtyHits = %d", s.Stats.DirtyHits)
	}
}

func TestReadOnCleanObjectFastPathStamped(t *testing.T) {
	s, c := newTestSched(nil)
	prime(s, c)
	lc := s.LastCommitted()
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 7, ClientID: 2})
	got := c.last()
	if got.pkt.Flags&wire.FlagFastPath == 0 {
		t.Fatal("clean read not fast-pathed")
	}
	if got.pkt.LastCommitted != lc {
		t.Fatalf("stamped %v, want %v", got.pkt.LastCommitted, lc)
	}
	isReplica := got.to == 1 || got.to == 2 || got.to == 3
	if !isReplica {
		t.Fatalf("fast read sent to %d", got.to)
	}
}

func TestFastReadsDisabledUntilFirstOwnEpochCompletion(t *testing.T) {
	s, c := newTestSched(nil)
	if s.Ready() {
		t.Fatal("fresh switch claims ready")
	}
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 7, ClientID: 2})
	if got := c.last(); got.to != 3 || got.pkt.Flags&wire.FlagFastPath != 0 {
		t.Fatalf("pre-ready read not on normal path: to=%d", got.to)
	}
	// A completion from an older epoch must not mark the switch ready.
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 1, Seq: wire.Seq{Epoch: 0, N: 5}})
	if s.Ready() {
		t.Fatal("stale completion marked switch ready")
	}
	if s.Stats.StaleCompletion != 1 {
		t.Fatalf("StaleCompletion = %d", s.Stats.StaleCompletion)
	}
	prime(s, c)
	if !s.Ready() {
		t.Fatal("own-epoch completion did not mark ready")
	}
}

func TestCompletionClearsDirtyAndAdvancesCommit(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	seq := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 42, Seq: seq})
	if s.DirtyCount() != 0 {
		t.Fatalf("dirty count = %d after completion", s.DirtyCount())
	}
	if s.LastCommitted() != seq {
		t.Fatalf("last committed = %v, want %v", s.LastCommitted(), seq)
	}
}

func TestCompletionKeepsEntryWithNewerPendingWrite(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	first := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42}) // concurrent second write
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 42, Seq: first})
	if s.DirtyCount() != 1 {
		t.Fatal("completion of first write cleared entry with pending second write")
	}
}

func TestPiggybackedCompletionForwardsReply(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42, ClientID: 9})
	seq := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWriteReply, ObjID: 42, Seq: seq, ClientID: 9})
	got := c.last()
	if got.to != 1009 {
		t.Fatalf("reply routed to %d, want client 1009", got.to)
	}
	if s.DirtyCount() != 0 {
		t.Fatal("piggybacked completion not processed")
	}
}

func TestReadReplyPassesThrough(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpReadReply, ObjID: 1, ClientID: 4})
	if got := c.last(); got.to != 1004 {
		t.Fatalf("read reply to %d", got.to)
	}
}

func TestWriteDroppedWhenTableFull(t *testing.T) {
	s, c := newTestSched(func(cfg *Config) {
		cfg.Stages = 1
		cfg.SlotsPerStage = 1
	})
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 1})
	before := len(c.out)
	// Find an object that collides in the single slot: with one slot
	// every object collides.
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 2, ClientID: 7, ReqID: 42, Key: "k"})
	if len(c.out) != before+1 {
		t.Fatalf("dropped write produced %d packets, want exactly the synthesized reply", len(c.out)-before)
	}
	// The write itself must not be forwarded; the switch instead
	// answers the client with a FlagDropped write reply so it can
	// retry immediately instead of waiting out its timeout.
	got := c.last()
	if got.to != 1007 {
		t.Fatalf("drop reply routed to %d, want client 1007", got.to)
	}
	rep := got.pkt
	if rep.Op != wire.OpWriteReply || rep.Flags&wire.FlagDropped == 0 {
		t.Fatalf("drop reply = %v, want WRITE-REPLY with FlagDropped", rep)
	}
	if rep.ReqID != 42 || rep.ObjID != 2 || rep.Key != "k" {
		t.Fatalf("drop reply lost request identity: %v", rep)
	}
	if !rep.Seq.IsZero() {
		t.Fatalf("drop reply carries seq %v; it must not look like a completion", rep.Seq)
	}
	if s.Stats.WritesDropped != 1 {
		t.Fatalf("WritesDropped = %d", s.Stats.WritesDropped)
	}
	if s.DirtyCount() != 1 {
		t.Fatalf("dirty count = %d after drop, want 1", s.DirtyCount())
	}
}

func TestForwardedReadBypassesDirtySet(t *testing.T) {
	s, c := newTestSched(nil)
	prime(s, c)
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 5, Flags: wire.FlagForwarded})
	got := c.last()
	if got.to != 3 {
		t.Fatalf("forwarded read to %d, want ReadDst", got.to)
	}
	if got.pkt.Flags&wire.FlagFastPath != 0 {
		t.Fatal("forwarded read re-fast-pathed")
	}
	if s.Stats.ForwardedReads != 1 {
		t.Fatalf("ForwardedReads = %d", s.Stats.ForwardedReads)
	}
}

func TestLazyCleanupReclaimsStrayEntry(t *testing.T) {
	s, c := newTestSched(nil)
	// Write obj 42 (seq 1), then write obj 43 (seq 2). Completion for
	// 42 is lost; completion for 43 arrives, advancing last-committed
	// to 2. A read of 42 must reclaim the stray entry (1 ≤ 2) and go
	// fast path.
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 43})
	seq43 := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 43, Seq: seq43})
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 42, ClientID: 1})
	got := c.last()
	if got.pkt.Flags&wire.FlagFastPath == 0 {
		t.Fatal("read after stray-entry cleanup not fast-pathed")
	}
	if s.DirtyCount() != 0 {
		t.Fatalf("stray entry not reclaimed: dirty=%d", s.DirtyCount())
	}
	if s.Stats.LazyCleanups != 1 {
		t.Fatalf("LazyCleanups = %d", s.Stats.LazyCleanups)
	}
}

func TestLazyCleanupAblation(t *testing.T) {
	s, c := newTestSched(func(cfg *Config) { cfg.DisableLazyCleanup = true })
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 43})
	seq43 := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 43, Seq: seq43})
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 42, ClientID: 1})
	if got := c.last(); got.pkt.Flags&wire.FlagFastPath != 0 {
		t.Fatal("ablated scheduler still cleaned stray entry")
	}
	if s.DirtyCount() != 1 {
		t.Fatal("ablated scheduler reclaimed entry")
	}
}

func TestSweepStale(t *testing.T) {
	s, c := newTestSched(nil)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 43})
	seq43 := c.last().pkt.Seq
	s.Process(&wire.Packet{Op: wire.OpWriteCompletion, ObjID: 43, Seq: seq43})
	if n := s.SweepStale(); n != 1 {
		t.Fatalf("SweepStale = %d, want 1", n)
	}
	if s.DirtyCount() != 0 {
		t.Fatal("sweep left entries")
	}
}

func TestMulticastWrites(t *testing.T) {
	s, c := newTestSched(func(cfg *Config) { cfg.MulticastWrites = true })
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 42})
	if len(c.out) != 3 {
		t.Fatalf("multicast to %d nodes, want 3", len(c.out))
	}
	seen := map[simnet.NodeID]bool{}
	for _, m := range c.out {
		seen[m.to] = true
		if m.pkt.Seq.N != 1 {
			t.Fatal("multicast copies differ in seq")
		}
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("multicast set wrong: %v", seen)
	}
	// Multicast shares one sequenced packet across all replicas:
	// packets are immutable once sequenced (internal/wire ownership
	// contract), so the switch sends N pointers, not N copies.
	if c.out[0].pkt != c.out[1].pkt || c.out[1].pkt != c.out[2].pkt {
		t.Fatal("multicast should share the sequenced packet")
	}
}

func TestDisableFastReads(t *testing.T) {
	s, c := newTestSched(func(cfg *Config) { cfg.DisableFastReads = true })
	prime(s, c)
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 7})
	if got := c.last(); got.to != 3 || got.pkt.Flags&wire.FlagFastPath != 0 {
		t.Fatal("DisableFastReads not honored")
	}
}

func TestRemoveAddReplica(t *testing.T) {
	s, c := newTestSched(nil)
	prime(s, c)
	s.RemoveReplica(2)
	for i := 0; i < 50; i++ {
		s.Process(&wire.Packet{Op: wire.OpRead, ObjID: wire.ObjectID(100 + i)})
		if got := c.last(); got.to == 2 {
			t.Fatal("fast read scheduled to removed replica")
		}
	}
	s.AddReplica(2)
	s.AddReplica(2) // idempotent
	hit2 := false
	for i := 0; i < 200; i++ {
		s.Process(&wire.Packet{Op: wire.OpRead, ObjID: wire.ObjectID(500 + i)})
		if c.last().to == 2 {
			hit2 = true
			break
		}
	}
	if !hit2 {
		t.Fatal("re-added replica never selected")
	}
}

func TestSetTargets(t *testing.T) {
	s, c := newTestSched(nil)
	s.SetTargets(2, 2)
	s.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 1})
	if c.last().to != 2 {
		t.Fatal("write target not updated")
	}
	s.Process(&wire.Packet{Op: wire.OpRead, ObjID: 1}) // dirty → normal path
	if c.last().to != 2 {
		t.Fatal("read target not updated")
	}
}

func TestFastReadsSpreadAcrossReplicas(t *testing.T) {
	s, c := newTestSched(nil)
	prime(s, c)
	counts := map[simnet.NodeID]int{}
	for i := 0; i < 3000; i++ {
		s.Process(&wire.Packet{Op: wire.OpRead, ObjID: wire.ObjectID(i)})
		counts[c.last().to]++
	}
	for _, r := range []simnet.NodeID{1, 2, 3} {
		if counts[r] < 800 {
			t.Fatalf("replica %d got %d of 3000 reads; distribution %v", r, counts[r], counts)
		}
	}
}

func TestNewEpochSchedulerSequencesAboveOld(t *testing.T) {
	s1, c1 := newTestSched(nil)
	s1.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 1})
	old := c1.last().pkt.Seq
	s2, c2 := newTestSched(func(cfg *Config) { cfg.Epoch = 2 })
	s2.Process(&wire.Packet{Op: wire.OpWrite, ObjID: 1})
	if !old.Less(c2.last().pkt.Seq) {
		t.Fatal("new-epoch sequence numbers do not dominate old-epoch ones")
	}
}

func TestNonPacketMessageIgnored(t *testing.T) {
	s, _ := newTestSched(nil)
	s.Recv(1, "not a packet") // must not panic
}
