package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"harmonia/internal/sim"
)

// testClock is a hand-advanced simulated clock for driving stamps.
type testClock struct{ t sim.Time }

func (c *testClock) now() sim.Time           { return c.t }
func (c *testClock) advance(d time.Duration) { c.t += sim.Time(d) }

func newTestTracer(cfg Config) (*Tracer, *testClock) {
	clk := &testClock{}
	return NewTracer(cfg, clk.now), clk
}

func TestTracerDisabledIsNil(t *testing.T) {
	if tr := NewTracer(Config{}, func() sim.Time { return 0 }); tr != nil {
		t.Fatal("zero config must disable tracing (nil tracer)")
	}
}

func TestSampleEvery(t *testing.T) {
	tr, _ := newTestTracer(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 100; i++ {
		if r := tr.Sample(false, 0, 0, 1); r != 0 {
			hits++
			tr.Release(r)
		}
	}
	if hits != 25 {
		t.Fatalf("SampleEvery=4 over 100 ops: %d spans, want 25", hits)
	}
}

// TestPhaseSumIdentity checks the telescoping invariant: whatever
// stamps a span collects, the five phase accumulators sum exactly to
// the end-to-end latency.
func TestPhaseSumIdentity(t *testing.T) {
	tr, clk := newTestTracer(Config{SampleEvery: 1})
	r := tr.Sample(true, 2, 1, 100)
	clk.advance(5 * time.Microsecond)
	tr.Stamp(r, HopSwitchArrive, 1, PhaseNetwork)
	tr.Stamp(r, HopSwitchSeq, 1, PhaseQueue) // zero-width
	clk.advance(7 * time.Microsecond)
	tr.Stamp(r, HopReplicaArrive, 10, PhaseNetwork)
	clk.advance(3 * time.Microsecond)
	tr.Stamp(r, HopReplicaServe, 10, PhaseQueue)
	clk.advance(11 * time.Microsecond)
	tr.Stamp(r, HopReplicaDone, 10, PhaseService)
	clk.advance(40 * time.Microsecond) // lost reply...
	tr.StampResend(r, 100)             // ...retry
	clk.advance(9 * time.Microsecond)
	tr.StampDrop(r, 1) // frozen slot this time
	clk.advance(30 * time.Microsecond)
	tr.StampResend(r, 100) // attributed to FrozenStall
	clk.advance(20 * time.Microsecond)
	sp := tr.Finish(r, 100)
	if sp == nil {
		t.Fatal("Finish returned nil for a live span")
	}
	if got, want := sp.Total(), 125*time.Microsecond; got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if sp.PhaseSum() != sp.Total() {
		t.Fatalf("phase sum %v != total %v: the telescoping identity broke", sp.PhaseSum(), sp.Total())
	}
	if got, want := sp.Phases[PhaseRetry], 40*time.Microsecond; got != want {
		t.Fatalf("Retry = %v, want %v (the un-dropped resend gap)", got, want)
	}
	if got, want := sp.Phases[PhaseFrozenStall], 30*time.Microsecond; got != want {
		t.Fatalf("FrozenStall = %v, want %v (the post-drop resend gap)", got, want)
	}
	if got, want := sp.Phases[PhaseService], 11*time.Microsecond; got != want {
		t.Fatalf("Service = %v, want %v", got, want)
	}
	if got, want := sp.Phases[PhaseQueue], 3*time.Microsecond; got != want {
		t.Fatalf("Queue = %v, want %v", got, want)
	}
	tr.Release(r)
}

// TestSpanPoolReuseRejectsStaleRefs pins the resurrection hazard: a
// late packet holding a released span's reference must stamp nothing
// into the slot's next tenant.
func TestSpanPoolReuseRejectsStaleRefs(t *testing.T) {
	tr, clk := newTestTracer(Config{SampleEvery: 1, Capacity: 1})
	stale := tr.Sample(false, 0, 0, 1)
	if stale == 0 {
		t.Fatal("first sample missed")
	}
	clk.advance(time.Microsecond)
	tr.Stamp(stale, HopSwitchArrive, 1, PhaseNetwork)
	tr.Finish(stale, 1)
	tr.Release(stale)

	// The slot is recycled by the next tenant...
	fresh := tr.Sample(false, 0, 0, 2)
	if fresh == 0 {
		t.Fatal("slot was not recycled")
	}
	if fresh == stale {
		t.Fatal("recycled reference must differ (generation bump)")
	}
	sp := tr.span(fresh)
	if sp.NHops != 1 || sp.Phases[PhaseNetwork] != 0 {
		t.Fatalf("recycled span resurrected old stamps: NHops=%d phases=%v", sp.NHops, sp.Phases)
	}
	// ...and every operation through the stale reference is inert.
	clk.advance(time.Microsecond)
	tr.Stamp(stale, HopReplicaArrive, 9, PhaseService)
	tr.StampDrop(stale, 9)
	tr.StampResend(stale, 9)
	if got := tr.Finish(stale, 9); got != nil {
		t.Fatal("Finish on a stale reference must return nil")
	}
	if sp.NHops != 1 || sp.PhaseSum() != 0 {
		t.Fatalf("stale stamps leaked into the new tenant: NHops=%d sum=%v", sp.NHops, sp.PhaseSum())
	}
	// Double-release through the stale ref must not corrupt the free
	// list (the live tenant still owns the slot).
	tr.Release(stale)
	if tr.InFlight() != 1 {
		t.Fatalf("stale Release freed a live span: in-flight %d, want 1", tr.InFlight())
	}
	tr.Release(fresh)
	if tr.InFlight() != 0 {
		t.Fatalf("in-flight %d after releasing everything", tr.InFlight())
	}
}

func TestSampleTableExhaustion(t *testing.T) {
	tr, _ := newTestTracer(Config{SampleEvery: 1, Capacity: 2})
	a := tr.Sample(false, 0, 0, 1)
	b := tr.Sample(false, 0, 0, 1)
	if a == 0 || b == 0 {
		t.Fatal("first two samples must hit")
	}
	if c := tr.Sample(false, 0, 0, 1); c != 0 {
		t.Fatal("exhausted table must skip sampling, not grow")
	}
	if tr.SpansDropped != 1 {
		t.Fatalf("SpansDropped = %d, want 1", tr.SpansDropped)
	}
	tr.Release(a)
	if d := tr.Sample(false, 0, 0, 1); d == 0 {
		t.Fatal("released slot must be sampleable again")
	}
}

func TestHopLogSaturatesPhasesKeepCounting(t *testing.T) {
	tr, clk := newTestTracer(Config{SampleEvery: 1})
	r := tr.Sample(false, 0, 0, 1)
	for i := 0; i < 2*MaxHops; i++ {
		clk.advance(time.Microsecond)
		tr.Stamp(r, HopReplicaArrive, 5, PhaseNetwork)
	}
	sp := tr.Finish(r, 1)
	if sp.NHops != MaxHops {
		t.Fatalf("hop log grew past MaxHops: %d", sp.NHops)
	}
	if got, want := sp.Phases[PhaseNetwork], time.Duration(2*MaxHops)*time.Microsecond; got != want {
		t.Fatalf("phase accumulation stopped with the hop log: %v, want %v", got, want)
	}
	tr.Release(r)
}

func TestRecorderOverflowDropsOldest(t *testing.T) {
	clk := &testClock{}
	rec := NewRecorder(4, clk.now)
	for i := 0; i < 7; i++ {
		clk.advance(time.Microsecond)
		rec.Emit(Event{Kind: EvRebalanceTick, Arg: uint64(i)})
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", rec.Len())
	}
	if got := rec.DroppedEvents(); got != 3 {
		t.Fatalf("DroppedEvents = %d, want 3", got)
	}
	evs := rec.Events()
	for i, e := range evs {
		if want := uint64(i + 3); e.Arg != want {
			t.Fatalf("event %d Arg = %d, want %d (oldest dropped, order kept)", i, e.Arg, want)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events must come back oldest-first")
		}
	}
}

func TestRecorderStampsSimTime(t *testing.T) {
	clk := &testClock{}
	rec := NewRecorder(0, clk.now)
	clk.advance(42 * time.Microsecond)
	rec.Emit(Event{Kind: EvSwitchCrash, At: 12345 /* must be overwritten */})
	if got := rec.Events()[0].At; got != sim.Time(42*time.Microsecond) {
		t.Fatalf("Emit must self-stamp: At = %d", got)
	}
}

// TestChromeTraceWellFormed round-trips the dump through encoding/json
// and checks the async begin/end pairing for migrations and hot keys.
func TestChromeTraceWellFormed(t *testing.T) {
	clk := &testClock{}
	rec := NewRecorder(0, clk.now)
	clk.advance(time.Millisecond)
	rec.Emit(Event{Kind: EvMigrationStart, Switch: 0, Group: 1, Slot: 7, Arg: 2})
	clk.advance(time.Millisecond)
	rec.Emit(Event{Kind: EvHotPromote, Switch: 0, Group: 1, Slot: 7, Arg: 99})
	clk.advance(time.Millisecond)
	rec.Emit(Event{Kind: EvMigrationFlip, Switch: 0, Group: 2, Slot: 7, Arg: 1})
	rec.Emit(Event{Kind: EvTopoEpoch, Switch: 1, Group: 3, Slot: -1, Arg: 5})
	rec.Emit(Event{Kind: EvHotDemote, Switch: 0, Group: 1, Slot: 7, Arg: 99})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			ID    uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	begins := map[string]uint64{}
	ends := map[string]uint64{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "b":
			begins[e.Name] = e.ID
		case "e":
			ends[e.Name] = e.ID
		case "i":
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if begins["migration"] == 0 || begins["migration"] != ends["migration"] {
		t.Fatalf("migration b/e pair mismatched: b=%d e=%d", begins["migration"], ends["migration"])
	}
	if begins["hotkey"] == 0 || begins["hotkey"] != ends["hotkey"] {
		t.Fatalf("hotkey b/e pair mismatched: b=%d e=%d", begins["hotkey"], ends["hotkey"])
	}
}
