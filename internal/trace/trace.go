// Package trace is the observability layer: sampled per-operation
// spans with a latency decomposition, and a bounded flight recorder of
// control-plane events (recorder.go).
//
// A Span is a pooled, fixed-size record that rides a sampled operation
// from client enqueue to completion. Every hook along the way — the
// client driver, the simulated network's arrive/serve/complete events,
// the switch sequencer, the front-end's drop paths — stamps the span
// with the current simulated time, and each stamp attributes the time
// since the PREVIOUS stamp to exactly one phase accumulator
// (telescoping deltas). Because the simulation fires events in global
// timestamp order, the deltas are never negative and the five phases
// sum exactly to the span's end-to-end latency; the reconciliation is
// an identity, not an estimate.
//
// The phases and their boundaries:
//
//   - Queue: from a packet's arrival at a busy replica until a worker
//     starts serving it (the simnet queue wait), plus the zero-width
//     switch-sequencing stamp.
//   - Service: from serve start to service completion at a replica
//     (the modeled per-op CPU cost).
//   - Network: everything in flight — link propagation, switch
//     forwarding, and protocol-internal replication legs (chain
//     propagation, multicast fan-out) that carry no stamps of their
//     own and therefore collapse into the in-flight remainder.
//   - Retry: from a resend-triggering moment (timeout, explicit
//     dropped-reply) back to the wire, when the stall was NOT a frozen
//     or stalled slot — lost packets, reordering, crashed switches.
//   - FrozenStall: the same resend gap when the front-end explicitly
//     dropped the packet because its slot was frozen mid-migration or
//     the switch was stalled rebooting — the migration tax, separated
//     from network-loss retries so a chaos run's dip is attributable.
//
// Writes replicated to several replicas in parallel interleave their
// per-replica stamps in event order; each leg's queue/service time is
// counted once and the overlap lands in Network. The attribution of
// overlapped legs is therefore approximate, but the total never
// double-counts and the phase sum stays exact.
//
// Spans are preallocated in a fixed-capacity table and recycled
// through a free list; a span reference encodes both the table index
// and a generation counter, so a stale reference held by a late packet
// (a duplicate reply, a multicast leg landing after completion) stamps
// nothing instead of corrupting the slot's next tenant. With tracing
// disabled every hook is nil-guarded and the data plane stays
// 0 allocs/op.
package trace

import "harmonia/internal/sim"

// Phase indexes one latency-decomposition accumulator. See the package
// comment for each phase's exact boundaries.
type Phase uint8

const (
	PhaseQueue Phase = iota
	PhaseService
	PhaseNetwork
	PhaseRetry
	PhaseFrozenStall
	NumPhases
)

// String names the phase for reports and trace dumps.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseService:
		return "service"
	case PhaseNetwork:
		return "network"
	case PhaseRetry:
		return "retry"
	case PhaseFrozenStall:
		return "frozen-stall"
	}
	return "unknown"
}

// HopKind labels one stamped hop of a span's journey.
type HopKind uint8

const (
	// HopIssue is the client enqueueing the operation (span start).
	HopIssue HopKind = iota
	// HopSwitchArrive is the packet landing on a switch front-end.
	HopSwitchArrive
	// HopSwitchSeq is the sequencer assigning the write's sequence
	// number (zero-width: same instant as the switch arrival).
	HopSwitchSeq
	// HopReplicaArrive is the packet landing on a replica node.
	HopReplicaArrive
	// HopReplicaServe is a replica worker starting to serve it.
	HopReplicaServe
	// HopReplicaDone is the replica's service completing.
	HopReplicaDone
	// HopClientArrive is a reply landing back on the client node.
	HopClientArrive
	// HopDrop is the front-end explicitly dropping the packet
	// (frozen slot, stalled switch, or misrouted epoch).
	HopDrop
	// HopResend is the client putting the operation back on the wire
	// (retry timeout or immediate reissue of a dropped reply).
	HopResend
	// HopComplete is the client completing the operation (span end).
	HopComplete
)

// String names the hop kind for trace dumps.
func (k HopKind) String() string {
	switch k {
	case HopIssue:
		return "issue"
	case HopSwitchArrive:
		return "switch-arrive"
	case HopSwitchSeq:
		return "switch-seq"
	case HopReplicaArrive:
		return "replica-arrive"
	case HopReplicaServe:
		return "replica-serve"
	case HopReplicaDone:
		return "replica-done"
	case HopClientArrive:
		return "client-arrive"
	case HopDrop:
		return "drop"
	case HopResend:
		return "resend"
	case HopComplete:
		return "complete"
	}
	return "unknown"
}

// MaxHops bounds the per-span hop log. A span whose op bounces more
// than this keeps accumulating phase time; only the hop LOG saturates.
const MaxHops = 16

// Hop is one stamped waypoint.
type Hop struct {
	Kind HopKind
	Node int32
	At   sim.Time
}

// Span is one sampled operation's record. It is pooled: callers never
// allocate or retain one past Release.
type Span struct {
	Start sim.Time
	End   sim.Time
	Write bool
	Group int16
	Sw    int16

	Hops   [MaxHops]Hop
	NHops  uint8
	Phases [NumPhases]sim.Duration

	// lastT is the previous stamp's time; each stamp attributes
	// now−lastT to one phase, so the phases telescope to End−Start.
	lastT sim.Time
	// frozenPending marks that the most recent stall was an explicit
	// front-end drop (frozen/stalled), so the NEXT resend gap is
	// attributed to FrozenStall rather than Retry.
	frozenPending bool

	gen  uint32
	used bool
}

// Total is the span's end-to-end latency.
func (s *Span) Total() sim.Duration { return sim.Duration(s.End - s.Start) }

// PhaseSum is the sum of the five phase accumulators; by construction
// it equals Total for a completed span.
func (s *Span) PhaseSum() sim.Duration {
	var sum sim.Duration
	for _, d := range s.Phases {
		sum += d
	}
	return sum
}

// Config sizes the span sampler. The zero value disables tracing.
type Config struct {
	// SampleEvery traces one in every SampleEvery operations
	// (1 = every op). 0 disables span tracing entirely; the guarded
	// fast paths then stay 0 allocs/op.
	SampleEvery int
	// Capacity is the span table size — the maximum number of traced
	// operations in flight at once (default 1024). When the table is
	// exhausted sampling skips ops (counted in SpansDropped) until
	// spans are released.
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	return c
}

// Tracer owns the preallocated span table and the sampling decision.
// It is single-threaded, like the simulation that drives it.
type Tracer struct {
	cfg   Config
	now   func() sim.Time
	spans []Span
	free  []int32
	count uint64 // ops seen by Sample

	// SpansStarted and SpansDropped count sampling outcomes: started
	// spans, and sample hits skipped because the table was exhausted.
	SpansStarted uint64
	SpansDropped uint64
}

// NewTracer builds a tracer reading the injected simulated clock.
// A nil return means tracing is disabled (SampleEvery == 0).
func NewTracer(cfg Config, now func() sim.Time) *Tracer {
	if cfg.SampleEvery <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg, now: now, spans: make([]Span, cfg.Capacity)}
	t.free = make([]int32, cfg.Capacity)
	for i := range t.free {
		t.free[i] = int32(cfg.Capacity - 1 - i)
	}
	return t
}

// Config returns the effective (defaulted) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// ref packs a span's table index and generation into the opaque
// reference that rides the packet (0 = untraced).
func ref(idx int32, gen uint32) uint64 {
	return uint64(idx+1) | uint64(gen)<<32
}

// span resolves a reference, returning nil when the reference is 0 or
// stale (the slot was released and recycled since).
func (t *Tracer) span(r uint64) *Span {
	idx := int32(r&0xffffffff) - 1
	if idx < 0 || int(idx) >= len(t.spans) {
		return nil
	}
	s := &t.spans[idx]
	if !s.used || s.gen != uint32(r>>32) {
		return nil
	}
	return s
}

// Sample makes the sampling decision for one operation and, when it
// hits, starts a span stamped HopIssue at the current time. It returns
// the span reference to ride the packet, or 0 (not sampled, or table
// exhausted). Zero allocations on every path.
func (t *Tracer) Sample(write bool, group, sw int16, node int32) uint64 {
	t.count++
	if t.count%uint64(t.cfg.SampleEvery) != 0 {
		return 0
	}
	if len(t.free) == 0 {
		t.SpansDropped++
		return 0
	}
	idx := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	s := &t.spans[idx]
	gen := s.gen + 1
	// Full reset: a recycled slot must not resurrect the previous
	// tenant's hop stamps or phase residue.
	*s = Span{gen: gen, used: true, Write: write, Group: group, Sw: sw}
	now := t.now()
	s.Start, s.lastT = now, now
	s.Hops[0] = Hop{Kind: HopIssue, Node: node, At: now}
	s.NHops = 1
	t.SpansStarted++
	return ref(idx, gen)
}

// Stamp attributes the time since the span's previous stamp to phase
// and logs a hop. Stale or zero references are ignored.
func (t *Tracer) Stamp(r uint64, kind HopKind, node int32, phase Phase) {
	s := t.span(r)
	if s == nil {
		return
	}
	now := t.now()
	s.Phases[phase] += sim.Duration(now - s.lastT)
	s.lastT = now
	if s.NHops < MaxHops {
		s.Hops[s.NHops] = Hop{Kind: kind, Node: node, At: now}
		s.NHops++
	}
}

// StampDrop records an explicit front-end drop: the in-flight time so
// far goes to Network, and the span is marked so the next resend gap
// is attributed to FrozenStall instead of Retry.
func (t *Tracer) StampDrop(r uint64, node int32) {
	s := t.span(r)
	if s == nil {
		return
	}
	t.Stamp(r, HopDrop, node, PhaseNetwork)
	s.frozenPending = true
}

// StampResend records the client putting the op back on the wire: the
// gap since the last stamp is the stall itself, attributed to
// FrozenStall when the front-end explicitly dropped the packet and to
// Retry otherwise (loss, reordering, a dead switch).
func (t *Tracer) StampResend(r uint64, node int32) {
	s := t.span(r)
	if s == nil {
		return
	}
	phase := PhaseRetry
	if s.frozenPending {
		phase = PhaseFrozenStall
		s.frozenPending = false
	}
	t.Stamp(r, HopResend, node, phase)
}

// Finish stamps the completion hop (final in-flight delta to Network),
// closes the span, and returns it for folding into histograms. The
// caller MUST call Release(r) once done reading it. Returns nil for a
// stale or zero reference.
func (t *Tracer) Finish(r uint64, node int32) *Span {
	s := t.span(r)
	if s == nil {
		return nil
	}
	t.Stamp(r, HopComplete, node, PhaseNetwork)
	s.End = s.lastT
	return s
}

// Release returns the span behind r to the free list. Safe on stale
// or zero references (no-op). Any reference to the slot becomes stale
// immediately: a late packet stamping it hits the generation check.
func (t *Tracer) Release(r uint64) {
	s := t.span(r)
	if s == nil {
		return
	}
	s.used = false
	t.free = append(t.free, int32(r&0xffffffff)-1)
}

// InFlight returns the number of live spans (table occupancy).
func (t *Tracer) InFlight() int { return len(t.spans) - len(t.free) }
