package trace

import "harmonia/internal/sim"

// EventKind identifies one class of control-plane event.
type EventKind uint8

const (
	// EvMigrationStart is a batch slot migration freezing Slot on
	// Group (the source); Arg carries the destination group.
	EvMigrationStart EventKind = iota
	// EvMigrationFlip is the migration's route flip: Slot now routes
	// to Group (the destination); Arg carries the source group.
	EvMigrationFlip
	// EvMigrationAbort is a migration thawing Slot back onto Group
	// after missing its deadline.
	EvMigrationAbort
	// EvRebalanceTick is a rebalancer round firing on Switch; Arg is
	// the number of planned one-way moves, Arg2 the planned swaps.
	EvRebalanceTick
	// EvRebalanceVeto is a tick whose trigger fired but whose round
	// came up empty: every candidate was cost-vetoed or busy. Slot is
	// the overloaded domain's hottest slot (the promotion candidate),
	// −1 when unknown.
	EvRebalanceVeto
	// EvHotPromote is a key promoted to per-key hot replication; Arg
	// is the object ID, Arg2 the holder count.
	EvHotPromote
	// EvHotInvalidate is a write landing on a promoted key: the
	// front-end pauses spread reads until the refresh. Arg is the
	// object ID, Arg2 the new write generation.
	EvHotInvalidate
	// EvHotRefresh is the refresh barrier completing: holder copies
	// are consistent again at write generation Arg2 for object Arg.
	EvHotRefresh
	// EvHotDemote is a cooled key dropping its foreign copies; Arg is
	// the object ID.
	EvHotDemote
	// EvTopoEpoch is a membership revision: group add/retire/respec
	// or weight change. Arg is the new topology epoch.
	EvTopoEpoch
	// EvAgreement is a completed §5.3 switch-replacement agreement on
	// Switch; Arg is the agreement latency in nanoseconds.
	EvAgreement
	// EvSwitchCrash is Switch going dark.
	EvSwitchCrash
	// EvSwitchReactivate is a replacement switch booting for Switch;
	// Arg is its new incarnation epoch.
	EvSwitchReactivate
)

// String names the event kind (also the Chrome trace event name).
func (k EventKind) String() string {
	switch k {
	case EvMigrationStart:
		return "migration-start"
	case EvMigrationFlip:
		return "migration-flip"
	case EvMigrationAbort:
		return "migration-abort"
	case EvRebalanceTick:
		return "rebalance-tick"
	case EvRebalanceVeto:
		return "rebalance-veto"
	case EvHotPromote:
		return "hotkey-promote"
	case EvHotInvalidate:
		return "hotkey-invalidate"
	case EvHotRefresh:
		return "hotkey-refresh"
	case EvHotDemote:
		return "hotkey-demote"
	case EvTopoEpoch:
		return "topo-epoch"
	case EvAgreement:
		return "agreement"
	case EvSwitchCrash:
		return "switch-crash"
	case EvSwitchReactivate:
		return "switch-reactivate"
	}
	return "unknown"
}

// Event is one structured flight-recorder entry. Fields not meaningful
// for a kind are left at their zero value (Slot uses −1 for "none").
type Event struct {
	At     sim.Time
	Kind   EventKind
	Switch int16
	Group  int16
	Slot   int16
	Arg    uint64
	Arg2   uint64
}

// DefaultEventCapacity bounds the flight recorder when the caller does
// not size it explicitly.
const DefaultEventCapacity = 4096

// Recorder is the bounded control-plane flight recorder: a ring of
// Events, oldest dropped on overflow. Emission is allocation-free
// after construction; the ring is single-threaded like the simulation.
type Recorder struct {
	now     func() sim.Time
	ring    []Event
	head    int // index of the oldest event
	n       int // live events
	dropped uint64
}

// NewRecorder builds a recorder of the given capacity (<=0 selects
// DefaultEventCapacity) reading the injected simulated clock.
func NewRecorder(capacity int, now func() sim.Time) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Recorder{now: now, ring: make([]Event, capacity)}
}

// Emit records e, stamping e.At with the current simulated time. When
// the ring is full the oldest event is dropped and counted.
func (r *Recorder) Emit(e Event) {
	e.At = r.now()
	if r.n == len(r.ring) {
		r.ring[r.head] = e
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
		return
	}
	r.ring[(r.head+r.n)%len(r.ring)] = e
	r.n++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return r.n }

// DroppedEvents returns how many events overflowed out of the ring.
func (r *Recorder) DroppedEvents() uint64 { return r.dropped }

// Events returns the retained events oldest-first, as a fresh slice.
func (r *Recorder) Events() []Event {
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}
