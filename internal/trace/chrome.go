package trace

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (catapult "Trace Event Format"), the schema chrome://tracing and
// Perfetto open directly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the recorder's events as Chrome
// trace_event JSON: open the file in chrome://tracing or
// https://ui.perfetto.dev to see the control-plane timeline. Each
// switch renders as one track (tid); migrations and hot-key lifetimes
// render as async spans (begin/end pairs keyed by slot and object ID),
// everything else as instant events.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+1)}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  "control",
			TS:   float64(e.At) / float64(time.Microsecond),
			TID:  int(e.Switch),
			Args: map[string]any{
				"switch": e.Switch, "group": e.Group, "slot": e.Slot,
				"arg": e.Arg, "arg2": e.Arg2,
			},
		}
		switch e.Kind {
		case EvMigrationStart:
			ce.Phase, ce.Cat, ce.Name, ce.ID = "b", "migration", "migration", uint64(e.Slot)+1
			ce.Args["kind"] = EvMigrationStart.String()
		case EvMigrationFlip, EvMigrationAbort:
			ce.Phase, ce.Cat, ce.Name, ce.ID = "e", "migration", "migration", uint64(e.Slot)+1
			ce.Args["kind"] = e.Kind.String()
		case EvHotPromote:
			ce.Phase, ce.Cat, ce.Name, ce.ID = "b", "hotkey", "hotkey", e.Arg+1
			ce.Args["kind"] = EvHotPromote.String()
		case EvHotDemote:
			ce.Phase, ce.Cat, ce.Name, ce.ID = "e", "hotkey", "hotkey", e.Arg+1
			ce.Args["kind"] = EvHotDemote.String()
		default:
			ce.Phase, ce.Scope = "i", "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
		// Async pairs alone are invisible until matched; mirror the
		// lifecycle edges as instants too so a truncated ring (e.g. a
		// promote that outlived its demote) still shows on the track.
		if ce.Phase != "i" {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Cat: "control", Phase: "i", Scope: "t",
				TS: ce.TS, TID: ce.TID, Args: ce.Args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
