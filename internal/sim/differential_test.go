package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap reimplement the engine's former container/heap
// scheduler: ordered by (time, insertion sequence). The differential
// tests drive the timing wheel and this reference side by side through
// randomized schedule/cancel/advance sequences and demand the exact
// same fire order, tie-breaks included.
type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// refEngine is the reference scheduler: same clamp-to-now and
// run-until semantics as Engine, O(log n) and allocating, but simple
// enough to be obviously correct.
type refEngine struct {
	now    Time
	nextID uint64
	pq     refHeap
}

func (r *refEngine) schedule(t Time, fn func()) *refEvent {
	if t < r.now {
		t = r.now
	}
	ev := &refEvent{at: t, seq: r.nextID, fn: fn}
	r.nextID++
	heap.Push(&r.pq, ev)
	return ev
}

func (r *refEngine) run(until Time) {
	for r.pq.Len() > 0 {
		ev := r.pq[0]
		if ev.dead {
			heap.Pop(&r.pq)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&r.pq)
		r.now = ev.at
		ev.fn()
	}
	if r.now < until {
		r.now = until
	}
}

// TestWheelMatchesHeapDifferential drives randomized workloads —
// schedules at clustered and scattered times (exact ties, past times
// that clamp to now, byte-boundary neighborhoods, multi-level far
// offsets), cancellations of random pending timers, and partial
// Run(until) windows — through the timing wheel and the reference heap
// and requires the two fire orders to be identical element by element.
// Runs under -race in CI via the ordinary test shards.
func TestWheelMatchesHeapDifferential(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine(1)
		ref := &refEngine{}

		var gotOrder, wantOrder []int
		type pending struct {
			tm Timer
			re *refEvent
		}
		var open []pending
		nextID := 0

		for round := 0; round < 40; round++ {
			// A burst of schedules: clustered times force ties and deep
			// slots; large offsets exercise the high wheel levels.
			n := 1 + rng.Intn(12)
			for i := 0; i < n; i++ {
				var at Time
				switch rng.Intn(5) {
				case 0: // exact tie cluster
					at = eng.Now() + Time(rng.Intn(3))
				case 1: // past: clamps to now on both sides
					at = eng.Now() - Time(rng.Intn(50))
				case 2: // far future, multi-level
					at = eng.Now() + Time(rng.Intn(1<<20))
				case 3: // byte-boundary neighborhood
					at = (eng.Now() | 0xff) + Time(rng.Intn(4))
				default:
					at = eng.Now() + Time(rng.Intn(500))
				}
				id := nextID
				nextID++
				tm := eng.At(at, func() { gotOrder = append(gotOrder, id) })
				re := ref.schedule(at, func() { wantOrder = append(wantOrder, id) })
				open = append(open, pending{tm, re})
			}
			// Cancel a few random pending timers on both sides. Stop's
			// verdict must agree with the reference's fired/pending state.
			for i := 0; i < rng.Intn(4) && len(open) > 0; i++ {
				k := rng.Intn(len(open))
				p := open[k]
				stopped := p.tm.Stop()
				// The reference has no generation stamps; emulate Stop's
				// verdict by checking whether the event is still queued.
				if refPending(ref, p.re) != stopped {
					t.Fatalf("seed %d: wheel Stop=%v, reference still pending=%v",
						seed, stopped, refPending(ref, p.re))
				}
				p.re.dead = true
				open[k] = open[len(open)-1]
				open = open[:len(open)-1]
			}
			// Advance a partial window; sometimes zero-width, sometimes
			// crossing several byte boundaries.
			until := eng.Now() + Time(rng.Intn(1<<14))
			eng.Run(until)
			ref.run(until)
			if eng.Now() != ref.now {
				t.Fatalf("seed %d round %d: clock diverged wheel=%d ref=%d",
					seed, round, eng.Now(), ref.now)
			}
		}
		// Drain both completely.
		eng.Run(maxTime)
		ref.run(maxTime)

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: wheel fired %d events, reference fired %d",
				seed, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: fire order diverges at %d: wheel=%d ref=%d",
					seed, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// refPending reports whether ev is still queued (not fired, not
// cancelled) in the reference heap.
func refPending(r *refEngine, ev *refEvent) bool {
	if ev.dead {
		return false
	}
	for _, q := range r.pq {
		if q == ev {
			return true
		}
	}
	return false
}

// TestWheelNestedSchedulingDifferential covers self-scheduling:
// callbacks that schedule more work at the current instant and at
// short offsets, where tie-break stability is the former heap's
// sequence order. Both sides draw nested offsets from identical
// deterministic RNG streams, so the schedules correspond 1:1.
func TestWheelNestedSchedulingDifferential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		eng := NewEngine(1)
		ref := &refEngine{}
		var gotOrder, wantOrder []int
		rngW := rand.New(rand.NewSource(seed*7 + 1))
		rngR := rand.New(rand.NewSource(seed*7 + 1))
		nextW, nextR := 0, 0

		var spawnW func(depth int) func()
		spawnW = func(depth int) func() {
			return func() {
				id := nextW
				nextW++
				gotOrder = append(gotOrder, id)
				if depth < 6 {
					for i, k := 0, rngW.Intn(3); i < k; i++ {
						eng.After(Duration(rngW.Intn(64)), spawnW(depth+1))
					}
				}
			}
		}
		var spawnR func(depth int) func()
		spawnR = func(depth int) func() {
			return func() {
				id := nextR
				nextR++
				wantOrder = append(wantOrder, id)
				if depth < 6 {
					for i, k := 0, rngR.Intn(3); i < k; i++ {
						ref.schedule(ref.now+Time(rngR.Intn(64)), spawnR(depth+1))
					}
				}
			}
		}

		for i := 0; i < 16; i++ {
			at := Time(i * 97)
			eng.At(at, spawnW(0))
			ref.schedule(at, spawnR(0))
		}
		eng.Run(1 << 20)
		ref.run(1 << 20)

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: wheel fired %d events, reference fired %d",
				seed, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: nested fire order diverges at index %d", seed, i)
			}
		}
	}
}

// TestTimerStopIdempotent pins the Timer contract under the wheel: the
// zero Timer is inert, Stop before firing reports true exactly once,
// Stop after firing reports false (including from inside the firing
// callback), and a handle whose event slot was recycled for a new
// event never cancels the newcomer.
func TestTimerStopIdempotent(t *testing.T) {
	var zero Timer
	for i := 0; i < 3; i++ {
		if zero.Stop() {
			t.Fatal("zero Timer Stop returned true")
		}
	}

	e := NewEngine(1)
	tm := e.After(10, func() {})
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	for i := 0; i < 3; i++ {
		if tm.Stop() {
			t.Fatal("repeated Stop returned true")
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0", e.Pending())
	}

	// Stop from inside the firing callback must report false: by the
	// time the callback runs, the event has fired.
	var inside, after Timer
	var insideVerdict bool
	inside = e.After(5, func() { insideVerdict = inside.Stop() })
	e.Run(100)
	if insideVerdict {
		t.Fatal("Stop from inside own callback returned true")
	}
	if inside.Stop() {
		t.Fatal("Stop after fire returned true")
	}

	// Recycling: the fired event's slot is reused for a new event with
	// a bumped generation; the stale handle must not cancel it.
	fired := false
	after = e.After(5, func() { fired = true })
	if inside.Stop() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	e.Run(200)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if after.Stop() {
		t.Fatal("Stop after fire returned true for recycled event")
	}
}

// TestPendingCountsLiveEvents pins Pending's O(1) live counter against
// fires, cancellations, and cancelled-event sweeps.
func TestPendingCountsLiveEvents(t *testing.T) {
	e := NewEngine(1)
	tms := make([]Timer, 10)
	for i := range tms {
		tms[i] = e.After(Duration(10+i), func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	tms[3].Stop()
	tms[7].Stop()
	if e.Pending() != 8 {
		t.Fatalf("Pending after 2 stops = %d, want 8", e.Pending())
	}
	e.Run(14) // fires events at 10..14 except the stopped one at 13
	if e.Pending() != 4 {
		t.Fatalf("Pending after partial run = %d, want 4", e.Pending())
	}
	e.Run(1000)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}
