// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (network links, server processors, protocol
// timers) schedule closures on a shared Engine. Events execute in
// timestamp order; ties break by scheduling order, so a run with a fixed
// RNG seed is fully reproducible.
//
// The scheduler is a hierarchical timing wheel: eight levels of 256
// slots, level k spanning 256^k nanoseconds per slot, so schedule,
// cancel, and fire are all O(1) amortized (a heap's O(log n) per event
// and its pointer-chasing Less calls are off the hot path entirely).
// Each slot is an intrusive FIFO list and an event lands in the level
// given by the highest byte in which its deadline differs from the
// wheel's current base time. Advancing the clock cascades a higher
// slot's events down exactly when the base crosses the slot's byte
// boundary; since every event in the slot shares the deadline prefix
// above that byte, re-placement preserves insertion order, and the
// fire order is bit-identical to the former heap's (time, then FIFO) —
// the differential test in sim_test.go pins that equivalence.
//
// The event records themselves are recycled through a free list and
// timers are generation-stamped value handles, so steady-state
// scheduling allocates nothing: the per-message event traffic of a
// saturated rack runs at data-plane rates without feeding the garbage
// collector. The closure-free AfterCall variant extends that to the
// callback itself — callers pass a long-lived func(any) plus the
// argument instead of capturing state per event.
package sim

import (
	"math/bits"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is
// deliberately the same representation as time.Duration so callers can
// use the time package's constants (time.Microsecond etc.).
type Duration = time.Duration

// event is a scheduled closure. Events are pooled: when one fires or
// is swept out of the wheel cancelled, it returns to the engine's free
// list and its generation advances, which is what invalidates any
// Timer still pointing at it.
type event struct {
	at   Time
	gen  uint64 // incarnation counter; Timers must match to act
	fn   func()
	call func(any) // closure-free form: call(arg) if fn is nil
	arg  any
	next *event  // intrusive slot-list link
	eng  *Engine // back-pointer so Stop can maintain the live count
	dead bool
}

// Timing-wheel geometry: 8 levels of 256 slots cover the full non-
// negative int64 time range, one byte of the deadline per level.
const (
	wheelLevels = 8
	wheelSlots  = 256
)

// slotList is one wheel slot: an intrusive singly-linked FIFO queue.
type slotList struct {
	head, tail *event
}

// Timer is a cancellation handle for a scheduled event. It is a value:
// the zero Timer is inert (Stop reports false and is safe to call any
// number of times), and a Timer whose event has already fired — or was
// already stopped — is detected by the generation stamp and the dead
// flag, so Stop is idempotent and holding a stale handle is always
// safe. In particular, Stop after the event has fired reports false,
// including when called from inside the firing callback itself.
type Timer struct {
	e   *event
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and therefore was prevented from firing). Stopping an
// already-fired, already-stopped, or zero Timer reports false and has
// no effect; the call is idempotent.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.dead {
		return false
	}
	t.e.dead = true
	t.e.eng.live--
	return true
}

// Engine is a discrete-event scheduler with a virtual clock.
//
// Engine is not safe for concurrent use: the simulation model is
// single-threaded by design, which is what makes runs deterministic.
type Engine struct {
	now Time
	// base is the wheel's reference time: the level/slot of a deadline
	// is derived from base, and cascades keep every queued event's
	// placement consistent as base advances. base == now whenever user
	// code can observe the engine (inside callbacks and between runs);
	// it runs ahead of now only transiently while the pop loop drains
	// cancelled events.
	base Time
	rng  *rand.Rand
	live int // scheduled, non-cancelled events

	wheel [wheelLevels][wheelSlots]slotList
	occ   [wheelLevels][wheelSlots / 64]uint64 // slot-occupancy bitmaps

	free []*event

	// Processed counts executed events, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine whose clock starts at 0 and whose
// randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// place links ev into the wheel slot its deadline selects relative to
// the current base: level = highest byte where at and base differ,
// slot = that byte of at. Appending to the slot tail is what preserves
// FIFO order among equal deadlines across cascades.
func (e *Engine) place(ev *event) {
	lvl := 0
	idx := int(uint64(ev.at) & 0xff)
	if d := uint64(ev.at ^ e.base); d != 0 {
		lvl = (63 - bits.LeadingZeros64(d)) >> 3
		idx = int((uint64(ev.at) >> (8 * uint(lvl))) & 0xff)
	}
	ev.next = nil
	sl := &e.wheel[lvl][idx]
	if sl.head == nil {
		sl.head = ev
		e.occ[lvl][idx>>6] |= 1 << uint(idx&63)
	} else {
		sl.tail.next = ev
	}
	sl.tail = ev
}

// alloc takes an event from the free list (or the heap allocator) and
// schedules it at t.
func (e *Engine) alloc(t Time) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.dead = false
	e.live++
	e.place(ev)
	return ev
}

// recycle returns a popped event to the free list. The generation bump
// is what retires outstanding Timer handles; the callback fields are
// cleared so the pool retains nothing.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	ev.next = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at the absolute simulated time t. Scheduling
// in the past is clamped to "now" (the event runs before the clock
// advances further).
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.alloc(t)
	ev.fn = fn
	return Timer{e: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) Timer {
	return e.At(e.now+Time(d), fn)
}

// AtCall schedules call(arg) at the absolute time t without returning
// a handle. This is the zero-allocation fast path for high-volume
// events (message deliveries, service completions): the caller keeps
// one long-lived call function and threads per-event state through
// arg, so nothing is captured per event.
func (e *Engine) AtCall(t Time, call func(any), arg any) {
	ev := e.alloc(t)
	ev.call = call
	ev.arg = arg
}

// AfterCall schedules call(arg) to run d from now, without a handle.
func (e *Engine) AfterCall(d Duration, call func(any), arg any) {
	e.AtCall(e.now+Time(d), call, arg)
}

// AfterCallT is AfterCall with a cancellation handle, for hot-path
// events that occasionally need stopping (retry timers).
func (e *Engine) AfterCallT(d Duration, call func(any), arg any) Timer {
	ev := e.alloc(e.now + Time(d))
	ev.call = call
	ev.arg = arg
	return Timer{e: ev, gen: ev.gen}
}

// findSlot returns the first occupied slot index >= from at lvl, or -1.
func (e *Engine) findSlot(lvl, from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	b := e.occ[lvl][w] >> uint(from&63) << uint(from&63)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w == len(e.occ[lvl]) {
			return -1
		}
		b = e.occ[lvl][w]
	}
}

// clearSlot empties slot idx of lvl and returns its list head.
func (e *Engine) clearSlot(lvl, idx int) *event {
	sl := &e.wheel[lvl][idx]
	head := sl.head
	sl.head, sl.tail = nil, nil
	e.occ[lvl][idx>>6] &^= 1 << uint(idx&63)
	return head
}

// popNext removes and returns the earliest live event with deadline <=
// until, advancing base (and cascading higher-level slots) as needed.
// It returns nil when no such event exists; base is then left <= until,
// and reset to now if the wheel is completely empty (so a transient
// base advance from draining cancelled future events can never strand
// the placement invariant ahead of the clock).
func (e *Engine) popNext(until Time) *event {
	for {
		// Level 0 first: slots at or after the cursor byte hold events
		// whose deadline differs from base only in byte 0, so the whole
		// slot shares one exact deadline.
		if s := e.findSlot(0, int(uint64(e.base)&0xff)); s >= 0 {
			slotTime := Time(uint64(e.base)&^0xff | uint64(s))
			if slotTime > until {
				return nil
			}
			e.base = slotTime
			sl := &e.wheel[0][s]
			for ev := sl.head; ev != nil; ev = sl.head {
				if sl.head = ev.next; sl.head == nil {
					sl.tail = nil
					e.occ[0][s>>6] &^= 1 << uint(s&63)
				}
				if ev.dead {
					e.recycle(ev)
					continue
				}
				return ev
			}
			continue // slot held only cancelled events
		}
		// Level 0 exhausted for this 256ns window: cascade the next
		// occupied higher slot whose window starts within the bound.
		// Levels are inspected lowest-first, so the chosen slot's base
		// is the earliest possible deadline of anything still queued —
		// and a slot is only cascaded once base may legally enter it
		// (slotBase <= until), never prematurely.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			shift := uint(8 * lvl)
			cur := int((uint64(e.base) >> shift) & 0xff)
			s := e.findSlot(lvl, cur+1)
			if s < 0 {
				continue
			}
			upper := uint64(e.base) >> (shift + 8) << (shift + 8)
			slotBase := Time(upper | uint64(s)<<shift)
			if slotBase > until {
				return nil
			}
			head := e.clearSlot(lvl, s)
			e.base = slotBase
			for ev := head; ev != nil; {
				nxt := ev.next
				if ev.dead {
					e.recycle(ev)
				} else {
					e.place(ev)
				}
				ev = nxt
			}
			cascaded = true
			break
		}
		if !cascaded {
			e.base = e.now // wheel empty; re-anchor for future inserts
			return nil
		}
	}
}

// fire executes a popped live event and recycles it.
func (e *Engine) fire(ev *event) {
	// Dead before the callback runs: a Stop issued from inside the
	// callback must report false, exactly like the pre-pooled engine.
	ev.dead = true
	e.now = ev.at
	e.live--
	e.Processed++
	fn, call, arg := ev.fn, ev.call, ev.arg
	e.recycle(ev)
	if fn != nil {
		fn()
	} else {
		call(arg)
	}
}

// maxTime is the unbounded deadline for Step and Drain.
const maxTime = Time(1<<63 - 1)

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev := e.popNext(maxTime)
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run executes events until the queue empties or the clock would pass
// until. The clock is left at until (or its starting value, if that is
// later); events scheduled after until remain pending.
func (e *Engine) Run(until Time) {
	for {
		ev := e.popNext(until)
		if ev == nil {
			break
		}
		e.fire(ev)
	}
	if e.now < until {
		e.now = until
	}
	if e.base < e.now {
		e.base = e.now
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.Run(e.now + Time(d)) }

// Drain runs all pending events regardless of time, up to a safety
// limit of maxEvents (0 means no limit). It reports whether the queue
// fully drained.
func (e *Engine) Drain(maxEvents uint64) bool {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return e.live == 0
		}
	}
	return true
}

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int { return e.live }
