// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (network links, server processors, protocol
// timers) schedule closures on a shared Engine. Events execute in
// timestamp order; ties break by scheduling order, so a run with a fixed
// RNG seed is fully reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is
// deliberately the same representation as time.Duration so callers can
// use the time package's constants (time.Microsecond etc.).
type Duration = time.Duration

// event is a scheduled closure.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	idx  int // heap index, -1 when popped or cancelled
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle for a scheduled event that can be cancelled.
type Timer struct {
	e *event
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and therefore was prevented from firing).
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	return true
}

// Engine is a discrete-event scheduler with a virtual clock.
//
// Engine is not safe for concurrent use: the simulation model is
// single-threaded by design, which is what makes runs deterministic.
type Engine struct {
	now    Time
	nextID uint64
	pq     eventHeap
	rng    *rand.Rand

	// Processed counts executed events, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine whose clock starts at 0 and whose
// randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at the absolute simulated time t. Scheduling
// in the past is clamped to "now" (the event runs before the clock
// advances further).
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.nextID, fn: fn}
	e.nextID++
	heap.Push(&e.pq, ev)
	return &Timer{e: ev}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) *Timer {
	return e.At(e.now+Time(d), fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.dead {
			continue
		}
		ev.dead = true
		e.now = ev.at
		e.Processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue empties or the clock would pass
// until. The clock is left at min(until, time of last executed event);
// events scheduled after until remain pending.
func (e *Engine) Run(until Time) {
	for e.pq.Len() > 0 {
		// Peek without popping dead events permanently out of order.
		ev := e.pq[0]
		if ev.dead {
			heap.Pop(&e.pq)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&e.pq)
		ev.dead = true
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.Run(e.now + Time(d)) }

// Drain runs all pending events regardless of time, up to a safety
// limit of maxEvents (0 means no limit). It reports whether the queue
// fully drained.
func (e *Engine) Drain(maxEvents uint64) bool {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return e.pq.Len() == 0
		}
	}
	return true
}

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.dead {
			n++
		}
	}
	return n
}
