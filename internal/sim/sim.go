// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (network links, server processors, protocol
// timers) schedule closures on a shared Engine. Events execute in
// timestamp order; ties break by scheduling order, so a run with a fixed
// RNG seed is fully reproducible.
//
// The event records themselves are recycled through a free list and
// timers are generation-stamped value handles, so steady-state
// scheduling allocates nothing: the per-message event traffic of a
// saturated rack runs at data-plane rates without feeding the garbage
// collector. The closure-free AfterCall variant extends that to the
// callback itself — callers pass a long-lived func(any) plus the
// argument instead of capturing state per event.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is
// deliberately the same representation as time.Duration so callers can
// use the time package's constants (time.Microsecond etc.).
type Duration = time.Duration

// event is a scheduled closure. Events are pooled: when one fires or
// is swept out of the heap cancelled, it returns to the engine's free
// list and its generation advances, which is what invalidates any
// Timer still pointing at it.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	gen  uint64 // incarnation counter; Timers must match to act
	fn   func()
	call func(any) // closure-free form: call(arg) if fn is nil
	arg  any
	idx  int // heap index, -1 when popped
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a cancellation handle for a scheduled event. It is a value:
// the zero Timer is inert (Stop reports false), and a Timer whose
// event has already fired and been recycled is detected by the
// generation stamp, so holding a stale handle is always safe.
type Timer struct {
	e   *event
	gen uint64
}

// Stop cancels the timer. It reports whether the event had not yet
// fired (and therefore was prevented from firing).
func (t Timer) Stop() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.dead {
		return false
	}
	t.e.dead = true
	return true
}

// Engine is a discrete-event scheduler with a virtual clock.
//
// Engine is not safe for concurrent use: the simulation model is
// single-threaded by design, which is what makes runs deterministic.
type Engine struct {
	now    Time
	nextID uint64
	pq     eventHeap
	free   []*event
	rng    *rand.Rand

	// Processed counts executed events, for diagnostics.
	Processed uint64
}

// NewEngine returns an engine whose clock starts at 0 and whose
// randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes an event from the free list (or the heap allocator) and
// schedules it at t.
func (e *Engine) alloc(t Time) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.seq = e.nextID
	ev.dead = false
	e.nextID++
	heap.Push(&e.pq, ev)
	return ev
}

// recycle returns a popped event to the free list. The generation bump
// is what retires outstanding Timer handles; the callback fields are
// cleared so the pool retains nothing.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at the absolute simulated time t. Scheduling
// in the past is clamped to "now" (the event runs before the clock
// advances further).
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.alloc(t)
	ev.fn = fn
	return Timer{e: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) Timer {
	return e.At(e.now+Time(d), fn)
}

// AtCall schedules call(arg) at the absolute time t without returning
// a handle. This is the zero-allocation fast path for high-volume
// events (message deliveries, service completions): the caller keeps
// one long-lived call function and threads per-event state through
// arg, so nothing is captured per event.
func (e *Engine) AtCall(t Time, call func(any), arg any) {
	ev := e.alloc(t)
	ev.call = call
	ev.arg = arg
}

// AfterCall schedules call(arg) to run d from now, without a handle.
func (e *Engine) AfterCall(d Duration, call func(any), arg any) {
	e.AtCall(e.now+Time(d), call, arg)
}

// AfterCallT is AfterCall with a cancellation handle, for hot-path
// events that occasionally need stopping (retry timers).
func (e *Engine) AfterCallT(d Duration, call func(any), arg any) Timer {
	ev := e.alloc(e.now + Time(d))
	ev.call = call
	ev.arg = arg
	return Timer{e: ev, gen: ev.gen}
}

// fire executes a popped live event and recycles it.
func (e *Engine) fire(ev *event) {
	// Dead before the callback runs: a Stop issued from inside the
	// callback must report false, exactly like the pre-pooled engine.
	ev.dead = true
	e.now = ev.at
	e.Processed++
	fn, call, arg := ev.fn, ev.call, ev.arg
	e.recycle(ev)
	if fn != nil {
		fn()
	} else {
		call(arg)
	}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.fire(ev)
		return true
	}
	return false
}

// Run executes events until the queue empties or the clock would pass
// until. The clock is left at min(until, time of last executed event);
// events scheduled after until remain pending.
func (e *Engine) Run(until Time) {
	for e.pq.Len() > 0 {
		// Peek first: a live event past the deadline must stay queued.
		ev := e.pq[0]
		if ev.dead {
			heap.Pop(&e.pq)
			e.recycle(ev)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.fire(ev)
	}
	if e.now < until {
		e.now = until
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.Run(e.now + Time(d)) }

// Drain runs all pending events regardless of time, up to a safety
// limit of maxEvents (0 means no limit). It reports whether the queue
// fully drained.
func (e *Engine) Drain(maxEvents uint64) bool {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return e.pq.Len() == 0
		}
	}
	return true
}

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.dead {
			n++
		}
	}
	return n
}
