package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30*time.Microsecond, func() { got = append(got, 3) })
	e.After(10*time.Microsecond, func() { got = append(got, 1) })
	e.After(20*time.Microsecond, func() { got = append(got, 2) })
	e.Run(Time(time.Second))
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(42*time.Microsecond, func() { at = e.Now() })
	e.Run(Time(time.Second))
	if at != Time(42*time.Microsecond) {
		t.Fatalf("clock at event = %d, want 42us", at)
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("final clock = %d, want 1s", e.Now())
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine(1)
	e.Run(100)
	fired := false
	e.At(5, func() { fired = true })
	e.Run(100) // same time bound; event was clamped to now=100
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(200, func() { fired = true })
	e.Run(100)
	if fired {
		t.Fatal("event beyond boundary fired")
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	e.Run(300)
	if !fired {
		t.Fatal("event did not fire on later Run")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run(100)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(10, func() {})
	e.Run(100)
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second step: count=%d", count)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 50 {
			e.After(time.Microsecond, recurse)
		}
	}
	e.After(time.Microsecond, recurse)
	e.Run(Time(time.Second))
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
}

func TestEngineDrainLimit(t *testing.T) {
	e := NewEngine(1)
	var boom func()
	boom = func() { e.After(1, boom) } // infinite chain
	e.After(1, boom)
	if e.Drain(1000) {
		t.Fatal("Drain reported empty queue for infinite chain")
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(10, func() {})
	e.After(20, func() {})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	tm.Stop()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", got)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var order []int
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			i := i
			e.At(Time(r.Intn(50)), func() {
				order = append(order, i)
				if e.Rand().Intn(2) == 0 {
					e.After(Duration(e.Rand().Intn(10)), func() { order = append(order, -i) })
				}
			})
		}
		e.Run(1000)
		return order
	}
	a, b := run(3), run(3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of scheduled times, execution order is a stable
// sort of the schedule by time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 500 {
			delays = delays[:500]
		}
		e := NewEngine(1)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d)
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run(Time(1 << 20))
		if len(got) != len(delays) {
			return false
		}
		want := make([]rec, len(got))
		copy(want, got)
		if !sort.SliceIsSorted(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
