package dataplane

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := NewTable(3, 16)
	if err := tb.Insert(42, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := tb.Lookup(42); !ok || v != 7 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if !tb.Delete(42, 7) {
		t.Fatal("Delete failed")
	}
	if _, ok := tb.Lookup(42); ok {
		t.Fatal("key survived Delete")
	}
	if tb.Used() != 0 {
		t.Fatalf("Used = %d", tb.Used())
	}
}

func TestInsertUpdatesSeq(t *testing.T) {
	tb := NewTable(3, 16)
	_ = tb.Insert(1, 5)
	_ = tb.Insert(1, 9) // concurrent later write
	if v, _ := tb.Lookup(1); v != 9 {
		t.Fatalf("seq = %d, want 9", v)
	}
	if tb.Used() != 1 {
		t.Fatalf("Used = %d, want 1 (same key reuses slot)", tb.Used())
	}
	// Stale insert must not regress the stored sequence number.
	_ = tb.Insert(1, 3)
	if v, _ := tb.Lookup(1); v != 9 {
		t.Fatalf("seq regressed to %d", v)
	}
}

func TestDeleteRespectsNewerPendingWrite(t *testing.T) {
	// Completion of write seq=5 must not clear the entry if write
	// seq=9 to the same object is still pending (Algorithm 1 line 6).
	tb := NewTable(3, 16)
	_ = tb.Insert(1, 5)
	_ = tb.Insert(1, 9)
	if tb.Delete(1, 5) {
		t.Fatal("completion of old write cleared newer pending entry")
	}
	if _, ok := tb.Lookup(1); !ok {
		t.Fatal("entry vanished")
	}
	if !tb.Delete(1, 9) {
		t.Fatal("completion of newest write failed to clear")
	}
}

func TestDeleteMissingKey(t *testing.T) {
	tb := NewTable(2, 8)
	if tb.Delete(123, 99) {
		t.Fatal("Delete of absent key returned true")
	}
}

func TestCollisionsSpillToLaterStages(t *testing.T) {
	// With 1 slot per stage and 3 stages, we can hold exactly 3
	// distinct keys; the 4th insert must fail.
	tb := NewTable(3, 1)
	keys := []uint32{1, 2, 3}
	for i, k := range keys {
		if err := tb.Insert(k, uint64(i+1)); err != nil {
			t.Fatalf("insert %d failed: %v", k, err)
		}
	}
	if err := tb.Insert(4, 9); err != ErrTableFull {
		t.Fatalf("4th insert err = %v, want ErrTableFull", err)
	}
	for _, k := range keys {
		if _, ok := tb.Lookup(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestSweepStale(t *testing.T) {
	tb := NewTable(3, 64)
	for k := uint32(0); k < 30; k++ {
		_ = tb.Insert(k, uint64(k+1))
	}
	removed := tb.SweepStale(10)
	if removed != 10 {
		t.Fatalf("removed %d, want 10 (seqs 1..10)", removed)
	}
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("stale entry survived sweep")
	}
	if _, ok := tb.Lookup(20); !ok {
		t.Fatal("fresh entry removed by sweep")
	}
}

func TestCleanSlotIfStale(t *testing.T) {
	tb := NewTable(3, 64)
	_ = tb.Insert(7, 3)
	if !tb.CleanSlotIfStale(7, 5) {
		t.Fatal("stale slot not cleaned")
	}
	_ = tb.Insert(8, 9)
	if tb.CleanSlotIfStale(8, 5) {
		t.Fatal("fresh slot cleaned")
	}
}

func TestReset(t *testing.T) {
	tb := NewTable(3, 8)
	for k := uint32(0); k < 10; k++ {
		_ = tb.Insert(k, 1)
	}
	tb.Reset()
	if tb.Used() != 0 {
		t.Fatalf("Used after Reset = %d", tb.Used())
	}
	for k := uint32(0); k < 10; k++ {
		if _, ok := tb.Lookup(k); ok {
			t.Fatalf("key %d survived Reset", k)
		}
	}
}

func TestMemoryBytesMatchesPaper(t *testing.T) {
	// §8: 3 stages × 64K slots, 32-bit IDs + 32-bit seqs ⇒ 1.5 MB.
	tb := NewTable(3, 64000)
	if got := tb.MemoryBytes(); got != 3*64000*8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestInvalidTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTable(0, 10)
}

// Property: the table behaves like a map[uint32]uint64 restricted by
// capacity — on a random op sequence where inserts never fail (table
// big enough), Lookup always matches the model.
func TestTableMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(4, 256)
		model := map[uint32]uint64{}
		for i := 0; i < 2000; i++ {
			key := uint32(rng.Intn(200)) // bounded keyspace, far below capacity
			switch rng.Intn(3) {
			case 0: // insert with increasing seq
				seq := uint64(i + 1)
				if err := tb.Insert(key, seq); err != nil {
					return false // must not fill at this load
				}
				if old, ok := model[key]; !ok || seq > old {
					model[key] = seq
				}
			case 1: // delete ≤ stored
				if v, ok := model[key]; ok {
					if !tb.Delete(key, v) {
						return false
					}
					delete(model, key)
				} else if tb.Delete(key, ^uint64(0)) {
					return false
				}
			case 2: // lookup
				v, ok := tb.Lookup(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		// Final full comparison.
		for k, v := range model {
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return tb.Used() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserts never lose a key that was reported stored, until
// deleted, even under collision pressure.
func TestNoSilentEviction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(3, 8)
		present := map[uint32]uint64{}
		for i := 0; i < 500; i++ {
			key := uint32(rng.Intn(64))
			seq := uint64(i + 1)
			if err := tb.Insert(key, seq); err == nil {
				if old, ok := present[key]; !ok || seq > old {
					present[key] = seq
				}
			} else if _, ok := present[key]; ok {
				return false // claimed full for a key it already holds
			}
			if rng.Intn(4) == 0 {
				for k, v := range present {
					tb.Delete(k, v)
					delete(present, k)
					break
				}
			}
		}
		for k, v := range present {
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceModelPaperNumbers(t *testing.T) {
	r := PaperExample()
	// §6.2: 96 MRPS writes, 1.92 BRPS total, 1.5 MB of memory.
	if got := r.WriteRate(); got != 96e6 {
		t.Fatalf("WriteRate = %g, want 96e6", got)
	}
	if got := r.TotalRate(); got != 1.92e9 {
		t.Fatalf("TotalRate = %g, want 1.92e9", got)
	}
	if got := r.MemoryBytes(); got != 1536000 {
		t.Fatalf("MemoryBytes = %g, want 1.536e6 (~1.5MB)", got)
	}
	if got := r.ConcurrentWrites(); got != 96000 {
		t.Fatalf("ConcurrentWrites = %g", got)
	}
}

func TestResourceModelDegenerate(t *testing.T) {
	r := ResourceModel{Stages: 1, SlotsPerStage: 1, Utilization: 1}
	if r.WriteRate() != 0 || r.TotalRate() != 0 {
		t.Fatal("zero durations/ratios should yield zero rates")
	}
}

func BenchmarkTableInsertDelete(b *testing.B) {
	tb := NewTable(3, 64000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint32(i) % 50000
		_ = tb.Insert(k, uint64(i))
		tb.Delete(k, uint64(i))
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := NewTable(3, 64000)
	for k := uint32(0); k < 1000; k++ {
		_ = tb.Insert(k, 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint32(i) % 2000)
	}
}

func TestScanVisitsLiveEntries(t *testing.T) {
	tbl := NewTable(2, 8)
	want := map[uint32]uint64{3: 1, 9: 2, 27: 3}
	for k, v := range want {
		if err := tbl.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Delete(9, 2)
	delete(want, 9)
	got := make(map[uint32]uint64)
	tbl.Scan(func(k uint32, v uint64) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("Scan saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Scan[%d] = %d, want %d", k, got[k], v)
		}
	}
}
