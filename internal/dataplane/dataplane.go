// Package dataplane emulates the parts of a programmable switching
// ASIC (e.g. Barefoot Tofino) that Harmonia's conflict-detection module
// uses: per-stage register arrays accessed at line rate, per-stage hash
// functions, and the multi-stage open-addressing hash table of the
// paper's Figure 4.
//
// The emulation enforces the hardware's structural constraints rather
// than merely reproducing functional behaviour:
//
//   - a packet visits stages strictly in order, once;
//   - each stage performs at most one register-array access per packet
//     (one read-modify-write of one slot);
//   - state is partitioned per stage — a stage cannot see another
//     stage's registers.
//
// Anything expressible against this interface is therefore plausibly
// compilable to a real pipeline, which is the point of the substitution
// documented in DESIGN.md.
package dataplane

import (
	"errors"
	"fmt"
)

// RegisterArray is one stage's array of 64-bit registers. Real switch
// stages expose register arrays to the match-action units; Harmonia
// stores an object ID and its pending-write sequence number per slot,
// which fits in two 32-bit registers or one paired 64-bit register.
type RegisterArray struct {
	slots []slot
}

type slot struct {
	used bool
	key  uint32 // object ID
	val  uint64 // largest pending sequence number (per-epoch counter)
}

// NewRegisterArray allocates an array with m slots.
func NewRegisterArray(m int) *RegisterArray {
	return &RegisterArray{slots: make([]slot, m)}
}

// Size returns the slot count.
func (r *RegisterArray) Size() int { return len(r.slots) }

// Stage couples a register array with a hash function, mirroring one
// physical pipeline stage used by the dirty-set table.
type Stage struct {
	arr  *RegisterArray
	seed uint32
}

// hash32 is a Murmur3-style finalizer-based hash. Tofino stages provide
// configurable CRC-based hash units; any well-mixed 32-bit hash stands
// in for them.
func hash32(key, seed uint32) uint32 {
	h := key ^ seed
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// index computes this stage's slot index for an object ID.
func (s *Stage) index(key uint32) int {
	return int(hash32(key, s.seed) % uint32(len(s.arr.slots)))
}

// Table is the multi-stage hash table of Figure 4. Each stage holds one
// register array and its own hash function; an object lives in at most
// one stage's slot at a time.
//
// Operations follow the paper exactly:
//
//   - Insert (write): place the object ID in the first stage whose slot
//     for this object is empty or already holds the object. If every
//     stage's slot is occupied by a different object, the insert fails
//     and the switch drops the write (§6.1).
//   - Search (read): probe every stage; the object is present if any
//     stage's slot holds it.
//   - Delete (write completion): probe every stage and clear the slot
//     holding the object, but only when the completing sequence number
//     is at least the stored one (Algorithm 1, line 6).
type Table struct {
	stages []Stage
	used   int // occupied slots, for stats
}

// ErrTableFull is returned by Insert when no stage has a usable slot
// for the object; the caller (the scheduler) drops the write.
var ErrTableFull = errors.New("dataplane: no free slot in any stage")

// NewTable builds a table with the given number of stages and slots per
// stage. Stage hash seeds differ so that objects colliding in one stage
// are unlikely to collide in the next.
func NewTable(stages, slotsPerStage int) *Table {
	if stages <= 0 || slotsPerStage <= 0 {
		panic(fmt.Sprintf("dataplane: invalid table %dx%d", stages, slotsPerStage))
	}
	t := &Table{stages: make([]Stage, stages)}
	for i := range t.stages {
		t.stages[i] = Stage{
			arr: NewRegisterArray(slotsPerStage),
			// Distinct fixed seeds per stage; values are arbitrary
			// odd-ish constants.
			seed: 0x9e3779b9*uint32(i) + 0x7f4a7c15,
		}
	}
	return t
}

// Stages returns the stage count.
func (t *Table) Stages() int { return len(t.stages) }

// SlotsPerStage returns the per-stage slot count.
func (t *Table) SlotsPerStage() int { return t.stages[0].arr.Size() }

// Capacity returns the total slot count.
func (t *Table) Capacity() int { return len(t.stages) * t.SlotsPerStage() }

// Used returns the number of occupied slots.
func (t *Table) Used() int { return t.used }

// Insert records (key → seq), overwriting the sequence number if the
// key is already present (concurrent writes to one object keep only the
// largest sequence number; the scheduler always inserts increasing
// ones). Returns ErrTableFull when no stage can hold the key.
//
// The single pipeline pass carries one bit of metadata ("claimed"): the
// first stage with an empty slot claims the key, and if a later stage
// turns out to already hold the key (possible when the earlier slot was
// freed by an unrelated deletion since the key last moved in), that
// older entry is cleared as the packet passes it. Because the scheduler
// assigns strictly increasing sequence numbers, the claimed entry is
// always at least as new as the cleared one, so the table never holds
// two live entries for one key.
func (t *Table) Insert(key uint32, seq uint64) error {
	claimed := -1
	for i := range t.stages {
		st := &t.stages[i]
		sl := &st.arr.slots[st.index(key)]
		if sl.used && sl.key == key {
			if claimed >= 0 {
				// Deduplicate: fold this stale entry into the claim.
				cst := &t.stages[claimed]
				csl := &cst.arr.slots[cst.index(key)]
				if sl.val > csl.val {
					csl.val = sl.val
				}
				sl.used = false
				t.used--
				return nil
			}
			if seq > sl.val {
				sl.val = seq
			}
			return nil
		}
		if !sl.used && claimed < 0 {
			sl.used = true
			sl.key = key
			sl.val = seq
			t.used++
			claimed = i
		}
	}
	if claimed >= 0 {
		return nil
	}
	return ErrTableFull
}

// Lookup probes all stages for key; it returns the stored sequence
// number and whether the key is present.
func (t *Table) Lookup(key uint32) (uint64, bool) {
	for i := range t.stages {
		st := &t.stages[i]
		sl := &st.arr.slots[st.index(key)]
		if sl.used && sl.key == key {
			return sl.val, true
		}
	}
	return 0, false
}

// Delete removes key if present with stored seq ≤ upTo (the write-
// completion rule: a completion only clears the entry when no newer
// write to the object is still pending). It reports whether an entry
// was removed.
func (t *Table) Delete(key uint32, upTo uint64) bool {
	for i := range t.stages {
		st := &t.stages[i]
		sl := &st.arr.slots[st.index(key)]
		if sl.used && sl.key == key {
			if sl.val <= upTo {
				sl.used = false
				t.used--
				return true
			}
			return false
		}
	}
	return false
}

// SweepStale removes every entry whose sequence number is ≤ commit.
// This implements §5.2's stray-entry cleanup ("any stray entries in the
// dirty set can be removed as soon as a WRITE-COMPLETION message with a
// higher sequence number arrives... This removal can also be done
// periodically"). A real pipeline does it incrementally as reads probe
// slots; sweeping is the periodic variant and touches each slot once.
func (t *Table) SweepStale(commit uint64) int {
	removed := 0
	for i := range t.stages {
		arr := t.stages[i].arr
		for j := range arr.slots {
			sl := &arr.slots[j]
			if sl.used && sl.val <= commit {
				sl.used = false
				t.used--
				removed++
			}
		}
	}
	return removed
}

// Scan visits every live entry (key, seq). The control plane uses it
// to answer "does the dirty set still hold anything for this routing
// slot?" during a slot handoff — it reads register state the way a
// switch-local CPU would, off the packet path.
func (t *Table) Scan(fn func(key uint32, seq uint64)) {
	for i := range t.stages {
		arr := t.stages[i].arr
		for j := range arr.slots {
			if sl := &arr.slots[j]; sl.used {
				fn(sl.key, sl.val)
			}
		}
	}
}

// CleanSlotIfStale implements the per-read incremental variant of
// stray-entry removal: given a key that a read probed and found, clear
// it when its sequence number is ≤ commit. Returns true if cleared.
func (t *Table) CleanSlotIfStale(key uint32, commit uint64) bool {
	return t.Delete(key, commit)
}

// Reset clears all slots (switch reboot: register state is soft and is
// lost).
func (t *Table) Reset() {
	for i := range t.stages {
		arr := t.stages[i].arr
		for j := range arr.slots {
			arr.slots[j] = slot{}
		}
	}
	t.used = 0
}

// MemoryBytes reports the register memory the table consumes, using the
// paper's accounting: 32-bit object ID + 32-bit sequence number per
// slot (§6.2: 192K slots → 1.5 MB).
func (t *Table) MemoryBytes() int {
	return t.Capacity() * 8
}
