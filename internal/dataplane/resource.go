package dataplane

// ResourceModel is the back-of-envelope switch-memory model of §6.2.
// With n pipeline stages of m slots each at utilization u, the switch
// holds up to u·n·m concurrent pending writes. If a write stays dirty
// for duration t seconds and the workload's write ratio is w, the
// supportable rates follow directly.
type ResourceModel struct {
	Stages        int     // n
	SlotsPerStage int     // m
	Utilization   float64 // u, effective fill accounting for collisions
	WriteSeconds  float64 // t, seconds a write stays in the dirty set
	WriteRatio    float64 // w, fraction of requests that are writes
	IDBits        int     // object-ID width (paper: 32)
	SeqBits       int     // sequence-number width (paper: 32)
}

// PaperExample returns the concrete numbers the paper plugs in:
// n=3, m=64000, u=50%, t=1ms, w=5%, 32-bit IDs and sequence numbers.
func PaperExample() ResourceModel {
	return ResourceModel{
		Stages:        3,
		SlotsPerStage: 64000,
		Utilization:   0.5,
		WriteSeconds:  0.001,
		WriteRatio:    0.05,
		IDBits:        32,
		SeqBits:       32,
	}
}

// ConcurrentWrites returns u·n·m, the number of in-flight writes the
// table can track.
func (r ResourceModel) ConcurrentWrites() float64 {
	return r.Utilization * float64(r.Stages) * float64(r.SlotsPerStage)
}

// WriteRate returns the supportable writes per second: u·n·m / t.
func (r ResourceModel) WriteRate() float64 {
	if r.WriteSeconds <= 0 {
		return 0
	}
	return r.ConcurrentWrites() / r.WriteSeconds
}

// TotalRate returns the supportable total request rate u·n·m/(w·t).
func (r ResourceModel) TotalRate() float64 {
	if r.WriteRatio <= 0 {
		return 0
	}
	return r.WriteRate() / r.WriteRatio
}

// MemoryBytes returns the register memory consumed by the full table:
// n·m slots of (IDBits+SeqBits) each.
func (r ResourceModel) MemoryBytes() float64 {
	perSlot := float64(r.IDBits+r.SeqBits) / 8
	return float64(r.Stages) * float64(r.SlotsPerStage) * perSlot
}
