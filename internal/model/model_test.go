package model

import "testing"

func TestOrderLexicographic(t *testing.T) {
	a := write{Sw: 1, Seq: 9, Item: 1}
	b := write{Sw: 2, Seq: 1, Item: 1}
	if !gte(b, a) || gte(a, b) {
		t.Fatal("switch number must dominate ordering")
	}
	if !gte(a, a) {
		t.Fatal("gte not reflexive")
	}
	if gt(a, a) {
		t.Fatal("gt not strict")
	}
	if !gte(a, bottom) {
		t.Fatal("bottom not minimal")
	}
}

func TestReadAheadHolds(t *testing.T) {
	res := Check(Config{
		DataItems: 2, Replicas: 2, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: false,
	})
	if res.LimitHit {
		t.Fatal("state limit hit")
	}
	if res.Violation {
		t.Fatalf("read-ahead spec violated:\n%v", res.Trace)
	}
	if res.States < 100 {
		t.Fatalf("suspiciously small exploration: %d states", res.States)
	}
	t.Logf("read-ahead: %d states", res.States)
}

func TestReadBehindHolds(t *testing.T) {
	res := Check(Config{
		DataItems: 2, Replicas: 2, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: true,
	})
	if res.LimitHit {
		t.Fatal("state limit hit")
	}
	if res.Violation {
		t.Fatalf("read-behind spec violated:\n%v", res.Trace)
	}
	t.Logf("read-behind: %d states", res.States)
}

func TestFailoverHolds(t *testing.T) {
	for _, rb := range []bool{false, true} {
		res := Check(Config{
			DataItems: 1, Replicas: 2, Switches: 2,
			MaxWrites: 2, MaxReads: 2, ReadBehind: rb,
		})
		if res.LimitHit {
			t.Fatalf("state limit hit (readBehind=%v)", rb)
		}
		if res.Violation {
			t.Fatalf("failover spec violated (readBehind=%v):\n%v", rb, res.Trace)
		}
		t.Logf("failover readBehind=%v: %d states", rb, res.States)
	}
}

func TestThreeReplicasHold(t *testing.T) {
	res := Check(Config{
		DataItems: 1, Replicas: 3, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: true,
	})
	if res.Violation || res.LimitHit {
		t.Fatalf("3-replica check failed: %+v", res)
	}
}

// --- mutation tests: the checker must catch seeded protocol bugs ---

func TestMutationSkipCommitCheckReadBehind(t *testing.T) {
	res := Check(Config{
		DataItems: 1, Replicas: 2, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: true,
		SkipCommitCheck: true,
	})
	if !res.Violation {
		t.Fatalf("read-behind without visibility check not caught (%d states)", res.States)
	}
	t.Logf("violation trace: %v", res.Trace)
}

func TestMutationSkipCommitCheckReadAhead(t *testing.T) {
	res := Check(Config{
		DataItems: 1, Replicas: 2, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: false,
		SkipCommitCheck: true,
	})
	if !res.Violation {
		t.Fatalf("read-ahead without integrity check not caught (%d states)", res.States)
	}
}

func TestMutationSkipActiveSwitchCheck(t *testing.T) {
	// Reads from a stale switch incarnation accepted: read-behind
	// anomalies across failover (§5.3's motivation).
	res := Check(Config{
		DataItems: 1, Replicas: 2, Switches: 2,
		MaxWrites: 3, MaxReads: 2, ReadBehind: true,
		SkipActiveSwitchCheck: true,
	})
	if !res.Violation {
		t.Fatalf("stale-switch reads not caught (%d states)", res.States)
	}
}

func TestMutationSkipReadyGate(t *testing.T) {
	// A fresh switch serving fast reads before its first
	// WRITE-COMPLETION has an empty dirty set and a bottom
	// last-committed point; the §5.3 readiness gate is what prevents
	// this.
	res := Check(Config{
		DataItems: 1, Replicas: 2, Switches: 2,
		MaxWrites: 3, MaxReads: 2, ReadBehind: true,
		SkipReadyGate: true,
	})
	if !res.Violation {
		t.Fatalf("pre-ready fast reads not caught (%d states)", res.States)
	}
}

func TestStateLimit(t *testing.T) {
	res := Check(Config{
		DataItems: 2, Replicas: 3, Switches: 2,
		MaxWrites: 4, MaxReads: 4, ReadBehind: true,
		MaxStates: 1000,
	})
	if !res.LimitHit {
		t.Fatal("limit not reported")
	}
}

func TestTraceLeadsFromInit(t *testing.T) {
	res := Check(Config{
		DataItems: 1, Replicas: 2, Switches: 1,
		MaxWrites: 2, MaxReads: 2, ReadBehind: true,
		SkipCommitCheck: true,
	})
	if !res.Violation || len(res.Trace) < 2 {
		t.Fatalf("no usable trace: %+v", res)
	}
	if res.Trace[0] != "Init" {
		t.Fatalf("trace does not start at Init: %v", res.Trace)
	}
}
