// Package model is an explicit-state model checker for the Harmonia
// protocol, mirroring the TLA+ specification in the paper's Appendix B
// action for action. It exhaustively explores all interleavings of the
// spec's transitions for bounded parameters and checks the spec's
// Linearizability invariant, for both read-ahead and read-behind
// protocol classes and across switch failovers.
//
// The checker also supports deliberately broken variants (skipping the
// last-committed comparison, the active-switch gate, or the
// first-completion readiness gate); tests assert those are caught,
// which validates both the protocol design and the checker itself.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// write mirrors the spec's write records: a switch number and per-
// switch sequence number, ordered lexicographically (switch first),
// plus the data item it targets. The zero value is BottomWrite.
type write struct {
	Sw   uint8
	Seq  uint8
	Item uint8
}

// bottom is the write smaller than all real writes.
var bottom = write{}

// gte reports w1 ≥ w2 in the spec's lexicographic order.
func gte(w1, w2 write) bool {
	if w1.Sw != w2.Sw {
		return w1.Sw > w2.Sw
	}
	return w1.Seq >= w2.Seq
}

// gt reports w1 > w2.
func gt(w1, w2 write) bool { return gte(w1, w2) && w1 != w2 }

// Message records, mirroring the spec's message schemas. The ghost
// field carries the latest response the issuing client could have
// observed, which is what lets the invariant express linearizability
// without an explicit history.
type protoRead struct {
	Item  uint8
	Ghost write
}

type harmRead struct {
	Item  uint8
	Sw    uint8
	LC    write
	Ghost write
}

type response struct {
	W     write
	Ghost write
}

// switchState is one switch's soft state.
type switchState struct {
	Seq   uint8
	Dirty map[uint8]uint8 // item → largest pending seq
	LC    write
}

// state is one global state of the transition system.
type state struct {
	switches []switchState
	active   uint8
	log      []write
	commits  []uint8 // per-replica commit points

	writes     []write
	protoReads []protoRead
	harmReads  []harmRead
	responses  []response

	writesSent uint8
	readsSent  uint8
}

// Config bounds the exploration and selects the protocol class.
type Config struct {
	DataItems int
	Replicas  int
	Switches  int
	MaxWrites int // total SendWrite actions
	MaxReads  int // total SendRead actions
	// ReadBehind selects the spec's isReadBehind constant.
	ReadBehind bool

	// Broken variants (for checker validation — never part of the
	// real protocol):
	SkipCommitCheck       bool // HandleHarmoniaRead ignores lastCommitted
	SkipActiveSwitchCheck bool // replicas accept reads from any switch
	SkipReadyGate         bool // switches fast-path reads before any completion

	// MaxStates aborts runaway explorations (0 = 4M).
	MaxStates int
}

func (c *Config) fill() {
	if c.DataItems <= 0 {
		c.DataItems = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Switches <= 0 {
		c.Switches = 1
	}
	if c.MaxWrites <= 0 {
		c.MaxWrites = 2
	}
	if c.MaxReads <= 0 {
		c.MaxReads = 2
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 4 << 20
	}
}

// Result reports the exploration outcome.
type Result struct {
	States    int
	Violation bool
	Trace     []string // action names leading to the violation
	LimitHit  bool
}

// Check explores the bounded state space.
func Check(cfg Config) Result {
	cfg.fill()
	init := &state{
		switches: make([]switchState, cfg.Switches),
		active:   1,
		commits:  make([]uint8, cfg.Replicas),
	}
	for i := range init.switches {
		init.switches[i].Dirty = map[uint8]uint8{}
	}

	type node struct {
		st     *state
		parent string
		action string
	}
	visited := map[string]struct{ parent, action string }{}
	key0 := encode(init)
	visited[key0] = struct{ parent, action string }{"", "Init"}
	queue := []node{{st: init, parent: "", action: "Init"}}
	states := 0

	traceOf := func(key string) []string {
		var actions []string
		for key != "" {
			v := visited[key]
			actions = append(actions, v.action)
			key = v.parent
		}
		// reverse
		for i, j := 0, len(actions)-1; i < j; i, j = i+1, j-1 {
			actions[i], actions[j] = actions[j], actions[i]
		}
		return actions
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		states++
		if states > cfg.MaxStates {
			return Result{States: states, LimitHit: true}
		}
		curKey := encode(cur.st)
		succs, bad := successors(cur.st, cfg)
		if bad != "" {
			trace := append(traceOf(curKey), bad)
			return Result{States: states, Violation: true, Trace: trace}
		}
		for _, s := range succs {
			k := encode(s.st)
			if _, ok := visited[k]; ok {
				continue
			}
			visited[k] = struct{ parent, action string }{curKey, s.action}
			queue = append(queue, node{st: s.st, parent: curKey, action: s.action})
		}
	}
	return Result{States: states}
}

type succ struct {
	st     *state
	action string
}

// committedLog mirrors the spec: the full log for read-behind
// protocols (entries are committed before replicas execute them), the
// all-replica-processed prefix for read-ahead protocols.
func committedLog(s *state, readBehind bool) []write {
	if readBehind {
		return s.log
	}
	min := len(s.log)
	for _, c := range s.commits {
		if int(c) < min {
			min = int(c)
		}
	}
	return s.log[:min]
}

func maxCommittedWriteFor(item uint8, log []write) write {
	w := bottom
	for _, e := range log {
		if e.Item == item && gte(e, w) {
			w = e
		}
	}
	return w
}

func maxCommittedWrite(log []write) write {
	w := bottom
	for _, e := range log {
		if gte(e, w) {
			w = e
		}
	}
	return w
}

// successors enumerates all enabled actions. It returns a violating
// action's name when a response breaking the invariant would be
// produced.
func successors(s *state, cfg Config) ([]succ, string) {
	var out []succ
	readBehind := cfg.ReadBehind

	// checkResponse applies the spec's Linearizability invariant to a
	// newly created response. Both conjuncts are monotone (the
	// committed log only grows), so creation-time checking over every
	// reachable interleaving is equivalent to the TLA+ state
	// invariant.
	checkResponse := func(r response, st *state) bool {
		if !gte(r.W, r.Ghost) {
			return false
		}
		if r.W == bottom {
			return true
		}
		for _, e := range committedLog(st, readBehind) {
			if e == r.W {
				return true
			}
		}
		return false
	}

	// SendWrite(s, d)
	if s.writesSent < uint8(cfg.MaxWrites) {
		for sw := 1; sw <= cfg.Switches; sw++ {
			if uint8(sw) > s.active {
				continue // only activated switches send writes
			}
			for d := 1; d <= cfg.DataItems; d++ {
				ns := clone(s)
				sst := &ns.switches[sw-1]
				sst.Seq++
				sst.Dirty[uint8(d)] = sst.Seq
				ns.writes = append(ns.writes, write{Sw: uint8(sw), Seq: sst.Seq, Item: uint8(d)})
				ns.writesSent++
				out = append(out, succ{ns, fmt.Sprintf("SendWrite(s%d,d%d)", sw, d)})
			}
		}
	}

	// HandleWrite(w): append in order.
	for _, w := range s.writes {
		if inLog(s.log, w) {
			continue
		}
		if len(s.log) > 0 && !gte(w, s.log[len(s.log)-1]) {
			continue
		}
		ns := clone(s)
		ns.log = append(ns.log, w)
		out = append(out, succ{ns, fmt.Sprintf("HandleWrite(%v)", w)})
	}

	// ProcessWriteCompletion(w): for committed writes.
	for _, w := range s.log {
		if !gte(maxCommittedWrite(committedLog(s, readBehind)), w) {
			continue
		}
		ns := clone(s)
		sst := &ns.switches[w.Sw-1]
		for d, seq := range sst.Dirty {
			if seq <= w.Seq {
				delete(sst.Dirty, d)
			}
		}
		if gte(w, sst.LC) {
			sst.LC = w
		}
		out = append(out, succ{ns, fmt.Sprintf("ProcessWriteCompletion(%v)", w)})
	}

	// CommitWrite(r): replica locally executes the next log entry.
	for r := 0; r < cfg.Replicas; r++ {
		if int(s.commits[r]) >= len(s.log) {
			continue
		}
		ns := clone(s)
		ns.commits[r]++
		out = append(out, succ{ns, fmt.Sprintf("CommitWrite(r%d)", r)})
	}

	// SendRead(s, d)
	if s.readsSent < uint8(cfg.MaxReads) {
		for sw := 1; sw <= cfg.Switches; sw++ {
			for d := 1; d <= cfg.DataItems; d++ {
				sst := s.switches[sw-1]
				_, dirty := sst.Dirty[uint8(d)]
				ready := gt(sst.LC, bottom) || cfg.SkipReadyGate
				ghost := maxCommittedWriteFor(uint8(d), committedLog(s, readBehind))
				for _, resp := range s.responses {
					if resp.W != bottom && resp.W.Item == uint8(d) && gte(resp.W, ghost) {
						ghost = resp.W
					}
				}
				ns := clone(s)
				ns.readsSent++
				if !dirty && ready {
					ns.harmReads = addHarmRead(ns.harmReads, harmRead{
						Item: uint8(d), Sw: uint8(sw), LC: sst.LC, Ghost: ghost,
					})
					out = append(out, succ{ns, fmt.Sprintf("SendRead(s%d,d%d,fast)", sw, d)})
				} else {
					ns.protoReads = addProtoRead(ns.protoReads, protoRead{Item: uint8(d), Ghost: ghost})
					out = append(out, succ{ns, fmt.Sprintf("SendRead(s%d,d%d,proto)", sw, d)})
				}
			}
		}
	}

	// HandleProtocolRead(m): the normal path answers from committed
	// state.
	for _, m := range s.protoReads {
		ns := clone(s)
		r := response{W: maxCommittedWriteFor(m.Item, committedLog(ns, readBehind)), Ghost: m.Ghost}
		if !checkResponse(r, ns) {
			return nil, fmt.Sprintf("HandleProtocolRead(d%d) -> INVARIANT VIOLATED", m.Item)
		}
		ns.responses = addResponse(ns.responses, r)
		out = append(out, succ{ns, fmt.Sprintf("HandleProtocolRead(d%d)", m.Item)})
	}

	// HandleHarmoniaRead(r, m): single-replica fast-path read.
	for _, m := range s.harmReads {
		for r := 0; r < cfg.Replicas; r++ {
			if m.Sw != s.active && !cfg.SkipActiveSwitchCheck {
				continue
			}
			cp := int(s.commits[r])
			var localLatest write // last write this replica executed
			if cp > 0 {
				localLatest = s.log[cp-1]
			}
			w := maxCommittedWriteFor(m.Item, s.log[:cp])
			if !cfg.SkipCommitCheck {
				if cfg.ReadBehind {
					// Visibility: replica must have executed at least
					// up to the stamped point.
					if !gte(localLatest, m.LC) {
						continue
					}
				} else {
					// Integrity: everything applied to the item here
					// must have committed by the stamped point.
					if !gte(m.LC, w) {
						continue
					}
				}
			}
			ns := clone(s)
			resp := response{W: w, Ghost: m.Ghost}
			if !checkResponse(resp, ns) {
				return nil, fmt.Sprintf("HandleHarmoniaRead(r%d,d%d) -> INVARIANT VIOLATED", r, m.Item)
			}
			ns.responses = addResponse(ns.responses, resp)
			out = append(out, succ{ns, fmt.Sprintf("HandleHarmoniaRead(r%d,d%d)", r, m.Item)})
		}
	}

	// SwitchFailover
	if int(s.active) < cfg.Switches {
		ns := clone(s)
		ns.active++
		out = append(out, succ{ns, "SwitchFailover"})
	}

	return out, ""
}

// --- set-like message insertion (TLA+ messages form a set) ---

func inLog(log []write, w write) bool {
	for _, e := range log {
		if e == w {
			return true
		}
	}
	return false
}

func addProtoRead(s []protoRead, m protoRead) []protoRead {
	for _, e := range s {
		if e == m {
			return s
		}
	}
	return append(s, m)
}

func addHarmRead(s []harmRead, m harmRead) []harmRead {
	for _, e := range s {
		if e == m {
			return s
		}
	}
	return append(s, m)
}

func addResponse(s []response, m response) []response {
	for _, e := range s {
		if e == m {
			return s
		}
	}
	return append(s, m)
}

// clone deep-copies a state.
func clone(s *state) *state {
	ns := &state{
		switches:   make([]switchState, len(s.switches)),
		active:     s.active,
		log:        append([]write(nil), s.log...),
		commits:    append([]uint8(nil), s.commits...),
		writes:     append([]write(nil), s.writes...),
		protoReads: append([]protoRead(nil), s.protoReads...),
		harmReads:  append([]harmRead(nil), s.harmReads...),
		responses:  append([]response(nil), s.responses...),
		writesSent: s.writesSent,
		readsSent:  s.readsSent,
	}
	for i, sw := range s.switches {
		d := make(map[uint8]uint8, len(sw.Dirty))
		for k, v := range sw.Dirty {
			d[k] = v
		}
		ns.switches[i] = switchState{Seq: sw.Seq, Dirty: d, LC: sw.LC}
	}
	return ns
}

// encode produces a canonical string for the visited set.
func encode(s *state) string {
	var b strings.Builder
	fmt.Fprintf(&b, "a%d|w%d|r%d|", s.active, s.writesSent, s.readsSent)
	for _, sw := range s.switches {
		fmt.Fprintf(&b, "S%d,%v[", sw.Seq, sw.LC)
		keys := make([]int, 0, len(sw.Dirty))
		for k := range sw.Dirty {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d,", k, sw.Dirty[uint8(k)])
		}
		b.WriteString("]")
	}
	fmt.Fprintf(&b, "|L%v|C%v|", s.log, s.commits)
	b.WriteString(encodeSorted(s.writes))
	b.WriteString("|pr")
	pr := append([]protoRead(nil), s.protoReads...)
	sort.Slice(pr, func(i, j int) bool { return less(pr[i], pr[j]) })
	fmt.Fprintf(&b, "%v|hr", pr)
	hr := append([]harmRead(nil), s.harmReads...)
	sort.Slice(hr, func(i, j int) bool { return lessH(hr[i], hr[j]) })
	fmt.Fprintf(&b, "%v|re", hr)
	re := append([]response(nil), s.responses...)
	sort.Slice(re, func(i, j int) bool { return lessR(re[i], re[j]) })
	fmt.Fprintf(&b, "%v", re)
	return b.String()
}

func encodeSorted(ws []write) string {
	w := append([]write(nil), ws...)
	sort.Slice(w, func(i, j int) bool {
		if w[i].Sw != w[j].Sw {
			return w[i].Sw < w[j].Sw
		}
		if w[i].Seq != w[j].Seq {
			return w[i].Seq < w[j].Seq
		}
		return w[i].Item < w[j].Item
	})
	return fmt.Sprintf("%v", w)
}

func less(a, b protoRead) bool {
	return fmt.Sprint(a) < fmt.Sprint(b)
}

func lessH(a, b harmRead) bool {
	return fmt.Sprint(a) < fmt.Sprint(b)
}

func lessR(a, b response) bool {
	return fmt.Sprint(a) < fmt.Sprint(b)
}
