// Package ptest provides a lightweight in-memory harness for unit
// testing protocol replicas without the full cluster assembly: messages
// are delivered instantly (or manually), timers run on a real sim
// engine, and every switch-bound packet is captured for inspection.
package ptest

import (
	"math/rand"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// Handler mirrors simnet.Handler for registered replicas.
type Handler interface {
	Recv(from simnet.NodeID, msg simnet.Message)
}

// Env is a fake protocol.Env. All replicas in one Harness share a sim
// engine; Send delivers either immediately (synchronous) or via the
// engine with a fixed delay.
type Env struct {
	h    *Harness
	id   simnet.NodeID
	self int
}

var _ protocol.Env = (*Env)(nil)

// ID implements protocol.Env.
func (e *Env) ID() simnet.NodeID { return e.id }

// Send implements protocol.Env.
func (e *Env) Send(to simnet.NodeID, msg any) {
	if e.h.Delay > 0 {
		from := e.id
		e.h.Eng.After(e.h.Delay, func() { e.h.deliver(from, to, msg) })
		return
	}
	e.h.deliver(e.id, to, msg)
}

// SendSwitch implements protocol.Env: packets to the switch are
// captured in order. Dead nodes' packets are swallowed.
func (e *Env) SendSwitch(pkt *wire.Packet) {
	if e.h.Dead[e.id] {
		return
	}
	e.h.ToSwitch = append(e.h.ToSwitch, SwitchPacket{From: e.id, Pkt: pkt})
}

// After implements protocol.Env.
func (e *Env) After(d time.Duration, fn func()) sim.Timer { return e.h.Eng.After(d, fn) }

// Now implements protocol.Env.
func (e *Env) Now() sim.Time { return e.h.Eng.Now() }

// Rand implements protocol.Env.
func (e *Env) Rand() *rand.Rand { return e.h.Eng.Rand() }

// SwitchPacket is a captured switch-bound packet.
type SwitchPacket struct {
	From simnet.NodeID
	Pkt  *wire.Packet
}

// Harness hosts a set of replicas with direct delivery.
type Harness struct {
	Eng      *sim.Engine
	Delay    time.Duration // 0 = synchronous delivery
	handlers map[simnet.NodeID]Handler

	// ToSwitch records every SendSwitch call in order.
	ToSwitch []SwitchPacket
	// Dropped counts sends to unknown nodes.
	Dropped int
	// Blackhole, when set, swallows protocol messages to these nodes.
	Blackhole map[simnet.NodeID]bool
	// Dead nodes neither receive nor send anything (crash model).
	Dead map[simnet.NodeID]bool
}

// NewHarness builds an empty harness.
func NewHarness(seed int64) *Harness {
	return &Harness{
		Eng:       sim.NewEngine(seed),
		handlers:  make(map[simnet.NodeID]Handler),
		Blackhole: make(map[simnet.NodeID]bool),
		Dead:      make(map[simnet.NodeID]bool),
	}
}

// Env creates the environment for a replica at address id with group
// index self.
func (h *Harness) Env(id simnet.NodeID, self int) *Env {
	return &Env{h: h, id: id, self: self}
}

// Register attaches a handler to an address.
func (h *Harness) Register(id simnet.NodeID, hd Handler) { h.handlers[id] = hd }

func (h *Harness) deliver(from, to simnet.NodeID, msg any) {
	if h.Blackhole[to] || h.Dead[to] || h.Dead[from] {
		h.Dropped++
		return
	}
	hd, ok := h.handlers[to]
	if !ok {
		h.Dropped++
		return
	}
	hd.Recv(from, msg)
}

// Inject delivers a message to a node as if from "from".
func (h *Harness) Inject(from, to simnet.NodeID, msg any) { h.deliver(from, to, msg) }

// Run advances simulated time (drives timers and delayed sends).
func (h *Harness) Run(d time.Duration) { h.Eng.RunFor(d) }

// LastToSwitch returns the most recent switch-bound packet, or nil.
func (h *Harness) LastToSwitch() *wire.Packet {
	if len(h.ToSwitch) == 0 {
		return nil
	}
	return h.ToSwitch[len(h.ToSwitch)-1].Pkt
}

// SwitchPacketsOf filters captured packets by op.
func (h *Harness) SwitchPacketsOf(op wire.Op) []*wire.Packet {
	var out []*wire.Packet
	for _, sp := range h.ToSwitch {
		if sp.Pkt.Op == op {
			out = append(out, sp.Pkt)
		}
	}
	return out
}

// Grant gives every registered replica a fast-read lease for epoch
// lasting d from now, via the control-plane message path.
func (h *Harness) Grant(epoch uint32, d time.Duration) {
	expiry := h.Eng.Now() + sim.Time(d)
	for id, hd := range h.handlers {
		_ = id
		hd.Recv(0, protocol.LeaseGrant{Epoch: epoch, Expiry: expiry})
	}
}
