package protocol

import (
	"testing"
	"testing/quick"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func TestClientTableAdmitFresh(t *testing.T) {
	ct := NewClientTable()
	exec, cached := ct.Admit(1, 1)
	if !exec || cached != nil {
		t.Fatalf("fresh request: exec=%v cached=%v", exec, cached)
	}
	exec, cached = ct.Admit(1, 2)
	if !exec || cached != nil {
		t.Fatal("newer request not admitted")
	}
}

func TestClientTableDuplicateInProgress(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 1)
	exec, cached := ct.Admit(1, 1)
	if exec || cached != nil {
		t.Fatalf("in-progress duplicate: exec=%v cached=%v", exec, cached)
	}
}

func TestClientTableDuplicateCompleted(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 1)
	reply := &wire.Packet{Op: wire.OpWriteReply, ReqID: 1}
	ct.Complete(1, 1, reply)
	exec, cached := ct.Admit(1, 1)
	if exec || cached != reply {
		t.Fatalf("completed duplicate: exec=%v cached=%v", exec, cached)
	}
}

func TestClientTableOldRequestIgnored(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 5)
	exec, cached := ct.Admit(1, 3)
	if exec || cached != nil {
		t.Fatal("stale request not ignored")
	}
}

func TestClientTableCompleteStale(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 5)
	ct.Complete(1, 3, &wire.Packet{}) // stale completion must be dropped
	_, cached := ct.Admit(1, 5)
	if cached != nil {
		t.Fatal("stale Complete overwrote in-progress entry")
	}
}

func TestClientTableIndependentClients(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 1)
	exec, _ := ct.Admit(2, 1)
	if !exec {
		t.Fatal("client 2 blocked by client 1")
	}
}

func TestClientTableSnapshotRestore(t *testing.T) {
	ct := NewClientTable()
	ct.Admit(1, 5)
	ct.Admit(2, 9)
	snap := ct.Snapshot()
	fresh := NewClientTable()
	fresh.Admit(2, 4) // will be superseded by snapshot's 9
	fresh.Restore(snap)
	if exec, _ := fresh.Admit(1, 5); exec {
		t.Fatal("restored duplicate executed")
	}
	if exec, _ := fresh.Admit(2, 9); exec {
		t.Fatal("restored duplicate executed (merge case)")
	}
	if exec, _ := fresh.Admit(2, 10); !exec {
		t.Fatal("fresh request after restore blocked")
	}
}

func TestClientTableExportMergeOverlay(t *testing.T) {
	src := NewClientTable()
	rep := &wire.Packet{Op: wire.OpWriteReply, ClientID: 1, ReqID: 5}
	src.Admit(1, 5)
	src.Complete(1, 5, rep)
	src.Admit(2, 7) // in progress: no reply, must NOT export

	recs := src.Export()
	if _, ok := recs[2]; ok {
		t.Fatal("in-progress record exported (would wedge the client's retry)")
	}
	if r, ok := recs[1]; !ok || r.ReqID != 5 || r.Reply == nil {
		t.Fatalf("completed record missing or incomplete: %+v", r)
	}

	dst := NewClientTable()
	// Simulate the destination's replay divergence hazard: the leader
	// executed (1, 3) before the merge; a lagging replica executes it
	// after. The overlay must NOT suppress it.
	dst.Merge(recs)
	if exec, _ := dst.Admit(1, 3); !exec {
		t.Fatal("merged record suppressed an OLDER request (log-replay divergence)")
	}
	// The exact cross-group duplicate is suppressed, with the reply.
	if exec, cached := dst.Admit(1, 5); exec || cached == nil {
		t.Fatalf("exact duplicate: exec=%v cached=%v", exec, cached)
	}
	if got := dst.Cached(1, 5); got == nil {
		t.Fatal("Cached does not see the overlay (chain tail re-reply path)")
	}
	// Once the client moves on, the record retires.
	if exec, _ := dst.Admit(1, 6); !exec {
		t.Fatal("newer request blocked by the overlay")
	}
	if exec, cached := dst.Admit(1, 5); exec || cached != nil {
		t.Fatalf("retired overlay record still answered: exec=%v cached=%v", exec, cached)
	}
	// Re-exporting from the destination forwards overlay records for
	// chained handoffs.
	dst2 := NewClientTable()
	dst2.Merge(recs)
	if r, ok := dst2.Export()[1]; !ok || r.ReqID != 5 || r.Reply == nil {
		t.Fatalf("overlay record not re-exported: %+v", r)
	}
}

func TestSwitchLease(t *testing.T) {
	var l SwitchLease
	if l.Allows(0, 0) {
		t.Fatal("zero lease allows reads")
	}
	l.Grant(1, 1000)
	if !l.Allows(1, 500) {
		t.Fatal("granted lease rejects")
	}
	if l.Allows(1, 1000) {
		t.Fatal("expired lease allows (boundary)")
	}
	if l.Allows(2, 500) {
		t.Fatal("wrong epoch allowed")
	}
	// Renewal extends; shortening is ignored.
	l.Grant(1, 2000)
	if !l.Allows(1, 1500) {
		t.Fatal("renewal did not extend")
	}
	l.Grant(1, 100)
	if !l.Allows(1, 1500) {
		t.Fatal("shorter grant truncated lease")
	}
}

func TestSwitchLeaseEpochChange(t *testing.T) {
	var l SwitchLease
	l.Grant(1, 1000)
	l.Grant(2, 500) // new switch: old epoch implicitly refused
	if l.Allows(1, 100) {
		t.Fatal("old epoch still allowed after new grant")
	}
	if !l.Allows(2, 100) {
		t.Fatal("new epoch rejected")
	}
	l.Grant(1, 99999) // stale grant must not regress
	if l.Epoch() != 2 {
		t.Fatal("epoch regressed")
	}
}

func TestSwitchLeaseRevoke(t *testing.T) {
	var l SwitchLease
	l.Grant(3, 1000)
	l.Revoke(3)
	if l.Allows(3, 1) {
		t.Fatal("revoked lease allows")
	}
	l.Revoke(2) // lower revoke is a no-op
	l.Grant(3, 2000)
	if !l.Allows(3, 1500) {
		t.Fatal("re-grant after revoke failed")
	}
}

func TestReadAheadAccept(t *testing.T) {
	s := func(n uint64) wire.Seq { return wire.Seq{Epoch: 1, N: n} }
	// Replica applied write 5 to the object; stamped commit point 5 or
	// later proves it committed.
	if !ReadAheadAccept(s(5), s(5)) || !ReadAheadAccept(s(9), s(5)) {
		t.Fatal("committed state rejected")
	}
	// Stamped 4 < applied 5: the applied write may be uncommitted.
	if ReadAheadAccept(s(4), s(5)) {
		t.Fatal("potentially uncommitted state accepted")
	}
	// Never-written object (seq zero) is always safe.
	if !ReadAheadAccept(wire.ZeroSeq, wire.ZeroSeq) {
		t.Fatal("virgin object rejected")
	}
}

func TestReadBehindAccept(t *testing.T) {
	s := func(n uint64) wire.Seq { return wire.Seq{Epoch: 1, N: n} }
	// Replica executed up to 7; stamps ≤ 7 are visible here.
	if !ReadBehindAccept(s(7), s(7)) || !ReadBehindAccept(s(3), s(7)) {
		t.Fatal("visible state rejected")
	}
	// Stamp 9 > executed 7: replica lags, must reject.
	if ReadBehindAccept(s(9), s(7)) {
		t.Fatal("lagging replica accepted")
	}
}

// Property: the two checks partition correctly against the ordering —
// ReadAheadAccept(a, b) == b ≤ a and ReadBehindAccept(a, b) == a ≤ b.
func TestCheckProperties(t *testing.T) {
	f := func(e1 uint32, n1 uint64, e2 uint32, n2 uint64) bool {
		a, b := wire.Seq{Epoch: e1, N: n1}, wire.Seq{Epoch: e2, N: n2}
		return ReadAheadAccept(a, b) == b.LessEq(a) &&
			ReadBehindAccept(a, b) == a.LessEq(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(&wire.Packet{Op: wire.OpRead}) != CostRead {
		t.Fatal("read packet class")
	}
	if ClassOf(&wire.Packet{Op: wire.OpWrite}) != CostWrite {
		t.Fatal("write packet class")
	}
	if ClassOf(&wire.Packet{Op: wire.OpReadReply}) != CostControl {
		t.Fatal("reply packet class")
	}
	if ClassOf("random") != CostControl {
		t.Fatal("default class")
	}
	if ClassOf(costedMsg{}) != CostWrite {
		t.Fatal("Costed interface not honored")
	}
}

type costedMsg struct{}

func (costedMsg) CostClass() CostClass { return CostWrite }

func TestGroupConfig(t *testing.T) {
	gc := GroupConfig{Replicas: []simnet.NodeID{1, 2, 3}, Self: 1, F: 1}
	if gc.N() != 3 || gc.Quorum() != 2 || gc.Addr(0) != 1 || gc.SelfAddr() != 2 {
		t.Fatalf("GroupConfig accessors wrong: %+v", gc)
	}
}
