// Package nopaxos implements NOPaxos (Li et al., OSDI 2016) with the
// Harmonia adaptations of §7.3.
//
// NOPaxos replaces leader-driven ordering with an in-network sequencer:
// client writes are stamped with a session and message number and
// multicast to every replica (ordered unreliable multicast, OUM). In
// this reproduction the Harmonia switch doubles as the sequencer — the
// paper notes the two naturally share a switch — so the Harmonia
// sequence number (epoch = OUM session, counter = message number) is
// the OUM stamp, and the scheduler's MulticastWrites mode performs the
// delivery.
//
// Replicas append sequenced writes to their logs; only the leader
// executes immediately and answers the client. Drops appear as message
// -number gaps: followers fetch missing entries from the leader, and a
// gap at the leader is resolved by committing a NO-OP in that slot
// (gap agreement, leader-driven here). A periodic synchronization
// (SYNC-PREPARE / SYNC-ACK / SYNC-COMMIT) brings all replicas' executed
// state to a common prefix; per §7.3, completion of a synchronization
// is when the leader releases WRITE-COMPLETIONs for the objects
// affected in the synced range.
//
// Scope note: NOPaxos view changes (leader failure) are not
// implemented; the paper's evaluation does not exercise them, and the
// Harmonia integration is unaffected (DESIGN.md records this).
package nopaxos

import (
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// entry is one log slot: a sequenced write or an agreed NO-OP.
//
// The log keeps its delivery reference for the replica's lifetime:
// entries are never truncated, and gap replies share them wholesale
// across replicas. Because a log-held packet's count therefore never
// reaches zero, sharing entries through gapReply (and overwriting a
// slot with a NO-OP) needs no per-share Retain/Release.
type entry struct {
	Pkt  *wire.Packet
	NoOp bool
}

// --- protocol messages ---

// gapRequest asks the leader for missing log entries [From, To].
type gapRequest struct {
	From, To uint64 // op numbers
	Replica  int
}

// CostClass marks gap traffic as control.
func (gapRequest) CostClass() protocol.CostClass { return protocol.CostControl }

// gapReply returns entries starting at First.
type gapReply struct {
	First   uint64
	Entries []entry
}

// CostClass marks gap traffic as control.
func (gapReply) CostClass() protocol.CostClass { return protocol.CostControl }

// gapCommit instructs replicas to place a NO-OP at OpNum (replacing a
// real entry if they had one — the slot's fate is decided by the
// leader). Epoch identifies the OUM session the slot belongs to, so a
// replica that has not yet seen any write of that session establishes
// the correct session base.
type gapCommit struct {
	Epoch uint32
	OpNum uint64
}

// CostClass marks gap traffic as control.
func (gapCommit) CostClass() protocol.CostClass { return protocol.CostControl }

// syncPrepare starts a synchronization round up to OpNum.
type syncPrepare struct {
	OpNum uint64
}

// CostClass marks sync traffic as control.
func (syncPrepare) CostClass() protocol.CostClass { return protocol.CostControl }

// syncAck confirms the replica's log covers OpNum. SyncPoint tells the
// leader how far this replica has already synchronized, so the commit
// can carry exactly the NO-OP positions the replica has not yet
// reconciled.
type syncAck struct {
	OpNum     uint64
	Replica   int
	SyncPoint uint64
}

// CostClass marks sync traffic as control.
func (syncAck) CostClass() protocol.CostClass { return protocol.CostControl }

// syncCommit finalizes the round: the recipient reconciles the listed
// NO-OP slots (a gapCommit may have been lost — without this, a
// follower could execute a real entry in a slot the leader declared
// NO-OP, diverging permanently) and then executes through OpNum.
type syncCommit struct {
	OpNum uint64
	NoOps []uint64 // NO-OP op numbers in (recipient's SyncPoint, OpNum]
}

// CostClass marks sync traffic as control.
func (syncCommit) CostClass() protocol.CostClass { return protocol.CostControl }

// Options tunes the replica.
type Options struct {
	// SyncEvery is the leader's synchronization cadence. Zero disables
	// the timer (tests drive syncs manually via ForceSync).
	SyncEvery time.Duration
}

// DefaultOptions returns the standard sync cadence.
func DefaultOptions() Options { return Options{SyncEvery: time.Millisecond} }

// Replica is one NOPaxos group member. Index 0 is the leader.
type Replica struct {
	*protocol.Base
	opts Options

	log      []entry
	curEpoch uint32 // current OUM session
	sessBase uint64 // log length when the session began
	lastMsg  uint64 // last in-session message number appended

	pending map[uint64]*wire.Packet // buffered out-of-order arrivals (opNum → write)

	executed  uint64 // ops executed against the store
	syncPoint uint64 // last synchronized op

	// Leader bookkeeping.
	syncAcks     map[uint64]map[int]uint64 // opNum → replica → acked sync point
	lastSyncSent uint64
	completedOp  uint64   // ops whose completions have been released
	noopPos      []uint64 // sorted op numbers of committed NO-OPs (leader)

	syncTimer sim.Timer

	// Stats
	WritesExecuted uint64
	NoOps          uint64
	Syncs          uint64
	ReadsServed    uint64
}

// New builds a NOPaxos replica.
func New(env protocol.Env, g protocol.GroupConfig, shards int, opts Options) *Replica {
	r := &Replica{
		Base:     protocol.NewBase(env, g, protocol.ReadBehind, shards),
		opts:     opts,
		pending:  make(map[uint64]*wire.Packet),
		syncAcks: make(map[uint64]map[int]uint64),
	}
	if r.IsLeader() && opts.SyncEvery > 0 {
		r.syncTimer = env.After(opts.SyncEvery, r.syncTick)
	}
	return r
}

// IsLeader reports whether this replica is the (static) leader.
func (r *Replica) IsLeader() bool { return r.Group.Self == 0 }

func (r *Replica) leaderAddr() simnet.NodeID { return r.Group.Addr(0) }

// LogLen returns the log length (tests).
func (r *Replica) LogLen() int { return len(r.log) }

// SyncPoint returns the last synchronized op (tests).
func (r *Replica) SyncPoint() uint64 { return r.syncPoint }

// Recv implements simnet.Handler.
func (r *Replica) Recv(from simnet.NodeID, msg simnet.Message) {
	if r.HandleControl(msg) {
		return
	}
	switch m := msg.(type) {
	case *wire.Packet:
		r.recvPacket(m)
	case gapRequest:
		r.recvGapRequest(m)
	case gapReply:
		r.recvGapReply(m)
	case gapCommit:
		r.recvGapCommit(m)
	case syncPrepare:
		r.recvSyncPrepare(m)
	case syncAck:
		r.recvSyncAck(m)
	case syncCommit:
		r.recvSyncCommit(m)
	}
}

func (r *Replica) recvPacket(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		r.recvSequencedWrite(pkt)
	case wire.OpRead:
		if pkt.Flags&wire.FlagFastPath != 0 {
			target := protocol.Target(r.leaderAddr())
			if r.IsLeader() {
				target = protocol.TargetSelf()
			}
			if r.HandleFastRead(pkt, target) {
				r.leaderRead(pkt)
			}
			return
		}
		if !r.IsLeader() {
			r.Env.Send(r.leaderAddr(), pkt)
			return
		}
		r.leaderRead(pkt)
	}
}

// leaderRead serves a normal-path read from the leader's fully
// executed state.
func (r *Replica) leaderRead(pkt *wire.Packet) {
	r.ReadsServed++
	r.Env.SendSwitch(r.ReadReply(pkt))
	pkt.Release()
}

// recvSequencedWrite handles an OUM-delivered write.
// sessionCheck admits a message from session e, performing the session
// change if e is newer. It reports whether the message is current.
func (r *Replica) sessionCheck(e uint32) bool {
	if e < r.curEpoch {
		return false // stale session
	}
	if e > r.curEpoch {
		// Session change: the old session's undelivered tail is
		// abandoned (clients retry through the new sequencer).
		r.curEpoch = e
		r.sessBase = uint64(len(r.log))
		r.lastMsg = 0
		for _, p := range r.pending {
			p.Release()
		}
		r.pending = make(map[uint64]*wire.Packet)
	}
	return true
}

func (r *Replica) recvSequencedWrite(pkt *wire.Packet) {
	if !r.sessionCheck(pkt.Seq.Epoch) {
		pkt.Release() // stale session; the client retries
		return
	}
	n := pkt.Seq.N
	switch {
	case n == r.lastMsg+1:
		r.appendWrite(pkt)
		r.drainPending()
	case n > r.lastMsg+1:
		// Gap: buffer this write and ask the leader for the missing
		// range. The leader resolves its own gaps with NO-OPs.
		r.pending[r.sessBase+n] = pkt
		if r.IsLeader() {
			r.leaderFillGaps(n)
		} else {
			r.Env.Send(r.leaderAddr(), gapRequest{
				From: r.sessBase + r.lastMsg + 1, To: r.sessBase + n - 1, Replica: r.Group.Self,
			})
		}
	default:
		// Duplicate delivery; already have it.
		pkt.Release()
	}
}

// appendWrite appends the next in-order write; the leader executes and
// replies immediately.
func (r *Replica) appendWrite(pkt *wire.Packet) {
	r.log = append(r.log, entry{Pkt: pkt})
	r.lastMsg = pkt.Seq.N
	if r.IsLeader() {
		r.executeThrough(uint64(len(r.log)))
	}
}

// leaderFillGaps commits NO-OPs for the leader's own missing slots up
// to (but excluding) message n, then drains the buffer.
func (r *Replica) leaderFillGaps(n uint64) {
	for r.lastMsg+1 < n {
		r.lastMsg++
		r.log = append(r.log, entry{NoOp: true})
		r.NoOps++
		op := r.sessBase + r.lastMsg
		r.noopPos = append(r.noopPos, op)
		r.executeThrough(uint64(len(r.log)))
		r.broadcast(gapCommit{Epoch: r.curEpoch, OpNum: op})
	}
	r.drainPending()
}

// drainPending consumes buffered arrivals that are now in order.
func (r *Replica) drainPending() {
	for {
		op := r.sessBase + r.lastMsg + 1
		pkt, ok := r.pending[op]
		if !ok {
			return
		}
		delete(r.pending, op)
		r.appendWrite(pkt)
	}
}

func (r *Replica) broadcast(msg any) {
	for i := 0; i < r.Group.N(); i++ {
		if i != r.Group.Self {
			r.Env.Send(r.Group.Addr(i), msg)
		}
	}
}

// executeThrough executes log entries (leader: as they arrive;
// followers: at sync) up to opNum.
func (r *Replica) executeThrough(opNum uint64) {
	for r.executed < opNum && r.executed < uint64(len(r.log)) {
		e := r.log[r.executed]
		r.executed++
		if e.NoOp {
			continue
		}
		pkt := e.Pkt
		// At-most-once dedup runs at EVERY replica during execution,
		// not just the leader: a client retry is a second log entry
		// (the sequencer cannot deduplicate), and if followers applied
		// it while the leader's client table skipped it, their states
		// would diverge whenever the duplicate lands after a newer
		// write to the same object. Executing the same log with the
		// same table yields identical decisions everywhere.
		execute, cached := r.CT.Admit(pkt.ClientID, pkt.ReqID)
		if !execute {
			if r.IsLeader() && cached != nil {
				r.Env.SendSwitch(cached.FlightClone())
			}
			continue
		}
		if err := r.Store.Apply(pkt.ObjID, pkt.Value, pkt.Seq, pkt.Flags&wire.FlagDelete != 0); err != nil {
			// Session changes can leave a higher-seq write applied
			// before an abandoned old-session entry surfaces; the
			// in-order guard drops it.
			continue
		}
		r.WritesExecuted++
		// The client table takes its own reference; the leader's send
		// transfers this one, a follower drops it (nothing is sent).
		rep := r.WriteReply(pkt, false)
		r.CT.Complete(pkt.ClientID, pkt.ReqID, rep)
		if r.IsLeader() {
			r.Env.SendSwitch(rep)
		} else {
			rep.Release()
		}
	}
}

// --- gap handling ---

func (r *Replica) recvGapRequest(m gapRequest) {
	if !r.IsLeader() {
		return
	}
	// The leader resolves slots it does not have yet as NO-OPs (its
	// own gap handling), then answers from its log.
	if m.To > uint64(len(r.log)) {
		if m.To > r.sessBase {
			r.leaderFillGaps(m.To - r.sessBase + 1)
		}
	}
	if m.From > uint64(len(r.log)) || m.From == 0 {
		return
	}
	to := m.To
	if to > uint64(len(r.log)) {
		to = uint64(len(r.log))
	}
	ents := append([]entry(nil), r.log[m.From-1:to]...)
	r.Env.Send(r.Group.Addr(m.Replica), gapReply{First: m.From, Entries: ents})
}

func (r *Replica) recvGapReply(m gapReply) {
	for i, e := range m.Entries {
		op := m.First + uint64(i)
		if op != uint64(len(r.log))+1 {
			continue // already have it (or still out of order)
		}
		if !e.NoOp {
			if !r.sessionCheck(e.Pkt.Seq.Epoch) {
				continue
			}
			r.log = append(r.log, e)
			r.lastMsg = e.Pkt.Seq.N
		} else {
			r.log = append(r.log, e)
			r.lastMsg++
			r.NoOps++
		}
	}
	r.drainPending()
}

func (r *Replica) recvGapCommit(m gapCommit) {
	if !r.sessionCheck(m.Epoch) {
		return
	}
	switch {
	case m.OpNum == uint64(len(r.log))+1:
		r.log = append(r.log, entry{NoOp: true})
		r.lastMsg++
		r.NoOps++
		r.drainPending()
	case m.OpNum <= uint64(len(r.log)):
		// The leader declared this slot a NO-OP; replace a real entry
		// if it is not yet executed (executed entries can only differ
		// if the sync protocol misfired, which would be a bug).
		if m.OpNum > r.executed {
			r.log[m.OpNum-1] = entry{NoOp: true}
		}
	default:
		// Future slot: note it in pending as a NO-OP via log growth
		// when preceding entries arrive. Simplest: ignore; the next
		// sync or gap request will reconcile.
	}
}

// --- synchronization (§7.3 completion source) ---

func (r *Replica) syncTick() {
	if r.IsLeader() {
		r.ForceSync()
		r.syncTimer = r.Env.After(r.opts.SyncEvery, r.syncTick)
	}
}

// ForceSync starts a synchronization round at the leader for its
// current log length.
func (r *Replica) ForceSync() {
	if !r.IsLeader() {
		return
	}
	op := uint64(len(r.log))
	if op <= r.syncPoint || op == r.lastSyncSent {
		return
	}
	r.lastSyncSent = op
	r.syncAcks[op] = map[int]uint64{0: r.syncPoint}
	r.broadcast(syncPrepare{OpNum: op})
	r.maybeCommitSync(op) // single-replica group
}

// noopsIn returns the committed NO-OP positions in (lo, hi].
func (r *Replica) noopsIn(lo, hi uint64) []uint64 {
	var out []uint64
	for _, p := range r.noopPos {
		if p > lo && p <= hi {
			out = append(out, p)
		}
	}
	return out
}

func (r *Replica) recvSyncPrepare(m syncPrepare) {
	if r.IsLeader() {
		return
	}
	if uint64(len(r.log)) < m.OpNum {
		// Missing tail: fetch it first; ack after the gap reply via
		// the next sync round.
		r.Env.Send(r.leaderAddr(), gapRequest{
			From: uint64(len(r.log)) + 1, To: m.OpNum, Replica: r.Group.Self,
		})
		return
	}
	r.Env.Send(r.leaderAddr(), syncAck{OpNum: m.OpNum, Replica: r.Group.Self, SyncPoint: r.syncPoint})
}

func (r *Replica) recvSyncAck(m syncAck) {
	if !r.IsLeader() {
		return
	}
	acks, ok := r.syncAcks[m.OpNum]
	if !ok {
		// The round already committed (or never existed): answer the
		// late acker directly so it does not have to wait for the
		// next round.
		if m.OpNum <= r.syncPoint {
			r.Env.Send(r.Group.Addr(m.Replica),
				syncCommit{OpNum: m.OpNum, NoOps: r.noopsIn(m.SyncPoint, m.OpNum)})
		}
		return
	}
	acks[m.Replica] = m.SyncPoint
	r.maybeCommitSync(m.OpNum)
}

func (r *Replica) maybeCommitSync(op uint64) {
	acks, ok := r.syncAcks[op]
	if !ok || len(acks) < r.Group.Quorum() || op <= r.syncPoint {
		return
	}
	delete(r.syncAcks, op)
	r.Syncs++
	prev := r.syncPoint
	r.syncPoint = op
	// Unicast the commit with per-replica NO-OP reconciliation lists:
	// each follower needs exactly the NO-OPs between its own sync
	// point and this round's target (its gapCommits may have been
	// dropped).
	for i := 0; i < r.Group.N(); i++ {
		if i == r.Group.Self {
			continue
		}
		from, acked := acks[i]
		if !acked {
			continue // lagging replica catches the next round
		}
		r.Env.Send(r.Group.Addr(i), syncCommit{OpNum: op, NoOps: r.noopsIn(from, op)})
	}
	// §7.3: upon completion of a synchronization the leader sends
	// WRITE-COMPLETIONs for all objects affected in the synced range,
	// each carrying the object's newest sequenced write so the dirty
	// set entry clears only when no newer write is pending.
	latest := make(map[wire.ObjectID]wire.Seq)
	var order []wire.ObjectID
	for i := prev; i < op; i++ {
		e := r.log[i]
		if e.NoOp {
			continue
		}
		if _, seen := latest[e.Pkt.ObjID]; !seen {
			order = append(order, e.Pkt.ObjID)
		}
		if latest[e.Pkt.ObjID].Less(e.Pkt.Seq) {
			latest[e.Pkt.ObjID] = e.Pkt.Seq
		}
	}
	for _, obj := range order {
		r.Env.SendSwitch(r.Completion(obj, latest[obj]))
	}
	r.completedOp = op
}

func (r *Replica) recvSyncCommit(m syncCommit) {
	if uint64(len(r.log)) < m.OpNum {
		// Shouldn't normally happen (we ack only when covered), but a
		// commit can outrun a gap fill; fetch and let the next round
		// settle.
		r.Env.Send(r.leaderAddr(), gapRequest{
			From: uint64(len(r.log)) + 1, To: m.OpNum, Replica: r.Group.Self,
		})
		return
	}
	if m.OpNum <= r.syncPoint {
		return // stale or duplicate round
	}
	// Reconcile NO-OP slots the leader committed but whose gapCommits
	// we may have missed; these are all beyond our executed prefix
	// (we only execute synchronized slots, and the list covers
	// (ourSyncPoint, OpNum]).
	for _, op := range m.NoOps {
		if op > r.executed && op <= uint64(len(r.log)) && !r.log[op-1].NoOp {
			r.log[op-1] = entry{NoOp: true}
			r.NoOps++
		}
	}
	r.syncPoint = m.OpNum
	r.executeThrough(m.OpNum)
}
