package nopaxos

import (
	"testing"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/protocol/ptest"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func group(t *testing.T, n int, opts Options) (*ptest.Harness, []*Replica) {
	t.Helper()
	h := ptest.NewHarness(1)
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(i + 1)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		g := protocol.GroupConfig{Replicas: addrs, Self: i, F: (n - 1) / 2}
		reps[i] = New(h.Env(addrs[i], i), g, 8, opts)
		h.Register(addrs[i], reps[i])
	}
	return h, reps
}

func write(obj wire.ObjectID, n uint64, client uint32, req uint64, val string) *wire.Packet {
	return &wire.Packet{
		Op: wire.OpWrite, ObjID: obj, Seq: wire.Seq{Epoch: 1, N: n},
		ClientID: client, ReqID: req, Value: []byte(val),
	}
}

func read(obj wire.ObjectID, client uint32, req uint64) *wire.Packet {
	return &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: client, ReqID: req}
}

// multicast simulates the OUM delivery of a sequenced write to all
// replicas.
func multicast(h *ptest.Harness, n int, pkt *wire.Packet) {
	for i := 1; i <= n; i++ {
		h.Inject(0, simnet.NodeID(i), pkt.Clone())
	}
}

func TestLeaderExecutesAndReplies(t *testing.T) {
	h, reps := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 1 {
		t.Fatalf("%d replies", len(replies))
	}
	if o, ok := reps[0].Store.Get(7); !ok || string(o.Value) != "v1" {
		t.Fatal("leader did not execute")
	}
	// Followers log but do not execute before sync.
	for i := 1; i < 3; i++ {
		if reps[i].LogLen() != 1 {
			t.Fatalf("follower %d log len %d", i, reps[i].LogLen())
		}
		if _, ok := reps[i].Store.Get(7); ok {
			t.Fatalf("follower %d executed before sync", i)
		}
	}
}

func TestSyncExecutesFollowersAndReleasesCompletions(t *testing.T) {
	h, reps := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	multicast(h, 3, write(8, 2, 1, 2, "v2"))
	if len(h.SwitchPacketsOf(wire.OpWriteCompletion)) != 0 {
		t.Fatal("completion released before sync")
	}
	reps[0].ForceSync()
	comps := h.SwitchPacketsOf(wire.OpWriteCompletion)
	if len(comps) != 2 {
		t.Fatalf("%d completions after sync, want 2", len(comps))
	}
	for i := 1; i < 3; i++ {
		if o, ok := reps[i].Store.Get(7); !ok || string(o.Value) != "v1" {
			t.Fatalf("follower %d missing executed write", i)
		}
		if reps[i].SyncPoint() != 2 {
			t.Fatalf("follower %d sync point %d", i, reps[i].SyncPoint())
		}
	}
}

func TestCompletionCoalescedPerObject(t *testing.T) {
	h, reps := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "a"))
	multicast(h, 3, write(7, 2, 1, 2, "b")) // same object twice
	reps[0].ForceSync()
	comps := h.SwitchPacketsOf(wire.OpWriteCompletion)
	if len(comps) != 1 {
		t.Fatalf("%d completions, want 1 coalesced", len(comps))
	}
	if comps[0].Seq.N != 2 {
		t.Fatal("coalesced completion must carry the newest seq")
	}
}

func TestSyncTimerDrivesRounds(t *testing.T) {
	h, reps := group(t, 3, DefaultOptions())
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	h.Run(5 * time.Millisecond)
	if reps[0].Syncs == 0 {
		t.Fatal("timer-driven sync never ran")
	}
	if len(h.SwitchPacketsOf(wire.OpWriteCompletion)) != 1 {
		t.Fatal("timer-driven sync did not release the completion")
	}
}

func TestLeaderGapBecomesNoOp(t *testing.T) {
	h, reps := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	// Message 2 lost everywhere (switch dropped the write); message 3
	// arrives — the leader must NO-OP slot 2.
	multicast(h, 3, write(9, 3, 1, 2, "v3"))
	if reps[0].NoOps != 1 {
		t.Fatalf("leader NoOps = %d, want 1", reps[0].NoOps)
	}
	if reps[0].LogLen() != 3 {
		t.Fatalf("leader log = %d, want 3", reps[0].LogLen())
	}
	if o, ok := reps[0].Store.Get(9); !ok || string(o.Value) != "v3" {
		t.Fatal("post-gap write not executed at leader")
	}
	// Followers learned the NO-OP via gapCommit (leader broadcast).
	for i := 1; i < 3; i++ {
		if reps[i].LogLen() != 3 {
			t.Fatalf("follower %d log = %d, want 3", i, reps[i].LogLen())
		}
	}
}

func TestFollowerGapFilledFromLeader(t *testing.T) {
	h, reps := group(t, 3, Options{})
	// Write 1 reaches everyone; write 2 misses follower 3.
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	h.Inject(0, 1, write(8, 2, 1, 2, "v2"))
	h.Inject(0, 2, write(8, 2, 1, 2, "v2"))
	// Write 3 reaches follower 3, exposing its gap.
	multicast(h, 3, write(9, 3, 1, 3, "v3"))
	if reps[2].LogLen() != 3 {
		t.Fatalf("follower log = %d after gap fill, want 3", reps[2].LogLen())
	}
	reps[0].ForceSync()
	if o, ok := reps[2].Store.Get(8); !ok || string(o.Value) != "v2" {
		t.Fatal("gap-filled write not executed at follower after sync")
	}
}

func TestDuplicateDeliveryIgnored(t *testing.T) {
	h, reps := group(t, 3, Options{})
	w := write(7, 1, 1, 1, "v1")
	multicast(h, 3, w)
	multicast(h, 3, w) // OUM duplicate
	if reps[0].LogLen() != 1 {
		t.Fatalf("duplicate appended: log=%d", reps[0].LogLen())
	}
	if got := len(h.SwitchPacketsOf(wire.OpWriteReply)); got != 1 {
		t.Fatalf("%d replies for duplicate delivery", got)
	}
}

func TestDuplicateClientRequestCached(t *testing.T) {
	h, _ := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	// Client retry gets a fresh sequence number but the same ReqID.
	multicast(h, 3, write(7, 2, 1, 1, "v1"))
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2 (one cached)", len(replies))
	}
}

func TestSessionChangeResetsNumbering(t *testing.T) {
	h, reps := group(t, 3, Options{})
	// Session 1 starting at msg 5: slots 1–4 were dropped by the
	// sequencer, so the leader NO-OPs them (log = 5).
	multicast(h, 3, write(7, 5, 1, 1, "old"))
	if reps[0].LogLen() != 5 || reps[0].NoOps != 4 {
		t.Fatalf("leader log=%d noops=%d, want 5/4", reps[0].LogLen(), reps[0].NoOps)
	}
	// New switch epoch: message numbers restart at 1; no gap.
	w := write(8, 1, 1, 2, "new")
	w.Seq.Epoch = 2
	multicast(h, 3, w)
	if reps[0].LogLen() != 6 {
		t.Fatalf("log = %d after session change, want 6", reps[0].LogLen())
	}
	if o, ok := reps[0].Store.Get(8); !ok || string(o.Value) != "new" {
		t.Fatal("new-session write not executed")
	}
	// Followers followed the session change through gapCommits +
	// writes.
	for i := 1; i < 3; i++ {
		if reps[i].LogLen() != 6 {
			t.Fatalf("follower %d log = %d, want 6", i, reps[i].LogLen())
		}
	}
	// Old-session stragglers are dropped.
	multicast(h, 3, write(9, 6, 1, 3, "stale"))
	if reps[0].LogLen() != 6 {
		t.Fatal("stale-session write appended")
	}
}

func TestFastReadAtSyncedFollower(t *testing.T) {
	h, reps := group(t, 3, Options{})
	h.Grant(1, time.Hour)
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	reps[0].ForceSync()
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr)
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("fast read at synced follower: %v", rep)
	}
	if reps[1].FastServed != 1 {
		t.Fatal("follower did not serve")
	}
}

func TestFastReadRejectedAtUnsyncedFollower(t *testing.T) {
	h, reps := group(t, 3, Options{})
	h.Grant(1, time.Hour)
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	// No sync yet: followers have not executed. A read stamped with
	// the write's completion point must be rejected there.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr)
	if reps[1].FastRejected != 1 {
		t.Fatal("unsynced follower served a fast read (read-behind anomaly)")
	}
	// Forwarded to the leader, which has executed it.
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("forwarded read = %v", rep)
	}
}

func TestNormalReadAtLeader(t *testing.T) {
	h, _ := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("leader normal read failed")
	}
}

func TestMisroutedReadForwarded(t *testing.T) {
	h, _ := group(t, 3, Options{})
	multicast(h, 3, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 3, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("misrouted read lost")
	}
}

func TestSyncSkippedWhenIdle(t *testing.T) {
	_, reps := group(t, 3, Options{})
	reps[0].ForceSync() // empty log: nothing to do
	if reps[0].Syncs != 0 {
		t.Fatal("idle sync counted")
	}
}
