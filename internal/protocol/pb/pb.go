// Package pb implements the primary-backup replication protocol (§2 of
// the paper) with the Harmonia adaptations of §7.2.
//
// The primary orders writes and transfers them to every backup; it
// replies to the client only after all backups acknowledge, so the
// protocol is read-ahead: replicas may hold applied-but-uncommitted
// state, and fast-path reads are validated with the last-committed
// stamp (integrity check P2). WRITE-COMPLETIONs piggyback on the write
// reply, which traverses the switch on its way to the client.
package pb

import (
	"harmonia/internal/protocol"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// update carries a write from the primary to the backups.
type update struct {
	Pkt *wire.Packet
}

// CostClass classifies applying the update as a full write.
func (update) CostClass() protocol.CostClass { return protocol.CostWrite }

// updateAck acknowledges an applied update.
type updateAck struct {
	Seq     wire.Seq
	Replica int
}

// CostClass classifies the ack as control traffic.
func (updateAck) CostClass() protocol.CostClass { return protocol.CostControl }

// pendingWrite tracks a write awaiting backup acknowledgments.
type pendingWrite struct {
	pkt   *wire.Packet
	acked map[int]bool
}

// queuedRead is a normal-path read waiting for the object's pending
// writes to commit.
type queuedRead struct {
	pkt     *wire.Packet
	barrier wire.Seq // committed point that releases the read
}

// Replica is one primary-backup group member. Index 0 is the primary.
type Replica struct {
	*protocol.Base

	// Primary-only state.
	pending      map[uint64]*pendingWrite   // keyed by Seq.N (single epoch at a time)
	pendingByObj map[wire.ObjectID]wire.Seq // largest pending seq per object
	committed    wire.Seq
	reads        []queuedRead

	// active marks which backups the primary waits for (server
	// failure handling removes crashed ones).
	active map[int]bool

	// Stats
	WritesCommitted uint64
	ReadsServed     uint64
	ReadsQueued     uint64
}

// New builds a replica. shards is the store shard count.
func New(env protocol.Env, g protocol.GroupConfig, shards int) *Replica {
	r := &Replica{
		Base:         protocol.NewBase(env, g, protocol.ReadAhead, shards),
		pending:      make(map[uint64]*pendingWrite),
		pendingByObj: make(map[wire.ObjectID]wire.Seq),
		active:       make(map[int]bool),
	}
	for i := 1; i < g.N(); i++ {
		r.active[i] = true
	}
	return r
}

// IsPrimary reports whether this replica is the primary.
func (r *Replica) IsPrimary() bool { return r.Group.Self == 0 }

// primaryAddr returns the primary's address.
func (r *Replica) primaryAddr() simnet.NodeID { return r.Group.Addr(0) }

// Recv implements simnet.Handler.
func (r *Replica) Recv(from simnet.NodeID, msg simnet.Message) {
	if r.HandleControl(msg) {
		return
	}
	switch m := msg.(type) {
	case *wire.Packet:
		r.recvPacket(m)
	case update:
		r.recvUpdate(m)
	case updateAck:
		r.recvUpdateAck(m)
	}
}

func (r *Replica) recvPacket(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		if r.IsPrimary() {
			r.primaryWrite(pkt)
			return
		}
		// Writes to a backup are a routing error; drop.
		pkt.Release()
	case wire.OpRead:
		if pkt.Flags&wire.FlagFastPath != 0 {
			if r.HandleFastRead(pkt, r.normalTarget()) {
				r.normalRead(pkt)
			}
			return
		}
		if r.IsPrimary() {
			r.normalRead(pkt)
			return
		}
		// A normal-path read landed on a backup (stale switch
		// targets); pass it to the primary.
		r.Env.Send(r.primaryAddr(), pkt)
	}
}

func (r *Replica) normalTarget() protocol.SendTarget {
	if r.IsPrimary() {
		return protocol.TargetSelf()
	}
	return protocol.Target(r.primaryAddr())
}

// primaryWrite handles a sequenced write at the primary.
func (r *Replica) primaryWrite(pkt *wire.Packet) {
	execute, cached := r.CT.Admit(pkt.ClientID, pkt.ReqID)
	if !execute {
		if cached != nil {
			// Retransmission of a completed write: re-reply without
			// re-piggybacking a completion (strip the seq so the
			// switch does not process it twice; harmless either way,
			// but cleaner). The cached reply stays in the table; a
			// pooled flight copy goes on the wire.
			rep := cached.FlightClone()
			rep.Seq = wire.ZeroSeq
			r.Env.SendSwitch(rep)
		}
		pkt.Release() // duplicate fully handled
		return
	}
	if err := r.Store.Apply(pkt.ObjID, pkt.Value, pkt.Seq, pkt.Flags&wire.FlagDelete != 0); err != nil {
		// Out of sequence order (§5.2 write-order requirement):
		// discard; the client retries with a fresh sequence number.
		pkt.Release()
		return
	}
	// The pending entry keeps the delivery reference; each backup
	// update carries its own, released by recvUpdate.
	pw := &pendingWrite{pkt: pkt, acked: make(map[int]bool)}
	r.pending[pkt.Seq.N] = pw
	if r.pendingByObj[pkt.ObjID].Less(pkt.Seq) {
		r.pendingByObj[pkt.ObjID] = pkt.Seq
	}
	for i := 1; i < r.Group.N(); i++ {
		if r.active[i] {
			r.Env.Send(r.Group.Addr(i), update{Pkt: pkt.Retain()})
		}
	}
	r.maybeCommit(pkt.Seq) // zero backups: commits immediately
}

// recvUpdate applies a state transfer at a backup.
func (r *Replica) recvUpdate(m update) {
	pkt := m.Pkt
	defer pkt.Release() // the backup keeps nothing past this call
	if err := r.Store.Apply(pkt.ObjID, pkt.Value, pkt.Seq, pkt.Flags&wire.FlagDelete != 0); err != nil {
		// Out-of-order update: dropped, no ack, so the write cannot
		// commit and the client will retry. This keeps the §5.2
		// invariant without any reordering buffer.
		return
	}
	r.Env.Send(r.primaryAddr(), updateAck{Seq: pkt.Seq, Replica: r.Group.Self})
}

// recvUpdateAck collects acknowledgments at the primary.
func (r *Replica) recvUpdateAck(m updateAck) {
	pw, ok := r.pending[m.Seq.N]
	if !ok {
		return
	}
	pw.acked[m.Replica] = true
	r.maybeCommit(m.Seq)
}

// fullyAcked reports whether every active backup acknowledged pw.
func (r *Replica) fullyAcked(pw *pendingWrite) bool {
	for i := range r.active {
		if r.active[i] && !pw.acked[i] {
			return false
		}
	}
	return true
}

// maybeCommit commits the write at seq — and every earlier pending
// write — once fully acknowledged. Because backups apply updates in
// sequence order, full acknowledgment of seq implies every earlier
// write is applied everywhere, even if its acks were reordered away.
func (r *Replica) maybeCommit(seq wire.Seq) {
	pw, ok := r.pending[seq.N]
	if !ok || !r.fullyAcked(pw) {
		return
	}
	for n, p := range r.pending {
		if n <= seq.N {
			r.commit(p)
			delete(r.pending, n)
		}
	}
	if r.committed.Less(seq) {
		r.committed = seq
	}
	r.releaseReads()
}

// commit replies to the client with a piggybacked WRITE-COMPLETION.
func (r *Replica) commit(pw *pendingWrite) {
	r.WritesCommitted++
	pkt := pw.pkt
	if mx, ok := r.pendingByObj[pkt.ObjID]; ok && mx.LessEq(pkt.Seq) {
		delete(r.pendingByObj, pkt.ObjID)
	}
	rep := r.WriteReply(pkt, true)
	r.CT.Complete(pkt.ClientID, pkt.ReqID, rep)
	r.Env.SendSwitch(rep)
	pkt.Release() // pending entry retired with the commit
}

// normalRead serves a read on the normal protocol path at the primary:
// reads of objects with pending (uncommitted) writes wait for those
// writes to commit, so the reply always reflects committed state.
func (r *Replica) normalRead(pkt *wire.Packet) {
	if barrier, ok := r.pendingByObj[pkt.ObjID]; ok {
		r.ReadsQueued++
		r.reads = append(r.reads, queuedRead{pkt: pkt, barrier: barrier})
		return
	}
	r.ReadsServed++
	r.Env.SendSwitch(r.ReadReply(pkt))
	pkt.Release()
}

// releaseReads serves queued reads whose barrier write has committed.
func (r *Replica) releaseReads() {
	rest := r.reads[:0]
	for _, q := range r.reads {
		if q.barrier.LessEq(r.committed) {
			r.ReadsServed++
			r.Env.SendSwitch(r.ReadReply(q.pkt))
			q.pkt.Release()
		} else {
			rest = append(rest, q)
		}
	}
	r.reads = rest
}

// RemoveBackup excludes a crashed backup from the ack set (§5.3 server
// failure handling: the protocol reconfigures and the switch control
// plane is updated separately). Pending writes blocked only on the
// removed backup commit immediately.
func (r *Replica) RemoveBackup(idx int) {
	if idx == 0 || !r.IsPrimary() {
		delete(r.active, idx)
		return
	}
	delete(r.active, idx)
	for _, pw := range r.pending {
		r.maybeCommit(pw.pkt.Seq)
	}
}

// PendingWrites reports the primary's in-flight write count (tests).
func (r *Replica) PendingWrites() int { return len(r.pending) }

// QueuedReads reports reads blocked behind pending writes (tests).
func (r *Replica) QueuedReads() int { return len(r.reads) }
