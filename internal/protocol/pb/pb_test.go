package pb

import (
	"testing"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/protocol/ptest"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// group builds a 3-replica PB group on a ptest harness. Replica
// addresses are 1, 2, 3; the primary is address 1 (index 0).
func group(t *testing.T, n int) (*ptest.Harness, []*Replica) {
	t.Helper()
	h := ptest.NewHarness(1)
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(i + 1)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		g := protocol.GroupConfig{Replicas: addrs, Self: i}
		reps[i] = New(h.Env(addrs[i], i), g, 8)
		h.Register(addrs[i], reps[i])
	}
	return h, reps
}

func write(obj wire.ObjectID, n uint64, client uint32, req uint64, val string) *wire.Packet {
	return &wire.Packet{
		Op: wire.OpWrite, ObjID: obj, Seq: wire.Seq{Epoch: 1, N: n},
		ClientID: client, ReqID: req, Value: []byte(val),
	}
}

func read(obj wire.ObjectID, client uint32, req uint64) *wire.Packet {
	return &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: client, ReqID: req}
}

func TestWriteCommitsAfterAllAcks(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	reply := h.LastToSwitch()
	if reply == nil || reply.Op != wire.OpWriteReply {
		t.Fatalf("no write reply: %v", reply)
	}
	if reply.Seq != (wire.Seq{Epoch: 1, N: 1}) {
		t.Fatal("reply does not piggyback the completion seq")
	}
	for i, r := range reps {
		if o, ok := r.Store.Get(7); !ok || string(o.Value) != "v1" {
			t.Fatalf("replica %d missing write: %v %v", i, o, ok)
		}
	}
	if reps[0].PendingWrites() != 0 {
		t.Fatal("pending writes remain after commit")
	}
}

func TestWriteBlocksWithoutBackupAck(t *testing.T) {
	h, reps := group(t, 3)
	h.Blackhole[3] = true // backup 3 unreachable
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 0 {
		t.Fatal("write committed without all backups")
	}
	if reps[0].PendingWrites() != 1 {
		t.Fatal("write not pending")
	}
}

func TestOutOfOrderWriteDropped(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 5, 1, 1, "v5"))
	h.Inject(100, 1, write(8, 3, 2, 1, "v3")) // stale seq
	if got := len(h.SwitchPacketsOf(wire.OpWriteReply)); got != 1 {
		t.Fatalf("%d replies, want 1 (stale write dropped)", got)
	}
	if _, ok := reps[0].Store.Get(8); ok {
		t.Fatal("out-of-order write applied")
	}
}

func TestOutOfOrderUpdateAtBackupDropped(t *testing.T) {
	h, reps := group(t, 2)
	// Apply seq 5 at the backup directly, then deliver an update with
	// seq 3: must be ignored without an ack.
	if err := reps[1].Store.Apply(1, []byte("x"), wire.Seq{Epoch: 1, N: 5}, false); err != nil {
		t.Fatal(err)
	}
	h.Inject(1, 2, update{Pkt: write(9, 3, 1, 1, "stale")})
	if _, ok := reps[1].Store.Get(9); ok {
		t.Fatal("backup applied stale update")
	}
}

func TestDuplicateWriteSuppressed(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, write(7, 2, 1, 1, "v1")) // client retry, same ReqID
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2 (original + cached re-reply)", len(replies))
	}
	if !replies[1].Seq.IsZero() {
		t.Fatal("cached re-reply carries a completion seq")
	}
}

func TestNormalReadReturnsCommitted(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("read reply = %v", rep)
	}
}

func TestNormalReadMissingObject(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(1, 1, 1, 1, "seed")) // make group live
	h.Inject(100, 1, read(42, 2, 1))
	rep := h.LastToSwitch()
	if rep.Flags&wire.FlagNotFound == 0 {
		t.Fatal("missing object not flagged")
	}
}

func TestNormalReadBlocksBehindPendingWrite(t *testing.T) {
	h, reps := group(t, 3)
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1")) // stuck uncommitted
	h.Inject(100, 1, read(7, 2, 1))
	if len(h.SwitchPacketsOf(wire.OpReadReply)) != 0 {
		t.Fatal("read served while write uncommitted (read-ahead anomaly)")
	}
	if reps[0].QueuedReads() != 1 {
		t.Fatal("read not queued")
	}
	// Unblock: backup 3 comes back and the update is retried — here we
	// simulate via direct ack injection.
	h.Inject(3, 1, updateAck{Seq: wire.Seq{Epoch: 1, N: 1}, Replica: 2})
	rep := h.LastToSwitch()
	if rep == nil || rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("queued read not released: %v", rep)
	}
}

func TestFastReadAcceptedOnCommittedObject(t *testing.T) {
	h, reps := group(t, 3)
	h.Grant(1, time.Hour)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// Fast read at backup 2 stamped with commit point 1: accepted.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 3, fr)
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("fast read reply = %v", rep)
	}
	if reps[2].FastServed != 1 {
		t.Fatal("FastServed not counted")
	}
}

func TestFastReadRejectedOnUncommittedState(t *testing.T) {
	h, reps := group(t, 3)
	h.Grant(1, time.Hour)
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1")) // applied at 1,2; uncommitted
	// Backup 2 has applied seq 1, but the read is stamped with commit
	// point 0 — integrity check must reject and forward to primary,
	// where it queues behind the pending write.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 0}
	h.Inject(100, 2, fr)
	if len(h.SwitchPacketsOf(wire.OpReadReply)) != 0 {
		t.Fatal("uncommitted state leaked through fast path")
	}
	if reps[1].FastRejected != 1 {
		t.Fatal("rejection not counted")
	}
	if reps[0].QueuedReads() != 1 {
		t.Fatal("forwarded read not queued at primary")
	}
}

func TestFastReadRejectedWithoutLease(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr)
	// Without a lease the read is forwarded to the primary and served
	// on the normal path (object committed, so it answers there).
	if reps[1].LeaseRejected != 1 {
		t.Fatal("lease gate did not fire")
	}
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("forwarded read not served by primary")
	}
}

func TestFastReadWrongEpochRejected(t *testing.T) {
	h, reps := group(t, 3)
	h.Grant(2, time.Hour) // replicas moved to switch epoch 2
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1} // old switch's stamp
	h.Inject(100, 2, fr)
	if reps[1].LeaseRejected != 1 {
		t.Fatal("old-epoch fast read accepted (§5.3 violation)")
	}
}

func TestFastReadAtPrimaryFallsBackToNormalPath(t *testing.T) {
	h, _ := group(t, 3)
	h.Grant(1, time.Hour)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// Stale stamp at the primary: rejected fast read must be served
	// via the primary's own normal path, not forwarded to itself.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.ZeroSeq
	h.Inject(100, 1, fr)
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("primary fallback failed: %v", rep)
	}
}

func TestRemoveBackupUnblocksPending(t *testing.T) {
	h, reps := group(t, 3)
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 0 {
		t.Fatal("premature commit")
	}
	reps[0].RemoveBackup(2) // index 2 = address 3
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("write did not commit after backup removal")
	}
}

func TestCommitInSeqOrderDespiteAckReordering(t *testing.T) {
	h, reps := group(t, 2)
	// Two writes; deliver the backup's acks out of order by injecting
	// them manually.
	h.Blackhole[2] = true // suppress automatic backup processing
	h.Inject(100, 1, write(7, 1, 1, 1, "a"))
	h.Inject(100, 1, write(8, 2, 2, 1, "b"))
	h.Blackhole[2] = false
	// Ack for seq 2 arrives first: both writes commit (full ack of 2
	// implies 1 was applied at the backup, by in-order application).
	h.Inject(2, 1, updateAck{Seq: wire.Seq{Epoch: 1, N: 2}, Replica: 1})
	if got := len(h.SwitchPacketsOf(wire.OpWriteReply)); got != 2 {
		t.Fatalf("%d replies after reordered ack, want 2", got)
	}
	if reps[0].PendingWrites() != 0 {
		t.Fatal("pending writes remain")
	}
}

func TestBackupForwardsStrayNormalRead(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 2, read(7, 3, 1)) // normal read misrouted to backup
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("misrouted normal read lost")
	}
}
