package protocol

import (
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
)

// Control-plane messages exchanged between the cluster controller and
// replicas. These implement the §5.3 agreement machinery: the
// replication protocol periodically agrees to allow single-replica
// reads from the current switch for a time slice, and on switch
// replacement it agrees to refuse reads from smaller switch IDs before
// the new switch may issue writes.

// LeaseGrant permits fast-path reads from switch incarnation Epoch
// until Expiry (simulated time). Granting epoch E implicitly refuses
// every epoch < E.
type LeaseGrant struct {
	Epoch  uint32
	Expiry sim.Time
}

// LeaseRevoke cuts the lease of every epoch ≤ Epoch short. The replica
// acknowledges to AckTo so the controller can confirm the agreement
// before activating a replacement switch.
type LeaseRevoke struct {
	Epoch uint32
	AckTo simnet.NodeID
	ID    uint64 // correlates acks with revocations
}

// LeaseRevokeAck confirms a revocation.
type LeaseRevokeAck struct {
	Epoch   uint32
	ID      uint64
	Replica int
}

// HandleControl processes lease control messages; it reports whether
// the message was consumed.
func (b *Base) HandleControl(msg any) bool {
	switch m := msg.(type) {
	case LeaseGrant:
		b.Lease.Grant(m.Epoch, m.Expiry)
		return true
	case LeaseRevoke:
		b.Lease.Revoke(m.Epoch)
		b.Env.Send(m.AckTo, LeaseRevokeAck{Epoch: m.Epoch, ID: m.ID, Replica: b.Group.Self})
		return true
	}
	return false
}
