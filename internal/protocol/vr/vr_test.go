package vr

import (
	"testing"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/protocol/ptest"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func group(t *testing.T, n int, opts Options) (*ptest.Harness, []*Replica) {
	t.Helper()
	h := ptest.NewHarness(1)
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(i + 1)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		g := protocol.GroupConfig{Replicas: addrs, Self: i, F: (n - 1) / 2}
		reps[i] = New(h.Env(addrs[i], i), g, 8, opts)
		h.Register(addrs[i], reps[i])
	}
	return h, reps
}

func quiet() Options { return Options{} } // no timers: fully test-driven

func write(obj wire.ObjectID, n uint64, client uint32, req uint64, val string) *wire.Packet {
	return &wire.Packet{
		Op: wire.OpWrite, ObjID: obj, Seq: wire.Seq{Epoch: 1, N: n},
		ClientID: client, ReqID: req, Value: []byte(val),
	}
}

func read(obj wire.ObjectID, client uint32, req uint64) *wire.Packet {
	return &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: client, ReqID: req}
}

func TestWriteCommitsAtQuorum(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 1 {
		t.Fatalf("%d replies", len(replies))
	}
	if !replies[0].Seq.IsZero() {
		t.Fatal("read-behind reply must not piggyback a completion")
	}
	if reps[0].CommitNum() != 1 {
		t.Fatal("leader did not commit")
	}
	if o, ok := reps[0].Store.Get(7); !ok || string(o.Value) != "v1" {
		t.Fatal("leader did not execute")
	}
}

func TestCompletionAfterCommitAckQuorum(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// With synchronous delivery the commit broadcast already drove
	// backups to execute and commit-ack, so the completion must be
	// out.
	comps := h.SwitchPacketsOf(wire.OpWriteCompletion)
	if len(comps) != 1 {
		t.Fatalf("%d completions, want 1", len(comps))
	}
	if comps[0].ObjID != 7 || comps[0].Seq.N != 1 {
		t.Fatalf("completion = %v", comps[0])
	}
	// All replicas executed.
	for i, r := range reps {
		if o, ok := r.Store.Get(7); !ok || string(o.Value) != "v1" {
			t.Fatalf("replica %d not executed", i)
		}
	}
}

func TestCompletionHeldWhileBackupsLag(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Blackhole[2] = true
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// No quorum of PREPARE-OK: not even committed.
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 0 {
		t.Fatal("committed without quorum")
	}
	// One backup answers: commit + reply, but the completion is held
	// until EVERY live replica has executed (§7.3 delays completions
	// so fast reads rarely bounce).
	h.Blackhole[2] = false
	h.Inject(1, 2, prepare{View: 0, OpNum: 1, Entry: logEntry{Pkt: write(7, 1, 1, 1, "v1")}, CommitNum: 0})
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("no reply after quorum")
	}
	if got := len(h.SwitchPacketsOf(wire.OpWriteCompletion)); got != 0 {
		t.Fatalf("%d completions while a replica lags, want 0", got)
	}
	// Declaring the lagging replica dead releases the completion.
	reps[0].MarkDead(2)
	if got := len(h.SwitchPacketsOf(wire.OpWriteCompletion)); got != 1 {
		t.Fatalf("%d completions after MarkDead, want 1", got)
	}
}

func TestEagerCompletionAblation(t *testing.T) {
	h, _ := group(t, 3, Options{EagerCompletions: true})
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// Commit happens with one backup; eager mode emits the completion
	// at commit time without waiting for COMMIT-ACKs.
	if got := len(h.SwitchPacketsOf(wire.OpWriteCompletion)); got != 1 {
		t.Fatalf("%d completions in eager mode", got)
	}
}

func TestOutOfOrderSwitchSeqDropped(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Inject(100, 1, write(7, 5, 1, 1, "v5"))
	h.Inject(100, 1, write(8, 3, 2, 1, "stale"))
	if reps[0].opNum != 1 {
		t.Fatalf("opNum = %d, stale write entered the log", reps[0].opNum)
	}
}

func TestDuplicateWriteCached(t *testing.T) {
	h, _ := group(t, 3, quiet())
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, write(7, 2, 1, 1, "v1"))
	if got := len(h.SwitchPacketsOf(wire.OpWriteReply)); got != 2 {
		t.Fatalf("%d replies, want 2 (original + cached)", got)
	}
	if got := len(h.SwitchPacketsOf(wire.OpWriteCompletion)); got != 1 {
		t.Fatalf("duplicate produced an extra completion: %d", got)
	}
}

func TestLeaderServesNormalReads(t *testing.T) {
	h, _ := group(t, 3, quiet())
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("leader read = %v", rep)
	}
}

func TestNonLeaderForwardsClientOps(t *testing.T) {
	h, _ := group(t, 3, quiet())
	h.Inject(100, 2, write(7, 1, 1, 1, "v1")) // write misrouted to backup
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("misrouted write lost")
	}
	h.Inject(100, 3, read(7, 2, 1)) // read misrouted to backup
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("misrouted read lost")
	}
}

func TestFastReadVisibilityCheck(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Grant(1, time.Hour)
	// Write commits everywhere (synchronous harness).
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// A fast read stamped at the commit point is served by a backup.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr)
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("fast read rejected wrongly: %v", rep)
	}
	if reps[1].FastServed != 1 {
		t.Fatal("backup did not serve fast read")
	}
}

func TestFastReadRejectedAtLaggingReplica(t *testing.T) {
	// The §3 read-behind anomaly: a replica that has not executed a
	// committed write must not answer a fast read stamped past it.
	h, reps := group(t, 3, quiet())
	h.Grant(1, time.Hour)
	h.Blackhole[3] = true // replica 3 misses everything
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Blackhole[3] = false
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1} // switch knows write 1 committed
	h.Inject(100, 3, fr)
	if reps[2].FastRejected != 1 {
		t.Fatal("lagging replica served a stale fast read")
	}
	// The forwarded read reached the leader and returned fresh data.
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("forwarded read = %v", rep)
	}
}

func TestStateTransferCatchesUpLaggingReplica(t *testing.T) {
	h, reps := group(t, 3, quiet())
	h.Blackhole[3] = true
	for i := uint64(1); i <= 5; i++ {
		h.Inject(100, 1, write(wire.ObjectID(i), i, 1, i, "v"))
	}
	h.Blackhole[3] = false
	// Replica 3 sees the next prepare with a gap and state-transfers.
	h.Inject(100, 1, write(99, 6, 1, 6, "last"))
	if reps[2].opNum != 6 {
		t.Fatalf("lagging replica opNum = %d, want 6", reps[2].opNum)
	}
	if o, ok := reps[2].Store.Get(3); !ok || string(o.Value) != "v" {
		t.Fatal("state transfer did not replay missed writes")
	}
}

func TestViewChangeElectsNewLeaderAndPreservesCommits(t *testing.T) {
	h, reps := group(t, 3, DefaultOptions())
	h.Run(time.Millisecond) // let initial timers settle
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("write did not commit pre-failure")
	}
	// Kill the leader; the other two should elect replica 1 (view 1).
	h.Dead[1] = true
	h.Run(200 * time.Millisecond)
	if reps[1].View() == 0 || !reps[1].IsLeader() {
		t.Fatalf("no view change: view=%d leader=%v", reps[1].View(), reps[1].IsLeader())
	}
	if reps[2].View() != reps[1].View() {
		t.Fatalf("views diverge: %d vs %d", reps[1].View(), reps[2].View())
	}
	// Committed state survived.
	if o, ok := reps[1].Store.Get(7); !ok || string(o.Value) != "v1" {
		t.Fatal("committed write lost in view change")
	}
	// The new leader accepts writes.
	h.Inject(100, 2, write(8, 2, 2, 1, "v2"))
	h.Run(50 * time.Millisecond)
	if o, ok := reps[1].Store.Get(8); !ok || string(o.Value) != "v2" {
		t.Fatal("write after view change failed")
	}
	if o, ok := reps[2].Store.Get(8); !ok || string(o.Value) != "v2" {
		t.Fatal("backup missing post-view-change write")
	}
}

func TestViewChangeCallback(t *testing.T) {
	h, reps := group(t, 3, DefaultOptions())
	var gotView uint64
	var gotLeader int
	reps[1].OnViewChange = func(v uint64, l int) { gotView, gotLeader = v, l }
	h.Run(time.Millisecond)
	h.Dead[1] = true
	h.Run(200 * time.Millisecond)
	if gotView == 0 || gotLeader != 1 {
		t.Fatalf("callback not fired: view=%d leader=%d", gotView, gotLeader)
	}
}

func TestUncommittedOpSurvivesViewChangeViaQuorumLog(t *testing.T) {
	h, reps := group(t, 3, DefaultOptions())
	h.Run(time.Millisecond)
	// The write reaches backup 2 (quorum: commit) but backup 3 is
	// cut off from the leader's broadcast only — deliver manually.
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// Leader dies right after committing; backups hold the log entry.
	h.Dead[1] = true
	h.Run(200 * time.Millisecond)
	// New leader (replica 1) must retain and have executed the op.
	if o, ok := reps[1].Store.Get(7); !ok || string(o.Value) != "v1" {
		t.Fatal("committed op lost")
	}
	// Duplicate write after the view change is answered from cache,
	// not re-executed.
	applied := reps[1].Store.AppliedCount()
	h.Inject(100, 2, write(7, 2, 1, 1, "v1"))
	h.Run(20 * time.Millisecond)
	if reps[1].Store.AppliedCount() != applied {
		t.Fatal("duplicate re-executed after view change")
	}
}

func TestFiveReplicaQuorum(t *testing.T) {
	h, reps := group(t, 5, quiet())
	// Two replicas down: quorum of 3 still commits and replies.
	h.Blackhole[4] = true
	h.Blackhole[5] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("quorum of 3/5 did not commit")
	}
	// Completions wait for the crashed pair until they are declared
	// dead; then the live set (3/5, all executed) releases them.
	if len(h.SwitchPacketsOf(wire.OpWriteCompletion)) != 0 {
		t.Fatal("completion released while crashed replicas unconfirmed")
	}
	reps[0].MarkDead(3)
	reps[0].MarkDead(4)
	if len(h.SwitchPacketsOf(wire.OpWriteCompletion)) != 1 {
		t.Fatal("completion missing after dead replicas excluded")
	}
}

func TestHeartbeatDrivesLaggingExecution(t *testing.T) {
	h, reps := group(t, 3, DefaultOptions())
	// Suppress the commit broadcast to replica 3 momentarily by
	// blackholing, then let heartbeats catch it up.
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Blackhole[3] = false
	h.Run(50 * time.Millisecond)
	if o, ok := reps[2].Store.Get(7); !ok || string(o.Value) != "v1" {
		t.Fatal("heartbeat did not catch up the lagging replica")
	}
}
