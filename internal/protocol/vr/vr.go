// Package vr implements Viewstamped Replication (Oki & Liskov, PODC
// 1988; Liskov & Cowling's "VR Revisited" formulation) with the
// Harmonia adaptations of §7.3.
//
// VR is a leader-based quorum protocol equivalent to Multi-Paxos: the
// leader of the current view assigns op numbers, replicates via
// PREPARE/PREPARE-OK, commits at a majority, and executes committed
// operations in order. It is read-behind: replicas execute only
// committed writes, so fast-path reads need the visibility check — a
// replica answers locally only when it has executed at least up to the
// read's stamped last-committed point.
//
// Harmonia adds one phase: concurrently with replying to the client,
// the leader distributes the commit point; replicas acknowledge with
// COMMIT-ACK once they have executed it, and only when a quorum has
// acknowledged an operation does the leader send the WRITE-COMPLETION
// for it (delaying completions this way reduces rejected fast reads).
package vr

import (
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// logEntry is one slot in the replicated log.
type logEntry struct {
	Pkt *wire.Packet
}

// --- protocol messages ---

type prepare struct {
	View      uint64
	OpNum     uint64
	Entry     logEntry
	CommitNum uint64
}

// CostClass charges log append + eventual execution as a write.
func (prepare) CostClass() protocol.CostClass { return protocol.CostWrite }

type prepareOK struct {
	View    uint64
	OpNum   uint64
	Replica int
}

// CostClass marks the ack as control traffic.
func (prepareOK) CostClass() protocol.CostClass { return protocol.CostControl }

type commitMsg struct {
	View      uint64
	CommitNum uint64
}

// CostClass marks the commit notice as control traffic.
func (commitMsg) CostClass() protocol.CostClass { return protocol.CostControl }

// commitAck is the Harmonia extra phase (§7.3): the replica has
// executed everything up to ExecutedNum.
type commitAck struct {
	View        uint64
	ExecutedNum uint64
	Replica     int
}

// CostClass marks the ack as control traffic.
func (commitAck) CostClass() protocol.CostClass { return protocol.CostControl }

type startViewChange struct {
	View    uint64
	Replica int
}

// CostClass marks view-change traffic as control.
func (startViewChange) CostClass() protocol.CostClass { return protocol.CostControl }

type doViewChange struct {
	View           uint64
	Log            []logEntry
	LastNormalView uint64
	OpNum          uint64
	CommitNum      uint64
	Replica        int
}

// CostClass marks view-change traffic as control.
func (doViewChange) CostClass() protocol.CostClass { return protocol.CostControl }

type startView struct {
	View      uint64
	Log       []logEntry
	OpNum     uint64
	CommitNum uint64
}

// CostClass marks view-change traffic as control.
func (startView) CostClass() protocol.CostClass { return protocol.CostControl }

type getState struct {
	View    uint64
	OpNum   uint64
	Replica int
}

// CostClass marks state transfer as control traffic.
func (getState) CostClass() protocol.CostClass { return protocol.CostControl }

type newState struct {
	View      uint64
	FirstOp   uint64 // op number of Log[0]
	Log       []logEntry
	OpNum     uint64
	CommitNum uint64
}

// CostClass marks state transfer as control traffic.
func (newState) CostClass() protocol.CostClass { return protocol.CostControl }

// Options tune timers and the Harmonia completion policy.
type Options struct {
	// HeartbeatEvery is the leader's idle COMMIT cadence.
	HeartbeatEvery time.Duration
	// ViewChangeTimeout fires a view change when no leader traffic
	// arrives for this long. Zero disables automatic view changes
	// (benchmarks use a static, healthy group).
	ViewChangeTimeout time.Duration
	// EagerCompletions is the §7.3 ablation: send WRITE-COMPLETIONs at
	// commit time instead of waiting for a quorum of COMMIT-ACKs.
	EagerCompletions bool
}

// DefaultOptions returns sensible simulation timers.
func DefaultOptions() Options {
	return Options{HeartbeatEvery: 5 * time.Millisecond, ViewChangeTimeout: 25 * time.Millisecond}
}

// Replica is one VR group member.
type Replica struct {
	*protocol.Base
	opts Options

	view      uint64
	status    status
	log       []logEntry
	opNum     uint64
	commitNum uint64 // committed and (here) executed prefix

	lastSwitchSeq wire.Seq // §5.2 in-order guard at the leader

	// Leader bookkeeping.
	okAcks    map[uint64]map[int]bool // opNum → replicas that prepared
	execPoint []uint64                // per-replica executed op number (from commitAcks)
	completed uint64                  // ops for which WRITE-COMPLETION was sent
	dead      []bool                  // replicas excluded from the completion wait

	// View-change bookkeeping.
	svcVotes       map[uint64]map[int]bool
	dvcMsgs        map[uint64]map[int]doViewChange
	lastNormalView uint64

	// Timers.
	hbTimer sim.Timer
	vcTimer sim.Timer

	// OnViewChange, when set, is invoked after this replica enters a
	// new view in normal status (control-plane hook used by the
	// cluster to retarget the switch).
	OnViewChange func(view uint64, leader int)

	// Stats
	WritesCommitted uint64
	ReadsServed     uint64
	ViewChanges     uint64
}

// New builds a VR replica. The group must have 2F+1 members.
func New(env protocol.Env, g protocol.GroupConfig, shards int, opts Options) *Replica {
	r := &Replica{
		Base:      protocol.NewBase(env, g, protocol.ReadBehind, shards),
		opts:      opts,
		okAcks:    make(map[uint64]map[int]bool),
		execPoint: make([]uint64, g.N()),
		dead:      make([]bool, g.N()),
		svcVotes:  make(map[uint64]map[int]bool),
		dvcMsgs:   make(map[uint64]map[int]doViewChange),
	}
	r.armTimers()
	return r
}

// Leader returns the current view's leader index.
func (r *Replica) Leader() int { return int(r.view % uint64(r.Group.N())) }

// IsLeader reports whether this replica leads the current view.
func (r *Replica) IsLeader() bool { return r.Leader() == r.Group.Self }

// View returns the current view number (tests).
func (r *Replica) View() uint64 { return r.view }

// CommitNum returns the executed prefix length (tests).
func (r *Replica) CommitNum() uint64 { return r.commitNum }

func (r *Replica) leaderAddr() simnet.NodeID { return r.Group.Addr(r.Leader()) }

func (r *Replica) armTimers() {
	if r.opts.HeartbeatEvery > 0 && r.IsLeader() {
		r.hbTimer = r.Env.After(r.opts.HeartbeatEvery, r.heartbeat)
	}
	if r.opts.ViewChangeTimeout > 0 && !r.IsLeader() {
		r.vcTimer = r.Env.After(r.opts.ViewChangeTimeout, r.leaderTimeout)
	}
}

func (r *Replica) heartbeat() {
	if r.status == statusNormal && r.IsLeader() {
		r.broadcast(commitMsg{View: r.view, CommitNum: r.commitNum})
	}
	if r.opts.HeartbeatEvery > 0 && r.IsLeader() {
		r.hbTimer = r.Env.After(r.opts.HeartbeatEvery, r.heartbeat)
	}
}

// touchLeader resets the view-change timeout on live leader traffic.
func (r *Replica) touchLeader() {
	r.vcTimer.Stop()
	if r.opts.ViewChangeTimeout > 0 && !r.IsLeader() {
		r.vcTimer = r.Env.After(r.opts.ViewChangeTimeout, r.leaderTimeout)
	}
}

func (r *Replica) leaderTimeout() {
	if r.IsLeader() {
		return
	}
	r.startViewChange(r.view + 1)
}

func (r *Replica) broadcast(msg any) {
	for i := 0; i < r.Group.N(); i++ {
		if i != r.Group.Self {
			r.Env.Send(r.Group.Addr(i), msg)
		}
	}
}

// Recv implements simnet.Handler.
func (r *Replica) Recv(from simnet.NodeID, msg simnet.Message) {
	if r.HandleControl(msg) {
		return
	}
	switch m := msg.(type) {
	case *wire.Packet:
		r.recvPacket(m)
	case prepare:
		r.recvPrepare(m)
	case prepareOK:
		r.recvPrepareOK(m)
	case commitMsg:
		r.recvCommit(m)
	case commitAck:
		r.recvCommitAck(m)
	case startViewChange:
		r.recvStartViewChange(m)
	case doViewChange:
		r.recvDoViewChange(m)
	case startView:
		r.recvStartView(m)
	case getState:
		r.recvGetState(m)
	case newState:
		r.recvNewState(m)
	}
}

// --- client requests ---

func (r *Replica) recvPacket(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		if r.status != statusNormal {
			pkt.Release() // client retries after the view change settles
			return
		}
		if !r.IsLeader() {
			r.Env.Send(r.leaderAddr(), pkt)
			return
		}
		r.leaderWrite(pkt)
	case wire.OpRead:
		if pkt.Flags&wire.FlagFastPath != 0 {
			target := protocol.Target(r.leaderAddr())
			if r.IsLeader() {
				target = protocol.TargetSelf()
			}
			if r.HandleFastRead(pkt, target) {
				r.leaderRead(pkt)
			}
			return
		}
		if r.status != statusNormal {
			pkt.Release()
			return
		}
		if !r.IsLeader() {
			r.Env.Send(r.leaderAddr(), pkt)
			return
		}
		r.leaderRead(pkt)
	}
}

func (r *Replica) leaderWrite(pkt *wire.Packet) {
	execute, cached := r.CT.Admit(pkt.ClientID, pkt.ReqID)
	if !execute {
		if cached != nil {
			r.Env.SendSwitch(cached.FlightClone())
		}
		pkt.Release() // duplicate fully handled
		return
	}
	// §5.2 write-order requirement, enforced at log entry.
	if !r.lastSwitchSeq.Less(pkt.Seq) {
		pkt.Release()
		return
	}
	r.lastSwitchSeq = pkt.Seq
	r.opNum++
	// The log keeps the delivery reference for the replica's lifetime:
	// VR never truncates, and view changes share log entries wholesale
	// (doViewChange/startView/newState copy the slices, not the
	// packets). Because a log-held packet's count can therefore never
	// reach zero, sharing the entry across the prepare broadcast and
	// the view-change messages needs no per-share Retain.
	r.log = append(r.log, logEntry{Pkt: pkt})
	r.okAcks[r.opNum] = map[int]bool{r.Group.Self: true}
	r.broadcast(prepare{View: r.view, OpNum: r.opNum, Entry: logEntry{Pkt: pkt}, CommitNum: r.commitNum})
	r.maybeCommit(r.opNum) // 1-replica group commits immediately
}

// leaderRead serves a normal-path read from executed (committed) state
// under the leader lease.
func (r *Replica) leaderRead(pkt *wire.Packet) {
	r.ReadsServed++
	r.Env.SendSwitch(r.ReadReply(pkt))
	pkt.Release()
}

// --- normal-case replication ---

func (r *Replica) recvPrepare(m prepare) {
	if m.View < r.view || r.status != statusNormal {
		return
	}
	if m.View > r.view {
		r.stateTransfer(m.View, m.OpNum)
		return
	}
	r.touchLeader()
	switch {
	case m.OpNum == r.opNum+1:
		r.opNum++
		r.log = append(r.log, m.Entry)
		r.Env.Send(r.leaderAddr(), prepareOK{View: r.view, OpNum: r.opNum, Replica: r.Group.Self})
	case m.OpNum > r.opNum+1:
		// Missed entries: fetch them rather than acknowledging a gap.
		r.stateTransfer(r.view, m.OpNum)
		return
	default:
		// Duplicate of an entry we have; re-ack it.
		r.Env.Send(r.leaderAddr(), prepareOK{View: r.view, OpNum: m.OpNum, Replica: r.Group.Self})
	}
	r.executeUpTo(m.CommitNum)
}

func (r *Replica) recvPrepareOK(m prepareOK) {
	if m.View != r.view || !r.IsLeader() {
		return
	}
	acks, ok := r.okAcks[m.OpNum]
	if !ok {
		return
	}
	acks[m.Replica] = true
	r.maybeCommit(m.OpNum)
}

func (r *Replica) maybeCommit(opNum uint64) {
	if opNum != r.commitNum+1 {
		// Commit strictly in order; a quorum for a later op implies
		// earlier ones were prepared at those replicas too, but we
		// advance one at a time for clarity — earlier acks arrive
		// first in practice and the loop below re-drives.
		opNum = r.commitNum + 1
	}
	for opNum <= r.opNum {
		acks := r.okAcks[opNum]
		if len(acks) < r.Group.Quorum() {
			return
		}
		r.commitNum = opNum
		delete(r.okAcks, opNum)
		r.executeOne(opNum)
		entry := r.log[opNum-1]
		rep := r.WriteReply(entry.Pkt, false) // completions are separate in read-behind
		r.CT.Complete(entry.Pkt.ClientID, entry.Pkt.ReqID, rep)
		r.Env.SendSwitch(rep)
		r.WritesCommitted++
		r.execPoint[r.Group.Self] = r.commitNum
		if r.opts.EagerCompletions {
			r.Env.SendSwitch(r.Completion(entry.Pkt.ObjID, entry.Pkt.Seq))
			r.completed = r.commitNum
		}
		r.broadcast(commitMsg{View: r.view, CommitNum: r.commitNum})
		r.advanceCompletions()
		opNum++
	}
}

// executeOne applies the op at opNum to the store.
func (r *Replica) executeOne(opNum uint64) {
	pkt := r.log[opNum-1].Pkt
	// Apply can only fail on sequence regression, which cannot happen
	// for a log executed in order with leader-enforced seq monotony;
	// a failure here would be a protocol bug, so surface it loudly.
	if err := r.Store.Apply(pkt.ObjID, pkt.Value, pkt.Seq, pkt.Flags&wire.FlagDelete != 0); err != nil {
		panic("vr: out-of-order execution: " + err.Error())
	}
	// Keep the client table warm at every replica so any future
	// leader can answer duplicates. The table takes its own reference;
	// this replica never sends the reply, so its own is dropped.
	if !r.IsLeader() {
		rep := r.WriteReply(pkt, false)
		r.CT.Complete(pkt.ClientID, pkt.ReqID, rep)
		rep.Release()
	}
}

// executeUpTo executes committed ops at a backup and sends the
// Harmonia COMMIT-ACK for its new execution point.
func (r *Replica) executeUpTo(commitNum uint64) {
	if commitNum > r.opNum {
		commitNum = r.opNum
	}
	advanced := false
	for r.commitNum < commitNum {
		r.commitNum++
		r.executeOne(r.commitNum)
		advanced = true
	}
	if advanced && !r.IsLeader() {
		r.Env.Send(r.leaderAddr(), commitAck{View: r.view, ExecutedNum: r.commitNum, Replica: r.Group.Self})
	}
}

func (r *Replica) recvCommit(m commitMsg) {
	if m.View != r.view || r.status != statusNormal {
		if m.View > r.view {
			r.stateTransfer(m.View, m.CommitNum)
		}
		return
	}
	r.touchLeader()
	if m.CommitNum > r.opNum {
		r.stateTransfer(r.view, m.CommitNum)
		return
	}
	before := r.commitNum
	r.executeUpTo(m.CommitNum)
	// Liveness: when an idle heartbeat repeats a stale commit point
	// while we hold uncommitted suffix entries, our PREPARE-OKs were
	// probably lost — re-ack them. Restricting this to non-advancing
	// heartbeats keeps the leader from drowning in redundant acks
	// during normal pipelined operation.
	if r.commitNum == before && r.opNum > r.commitNum {
		for op := r.commitNum + 1; op <= r.opNum; op++ {
			r.Env.Send(r.leaderAddr(), prepareOK{View: r.view, OpNum: op, Replica: r.Group.Self})
		}
	}
}

// recvCommitAck advances the completion point: once a quorum of
// replicas (including the leader) has executed op n, its
// WRITE-COMPLETION is released to the switch (§7.3).
func (r *Replica) recvCommitAck(m commitAck) {
	if m.View != r.view || !r.IsLeader() {
		return
	}
	if m.ExecutedNum > r.execPoint[m.Replica] {
		r.execPoint[m.Replica] = m.ExecutedNum
	}
	r.advanceCompletions()
}

// completionPoint returns the highest op executed by every live
// replica. §7.3 delays WRITE-COMPLETIONs "until the write has likely
// been executed on all replicas" — releasing them at a mere quorum
// leaves the minority chronically behind the commit stamp, so the
// switch's fast-path reads bounce off it and pile onto the leader.
// Crashed replicas are excluded via MarkDead so completions (and with
// them the fast path) survive failures.
func (r *Replica) completionPoint() uint64 {
	min := ^uint64(0)
	live := 0
	for i, p := range r.execPoint {
		if r.dead[i] {
			continue
		}
		live++
		if p < min {
			min = p
		}
	}
	if live == 0 {
		return 0
	}
	return min
}

// MarkDead excludes a crashed replica from the completion wait (§5.3
// server-failure handling; the cluster controller invokes it alongside
// removing the replica from the switch's address set).
func (r *Replica) MarkDead(i int) {
	if i >= 0 && i < len(r.dead) {
		r.dead[i] = true
		r.advanceCompletions()
	}
}

func (r *Replica) advanceCompletions() {
	if r.opts.EagerCompletions {
		return
	}
	target := r.completionPoint()
	for r.completed < target {
		r.completed++
		pkt := r.log[r.completed-1].Pkt
		r.Env.SendSwitch(r.Completion(pkt.ObjID, pkt.Seq))
	}
}

// --- state transfer ---

func (r *Replica) stateTransfer(view, hint uint64) {
	_ = hint
	r.Env.Send(r.leaderFor(view), getState{View: view, OpNum: r.opNum, Replica: r.Group.Self})
}

func (r *Replica) leaderFor(view uint64) simnet.NodeID {
	return r.Group.Addr(int(view % uint64(r.Group.N())))
}

func (r *Replica) recvGetState(m getState) {
	if m.View != r.view || r.status != statusNormal || !r.IsLeader() {
		return
	}
	first := m.OpNum + 1
	var suffix []logEntry
	if first <= r.opNum {
		suffix = append(suffix, r.log[first-1:]...)
	}
	r.Env.Send(r.Group.Addr(m.Replica), newState{
		View: r.view, FirstOp: first, Log: suffix, OpNum: r.opNum, CommitNum: r.commitNum,
	})
}

func (r *Replica) recvNewState(m newState) {
	if m.View < r.view {
		return
	}
	if m.View > r.view {
		r.enterView(m.View)
	}
	if m.FirstOp != r.opNum+1 {
		return // stale response; a newer transfer is in flight
	}
	r.log = append(r.log, m.Log...)
	r.opNum = m.OpNum
	r.executeUpTo(m.CommitNum)
	r.touchLeader()
}

// --- view changes ---

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	if r.status == statusNormal {
		r.lastNormalView = r.view
	}
	r.view = newView
	r.status = statusViewChange
	r.ViewChanges++
	r.voteSVC(newView, r.Group.Self)
	r.broadcast(startViewChange{View: newView, Replica: r.Group.Self})
	// Re-arm the timeout: if this view change stalls, try the next.
	r.vcTimer.Stop()
	if r.opts.ViewChangeTimeout > 0 {
		r.vcTimer = r.Env.After(r.opts.ViewChangeTimeout, func() {
			if r.status == statusViewChange {
				r.startViewChange(r.view + 1)
			}
		})
	}
}

func (r *Replica) voteSVC(view uint64, replica int) bool {
	votes, ok := r.svcVotes[view]
	if !ok {
		votes = make(map[int]bool)
		r.svcVotes[view] = votes
	}
	votes[replica] = true
	return len(votes) >= r.Group.Quorum()
}

func (r *Replica) recvStartViewChange(m startViewChange) {
	if m.View < r.view {
		return
	}
	if m.View > r.view {
		r.startViewChange(m.View)
	}
	if r.voteSVC(m.View, m.Replica) && r.status == statusViewChange {
		// Send DO-VIEW-CHANGE to the new leader once a quorum agrees.
		lead := int(m.View % uint64(r.Group.N()))
		dvc := doViewChange{
			View: m.View, Log: append([]logEntry(nil), r.log...),
			LastNormalView: r.lastNormalView, OpNum: r.opNum,
			CommitNum: r.commitNum, Replica: r.Group.Self,
		}
		if lead == r.Group.Self {
			r.recvDoViewChange(dvc)
		} else {
			r.Env.Send(r.Group.Addr(lead), dvc)
		}
	}
}

func (r *Replica) recvDoViewChange(m doViewChange) {
	if m.View < r.view {
		return
	}
	if m.View > r.view {
		r.startViewChange(m.View)
	}
	if int(m.View%uint64(r.Group.N())) != r.Group.Self {
		return
	}
	msgs, ok := r.dvcMsgs[m.View]
	if !ok {
		msgs = make(map[int]doViewChange)
		r.dvcMsgs[m.View] = msgs
	}
	msgs[m.Replica] = m
	if len(msgs) < r.Group.Quorum() || r.status != statusViewChange {
		return
	}
	// Choose the log from the replica with the largest
	// (lastNormalView, opNum).
	best := m
	for _, cand := range msgs {
		if cand.LastNormalView > best.LastNormalView ||
			(cand.LastNormalView == best.LastNormalView && cand.OpNum > best.OpNum) {
			best = cand
		}
	}
	maxCommit := uint64(0)
	for _, cand := range msgs {
		if cand.CommitNum > maxCommit {
			maxCommit = cand.CommitNum
		}
	}
	r.adoptLog(best.Log, best.OpNum)
	r.status = statusNormal
	delete(r.dvcMsgs, m.View)
	r.broadcast(startView{View: r.view, Log: append([]logEntry(nil), r.log...), OpNum: r.opNum, CommitNum: maxCommit})
	// Re-prepare uncommitted suffix bookkeeping.
	for op := maxCommit + 1; op <= r.opNum; op++ {
		r.okAcks[op] = map[int]bool{r.Group.Self: true}
	}
	r.executeUpTo(maxCommit)
	r.execPoint[r.Group.Self] = r.commitNum
	r.armTimers()
	if r.OnViewChange != nil {
		r.OnViewChange(r.view, r.Group.Self)
	}
	// Drive commits for the re-prepared suffix (others will ack).
	r.maybeCommit(r.commitNum + 1)
}

func (r *Replica) recvStartView(m startView) {
	if m.View < r.view {
		return
	}
	r.view = m.View
	r.adoptLog(m.Log, m.OpNum)
	r.status = statusNormal
	r.lastNormalView = m.View
	// Acknowledge the uncommitted suffix to the new leader.
	for op := m.CommitNum + 1; op <= r.opNum; op++ {
		r.Env.Send(r.leaderAddr(), prepareOK{View: r.view, OpNum: op, Replica: r.Group.Self})
	}
	r.executeUpTo(m.CommitNum)
	r.armTimers()
	r.touchLeader()
	if r.OnViewChange != nil {
		r.OnViewChange(r.view, r.Leader())
	}
}

// adoptLog installs a log from a view change, re-executing nothing:
// execution state is preserved because commitNum only moves forward
// and logs agree on committed prefixes.
func (r *Replica) adoptLog(log []logEntry, opNum uint64) {
	r.log = append(r.log[:0], log...)
	r.opNum = opNum
	if r.opNum > 0 {
		// Restore the switch-seq guard from the log tail.
		r.lastSwitchSeq = r.log[r.opNum-1].Pkt.Seq
	}
	r.enterViewBookkeeping()
}

func (r *Replica) enterView(view uint64) {
	r.view = view
	r.status = statusNormal
	r.lastNormalView = view
	r.enterViewBookkeeping()
	r.armTimers()
}

func (r *Replica) enterViewBookkeeping() {
	for k := range r.okAcks {
		delete(r.okAcks, k)
	}
}
