// Package craq implements CRAQ (Terrace & Freedman, USENIX ATC 2009),
// the protocol-level alternative to Harmonia that the paper compares
// against in §9.5.
//
// CRAQ extends chain replication so any node can serve reads: every
// node keeps, per object, the latest clean (committed) version plus any
// newer dirty versions. Writes run in two phases — a down-chain
// propagation that marks the object dirty at each node, then an
// up-chain commit acknowledgment that marks it clean — which is the
// extra write cost Harmonia avoids by moving conflict tracking into the
// switch. A read of a dirty object triggers a version query to the
// tail and returns the committed version.
//
// CRAQ runs without any switch assistance: the cluster harness routes
// reads to a uniformly random replica (client-side load balancing).
package craq

import (
	"harmonia/internal/protocol"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// version is one entry in an object's version list.
type version struct {
	n     uint64 // version number (the write's sequence counter)
	value []byte
	del   bool
	clean bool
}

// object is a per-key version list, oldest first. Invariant: at most
// the first entry is clean; all later entries are dirty.
type object struct {
	versions []version
}

// latest returns the newest version (clean or dirty).
func (o *object) latest() *version {
	if len(o.versions) == 0 {
		return nil
	}
	return &o.versions[len(o.versions)-1]
}

// at returns the version with number n, or nil.
func (o *object) at(n uint64) *version {
	for i := range o.versions {
		if o.versions[i].n == n {
			return &o.versions[i]
		}
	}
	return nil
}

// commitUpTo marks the version with number n clean and discards older
// versions.
func (o *object) commitUpTo(n uint64) {
	idx := -1
	for i := range o.versions {
		if o.versions[i].n == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	o.versions = o.versions[idx:]
	o.versions[0].clean = true
}

// propagate carries a write down the chain (phase 1: mark dirty).
type propagate struct {
	Pkt *wire.Packet
}

// CostClass marks phase 1 as a full write.
func (propagate) CostClass() protocol.CostClass { return protocol.CostWrite }

// commitAck flows up the chain (phase 2: mark clean). CRAQ's extra
// phase does real per-object work at every node — locating the
// version, committing it, garbage-collecting predecessors — so it is
// charged as a write, which is what halves CRAQ's write throughput
// relative to chain replication in Fig. 9(a).
type commitAck struct {
	ObjID wire.ObjectID
	N     uint64
}

// CostClass charges the commit phase like a write.
func (commitAck) CostClass() protocol.CostClass { return protocol.CostWrite }

// versionQuery asks the tail for an object's committed version number.
type versionQuery struct {
	ObjID wire.ObjectID
	From  simnet.NodeID
	Pkt   *wire.Packet // the pending read, echoed back opaquely
}

// CostClass marks the query as control traffic at the tail.
func (versionQuery) CostClass() protocol.CostClass { return protocol.CostControl }

// versionReply answers a versionQuery.
type versionReply struct {
	ObjID wire.ObjectID
	N     uint64
	Found bool
	Pkt   *wire.Packet
}

// CostClass marks the reply as control traffic.
func (versionReply) CostClass() protocol.CostClass { return protocol.CostControl }

// Replica is one CRAQ chain node.
type Replica struct {
	env   protocol.Env
	group protocol.GroupConfig
	ct    *protocol.ClientTable

	objects map[wire.ObjectID]*object
	lastVer uint64 // in-order apply guard (§5.2 carries over)

	// slotCount tracks live object entries per routing slot, maintained
	// at entry creation/removal so the rebalancer's occupancy sampling
	// needs no scan (the map-backed store keeps the same counter).
	slotCount [wire.NumSlots]int32

	next, prev int

	// Stats
	WritesCommitted uint64
	CleanReads      uint64
	DirtyReads      uint64 // reads that needed a tail version query
}

// ClientTable exposes the at-most-once table for state transfer
// (migration handoffs move it with the objects).
func (r *Replica) ClientTable() *protocol.ClientTable { return r.ct }

// New builds a CRAQ node.
func New(env protocol.Env, g protocol.GroupConfig, _ int) *Replica {
	r := &Replica{
		env:     env,
		group:   g,
		ct:      protocol.NewClientTable(),
		objects: make(map[wire.ObjectID]*object),
		next:    g.Self + 1,
		prev:    g.Self - 1,
	}
	if r.next >= g.N() {
		r.next = -1
	}
	return r
}

// IsHead and IsTail report chain position.
func (r *Replica) IsHead() bool { return r.group.Self == 0 }

// IsTail reports whether this node is the tail.
func (r *Replica) IsTail() bool { return r.group.Self == r.group.N()-1 }

func (r *Replica) obj(id wire.ObjectID) *object {
	o, ok := r.objects[id]
	if !ok {
		o = &object{}
		r.objects[id] = o
		r.slotCount[wire.SlotOf(id)]++
	}
	return o
}

// Recv implements simnet.Handler.
func (r *Replica) Recv(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *wire.Packet:
		r.recvPacket(m)
	case propagate:
		r.recvPropagate(m.Pkt)
	case commitAck:
		r.recvCommit(m)
	case versionQuery:
		r.recvVersionQuery(m)
	case versionReply:
		r.recvVersionReply(m)
	}
}

func (r *Replica) recvPacket(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		if r.IsHead() {
			r.headWrite(pkt)
			return
		}
		pkt.Release() // writes to a non-head are a routing error
	case wire.OpRead:
		r.readAnywhere(pkt)
	}
}

// headWrite starts phase 1.
func (r *Replica) headWrite(pkt *wire.Packet) {
	execute, _ := r.ct.Admit(pkt.ClientID, pkt.ReqID)
	if !execute {
		// Ask the tail to re-reply from its cache (same approach as
		// package chain).
		r.env.Send(r.group.Addr(r.group.N()-1), versionQuery{
			ObjID: pkt.ObjID, From: r.env.ID(),
			Pkt: &wire.Packet{Op: wire.OpWrite, Group: pkt.Group, ClientID: pkt.ClientID, ReqID: pkt.ReqID},
		})
		pkt.Release() // duplicate fully handled
		return
	}
	r.applyDirty(pkt)
}

// recvPropagate applies phase 1 at a non-head node.
func (r *Replica) recvPropagate(pkt *wire.Packet) { r.applyDirty(pkt) }

// applyDirty appends a dirty version and moves the write along.
func (r *Replica) applyDirty(pkt *wire.Packet) {
	if pkt.Seq.N <= r.lastVer {
		pkt.Release() // out-of-order write discarded
		return
	}
	r.lastVer = pkt.Seq.N
	o := r.obj(pkt.ObjID)
	o.versions = append(o.versions, version{
		n:     pkt.Seq.N,
		value: append([]byte(nil), pkt.Value...),
		del:   pkt.Flags&wire.FlagDelete != 0,
	})
	if r.IsTail() {
		r.commitAtTail(pkt, o)
		return
	}
	r.env.Send(r.group.Addr(r.next), propagate{Pkt: pkt})
}

// commitAtTail finishes the write: the tail marks it clean immediately
// and starts phase 2 upstream.
func (r *Replica) commitAtTail(pkt *wire.Packet, o *object) {
	o.commitUpTo(pkt.Seq.N)
	r.WritesCommitted++
	// The reply carries the write's sequence number so the switch on
	// the return path clears the object from its dirty set. CRAQ takes
	// no read assistance from the switch, but the switch still
	// sequences CRAQ's writes (the version numbers used here), and the
	// dirty set is the quiescence signal slot migration drains on — a
	// reply without the piggyback would leave entries nothing clears.
	rep := wire.NewPacket()
	rep.Op = wire.OpWriteReply
	rep.ObjID = pkt.ObjID
	rep.Group = pkt.Group
	rep.ClientID = pkt.ClientID
	rep.ReqID = pkt.ReqID
	rep.Key = pkt.Key
	rep.Seq = pkt.Seq
	r.ct.Complete(pkt.ClientID, pkt.ReqID, rep)
	r.env.SendSwitch(rep)
	if r.prev >= 0 {
		r.env.Send(r.group.Addr(r.prev), commitAck{ObjID: pkt.ObjID, N: pkt.Seq.N})
	}
	pkt.Release() // the tail's apply committed the write; version list holds a copy
}

// recvCommit applies phase 2 and relays it upstream.
func (r *Replica) recvCommit(m commitAck) {
	r.obj(m.ObjID).commitUpTo(m.N)
	if r.prev >= 0 {
		r.env.Send(r.group.Addr(r.prev), commitAck{ObjID: m.ObjID, N: m.N})
	}
}

// readAnywhere serves a read at this node: clean objects answer
// immediately; dirty objects require the tail's committed version.
func (r *Replica) readAnywhere(pkt *wire.Packet) {
	o, ok := r.objects[pkt.ObjID]
	if !ok || len(o.versions) == 0 {
		r.CleanReads++
		r.env.SendSwitch(r.notFound(pkt))
		pkt.Release()
		return
	}
	v := o.latest()
	if v.clean {
		r.CleanReads++
		r.env.SendSwitch(r.replyWith(pkt, v))
		pkt.Release()
		return
	}
	if r.IsTail() {
		// The tail's view is authoritative: its latest version is
		// committed by construction once commitUpTo ran; a dirty
		// latest here means the write is mid-commit, which cannot
		// happen at the tail (it commits on apply). Answer clean.
		r.CleanReads++
		r.env.SendSwitch(r.replyWith(pkt, v))
		pkt.Release()
		return
	}
	r.DirtyReads++
	r.env.Send(r.group.Addr(r.group.N()-1), versionQuery{
		ObjID: pkt.ObjID, From: r.env.ID(), Pkt: pkt,
	})
}

// recvVersionQuery answers at the tail with the committed version
// number (or re-replies to a duplicate write probe).
func (r *Replica) recvVersionQuery(m versionQuery) {
	if m.Pkt != nil && m.Pkt.Op == wire.OpWrite {
		// Duplicate-write probe from the head.
		if cached := r.ct.Cached(m.Pkt.ClientID, m.Pkt.ReqID); cached != nil {
			r.env.SendSwitch(cached.FlightClone())
		}
		m.Pkt.Release()
		return
	}
	o, ok := r.objects[m.ObjID]
	if !ok || len(o.versions) == 0 {
		r.env.Send(m.From, versionReply{ObjID: m.ObjID, Found: false, Pkt: m.Pkt})
		return
	}
	r.env.Send(m.From, versionReply{ObjID: m.ObjID, N: o.latest().n, Found: true, Pkt: m.Pkt})
}

// recvVersionReply finishes a dirty read with the tail's committed
// version.
func (r *Replica) recvVersionReply(m versionReply) {
	if m.Pkt == nil {
		return
	}
	defer m.Pkt.Release() // the pending read terminates here
	if !m.Found {
		r.env.SendSwitch(r.notFound(m.Pkt))
		return
	}
	o := r.obj(m.ObjID)
	v := o.at(m.N)
	if v == nil {
		// The committed version has been superseded here by newer
		// committed state (our commitUpTo garbage-collected it). The
		// oldest retained version is then at least as new and
		// committed; serve it.
		if len(o.versions) == 0 {
			r.env.SendSwitch(r.notFound(m.Pkt))
			return
		}
		v = &o.versions[0]
	}
	r.env.SendSwitch(r.replyWith(m.Pkt, v))
}

func (r *Replica) replyWith(pkt *wire.Packet, v *version) *wire.Packet {
	rep := wire.NewPacket()
	rep.Op = wire.OpReadReply
	rep.ObjID = pkt.ObjID
	rep.Group = pkt.Group
	rep.ClientID = pkt.ClientID
	rep.ReqID = pkt.ReqID
	rep.Key = pkt.Key
	if v.del {
		rep.Flags |= wire.FlagNotFound
	} else {
		rep.Value = append([]byte(nil), v.value...)
	}
	return rep
}

func (r *Replica) notFound(pkt *wire.Packet) *wire.Packet {
	rep := wire.NewPacket()
	rep.Op = wire.OpReadReply
	rep.Flags = wire.FlagNotFound
	rep.ObjID = pkt.ObjID
	rep.Group = pkt.Group
	rep.ClientID = pkt.ClientID
	rep.ReqID = pkt.ReqID
	rep.Key = pkt.Key
	return rep
}

// PreloadClean installs a committed version directly, used by the
// cluster harness to warm the key space before measurement.
func (r *Replica) PreloadClean(id wire.ObjectID, value []byte, verN uint64) {
	o := r.obj(id)
	o.versions = []version{{n: verN, value: append([]byte(nil), value...), clean: true}}
	if verN > r.lastVer {
		r.lastVer = verN
	}
}

// ExtractSlotClean returns the newest committed (clean) version of
// every live object in the given routing slot: value plus version
// number, with deleted objects omitted. Dirty versions are skipped —
// a slot handoff runs only after the slot drained, at which point the
// latest version of each of its objects is committed everywhere.
func (r *Replica) ExtractSlotClean(slot int) map[wire.ObjectID]struct {
	Value []byte
	N     uint64
} {
	out := make(map[wire.ObjectID]struct {
		Value []byte
		N     uint64
	})
	for id, o := range r.objects {
		if wire.SlotOf(id) != slot || len(o.versions) == 0 {
			continue
		}
		v := o.latest()
		if v.del {
			continue
		}
		out[id] = struct {
			Value []byte
			N     uint64
		}{Value: v.value, N: v.n}
	}
	return out
}

// DropSlot removes every object in the routing slot (handoff source
// cleanup after the route flipped), returning the count.
func (r *Replica) DropSlot(slot int) int {
	n := 0
	for id := range r.objects {
		if wire.SlotOf(id) == slot {
			delete(r.objects, id)
			n++
		}
	}
	r.slotCount[slot] -= int32(n)
	return n
}

// SlotCounts returns a copy of the per-slot object-entry counters —
// CRAQ's occupancy input to the rebalancer's ObjectCost veto. Entries
// whose latest version is a deletion are still counted (they occupy
// version storage until dropped), which keeps the counter O(1) and is
// exactly the occupancy a handoff copy would pay for.
func (r *Replica) SlotCounts() []int {
	out := make([]int, wire.NumSlots)
	for slot, n := range r.slotCount {
		out[slot] = int(n)
	}
	return out
}

// VersionCount reports the number of retained versions for an object
// (tests).
func (r *Replica) VersionCount(id wire.ObjectID) int {
	if o, ok := r.objects[id]; ok {
		return len(o.versions)
	}
	return 0
}
