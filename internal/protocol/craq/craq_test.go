package craq

import (
	"testing"

	"harmonia/internal/protocol"
	"harmonia/internal/protocol/ptest"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func group(t *testing.T, n int) (*ptest.Harness, []*Replica) {
	t.Helper()
	h := ptest.NewHarness(1)
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(i + 1)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		g := protocol.GroupConfig{Replicas: addrs, Self: i}
		reps[i] = New(h.Env(addrs[i], i), g, 8)
		h.Register(addrs[i], reps[i])
	}
	return h, reps
}

func write(obj wire.ObjectID, n uint64, client uint32, req uint64, val string) *wire.Packet {
	return &wire.Packet{
		Op: wire.OpWrite, ObjID: obj, Seq: wire.Seq{Epoch: 1, N: n},
		ClientID: client, ReqID: req, Value: []byte(val),
	}
}

func read(obj wire.ObjectID, client uint32, req uint64) *wire.Packet {
	return &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: client, ReqID: req}
}

func TestWriteTwoPhaseCommit(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	rep := h.LastToSwitch()
	if rep == nil || rep.Op != wire.OpWriteReply {
		t.Fatal("no reply from tail")
	}
	// Phase 2 completed: every node holds exactly one clean version.
	for i, r := range reps {
		if r.VersionCount(7) != 1 {
			t.Fatalf("node %d retains %d versions", i, r.VersionCount(7))
		}
		if v := r.obj(7).latest(); !v.clean {
			t.Fatalf("node %d version dirty after commit", i)
		}
	}
}

func TestCleanReadServedLocally(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	for i := 1; i <= 3; i++ {
		h.Inject(100, simnet.NodeID(i), read(7, 2, uint64(i)))
		rep := h.LastToSwitch()
		if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
			t.Fatalf("clean read at node %d failed", i)
		}
	}
	if reps[0].CleanReads != 1 || reps[1].CleanReads != 1 || reps[2].CleanReads != 1 {
		t.Fatal("clean reads not served at each node")
	}
}

func TestDirtyReadQueriesTailAndReturnsCommitted(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "old"))
	// Stall phase 1 before the tail: mid node has a dirty version.
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 2, 1, 2, "new"))
	h.Blackhole[3] = false
	if got := reps[1].VersionCount(7); got != 2 {
		t.Fatalf("mid retains %d versions, want 2 (clean old + dirty new)", got)
	}
	// A read at the mid node must return the committed "old" value via
	// a tail version query — not the dirty "new" one.
	h.Inject(100, 2, read(7, 3, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "old" {
		t.Fatalf("dirty read returned %q, want committed \"old\"", rep.Value)
	}
	if reps[1].DirtyReads != 1 {
		t.Fatal("dirty read not counted")
	}
}

func TestReadMissingObject(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 2, read(42, 1, 1))
	rep := h.LastToSwitch()
	if rep.Flags&wire.FlagNotFound == 0 {
		t.Fatal("missing object not flagged")
	}
}

func TestDeleteVisibleAsNotFound(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	del := write(7, 2, 1, 2, "")
	del.Flags |= wire.FlagDelete
	h.Inject(100, 1, del)
	h.Inject(100, 2, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Flags&wire.FlagNotFound == 0 {
		t.Fatal("deleted object still readable")
	}
}

func TestOutOfOrderWriteDiscarded(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 5, 1, 1, "v5"))
	h.Inject(100, 1, write(8, 3, 2, 1, "stale"))
	if reps[0].VersionCount(8) != 0 {
		t.Fatal("stale write created a version")
	}
}

func TestDuplicateWriteReReplied(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, write(7, 2, 1, 1, "v1"))
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2", len(replies))
	}
}

func TestVersionGCAfterManyWrites(t *testing.T) {
	h, reps := group(t, 3)
	for i := uint64(1); i <= 20; i++ {
		h.Inject(100, 1, write(7, i, 1, i, "v"))
	}
	for i, r := range reps {
		if got := r.VersionCount(7); got != 1 {
			t.Fatalf("node %d retains %d versions after quiescence", i, got)
		}
	}
}

func TestDirtyReadWithGCedCommittedVersion(t *testing.T) {
	// Construct the race where the tail's committed version answer
	// refers to a version the asking node already garbage-collected:
	// the node must serve its oldest retained (≥ committed) version.
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	// Inject a version reply for an old version number directly.
	h.Inject(3, 2, versionReply{ObjID: 7, N: 0, Found: true, Pkt: read(7, 9, 1)})
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("stale version reply mishandled: %v", rep)
	}
	_ = reps
}

func TestTailReadAlwaysClean(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 3, read(7, 2, 1))
	if reps[2].DirtyReads != 0 {
		t.Fatal("tail read used a version query")
	}
	if rep := h.LastToSwitch(); string(rep.Value) != "v1" {
		t.Fatal("tail read wrong")
	}
}
