package protocol

import (
	"harmonia/internal/simnet"
	"harmonia/internal/store"
	"harmonia/internal/wire"
)

// ReadClass distinguishes the two §7 protocol families, which differ
// in which anomaly they must defend against on the fast path.
type ReadClass int

const (
	// ReadAhead protocols (primary-backup, chain replication) may have
	// applied uncommitted writes; the shim rejects fast reads whose
	// stamp is older than the object's applied write (§7.2).
	ReadAhead ReadClass = iota
	// ReadBehind protocols (VR, NOPaxos) may lag behind the commit
	// point; the shim rejects fast reads whose stamp is ahead of the
	// replica's execution point (§7.3).
	ReadBehind
)

// Base bundles the per-replica state every protocol carries: the
// storage backend, the duplicate-suppression table, and the switch
// lease, plus the shim-layer logic for fast-path reads.
type Base struct {
	Env   Env
	Group GroupConfig
	Store *store.Store
	CT    *ClientTable
	Lease SwitchLease
	Class ReadClass

	// DisableCheck is an ablation switch: the replica serves fast-path
	// reads without the §7 visibility/integrity check, demonstrating
	// why the dirty set alone is insufficient under network asynchrony
	// (§5.2). Never enable outside experiments.
	DisableCheck bool

	// Stats the harness inspects.
	FastServed    uint64 // fast-path reads answered locally
	FastRejected  uint64 // fast-path reads forwarded to the normal path
	LeaseRejected uint64 // fast-path reads rejected by the lease gate
	UnsafeServed  uint64 // served with DisableCheck where the check would have rejected
}

// NewBase constructs the shared state.
func NewBase(env Env, g GroupConfig, class ReadClass, shards int) *Base {
	return &Base{
		Env:   env,
		Group: g,
		Store: store.New(shards),
		CT:    NewClientTable(),
		Class: class,
	}
}

// ReadReply builds the reply for a read of pkt's object from the local
// store. The reply is pool-managed; the caller owns its one reference
// and transfers it by sending.
func (b *Base) ReadReply(pkt *wire.Packet) *wire.Packet {
	rep := wire.NewPacket()
	rep.Op = wire.OpReadReply
	rep.ObjID = pkt.ObjID
	rep.Group = pkt.Group
	rep.ClientID = pkt.ClientID
	rep.ReqID = pkt.ReqID
	rep.Key = pkt.Key
	// Echo the request's commit stamp (diagnostic; clients and the
	// switch ignore it on replies).
	rep.LastCommitted = pkt.LastCommitted
	// The trace span follows the op onto the reply leg, so the
	// client's completion hook can close it (internal/trace).
	rep.Span = pkt.Span
	if obj, ok := b.Store.Get(pkt.ObjID); ok {
		// Alias the stored value: store values are written once at
		// Apply time and never mutated in place, and reply packets are
		// immutable once built (internal/wire ownership contract), so
		// the read path copies no payload bytes. Callers that hand the
		// value to mutating code must copy (see cluster.SyncClient).
		rep.Value = obj.Value
	} else {
		rep.Flags |= wire.FlagNotFound
	}
	return rep
}

// WriteReply builds the client reply for a completed write. If
// piggyback is true, the reply carries the write's sequence number so
// the switch processes it as a WRITE-COMPLETION on the way through
// (Fig. 2b); read-behind protocols pass false and send completions
// separately once the §7.3 condition holds.
func (b *Base) WriteReply(pkt *wire.Packet, piggyback bool) *wire.Packet {
	rep := wire.NewPacket()
	rep.Op = wire.OpWriteReply
	rep.ObjID = pkt.ObjID
	rep.Group = pkt.Group
	rep.ClientID = pkt.ClientID
	rep.ReqID = pkt.ReqID
	rep.Key = pkt.Key
	rep.Span = pkt.Span // the span follows the op onto the reply leg
	if piggyback {
		rep.Seq = pkt.Seq
	}
	return rep
}

// Completion builds a standalone WRITE-COMPLETION notification for the
// switch. Pool-managed like the replies; the scheduler releases it
// after processing.
func (b *Base) Completion(objID wire.ObjectID, seq wire.Seq) *wire.Packet {
	c := wire.NewPacket()
	c.Op = wire.OpWriteCompletion
	c.ObjID = objID
	c.Group = uint16(b.Group.ID)
	c.Seq = seq
	return c
}

// HandleFastRead runs the shim-layer check for a fast-path read. When
// the read passes the lease gate and the class-specific §7 check, it
// is answered from the local store; otherwise it is forwarded to
// normalDst (primary, tail, or leader) marked FlagForwarded so that no
// switch re-examines it. If normalDst is this replica itself, the
// caller's normal-path handler is invoked via the returned flag
// instead (serveNormally == true).
func (b *Base) HandleFastRead(pkt *wire.Packet, normalDst SendTarget) (serveNormally bool) {
	epoch := pkt.LastCommitted.Epoch
	if !b.Lease.Allows(epoch, b.Env.Now()) {
		b.LeaseRejected++
		return b.rejectFast(pkt, normalDst)
	}
	var ok bool
	switch b.Class {
	case ReadAhead:
		ok = ReadAheadAccept(pkt.LastCommitted, b.Store.ObjectSeq(pkt.ObjID))
	case ReadBehind:
		ok = ReadBehindAccept(pkt.LastCommitted, b.Store.LastApplied())
	}
	if b.DisableCheck {
		if !ok {
			b.UnsafeServed++
		}
		ok = true
	}
	if !ok {
		b.FastRejected++
		return b.rejectFast(pkt, normalDst)
	}
	b.FastServed++
	b.Env.SendSwitch(b.ReadReply(pkt))
	pkt.Release() // the read is fully answered; drop its delivery reference
	return false
}

func (b *Base) rejectFast(pkt *wire.Packet, normalDst SendTarget) bool {
	pkt.Flags = (pkt.Flags &^ wire.FlagFastPath) | wire.FlagForwarded
	if normalDst.Self {
		return true
	}
	b.Env.Send(normalDst.Node, pkt)
	return false
}

// SendTarget names where rejected fast reads go.
type SendTarget struct {
	Node simnet.NodeID
	Self bool
}

// TargetSelf marks the local replica as the normal-path destination.
func TargetSelf() SendTarget { return SendTarget{Self: true} }

// Target points at a remote node.
func Target(n simnet.NodeID) SendTarget { return SendTarget{Node: n} }
