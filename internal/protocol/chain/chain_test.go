package chain

import (
	"testing"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/protocol/ptest"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func group(t *testing.T, n int) (*ptest.Harness, []*Replica) {
	t.Helper()
	h := ptest.NewHarness(1)
	addrs := make([]simnet.NodeID, n)
	for i := range addrs {
		addrs[i] = simnet.NodeID(i + 1)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		g := protocol.GroupConfig{Replicas: addrs, Self: i}
		reps[i] = New(h.Env(addrs[i], i), g, 8)
		h.Register(addrs[i], reps[i])
	}
	return h, reps
}

func write(obj wire.ObjectID, n uint64, client uint32, req uint64, val string) *wire.Packet {
	return &wire.Packet{
		Op: wire.OpWrite, ObjID: obj, Seq: wire.Seq{Epoch: 1, N: n},
		ClientID: client, ReqID: req, Value: []byte(val),
	}
}

func read(obj wire.ObjectID, client uint32, req uint64) *wire.Packet {
	return &wire.Packet{Op: wire.OpRead, ObjID: obj, ClientID: client, ReqID: req}
}

func TestWritePropagatesAndCommitsAtTail(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	rep := h.LastToSwitch()
	if rep == nil || rep.Op != wire.OpWriteReply || rep.Seq.N != 1 {
		t.Fatalf("tail reply wrong: %v", rep)
	}
	for i, r := range reps {
		if o, ok := r.Store.Get(7); !ok || string(o.Value) != "v1" {
			t.Fatalf("node %d missing write", i)
		}
	}
	if reps[2].WritesCommitted != 1 {
		t.Fatal("tail did not count commit")
	}
	// Acks flowed up: resend buffers empty.
	for i, r := range reps[:2] {
		if r.UnackedLen() != 0 {
			t.Fatalf("node %d still buffers %d writes", i, r.UnackedLen())
		}
	}
	if reps[0].Committed().N != 1 {
		t.Fatal("head did not learn commit point")
	}
}

func TestSingleNodeChain(t *testing.T) {
	h, _ := group(t, 1)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	if rep := h.LastToSwitch(); rep == nil || rep.Op != wire.OpWriteReply {
		t.Fatal("single-node chain did not commit")
	}
	h.Inject(100, 1, read(7, 2, 1))
	if rep := h.LastToSwitch(); string(rep.Value) != "v1" {
		t.Fatal("single-node read wrong")
	}
}

func TestTailServesNormalReads(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 3, read(7, 2, 1))
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatalf("tail read wrong: %v", rep)
	}
	if reps[2].ReadsServed != 1 {
		t.Fatal("tail read not counted")
	}
}

func TestMidChainDropsOutOfOrderWrite(t *testing.T) {
	h, reps := group(t, 3)
	h.Inject(100, 1, write(7, 5, 1, 1, "v5"))
	// A stale propagate straight to the mid node.
	h.Inject(1, 2, propagate{Pkt: write(9, 3, 2, 1, "stale")})
	if _, ok := reps[1].Store.Get(9); ok {
		t.Fatal("mid node applied stale write")
	}
	if _, ok := reps[2].Store.Get(9); ok {
		t.Fatal("stale write reached the tail")
	}
}

func TestDuplicateWriteReRepliedByTail(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, write(7, 2, 1, 1, "v1")) // same ClientID/ReqID: retry
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies, want original + cached", len(replies))
	}
	if !replies[1].Seq.IsZero() {
		t.Fatal("cached re-reply should not piggyback a completion")
	}
}

func TestDuplicateOfInFlightWriteSuppressed(t *testing.T) {
	h, reps := group(t, 3)
	h.Blackhole[3] = true // tail unreachable: write stays in flight
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 1, write(7, 2, 1, 1, "v1")) // retry while in flight
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 0 {
		t.Fatal("reply appeared for in-flight write")
	}
	if reps[1].Store.AppliedCount() != 1 {
		t.Fatalf("retry re-applied: %d applies at mid", reps[1].Store.AppliedCount())
	}
}

func TestFastReadOnAnyReplica(t *testing.T) {
	h, reps := group(t, 3)
	h.Grant(1, time.Hour)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	for i := 1; i <= 3; i++ {
		fr := read(7, 2, uint64(i))
		fr.Flags = wire.FlagFastPath
		fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
		h.Inject(100, simnet.NodeID(i), fr)
		rep := h.LastToSwitch()
		if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
			t.Fatalf("fast read at node %d failed: %v", i, rep)
		}
	}
	if reps[0].FastServed != 1 || reps[1].FastServed != 1 {
		t.Fatal("fast reads not served locally at head/mid")
	}
}

func TestFastReadAheadAnomalyPrevented(t *testing.T) {
	// The §3 read-ahead anomaly: a write applied at head and mid but
	// not the tail must not be visible through the fast path.
	h, reps := group(t, 3)
	h.Grant(1, time.Hour)
	h.Inject(100, 1, write(7, 1, 1, 1, "committed"))
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 2, 1, 2, "uncommitted"))
	// Mid node has the uncommitted value; stamp only covers seq 1.
	fr := read(7, 2, 1)
	fr.Flags = wire.FlagFastPath
	fr.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr)
	if reps[1].FastRejected != 1 {
		t.Fatal("integrity check did not reject")
	}
	// The read was forwarded to the tail, which still has the old
	// committed value — but the tail is blackholed for protocol
	// messages only in this harness; packet forwarding uses Send too,
	// so nothing arrives. Clear the blackhole and re-inject to verify
	// the normal path result.
	h.Blackhole[3] = false
	fr2 := read(7, 2, 3)
	fr2.Flags = wire.FlagFastPath
	fr2.LastCommitted = wire.Seq{Epoch: 1, N: 1}
	h.Inject(100, 2, fr2)
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "committed" {
		t.Fatalf("forwarded read returned %q", rep.Value)
	}
}

func TestTailFailureReconfiguration(t *testing.T) {
	h, reps := group(t, 3)
	// Write 1 commits fully; write 2 reaches head+mid, tail dies.
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 2, 1, 2, "v2"))
	if len(h.SwitchPacketsOf(wire.OpWriteReply)) != 1 {
		t.Fatal("write 2 committed early")
	}
	// Fail the tail (index 2): mid becomes tail, commits buffered
	// write 2 and replies.
	for _, r := range reps[:2] {
		r.Reconfigure(2)
	}
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies after tail failover, want 2", len(replies))
	}
	if !reps[1].IsTail() {
		t.Fatal("mid did not become tail")
	}
	// New tail serves reads with the latest committed value.
	h.Inject(100, 2, read(7, 2, 9))
	if rep := h.LastToSwitch(); string(rep.Value) != "v2" {
		t.Fatalf("read after failover = %q", rep.Value)
	}
}

func TestHeadFailureReconfiguration(t *testing.T) {
	h, reps := group(t, 3)
	for _, r := range reps[1:] {
		r.Reconfigure(0)
	}
	if !reps[1].IsHead() {
		t.Fatal("node 1 did not become head")
	}
	// Writes now enter at the new head.
	h.Inject(100, 2, write(7, 1, 1, 1, "v1"))
	rep := h.LastToSwitch()
	if rep == nil || rep.Op != wire.OpWriteReply {
		t.Fatal("write via new head did not commit")
	}
}

func TestMidFailureResendsWindow(t *testing.T) {
	h, reps := group(t, 4)
	// Stall the chain after the mid node 2 (index 1): writes reach
	// head and node 2 but die there.
	h.Blackhole[3] = true
	h.Inject(100, 1, write(7, 1, 1, 1, "a"))
	h.Inject(100, 1, write(8, 2, 2, 1, "b"))
	if reps[1].UnackedLen() != 2 {
		t.Fatalf("mid buffers %d, want 2", reps[1].UnackedLen())
	}
	// Node index 2 (address 3) fails; the blackhole stays (it is
	// dead). Node 1's resend goes to the new successor index 3.
	for i, r := range reps {
		if i != 2 {
			r.Reconfigure(2)
		}
	}
	replies := h.SwitchPacketsOf(wire.OpWriteReply)
	if len(replies) != 2 {
		t.Fatalf("%d replies after mid failover, want 2", len(replies))
	}
	if o, ok := reps[3].Store.Get(8); !ok || string(o.Value) != "b" {
		t.Fatal("resent write missing at new successor")
	}
}

func TestReconfigureIgnoresUnknownOrDead(t *testing.T) {
	_, reps := group(t, 3)
	reps[0].Reconfigure(7)  // out of range
	reps[0].Reconfigure(-1) // out of range
	reps[0].Reconfigure(1)
	reps[0].Reconfigure(1) // double-failure report is idempotent
	if reps[0].next != 2 {
		t.Fatalf("next = %d, want 2", reps[0].next)
	}
}

func TestStrayNormalReadForwardedToTail(t *testing.T) {
	h, _ := group(t, 3)
	h.Inject(100, 1, write(7, 1, 1, 1, "v1"))
	h.Inject(100, 2, read(7, 5, 1)) // normal read at mid node
	rep := h.LastToSwitch()
	if rep.Op != wire.OpReadReply || string(rep.Value) != "v1" {
		t.Fatal("misrouted read lost")
	}
}
