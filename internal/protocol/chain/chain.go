// Package chain implements chain replication (van Renesse & Schneider,
// OSDI 2004) with the Harmonia adaptations of §7.2.
//
// Replicas form a chain: index 0 is the head, index N-1 the tail.
// Writes enter at the head and propagate down; the tail's application
// commits the write and produces the client reply, which piggybacks the
// WRITE-COMPLETION through the switch. Normal-path reads are served by
// the tail (whose state is exactly the committed state); Harmonia
// fast-path reads may land on any replica and are validated with the
// read-ahead integrity check.
//
// Commit acknowledgments flow back up the chain so that each node can
// trim its resend buffer; on a mid-chain node failure, the predecessor
// resends unacknowledged writes to its new successor, and the
// successor's in-order apply guard discards what it already has.
package chain

import (
	"harmonia/internal/protocol"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// propagate carries a write down the chain.
type propagate struct {
	Pkt *wire.Packet
}

// CostClass marks propagation as a full write application.
func (propagate) CostClass() protocol.CostClass { return protocol.CostWrite }

// chainAck flows from the tail up the chain announcing the commit
// point, letting nodes trim their resend buffers.
type chainAck struct {
	Seq wire.Seq
}

// CostClass marks the ack as control traffic.
func (chainAck) CostClass() protocol.CostClass { return protocol.CostControl }

// reReply asks the tail to re-send the cached reply for a duplicate
// client request.
type reReply struct {
	ClientID uint32
	ReqID    uint64
}

// CostClass marks the re-reply request as control traffic.
func (reReply) CostClass() protocol.CostClass { return protocol.CostControl }

// Replica is one chain node.
type Replica struct {
	*protocol.Base

	// next and prev are chain-neighbor indexes (-1 at the ends); they
	// change under reconfiguration.
	next, prev int
	// alive tracks which indexes are still chain members.
	alive []bool

	// unacked buffers writes forwarded but not yet known committed,
	// in sequence order, for resend on successor failure.
	unacked []*wire.Packet
	// committed is the highest sequence number known committed here.
	committed wire.Seq

	// Stats
	WritesApplied   uint64
	WritesCommitted uint64 // tail only
	ReadsServed     uint64 // tail normal-path reads
}

// New builds a chain node.
func New(env protocol.Env, g protocol.GroupConfig, shards int) *Replica {
	r := &Replica{
		Base:  protocol.NewBase(env, g, protocol.ReadAhead, shards),
		next:  g.Self + 1,
		prev:  g.Self - 1,
		alive: make([]bool, g.N()),
	}
	if r.next >= g.N() {
		r.next = -1
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	return r
}

// IsHead and IsTail report chain position under the current
// configuration.
func (r *Replica) IsHead() bool { return r.prev == -1 }

// IsTail reports whether this node is the current tail.
func (r *Replica) IsTail() bool { return r.next == -1 }

// tailIndex computes the current tail's index from liveness.
func (r *Replica) tailIndex() int {
	for i := r.Group.N() - 1; i >= 0; i-- {
		if r.alive[i] {
			return i
		}
	}
	return r.Group.Self
}

// Recv implements simnet.Handler.
func (r *Replica) Recv(from simnet.NodeID, msg simnet.Message) {
	if r.HandleControl(msg) {
		return
	}
	switch m := msg.(type) {
	case *wire.Packet:
		r.recvPacket(m)
	case propagate:
		r.recvPropagate(m.Pkt)
	case chainAck:
		r.recvAck(m.Seq)
	case reReply:
		r.recvReReply(m)
	}
}

func (r *Replica) recvPacket(pkt *wire.Packet) {
	switch pkt.Op {
	case wire.OpWrite:
		if r.IsHead() {
			r.headWrite(pkt)
			return
		}
		pkt.Release() // writes to a non-head are a routing error
	case wire.OpRead:
		if pkt.Flags&wire.FlagFastPath != 0 {
			target := protocol.Target(r.Group.Addr(r.tailIndex()))
			if r.IsTail() {
				target = protocol.TargetSelf()
			}
			if r.HandleFastRead(pkt, target) {
				r.tailRead(pkt)
			}
			return
		}
		if r.IsTail() {
			r.tailRead(pkt)
			return
		}
		// Stale routing: pass the read along to the real tail.
		r.Env.Send(r.Group.Addr(r.tailIndex()), pkt)
	}
}

// headWrite admits a client write at the head.
func (r *Replica) headWrite(pkt *wire.Packet) {
	execute, _ := r.CT.Admit(pkt.ClientID, pkt.ReqID)
	if !execute {
		// Duplicate: the head holds no reply cache (the tail replies),
		// so ask the tail to re-send its cached reply if the write
		// already committed; if still in flight the pending reply will
		// serve the retransmission.
		r.Env.Send(r.Group.Addr(r.tailIndex()), reReply{ClientID: pkt.ClientID, ReqID: pkt.ReqID})
		pkt.Release() // duplicate fully handled
		return
	}
	r.apply(pkt)
}

// recvPropagate applies a write arriving from the predecessor.
func (r *Replica) recvPropagate(pkt *wire.Packet) { r.apply(pkt) }

// apply installs a write and moves it along the chain, or commits it
// at the tail.
func (r *Replica) apply(pkt *wire.Packet) {
	if err := r.Store.Apply(pkt.ObjID, pkt.Value, pkt.Seq, pkt.Flags&wire.FlagDelete != 0); err != nil {
		// §5.2 write-order requirement: out-of-order writes are
		// discarded; the client's retry gets a fresh sequence number.
		pkt.Release()
		return
	}
	r.WritesApplied++
	if r.IsTail() {
		r.commitAtTail(pkt)
		return
	}
	// The resend buffer keeps the delivery reference; the downstream
	// propagation carries its own.
	r.unacked = append(r.unacked, pkt)
	r.Env.Send(r.Group.Addr(r.next), propagate{Pkt: pkt.Retain()})
}

// commitAtTail finishes a write: the tail's apply is the commit.
func (r *Replica) commitAtTail(pkt *wire.Packet) {
	r.WritesCommitted++
	r.committed = r.committed.Max(pkt.Seq)
	rep := r.WriteReply(pkt, true) // piggybacks the WRITE-COMPLETION
	r.CT.Complete(pkt.ClientID, pkt.ReqID, rep)
	r.Env.SendSwitch(rep)
	if r.prev >= 0 {
		r.Env.Send(r.Group.Addr(r.prev), chainAck{Seq: pkt.Seq})
	}
	pkt.Release() // the tail's apply is the write's terminal consumption
}

// recvAck trims the resend buffer and relays the commit point up.
func (r *Replica) recvAck(seq wire.Seq) {
	r.committed = r.committed.Max(seq)
	cut := 0
	for cut < len(r.unacked) && r.unacked[cut].Seq.LessEq(seq) {
		r.unacked[cut].Release()
		cut++
	}
	r.unacked = r.unacked[cut:]
	if r.prev >= 0 {
		r.Env.Send(r.Group.Addr(r.prev), chainAck{Seq: seq})
	}
}

// recvReReply answers a duplicate-write probe from its reply cache.
func (r *Replica) recvReReply(m reReply) {
	if !r.IsTail() {
		return
	}
	if cached := r.CT.Cached(m.ClientID, m.ReqID); cached != nil {
		rep := cached.FlightClone()
		rep.Seq = wire.ZeroSeq // do not re-trigger the completion
		r.Env.SendSwitch(rep)
	}
}

// tailRead serves a read from committed state.
func (r *Replica) tailRead(pkt *wire.Packet) {
	r.ReadsServed++
	r.Env.SendSwitch(r.ReadReply(pkt))
	pkt.Release()
}

// Reconfigure removes a failed node from the chain. Every survivor
// re-links; the failed node's predecessor resends its unacknowledged
// writes to its new successor (or commits them itself if it became the
// tail). The in-order apply guard at the successor discards anything
// it already processed.
func (r *Replica) Reconfigure(failed int) {
	if failed < 0 || failed >= r.Group.N() || !r.alive[failed] {
		return
	}
	r.alive[failed] = false
	self := r.Group.Self
	if self == failed {
		return
	}
	// Recompute neighbors from the liveness map.
	r.next, r.prev = -1, -1
	for i := self + 1; i < r.Group.N(); i++ {
		if r.alive[i] {
			r.next = i
			break
		}
	}
	for i := self - 1; i >= 0; i-- {
		if r.alive[i] {
			r.prev = i
			break
		}
	}
	// If our successor was the failed node, recover its in-flight
	// writes.
	pending := r.unacked
	if r.IsTail() {
		// Became the tail: our applied-but-unacked writes are now
		// committed by definition; reply for them.
		r.unacked = nil
		for _, pkt := range pending {
			r.commitAtTail(pkt)
		}
		return
	}
	// Resend the unacked window to the (possibly new) successor; the
	// buffer keeps its references, each resend carries a fresh one.
	for _, pkt := range pending {
		r.Env.Send(r.Group.Addr(r.next), propagate{Pkt: pkt.Retain()})
	}
}

// Committed returns the highest commit point this node knows (tests).
func (r *Replica) Committed() wire.Seq { return r.committed }

// UnackedLen returns the resend-buffer length (tests).
func (r *Replica) UnackedLen() int { return len(r.unacked) }
