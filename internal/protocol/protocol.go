// Package protocol holds the machinery shared by all replication
// protocol implementations: the environment abstraction replicas run
// against, group configuration, the client table for at-most-once
// semantics, the switch-lease gate, and the shim-layer helpers that
// implement the paper's §7 fast-path read checks.
package protocol

import (
	"math/rand"
	"time"

	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// Env is the world a replica interacts with. The cluster harness wires
// it to the simulated network; nothing in the protocols depends on
// simulation specifics beyond this interface.
type Env interface {
	// ID returns this replica's network address.
	ID() simnet.NodeID
	// Send delivers a protocol-internal message to a peer.
	Send(to simnet.NodeID, msg any)
	// SendSwitch puts a client-facing Harmonia packet (reply or
	// write-completion) onto the data path through the switch.
	SendSwitch(pkt *wire.Packet)
	// After schedules fn after d of simulated time; the returned timer
	// can be cancelled.
	After(d time.Duration, fn func()) sim.Timer
	// Now returns the current simulated time.
	Now() sim.Time
	// Rand returns the deterministic random source.
	Rand() *rand.Rand
}

// GroupConfig describes a replica group.
type GroupConfig struct {
	// ID is this group's index in the sharded cluster (§6.1). Replicas
	// stamp it into standalone write-completions so the switch
	// front-end credits the right scheduler partition; single-group
	// clusters use 0.
	ID int
	// Replicas lists member addresses; a member's index is its replica
	// number (chain position, VR replica index, …).
	Replicas []simnet.NodeID
	// Self is this node's index in Replicas.
	Self int
	// F is the number of tolerated failures for quorum protocols
	// (len(Replicas) = 2F+1 there).
	F int
}

// N returns the group size.
func (g GroupConfig) N() int { return len(g.Replicas) }

// Quorum returns the majority size F+1.
func (g GroupConfig) Quorum() int { return g.F + 1 }

// Addr returns the address of replica i.
func (g GroupConfig) Addr(i int) simnet.NodeID { return g.Replicas[i] }

// SelfAddr returns this replica's address.
func (g GroupConfig) SelfAddr() simnet.NodeID { return g.Replicas[g.Self] }

// CostClass buckets messages by how much server CPU handling them
// costs; the cluster's processor model translates classes into service
// times calibrated to the paper's single-server Redis numbers.
type CostClass int

const (
	// CostControl is a small protocol message (ack, commit notice).
	CostControl CostClass = iota
	// CostRead is a full read execution against the store.
	CostRead
	// CostWrite is a full write application.
	CostWrite
)

// Costed lets protocol-internal messages declare their cost class.
// Messages that do not implement it default to CostControl.
type Costed interface{ CostClass() CostClass }

// ClassOf returns the cost class for any message: Harmonia packets by
// op, protocol messages via Costed, and CostControl otherwise.
func ClassOf(msg any) CostClass {
	switch m := msg.(type) {
	case *wire.Packet:
		switch m.Op {
		case wire.OpRead:
			return CostRead
		case wire.OpWrite:
			return CostWrite
		default:
			return CostControl
		}
	case Costed:
		return m.CostClass()
	default:
		return CostControl
	}
}

// ---------------------------------------------------------------------
// Client table (at-most-once semantics)

type clientEntry struct {
	reqID uint64
	reply *wire.Packet // nil while the request is still in progress
}

// ClientTable filters duplicate client writes, as in Viewstamped
// Replication: each client has at most one outstanding request, and a
// retransmission of the latest request is answered from the cache
// rather than re-executed.
//
// Alongside the protocol-managed table, migrated records (Merge) are
// kept in a separate overlay matched ONLY on the exact request ID.
// The separation is a correctness requirement, not bookkeeping: the
// main table is derived deterministically from the protocol's own
// admission/execution order, and replicas replaying a log (NOPaxos
// followers at sync, VR backups at commit) must reach the decisions
// the leader reached. A foreign record folded into the main table
// would also suppress OLDER requests of the same client — requests the
// leader may already have executed before the records arrived — and
// the replicas' stores would silently diverge. An exact-match overlay
// suppresses precisely the one cross-group duplicate it was exported
// for and nothing else.
type ClientTable struct {
	m map[uint32]clientEntry
	// migrated holds records imported by slot handoffs, keyed by
	// client, matched only on exact request ID.
	migrated map[uint32]clientEntry
}

// NewClientTable returns an empty table.
func NewClientTable() *ClientTable {
	return &ClientTable{m: make(map[uint32]clientEntry), migrated: make(map[uint32]clientEntry)}
}

// Admit decides what to do with request (clientID, reqID):
//
//   - fresh requests are admitted (execute=true) and recorded as in
//     progress;
//   - a retransmission of the in-progress request is suppressed
//     (execute=false, cached=nil — the eventual reply will serve it);
//   - a retransmission of the completed request returns the cached
//     reply;
//   - anything older is ignored.
//
// A returned cached reply is BORROWED from the table: a caller that
// re-sends it must transmit a FlightClone, never the table's copy.
func (t *ClientTable) Admit(clientID uint32, reqID uint64) (execute bool, cached *wire.Packet) {
	if mig, ok := t.migrated[clientID]; ok {
		if reqID == mig.reqID {
			// The cross-group duplicate a slot handoff exported this
			// record for: suppress it and replay the cached reply.
			return false, mig.reply
		}
		if reqID > mig.reqID {
			// The client moved on; the migrated record can never match
			// again.
			if mig.reply != nil {
				mig.reply.Release()
			}
			delete(t.migrated, clientID)
		}
	}
	e, ok := t.m[clientID]
	if !ok || reqID > e.reqID {
		if ok && e.reply != nil {
			// The client moved on: the previous request's cached reply
			// can never be replayed again. This is the steady-state
			// reclamation point for reply packets.
			e.reply.Release()
		}
		t.m[clientID] = clientEntry{reqID: reqID}
		return true, nil
	}
	if reqID == e.reqID {
		return false, e.reply // may be nil: still in progress
	}
	return false, nil
}

// Complete records the reply for the client's current request. A
// completion for a request the table has not seen (possible at a chain
// tail, where admission happens at the head) registers it directly;
// completions older than the tracked request are dropped.
//
// The table takes its OWN reference on the stored reply (Retain), so
// the caller keeps its reference for the send that usually follows; a
// caller that caches a reply without sending it releases its own
// reference after Complete.
func (t *ClientTable) Complete(clientID uint32, reqID uint64, reply *wire.Packet) {
	if e, ok := t.m[clientID]; ok {
		if reqID < e.reqID {
			return
		}
		if e.reply == reply {
			t.m[clientID] = clientEntry{reqID: reqID, reply: reply}
			return // already hold this exact reply; no extra reference
		}
		if e.reply != nil {
			e.reply.Release()
		}
	}
	t.m[clientID] = clientEntry{reqID: reqID, reply: reply.Retain()}
}

// Cached returns the stored reply for (clientID, reqID) without
// mutating the table, or nil. Migrated records answer too: a chain
// tail asked to re-reply a cross-group duplicate has the reply only in
// its overlay.
func (t *ClientTable) Cached(clientID uint32, reqID uint64) *wire.Packet {
	if e, ok := t.m[clientID]; ok && e.reqID == reqID && e.reply != nil {
		return e.reply
	}
	if mig, ok := t.migrated[clientID]; ok && mig.reqID == reqID {
		return mig.reply
	}
	return nil
}

// ClientRecord is one exported client-table entry, carried with a
// slot handoff: the client's latest request ID and, when the request
// completed, the cached reply (nil while still in progress).
type ClientRecord struct {
	ReqID uint64
	Reply *wire.Packet
}

// Export copies the table's COMPLETED records for state transfer. A
// migration moves the records with the objects: without them, a
// destination group would re-execute a write whose reply was lost in
// flight — the source already applied it, so the duplicate could
// resurrect an old value over a newer committed write (at-most-once is
// per table, and the retry now hashes to a different group's table).
//
// In-progress records (no cached reply) are deliberately NOT exported:
// an exact-match hit on one would suppress the client's retry at the
// destination with nothing to answer it, wedging the client forever.
// A completed-nowhere write is also safe to re-execute — it never
// applied at the source (a drained slot's writes either committed,
// caching a reply at whichever replica executed them, or can never
// apply), so no resurrection hazard exists for it.
//
// Each exported record carries its own reference on the reply
// (Retain), owned by the caller. Merge takes its own references on
// whatever it adopts, so one exported set can be merged into every
// replica of a destination group (or several groups); the caller
// releases the set with ReleaseRecords when the last merge is done.
func (t *ClientTable) Export() map[uint32]ClientRecord {
	out := make(map[uint32]ClientRecord, len(t.m))
	for c, e := range t.m {
		if e.reply != nil {
			out[c] = ClientRecord{ReqID: e.reqID, Reply: e.reply}
		}
	}
	// Records a previous inbound handoff parked here may still be the
	// only copy of a reply a client is retrying for; pass them along
	// unless the protocol-managed entry is newer and completed.
	for c, mig := range t.migrated {
		if mig.reply == nil {
			continue
		}
		if cur, ok := out[c]; !ok || mig.reqID > cur.ReqID {
			out[c] = ClientRecord{ReqID: mig.reqID, Reply: mig.reply}
		}
	}
	for _, rec := range out {
		rec.Reply.Retain()
	}
	return out
}

// Merge installs exported records into the migrated-record overlay,
// keeping the newer request per client; on a tie, an entry carrying a
// cached reply wins over an in-progress one (so the destination can
// answer the retry instead of suppressing it forever). The main table
// is never touched — see the type comment for why that would corrupt
// log replay.
//
// Merge takes its own reference on each adopted reply and releases any
// overlay entry it displaces; the records themselves are left intact,
// so the caller can merge the same set into several tables before
// dropping it with ReleaseRecords.
func (t *ClientTable) Merge(recs map[uint32]ClientRecord) {
	for c, rec := range recs {
		e, ok := t.migrated[c]
		if !ok || rec.ReqID > e.reqID || (rec.ReqID == e.reqID && e.reply == nil && rec.Reply != nil) {
			if rec.Reply != nil {
				rec.Reply.Retain()
			}
			if ok && e.reply != nil {
				e.reply.Release()
			}
			t.migrated[c] = clientEntry{reqID: rec.ReqID, reply: rec.Reply}
		}
	}
}

// ReleaseRecords drops the caller-owned reply references of an
// exported record set once its merges are done.
func ReleaseRecords(recs map[uint32]ClientRecord) {
	for _, rec := range recs {
		if rec.Reply != nil {
			rec.Reply.Release()
		}
	}
}

// Snapshot and Restore support state transfer.
func (t *ClientTable) Snapshot() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(t.m))
	for c, e := range t.m {
		out[c] = e.reqID
	}
	return out
}

// Restore merges a snapshot, keeping the newer reqID per client.
func (t *ClientTable) Restore(snap map[uint32]uint64) {
	for c, r := range snap {
		if e, ok := t.m[c]; !ok || r > e.reqID {
			t.m[c] = clientEntry{reqID: r}
		}
	}
}

// ---------------------------------------------------------------------
// Switch lease (§5.3)

// SwitchLease gates fast-path reads per switch incarnation. The
// replication protocol "periodically agrees to allow single-replica
// reads from the current switch for a time period"; granting a lease
// for epoch E implicitly refuses all epochs < E, and a replacement
// switch's writes are only admitted after the old lease was revoked or
// expired.
type SwitchLease struct {
	epoch  uint32
	expiry sim.Time
}

// Grant installs a lease for epoch until expiry. Grants never move the
// epoch backwards.
func (l *SwitchLease) Grant(epoch uint32, expiry sim.Time) {
	if epoch < l.epoch {
		return
	}
	if epoch > l.epoch || expiry > l.expiry {
		l.epoch, l.expiry = epoch, expiry
	}
}

// Revoke immediately ends the lease of every epoch ≤ epoch ("all
// replicas agree to cut it short").
func (l *SwitchLease) Revoke(epoch uint32) {
	if epoch >= l.epoch {
		l.epoch, l.expiry = epoch, 0
	}
}

// Allows reports whether a fast-path read from the given switch epoch
// may be served locally at time now.
func (l *SwitchLease) Allows(epoch uint32, now sim.Time) bool {
	return epoch == l.epoch && now < l.expiry
}

// Epoch returns the currently leased epoch.
func (l *SwitchLease) Epoch() uint32 { return l.epoch }

// ---------------------------------------------------------------------
// §7 fast-path read checks (the shim layer)

// ReadAheadAccept is the §7.2 integrity check for read-ahead protocols
// (primary-backup, chain replication): a replica may answer a
// fast-path read locally only when the last-committed point stamped by
// the switch is at least the sequence number of the latest write it
// has applied to the object — which proves every applied write to this
// object had committed when the switch forwarded the read.
func ReadAheadAccept(stamped, objSeq wire.Seq) bool {
	return objSeq.LessEq(stamped)
}

// ReadBehindAccept is the §7.3 visibility check for read-behind
// protocols (VR, NOPaxos): a replica may answer locally only when it
// has executed at least up to the stamped last-committed point —
// otherwise a write the switch already saw complete might be missing
// here.
func ReadBehindAccept(stamped, lastExecuted wire.Seq) bool {
	return stamped.LessEq(lastExecuted)
}
