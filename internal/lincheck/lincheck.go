// Package lincheck verifies that a recorded operation history is
// linearizable with respect to per-key register semantics — the
// correctness property Harmonia promises to preserve (§7.1: a read
// sees all writes that finished before it started, and never sees
// uncommitted data).
//
// The checker partitions the history by key (linearizability is
// compositional) and runs a Wing & Gong style search per key with
// memoization on (linearized-set, last-write) states. Operations that
// never received a response (client timeouts) are treated as pending:
// a pending write may take effect at any point after its invocation or
// not at all; pending reads impose no constraints and are dropped.
package lincheck

import (
	"fmt"
	"sort"
)

// Op is one operation in a history. Timestamps are arbitrary units
// (the harness uses simulated nanoseconds); Return < 0 marks an
// operation with no response (pending at history end).
//
// Values: writes carry a unique positive Value (or a unique negative
// value for deletes). Reads carry the observed Value, with 0 meaning
// "not found". A read of 0 matches both the initial state and any
// deleted state.
type Op struct {
	Key    uint64
	Write  bool
	Value  int64
	Invoke int64
	Return int64
}

// Pending reports whether the op never returned.
func (o Op) Pending() bool { return o.Return < 0 }

// Result is the checker's verdict.
type Result struct {
	// Ok reports linearizability. Only meaningful when Decided.
	Ok bool
	// Decided is false when the search exceeded Config limits.
	Decided bool
	// Key identifies the offending key when !Ok.
	Key uint64
	// Reason describes the violation or limit.
	Reason string
}

// Config bounds the search.
type Config struct {
	// MaxOpsPerKey rejects absurdly contended keys rather than
	// searching forever. 0 means the default (512).
	MaxOpsPerKey int
	// StateLimit bounds visited memo states per key. 0 means the
	// default (4M).
	StateLimit int
}

func (c Config) maxOps() int {
	if c.MaxOpsPerKey > 0 {
		return c.MaxOpsPerKey
	}
	return 512
}

func (c Config) stateLimit() int {
	if c.StateLimit > 0 {
		return c.StateLimit
	}
	return 4 << 20
}

// Check verifies the full history with default limits.
func Check(ops []Op) Result { return CheckConfig(ops, Config{}) }

// CheckConfig verifies the full history.
func CheckConfig(ops []Op, cfg Config) Result {
	byKey := make(map[uint64][]Op)
	for _, o := range ops {
		if !o.Pending() && o.Return < o.Invoke {
			return Result{Ok: false, Decided: true, Key: o.Key,
				Reason: fmt.Sprintf("op returns (%d) before invocation (%d)", o.Return, o.Invoke)}
		}
		if o.Pending() && !o.Write {
			continue // pending reads constrain nothing
		}
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	for key, kops := range byKey {
		res := checkKey(key, kops, cfg)
		if !res.Ok || !res.Decided {
			return res
		}
	}
	return Result{Ok: true, Decided: true}
}

// checkKey runs the per-key search.
func checkKey(key uint64, ops []Op, cfg Config) Result {
	if len(ops) > cfg.maxOps() {
		return Result{Decided: false, Key: key,
			Reason: fmt.Sprintf("key has %d ops, above limit %d", len(ops), cfg.maxOps())}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	n := len(ops)
	words := (n + 63) / 64
	type stateKey struct {
		mask string
		last int // index of last linearized write, -1 initially
	}
	visited := make(map[stateKey]bool)
	mask := make([]uint64, words)

	var completedLeft int
	for _, o := range ops {
		if !o.Pending() {
			completedLeft++
		}
	}

	set := func(i int) { mask[i/64] |= 1 << (i % 64) }
	clear := func(i int) { mask[i/64] &^= 1 << (i % 64) }
	has := func(i int) bool { return mask[i/64]&(1<<(i%64)) != 0 }
	keyOf := func(last int) stateKey {
		b := make([]byte, words*8)
		for w, v := range mask {
			for k := 0; k < 8; k++ {
				b[w*8+k] = byte(v >> (8 * k))
			}
		}
		return stateKey{mask: string(b), last: last}
	}

	// current register state derived from the last linearized write:
	// -1 → initial missing.
	valueOf := func(last int) int64 {
		if last < 0 {
			return 0
		}
		v := ops[last].Value
		if v < 0 {
			return 0 // delete: state is "missing"
		}
		return v
	}

	states := 0
	var dfs func(last, remaining int) (bool, Result)
	dfs = func(last, remaining int) (bool, Result) {
		if remaining == 0 {
			return true, Result{Ok: true, Decided: true}
		}
		sk := keyOf(last)
		if visited[sk] {
			return false, Result{}
		}
		visited[sk] = true
		states++
		if states > cfg.stateLimit() {
			return false, Result{Decided: false, Key: key, Reason: "state limit exceeded"}
		}
		// Earliest return among unlinearized completed ops bounds
		// which ops may linearize next.
		minReturn := int64(1<<63 - 1)
		for i, o := range ops {
			if !has(i) && !o.Pending() && o.Return < minReturn {
				minReturn = o.Return
			}
		}
		for i, o := range ops {
			if has(i) || o.Invoke > minReturn {
				continue
			}
			if !o.Write {
				// Read must observe the current state.
				cur := valueOf(last)
				if o.Value != cur {
					continue
				}
				set(i)
				ok, res := dfs(last, remaining-1)
				if ok || !res.Decided && res.Reason != "" {
					return ok, res
				}
				clear(i)
				continue
			}
			set(i)
			rem := remaining
			if !o.Pending() {
				rem--
			}
			ok, res := dfs(i, rem)
			if ok || !res.Decided && res.Reason != "" {
				return ok, res
			}
			clear(i)
		}
		return false, Result{}
	}

	ok, res := dfs(-1, completedLeft)
	if ok {
		return Result{Ok: true, Decided: true}
	}
	if !res.Decided && res.Reason != "" {
		return res
	}
	return Result{Ok: false, Decided: true, Key: key,
		Reason: fmt.Sprintf("no linearization for %d ops on key %d", n, key)}
}
