package lincheck

import (
	"math/rand"
	"testing"
)

// w and r build ops tersely. Times are (invoke, ret).
func w(key uint64, v int64, inv, ret int64) Op {
	return Op{Key: key, Write: true, Value: v, Invoke: inv, Return: ret}
}

func r(key uint64, v int64, inv, ret int64) Op {
	return Op{Key: key, Write: false, Value: v, Invoke: inv, Return: ret}
}

func mustOk(t *testing.T, ops []Op) {
	t.Helper()
	res := Check(ops)
	if !res.Decided {
		t.Fatalf("undecided: %s", res.Reason)
	}
	if !res.Ok {
		t.Fatalf("valid history rejected: %s", res.Reason)
	}
}

func mustFail(t *testing.T, ops []Op) {
	t.Helper()
	res := Check(ops)
	if !res.Decided {
		t.Fatalf("undecided: %s", res.Reason)
	}
	if res.Ok {
		t.Fatal("invalid history accepted")
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	mustOk(t, nil)
	mustOk(t, []Op{w(1, 10, 0, 1)})
	mustOk(t, []Op{r(1, 0, 0, 1)}) // read of initial missing state
}

func TestSequentialReadSeesWrite(t *testing.T) {
	mustOk(t, []Op{
		w(1, 10, 0, 1),
		r(1, 10, 2, 3),
	})
}

func TestStaleReadAfterWriteRejected(t *testing.T) {
	// Write finished before the read started, but the read misses it.
	mustFail(t, []Op{
		w(1, 10, 0, 1),
		r(1, 0, 2, 3),
	})
}

func TestReadOfNeverWrittenValueRejected(t *testing.T) {
	mustFail(t, []Op{
		w(1, 10, 0, 1),
		r(1, 99, 2, 3),
	})
}

func TestConcurrentWriteEitherOrder(t *testing.T) {
	// Two overlapping writes: later reads may see either, but both
	// readers after completion must agree on one final value...
	mustOk(t, []Op{
		w(1, 10, 0, 5),
		w(1, 20, 1, 6),
		r(1, 20, 7, 8),
	})
	mustOk(t, []Op{
		w(1, 10, 0, 5),
		w(1, 20, 1, 6),
		r(1, 10, 7, 8),
	})
}

func TestFlickerRejected(t *testing.T) {
	// The §3 read-ahead anomaly: value appears, then disappears.
	mustFail(t, []Op{
		w(1, 10, 0, 1), // committed: value 10
		w(1, 20, 2, 10),
		r(1, 20, 3, 4), // sees 20 (uncommitted write visible)…
		r(1, 10, 5, 6), // …then 10 again: not linearizable
	})
}

func TestReadConcurrentWithWriteMaySeeOldOrNew(t *testing.T) {
	mustOk(t, []Op{
		w(1, 10, 0, 1),
		w(1, 20, 2, 10),
		r(1, 10, 3, 4), // old value while write in flight: fine
		r(1, 20, 5, 6), // new value later: fine (write took effect in between)
	})
}

func TestReadBehindAnomalyRejected(t *testing.T) {
	// §3 read-behind anomaly: client writes, write completes, then a
	// lagging replica returns the old value.
	mustFail(t, []Op{
		w(1, 10, 0, 1),
		w(1, 20, 2, 3), // completed
		r(1, 10, 4, 5), // stale
	})
}

func TestDeleteSemantics(t *testing.T) {
	mustOk(t, []Op{
		w(1, 10, 0, 1),
		w(1, -2, 2, 3), // delete (unique negative id)
		r(1, 0, 4, 5),  // not found
	})
	mustFail(t, []Op{
		w(1, 10, 0, 1),
		w(1, -2, 2, 3),
		r(1, 10, 4, 5), // deleted value resurfaced
	})
}

func TestPendingWriteMayOrMayNotApply(t *testing.T) {
	// A write with no response may have taken effect…
	mustOk(t, []Op{
		w(1, 10, 0, -1), // pending forever
		r(1, 10, 5, 6),  // observed: write linearized before the read
	})
	// …or not.
	mustOk(t, []Op{
		w(1, 10, 0, -1),
		r(1, 0, 5, 6),
	})
	// But it cannot both apply and unapply.
	mustFail(t, []Op{
		w(1, 10, 0, -1),
		r(1, 10, 5, 6),
		r(1, 0, 7, 8),
	})
}

func TestPendingWriteCannotApplyBeforeInvocation(t *testing.T) {
	mustFail(t, []Op{
		r(1, 10, 0, 1), // reads the value before the write was even invoked
		w(1, 10, 5, -1),
	})
}

func TestPendingReadsDropped(t *testing.T) {
	mustOk(t, []Op{
		w(1, 10, 0, 1),
		{Key: 1, Write: false, Value: 999, Invoke: 2, Return: -1}, // never returned
	})
}

func TestKeysIndependent(t *testing.T) {
	mustOk(t, []Op{
		w(1, 10, 0, 1),
		w(2, 20, 0, 1),
		r(1, 10, 2, 3),
		r(2, 20, 2, 3),
	})
	// Violation localized to key 2.
	res := Check([]Op{
		w(1, 10, 0, 1),
		r(1, 10, 2, 3),
		w(2, 20, 0, 1),
		r(2, 0, 2, 3),
	})
	if res.Ok || res.Key != 2 {
		t.Fatalf("violation not localized: %+v", res)
	}
}

func TestInvertedTimestampsRejected(t *testing.T) {
	res := Check([]Op{{Key: 1, Write: true, Value: 1, Invoke: 5, Return: 2}})
	if res.Ok || !res.Decided {
		t.Fatalf("inverted timestamps accepted: %+v", res)
	}
}

func TestOpsPerKeyLimit(t *testing.T) {
	var ops []Op
	for i := int64(0); i < 600; i++ {
		ops = append(ops, w(1, i+1, i*2, i*2+1))
	}
	res := Check(ops)
	if res.Decided {
		t.Fatal("over-limit key decided")
	}
	res = CheckConfig(ops, Config{MaxOpsPerKey: 1000})
	if !res.Decided || !res.Ok {
		t.Fatalf("sequential 600-op history should verify quickly: %+v", res)
	}
}

func TestLongValidConcurrentHistory(t *testing.T) {
	// Simulated closed-loop clients against an atomic register: always
	// linearizable by construction; exercises the search at depth.
	rng := rand.New(rand.NewSource(42))
	var ops []Op
	var cur int64 // register value
	now := int64(0)
	nextVal := int64(1)
	for i := 0; i < 120; i++ {
		now += int64(rng.Intn(3) + 1)
		if rng.Intn(3) == 0 {
			cur = nextVal
			ops = append(ops, w(7, nextVal, now, now+2))
			nextVal++
		} else {
			ops = append(ops, r(7, cur, now, now+2))
		}
		now += 3 // strictly sequential: no overlap
	}
	mustOk(t, ops)
}

func TestOverlappingWritesWithInterleavedReads(t *testing.T) {
	// A tangle of overlapping ops with a consistent explanation.
	mustOk(t, []Op{
		w(1, 1, 0, 10),
		w(1, 2, 1, 9),
		w(1, 3, 2, 8),
		r(1, 3, 3, 7),
		r(1, 3, 11, 12),
	})
}

func TestWriteCycleRejected(t *testing.T) {
	// Sequential writes 1 then 2; reads observe 2 then 1 after both
	// writes returned: impossible.
	mustFail(t, []Op{
		w(1, 1, 0, 1),
		w(1, 2, 2, 3),
		r(1, 2, 4, 5),
		r(1, 1, 6, 7),
	})
}
