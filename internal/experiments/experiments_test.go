package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tiny is the smallest scale: every figure function must still produce
// well-formed, direction-correct series.
const tiny Scale = 0.1

func TestFig5aShape(t *testing.T) {
	series := Fig5a(tiny)
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s has nonpositive latency", s.Name)
			}
		}
	}
	// Harmonia must reach a higher max read throughput than CR.
	crMax, hMax := maxX(series[0]), maxX(series[1])
	if hMax < 1.5*crMax {
		t.Fatalf("no read scaling in Fig5a: CR=%.2f Harmonia=%.2f", crMax, hMax)
	}
}

func TestFig5bWritePathsEqual(t *testing.T) {
	series := Fig5b(tiny)
	crMax, hMax := maxX(series[0]), maxX(series[1])
	ratio := hMax / crMax
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("write-only curves diverge: CR=%.2f Harmonia=%.2f", crMax, hMax)
	}
}

func TestFig6aReadThroughputDecaysWithWrites(t *testing.T) {
	series := Fig6a(tiny)
	h := series[1]
	first, last := h.Points[0].Y, h.Points[len(h.Points)-1].Y
	if first <= last {
		t.Fatalf("Harmonia read throughput did not decay with write rate: %v → %v", first, last)
	}
	// At low write rate Harmonia ≳ 2× CR.
	if h.Points[0].Y < 2*series[0].Points[0].Y {
		t.Fatalf("Harmonia not ahead at low write rate: %v vs %v", h.Points[0].Y, series[0].Points[0].Y)
	}
}

func TestFig6bConvergesAtHighWriteRatio(t *testing.T) {
	series := Fig6b(tiny)
	cr, h := series[0], series[1]
	// Read-only end: Harmonia wins big; write-only end: equal-ish.
	if h.Points[0].Y < 2*cr.Points[0].Y {
		t.Fatal("no win at read-only end")
	}
	lastRatio := h.Points[len(h.Points)-1].Y / cr.Points[len(cr.Points)-1].Y
	if lastRatio < 0.75 || lastRatio > 1.3 {
		t.Fatalf("write-only end diverges: ratio %.2f", lastRatio)
	}
}

func TestFig7ScalingShape(t *testing.T) {
	series := Fig7(tiny, 0)
	cr, h := series[0], series[1]
	// CR flat: max/min below 1.4.
	crMin, crMax := minMaxY(cr)
	if crMax/crMin > 1.4 {
		t.Fatalf("CR not flat: %v..%v", crMin, crMax)
	}
	// Harmonia at 10 replicas ≥ 4× CR (linear growth, allowing slack
	// at tiny scale).
	if h.Points[len(h.Points)-1].Y < 4*crMax {
		t.Fatalf("Harmonia at 10 replicas only %.2f vs CR %.2f", h.Points[len(h.Points)-1].Y, crMax)
	}
	// And growing monotonically-ish: last > first.
	if h.Points[len(h.Points)-1].Y <= h.Points[0].Y {
		t.Fatal("Harmonia not growing with replicas")
	}
}

func TestFig8SmallTablesThrottle(t *testing.T) {
	series := Fig8(tiny)
	for _, s := range series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if first >= last {
			t.Fatalf("%s: 4-slot table (%.2f) not slower than 64K (%.2f)", s.Name, first, last)
		}
	}
}

func TestFig9FamiliesImprove(t *testing.T) {
	for _, fam := range []string{"pb", "quorum"} {
		series := Fig9(tiny, fam)
		base := map[string]float64{}
		for _, s := range series {
			base[s.Name] = s.Points[0].Y // lowest write rate
		}
		checks := map[string]string{}
		if fam == "pb" {
			checks["Harmonia(PB)"] = "PB"
			checks["Harmonia(CR)"] = "CR"
		} else {
			checks["Harmonia(VR)"] = "VR"
			checks["Harmonia(NOPaxos)"] = "NOPaxos"
		}
		for h, b := range checks {
			if base[h] < 1.7*base[b] {
				t.Fatalf("%s (%.2f) not ≥1.7× %s (%.2f)", h, base[h], b, base[b])
			}
		}
	}
}

func TestFig9UnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fig9(tiny, "bogus")
}

func TestFig10IncidentShape(t *testing.T) {
	s := Fig10(0.5)
	if len(s.Points) < 10 {
		t.Fatalf("too few buckets: %d", len(s.Points))
	}
	// There must be a zero-throughput bucket (outage, starting at 20%
	// of the run) and recovery to at least half the pre-failure peak
	// afterwards.
	var pre float64
	outage := false
	var post float64
	for i, p := range s.Points {
		fifth := len(s.Points) / 5
		switch {
		case i < fifth:
			if p.Y > pre {
				pre = p.Y
			}
		default:
			if p.Y == 0 {
				outage = true
			}
			if outage && p.Y > post {
				post = p.Y
			}
		}
	}
	if pre == 0 {
		t.Fatal("no pre-failure throughput")
	}
	if !outage {
		t.Fatal("no outage observed")
	}
	if post < pre/2 {
		t.Fatalf("no recovery: pre=%.2f post=%.2f", pre, post)
	}
}

func TestAblationEagerCompletionsHurts(t *testing.T) {
	// Needs a window long enough for the jittered stamp/execution race
	// to fire a few times (the simulation is deterministic, so the
	// outcome is stable).
	s := AblationEagerCompletions(0.4)
	delayed, eager := s[0].Points[0].Y, s[1].Points[0].Y
	if eager <= delayed {
		t.Fatalf("eager completions rejection rate (%.2f%%) not above delayed (%.2f%%)", eager, delayed)
	}
}

func TestAblationLazyCleanupHelps(t *testing.T) {
	s := AblationLazyCleanup(tiny)
	on, off := s[0].Points[0].Y, s[1].Points[0].Y
	if off >= on {
		t.Fatalf("cleanup off (%.2f) not slower than on (%.2f) under completion loss", off, on)
	}
}

func TestAblationStagesHelp(t *testing.T) {
	s := AblationStages(tiny)
	// The experiment's core claim is collision resolution: at equal
	// memory, the multi-stage table must reject far fewer writes.
	var singleDrops, multiDrops int
	if _, err := fmt.Sscanf(s[0].Name[strings.Index(s[0].Name, "drops="):], "drops=%d", &singleDrops); err != nil {
		t.Fatalf("parse drops from %q: %v", s[0].Name, err)
	}
	if _, err := fmt.Sscanf(s[1].Name[strings.Index(s[1].Name, "drops="):], "drops=%d", &multiDrops); err != nil {
		t.Fatalf("parse drops from %q: %v", s[1].Name, err)
	}
	if multiDrops*2 >= singleDrops {
		t.Fatalf("multi-stage drops (%d) not well below single-stage (%d)", multiDrops, singleDrops)
	}
	// Throughput should stay in the same ballpark (dropped writes are
	// reissued instantly, so the rates differ only at second order; a
	// wide band keeps the check robust to interleaving shifts).
	single, multi := s[0].Points[0].Y, s[1].Points[0].Y
	if multi <= single*0.85 {
		t.Fatalf("multi-stage (%.2f) not at least on par with single-stage (%.2f)", multi, single)
	}
}

func maxX(s Series) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

func minMaxY(s Series) (float64, float64) {
	min, max := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	return min, max
}
