// Package experiments regenerates every figure of the paper's
// evaluation (§9). Each function returns the same series the paper
// plots; bench_test.go and cmd/harmonia-bench share them. A Scale
// parameter shrinks the simulated windows so the full suite fits in a
// CI budget; Scale 1.0 approximates the durations used in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// TraceDir, when set (harmonia-bench -trace dir), makes the figure
// runs that exercise control-plane machinery dump their cluster's
// flight recorder as Chrome trace_event JSON — TRACE_fig<name>.json
// next to the BENCH_fig<name>.json snapshots — so a Fig E or Fig K run
// produces an openable timeline of migrations, rebalancer rounds,
// hot-key lifecycles, and epoch bumps.
var TraceDir string

// maybeDumpTrace writes c's flight recorder to
// TraceDir/TRACE_fig<fig>.json; a dump failure is reported, not fatal
// (the figure data is the product, the trace is a side artifact).
func maybeDumpTrace(fig string, c *cluster.Cluster) {
	if TraceDir == "" {
		return
	}
	if err := os.MkdirAll(TraceDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "trace dump: %v\n", err)
		return
	}
	path := filepath.Join(TraceDir, "TRACE_fig"+fig+".json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace dump: %v\n", err)
		return
	}
	defer f.Close()
	if err := c.WriteChromeTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "trace dump %s: %v\n", path, err)
	}
}

// Scale multiplies all measurement windows. Benchmarks use a small
// scale; the CLI defaults to 1.0.
type Scale float64

func (s Scale) win(base time.Duration) time.Duration {
	if s <= 0 {
		s = 1
	}
	d := time.Duration(float64(base) * float64(s))
	if d < 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	return d
}

const (
	defaultKeys = 100000 // ~1M in the paper; smaller key space, same contention regime
	warmup      = 5 * time.Millisecond
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// newCluster builds the standard experiment cluster.
func newCluster(p cluster.Protocol, replicas int, useHarmonia bool, seed int64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Protocol: p, Replicas: replicas, UseHarmonia: useHarmonia, Seed: seed,
	})
}

// saturate measures closed-loop saturation throughput.
func saturate(c *cluster.Cluster, clients int, writeRatio float64, dist cluster.Dist, keys int, window time.Duration) cluster.Report {
	return c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: clients, Duration: window, Warmup: warmup,
		WriteRatio: writeRatio, Keys: keys, Dist: dist,
	})
}

// Fig5a sweeps an open-loop read-only load and reports latency vs
// achieved throughput for CR and Harmonia(CR), 3 replicas.
func Fig5a(s Scale) []Series {
	return latencyThroughput(s, 0)
}

// Fig5b is the write-only variant: the curves coincide because
// Harmonia leaves the write path untouched.
func Fig5b(s Scale) []Series {
	return latencyThroughput(s, 1)
}

func latencyThroughput(s Scale, writeRatio float64) []Series {
	window := s.win(40 * time.Millisecond)
	out := make([]Series, 2)
	for i, h := range []bool{false, true} {
		name := "CR"
		if h {
			name = "Harmonia"
		}
		// Capacity ceiling: one server read-only ≈ 0.92 MRPS; writes
		// ≈ 0.8; Harmonia reads ≈ 3 servers.
		max := 0.92e6
		if writeRatio == 1 {
			max = 0.80e6
		} else if h {
			max = 3 * 0.92e6
		}
		var pts []Point
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
			c := newCluster(cluster.Chain, 3, h, int64(1000*frac)+1)
			rep := c.RunLoad(cluster.LoadSpec{
				Mode: cluster.Open, Rate: frac * max, Duration: window, Warmup: warmup,
				WriteRatio: writeRatio, Keys: defaultKeys,
			})
			pts = append(pts, Point{X: rep.Throughput / 1e6, Y: float64(rep.Latency.Mean()) / float64(time.Millisecond)})
		}
		out[i] = Series{Name: name, Points: pts}
	}
	return out
}

// Fig6a fixes the write rate (open-loop writers) and measures the
// saturated read throughput (closed-loop readers), 3 replicas.
func Fig6a(s Scale) []Series {
	window := s.win(30 * time.Millisecond)
	writeRates := []float64{0.05e6, 0.2e6, 0.4e6, 0.6e6, 0.75e6}
	out := make([]Series, 2)
	for i, h := range []bool{false, true} {
		name := "CR"
		if h {
			name = "Harmonia"
		}
		var pts []Point
		for _, wr := range writeRates {
			c := newCluster(cluster.Chain, 3, h, int64(wr/1000)+7)
			reps := c.RunLoads([]cluster.LoadSpec{
				{Mode: cluster.Closed, Clients: 256, Duration: window, Warmup: warmup,
					WriteRatio: 0, Keys: defaultKeys},
				{Mode: cluster.Open, Rate: wr, Duration: window, Warmup: warmup,
					WriteRatio: 1, Keys: defaultKeys},
			})
			pts = append(pts, Point{X: reps[1].WriteThroughput / 1e6, Y: reps[0].ReadThroughput / 1e6})
		}
		out[i] = Series{Name: name, Points: pts}
	}
	return out
}

// Fig6b sweeps the write ratio and reports total saturated throughput.
func Fig6b(s Scale) []Series {
	window := s.win(30 * time.Millisecond)
	ratios := []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 1}
	out := make([]Series, 2)
	for i, h := range []bool{false, true} {
		name := "CR"
		if h {
			name = "Harmonia"
		}
		var pts []Point
		for _, r := range ratios {
			c := newCluster(cluster.Chain, 3, h, int64(r*100)+3)
			rep := saturate(c, 256, r, cluster.Uniform, defaultKeys, window)
			pts = append(pts, Point{X: r * 100, Y: rep.Throughput / 1e6})
		}
		out[i] = Series{Name: name, Points: pts}
	}
	return out
}

// Fig7 sweeps the replica count for a workload mix; used for 7(a)
// read-only, 7(b) write-only, and 7(c) 5% writes.
func Fig7(s Scale, writeRatio float64) []Series {
	window := s.win(25 * time.Millisecond)
	out := make([]Series, 2)
	for i, h := range []bool{false, true} {
		name := "CR"
		if h {
			name = "Harmonia"
		}
		var pts []Point
		for n := 2; n <= 10; n++ {
			c := newCluster(cluster.Chain, n, h, int64(n))
			rep := saturate(c, 96*n, writeRatio, cluster.Uniform, defaultKeys, window)
			pts = append(pts, Point{X: float64(n), Y: rep.Throughput / 1e6})
		}
		out[i] = Series{Name: name, Points: pts}
	}
	return out
}

// Fig8 sweeps the dirty-set hash-table size under uniform and
// zipf-0.9 workloads with 5% writes, 3 replicas, Harmonia(CR). Small
// tables drop colliding writes (retries throttle clients), and the
// skewed workload suffers longer because hot keys pin slots.
func Fig8(s Scale) []Series {
	window := s.win(25 * time.Millisecond)
	slots := []int{4, 16, 64, 256, 1024, 4096, 65536}
	out := make([]Series, 2)
	for i, dist := range []cluster.Dist{cluster.Uniform, cluster.Zipf09} {
		name := "uniform"
		if dist == cluster.Zipf09 {
			name = "zipf-0.9"
		}
		var pts []Point
		for _, m := range slots {
			c := cluster.New(cluster.Config{
				Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
				Stages: 1, SlotsPerStage: m, Seed: int64(m) + 11,
			})
			rep := saturate(c, 256, 0.05, dist, defaultKeys, window)
			pts = append(pts, Point{X: float64(m), Y: rep.Throughput / 1e6})
		}
		out[i] = Series{Name: name, Points: pts}
	}
	return out
}

// Fig9 reproduces the generality study: read throughput as a function
// of the write rate for a protocol family, each protocol ± Harmonia.
// family "pb" covers PB/CR/CRAQ (Fig. 9a); "quorum" covers VR/NOPaxos
// (Fig. 9b).
func Fig9(s Scale, family string) []Series {
	window := s.win(25 * time.Millisecond)
	type sys struct {
		name string
		p    cluster.Protocol
		h    bool
	}
	var systems []sys
	switch family {
	case "pb":
		systems = []sys{
			{"PB", cluster.PB, false},
			{"CR", cluster.Chain, false},
			{"CRAQ", cluster.CRAQ, false},
			{"Harmonia(PB)", cluster.PB, true},
			{"Harmonia(CR)", cluster.Chain, true},
		}
	case "quorum":
		systems = []sys{
			{"VR", cluster.VR, false},
			{"NOPaxos", cluster.NOPaxos, false},
			{"Harmonia(VR)", cluster.VR, true},
			{"Harmonia(NOPaxos)", cluster.NOPaxos, true},
		}
	default:
		panic("experiments: unknown family " + family)
	}
	writeRates := []float64{0.02e6, 0.1e6, 0.25e6, 0.45e6}
	out := make([]Series, 0, len(systems))
	for _, sy := range systems {
		var pts []Point
		for _, wr := range writeRates {
			c := newCluster(sy.p, 3, sy.h, int64(wr/1e4)+int64(sy.p)*17+3)
			reps := c.RunLoads([]cluster.LoadSpec{
				{Mode: cluster.Closed, Clients: 256, Duration: window, Warmup: warmup,
					WriteRatio: 0, Keys: defaultKeys},
				{Mode: cluster.Open, Rate: wr, Duration: window, Warmup: warmup,
					WriteRatio: 1, Keys: defaultKeys},
			})
			pts = append(pts, Point{X: reps[1].WriteThroughput / 1e6, Y: reps[0].ReadThroughput / 1e6})
		}
		out = append(out, Series{Name: sy.name, Points: pts})
	}
	return out
}

// Fig10 runs the switch stop/reactivate incident and returns the
// throughput time series. The paper's 100-second timeline is
// compressed 1000:1 (seconds → milliseconds): stop at 20ms of a
// 100ms run, reactivate at 30ms.
func Fig10(s Scale) Series {
	total := s.win(100 * time.Millisecond)
	stopAt := total / 5
	reviveAt := total * 3 / 10
	bucket := total / 50
	c := newCluster(cluster.Chain, 3, true, 19)
	c.Engine().After(stopAt, func() { c.StopSwitch() })
	c.Engine().After(reviveAt, func() { c.ReactivateSwitch() })
	rep := c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 128, Duration: total, Warmup: 0,
		WriteRatio: 0.05, Keys: defaultKeys, Bucket: bucket,
	})
	var pts []Point
	if rep.Series != nil {
		for _, p := range rep.Series.Points() {
			pts = append(pts, Point{X: p.Start.Seconds() * 1000, Y: p.Rate / 1e6})
		}
	}
	return Series{Name: "Harmonia (switch stop/reactivate)", Points: pts}
}

// FigS is the sharding experiment (§6.1, beyond the paper's testbed):
// aggregate saturated throughput as the replica-group count grows, one
// switch front-end over N groups of 3 chain replicas, 5% writes,
// zipf-0.9 per shard. The client pool is sharded with the data
// (PinGroups) so each group saturates independently; the second series
// is the ideal N × single-group line for comparison.
func FigS(s Scale) []Series {
	window := s.win(20 * time.Millisecond)
	counts := []int{1, 2, 4, 8}
	var measured, ideal []Point
	base := 0.0
	for _, g := range counts {
		c := cluster.New(cluster.Config{
			Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
			Groups: g, Seed: int64(g)*13 + 41,
		})
		rep := c.RunLoad(cluster.LoadSpec{
			Mode: cluster.Closed, Clients: 128 * g, Duration: window, Warmup: warmup,
			WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Zipf09, PinGroups: true,
		})
		y := rep.Throughput / 1e6
		if g == 1 {
			base = y
		}
		measured = append(measured, Point{X: float64(g), Y: y})
		ideal = append(ideal, Point{X: float64(g), Y: base * float64(g)})
	}
	return []Series{
		{Name: "Harmonia(CR) sharded", Points: measured},
		{Name: "ideal linear", Points: ideal},
	}
}

// AblationEagerCompletions compares VR's delayed write-completions
// (§7.3) with completions released at commit time. Eager completions
// let the commit stamp outrun replicas that have not yet executed, so
// fast-path reads bounce off them back to the leader; the paper delays
// completions precisely "to reduce the number of rejected fast-path
// reads". The reported Y value is the rejected fraction of fast reads
// (percent).
func AblationEagerCompletions(s Scale) []Series {
	window := s.win(25 * time.Millisecond)
	out := make([]Series, 2)
	for i, eager := range []bool{false, true} {
		name := "delayed (paper §7.3)"
		if eager {
			name = "eager (ablation)"
		}
		// Jitter matters here: with perfectly FIFO symmetric links a
		// commit notice always reaches a replica before any read
		// stamped after it, so the race §7.3 worries about needs the
		// delay variance real networks have.
		c := cluster.New(cluster.Config{
			Protocol: cluster.VR, Replicas: 3, UseHarmonia: true,
			EagerCompletions: eager, Seed: 23,
			LinkJitter: 30 * time.Microsecond,
		})
		_ = saturate(c, 256, 0.05, cluster.Uniform, defaultKeys, window)
		served, rejected, _ := c.ShimStats()
		frac := 0.0
		if served+rejected > 0 {
			frac = 100 * float64(rejected) / float64(served+rejected)
		}
		out[i] = Series{Name: name, Points: []Point{{X: 0, Y: frac}}}
	}
	return out
}

// AblationLazyCleanup measures throughput with and without §5.2's
// stray-entry reclamation while write-completions are being dropped on
// the replica→switch reply path (targeted loss: read traffic is
// untouched). Without reclamation, stray dirty-set entries accumulate,
// reads of those objects are forced onto the tail forever, and the
// table eventually fills and drops writes.
func AblationLazyCleanup(s Scale) []Series {
	window := s.win(25 * time.Millisecond)
	dropCompletions := func(msg simnet.Message) bool {
		pkt, ok := msg.(*wire.Packet)
		return ok && (pkt.Op == wire.OpWriteReply || pkt.Op == wire.OpWriteCompletion)
	}
	out := make([]Series, 2)
	for i, disabled := range []bool{false, true} {
		name := "lazy cleanup on"
		if disabled {
			name = "lazy cleanup off (ablation)"
		}
		c := cluster.New(cluster.Config{
			Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
			DisableLazyCleanup: disabled, Seed: 29,
			Stages: 1, SlotsPerStage: 512,
		})
		for r := 0; r < 3; r++ {
			c.Network().SetLink(c.ReplicaAddr(r), c.SwitchAddr(), simnet.LinkConfig{
				Latency: 5 * time.Microsecond, DropProb: 0.3, DropFilter: dropCompletions,
			})
		}
		rep := saturate(c, 128, 0.05, cluster.Uniform, 2000, window)
		out[i] = Series{Name: name, Points: []Point{{X: 0, Y: rep.Throughput / 1e6}}}
	}
	return out
}

// AblationStages compares 1 stage × M slots against 3 stages × M/3
// slots at equal memory under a skewed workload: multi-stage tables
// resolve collisions that a single stage cannot.
func AblationStages(s Scale) []Series {
	window := s.win(25 * time.Millisecond)
	const total = 48
	cfgs := []struct {
		name          string
		stages, slots int
	}{
		{"1 stage × 48", 1, total},
		{"3 stages × 16", 3, total / 3},
	}
	out := make([]Series, len(cfgs))
	for i, cf := range cfgs {
		c := cluster.New(cluster.Config{
			Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
			Stages: cf.stages, SlotsPerStage: cf.slots, Seed: 31,
		})
		rep := saturate(c, 128, 0.3, cluster.Zipf09, 2000, window)
		drops := c.Scheduler().Stats.WritesDropped
		out[i] = Series{Name: fmt.Sprintf("%s (drops=%d)", cf.name, drops),
			Points: []Point{{X: 0, Y: rep.Throughput / 1e6}}}
	}
	return out
}
