package experiments

import "testing"

// TestFigAAcceptance holds the autonomous-rebalancing experiment to
// its acceptance criteria: with AutoRebalance on and an unpinned
// zipf-1.2 workload landing on a skewed placement, converged aggregate
// throughput reaches ≥1.5× the static baseline with zero
// linearizability violations and Rebalances > 0 — and the same policy
// makes no moves on a uniform workload (the hysteresis holds).
func TestFigAAcceptance(t *testing.T) {
	series, res := FigADetail(tiny)
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	if len(series[0].Points) == 0 {
		t.Fatal("empty convergence timeline")
	}
	if res.StaticThroughput <= 0 {
		t.Fatal("no baseline throughput")
	}
	if res.Rebalances == 0 {
		t.Fatal("the control loop never moved a slot")
	}
	ratio := res.AutoThroughput / res.StaticThroughput
	if ratio < 1.5 {
		t.Fatalf("auto-rebalance reached only %.2fx of the static baseline (static %.0f, auto %.0f, %d moves)",
			ratio, res.StaticThroughput, res.AutoThroughput, res.Rebalances)
	}
	if res.UniformRebalances != 0 {
		t.Fatalf("policy moved %d slots on a uniform workload (hysteresis failed)", res.UniformRebalances)
	}
	if !res.Linearizable {
		t.Fatal("per-group linearizability failed while the rebalancer migrated under chaos")
	}
}
