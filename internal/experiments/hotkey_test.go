package experiments

import "testing"

// TestFigKAcceptance holds the hot-key replication experiment to its
// acceptance criteria: on a celebrity-key workload (one key well above
// 10% of traffic, zipf-1.2 background) the promoted run must beat the
// PR 7 auto-rebalance baseline by ≥1.5× aggregate, the promotion must
// have fired autonomously, the key must demote once the skew stops,
// and the chaos-verify phase must stay linearizable per key.
//
// The run uses a mid scale rather than tiny: promotion is a control
// loop with a detect→refresh ramp, and a 2ms window would measure
// mostly the ramp.
func TestFigKAcceptance(t *testing.T) {
	series, res := FigKDetail(0.35)
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, sr := range series {
		if len(sr.Points) == 0 {
			t.Fatalf("series %q is empty", sr.Name)
		}
	}
	if res.BaseThroughput <= 0 || res.HotThroughput <= 0 {
		t.Fatalf("degenerate throughputs: base %.0f hot %.0f", res.BaseThroughput, res.HotThroughput)
	}
	if res.HotShare < 0.10 {
		t.Fatalf("celebrity key drew only %.1f%% of traffic, want ≥10%%", 100*res.HotShare)
	}
	if res.Promotions == 0 {
		t.Fatal("the stuck-slot escape never promoted the key")
	}
	if res.Speedup < 1.5 {
		t.Fatalf("speedup %.2fx (base %.2f MRPS, promoted %.2f MRPS), want ≥1.5x",
			res.Speedup, res.BaseThroughput/1e6, res.HotThroughput/1e6)
	}
	if !res.Demoted {
		t.Fatal("key stayed promoted after the skew stopped")
	}
	if !res.Linearizable {
		t.Fatal("per-key linearizability failed under drops + holder removal")
	}
}
