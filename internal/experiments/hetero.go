package experiments

import (
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/wire"
)

// HeteroResult is the measured outcome of the Fig H experiment,
// exposed so its test can hold the acceptance criteria against real
// numbers rather than curve shapes.
type HeteroResult struct {
	// HeteroThroughput is the aggregate of the heterogeneous rack with
	// capacity-weighted shards and a capacity-weighted client router;
	// BaselineThroughput is the SAME hardware misconfigured as uniform
	// (every group treated as an equal — even slot shards, even client
	// split). Speedup is their ratio.
	HeteroThroughput   float64
	BaselineThroughput float64
	Speedup            float64
	// GroupOps is the heterogeneous run's per-group completion count:
	// the big shard visibly carries the capacity-weighted share.
	GroupOps []uint64
	// SlotShare counts the routing slots each group owns at boot under
	// the weighted layout; Weights are the derived capacity weights.
	SlotShare []int
	Weights   []float64
	// Protocols and Replicas describe the rack: ≥2 distinct protocols
	// and ≥2 distinct group sizes make it genuinely heterogeneous.
	Protocols []string
	Replicas  []int
	// Linearizable reports the chaos-verify phase: a recorded
	// heterogeneous rack under packet drops and reordering, with a
	// replica crash in the big group and a cross-protocol slot
	// migration mid-run, every group's history checked independently.
	Linearizable bool
}

// figHSpecs is the heterogeneous rack: one hot 7-replica Harmonia(CR)
// shard in front of two cold 3-replica NOPaxos shards — two protocols,
// two group sizes, one rack.
func figHSpecs() []cluster.GroupSpec {
	return []cluster.GroupSpec{
		{Protocol: cluster.Chain, Replicas: 7},
		{Protocol: cluster.NOPaxos, Replicas: 3},
		{Protocol: cluster.NOPaxos, Replicas: 3},
	}
}

// figHCluster builds the Fig H rack. uniform misconfigures it: the
// same hardware, but every group's capacity weight forced to 1, so the
// slot shards split evenly and the pinned client pool spreads evenly —
// the pre-heterogeneity treatment of a heterogeneous rack.
func figHCluster(uniform bool, seed int64, record bool) *cluster.Cluster {
	specs := figHSpecs()
	if uniform {
		for i := range specs {
			specs[i].Weight = 1
		}
	}
	return cluster.New(cluster.Config{
		UseHarmonia:   true,
		GroupSpecs:    specs,
		Switches:      2,
		Seed:          seed,
		RecordHistory: record,
	})
}

// FigH is the heterogeneous-topology experiment: aggregate saturated
// throughput of a capacity-weighted heterogeneous rack against the
// same hardware misconfigured as uniform. The weighted configuration
// routes the 7-replica shard proportionally more clients (and routing
// slots), so the big shard saturates instead of idling while the small
// shards queue.
func FigH(s Scale) []Series {
	series, _ := FigHDetail(s)
	return series
}

// FigHDetail runs Fig H and returns both the plotted series and the
// measured result.
func FigHDetail(s Scale) ([]Series, HeteroResult) {
	window := s.win(20 * time.Millisecond)
	var res HeteroResult

	specs := figHSpecs()
	for _, sp := range specs {
		res.Protocols = append(res.Protocols, sp.Protocol.String())
		res.Replicas = append(res.Replicas, sp.Replicas)
	}

	// The client pool is sized so the uniform split cannot saturate
	// the 7-replica shard while the weighted split can — the regime a
	// real front-end fleet operates in (offered load comparable to
	// rack capacity, not infinitely above it).
	const clients = 288
	spec := cluster.LoadSpec{
		Mode: cluster.Closed, Clients: clients,
		Duration: window, Warmup: warmup,
		WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Uniform, PinGroups: true,
	}

	base := figHCluster(true, 301, false)
	res.BaselineThroughput = base.RunLoad(spec).Throughput

	het := figHCluster(false, 301, false)
	res.Weights = het.GroupWeights()
	res.SlotShare = make([]int, het.Groups())
	for _, g := range het.SlotTable() {
		res.SlotShare[g]++
	}
	rep := het.RunLoad(spec)
	res.HeteroThroughput = rep.Throughput
	res.GroupOps = rep.GroupOps
	if res.BaselineThroughput > 0 {
		res.Speedup = res.HeteroThroughput / res.BaselineThroughput
	}

	res.Linearizable = figHChaosVerify(s)

	groupPoints := func(ops []uint64, d time.Duration) []Point {
		out := make([]Point, len(ops))
		for g, n := range ops {
			out[g] = Point{X: float64(g), Y: float64(n) / d.Seconds() / 1e6}
		}
		return out
	}
	out := []Series{
		{Name: "uniform misconfigured", Points: []Point{{X: 0, Y: res.BaselineThroughput / 1e6}}},
		{Name: "hetero weighted", Points: []Point{{X: 0, Y: res.HeteroThroughput / 1e6}}},
		{Name: "hetero per-group", Points: groupPoints(res.GroupOps, window)},
	}
	return out, res
}

// figHChaosVerify runs the heterogeneous rack through the chaos
// matrix's staples — 1% drops, 2% reordering, a replica crash in the
// 7-replica group, and a cross-protocol slot migration mid-run — on a
// recorded cluster small enough for the checker.
func figHChaosVerify(s Scale) bool {
	window := s.win(14 * time.Millisecond)
	c := cluster.New(cluster.Config{
		UseHarmonia: true,
		GroupSpecs:  figHSpecs(),
		DropProb:    0.01, ReorderProb: 0.02, ReorderDelay: 30 * time.Microsecond,
		Seed: 307, RecordHistory: true,
	})
	// A populated group-0 (CR) slot migrates into a NOPaxos group
	// while clients hammer both — the cross-protocol handoff as
	// steady-state topology maintenance.
	c.Engine().After(window/4, func() {
		for slot := 0; slot < wire.NumSlots; slot++ {
			if c.SlotTable()[slot] == 0 {
				if _, err := c.StartBatchMigration([]int{slot}, 1); err == nil {
					break
				}
			}
		}
	})
	c.Engine().After(window/3, func() { _ = c.CrashReplicaIn(0, 3) })
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 16, Duration: window, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.3, Keys: 96, Dist: cluster.Uniform,
	})
	c.RunFor(20 * time.Millisecond) // settle retries, the crash, the handoff
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
