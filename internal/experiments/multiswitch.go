package experiments

import (
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// MultiSwitchResult is the measured outcome of the Fig M experiment,
// exposed so its test can hold the acceptance criteria against real
// numbers rather than curve shapes.
type MultiSwitchResult struct {
	// Scaling holds (switches, aggregate MOPS) at a fixed
	// groups-per-switch: the rack-growth curve.
	Scaling []Point
	// Speedup4 is the 4-switch aggregate over the 1-switch baseline
	// (same groups-per-switch, so the rack is 4× the hardware).
	Speedup4 float64
	// HealthyThroughput and CrashThroughput are the 4-switch aggregate
	// before and during a one-switch crash + replacement window;
	// CrashRetention is their ratio — the fraction of the rack that
	// keeps serving while one epoch domain reboots.
	HealthyThroughput float64
	CrashThroughput   float64
	CrashRetention    float64
	// GroupsPerSwitch and AgreementAcks4 pin the controller's
	// replacement cost: the acks for the crashed switch's agreement
	// must equal the live replicas of ITS groups (groups-per-switch ×
	// replicas), independent of rack size.
	GroupsPerSwitch int
	AgreementAcks4  uint64
	// CrossMigrated reports that a cross-switch MigrateSlots completed
	// under 1% packet drops; DestHeatPickup that the destination
	// front-end's heat registers took over accounting for the moved
	// slots.
	CrossMigrated  bool
	DestHeatPickup bool
	// Linearizable reports the chaos-verify phase: every group's
	// history stayed linearizable through the one-switch crash and
	// replacement under load.
	Linearizable bool
}

// figMGroupsPerSwitch fixes the hardware ratio across the sweep: each
// switch fronts this many 3-replica chain groups.
const figMGroupsPerSwitch = 2

// figMCluster builds one rack of the sweep.
func figMCluster(switches int, seed int64, record bool, dropProb float64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: figMGroupsPerSwitch * switches, Switches: switches,
		Seed: seed, RecordHistory: record, DropProb: dropProb,
	})
}

// FigM is the multi-switch rack experiment: aggregate saturated
// throughput as the switch count grows at a fixed groups-per-switch
// ratio (each front-end an independent epoch/lease domain over its own
// contiguous slot shard), plus the failure economics — crashing one of
// four switches costs only its own shard while the §5.3 replacement
// agreement touches only its own groups.
func FigM(s Scale) []Series {
	series, _ := FigMDetail(s)
	return series
}

// FigMDetail runs Fig M and returns both the plotted series and the
// measured result.
func FigMDetail(s Scale) ([]Series, MultiSwitchResult) {
	window := s.win(20 * time.Millisecond)
	var res MultiSwitchResult

	// Rack-growth sweep: uniform sharded workload, client pool pinned
	// to the data shards so every group saturates independently.
	counts := []int{1, 2, 4}
	var measured, ideal []Point
	base := 0.0
	for _, sw := range counts {
		c := figMCluster(sw, int64(sw)*17+101, false, 0)
		rep := c.RunLoad(cluster.LoadSpec{
			Mode: cluster.Closed, Clients: 128 * figMGroupsPerSwitch * sw,
			Duration: window, Warmup: warmup,
			WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Uniform, PinGroups: true,
		})
		y := rep.Throughput / 1e6
		if sw == 1 {
			base = y
		}
		measured = append(measured, Point{X: float64(sw), Y: y})
		ideal = append(ideal, Point{X: float64(sw), Y: base * float64(sw)})
		if sw == 4 && base > 0 {
			res.Speedup4 = y / base
		}
	}
	res.Scaling = measured

	// Crash economics: a healthy window, then a window during which
	// switch 1 crashes and is replaced — only its shard (1/4 of the
	// slots) stalls, so the aggregate retains roughly the other three
	// domains' share through the epoch handoff.
	crash := figMCluster(4, 211, false, 0)
	spec := cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 128 * figMGroupsPerSwitch * 4,
		Duration: window, Warmup: warmup,
		WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Uniform, PinGroups: true,
	}
	res.HealthyThroughput = crash.RunLoad(spec).Throughput
	crash.Engine().After(window/4, func() { _ = crash.CrashSwitch(1) })
	crash.Engine().After(window*3/5, func() { _ = crash.ReactivateSwitch(1) })
	res.CrashThroughput = crash.RunLoad(spec).Throughput
	if res.HealthyThroughput > 0 {
		res.CrashRetention = res.CrashThroughput / res.HealthyThroughput
	}
	crash.RunFor(10 * time.Millisecond) // let the agreement finish
	res.GroupsPerSwitch = figMGroupsPerSwitch
	res.AgreementAcks4 = crash.Rack().Stats(1).AcksReceived

	// Cross-switch migration under 1% drops: move a populated slot
	// from switch 0's shard to a group on switch 3 and check the
	// destination front-end's heat registers pick the slot up.
	res.CrossMigrated, res.DestHeatPickup = figMCrossMigrate(s)

	// Chaos-verify: the one-switch crash + replacement under live load
	// on a recorded cluster small enough for the checker, every group's
	// history slice verified independently.
	res.Linearizable = figMCrashVerify(s)

	out := []Series{
		{Name: "Harmonia(CR) multi-switch rack", Points: measured},
		{Name: "ideal linear", Points: ideal},
		{Name: "4-switch healthy", Points: []Point{{X: 0, Y: res.HealthyThroughput / 1e6}}},
		{Name: "4-switch, 1 crashed+replaced", Points: []Point{{X: 0, Y: res.CrashThroughput / 1e6}}},
	}
	return out, res
}

// figMCrossMigrate runs the lossy cross-switch handoff probe.
func figMCrossMigrate(s Scale) (migrated, heatPickup bool) {
	c := figMCluster(4, 223, false, 0.01)
	cl := c.NewSyncClient()
	// Populate a few keys and find one of their slots on switch 0.
	slot := -1
	var keys []string
	for i := 0; i < 512 && len(keys) < 6; i++ {
		k := workload.KeyName(i)
		sl := wire.SlotOf(wire.HashKey(k))
		if c.SwitchOf(sl) != 0 {
			continue
		}
		if slot == -1 {
			slot = sl
		}
		if sl != slot {
			continue
		}
		if err := cl.Set(k, []byte("m")); err != nil {
			return false, false
		}
		keys = append(keys, k)
	}
	dst := c.Rack().GroupsOf(3)[0]
	if err := c.MigrateSlots([]int{slot}, dst); err != nil {
		return false, false
	}
	for _, k := range keys {
		if v, ok, err := cl.Get(k); err != nil || !ok || string(v) != "m" {
			return false, false
		}
	}
	return true, c.FrontendOf(3).HeatOf(slot).Total() > 0
}

// figMCrashVerify replays the crash window on a recorded cluster and
// checks every group's history slice.
func figMCrashVerify(s Scale) bool {
	window := s.win(16 * time.Millisecond)
	c := figMCluster(4, 227, true, 0)
	c.Engine().After(window/4, func() { _ = c.CrashSwitch(2) })
	c.Engine().After(window/2, func() { _ = c.ReactivateSwitch(2) })
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 16, Duration: window, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.3, Keys: 96, Dist: cluster.Uniform,
	})
	c.RunFor(15 * time.Millisecond) // settle retries and the agreement
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
