package experiments

import (
	"runtime"
	"time"

	"harmonia/internal/cluster"
)

// PerfSnapshot is the machine-readable record of one Fig P run — the
// per-PR perf trajectory harmonia-bench serializes into
// BENCH_figP.json. Simulated numbers (Throughput, P50/P99) describe
// the modeled rack; wall-clock numbers (OpsPerWallSec, NsPerOp,
// AllocsPerOp) describe the simulator itself, which is what the
// zero-allocation work moves.
type PerfSnapshot struct {
	// SimOps is the total number of completed client operations across
	// the sweep (all offered-rate points).
	SimOps uint64 `json:"sim_ops"`
	// WallSeconds is the real time the sweep took.
	WallSeconds float64 `json:"wall_seconds"`
	// OpsPerWallSec is SimOps / WallSeconds: how many simulated
	// operations the simulator pushes through per real second — the
	// "aggregate open-loop throughput" the perf work is measured by.
	OpsPerWallSec float64 `json:"ops_per_wall_sec"`
	// NsPerOp is the inverse view: wall nanoseconds per simulated op.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations (mallocs) and
	// bytes per simulated op over the sweep, from runtime.MemStats.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Throughput is the simulated aggregate ops/second achieved at the
	// highest offered rate of the sweep.
	Throughput float64 `json:"throughput_ops_per_sec"`
	// P50Ns and P99Ns are simulated latency quantiles at the highest
	// offered rate.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// GroupOffered is the offered split of the highest-rate run: the
	// weight-aware draw must favor the big shard.
	GroupOffered []uint64 `json:"group_offered"`
	// Linearizable reports the chaos-verify phase: every group's
	// history linearizable through a one-switch crash + replacement
	// under drops, with the optimized fast paths in play.
	Linearizable bool `json:"linearizable"`
}

// figPerfGroupsPerSwitch pairs two replica groups behind each of the
// four front-ends, like Fig M's rack.
const figPerfGroupsPerSwitch = 2

// figPerfCluster builds the Fig P rack: 4 switches, 8 groups with
// deliberately unequal capacity (a 5-replica chain group and two
// NOPaxos multicast groups among plain 3-replica chains), so the
// weighted shards, the weight-aware open-loop draw, and the multicast
// write path are all on the measured path.
func figPerfCluster(seed int64, record bool, drop float64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		UseHarmonia: true, Switches: 4,
		GroupSpecs: []cluster.GroupSpec{
			{Protocol: cluster.Chain, Replicas: 5},
			{Protocol: cluster.Chain, Replicas: 3},
			{Protocol: cluster.NOPaxos, Replicas: 3},
			{Protocol: cluster.Chain, Replicas: 3},
			{Protocol: cluster.Chain, Replicas: 3},
			{Protocol: cluster.NOPaxos, Replicas: 3},
			{Protocol: cluster.Chain, Replicas: 3},
			{Protocol: cluster.Chain, Replicas: 3},
		},
		Seed: seed, RecordHistory: record, DropProb: drop,
	})
}

// FigPerf is the open-loop latency-vs-throughput sweep on the
// 4-switch weighted rack, instrumented for the simulator's own cost:
// wall time and heap allocations per simulated op.
func FigPerf(s Scale) []Series {
	series, _ := FigPerfDetail(s)
	return series
}

// FigPerfDetail runs Fig P and returns both the plotted series and the
// perf snapshot.
func FigPerfDetail(s Scale) ([]Series, PerfSnapshot) {
	window := s.win(15 * time.Millisecond)
	// Offered-rate sweep as fractions of the rack's rough aggregate
	// capacity (8 groups of spread-read chains ≈ 3×0.92 MRPS each at
	// 5% writes; stay below the knee so the open loop doesn't build an
	// unbounded queue at the top point).
	const aggMax = 8 * 3 * 0.92e6
	fracs := []float64{0.15, 0.3, 0.5, 0.7}

	var snap PerfSnapshot
	var meanPts, p99Pts []Point

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()

	for i, frac := range fracs {
		c := figPerfCluster(int64(300+i), false, 0)
		rep := c.RunLoad(cluster.LoadSpec{
			Mode: cluster.Open, Rate: frac * aggMax, Duration: window,
			Warmup: warmup, WriteRatio: 0.05, Keys: defaultKeys,
			Dist: cluster.Zipf09, PinGroups: true,
		})
		snap.SimOps += rep.Ops
		x := rep.Throughput / 1e6
		meanPts = append(meanPts, Point{X: x, Y: float64(rep.Latency.Mean()) / float64(time.Millisecond)})
		p99Pts = append(p99Pts, Point{X: x, Y: float64(rep.Latency.Quantile(0.99)) / float64(time.Millisecond)})
		if i == len(fracs)-1 {
			snap.Throughput = rep.Throughput
			snap.P50Ns = int64(rep.Latency.Quantile(0.5))
			snap.P99Ns = int64(rep.Latency.Quantile(0.99))
			snap.GroupOffered = rep.GroupOffered
		}
	}

	snap.WallSeconds = time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	if snap.SimOps > 0 {
		snap.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(snap.SimOps)
		snap.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(snap.SimOps)
		if snap.WallSeconds > 0 {
			snap.OpsPerWallSec = float64(snap.SimOps) / snap.WallSeconds
			snap.NsPerOp = snap.WallSeconds * 1e9 / float64(snap.SimOps)
		}
	}

	// Chaos-verify outside the timed window: the same rack, recorded,
	// 1% drops, one front-end crashed and replaced mid-load; every
	// group's history must stay linearizable with the fast paths on.
	snap.Linearizable = figPerfVerify()

	return []Series{
		{Name: "mean latency", Points: meanPts},
		{Name: "p99 latency", Points: p99Pts},
	}, snap
}

// figPerfVerify replays a small recorded chaos window on the Fig P
// rack — the sharded open-loop driver under 1% drops with one
// front-end crashed and replaced mid-load — and checks every group's
// history slice. The window and rate are fixed rather than scaled:
// the phase is a correctness verdict, not a statistic, and the
// checker's search must stay decidable (per-key op counts and the
// pending-write pileup a crashed shard's unanswered open-loop ops
// create both grow with the window).
func figPerfVerify() bool {
	const window = 12 * time.Millisecond
	c := figPerfCluster(317, true, 0.01)
	c.Engine().After(window/4, func() { _ = c.CrashSwitch(1) })
	c.Engine().After(window/2, func() { _ = c.ReactivateSwitch(1) })
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Open, Rate: 6e5, Duration: window, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.3, Keys: 160, Dist: cluster.Uniform, PinGroups: true,
	})
	c.RunFor(15 * time.Millisecond) // settle the replacement agreement
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
