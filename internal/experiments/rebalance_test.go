package experiments

import "testing"

// TestFigRAcceptance holds the rebalancing experiment to its
// acceptance criteria: ≥1.5× aggregate recovery after migrating the
// hot slots away, routing table agreeing with the groups observed to
// serve the migrated keys, and per-group linearizability under drops
// and reordering during the migration window.
func TestFigRAcceptance(t *testing.T) {
	series, res := FigRDetail(tiny)
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	if len(series[0].Points) == 0 {
		t.Fatal("empty rebalance timeline")
	}
	if len(res.MovedSlots) == 0 {
		t.Fatal("no slots migrated")
	}
	if res.PreThroughput <= 0 {
		t.Fatal("no pre-migration throughput")
	}
	ratio := res.PostThroughput / res.PreThroughput
	if ratio < 1.5 {
		t.Fatalf("aggregate recovered only %.2fx after rebalance (pre %.0f, post %.0f)",
			ratio, res.PreThroughput, res.PostThroughput)
	}
	if !res.RouteAgrees {
		t.Fatal("a migrated key was not served by its new group")
	}
	if !res.Linearizable {
		t.Fatal("per-group linearizability failed during the chaos migration window")
	}
	for i, d := range res.Dests {
		if d == res.HotGroup {
			t.Fatalf("slot %d migrated back to the hot group", res.MovedSlots[i])
		}
	}
}
