package experiments

import (
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/simnet"
	"harmonia/internal/workload"
)

// RebalanceResult is the measured outcome of the Fig R experiment,
// exposed so its test can hold the acceptance criteria against real
// numbers rather than curve shapes.
type RebalanceResult struct {
	HotGroup   int   // group the hot slots were pinned to
	MovedSlots []int // slots migrated away in the rebalance
	Dests      []int // destination group per moved slot

	PreThroughput  float64 // ops/s at the pinned hot-spot plateau
	PostThroughput float64 // ops/s after the rebalance

	// RouteAgrees reports that after the rebalance every migrated key
	// was observably served by the group its slot routes to (the reply
	// group stamped by the switch matched the slot table).
	RouteAgrees bool
	// Linearizable reports the chaos-verify phase: per-group
	// linearizability checks passed while slots migrated under 1%
	// drops and reordering.
	Linearizable bool
}

// figRKeys is the Fig R key-space size. Small enough that the zipf
// head carries most of the traffic, so pinning it on one group makes a
// textbook hot shard.
const figRKeys = 64

// hotSlots returns the routing slots of the hottest zipf ranks of the
// Fig R key space, deduplicated in rank order.
func hotSlots(c *cluster.Cluster, ranks int) []int {
	seen := make(map[int]bool)
	var out []int
	for r := 0; r < ranks; r++ {
		key := workload.KeyName(workload.ZipfKeyOfRank(figRKeys, r))
		s := c.SlotOfKey(key)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// FigR is the online group-rebalancing experiment: a zipf hot spot is
// pinned onto one replica group (by migrating the hottest keys' slots
// there), the closed-loop aggregate collapses onto the hot shard, and
// then the rebalancer migrates those slots away — live, mid-run, under
// 1% packet drops — spreading them over the other groups. The series
// shows the aggregate completion rate over time with the rebalance at
// the half-way mark; the companion FigRDetail numbers carry the
// acceptance criteria.
func FigR(s Scale) []Series {
	series, _ := FigRDetail(s)
	return series
}

// FigRDetail runs Fig R and returns both the plotted series and the
// measured result.
func FigRDetail(s Scale) ([]Series, RebalanceResult) {
	window := s.win(20 * time.Millisecond)
	var res RebalanceResult
	res.HotGroup = 0

	// The throughput cluster runs clean links at the plateaus — the
	// closed loop must measure server capacity, not retry stalls — and
	// turns 1% drops on for the migration window (below). The
	// linearizability-under-chaos verdict comes from the dedicated
	// recorded cluster in rebalanceChaosVerify.
	c := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 47,
	})

	// Pin the hot spot: move the hottest ranks' slots onto one group.
	slots := hotSlots(c, 12)
	for _, slot := range slots {
		if err := c.MigrateSlot(slot, res.HotGroup); err != nil {
			panic("experiments: pinning migration failed: " + err.Error())
		}
	}

	spec := cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 256, Duration: window, Warmup: warmup,
		WriteRatio: 0.05, Keys: figRKeys, Dist: cluster.Zipf09,
	}

	// Phase 1: the hot-spot plateau.
	pre := c.RunLoad(spec)
	res.PreThroughput = pre.Throughput

	// Phase 2: rebalance mid-run under 1% drops. The replica↔switch
	// links (fast reads, replies, the completions the drain depends
	// on) go lossy for the whole migration window, and the hottest
	// slots spread round-robin over the other three groups while the
	// load keeps running.
	setDrops := func(p float64) {
		lossy := simnet.LinkConfig{Latency: 5 * time.Microsecond, DropProb: p}
		for g := 0; g < c.Groups(); g++ {
			for i := 0; i < 3; i++ {
				c.Network().SetLinkBoth(c.GroupReplicaAddr(g, i), c.SwitchAddr(), lossy)
			}
		}
	}
	res.MovedSlots = slots
	res.Dests = make([]int, len(slots))
	migs := make([]*cluster.Migration, 0, len(slots))
	setDrops(0.01)
	c.Engine().After(warmup+window/4, func() {
		for i, slot := range slots {
			dest := 1 + i%3
			res.Dests[i] = dest
			m, err := c.StartSlotMigration(slot, dest)
			if err != nil {
				panic("experiments: rebalance migration failed: " + err.Error())
			}
			migs = append(migs, m)
		}
	})
	mid := spec
	mid.Bucket = window / 25
	midRep := c.RunLoad(mid)
	setDrops(0)

	// Phase 3: the recovered plateau.
	post := c.RunLoad(spec)
	res.PostThroughput = post.Throughput

	// Route agreement: every migrated key is now served by the group
	// its slot routes to, observed via the reply's group stamp.
	res.RouteAgrees = len(migs) == len(slots)
	for _, m := range migs {
		if !m.Done() {
			res.RouteAgrees = false
		}
	}
	table := c.SlotTable()
	cl := c.NewSyncClient()
	for r := 0; r < 12 && res.RouteAgrees; r++ {
		key := workload.KeyName(workload.ZipfKeyOfRank(figRKeys, r))
		if _, _, err := cl.Get(key); err != nil {
			res.RouteAgrees = false
			break
		}
		if cl.LastGroup() != table[c.SlotOfKey(key)] {
			res.RouteAgrees = false
		}
	}

	// Chaos-verify: the same handoff pattern on a recorded cluster
	// small enough for the linearizability checker, with drops and
	// reordering throughout the migration window.
	res.Linearizable = rebalanceChaosVerify(s)

	out := []Series{{Name: "Harmonia(CR) 4 groups, hot spot rebalanced", Points: nil}}
	if midRep.Series != nil {
		for _, p := range midRep.Series.Points() {
			out[0].Points = append(out[0].Points, Point{X: p.Start.Seconds() * 1000, Y: p.Rate / 1e6})
		}
	}
	out = append(out,
		Series{Name: "pre-rebalance plateau", Points: []Point{{X: 0, Y: res.PreThroughput / 1e6}}},
		Series{Name: "post-rebalance plateau", Points: []Point{{X: 0, Y: res.PostThroughput / 1e6}}},
	)
	return out, res
}

// rebalanceChaosVerify reruns the migration pattern on a
// history-recording cluster under packet loss and reordering and
// checks every group's history slice for linearizability.
func rebalanceChaosVerify(s Scale) bool {
	window := s.win(12 * time.Millisecond)
	c := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 53, RecordHistory: true,
		DropProb: 0.01, ReorderProb: 0.01, ReorderDelay: 20 * time.Microsecond,
	})
	slots := hotSlots(c, 8)
	for _, slot := range slots {
		if err := c.MigrateSlot(slot, 0); err != nil {
			return false
		}
	}
	var migs []*cluster.Migration
	c.Engine().After(warmup+window/4, func() {
		for i, slot := range slots {
			m, err := c.StartSlotMigration(slot, 1+i%3)
			if err != nil {
				continue
			}
			migs = append(migs, m)
		}
	})
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 12, Duration: window, Warmup: warmup,
		WriteRatio: 0.3, Keys: figRKeys, Dist: cluster.Zipf09,
	})
	c.RunFor(20 * time.Millisecond) // settle handoffs and stragglers
	for _, m := range migs {
		if !m.Done() {
			return false
		}
	}
	if len(migs) != len(slots) {
		return false
	}
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
