package experiments

import "testing"

// TestHeteroFigHAcceptance holds Fig H to the PR's acceptance
// criteria: a genuinely heterogeneous rack (≥2 protocols, ≥2 replica
// counts, weighted shards) beats the same hardware misconfigured as
// uniform, with every per-group history linearizable under chaos.
func TestHeteroFigHAcceptance(t *testing.T) {
	_, res := FigHDetail(0.5)

	distinct := func(xs []string) int {
		seen := map[string]bool{}
		for _, x := range xs {
			seen[x] = true
		}
		return len(seen)
	}
	if distinct(res.Protocols) < 2 {
		t.Fatalf("rack runs %v: want ≥2 distinct protocols", res.Protocols)
	}
	sizes := map[int]bool{}
	for _, n := range res.Replicas {
		sizes[n] = true
	}
	if len(sizes) < 2 {
		t.Fatalf("rack sizes %v: want ≥2 distinct replica counts", res.Replicas)
	}

	// Weighted shards: the 7-replica group owns visibly more routing
	// slots than either 3-replica group, and every slot stays owned.
	total := 0
	for _, n := range res.SlotShare {
		total += n
	}
	if total != 256 {
		t.Fatalf("slot shares %v sum to %d", res.SlotShare, total)
	}
	if !(res.SlotShare[0] > res.SlotShare[1] && res.SlotShare[0] > res.SlotShare[2]) {
		t.Fatalf("slot shares %v do not favor the big group", res.SlotShare)
	}

	// The weighted configuration beats the uniform misconfiguration on
	// aggregate throughput (the margin at this scale is ≈1.1×; 1.03 is
	// the regression floor).
	if res.Speedup < 1.03 {
		t.Fatalf("hetero %.2fM vs uniform %.2fM: speedup %.3f < 1.03",
			res.HeteroThroughput/1e6, res.BaselineThroughput/1e6, res.Speedup)
	}
	// The capacity-weighted router visibly loads the big shard more.
	if !(res.GroupOps[0] > res.GroupOps[1] && res.GroupOps[0] > res.GroupOps[2]) {
		t.Fatalf("GroupOps %v do not favor the big group", res.GroupOps)
	}
	if !res.Linearizable {
		t.Fatal("heterogeneous rack violated linearizability under chaos")
	}
}
