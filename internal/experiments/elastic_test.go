package experiments

import "testing"

// TestFigEAcceptance holds the elastic-membership experiment to its
// acceptance criteria: the rack doubles 4→8 groups under open-loop
// load with the worst bucket keeping a solid fraction of the healthy
// rate, the topology epoch moves once per membership change, the
// dead-switch shard is fully re-covered on the survivor, and the
// chaos-verify phase stays linearizable across retire + re-add.
func TestFigEAcceptance(t *testing.T) {
	series, res := FigEDetail(tiny)
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, sr := range series {
		if len(sr.Points) == 0 {
			t.Fatalf("series %q is empty", sr.Name)
		}
	}
	if res.GroupsBefore != 4 || res.GroupsAfter != 8 {
		t.Fatalf("scale-out went %d → %d groups, want 4 → 8", res.GroupsBefore, res.GroupsAfter)
	}
	// Boot epoch 1 + four AddGroups; seeding handoffs must not bump it.
	if res.TopoEpochFinal != 5 {
		t.Fatalf("final topology epoch %d, want 5", res.TopoEpochFinal)
	}
	if res.BaseThroughput <= 0 {
		t.Fatal("no healthy baseline measured")
	}
	// At tiny scale the buckets are coarse and each freeze covers a
	// bigger fraction of one, so the bound here is looser than the
	// ~0.9 the full-scale run reports in EXPERIMENTS terms.
	if res.Retention < 0.5 {
		t.Fatalf("scale-out retention %.2f (base %.0f, dip %.0f)",
			res.Retention, res.BaseThroughput, res.DipThroughput)
	}
	if !res.ReassignCovered {
		t.Fatal("dead-switch reassignment left slots dark or retired-owned")
	}
	if !res.Linearizable {
		t.Fatal("per-group linearizability failed across retire + re-add under drops")
	}
}
