package experiments

import "testing"

// TestFigMAcceptance holds the multi-switch rack experiment to its
// acceptance criteria: ≥3× aggregate throughput at 4 switches over the
// 1-switch baseline on a uniform sharded workload; crashing one of
// four switches costs < 40% of the aggregate through its epoch
// handoff with every per-group history linearizable; the replacement
// agreement's ack count equals the live replicas of the crashed
// switch's own groups; and a cross-switch MigrateSlots completes under
// 1% drops with the destination front-end's heat registers picking up
// the moved slots.
func TestFigMAcceptance(t *testing.T) {
	series, res := FigMDetail(tiny)
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	if len(res.Scaling) != 3 {
		t.Fatalf("scaling sweep has %d points", len(res.Scaling))
	}
	if res.Speedup4 < 3 {
		t.Fatalf("4 switches reached only %.2fx the 1-switch baseline (want ≥ 3x)", res.Speedup4)
	}
	if res.CrashRetention < 0.6 {
		t.Fatalf("one crashed switch cost %.0f%% of the aggregate (want < 40%%): healthy %.0f, crash window %.0f",
			100*(1-res.CrashRetention), res.HealthyThroughput, res.CrashThroughput)
	}
	wantAcks := uint64(res.GroupsPerSwitch * 3) // all replicas live
	if res.AgreementAcks4 != wantAcks {
		t.Fatalf("replacement agreement acks = %d, want %d (live replicas of the crashed switch's groups only)",
			res.AgreementAcks4, wantAcks)
	}
	if !res.CrossMigrated {
		t.Fatal("cross-switch MigrateSlots did not complete under 1% drops")
	}
	if !res.DestHeatPickup {
		t.Fatal("destination front-end's heat registers did not pick up the migrated slot")
	}
	if !res.Linearizable {
		t.Fatal("a per-group history failed linearizability across the switch crash + replacement")
	}
}
