package experiments

import (
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/rebalance"
	"harmonia/internal/workload"
)

// HotKeyResult is the measured outcome of the Fig K experiment, exposed
// so its test can hold the acceptance criteria against real numbers.
type HotKeyResult struct {
	// BaseThroughput is the aggregate rate with the PR 7 machinery only
	// (auto-rebalance, no hot-key replication); HotThroughput the same
	// workload with promotion armed; Speedup their ratio. The headline
	// claim is that replicating the one indivisible key recovers the
	// capacity slot migration cannot, ≥1.5× on this workload.
	BaseThroughput float64
	HotThroughput  float64
	Speedup        float64
	// HotShare is the fraction of all completed operations that touched
	// the single celebrity key in the promoted run (the workload is
	// built to keep this well above the 10% skew the figure targets).
	HotShare float64
	// Promotions counts autonomous promotions in the hot run — the
	// stuck-slot escape must have fired on its own, no hints.
	Promotions uint64
	// Demoted reports the cool-down phase: once the skew stops, the
	// decayed per-key heat must demote the key and drop every foreign
	// copy without intervention.
	Demoted bool
	// Linearizable reports the chaos-verify phase: a recorded zipf-1.2
	// window under 1% drops with a holder group removed mid-run, every
	// key's history (the promoted one included) checked on its own.
	Linearizable bool
}

// figKCluster builds the Fig K rack: one switch fronting four 3-replica
// chain groups. The fast rebalancer interval keeps the detect→promote
// loop responsive at benchmark timescales; both arms share it so the
// comparison isolates the replication mechanism.
func figKCluster(seed int64, hot bool) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: seed, AutoRebalance: true, HotKeys: hot,
		Rebalance: rebalance.Config{Interval: 400 * time.Microsecond},
	})
}

// FigK is the hot-key replication experiment: a celebrity-key workload
// (one key drawing a large share of an otherwise zipf-1.2 load) run
// against the auto-rebalancing rack with and without per-key hot
// replication. Batch slot migration cannot split the celebrity's slot —
// the PR 7 baseline saturates its home group — while promotion spreads
// the key's clean reads across all four groups.
func FigK(s Scale) []Series {
	series, _ := FigKDetail(s)
	return series
}

// FigKDetail runs Fig K and returns both the plotted series and the
// measured result.
func FigKDetail(s Scale) ([]Series, HotKeyResult) {
	window := s.win(24 * time.Millisecond)
	var res HotKeyResult

	// The workload: 512 closed-loop clients pinned to the one celebrity
	// key (read-dominant, with enough writes that the invalidate/refresh
	// path stays exercised) over a 1.2 MRPS open-loop zipf-1.2
	// background that keeps every slot's heat register busy. The client
	// count is chosen to push the key's home group deep into queueing —
	// the baseline arm saturates there, so the extra parallelism only
	// pays off when promotion spreads the reads over the other groups.
	specs := func() []cluster.LoadSpec {
		return []cluster.LoadSpec{
			{Mode: cluster.Closed, Clients: 512, Duration: window, Warmup: window / 4,
				WriteRatio: 0.0002, Keys: 1, Dist: cluster.Uniform},
			{Mode: cluster.Open, Rate: 1.2e6, Duration: window, Warmup: window / 4,
				WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Zipf12},
		}
	}

	base := figKCluster(53, false)
	baseReps := base.RunLoads(specs())
	res.BaseThroughput = baseReps[0].Throughput + baseReps[1].Throughput

	hot := figKCluster(53, true)
	hotReps := hot.RunLoads(specs())
	res.HotThroughput = hotReps[0].Throughput + hotReps[1].Throughput
	if res.BaseThroughput > 0 {
		res.Speedup = res.HotThroughput / res.BaseThroughput
	}
	if total := hotReps[0].Ops + hotReps[1].Ops; total > 0 {
		res.HotShare = float64(hotReps[0].Ops) / float64(total)
	}
	res.Promotions, _ = hot.HotKeyStats()

	// Cool-down: the load is gone; the rebalancer's decay drains the
	// per-key counters and the lifecycle tick must demote on its own.
	hot.RunFor(40 * time.Millisecond)
	_, demotions := hot.HotKeyStats()
	res.Demoted = hot.HotKeyCount() == 0 && demotions > 0

	// Dumped after the cool-down so the timeline holds the complete
	// lifecycle: promote → invalidate → refresh cycles → demote.
	maybeDumpTrace("K", hot)

	res.Linearizable = figKVerify()

	return []Series{
		{Name: "auto-rebalance only (PR 7 baseline)",
			Points: []Point{{X: 0, Y: res.BaseThroughput / 1e6}}},
		{Name: "hot-key replication (promoted)",
			Points: []Point{{X: 0, Y: res.HotThroughput / 1e6}}},
	}, res
}

// figKVerify replays a recorded chaos window over the promoted fast
// path: zipf-1.2 closed-loop load under 1% drops with the hottest key
// promoted up front and one of its holder groups removed mid-run. Every
// key's history — the replicated one included — must stay linearizable,
// checked key by key. The window is fixed rather than scaled: the phase
// is a correctness verdict, not a statistic.
func figKVerify() bool {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 443, RecordHistory: true, DropProb: 0.01,
		HotKeys: true,
	})
	const keys = 16
	c.Preload(keys)
	hotKey := workload.KeyName(workload.ZipfKeyOfRank(keys, 0))
	if err := c.PromoteKey(hotKey); err != nil {
		return false
	}
	hk, ok := c.KeyPromoted(hotKey)
	if !ok || len(hk.Holders) == 0 {
		return false
	}
	victim := int(hk.Holders[0])
	var r *cluster.Reconfig
	c.Engine().After(4*time.Millisecond, func() { r, _ = c.StartRemoveGroup(victim) })
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 8, Duration: 8 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: cluster.Zipf12,
	})
	for i := 0; i < 12 && (r == nil || !r.Done()); i++ {
		c.RunFor(50 * time.Millisecond)
	}
	if r == nil || !r.Done() || r.Err() != nil {
		return false
	}
	for i := 0; i < keys; i++ {
		if res := c.CheckLinearizabilityKey(workload.KeyName(i)); !res.Decided || !res.Ok {
			return false
		}
	}
	for g := 0; g < c.Groups(); g++ {
		if !c.Rack().Live(g) {
			continue
		}
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
