package experiments

import (
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/rebalance"
)

// AutoRebalanceResult is the measured outcome of the Fig A experiment,
// exposed so its test can hold the acceptance criteria against real
// numbers rather than curve shapes.
type AutoRebalanceResult struct {
	// StaticThroughput is the aggregate ops/s with the skewed
	// placement left alone (the baseline the rebalancer must beat).
	StaticThroughput float64
	// AutoThroughput is the aggregate ops/s after the rebalancer's
	// convergence window, measured over a fresh plateau.
	AutoThroughput float64
	// Rebalances counts the slot moves the control loop completed —
	// they must exist (the loop actually acted) for the comparison to
	// mean anything.
	Rebalances uint64
	// UniformRebalances counts moves on a uniform workload with the
	// same policy: the hysteresis guard — it must stay zero.
	UniformRebalances uint64
	// Linearizable reports the chaos-verify phase: per-group
	// linearizability held while the rebalancer migrated slots under
	// packet drops and reordering.
	Linearizable bool
}

// figAKeys matches Fig R's key space: small enough that the zipf head
// carries most of the traffic, so placement decides the aggregate.
const figAKeys = 64

// figAPolicy is the control-loop tuning the experiment uses: the
// package defaults, restated so the experiment is explicit about what
// the loop knows — thresholds and costs only, never which slots are
// hot.
func figAPolicy() rebalance.Config {
	return rebalance.Config{Threshold: 1.5, Hysteresis: 0.25, Interval: time.Millisecond, MaxSlotsPerRound: 8}
}

// figACluster builds the experiment cluster with the skewed placement:
// the 12 hottest zipf ranks' slots all pinned onto group 0 — the
// textbook hot shard a workload shift leaves behind. The rebalancer,
// when enabled, is NOT told any of this: it sees only the switch's
// heat registers.
func figACluster(auto bool, seed int64, record bool, dropProb, reorderProb float64) *cluster.Cluster {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: seed, AutoRebalance: auto, Rebalance: figAPolicy(),
		RecordHistory: record, DropProb: dropProb, ReorderProb: reorderProb,
		ReorderDelay: 20 * time.Microsecond,
	})
	if err := c.MigrateSlots(hotSlots(c, 12), 0); err != nil {
		panic("experiments: pinning migration failed: " + err.Error())
	}
	return c
}

// FigA is the autonomous-rebalancing experiment: an unpinned zipf-1.2
// workload lands on a cluster whose hot slots all sit on one group
// (the placement a workload shift leaves behind), and the control loop
// — fed only by the switch's per-slot heat counters — detects the
// imbalance and spreads the hot slots out, converging the aggregate
// toward the pinned-optimal placement Fig R reaches with offline zipf
// knowledge. The series shows the auto run's completion rate over time
// next to the static baseline plateau.
func FigA(s Scale) []Series {
	series, _ := FigADetail(s)
	return series
}

// FigADetail runs Fig A and returns both the plotted series and the
// measured result.
func FigADetail(s Scale) ([]Series, AutoRebalanceResult) {
	window := s.win(20 * time.Millisecond)
	var res AutoRebalanceResult

	spec := cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 256, Duration: window, Warmup: warmup,
		WriteRatio: 0.05, Keys: figAKeys, Dist: cluster.Zipf12,
	}

	// Baseline: the skewed placement left alone.
	static := figACluster(false, 61, false, 0, 0)
	res.StaticThroughput = static.RunLoad(spec).Throughput

	// The rebalancer run: one convergence window while the loop finds
	// and spreads the hot slots (plotted as a time series), then a
	// fresh plateau for the converged number.
	auto := figACluster(true, 61, false, 0, 0)
	converge := spec
	converge.Bucket = window / 25
	convRep := auto.RunLoad(converge)
	post := auto.RunLoad(spec)
	res.AutoThroughput = post.Throughput
	res.Rebalances = auto.Rebalances()

	// Hysteresis guard: the same loop over a uniform workload must
	// make no moves (imbalance never crosses the threshold). A larger
	// key space keeps shot noise well inside the band.
	uni := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Seed: 67, AutoRebalance: true, Rebalance: figAPolicy(),
	})
	uniSpec := spec
	uniSpec.Dist = cluster.Uniform
	uniSpec.Keys = 4096
	uni.RunLoad(uniSpec)
	res.UniformRebalances = uni.Rebalances()

	// Chaos-verify: the rebalancer migrating on its own schedule under
	// packet drops and reordering, on a recorded cluster small enough
	// for the linearizability checker.
	res.Linearizable = autoRebalanceChaosVerify(s)

	out := []Series{{Name: "Harmonia(CR) 4 groups, auto-rebalance", Points: nil}}
	if convRep.Series != nil {
		for _, p := range convRep.Series.Points() {
			out[0].Points = append(out[0].Points, Point{X: p.Start.Seconds() * 1000, Y: p.Rate / 1e6})
		}
	}
	out = append(out,
		Series{Name: "static placement baseline", Points: []Point{{X: 0, Y: res.StaticThroughput / 1e6}}},
		Series{Name: "auto-rebalanced plateau", Points: []Point{{X: 0, Y: res.AutoThroughput / 1e6}}},
	)
	return out, res
}

// autoRebalanceChaosVerify runs the rebalancer under loss and
// reordering on a history-recording cluster and checks every group's
// history slice for linearizability. The rebalancer decides what to
// migrate and when; nothing is scripted.
func autoRebalanceChaosVerify(s Scale) bool {
	window := s.win(16 * time.Millisecond)
	c := figACluster(true, 71, true, 0.01, 0.01)
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 12, Duration: window, Warmup: warmup,
		WriteRatio: 0.3, Keys: figAKeys, Dist: cluster.Zipf12,
	})
	c.RunFor(20 * time.Millisecond) // settle in-flight handoffs
	if c.Rebalances() == 0 {
		return false // the loop never acted: nothing was verified
	}
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
