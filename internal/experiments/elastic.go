package experiments

import (
	"sort"
	"time"

	"harmonia/internal/cluster"
	"harmonia/internal/wire"
)

// ElasticResult is the measured outcome of the Fig E experiment,
// exposed so its test can hold the acceptance criteria against real
// numbers rather than curve shapes.
type ElasticResult struct {
	// GroupsBefore and GroupsAfter bracket the scale-out: the run
	// starts at 4 live groups and four staggered AddGroups take it
	// to 8, all under open-loop load.
	GroupsBefore, GroupsAfter int
	// BaseThroughput is the median bucket rate of the healthy window
	// before the first AddGroup; DipThroughput the worst bucket during
	// the scale-out; Retention their ratio. The headline claim is that
	// growing the rack costs no more than a switch crash (~10% dip).
	BaseThroughput float64
	DipThroughput  float64
	Retention      float64
	// TopoEpochFinal counts membership revisions: 1 at boot plus one
	// per AddGroup — slot handoffs themselves never bump it.
	TopoEpochFinal uint64
	// ReassignCovered reports the dead-switch phase: after one of two
	// switches dies for good and ReassignDeadSwitch batch-recovers its
	// shard from the victims' replica stores, every slot is owned by a
	// live group on the surviving switch.
	ReassignCovered bool
	// Linearizable reports the chaos-verify phase: a recorded load
	// window under 1% drops with a group retired mid-run and a new one
	// added after, every group's history slice checked.
	Linearizable bool
}

// figECluster builds the Fig E rack: two switches fronting four
// 3-replica chain groups, room to double.
func figECluster(seed int64, record bool, drop float64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: seed, RecordHistory: record, DropProb: drop,
	})
}

// FigE is the elastic-membership experiment: an open-loop load over a
// 4-group rack while four AddGroups double the rack live (each seeding
// its slot share from the hottest donors via frozen-slot handoff), then
// a permanent one-switch death recovered by ReassignDeadSwitch. The
// plotted series are the two throughput timelines.
func FigE(s Scale) []Series {
	series, _ := FigEDetail(s)
	return series
}

// FigEDetail runs Fig E and returns both the plotted series and the
// measured result.
func FigEDetail(s Scale) ([]Series, ElasticResult) {
	window := s.win(60 * time.Millisecond)
	bucket := window / 40
	var res ElasticResult

	// Phase 1: scale-out. Four AddGroups staggered through the middle
	// of the window, each seeding ~1/(n+1) of the slots while the open
	// loop keeps offering ~4 MRPS against an 11 MRPS 4-group rack.
	c := figECluster(401, false, 0)
	res.GroupsBefore = len(c.Rack().LiveGroups())
	firstAdd := window * 6 / 20
	for i := 0; i < 4; i++ {
		at := firstAdd + window*time.Duration(2*i)/20
		c.Engine().After(at, func() {
			_, _, _ = c.AddGroup(cluster.GroupSpec{Protocol: cluster.Chain})
		})
	}
	rep := c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Open, Rate: 4e6, Duration: window, Warmup: 0,
		WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Zipf09, Bucket: bucket,
	})
	c.RunFor(30 * time.Millisecond) // let the last seeding handoffs settle
	res.GroupsAfter = len(c.Rack().LiveGroups())
	res.TopoEpochFinal = c.Rack().TopoEpoch()

	var scaleOut []Point
	var pre, post []float64
	if rep.Series != nil {
		for _, p := range rep.Series.Points() {
			scaleOut = append(scaleOut, Point{X: p.Start.Seconds() * 1000, Y: p.Rate / 1e6})
			if p.Start+bucket <= firstAdd {
				pre = append(pre, p.Rate)
			} else {
				post = append(post, p.Rate)
			}
		}
	}
	if len(pre) > 1 {
		pre = pre[1:] // the first bucket is ramp-up, not steady state
	}
	if len(pre) > 0 && len(post) > 0 {
		sort.Float64s(pre)
		res.BaseThroughput = pre[len(pre)/2]
		res.DipThroughput = post[0]
		for _, r := range post[1:] {
			if r < res.DipThroughput {
				res.DipThroughput = r
			}
		}
		if res.BaseThroughput > 0 {
			res.Retention = res.DipThroughput / res.BaseThroughput
		}
	}

	// Phase 2: permanent switch death. Half the rack's slots go dark
	// with switch 1; ReassignDeadSwitch rebuilds them on the survivors
	// from the victims' replica stores while the load keeps running.
	c2 := figECluster(417, false, 0)
	crashAt := window / 3
	c2.Engine().After(crashAt, func() { _ = c2.CrashSwitch(1) })
	c2.Engine().After(crashAt+window/15, func() { _, _ = c2.StartReassignDeadSwitch(1) })
	rep2 := c2.RunLoad(cluster.LoadSpec{
		Mode: cluster.Open, Rate: 4e6, Duration: window, Warmup: 0,
		WriteRatio: 0.05, Keys: defaultKeys, Dist: cluster.Zipf09, Bucket: bucket,
	})
	c2.RunFor(30 * time.Millisecond)
	// Phase 1's recorder holds the staggered scale-out (topology epoch
	// bumps and seeding migrations); phase 2's holds the switch crash
	// and the reassignment's epoch churn.
	maybeDumpTrace("E", c)
	maybeDumpTrace("E-crash", c2)
	res.ReassignCovered = true
	for slot := 0; slot < wire.NumSlots; slot++ {
		g := c2.Rack().RouteOf(slot)
		if c2.Rack().SwitchOfSlot(slot) != 0 || !c2.Rack().Live(g) {
			res.ReassignCovered = false
			break
		}
	}
	var reassign []Point
	if rep2.Series != nil {
		for _, p := range rep2.Series.Points() {
			reassign = append(reassign, Point{X: p.Start.Seconds() * 1000, Y: p.Rate / 1e6})
		}
	}

	res.Linearizable = figEVerify()

	return []Series{
		{Name: "scale-out 4→8 groups", Points: scaleOut},
		{Name: "dead-switch reassignment", Points: reassign},
	}, res
}

// figEVerify replays a small recorded chaos window: closed-loop load
// under 1% drops with group 1 retired mid-run (its slots, data, and
// at-most-once client tables evacuated to the survivors), then a fresh
// group added and loaded again; every group's history slice must stay
// linearizable. The window is fixed rather than scaled — the phase is
// a correctness verdict, not a statistic.
func figEVerify() bool {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Chain, Replicas: 3, UseHarmonia: true,
		Groups: 3, Seed: 431, RecordHistory: true, DropProb: 0.01,
	})
	var r *cluster.Reconfig
	c.Engine().After(3*time.Millisecond, func() { r, _ = c.StartRemoveGroup(1) })
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 12, Duration: 10 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: 96, Dist: cluster.Uniform,
	})
	for i := 0; i < 12 && (r == nil || !r.Done()); i++ {
		c.RunFor(50 * time.Millisecond)
	}
	if r == nil || !r.Done() || r.Err() != nil {
		return false
	}
	if _, err := c.AddGroupWait(cluster.GroupSpec{Protocol: cluster.Chain}); err != nil {
		return false
	}
	c.RunLoad(cluster.LoadSpec{
		Mode: cluster.Closed, Clients: 12, Duration: 8 * time.Millisecond,
		WriteRatio: 0.3, Keys: 96, Dist: cluster.Uniform,
	})
	c.RunFor(25 * time.Millisecond)
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			return false
		}
	}
	return true
}
