package experiments

import "testing"

func TestFigSShape(t *testing.T) {
	series := FigS(tiny)
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	m := series[0]
	if len(m.Points) != 4 {
		t.Fatalf("measured series has %d points", len(m.Points))
	}
	for _, p := range m.Points {
		if p.Y <= 0 {
			t.Fatalf("nonpositive throughput at %v groups", p.X)
		}
	}
	// 4 groups ≥ 3× one group, 8 groups ≥ 5× — near-linear aggregate
	// scaling along the system-size axis, with slack for tiny windows.
	one, four, eight := m.Points[0].Y, m.Points[2].Y, m.Points[3].Y
	if four < 3*one {
		t.Fatalf("4 groups only %.2fx of one group", four/one)
	}
	if eight < 5*one {
		t.Fatalf("8 groups only %.2fx of one group", eight/one)
	}
}
