package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 200*time.Microsecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 300*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	// Uniform samples in [1ms, 2ms): p50 ≈ 1.5ms within bucket error.
	for i := 0; i < 100000; i++ {
		h.Observe(time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	p50 := h.Quantile(0.5)
	if p50 < 1200*time.Microsecond || p50 > 1900*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈1.5ms ±25%%", p50)
	}
	if h.Quantile(0) < h.Min() {
		t.Fatal("q0 below min")
	}
	if h.Quantile(1) > h.Max() {
		t.Fatal("q1 above max")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		h := NewHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSubMicrosecond(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatal("sub-µs sample lost")
	}
}

func TestHistogramHugeSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(100 * time.Hour) // beyond last bucket: clamps, no panic
	if h.Count() != 1 || h.Max() != 100*time.Hour {
		t.Fatal("huge sample mishandled")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Fatalf("merged mean = %v", a.Mean())
	}
}

// TestHistogramMergeEqualsUnion is the Merge property test: merging
// two histograms must be indistinguishable from observing the union of
// their samples in one histogram — identical counts, sums, extremes,
// and (since bucketing is deterministic) every quantile.
func TestHistogramMergeEqualsUnion(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, union := NewHistogram(), NewHistogram(), NewHistogram()
		n := 50 + rng.Intn(500)
		cut := int(split) % (n + 1)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			union.Observe(d)
			if i < cut {
				a.Observe(d)
			} else {
				b.Observe(d)
			}
		}
		a.Merge(b)
		if a.Count() != union.Count() || a.Sum() != union.Sum() ||
			a.Min() != union.Min() || a.Max() != union.Max() {
			return false
		}
		for q := 0.0; q <= 1.0; q += 0.1 {
			if a.Quantile(q) != union.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramResetEmpties is the Reset property test: a reset
// histogram must be indistinguishable from a fresh one, both when read
// empty and after new observations.
func TestHistogramResetEmpties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 200; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
		}
		h.Reset()
		if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 ||
			h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
			return false
		}
		// Reuse after Reset matches a fresh histogram sample-for-sample.
		fresh := NewHistogram()
		for i := 0; i < 100; i++ {
			d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
			h.Observe(d)
			fresh.Observe(d)
		}
		return h.Count() == fresh.Count() && h.Sum() == fresh.Sum() &&
			h.Min() == fresh.Min() && h.Max() == fresh.Max() &&
			h.Quantile(0.5) == fresh.Quantile(0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(100 * time.Millisecond)  // bucket 0
	ts.Add(900 * time.Millisecond)  // bucket 0
	ts.Add(2500 * time.Millisecond) // bucket 2; bucket 1 empty
	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3 (including empty gap)", len(pts))
	}
	if pts[0].Count != 2 || pts[1].Count != 0 || pts[2].Count != 1 {
		t.Fatalf("counts = %d,%d,%d", pts[0].Count, pts[1].Count, pts[2].Count)
	}
	if pts[0].Rate != 2 {
		t.Fatalf("rate = %v, want 2/s", pts[0].Rate)
	}
	if pts[2].Start != 2*time.Second {
		t.Fatalf("start = %v", pts[2].Start)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if ts.Points() != nil {
		t.Fatal("empty series has points")
	}
}

func TestTimeSeriesInvalidBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTimeSeries(0)
}
