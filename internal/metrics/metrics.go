// Package metrics provides the latency histograms, throughput counters
// and time-series buckets the evaluation harness reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records duration samples in logarithmic buckets (power of
// ~1.25 growth from 1µs), accurate to a few percent — ample for
// latency-vs-throughput curves.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	histBase   = float64(time.Microsecond)
	histGrowth = 1.25
	histSlots  = 96 // covers ~1µs .. ~2000s
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histSlots), min: math.MaxInt64}
}

func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := int(math.Log(float64(d)/histBase)/math.Log(histGrowth)) + 1
	if b >= histSlots {
		b = histSlots - 1
	}
	return b
}

// bucketUpper returns the representative (upper bound) value of bucket
// b.
func bucketUpper(b int) time.Duration {
	if b == 0 {
		return time.Microsecond
	}
	return time.Duration(histBase * math.Pow(histGrowth, float64(b)))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min and Max return sample extremes (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper-bound estimate of quantile q in [0,1].
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Sum returns the exact total of all samples (not a bucket estimate).
func (h *Histogram) Sum() time.Duration { return h.sum }

// Reset empties the histogram in place, preserving its bucket storage,
// so long-lived per-phase histograms can be recycled between
// measurement windows without allocating.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// TimeSeries buckets event counts by time for throughput-over-time
// plots (Fig. 10).
type TimeSeries struct {
	bucket time.Duration
	counts map[int64]uint64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &TimeSeries{bucket: bucket, counts: make(map[int64]uint64)}
}

// Add records an event at time t (since run start).
func (ts *TimeSeries) Add(t time.Duration) { ts.counts[int64(t/ts.bucket)]++ }

// Point is one bucket of the series.
type Point struct {
	Start time.Duration
	Count uint64
	// Rate is events per second within the bucket.
	Rate float64
}

// Points returns the buckets in time order, including empty buckets
// between the first and last non-empty ones.
func (ts *TimeSeries) Points() []Point {
	if len(ts.counts) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(ts.counts))
	for k := range ts.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	first, last := keys[0], keys[len(keys)-1]
	out := make([]Point, 0, last-first+1)
	for k := first; k <= last; k++ {
		c := ts.counts[k]
		out = append(out, Point{
			Start: time.Duration(k) * ts.bucket,
			Count: c,
			Rate:  float64(c) / ts.bucket.Seconds(),
		})
	}
	return out
}
