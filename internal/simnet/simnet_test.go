package simnet

import (
	"testing"
	"time"

	"harmonia/internal/sim"
)

type collector struct {
	msgs  []Message
	froms []NodeID
	times []sim.Time
	eng   *sim.Engine
}

func (c *collector) Recv(from NodeID, msg Message) {
	c.msgs = append(c.msgs, msg)
	c.froms = append(c.froms, from)
	if c.eng != nil {
		c.times = append(c.times, c.eng.Now())
	}
}

func newNet(seed int64, def LinkConfig) (*sim.Engine, *Network) {
	eng := sim.NewEngine(seed)
	return eng, New(eng, def)
}

func TestDeliveryWithLatency(t *testing.T) {
	eng, net := newNet(1, LinkConfig{Latency: 5 * time.Microsecond})
	c := &collector{eng: eng}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	net.Send(1, 2, "hello")
	eng.Run(sim.Time(time.Second))
	if len(c.msgs) != 1 || c.msgs[0] != "hello" || c.froms[0] != 1 {
		t.Fatalf("delivery wrong: %v from %v", c.msgs, c.froms)
	}
	if c.times[0] != sim.Time(5*time.Microsecond) {
		t.Fatalf("arrival at %d, want 5us", c.times[0])
	}
}

func TestSendToUnknownNode(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.Send(1, 99, "x") // must not panic
	eng.Run(100)
}

func TestDropAll(t *testing.T) {
	eng, net := newNet(1, LinkConfig{DropProb: 1})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	for i := 0; i < 50; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	if len(c.msgs) != 0 {
		t.Fatalf("lossy link delivered %d messages", len(c.msgs))
	}
}

func TestDuplication(t *testing.T) {
	eng, net := newNet(1, LinkConfig{DupProb: 1})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	net.Send(1, 2, "x")
	eng.Run(sim.Time(time.Second))
	if len(c.msgs) != 2 {
		t.Fatalf("dup link delivered %d, want 2", len(c.msgs))
	}
}

func TestLinkOverride(t *testing.T) {
	eng, net := newNet(1, LinkConfig{Latency: time.Millisecond})
	c := &collector{eng: eng}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	net.SetLink(1, 2, LinkConfig{Latency: time.Microsecond})
	net.Send(1, 2, "fast")
	eng.Run(sim.Time(time.Second))
	if c.times[0] != sim.Time(time.Microsecond) {
		t.Fatalf("override not applied: arrival %d", c.times[0])
	}
}

func TestProcessorSerialService(t *testing.T) {
	// 1 worker, 10us per message: 3 arrivals at t=0 complete at 10,
	// 20, 30us.
	eng, net := newNet(1, LinkConfig{})
	c := &collector{eng: eng}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{
		Workers: 1,
		Cost:    func(Message) time.Duration { return 10 * time.Microsecond },
	})
	for i := 0; i < 3; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	want := []sim.Time{
		sim.Time(10 * time.Microsecond),
		sim.Time(20 * time.Microsecond),
		sim.Time(30 * time.Microsecond),
	}
	for i, w := range want {
		if c.times[i] != w {
			t.Fatalf("completion %d at %d, want %d", i, c.times[i], w)
		}
	}
}

func TestProcessorParallelWorkers(t *testing.T) {
	// 2 workers: 2 messages finish together at 10us, third at 20us.
	eng, net := newNet(1, LinkConfig{})
	c := &collector{eng: eng}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{
		Workers: 2,
		Cost:    func(Message) time.Duration { return 10 * time.Microsecond },
	})
	for i := 0; i < 3; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	if c.times[0] != sim.Time(10*time.Microsecond) ||
		c.times[1] != sim.Time(10*time.Microsecond) ||
		c.times[2] != sim.Time(20*time.Microsecond) {
		t.Fatalf("times = %v", c.times)
	}
}

func TestQueueLimitDrops(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	nd := net.AddNode(2, c, ProcConfig{
		Workers:    1,
		Cost:       func(Message) time.Duration { return time.Millisecond },
		QueueLimit: 2,
	})
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	// 1 in service + 2 queued survive = 3 delivered, 7 dropped.
	if len(c.msgs) != 3 {
		t.Fatalf("delivered %d, want 3", len(c.msgs))
	}
	if nd.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", nd.Dropped)
	}
}

func TestDownNodeDropsAndRecovers(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	net.SetDown(2, true)
	net.Send(1, 2, "lost")
	eng.Run(100)
	if len(c.msgs) != 0 {
		t.Fatal("down node received a message")
	}
	net.SetDown(2, false)
	net.Send(1, 2, "found")
	eng.Run(200)
	if len(c.msgs) != 1 || c.msgs[0] != "found" {
		t.Fatalf("recovery delivery wrong: %v", c.msgs)
	}
}

func TestDownDiscardsQueue(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{
		Workers: 1,
		Cost:    func(Message) time.Duration { return time.Millisecond },
	})
	for i := 0; i < 5; i++ {
		net.Send(1, 2, i)
	}
	// Let first delivery start, then crash mid-service.
	eng.RunFor(100 * time.Microsecond)
	net.SetDown(2, true)
	eng.Run(sim.Time(time.Second))
	if len(c.msgs) != 0 {
		t.Fatalf("crashed node completed %d messages", len(c.msgs))
	}
}

func TestLineRateNodeNeverQueues(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	c := &collector{eng: eng}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{Workers: 0}) // line rate
	for i := 0; i < 1000; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	if len(c.msgs) != 1000 {
		t.Fatalf("delivered %d", len(c.msgs))
	}
	for _, at := range c.times {
		if at != 0 {
			t.Fatalf("line-rate node delayed a message to %d", at)
		}
	}
}

func TestUtilization(t *testing.T) {
	eng, net := newNet(1, LinkConfig{})
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	nd := net.AddNode(2, HandlerFunc(func(NodeID, Message) {}), ProcConfig{
		Workers: 1,
		Cost:    func(Message) time.Duration { return 10 * time.Millisecond },
	})
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(100 * time.Millisecond))
	if u := nd.Utilization(100 * time.Millisecond); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []sim.Time {
		eng, net := newNet(42, LinkConfig{
			Latency: 5 * time.Microsecond, Jitter: 3 * time.Microsecond,
			DropProb: 0.2, ReorderProb: 0.3, ReorderDelay: 20 * time.Microsecond,
		})
		c := &collector{eng: eng}
		net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
		net.AddNode(2, c, ProcConfig{})
		for i := 0; i < 200; i++ {
			net.Send(1, 2, i)
		}
		eng.Run(sim.Time(time.Second))
		return c.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate node")
		}
	}()
	_, net := newNet(1, LinkConfig{})
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
}

func TestReorderingCanInvertOrder(t *testing.T) {
	// With reordering enabled, some pair of messages must arrive out
	// of send order (statistically certain with 500 sends).
	eng, net := newNet(7, LinkConfig{
		Latency: time.Microsecond, ReorderProb: 0.5, ReorderDelay: 100 * time.Microsecond,
	})
	c := &collector{}
	net.AddNode(1, HandlerFunc(func(NodeID, Message) {}), ProcConfig{})
	net.AddNode(2, c, ProcConfig{})
	for i := 0; i < 500; i++ {
		net.Send(1, 2, i)
	}
	eng.Run(sim.Time(time.Second))
	inverted := false
	for i := 1; i < len(c.msgs); i++ {
		if c.msgs[i].(int) < c.msgs[i-1].(int) {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Fatal("no reordering observed")
	}
}
