// Package simnet simulates a rack-scale network on top of the
// discrete-event engine in internal/sim.
//
// Each node is an endpoint with a handler and a processor model: k
// workers that each serve one message at a time, with a per-message
// service cost supplied by the node's owner. Messages travel over links
// with configurable latency, jitter, drop, duplication, and reordering.
// The processor model is what turns protocol structure into throughput:
// a chain-replication tail saturates when its workers are busy full
// time, exactly like the Redis backends in the paper's testbed.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"harmonia/internal/sim"
	"harmonia/internal/wire"
)

// NodeID identifies an endpoint. Cluster assembly assigns stable IDs:
// clients, switch, replicas.
type NodeID int32

// Broadcast is a reserved pseudo-address; the network does not route
// it, but components use it to mean "all replicas" in their own logic.
const Broadcast NodeID = -1

// Message is anything deliverable to a node. Protocol-internal
// messages are plain Go values; client-facing traffic is *wire.Packet.
type Message any

// releaseMsg returns a managed packet's delivery reference when the
// network drops the message on the floor (down node, missing
// destination, link loss, queue overflow). Wrapper messages — the
// protocol-internal structs that may carry packets inside — pass
// through untouched; a packet inside a dropped wrapper leaks its
// struct to the garbage collector, which the wire ownership contract
// makes benign, and wrappers only travel the reliable replica links
// anyway.
func releaseMsg(msg Message) {
	if p, ok := msg.(*wire.Packet); ok {
		p.Release()
	}
}

// retainMsg takes an extra delivery reference for a duplicated packet:
// each scheduled arrival hands the handler one consumable reference.
func retainMsg(msg Message) {
	if p, ok := msg.(*wire.Packet); ok {
		p.Retain()
	}
}

// Handler consumes delivered messages. Handlers run to completion on
// the simulation's single thread; they may send messages and set
// timers but must not block.
type Handler interface {
	Recv(from NodeID, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, msg Message)

// Recv implements Handler.
func (f HandlerFunc) Recv(from NodeID, msg Message) { f(from, msg) }

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Latency is the one-way propagation + switching delay.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) to each message.
	Jitter time.Duration
	// DropProb drops a message with this probability.
	DropProb float64
	// DropFilter, when set, restricts DropProb to messages it matches;
	// everything else passes untouched. Used to inject targeted loss
	// (e.g. only write-completions).
	DropFilter func(msg Message) bool
	// DupProb delivers a duplicate copy with this probability.
	DupProb float64
	// ReorderProb delays a message by an extra uniform [0,
	// ReorderDelay) with this probability, letting later messages pass
	// it.
	ReorderProb  float64
	ReorderDelay time.Duration
}

// ProcConfig describes a node's processing capacity.
type ProcConfig struct {
	// Workers is the number of parallel servers (e.g. 8 Redis shards
	// per storage node in the paper's prototype). Workers == 0 models
	// a line-rate device: messages are handled at arrival with zero
	// service time and no queueing, which is how the Tofino switch
	// behaves relative to server-scale load.
	Workers int
	// Cost returns the service time for a message. Only consulted when
	// Workers > 0. A nil Cost means zero service time.
	Cost func(msg Message) time.Duration
	// QueueLimit bounds the wait queue; excess arrivals are dropped.
	// 0 means unbounded.
	QueueLimit int
}

type queued struct {
	from NodeID
	msg  Message
}

// Tracer observes the life of a message inside a node's processor
// model: arrival off the link, service start on a worker, and service
// completion. simnet knows nothing about packets or spans — the
// cluster installs an adapter that inspects the Message and stamps the
// op's trace span. All three hooks fire BEFORE the corresponding
// handler runs, so a handler that completes the op observes a fully
// stamped span. Line-rate nodes (Workers == 0) and queue-drop paths
// only see PacketArrive.
type Tracer interface {
	// PacketArrive fires when a message lands on node (after the link
	// delay), before queueing, service, or the handler.
	PacketArrive(node NodeID, msg Message)
	// PacketServe fires when a worker starts serving the message.
	PacketServe(node NodeID, msg Message)
	// PacketDone fires when service completes, before the handler.
	PacketDone(node NodeID, msg Message)
}

// SetTracer installs (or with nil removes) the network-wide tracer.
// The hooks are nil-guarded on the delivery path, so an uninstalled
// tracer costs one branch per event and zero allocations.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// Node is a simulated endpoint.
type Node struct {
	id      NodeID
	net     *Network
	handler Handler
	cfg     ProcConfig

	down bool
	idle int // idle workers
	q    []queued

	// Stats
	Delivered uint64 // messages handed to the handler
	Dropped   uint64 // messages dropped (down node or full queue)
	BusyTime  time.Duration
}

// delivery is one in-flight message: the argument threaded through the
// engine's closure-free scheduling. Records are pooled on the network
// (the simulation is single-threaded, so a plain free list suffices)
// and released the moment their callback runs, so steady-state message
// traffic allocates nothing. Payloads are NOT copied anywhere on this
// path — duplication delivers the same Message twice — which is why
// packets are immutable once sequenced (see internal/wire).
type delivery struct {
	nd   *Node
	from NodeID
	msg  Message
}

// Network owns the nodes and links.
type Network struct {
	eng         *sim.Engine
	rng         *rand.Rand
	nodes       map[NodeID]*Node
	defaultLink LinkConfig
	links       map[[2]NodeID]LinkConfig

	// free is the delivery-record pool; arriveFn/completeFn are the
	// long-lived callbacks AfterCall pairs the records with (a method
	// value would allocate a fresh closure per message).
	free       []*delivery
	arriveFn   func(any)
	completeFn func(any)

	// tracer, when non-nil, observes arrive/serve/complete on every
	// node (see Tracer).
	tracer Tracer

	// Sent counts every Send call, delivered or not.
	Sent uint64
}

// New creates a network on eng with the given default link config.
func New(eng *sim.Engine, def LinkConfig) *Network {
	n := &Network{
		eng:         eng,
		rng:         eng.Rand(),
		nodes:       make(map[NodeID]*Node),
		defaultLink: def,
		links:       make(map[[2]NodeID]LinkConfig),
	}
	n.arriveFn = func(a any) {
		d := a.(*delivery)
		nd, from, msg := d.nd, d.from, d.msg
		n.putDelivery(d)
		nd.arrive(from, msg)
	}
	n.completeFn = func(a any) {
		d := a.(*delivery)
		nd, from, msg := d.nd, d.from, d.msg
		n.putDelivery(d)
		nd.complete(from, msg)
	}
	return n
}

// getDelivery takes a record from the pool.
func (n *Network) getDelivery(nd *Node, from NodeID, msg Message) *delivery {
	if k := len(n.free); k > 0 {
		d := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		d.nd, d.from, d.msg = nd, from, msg
		return d
	}
	return &delivery{nd: nd, from: from, msg: msg}
}

// putDelivery returns a record, dropping its payload reference so the
// pool retains nothing.
func (n *Network) putDelivery(d *delivery) {
	d.nd, d.msg = nil, nil
	n.free = append(n.free, d)
}

// Engine exposes the underlying event engine (for timers).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Now returns the current simulated time.
func (n *Network) Now() sim.Time { return n.eng.Now() }

// AddNode registers a node. Panics on duplicate IDs: topology is fixed
// at assembly time and a duplicate is a harness bug.
func (n *Network) AddNode(id NodeID, h Handler, cfg ProcConfig) *Node {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	nd := &Node{id: id, net: n, handler: h, cfg: cfg, idle: cfg.Workers}
	n.nodes[id] = nd
	return nd
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// SetLink overrides the link config for the directed pair (from, to).
func (n *Network) SetLink(from, to NodeID, cfg LinkConfig) {
	n.links[[2]NodeID{from, to}] = cfg
}

// SetLinkBoth overrides both directions.
func (n *Network) SetLinkBoth(a, b NodeID, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

func (n *Network) linkFor(from, to NodeID) LinkConfig {
	if cfg, ok := n.links[[2]NodeID{from, to}]; ok {
		return cfg
	}
	return n.defaultLink
}

// Send transmits msg from one node to another, applying the link's
// loss/latency model and then the destination's processor model. A
// down sender is silenced: its timers may still fire in the simulation
// but nothing it emits reaches the network, which is observationally
// equivalent to a crashed process.
func (n *Network) Send(from, to NodeID, msg Message) {
	n.Sent++
	if src, ok := n.nodes[from]; ok && src.down {
		releaseMsg(msg)
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		releaseMsg(msg) // destination never existed; silently dropped like UDP
		return
	}
	cfg := n.linkFor(from, to)
	if cfg.DupProb > 0 {
		// Take a provisional reference before the first transmit can
		// consume the sender's: each transmit call owns exactly one,
		// whether it schedules the arrival or drops the message.
		retainMsg(msg)
		n.transmit(cfg, from, dst, msg)
		if n.rng.Float64() < cfg.DupProb {
			n.transmit(cfg, from, dst, msg)
		} else {
			releaseMsg(msg)
		}
		return
	}
	n.transmit(cfg, from, dst, msg)
}

func (n *Network) transmit(cfg LinkConfig, from NodeID, dst *Node, msg Message) {
	if cfg.DropProb > 0 && (cfg.DropFilter == nil || cfg.DropFilter(msg)) &&
		n.rng.Float64() < cfg.DropProb {
		releaseMsg(msg)
		return
	}
	d := cfg.Latency
	if cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	if cfg.ReorderProb > 0 && n.rng.Float64() < cfg.ReorderProb && cfg.ReorderDelay > 0 {
		d += time.Duration(n.rng.Int63n(int64(cfg.ReorderDelay)))
	}
	n.eng.AfterCall(d, n.arriveFn, n.getDelivery(dst, from, msg))
}

// SetDown marks a node failed (true) or recovered (false). A down node
// drops all arrivals and loses its queued messages, matching a crashed
// process or a switch that stops forwarding.
func (n *Network) SetDown(id NodeID, down bool) {
	nd := n.nodes[id]
	if nd == nil {
		return
	}
	nd.down = down
	if down {
		nd.Dropped += uint64(len(nd.q))
		for _, qd := range nd.q {
			releaseMsg(qd.msg)
		}
		nd.q = nil
		// In-service work is abandoned; workers become idle on
		// recovery. We reset immediately: completions for abandoned
		// work are suppressed by the down check in complete().
		nd.idle = nd.cfg.Workers
	}
}

// IsDown reports the node's failure state.
func (n *Network) IsDown(id NodeID) bool {
	nd := n.nodes[id]
	return nd != nil && nd.down
}

// arrive runs at message delivery time (after the link delay).
func (nd *Node) arrive(from NodeID, msg Message) {
	if nd.down {
		nd.Dropped++
		releaseMsg(msg)
		return
	}
	if t := nd.net.tracer; t != nil {
		t.PacketArrive(nd.id, msg)
	}
	if nd.cfg.Workers == 0 {
		// Line-rate device: no queueing, no service delay.
		nd.Delivered++
		nd.handler.Recv(from, msg)
		return
	}
	if nd.idle > 0 {
		nd.idle--
		nd.serve(from, msg)
		return
	}
	if nd.cfg.QueueLimit > 0 && len(nd.q) >= nd.cfg.QueueLimit {
		nd.Dropped++
		releaseMsg(msg)
		return
	}
	nd.q = append(nd.q, queued{from, msg})
}

// serve begins service for a message on a (now busy) worker.
func (nd *Node) serve(from NodeID, msg Message) {
	if t := nd.net.tracer; t != nil {
		t.PacketServe(nd.id, msg)
	}
	var cost time.Duration
	if nd.cfg.Cost != nil {
		cost = nd.cfg.Cost(msg)
	}
	nd.BusyTime += cost
	nd.net.eng.AfterCall(cost, nd.net.completeFn, nd.net.getDelivery(nd, from, msg))
}

// complete runs when service finishes: the handler executes and the
// worker picks up the next queued message, if any.
func (nd *Node) complete(from NodeID, msg Message) {
	if nd.down {
		releaseMsg(msg) // abandoned in-flight work
		return
	}
	if t := nd.net.tracer; t != nil {
		t.PacketDone(nd.id, msg)
	}
	nd.Delivered++
	nd.handler.Recv(from, msg)
	if len(nd.q) > 0 {
		next := nd.q[0]
		// Pop front; amortize by shifting (queues stay short relative
		// to volume because service is fast).
		copy(nd.q, nd.q[1:])
		nd.q = nd.q[:len(nd.q)-1]
		nd.serve(next.from, next.msg)
		return
	}
	nd.idle++
}

// QueueLen returns the number of waiting (not in-service) messages.
func (nd *Node) QueueLen() int { return len(nd.q) }

// Utilization returns busy-time / (workers × elapsed), a 0..1 load
// factor, for the elapsed duration since the run started.
func (nd *Node) Utilization(elapsed time.Duration) float64 {
	if nd.cfg.Workers == 0 || elapsed <= 0 {
		return 0
	}
	return float64(nd.BusyTime) / (float64(nd.cfg.Workers) * float64(elapsed))
}

// ID returns the node's ID.
func (nd *Node) ID() NodeID { return nd.id }
