package rebalance

import "harmonia/internal/workload"

// PlanSeed plans the slot handoffs that give a newly added group its
// fair share of the slot space immediately, instead of waiting for the
// threshold trigger to notice the empty group. It re-runs the
// largest-remainder apportionment over the NEW live group set — the
// same math rack.Layout uses at boot — so the fix for the 1-slot-floor
// edge case is structural: every live group's target is floored at one
// slot, the targets sum to exactly len(table), and a donor is never
// drained below one slot, so all slots stay owned and no live group
// ends up with zero.
//
// Slot choice is heat-aware (the decayed histogram is the placement
// prior): donations come from the most heat-overloaded donors first,
// and each donor gives its hottest slots while the new group's
// projected heat is still below its weight-fair share, then its
// coldest — the new group relieves the rack's hot spot without simply
// becoming it.
//
// heat and table are rack-wide per-slot samples; weights and live are
// indexed by group ID (retired groups: live=false, weight ignored).
// The returned moves all target newGroup.
func PlanSeed(heat []Heat, table []int, weights []float64, live []bool, newGroup int) []Move {
	n := len(weights)
	if newGroup < 0 || newGroup >= n || len(live) != n || !live[newGroup] {
		return nil
	}
	// Targets: largest remainder over the live group set, 1-slot floors.
	w := make([]float64, n)
	min := make([]int, n)
	liveCount := 0
	for g := 0; g < n; g++ {
		if live[g] {
			w[g] = weights[g]
			min[g] = 1
			liveCount++
		}
	}
	if liveCount < 2 || liveCount > len(table) {
		return nil
	}
	targets := workload.ApportionMin(len(table), w, min)

	counts := make([]int, n)
	load := make([]float64, n)
	var total float64
	for slot, g := range table {
		if g < 0 || g >= n {
			return nil
		}
		counts[g]++
		load[g] += float64(heat[slot].Total())
		total += float64(heat[slot].Total())
	}
	var capSum float64
	for g := 0; g < n; g++ {
		if live[g] {
			capSum += w[g]
		}
	}
	fairShare := total * w[newGroup] / capSum

	deficit := targets[newGroup] - counts[newGroup]
	taken := make([]bool, len(table))
	var moves []Move
	var newHeat float64
	for ; deficit > 0; deficit-- {
		// Donor: the live group with the highest load per capacity unit
		// among those still above target and with more than one slot.
		src := -1
		for g := 0; g < n; g++ {
			if g == newGroup || !live[g] || counts[g] <= targets[g] || counts[g] <= 1 {
				continue
			}
			if src == -1 || load[g]/w[g] > load[src]/w[src] {
				src = g
			}
		}
		if src == -1 {
			break
		}
		// Slot: hottest while the new group is under its fair heat
		// share, coldest after.
		wantHot := newHeat < fairShare
		best := -1
		for slot, g := range table {
			if g != src || taken[slot] {
				continue
			}
			if best == -1 {
				best = slot
				continue
			}
			h, b := heat[slot].Total(), heat[best].Total()
			if (wantHot && h > b) || (!wantHot && h < b) {
				best = slot
			}
		}
		if best == -1 {
			break
		}
		taken[best] = true
		moves = append(moves, Move{Slot: best, From: src, To: newGroup})
		counts[src]--
		counts[newGroup]++
		h := float64(heat[best].Total())
		load[src] -= h
		load[newGroup] += h
		newHeat += h
	}
	return moves
}
