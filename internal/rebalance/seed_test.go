package rebalance

import (
	"math/rand"
	"testing"

	"harmonia/internal/wire"
)

// applySeed plays a PlanSeed move list onto a copy of the slot table.
func applySeed(table []int, moves []Move) []int {
	out := append([]int(nil), table...)
	for _, mv := range moves {
		out[mv.Slot] = mv.To
	}
	return out
}

// checkSeedInvariants asserts the structural guarantees of the
// largest-remainder seeding: every slot owned by a live group and
// every live group owning at least one slot — the 1-slot-floor edge
// case that a naive proportional share violates when shards are small.
func checkSeedInvariants(t *testing.T, table []int, live []bool) {
	t.Helper()
	counts := make([]int, len(live))
	for slot, g := range table {
		if g < 0 || g >= len(live) || !live[g] {
			t.Fatalf("slot %d owned by non-live group %d", slot, g)
		}
		counts[g]++
	}
	for g, l := range live {
		if l && counts[g] == 0 {
			t.Fatalf("live group %d owns zero slots", g)
		}
	}
}

// TestElasticSeedKeepsEverySlotOwned is the satellite property test:
// arbitrary AddGroup sequences — random weights, random heat, retired
// holes in the group set, all the way down to the 1-slot-floor regime
// where 256 groups share 256 slots — never leave a slot unowned or a
// live group empty.
func TestElasticSeedKeepsEverySlotOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Start from a random already-valid ownership over a few groups.
		n := 2 + rng.Intn(6)
		weights := make([]float64, n)
		live := make([]bool, n)
		for g := range weights {
			weights[g] = 0.5 + rng.Float64()*7
			live[g] = true
		}
		table := make([]int, wire.NumSlots)
		for slot := range table {
			table[slot] = rng.Intn(n)
		}
		for g := 0; g < n; g++ { // every seed group owns at least one slot
			table[g] = g
		}
		heat := make([]Heat, wire.NumSlots)
		for slot := range heat {
			heat[slot] = Heat{Reads: uint64(rng.Intn(5000)), Writes: uint64(rng.Intn(500))}
		}

		// Retire a random group now and then: the live set has holes.
		if n > 2 && rng.Intn(2) == 0 {
			victim := rng.Intn(n)
			dst := (victim + 1) % n
			for slot, g := range table {
				if g == victim {
					table[slot] = dst
				}
			}
			live[victim] = false
			weights[victim] = 0
		}

		// Add groups one at a time until the slot space is saturated.
		adds := 1 + rng.Intn(8)
		if rng.Intn(10) == 0 {
			adds = wire.NumSlots // drive into the 1-slot-floor regime
		}
		for a := 0; a < adds; a++ {
			liveCount := 0
			for _, l := range live {
				if l {
					liveCount++
				}
			}
			if liveCount >= wire.NumSlots {
				break
			}
			weights = append(weights, 0.5+rng.Float64()*7)
			live = append(live, true)
			g := len(weights) - 1
			moves := PlanSeed(heat, table, weights, live, g)
			if len(moves) == 0 {
				t.Fatalf("trial %d add %d: PlanSeed moved nothing for group %d", trial, a, g)
			}
			for _, mv := range moves {
				if mv.To != g {
					t.Fatalf("trial %d: move targets group %d, want %d", trial, mv.To, g)
				}
				if table[mv.Slot] != mv.From {
					t.Fatalf("trial %d: move claims slot %d comes from %d, table says %d", trial, mv.Slot, mv.From, table[mv.Slot])
				}
			}
			table = applySeed(table, moves)
			checkSeedInvariants(t, table, live)
		}
	}
}

// TestElasticSeedDegenerateInputs pins the guard rails: an invalid new
// group, a retired new group, or a group set larger than the slot
// table plans nothing rather than panicking or stranding slots.
func TestElasticSeedDegenerateInputs(t *testing.T) {
	heat := make([]Heat, wire.NumSlots)
	table := make([]int, wire.NumSlots)
	weights := []float64{1, 1}
	live := []bool{true, true}
	if mv := PlanSeed(heat, table, weights, live, 5); mv != nil {
		t.Fatal("out-of-range group planned moves")
	}
	if mv := PlanSeed(heat, table, weights, []bool{true, false}, 1); mv != nil {
		t.Fatal("retired new group planned moves")
	}
	// Single live donor: taking its last slots is forbidden, but a
	// 2-live-group split must still work over a 2-slot table.
	small := []int{0, 0}
	if mv := PlanSeed(heat[:2], small, weights, live, 1); len(mv) != 1 {
		t.Fatalf("2-slot split planned %v, want exactly one move", mv)
	}
}

// TestElasticSeedPrefersHotSlots checks the heat-aware placement: the
// new group's seeded share takes the donor's hottest slots first (up
// to its fair heat share), so scale-out relieves the hot spot rather
// than collecting cold slots.
func TestElasticSeedPrefersHotSlots(t *testing.T) {
	heat := make([]Heat, wire.NumSlots)
	table := make([]int, wire.NumSlots)
	for slot := range table {
		table[slot] = slot % 2
	}
	// One scorching slot on group 0; everything else cold.
	heat[10] = Heat{Reads: 1_000_000}
	weights := []float64{1, 1, 1}
	live := []bool{true, true, true}
	moves := PlanSeed(heat, table, weights, live, 2)
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	got := false
	for _, mv := range moves {
		if mv.Slot == 10 {
			got = true
		}
	}
	if !got {
		t.Fatalf("hottest slot not seeded to the new group: %v", moves)
	}
}
