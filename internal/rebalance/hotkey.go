package rebalance

// HotKeyConfig parameterizes hot-key promotion: the escape hatch for
// the one imbalance the slot migrator provably cannot fix. When a
// tick's trigger fires but the round comes up empty (LastStuck), the
// heat is concentrated in a single slot — and if one KEY dominates
// that slot, moving the slot anywhere just relocates the hot spot.
// Promotion instead replicates that key across 2–4 groups and lets the
// switch spread its clean reads, Hermes-style. The zero value of every
// field selects a default tuned for the simulated rack.
type HotKeyConfig struct {
	// Share is the minimum fraction of the stuck slot's heat the
	// hottest-key register's candidate must hold before promotion
	// (default 0.6): replicating a key that is NOT the bottleneck
	// buys invalidation traffic for nothing. The register is a
	// Boyer–Moore majority vote, so votes/total understates the true
	// share — a candidate clearing 0.6 genuinely dominates.
	Share float64

	// MinOps is the minimum candidate vote count (default 64): a
	// freshly decayed register's candidate is noise, not a hot key.
	MinOps uint64

	// MaxHolders caps how many EXTRA groups hold a promoted key's
	// replica beyond its home group, clamped to [1, 3] so the
	// replicated set spans 2–4 groups (default 3). More holders shed
	// more read load but widen every write's invalidation fan-out.
	MaxHolders int

	// CoolRounds is how many consecutive decay rounds the key's own
	// heat must stay at or below CoolOps before demotion (default 8):
	// demotion tears down replicas, so it must survive a brief lull.
	CoolRounds int

	// CoolOps is the per-round operation count at or below which the
	// key counts as cold (default 16).
	CoolOps uint64
}

func (c *HotKeyConfig) fillDefaults() {
	if c.Share <= 0 {
		c.Share = 0.6
	}
	if c.MinOps == 0 {
		c.MinOps = 64
	}
	if c.MaxHolders <= 0 {
		c.MaxHolders = 3
	}
	if c.MaxHolders > 3 {
		c.MaxHolders = 3
	}
	if c.CoolRounds <= 0 {
		c.CoolRounds = 8
	}
	if c.CoolOps == 0 {
		c.CoolOps = 16
	}
}

// Filled returns the effective (defaulted) configuration.
func (c HotKeyConfig) Filled() HotKeyConfig {
	c.fillDefaults()
	return c
}

// ShouldPromote decides whether a stuck slot's hottest-key candidate
// earns replication: its votes must clear the absolute floor AND hold
// the configured share of the slot's total heat.
func (c HotKeyConfig) ShouldPromote(votes, slotTotal uint64) bool {
	c.fillDefaults()
	if votes < c.MinOps || slotTotal == 0 {
		return false
	}
	return float64(votes) >= c.Share*float64(slotTotal)
}

// PickHolders chooses up to MaxHolders holder groups for a key homed
// at home: the highest-capacity live groups first (they absorb spread
// reads cheapest), ties broken by lowest index for determinism. The
// home group is never a holder; weights may be nil (uniform). Returns
// nil when no other live group exists — promotion is pointless then.
func (c HotKeyConfig) PickHolders(home, groups int, weights []float64, live func(g int) bool) []int {
	c.fillDefaults()
	var out []int
	for len(out) < c.MaxHolders {
		best, bestW := -1, 0.0
		for g := 0; g < groups; g++ {
			if g == home || contains(out, g) || (live != nil && !live(g)) {
				continue
			}
			w := 1.0
			if g < len(weights) && weights[g] > 0 {
				w = weights[g]
			}
			if best == -1 || w > bestW {
				best, bestW = g, w
			}
		}
		if best == -1 {
			break
		}
		out = append(out, best)
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
