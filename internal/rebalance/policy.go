// Package rebalance implements the autonomous rebalancing control
// loop: it samples the switch front-end's per-slot heat counters and
// the slot → group routing table, computes per-group load imbalance,
// and plans batch slot moves under a threshold + hysteresis + move-cost
// model. The policy is deliberately pure decision logic over injected
// inputs (heat sample, routing table, clock) so it unit-tests without a
// cluster; the cluster wires it to real switch state and executes the
// planned moves as batch migrations.
//
// Groups need not be interchangeable: SetWeights gives each group a
// relative capacity (replica count, ASIC generation, calibrated
// service rate), and every threshold comparison is then made per
// capacity unit — a 7-replica group legitimately carries more raw load
// than a 3-replica one before the loop calls the rack imbalanced.
// Uniform weights reduce exactly to the historical per-group math.
//
// The design follows "Cheap Recovery: A Key to Self-Managing State"
// (Huang & Fox): because a slot handoff is cheap and always-safe
// (abort thaws the slot on its old owner), moving state can be a
// routine loop instead of an operator ritual — the policy's only job
// is to not thrash, which is what the hysteresis band, the cool-down,
// and the per-slot cost veto are for.
package rebalance

import (
	"time"

	"harmonia/internal/trace"
)

// Heat is one routing slot's recent operation counters, as sampled
// from the switch front-end's register array (after EWMA decay the
// counters approximate an exponentially weighted recent window).
type Heat struct {
	Reads  uint64
	Writes uint64
}

// Total is the slot's combined operation count.
func (h Heat) Total() uint64 { return h.Reads + h.Writes }

// Config parameterizes the control loop. The zero value of every field
// selects a default tuned for the simulated rack's millisecond
// timescale.
type Config struct {
	// Threshold is the per-capacity-unit load ratio at which a
	// rebalancing round fires (default 1.5): the round triggers when
	// the hottest group's load per unit of capacity reaches 1.5× the
	// rack-wide load per capacity unit. With uniform weights this is
	// the classic hottest-group-to-mean ratio; with heterogeneous
	// weights a big group's fair share is proportionally bigger.
	Threshold float64

	// Hysteresis widens the re-arm band: after a round fires, no new
	// round may fire until imbalance has fallen below
	// Threshold−Hysteresis (default 0.25). Without the band, two
	// groups oscillating around the threshold would trade the same
	// slots back and forth forever.
	Hysteresis float64

	// Interval is the sampling cadence of the loop; it is also the
	// heat counters' EWMA decay period (default 1ms of simulated
	// time — the simulation compresses seconds to milliseconds).
	Interval time.Duration

	// Cooldown is the minimum time between rounds, regardless of
	// re-arming (default 3×Interval): a round's migrations must land
	// and the heat window refill before the imbalance reading means
	// anything again.
	Cooldown time.Duration

	// MaxSlotsPerRound bounds one round's batch (default 8): smaller
	// rounds converge over a few intervals instead of freezing a large
	// slice of the key space at once.
	MaxSlotsPerRound int

	// MinOps is the minimum total heat in the sample below which the
	// policy does nothing (default 128): at boot, or on an idle
	// cluster, a handful of ops is noise, not imbalance.
	MinOps uint64

	// MoveCost is the modeled cost of migrating one slot, in
	// sample-window ops: the traffic the freeze window drops plus the
	// handoff's control work (default 48). A slot moves only when its
	// projected gain exceeds its cost.
	MoveCost float64

	// ObjectCost is the additional per-copied-object cost in the same
	// unit (default 1): a slot dense with objects drains a longer bulk
	// copy, so it needs a larger gain to be worth moving.
	ObjectCost float64
}

func (c *Config) fillDefaults() {
	if c.Threshold <= 0 {
		c.Threshold = 1.5
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.25
	}
	if c.Hysteresis >= c.Threshold {
		// A band at or above the threshold makes the re-arm level
		// unreachable (the loop would fire once and disarm forever);
		// clamp to half the threshold. The public API rejects such
		// configs up front — this guards direct internal users.
		c.Hysteresis = c.Threshold / 2
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.Interval
	}
	if c.MaxSlotsPerRound <= 0 {
		c.MaxSlotsPerRound = 8
	}
	if c.MinOps == 0 {
		c.MinOps = 128
	}
	if c.MoveCost <= 0 {
		c.MoveCost = 48
	}
	if c.ObjectCost <= 0 {
		c.ObjectCost = 1
	}
}

// Move is one planned slot migration.
type Move struct {
	Slot int
	From int
	To   int
}

// Swap is one planned two-way slot exchange: the hot SlotA leaves the
// overloaded group From for To while the cold SlotB travels the other
// way, so neither group's slot occupancy changes. The policy proposes
// a swap when a one-way drain was blocked by the occupancy cost veto
// alone — trading slots sheds heat while only the occupancy DIFFERENCE
// pays the bulk-copy bill.
type Swap struct {
	SlotA int // hot slot, moves From → To
	SlotB int // cold slot, moves To → From
	From  int
	To    int
}

// Round is one control-loop tick's full plan: the one-way drain moves,
// plus any slot exchanges planned because every drain candidate was
// occupancy-vetoed.
type Round struct {
	Moves []Move
	Swaps []Swap
}

// Empty reports whether the round plans nothing.
func (r Round) Empty() bool { return len(r.Moves) == 0 && len(r.Swaps) == 0 }

// Policy is the control loop's decision state. It is not safe for
// concurrent use; the cluster drives it from the single-threaded
// simulation.
type Policy struct {
	cfg Config
	now func() time.Duration

	// weights holds the per-group capacity weights (nil: uniform).
	weights []float64

	armed     bool
	everFired bool
	lastRound time.Duration

	// stuckSlot records the hottest slot of the overloaded group on a
	// tick whose trigger fired but whose round came up empty — the
	// indivisible-hot-spot case batch migration cannot help, and the
	// signal the hot-key promotion policy keys on. −1 when the last
	// tick was not stuck.
	stuckSlot int

	rounds     int
	slotsMoved int

	// rec, when set, is the flight recorder this policy reports its
	// fired rounds and vetoed ticks to; sw labels the events with the
	// switch domain the policy serves.
	rec *trace.Recorder
	sw  int16
}

// New builds a policy with cfg (zero fields defaulted) reading the
// injected clock. The clock makes the loop deterministic under the
// simulation and trivially fakeable in unit tests.
func New(cfg Config, now func() time.Duration) *Policy {
	cfg.fillDefaults()
	return &Policy{cfg: cfg, now: now, armed: true, stuckSlot: -1}
}

// Config returns the effective (defaulted) configuration.
func (p *Policy) Config() Config { return p.cfg }

// SetRecorder points the policy at the control-plane flight recorder,
// labeling its events with the switch domain sw. Group indices in the
// emitted events are the policy's LOCAL plan indices (the switch
// domain's group order), matching the inputs Plan/PlanRound received.
func (p *Policy) SetRecorder(rec *trace.Recorder, sw int) {
	p.rec = rec
	p.sw = int16(sw)
}

// SetWeights installs the per-group capacity weights the imbalance
// math normalizes by (index = the group index Plan's table uses; for a
// rack-aware cluster that is the switch domain's LOCAL index order).
// Nil, an empty slice, or non-positive entries fall back to uniform
// capacity. The slice is copied.
func (p *Policy) SetWeights(w []float64) {
	if len(w) == 0 {
		p.weights = nil
		return
	}
	p.weights = append([]float64(nil), w...)
}

// weightsFor returns the effective weight vector for a groups-sized
// plan: the installed weights when they fit, uniform 1s otherwise (a
// stale or missing weight vector must degrade to the historical
// behavior, never misattribute capacity).
func (p *Policy) weightsFor(groups int) []float64 {
	out := make([]float64, groups)
	ok := len(p.weights) == groups
	if ok {
		for _, w := range p.weights {
			if !(w > 0) {
				ok = false
				break
			}
		}
	}
	for i := range out {
		if ok {
			out[i] = p.weights[i]
		} else {
			out[i] = 1
		}
	}
	return out
}

// Ready reports whether a round could possibly fire right now: the
// trigger is armed and the cool-down has elapsed. Callers use it to
// skip gathering expensive Plan inputs (e.g. per-slot object counts)
// that a gated tick would discard unread; heat must still be sampled —
// Plan needs it to re-arm the trigger on calm readings.
func (p *Policy) Ready() bool {
	if !p.armed {
		return false
	}
	if p.everFired && p.now()-p.lastRound < p.cfg.Cooldown {
		return false
	}
	return true
}

// LastStuck reports whether the most recent tick fired its trigger
// but planned nothing — the indivisible hot spot the batch migrator
// cannot fix — and if so, which slot of the overloaded group was
// hottest. That slot's dominant key is the promotion candidate.
func (p *Policy) LastStuck() (slot int, stuck bool) {
	return p.stuckSlot, p.stuckSlot >= 0
}

// Rounds returns how many rebalancing rounds have fired.
func (p *Policy) Rounds() int { return p.rounds }

// SlotsMoved returns the total number of slot moves planned across all
// rounds.
func (p *Policy) SlotsMoved() int { return p.slotsMoved }

// Plan runs one control-loop tick: given the per-slot heat sample, the
// current slot → group table, optional per-slot object counts (nil if
// unknown; the cost model then charges MoveCost alone), the group
// count, and an optional busy predicate (slots currently mid-handoff,
// which cannot be moved again yet), it returns the batch of moves to
// execute now — nil when the loop should hold still. Firing re-arms
// only after per-capacity-unit imbalance falls below
// Threshold−Hysteresis, and never within Cooldown of the last round. A
// tick whose every candidate is busy or vetoed plans nothing AND
// commits nothing — the trigger stays armed and no cool-down is
// burned, so the loop retries as soon as the situation becomes movable
// instead of disarming itself forever.
//
// Plan never proposes slot exchanges; callers that can execute them
// use PlanRound, which falls back to a swap when the drain is
// occupancy-blocked.
func (p *Policy) Plan(heat []Heat, table []int, objects []int, groups int, busy func(slot int) bool) []Move {
	return p.planTick(heat, table, objects, groups, busy, false).Moves
}

// PlanRound runs one control-loop tick like Plan, but may additionally
// plan slot exchanges: when the drain plan comes up empty because
// every balance-improving candidate lost to the occupancy cost veto,
// the round instead trades the hottest movable slot of the overloaded
// group for the coldest slot of the underloaded one — heat moves, slot
// occupancy stays level, and only the occupancy difference pays the
// copy bill. Firing (moves OR swaps) disarms the trigger and starts
// the cool-down exactly as a drain round does.
func (p *Policy) PlanRound(heat []Heat, table []int, objects []int, groups int, busy func(slot int) bool) Round {
	return p.planTick(heat, table, objects, groups, busy, true)
}

func (p *Policy) planTick(heat []Heat, table []int, objects []int, groups int, busy func(slot int) bool, withSwaps bool) Round {
	p.stuckSlot = -1 // stuckness is a per-tick observation
	if groups < 2 || len(heat) == 0 || len(table) != len(heat) {
		return Round{}
	}
	w := p.weightsFor(groups)
	load := make([]float64, groups)
	var total uint64
	var capSum float64
	for _, wg := range w {
		capSum += wg
	}
	for s, h := range heat {
		g := table[s]
		if g < 0 || g >= groups {
			continue
		}
		load[g] += float64(h.Total())
		total += h.Total()
	}
	if total < p.cfg.MinOps {
		return Round{}
	}
	// fairUnit is the rack-wide load per capacity unit; a group's fair
	// share is fairUnit·weight. With uniform weights this is exactly
	// the historical per-group mean.
	fairUnit := float64(total) / capSum
	if fairUnit <= 0 {
		return Round{}
	}
	hot := hottestNorm(load, w)
	imb := load[hot] / w[hot] / fairUnit

	// Hysteresis: once a round fires the trigger disarms, and only a
	// reading inside the calm band re-arms it. A reading that hovers
	// between the two thresholds keeps the loop quiet in BOTH
	// directions — no firing, no re-arming — which is what prevents
	// ping-pong when two groups oscillate around the threshold.
	if !p.armed && imb < p.cfg.Threshold-p.cfg.Hysteresis {
		p.armed = true
	}
	if !p.armed || imb < p.cfg.Threshold {
		return Round{}
	}
	if p.everFired && p.now()-p.lastRound < p.cfg.Cooldown {
		return Round{}
	}

	moves, costVetoed := p.plan(heat, table, objects, load, w, fairUnit, busy)
	round := Round{Moves: moves}
	if len(moves) == 0 && costVetoed && withSwaps {
		round.Swaps = p.planSwaps(heat, table, objects, load, w, busy)
	}
	if round.Empty() {
		// Nothing movable (indivisible hot slot, or every candidate
		// vetoed by the cost model): stay armed, don't burn the
		// cooldown — the situation may become movable as heat decays.
		// Record the overloaded group's hottest slot: moving it cannot
		// help, but replicating its hottest KEY can, and the hot-key
		// promotion policy reads this via LastStuck.
		best, bestHeat := -1, uint64(0)
		for s, h := range heat {
			if table[s] == hot && h.Total() > bestHeat {
				best, bestHeat = s, h.Total()
			}
		}
		p.stuckSlot = best
		if p.rec != nil {
			// The trigger fired but nothing moved: a vetoed tick. Arg
			// records whether the cost model (1) or mere busyness/
			// indivisibility (0) blocked the round.
			var costArg uint64
			if costVetoed {
				costArg = 1
			}
			p.rec.Emit(trace.Event{
				Kind: trace.EvRebalanceVeto, Switch: p.sw,
				Group: int16(hot), Slot: int16(best), Arg: costArg,
			})
		}
		return Round{}
	}
	p.armed = false
	p.everFired = true
	p.lastRound = p.now()
	p.rounds++
	p.slotsMoved += len(round.Moves) + 2*len(round.Swaps)
	if p.rec != nil {
		p.rec.Emit(trace.Event{
			Kind: trace.EvRebalanceTick, Switch: p.sw, Group: int16(hot),
			Slot: -1, Arg: uint64(len(round.Moves)), Arg2: uint64(len(round.Swaps)),
		})
	}
	return round
}

// plan greedily drains the projected-hottest group (per capacity unit)
// into the projected-coolest, hottest slot first, until the projected
// imbalance re-enters the calm band, the per-round budget is spent, or
// no remaining candidate both improves the balance and survives the
// cost veto. costVetoed reports whether at least one candidate was
// blocked ONLY by the cost model — the signal PlanRound's swap
// fallback keys on.
func (p *Policy) plan(heat []Heat, table []int, objects []int, load, w []float64, fairUnit float64, busy func(slot int) bool) (moves []Move, costVetoed bool) {
	proj := append([]float64(nil), load...)
	calmUnit := fairUnit * (p.cfg.Threshold - p.cfg.Hysteresis)

	moved := make(map[int]bool)
	for len(moves) < p.cfg.MaxSlotsPerRound {
		src := hottestNorm(proj, w)
		if proj[src]/w[src] <= calmUnit {
			break // projected balance is back inside the calm band
		}
		dst := coolestNorm(proj, w)
		best, bestHeat := -1, uint64(0)
		for s, h := range heat {
			if table[s] != src || moved[s] || h.Total() == 0 {
				continue
			}
			if busy != nil && busy(s) {
				continue
			}
			if h.Total() > bestHeat {
				// The hottest unmoved slot of the source that still
				// improves the balance: after the move the destination
				// must stay cooler PER CAPACITY UNIT than the source
				// was, or the move just relocates the hot spot
				// (ping-pong fuel).
				if (proj[dst]+float64(h.Total()))/w[dst] >= proj[src]/w[src] {
					continue
				}
				if !p.worthMoving(h, s, objects, proj[src], proj[dst], w[src], w[dst]) {
					costVetoed = true
					continue
				}
				best, bestHeat = s, h.Total()
			}
		}
		if best < 0 {
			break
		}
		moves = append(moves, Move{Slot: best, From: src, To: dst})
		moved[best] = true
		proj[src] -= float64(bestHeat)
		proj[dst] += float64(bestHeat)
	}
	return moves, costVetoed
}

// planSwaps proposes at most one hot-for-cold slot exchange between
// the hottest and coolest groups (per capacity unit): the hottest
// movable slot of the source trades places with the coldest movable
// slot of the destination. The exchange must genuinely improve the
// balance (the destination ends cooler per unit than the source was)
// and survive the swap cost model — two handoffs' control work plus
// the occupancy DIFFERENCE, which is the whole point: a swap is what
// the policy reaches for when one-way occupancy transfer was vetoed.
func (p *Policy) planSwaps(heat []Heat, table []int, objects []int, load, w []float64, busy func(slot int) bool) []Swap {
	src := hottestNorm(load, w)
	dst := coolestNorm(load, w)
	if src == dst {
		return nil
	}
	hot := -1
	for s, h := range heat {
		if table[s] != src || h.Total() == 0 || (busy != nil && busy(s)) {
			continue
		}
		if hot == -1 || h.Total() > heat[hot].Total() {
			hot = s
		}
	}
	if hot == -1 {
		return nil
	}
	gap := weightedGap(load[src], load[dst], w[src], w[dst])
	// The peer is the destination slot with the best NET benefit —
	// heat shed minus the exchange's cost — not merely the coldest:
	// against a dense hot slot, an equally dense lukewarm peer (tiny
	// occupancy difference) beats an empty ice-cold one whose copy
	// bill re-imposes the very veto the swap exists to dodge.
	cold, bestBenefit := -1, 0.0
	for s, h := range heat {
		if table[s] != dst || (busy != nil && busy(s)) {
			continue
		}
		net := float64(heat[hot].Total()) - float64(h.Total())
		if net <= 0 {
			continue
		}
		if (load[dst]+net)/w[dst] >= load[src]/w[src] {
			continue // relocation, not improvement
		}
		gain := net
		if gap < gain {
			gain = gap
		}
		cost := 2 * p.cfg.MoveCost
		if objects != nil {
			// Clamp each arm independently: a slot beyond the sampled
			// range charges zero occupancy, but the in-range arm still
			// pays — the old whole-pair guard silently priced BOTH
			// slots at zero whenever either index fell off the slice,
			// letting a dense/unknown exchange dodge the copy bill.
			diff := objAt(objects, hot) - objAt(objects, s)
			if diff < 0 {
				diff = -diff
			}
			cost += p.cfg.ObjectCost * diff
		}
		if benefit := gain - cost; benefit > bestBenefit {
			cold, bestBenefit = s, benefit
		}
	}
	if cold == -1 {
		return nil
	}
	return []Swap{{SlotA: hot, SlotB: cold, From: src, To: dst}}
}

// worthMoving is the cost-model veto: a slot moves only when the
// projected per-window gain (how much the hottest group sheds toward
// the destination, capped by the capacity-weighted gap it closes)
// exceeds the modeled drain cost of the handoff.
func (p *Policy) worthMoving(h Heat, slot int, objects []int, srcLoad, dstLoad, srcW, dstW float64) bool {
	gain := float64(h.Total())
	if gap := weightedGap(srcLoad, dstLoad, srcW, dstW); gap < gain {
		gain = gap
	}
	cost := p.cfg.MoveCost
	if objects != nil {
		cost += p.cfg.ObjectCost * objAt(objects, slot)
	}
	return gain > cost
}

// objAt reads a per-slot object count with an out-of-range clamp to
// zero: a short sample (older snapshot, fewer slots) means "occupancy
// unknown", which the cost model prices as free rather than guessing.
func objAt(objects []int, i int) float64 {
	if i < 0 || i >= len(objects) {
		return 0
	}
	return float64(objects[i])
}

// weightedGap is the raw load that must travel source → destination to
// equalize their per-capacity-unit loads: solving
// (Lsrc−x)/Wsrc = (Ldst+x)/Wdst gives x = (Lsrc·Wdst − Ldst·Wsrc)/(Wsrc+Wdst).
// Uniform weights reduce it to the historical (Lsrc−Ldst)/2.
func weightedGap(srcLoad, dstLoad, srcW, dstW float64) float64 {
	return (srcLoad*dstW - dstLoad*srcW) / (srcW + dstW)
}

// hottestNorm returns the group with the highest load per capacity
// unit (ties: lowest index).
func hottestNorm(load, w []float64) int {
	best := 0
	for g := range load {
		if load[g]/w[g] > load[best]/w[best] {
			best = g
		}
	}
	return best
}

// coolestNorm returns the group with the lowest load per capacity unit
// (ties: lowest index).
func coolestNorm(load, w []float64) int {
	best := 0
	for g := range load {
		if load[g]/w[g] < load[best]/w[best] {
			best = g
		}
	}
	return best
}
