// Package rebalance implements the autonomous rebalancing control
// loop: it samples the switch front-end's per-slot heat counters and
// the slot → group routing table, computes per-group load imbalance,
// and plans batch slot moves under a threshold + hysteresis + move-cost
// model. The policy is deliberately pure decision logic over injected
// inputs (heat sample, routing table, clock) so it unit-tests without a
// cluster; the cluster wires it to real switch state and executes the
// planned moves as batch migrations.
//
// The design follows "Cheap Recovery: A Key to Self-Managing State"
// (Huang & Fox): because a slot handoff is cheap and always-safe
// (abort thaws the slot on its old owner), moving state can be a
// routine loop instead of an operator ritual — the policy's only job
// is to not thrash, which is what the hysteresis band, the cool-down,
// and the per-slot cost veto are for.
package rebalance

import "time"

// Heat is one routing slot's recent operation counters, as sampled
// from the switch front-end's register array (after EWMA decay the
// counters approximate an exponentially weighted recent window).
type Heat struct {
	Reads  uint64
	Writes uint64
}

// Total is the slot's combined operation count.
func (h Heat) Total() uint64 { return h.Reads + h.Writes }

// Config parameterizes the control loop. The zero value of every field
// selects a default tuned for the simulated rack's millisecond
// timescale.
type Config struct {
	// Threshold is the hottest-group-to-mean load ratio at which a
	// rebalancing round fires (default 1.5: the hottest group carries
	// ≥1.5× its fair share).
	Threshold float64

	// Hysteresis widens the re-arm band: after a round fires, no new
	// round may fire until imbalance has fallen below
	// Threshold−Hysteresis (default 0.25). Without the band, two
	// groups oscillating around the threshold would trade the same
	// slots back and forth forever.
	Hysteresis float64

	// Interval is the sampling cadence of the loop; it is also the
	// heat counters' EWMA decay period (default 1ms of simulated
	// time — the simulation compresses seconds to milliseconds).
	Interval time.Duration

	// Cooldown is the minimum time between rounds, regardless of
	// re-arming (default 3×Interval): a round's migrations must land
	// and the heat window refill before the imbalance reading means
	// anything again.
	Cooldown time.Duration

	// MaxSlotsPerRound bounds one round's batch (default 8): smaller
	// rounds converge over a few intervals instead of freezing a large
	// slice of the key space at once.
	MaxSlotsPerRound int

	// MinOps is the minimum total heat in the sample below which the
	// policy does nothing (default 128): at boot, or on an idle
	// cluster, a handful of ops is noise, not imbalance.
	MinOps uint64

	// MoveCost is the modeled cost of migrating one slot, in
	// sample-window ops: the traffic the freeze window drops plus the
	// handoff's control work (default 48). A slot moves only when its
	// projected gain exceeds its cost.
	MoveCost float64

	// ObjectCost is the additional per-copied-object cost in the same
	// unit (default 1): a slot dense with objects drains a longer bulk
	// copy, so it needs a larger gain to be worth moving.
	ObjectCost float64
}

func (c *Config) fillDefaults() {
	if c.Threshold <= 0 {
		c.Threshold = 1.5
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.25
	}
	if c.Hysteresis >= c.Threshold {
		// A band at or above the threshold makes the re-arm level
		// unreachable (the loop would fire once and disarm forever);
		// clamp to half the threshold. The public API rejects such
		// configs up front — this guards direct internal users.
		c.Hysteresis = c.Threshold / 2
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.Interval
	}
	if c.MaxSlotsPerRound <= 0 {
		c.MaxSlotsPerRound = 8
	}
	if c.MinOps == 0 {
		c.MinOps = 128
	}
	if c.MoveCost <= 0 {
		c.MoveCost = 48
	}
	if c.ObjectCost <= 0 {
		c.ObjectCost = 1
	}
}

// Move is one planned slot migration.
type Move struct {
	Slot int
	From int
	To   int
}

// Policy is the control loop's decision state. It is not safe for
// concurrent use; the cluster drives it from the single-threaded
// simulation.
type Policy struct {
	cfg Config
	now func() time.Duration

	armed     bool
	everFired bool
	lastRound time.Duration

	rounds     int
	slotsMoved int
}

// New builds a policy with cfg (zero fields defaulted) reading the
// injected clock. The clock makes the loop deterministic under the
// simulation and trivially fakeable in unit tests.
func New(cfg Config, now func() time.Duration) *Policy {
	cfg.fillDefaults()
	return &Policy{cfg: cfg, now: now, armed: true}
}

// Config returns the effective (defaulted) configuration.
func (p *Policy) Config() Config { return p.cfg }

// Ready reports whether a round could possibly fire right now: the
// trigger is armed and the cool-down has elapsed. Callers use it to
// skip gathering expensive Plan inputs (e.g. per-slot object counts)
// that a gated tick would discard unread; heat must still be sampled —
// Plan needs it to re-arm the trigger on calm readings.
func (p *Policy) Ready() bool {
	if !p.armed {
		return false
	}
	if p.everFired && p.now()-p.lastRound < p.cfg.Cooldown {
		return false
	}
	return true
}

// Rounds returns how many rebalancing rounds have fired.
func (p *Policy) Rounds() int { return p.rounds }

// SlotsMoved returns the total number of slot moves planned across all
// rounds.
func (p *Policy) SlotsMoved() int { return p.slotsMoved }

// Plan runs one control-loop tick: given the per-slot heat sample, the
// current slot → group table, optional per-slot object counts (nil if
// unknown; the cost model then charges MoveCost alone), the group
// count, and an optional busy predicate (slots currently mid-handoff,
// which cannot be moved again yet), it returns the batch of moves to
// execute now — nil when the loop should hold still. Firing re-arms
// only after imbalance falls below Threshold−Hysteresis, and never
// within Cooldown of the last round. A tick whose every candidate is
// busy or vetoed plans nothing AND commits nothing — the trigger stays
// armed and no cool-down is burned, so the loop retries as soon as the
// situation becomes movable instead of disarming itself forever.
func (p *Policy) Plan(heat []Heat, table []int, objects []int, groups int, busy func(slot int) bool) []Move {
	if groups < 2 || len(heat) == 0 || len(table) != len(heat) {
		return nil
	}
	load := make([]float64, groups)
	var total uint64
	for s, h := range heat {
		g := table[s]
		if g < 0 || g >= groups {
			continue
		}
		load[g] += float64(h.Total())
		total += h.Total()
	}
	if total < p.cfg.MinOps {
		return nil
	}
	mean := float64(total) / float64(groups)
	if mean <= 0 {
		return nil
	}
	imb := load[hottest(load)] / mean

	// Hysteresis: once a round fires the trigger disarms, and only a
	// reading inside the calm band re-arms it. A reading that hovers
	// between the two thresholds keeps the loop quiet in BOTH
	// directions — no firing, no re-arming — which is what prevents
	// ping-pong when two groups oscillate around the threshold.
	if !p.armed && imb < p.cfg.Threshold-p.cfg.Hysteresis {
		p.armed = true
	}
	if !p.armed || imb < p.cfg.Threshold {
		return nil
	}
	if p.everFired && p.now()-p.lastRound < p.cfg.Cooldown {
		return nil
	}

	moves := p.plan(heat, table, objects, load, busy)
	if len(moves) == 0 {
		// Nothing movable (indivisible hot slot, or every candidate
		// vetoed by the cost model): stay armed, don't burn the
		// cooldown — the situation may become movable as heat decays.
		return nil
	}
	p.armed = false
	p.everFired = true
	p.lastRound = p.now()
	p.rounds++
	p.slotsMoved += len(moves)
	return moves
}

// plan greedily drains the projected-hottest group into the
// projected-coolest, hottest slot first, until the projected imbalance
// re-enters the calm band, the per-round budget is spent, or no
// remaining candidate both improves the balance and survives the cost
// veto.
func (p *Policy) plan(heat []Heat, table []int, objects []int, load []float64, busy func(slot int) bool) []Move {
	proj := append([]float64(nil), load...)
	mean := 0.0
	for _, l := range proj {
		mean += l
	}
	mean /= float64(len(proj))
	calm := mean * (p.cfg.Threshold - p.cfg.Hysteresis)

	moved := make(map[int]bool)
	var moves []Move
	for len(moves) < p.cfg.MaxSlotsPerRound {
		src := hottest(proj)
		if proj[src] <= calm {
			break // projected balance is back inside the calm band
		}
		dst := coolest(proj)
		best, bestHeat := -1, uint64(0)
		for s, h := range heat {
			if table[s] != src || moved[s] || h.Total() == 0 {
				continue
			}
			if busy != nil && busy(s) {
				continue
			}
			if h.Total() > bestHeat {
				// The hottest unmoved slot of the source that still
				// improves the balance: after the move the destination
				// must stay cooler than the source was, or the move
				// just relocates the hot spot (ping-pong fuel).
				if proj[dst]+float64(h.Total()) >= proj[src] {
					continue
				}
				if !p.worthMoving(h, s, objects, proj[src], proj[dst]) {
					continue
				}
				best, bestHeat = s, h.Total()
			}
		}
		if best < 0 {
			break
		}
		moves = append(moves, Move{Slot: best, From: src, To: dst})
		moved[best] = true
		proj[src] -= float64(bestHeat)
		proj[dst] += float64(bestHeat)
	}
	return moves
}

// worthMoving is the cost-model veto: a slot moves only when the
// projected per-window gain (how much the hottest group sheds toward
// the destination, capped by the gap it closes) exceeds the modeled
// drain cost of the handoff.
func (p *Policy) worthMoving(h Heat, slot int, objects []int, srcLoad, dstLoad float64) bool {
	gain := float64(h.Total())
	if gap := (srcLoad - dstLoad) / 2; gap < gain {
		gain = gap
	}
	cost := p.cfg.MoveCost
	if objects != nil && slot < len(objects) {
		cost += p.cfg.ObjectCost * float64(objects[slot])
	}
	return gain > cost
}

func hottest(load []float64) int {
	best := 0
	for g, l := range load {
		if l > load[best] {
			best = g
		}
	}
	return best
}

func coolest(load []float64) int {
	best := 0
	for g, l := range load {
		if l < load[best] {
			best = g
		}
	}
	return best
}
