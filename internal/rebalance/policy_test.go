package rebalance

import (
	"testing"
	"time"

	"harmonia/internal/wire"
)

// fakeWorld is a deterministic policy harness: a hand-set clock, a
// synthetic heat sample, and a routing table — no cluster, no
// simulation.
type fakeWorld struct {
	now   time.Duration
	heat  []Heat
	table []int
	objs  []int
}

func newFakeWorld(groups int) *fakeWorld {
	w := &fakeWorld{
		heat:  make([]Heat, wire.NumSlots),
		table: make([]int, wire.NumSlots),
	}
	for s := range w.table {
		w.table[s] = s % groups
	}
	return w
}

func (w *fakeWorld) clock() time.Duration { return w.now }

func (w *fakeWorld) plan(p *Policy, groups int) []Move {
	return p.Plan(w.heat, w.table, w.objs, groups, nil)
}

// apply executes planned moves against the fake routing table, the way
// the cluster's migrations would.
func (w *fakeWorld) apply(moves []Move) {
	for _, m := range moves {
		w.table[m.Slot] = m.To
	}
}

var testCfg = Config{
	Threshold: 1.5, Hysteresis: 0.25, Interval: time.Millisecond,
	Cooldown: 3 * time.Millisecond, MaxSlotsPerRound: 4,
	MinOps: 100, MoveCost: 10, ObjectCost: 1,
}

func TestRebalancePolicyThresholdCrossing(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)

	// Balanced load: group 0 and 1 each carry 500 — no trigger.
	w.heat[0] = Heat{Reads: 400, Writes: 100} // slot 0 → group 0
	w.heat[1] = Heat{Reads: 400, Writes: 100} // slot 1 → group 1
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("balanced load planned %v", moves)
	}

	// Skew group 0 to 3× its fair share across two slots.
	w.heat[0] = Heat{Reads: 1500}
	w.heat[2] = Heat{Reads: 1500} // slot 2 → group 0
	moves := w.plan(p, 2)
	if len(moves) == 0 {
		t.Fatal("3x imbalance triggered nothing")
	}
	for _, m := range moves {
		if m.From != 0 || m.To != 1 {
			t.Fatalf("move %+v does not drain the hot group into the cool one", m)
		}
		if m.Slot != 0 && m.Slot != 2 {
			t.Fatalf("move %+v picked a cold slot", m)
		}
	}
	if p.Rounds() != 1 || p.SlotsMoved() != len(moves) {
		t.Fatalf("rounds=%d slotsMoved=%d after one round of %d moves", p.Rounds(), p.SlotsMoved(), len(moves))
	}
}

func TestRebalancePolicyBelowMinOpsHoldsStill(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	w.heat[0] = Heat{Reads: 99} // total below MinOps, however skewed
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("sub-MinOps sample planned %v", moves)
	}
}

// TestRebalancePolicyHysteresisNoPingPong drives the classic oscillation: after
// a round fires, imbalance hovers between the re-arm level and the
// threshold (two groups trading places around the trigger). The policy
// must stay quiet in BOTH directions — no re-fire until the reading
// drops through the calm band.
func TestRebalancePolicyHysteresisNoPingPong(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)

	// Fire once: slot 0 makes group 0 hot (imbalance 1.8).
	w.heat[0] = Heat{Reads: 600}
	w.heat[1] = Heat{Reads: 50}
	w.heat[2] = Heat{Reads: 250} // group 0's remainder
	w.heat[3] = Heat{Reads: 100}
	if moves := w.plan(p, 2); len(moves) == 0 {
		t.Fatal("setup round never fired")
	}

	// Oscillate around the threshold without entering the calm band
	// (<1.25): alternate imbalance ≈1.45 and ≈1.55 for many intervals,
	// well past the cooldown. A threshold-only policy would fire on
	// every other sample and bounce the same slot between the groups.
	for i := 0; i < 12; i++ {
		w.now += 2 * testCfg.Cooldown
		hot := uint64(725) // imbalance 1.45
		if i%2 == 1 {
			hot = 775 // imbalance 1.55
		}
		w.heat[0] = Heat{Reads: hot}
		w.heat[1] = Heat{Reads: 1000 - hot}
		w.heat[2], w.heat[3] = Heat{}, Heat{}
		if moves := w.plan(p, 2); moves != nil {
			t.Fatalf("oscillation sample %d re-fired: %v", i, moves)
		}
	}

	// Drop through the calm band (re-arms), then cross the threshold:
	// now it may fire again.
	w.now += 2 * testCfg.Cooldown
	w.heat[0] = Heat{Reads: 500}
	w.heat[1] = Heat{Reads: 500}
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("calm sample fired: %v", moves)
	}
	w.now += 2 * testCfg.Cooldown
	w.heat[0] = Heat{Reads: 900}
	w.heat[2] = Heat{Reads: 900}
	w.heat[1] = Heat{Reads: 200}
	if moves := w.plan(p, 2); len(moves) == 0 {
		t.Fatal("re-armed policy refused a genuine 3x imbalance")
	}
}

func TestRebalancePolicyCooldown(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)

	skew := func() {
		w.heat[0] = Heat{Reads: 1500}
		w.heat[2] = Heat{Reads: 1500}
		w.heat[1] = Heat{Reads: 500}
	}
	calm := func() {
		w.heat[0] = Heat{Reads: 500}
		w.heat[1] = Heat{Reads: 500}
		w.heat[2] = Heat{}
	}

	skew()
	if moves := w.plan(p, 2); len(moves) == 0 {
		t.Fatal("first round never fired")
	}
	// Re-arm immediately (calm sample), then skew again before the
	// cooldown elapsed: the policy must wait it out.
	w.now += testCfg.Interval
	calm()
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("calm sample fired: %v", moves)
	}
	w.now += testCfg.Interval // 2ms since round < 3ms cooldown
	skew()
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("fired inside the cooldown: %v", moves)
	}
	w.now += 2 * testCfg.Interval // 4ms since round: past cooldown
	if moves := w.plan(p, 2); len(moves) == 0 {
		t.Fatal("cooldown expiry did not release the round")
	}
}

// TestRebalancePolicyCostModelVeto: a slot whose projected gain cannot repay
// the drain cost stays put, however hot its group looks.
func TestRebalancePolicyCostModelVeto(t *testing.T) {
	w := newFakeWorld(2)
	w.objs = make([]int, wire.NumSlots)
	p := New(testCfg, w.clock)

	// Group 0 carries 1.6× its fair share across two slots — but both
	// are packed with objects: ObjectCost(1)×5000 dwarfs the few
	// hundred ops a move could shed.
	w.heat[0] = Heat{Reads: 500} // slot 0 → group 0
	w.heat[4] = Heat{Reads: 300} // slot 4 → group 0
	w.heat[1] = Heat{Reads: 200} // slot 1 → group 1
	w.objs[0], w.objs[4] = 5000, 5000
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("cost model let a 5000-object slot move for a ~300-op gain: %v", moves)
	}
	if p.Rounds() != 0 {
		t.Fatal("a fully vetoed round still counted as fired")
	}

	// Same skew, cheap slots: the hottest one moves first.
	w.objs[0], w.objs[4] = 10, 10
	moves := w.plan(p, 2)
	if len(moves) == 0 || moves[0] != (Move{Slot: 0, From: 0, To: 1}) {
		t.Fatalf("cheap slot did not move: %v", moves)
	}
}

// TestRebalancePolicyIndivisibleHotSlot: one mega-slot carrying all the load
// cannot be improved by moving it (the destination would just become
// the new hot group), so the policy must hold still — forever, not
// fire-and-thrash.
func TestRebalancePolicyIndivisibleHotSlot(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	for i := 0; i < 6; i++ {
		w.heat[0] = Heat{Reads: 2000} // the only load in the system
		if moves := w.plan(p, 2); moves != nil {
			t.Fatalf("sample %d moved an indivisible hot slot: %v", i, moves)
		}
		w.now += 2 * testCfg.Cooldown
	}
}

// TestRebalancePolicyBusySlotsDoNotBurnTheTrigger: when every
// candidate slot is still mid-handoff from a previous round, the tick
// must plan nothing AND keep the trigger armed — otherwise the loop
// disarms with nothing moved, the imbalance never falls through the
// re-arm band, and the rebalancer goes silent forever.
func TestRebalancePolicyBusySlotsDoNotBurnTheTrigger(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	w.heat[0] = Heat{Reads: 1500} // slot 0 → group 0
	w.heat[2] = Heat{Reads: 1500} // slot 2 → group 0
	w.heat[1] = Heat{Reads: 500}
	allBusy := func(int) bool { return true }
	for i := 0; i < 3; i++ {
		if moves := p.Plan(w.heat, w.table, w.objs, 2, allBusy); moves != nil {
			t.Fatalf("busy round %d planned %v", i, moves)
		}
		w.now += 2 * testCfg.Cooldown
	}
	if p.Rounds() != 0 {
		t.Fatal("busy rounds counted as fired")
	}
	// The handoffs land; the very next tick may fire without waiting
	// out any cooldown or re-arm cycle.
	if moves := w.plan(p, 2); len(moves) == 0 {
		t.Fatal("trigger was burned by busy rounds")
	}
}

func TestRebalanceConfigClampsHysteresis(t *testing.T) {
	p := New(Config{Threshold: 1.2, Hysteresis: 1.2}, func() time.Duration { return 0 })
	if h := p.Config().Hysteresis; h >= 1.2 {
		t.Fatalf("hysteresis %v not clamped below threshold", h)
	}
}

func TestRebalancePolicyMaxSlotsPerRound(t *testing.T) {
	w := newFakeWorld(4)
	p := New(testCfg, w.clock)
	// Twelve equally hot slots on group 0, everything else idle.
	for s := 0; s < wire.NumSlots; s++ {
		if w.table[s] == 0 {
			w.heat[s] = Heat{Reads: 100}
		}
		if len(nonzero(w.heat)) == 12 {
			break
		}
	}
	moves := w.plan(p, 4)
	if len(moves) == 0 || len(moves) > testCfg.MaxSlotsPerRound {
		t.Fatalf("round planned %d moves, want 1..%d", len(moves), testCfg.MaxSlotsPerRound)
	}
}

// TestRebalancePolicyConvergesOnFakeWorld closes the loop entirely in the fake
// harness: apply each round's moves to the table, re-sample the same
// per-slot heat, and require the imbalance to fall inside the calm
// band within a few rounds — then stay there with no further moves.
func TestRebalancePolicyConvergesOnFakeWorld(t *testing.T) {
	w := newFakeWorld(4)
	p := New(testCfg, w.clock)
	// A zipf-ish ladder of slot heats, all initially on group 0; no
	// single slot exceeds the calm level, so a balanced placement is
	// reachable.
	hots := []uint64{400, 300, 250, 200, 150, 150, 100, 80, 50, 100}
	for i, h := range hots {
		w.heat[4*i] = Heat{Reads: h} // slots ≡ 0 mod 4 → group 0
	}
	still, rounds := 0, 0
	for ; rounds < 20 && still < 3; rounds++ {
		if moves := w.plan(p, 4); moves == nil {
			still++
		} else {
			still = 0
			w.apply(moves)
		}
		w.now += 2 * testCfg.Cooldown
	}
	if imb := imbalance(w.heat, w.table, 4); imb >= testCfg.Threshold {
		t.Fatalf("never converged: imbalance %.2f after %d rounds", imb, rounds)
	}
	if p.SlotsMoved() == 0 {
		t.Fatal("converged without moving anything?")
	}
	// Steady state: no more moves.
	if moves := w.plan(p, 4); moves != nil {
		t.Fatalf("steady state still planned %v", moves)
	}
}

func nonzero(heat []Heat) []int {
	var out []int
	for s, h := range heat {
		if h.Total() > 0 {
			out = append(out, s)
		}
	}
	return out
}

func imbalance(heat []Heat, table []int, groups int) float64 {
	load := make([]float64, groups)
	total := 0.0
	for s, h := range heat {
		load[table[s]] += float64(h.Total())
		total += float64(h.Total())
	}
	mean := total / float64(groups)
	w := make([]float64, groups)
	for i := range w {
		w[i] = 1
	}
	return load[hottestNorm(load, w)] / mean
}

func TestRebalanceConfigDefaults(t *testing.T) {
	p := New(Config{}, func() time.Duration { return 0 })
	cfg := p.Config()
	if cfg.Threshold != 1.5 || cfg.Hysteresis != 0.25 || cfg.Interval != time.Millisecond ||
		cfg.Cooldown != 3*time.Millisecond || cfg.MaxSlotsPerRound != 8 ||
		cfg.MinOps != 128 || cfg.MoveCost != 48 || cfg.ObjectCost != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// TestHeteroPolicyWeightedImbalance: capacity weights make the trigger
// fire per capacity unit, not per group. A 3:1 rack whose raw load is
// split 3:1 is perfectly balanced; an even raw split overloads the
// small group.
func TestHeteroPolicyWeightedImbalance(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	p.SetWeights([]float64{3, 1})

	// Raw load 750:250 — 1.5× the per-group mean on group 0, which the
	// unweighted policy would chase, but exactly the 3:1 capacity
	// split: hold still.
	w.heat[0] = Heat{Reads: 700} // slot 0 → group 0
	w.heat[2] = Heat{Reads: 50}  // slot 2 → group 0
	w.heat[1] = Heat{Reads: 250} // slot 1 → group 1
	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("capacity-proportional load planned %v", moves)
	}

	// Even raw split: group 1 (weight 1) now carries 500 against a
	// fair share of 250 per its capacity — 2× per unit — while group 0
	// sits at 500/3 per unit. The policy drains group 1 toward the BIG
	// group.
	w.heat[0] = Heat{Reads: 450}
	w.heat[2] = Heat{Reads: 50}
	w.heat[1] = Heat{Reads: 400}
	w.heat[3] = Heat{Reads: 100} // slot 3 → group 1
	moves := w.plan(p, 2)
	if len(moves) == 0 {
		t.Fatal("per-unit overload of the small group not detected")
	}
	for _, m := range moves {
		if m.From != 1 || m.To != 0 {
			t.Fatalf("move %+v does not drain the overloaded small group into the big one", m)
		}
	}
}

// TestHeteroPolicyUniformWeightsMatchLegacy: explicit uniform weights
// (any scale) plan exactly what the unweighted policy plans.
func TestHeteroPolicyUniformWeightsMatchLegacy(t *testing.T) {
	run := func(weights []float64) []Move {
		w := newFakeWorld(3)
		p := New(testCfg, w.clock)
		if weights != nil {
			p.SetWeights(weights)
		}
		w.heat[0] = Heat{Reads: 900}
		w.heat[3] = Heat{Reads: 600}
		w.heat[1] = Heat{Reads: 200}
		w.heat[2] = Heat{Reads: 100}
		return w.plan(p, 3)
	}
	want := run(nil)
	if len(want) == 0 {
		t.Fatal("baseline planned nothing")
	}
	for _, weights := range [][]float64{{1, 1, 1}, {7.5, 7.5, 7.5}} {
		got := run(weights)
		if len(got) != len(want) {
			t.Fatalf("uniform weights %v planned %v, legacy %v", weights, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("uniform weights %v planned %v, legacy %v", weights, got, want)
			}
		}
	}
}

// TestHeteroPolicyMismatchedWeightsFallBack: a weight vector that does
// not match the group count (or has non-positive entries) degrades to
// uniform instead of misattributing capacity.
func TestHeteroPolicyMismatchedWeightsFallBack(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	p.SetWeights([]float64{3, 1, 5}) // wrong length for a 2-group plan
	w.heat[0] = Heat{Reads: 800}     // slot 0 → group 0
	w.heat[2] = Heat{Reads: 200}     // slot 2 → group 0
	w.heat[1] = Heat{Reads: 200}     // slot 1 → group 1
	moves := w.plan(p, 2)
	if len(moves) == 0 || moves[0].From != 0 {
		t.Fatalf("mismatched weights did not fall back to uniform: %v", moves)
	}
	p2 := New(testCfg, w.clock)
	p2.SetWeights([]float64{0, -1})
	if got := p2.weightsFor(2); got[0] != 1 || got[1] != 1 {
		t.Fatalf("non-positive weights resolved to %v", got)
	}
}

// TestHeteroPolicySwapWhenOccupancyVetoed: when every drain candidate
// is blocked by the occupancy cost veto alone, PlanRound proposes a
// hot-for-cold slot exchange instead — heat moves, occupancy stays
// level — and the round fires (trigger disarmed, cooldown started).
func TestHeteroPolicySwapWhenOccupancyVetoed(t *testing.T) {
	w := newFakeWorld(2)
	w.objs = make([]int, wire.NumSlots)
	p := New(testCfg, w.clock)

	// Group 0: every warm slot is dense with objects, so a one-way
	// move is vetoed (ObjectCost 1 × 5000 ≫ gain). Group 1: a cooler,
	// equally dense slot — the swap's occupancy DIFFERENCE is 0, so
	// the exchange costs only 2×MoveCost and passes.
	w.heat[0] = Heat{Reads: 600} // slot 0 → group 0, hot
	w.heat[2] = Heat{Reads: 200} // slot 2 → group 0
	w.heat[1] = Heat{Reads: 100} // slot 1 → group 1, dense peer
	w.heat[3] = Heat{Reads: 100} // slot 3 → group 1
	w.objs[0], w.objs[2], w.objs[1] = 5000, 5000, 5000

	if moves := w.plan(p, 2); moves != nil {
		t.Fatalf("one-way drain should have been occupancy-vetoed, planned %v", moves)
	}
	round := p.PlanRound(w.heat, w.table, w.objs, 2, nil)
	if len(round.Moves) != 0 || len(round.Swaps) != 1 {
		t.Fatalf("round = %+v, want exactly one swap", round)
	}
	sw := round.Swaps[0]
	if sw.From != 0 || sw.To != 1 || sw.SlotA != 0 {
		t.Fatalf("swap %+v should trade group 0's hot slot 0 away", sw)
	}
	if sw.SlotB != 1 && sw.SlotB != 3 {
		t.Fatalf("swap %+v should pull back a cold group-1 slot", sw)
	}
	if p.Rounds() != 1 || p.SlotsMoved() != 2 {
		t.Fatalf("swap round accounting: rounds=%d slotsMoved=%d", p.Rounds(), p.SlotsMoved())
	}
	// The trigger is now disarmed: the same reading plans nothing.
	w.now += 2 * testCfg.Cooldown
	if round := p.PlanRound(w.heat, w.table, w.objs, 2, nil); !round.Empty() {
		t.Fatalf("disarmed trigger still planned %+v", round)
	}
}

// TestHeteroPolicySwapRefusesRelocation: a swap that would merely turn
// the destination into the new hot group is not an improvement and
// must not fire — the indivisible-hot-slot rule applies to exchanges
// too.
func TestHeteroPolicySwapRefusesRelocation(t *testing.T) {
	w := newFakeWorld(2)
	w.objs = make([]int, wire.NumSlots)
	p := New(testCfg, w.clock)
	// All load in one dense slot: swapping it into group 1 would just
	// relocate the hot spot.
	w.heat[0] = Heat{Reads: 2000}
	w.objs[0] = 5000
	for i := 0; i < 4; i++ {
		if round := p.PlanRound(w.heat, w.table, w.objs, 2, nil); !round.Empty() {
			t.Fatalf("tick %d relocated the hot spot: %+v", i, round)
		}
		w.now += 2 * testCfg.Cooldown
	}
	if p.Rounds() != 0 {
		t.Fatal("refused swaps still counted as rounds")
	}
}

// TestHeteroPolicySwapRespectsBusySlots: a slot mid-handoff cannot be
// traded — the swap falls through to the hottest MOVABLE slot — and a
// tick whose every candidate is busy keeps the trigger armed.
func TestHeteroPolicySwapRespectsBusySlots(t *testing.T) {
	w := newFakeWorld(2)
	w.objs = make([]int, wire.NumSlots)
	p := New(testCfg, w.clock)
	w.heat[0] = Heat{Reads: 600}
	w.heat[2] = Heat{Reads: 200}
	w.heat[1] = Heat{Reads: 100}
	w.heat[3] = Heat{Reads: 100}
	// Every hot slot is dense, so no one-way drain survives the veto;
	// group 1's equally dense slot 1 is the viable swap peer.
	w.objs[0], w.objs[2], w.objs[1] = 5000, 5000, 5000

	// With every group-0 slot mid-handoff the tick must plan nothing
	// and burn nothing.
	busyGroup0 := func(s int) bool { return w.table[s] == 0 }
	if round := p.PlanRound(w.heat, w.table, w.objs, 2, busyGroup0); !round.Empty() {
		t.Fatalf("all-busy tick still planned %+v", round)
	}
	if p.Rounds() != 0 {
		t.Fatal("all-busy tick counted as fired")
	}

	// With only the hottest slot busy, the swap trades the
	// next-hottest movable slot instead of touching the busy one.
	busyHot := func(s int) bool { return s == 0 }
	round := p.PlanRound(w.heat, w.table, w.objs, 2, busyHot)
	if len(round.Swaps) != 1 || round.Swaps[0].SlotA != 2 {
		t.Fatalf("round %+v, want a swap of the movable slot 2", round)
	}
}
