package rebalance

import (
	"testing"

	"harmonia/internal/core"
	"harmonia/internal/wire"
)

// TestPolicyLastStuckRecordsIndivisibleSlot: a tick whose trigger
// fires but whose round is empty because the heat is concentrated in
// one slot (moving it would only relocate the hot spot) must record
// that slot for the hot-key promotion policy — and a later tick that
// plans (or calms) must clear the record.
func TestPolicyLastStuckRecordsIndivisibleSlot(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	if _, stuck := p.LastStuck(); stuck {
		t.Fatal("fresh policy already stuck")
	}

	// All of group 0's heat in slot 0: the relocation guard refuses
	// the move (group 1 would end hotter than group 0 was), no other
	// candidate exists, and the occupancy veto never fired — so no
	// swap either. Trigger fires, round is empty, slot 0 is stuck.
	w.heat[0] = Heat{Reads: 5000}
	w.heat[1] = Heat{Reads: 100}
	if round := p.PlanRound(w.heat, w.table, w.objs, 2, nil); !round.Empty() {
		t.Fatalf("indivisible hot slot planned %+v", round)
	}
	slot, stuck := p.LastStuck()
	if !stuck || slot != 0 {
		t.Fatalf("LastStuck = (%d, %v), want (0, true)", slot, stuck)
	}
	if p.Rounds() != 0 {
		t.Fatal("a stuck tick must not count as a fired round")
	}

	// A balanced reading on the next tick clears the record.
	w.heat[0] = Heat{Reads: 100}
	if round := p.PlanRound(w.heat, w.table, w.objs, 2, nil); !round.Empty() {
		t.Fatalf("balanced reading planned %+v", round)
	}
	if _, stuck := p.LastStuck(); stuck {
		t.Fatal("stuck record survived a calm tick")
	}
}

// TestPolicySwapShortObjectSlice (regression): the swap fallback's
// occupancy veto used to skip the whole cost term whenever EITHER
// slot index fell beyond the sampled objects slice, so trading a
// 5000-object hot slot for an unsampled peer was priced at bare
// 2×MoveCost — the exact copy bill the veto exists to charge. Each arm
// now clamps independently: the unsampled peer is free, the dense hot
// slot still pays.
func TestPolicySwapShortObjectSlice(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	w.heat[0] = Heat{Reads: 600}  // group 0, dense and hot
	w.heat[2] = Heat{Reads: 200}  // group 0, dense
	w.heat[1] = Heat{Reads: 100}  // group 1, in-range peer, 0 objects
	w.heat[3] = Heat{Reads: 100}  // group 1, peer BEYOND the sample
	w.objs = []int{5000, 0, 5000} // slot 3 unsampled

	round := p.PlanRound(w.heat, w.table, w.objs, 2, nil)
	if !round.Empty() {
		t.Fatalf("dense-for-unsampled exchange dodged the copy bill: %+v", round)
	}

	// Control: once the sample shows slot 3 equally dense, the
	// occupancy DIFFERENCE is zero and the same exchange passes —
	// proving the veto above charged the clamped arm, nothing else.
	w.objs = []int{5000, 0, 5000, 5000}
	round = p.PlanRound(w.heat, w.table, w.objs, 2, nil)
	if len(round.Swaps) != 1 || round.Swaps[0].SlotA != 0 || round.Swaps[0].SlotB != 3 {
		t.Fatalf("round = %+v, want the 0↔3 exchange", round)
	}
}

// TestPolicyDecayStickyFloorNoFlap (regression, fake clock): the heat
// registers used to halve with a plain shift, so a slot receiving one
// op every other interval sampled 1, 0, 1, 0, … — and every policy
// input derived from it (MinOps gating, the hysteresis band, the
// hottest-group ranking) flapped with it. Ceil-halving decay keeps a
// live slot's floor sticky at 1 until it is explicitly cleared.
func TestPolicyDecayStickyFloorNoFlap(t *testing.T) {
	w := newFakeWorld(2)
	p := New(testCfg, w.clock)
	f := core.NewFrontend(2)
	objIn := func(slot int) wire.ObjectID {
		for id := uint32(1); ; id++ {
			if wire.SlotOf(wire.ObjectID(id)) == slot {
				return wire.ObjectID(id)
			}
		}
	}
	hotID, lowID := objIn(0), objIn(1) // groups 0 and 1 under s%2 striping
	heat := make([]Heat, wire.NumSlots)
	var sample [wire.NumSlots]core.SlotHeat
	req := uint64(1)
	for round := 0; round < 20; round++ {
		for i := 0; i < 400; i++ {
			f.Recv(1, &wire.Packet{Op: wire.OpRead, ObjID: hotID, ClientID: 1, ReqID: req})
			req++
		}
		if round%2 == 0 { // the low-rate slot: one op every OTHER interval
			f.Recv(1, &wire.Packet{Op: wire.OpRead, ObjID: lowID, ClientID: 1, ReqID: req})
			req++
		}
		f.SlotHeatInto(sample[:])
		for s, h := range sample[:] {
			heat[s] = Heat{Reads: h.Reads, Writes: h.Writes}
		}
		if round > 0 && heat[1].Total() == 0 {
			t.Fatalf("round %d: low-rate slot flapped to zero between ops", round)
		}
		if heat[0].Total() <= heat[1].Total() {
			t.Fatalf("round %d: decay inverted the slot ranking (%d vs %d)",
				round, heat[0].Total(), heat[1].Total())
		}
		p.Plan(heat, w.table, nil, 2, nil) // the loop consumes the same samples
		w.now += testCfg.Interval
		f.DecayHeat()
	}
}

func TestHotKeyShouldPromoteThresholds(t *testing.T) {
	cfg := HotKeyConfig{}.Filled()
	cases := []struct {
		votes, total uint64
		want         bool
	}{
		{0, 0, false},
		{63, 80, false},      // under the absolute floor
		{64, 200, false},     // floor met, share 0.32 < 0.6
		{120, 200, true},     // share exactly 0.6
		{200, 200, true},     // sole key in the slot
		{1000, 10000, false}, // big but diluted
	}
	for _, tc := range cases {
		if got := cfg.ShouldPromote(tc.votes, tc.total); got != tc.want {
			t.Fatalf("ShouldPromote(%d, %d) = %v, want %v", tc.votes, tc.total, got, tc.want)
		}
	}
}

func TestHotKeyPickHoldersByCapacity(t *testing.T) {
	cfg := HotKeyConfig{MaxHolders: 2}.Filled()
	weights := []float64{1, 4, 2, 3, 1}
	got := cfg.PickHolders(3, 5, weights, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("holders = %v, want [1 2] (heaviest live groups, home 3 excluded)", got)
	}
	// Dead groups are skipped; ties break toward the lowest index.
	live := func(g int) bool { return g != 1 }
	got = cfg.PickHolders(3, 5, weights, live)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("holders = %v, want [2 0] with group 1 dead", got)
	}
	// A two-group rack: exactly one holder exists; a one-group rack: none.
	if got := cfg.PickHolders(0, 2, nil, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("holders = %v in a 2-group rack", got)
	}
	if got := cfg.PickHolders(0, 1, nil, nil); got != nil {
		t.Fatalf("holders = %v in a 1-group rack, want none", got)
	}
	// MaxHolders clamps to 3: the replicated set spans at most 4 groups.
	wide := HotKeyConfig{MaxHolders: 9}.Filled()
	if got := wide.PickHolders(0, 8, nil, nil); len(got) != 3 {
		t.Fatalf("%d holders with MaxHolders=9, want clamp to 3", len(got))
	}
}
