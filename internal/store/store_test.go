package store

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"harmonia/internal/wire"
)

func seq(n uint64) wire.Seq { return wire.Seq{Epoch: 1, N: n} }

func TestApplyGet(t *testing.T) {
	s := New(8)
	if err := s.Apply(1, []byte("v1"), seq(1), false); err != nil {
		t.Fatal(err)
	}
	o, ok := s.Get(1)
	if !ok || !bytes.Equal(o.Value, []byte("v1")) || o.Seq != seq(1) {
		t.Fatalf("Get = %+v, %v", o, ok)
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("phantom object")
	}
}

func TestApplyOutOfOrderRejected(t *testing.T) {
	s := New(4)
	if err := s.Apply(1, []byte("a"), seq(5), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(2, []byte("b"), seq(5), false); err != ErrOutOfOrder {
		t.Fatalf("equal seq accepted: %v", err)
	}
	if err := s.Apply(2, []byte("b"), seq(3), false); err != ErrOutOfOrder {
		t.Fatalf("lower seq accepted: %v", err)
	}
	// State must be unchanged by rejected writes.
	if _, ok := s.Get(2); ok {
		t.Fatal("rejected write mutated state")
	}
	if s.LastApplied() != seq(5) {
		t.Fatal("rejected write advanced lastApplied")
	}
}

func TestApplyEpochOrdering(t *testing.T) {
	s := New(4)
	_ = s.Apply(1, []byte("old"), wire.Seq{Epoch: 1, N: 100}, false)
	// A new-epoch write with a smaller counter is still "later".
	if err := s.Apply(1, []byte("new"), wire.Seq{Epoch: 2, N: 1}, false); err != nil {
		t.Fatalf("new-epoch write rejected: %v", err)
	}
	// An old-epoch straggler must be rejected.
	if err := s.Apply(1, []byte("stale"), wire.Seq{Epoch: 1, N: 101}, false); err != ErrOutOfOrder {
		t.Fatalf("old-epoch write accepted: %v", err)
	}
	o, _ := s.Get(1)
	if string(o.Value) != "new" {
		t.Fatalf("value = %q", o.Value)
	}
}

func TestDelete(t *testing.T) {
	s := New(4)
	_ = s.Apply(1, []byte("x"), seq(1), false)
	if err := s.Apply(1, nil, seq(2), true); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("object survived delete")
	}
	if s.LastApplied() != seq(2) {
		t.Fatal("delete did not advance lastApplied")
	}
	if s.ObjectSeq(1) != wire.ZeroSeq {
		t.Fatal("deleted object has nonzero seq")
	}
}

func TestObjectSeqAndLastApplied(t *testing.T) {
	s := New(4)
	_ = s.Apply(10, []byte("a"), seq(1), false)
	_ = s.Apply(20, []byte("b"), seq(2), false)
	if s.ObjectSeq(10) != seq(1) || s.ObjectSeq(20) != seq(2) {
		t.Fatal("per-object seq wrong")
	}
	if s.LastApplied() != seq(2) {
		t.Fatal("lastApplied wrong")
	}
}

func TestLenAndAppliedCount(t *testing.T) {
	s := New(4)
	for i := uint64(1); i <= 10; i++ {
		_ = s.Apply(wire.ObjectID(i%3), []byte("v"), seq(i), false)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.AppliedCount() != 10 {
		t.Fatalf("AppliedCount = %d", s.AppliedCount())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(8)
	for i := uint64(1); i <= 50; i++ {
		_ = s.Apply(wire.ObjectID(i), []byte{byte(i)}, seq(i), false)
	}
	snap := s.Snapshot()

	fresh := New(2) // different shard count must not matter
	fresh.Restore(snap)
	if fresh.Len() != 50 || fresh.LastApplied() != seq(50) {
		t.Fatalf("restore: len=%d last=%v", fresh.Len(), fresh.LastApplied())
	}
	for i := uint64(1); i <= 50; i++ {
		o, ok := fresh.Get(wire.ObjectID(i))
		if !ok || o.Value[0] != byte(i) || o.Seq != seq(i) {
			t.Fatalf("object %d wrong after restore: %+v %v", i, o, ok)
		}
	}
	// Snapshot must be a copy: mutating the restored store must not
	// affect the source.
	_ = fresh.Apply(1, []byte("zz"), seq(99), false)
	if o, _ := s.Get(1); o.Value[0] != 1 {
		t.Fatal("snapshot aliases source store")
	}
}

func TestMinShardCount(t *testing.T) {
	s := New(0)
	if err := s.Apply(1, []byte("x"), seq(1), false); err != nil {
		t.Fatal(err)
	}
}

// Property: the store agrees with a model map for any in-order write
// sequence with random keys/deletes.
func TestStoreMatchesModel(t *testing.T) {
	f := func(sd int64) bool {
		rng := rand.New(rand.NewSource(sd))
		s := New(8)
		model := map[wire.ObjectID][]byte{}
		for i := uint64(1); i <= 500; i++ {
			id := wire.ObjectID(rng.Intn(40))
			if rng.Intn(5) == 0 {
				if s.Apply(id, nil, seq(i), true) != nil {
					return false
				}
				delete(model, id)
			} else {
				v := []byte{byte(rng.Intn(256))}
				if s.Apply(id, v, seq(i), false) != nil {
					return false
				}
				model[id] = v
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			o, ok := s.Get(k)
			if !ok || !bytes.Equal(o.Value, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: lastApplied is always the max applied seq, and per-object
// seqs never exceed it.
func TestSeqInvariants(t *testing.T) {
	f := func(sd int64) bool {
		rng := rand.New(rand.NewSource(sd))
		s := New(4)
		var max wire.Seq
		for i := 0; i < 300; i++ {
			sq := wire.Seq{Epoch: uint32(rng.Intn(3)), N: uint64(rng.Intn(1000))}
			id := wire.ObjectID(rng.Intn(20))
			err := s.Apply(id, []byte("v"), sq, false)
			if max.Less(sq) {
				if err != nil {
					return false
				}
				max = sq
			} else if err != ErrOutOfOrder {
				return false
			}
			if s.LastApplied() != max {
				return false
			}
			if s.LastApplied().Less(s.ObjectSeq(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractInstallDropSlot(t *testing.T) {
	src := New(4)
	var inSlot, elsewhere []wire.ObjectID
	for id := wire.ObjectID(1); len(inSlot) < 3 || len(elsewhere) < 2; id++ {
		if wire.SlotOf(id) == 5 {
			inSlot = append(inSlot, id)
		} else {
			elsewhere = append(elsewhere, id)
		}
	}
	seq := uint64(0)
	for _, id := range append(append([]wire.ObjectID{}, inSlot...), elsewhere...) {
		seq++
		if err := src.Apply(id, []byte{byte(seq)}, wire.Seq{Epoch: 1, N: seq}, false); err != nil {
			t.Fatal(err)
		}
	}

	got := src.ExtractSlot(5)
	if len(got) != len(inSlot) {
		t.Fatalf("ExtractSlot(5) returned %d objects, want %d", len(got), len(inSlot))
	}
	for _, id := range inSlot {
		if _, ok := got[id]; !ok {
			t.Fatalf("object %d missing from extract", id)
		}
	}

	// Install into a destination already ahead in its own sequence
	// space, with neutered (epoch-0) seqs: the destination must keep
	// accepting its own writes afterwards.
	dst := New(4)
	if err := dst.Apply(elsewhere[0], []byte("d"), wire.Seq{Epoch: 1, N: 100}, false); err != nil {
		t.Fatal(err)
	}
	install := make(map[wire.ObjectID]Object, len(got))
	for id, o := range got {
		install[id] = Object{Value: o.Value, Seq: wire.Seq{Epoch: 0, N: o.Seq.N}}
	}
	dst.InstallSlot(install)
	for _, id := range inSlot {
		if o, ok := dst.Get(id); !ok || o.Seq.Epoch != 0 {
			t.Fatalf("installed object %d = %+v, %v", id, o, ok)
		}
	}
	if got := dst.LastApplied(); got != (wire.Seq{Epoch: 1, N: 100}) {
		t.Fatalf("install moved lastApplied to %v", got)
	}
	if err := dst.Apply(elsewhere[1], []byte("e"), wire.Seq{Epoch: 1, N: 101}, false); err != nil {
		t.Fatalf("destination rejects its own writes after install: %v", err)
	}

	// Drop removes exactly the slot's objects from the source.
	if n := src.DropSlot(5); n != len(inSlot) {
		t.Fatalf("DropSlot removed %d, want %d", n, len(inSlot))
	}
	for _, id := range inSlot {
		if _, ok := src.Get(id); ok {
			t.Fatalf("object %d survived DropSlot", id)
		}
	}
	for _, id := range elsewhere {
		if _, ok := src.Get(id); !ok {
			t.Fatalf("DropSlot removed out-of-slot object %d", id)
		}
	}
}

// TestSlotCountsTrackOnline verifies the per-slot object counters stay
// exact through every mutation path — write, overwrite, delete, seed,
// install, drop, restore — so the rebalancer's ObjectCost veto can
// sample occupancy without a scan.
func TestSlotCountsTrackOnline(t *testing.T) {
	s := New(4)
	var knuth uint32 = 2654435761
	verify := func(when string) {
		t.Helper()
		want := make(map[int]int)
		for _, sh := range s.shards {
			for id := range sh {
				want[wire.SlotOf(id)]++
			}
		}
		got := s.SlotCounts()
		for slot := 0; slot < wire.NumSlots; slot++ {
			if got[slot] != want[slot] {
				t.Fatalf("%s: slot %d count %d, scan says %d", when, slot, got[slot], want[slot])
			}
		}
	}

	n := uint64(0)
	apply := func(id wire.ObjectID, del bool) {
		n++
		if err := s.Apply(id, []byte("v"), wire.Seq{Epoch: 1, N: n}, del); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		apply(wire.ObjectID(uint32(i)*2654435761), false)
	}
	verify("after writes")
	for i := 0; i < 16; i++ {
		apply(wire.ObjectID(uint32(i)*2654435761), false) // overwrite: no count change
	}
	verify("after overwrites")
	for i := 0; i < 8; i++ {
		apply(wire.ObjectID(uint32(i)*2654435761), true) // delete
	}
	apply(wire.ObjectID(999999999), true) // delete of absent key: no-op
	verify("after deletes")

	s.Seed(wire.ObjectID(42), []byte("s"), wire.Seq{})
	s.Seed(wire.ObjectID(42), []byte("s2"), wire.Seq{}) // reseed: no change
	verify("after seeds")

	slot := wire.SlotOf(wire.ObjectID(8 * knuth))
	if got := s.SlotLen(slot); got != len(s.ExtractSlot(slot)) {
		t.Fatalf("SlotLen(%d) = %d, extract says %d", slot, got, len(s.ExtractSlot(slot)))
	}
	s.DropSlot(slot)
	verify("after drop")

	snap := s.Snapshot()
	s2 := New(2)
	s2.Seed(wire.ObjectID(7), []byte("x"), wire.Seq{})
	s2.Restore(snap)
	got := s2.SlotCounts()
	want := s.SlotCounts()
	for slot := range got {
		if got[slot] != want[slot] {
			t.Fatalf("restore: slot %d count %d, want %d", slot, got[slot], want[slot])
		}
	}
}
