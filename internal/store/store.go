// Package store provides the in-memory storage backend the replicas
// run — the stand-in for Redis in the paper's prototype.
//
// Beyond a plain map, the store keeps the switch-assigned sequence
// number of the last write applied to each object, which is exactly the
// state the Harmonia shim layer needs for the §7 fast-path read checks
// (R.obj.seq in the paper's proof notation), and it enforces the §5.2
// write-order requirement: writes must be applied in strictly
// increasing sequence-number order.
package store

import (
	"errors"
	"fmt"

	"harmonia/internal/wire"
)

// Object is a stored value plus the sequence number of the write that
// produced it.
type Object struct {
	Value []byte
	Seq   wire.Seq
}

// ErrOutOfOrder reports an attempt to apply a write whose sequence
// number does not exceed the last applied one.
var ErrOutOfOrder = errors.New("store: write out of sequence order")

// Store is a sharded key-value store. Shards model the paper's eight
// Redis processes per server; the simulation charges service time at
// the node level, so shards here are only about bookkeeping fidelity,
// not Go-level parallelism (the simulator is single-threaded).
type Store struct {
	shards []map[wire.ObjectID]Object
	nshard uint32

	// lastApplied is the sequence number of the most recent write
	// applied to any object (R.seq in the paper's proof), used by
	// read-behind protocols' visibility check.
	lastApplied wire.Seq

	applied uint64 // total applied writes

	// slotCount tracks live objects per routing slot, maintained
	// incrementally on every insert/delete so the rebalancer's
	// move-cost model can consult real occupancy without scanning the
	// store (a per-tick scan is exactly the heavy probe the switch-side
	// counters exist to avoid).
	slotCount [wire.NumSlots]int32
}

// New creates a store with the given shard count (minimum 1).
func New(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	s := &Store{shards: make([]map[wire.ObjectID]Object, shards), nshard: uint32(shards)}
	for i := range s.shards {
		s.shards[i] = make(map[wire.ObjectID]Object)
	}
	return s
}

func (s *Store) shard(id wire.ObjectID) map[wire.ObjectID]Object {
	return s.shards[uint32(id)%s.nshard]
}

// Apply installs a write. It returns ErrOutOfOrder if seq does not
// strictly exceed the last applied sequence number — the §5.2
// requirement that lets the switch keep only one entry per contended
// object. delete removes the object instead of updating it.
func (s *Store) Apply(id wire.ObjectID, value []byte, seq wire.Seq, del bool) error {
	if !s.lastApplied.Less(seq) {
		return ErrOutOfOrder
	}
	s.lastApplied = seq
	s.applied++
	sh := s.shard(id)
	_, existed := sh[id]
	if del {
		if existed {
			delete(sh, id)
			s.slotCount[wire.SlotOf(id)]--
		}
		return nil
	}
	if !existed {
		s.slotCount[wire.SlotOf(id)]++
	}
	sh[id] = Object{Value: value, Seq: seq}
	return nil
}

// Seed installs an object without the order check, for warming a
// replica before it serves traffic (e.g. preloading a key space).
// lastApplied only ever moves forward.
func (s *Store) Seed(id wire.ObjectID, value []byte, seq wire.Seq) {
	sh := s.shard(id)
	if _, existed := sh[id]; !existed {
		s.slotCount[wire.SlotOf(id)]++
	}
	sh[id] = Object{Value: value, Seq: seq}
	if s.lastApplied.Less(seq) {
		s.lastApplied = seq
	}
}

// Get returns the object and whether it exists.
func (s *Store) Get(id wire.ObjectID) (Object, bool) {
	o, ok := s.shard(id)[id]
	return o, ok
}

// ObjectSeq returns the sequence number of the last write applied to
// id (zero if the object has never been written or was deleted — a
// deleted object's tombstone semantics are captured by lastApplied
// ordering, since deletes also advance it).
func (s *Store) ObjectSeq(id wire.ObjectID) wire.Seq {
	if o, ok := s.Get(id); ok {
		return o.Seq
	}
	return wire.ZeroSeq
}

// LastApplied returns the sequence number of the most recent applied
// write (R.seq).
func (s *Store) LastApplied() wire.Seq { return s.lastApplied }

// AppliedCount returns the number of writes applied over the store's
// lifetime.
func (s *Store) AppliedCount() uint64 { return s.applied }

// Len returns the number of live objects.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh)
	}
	return n
}

// Snapshot copies the full state, used for state transfer when a
// replica falls behind or a new replica joins.
type Snapshot struct {
	Objects     map[wire.ObjectID]Object
	LastApplied wire.Seq
}

// Snapshot captures the current state.
func (s *Store) Snapshot() Snapshot {
	snap := Snapshot{Objects: make(map[wire.ObjectID]Object, s.Len()), LastApplied: s.lastApplied}
	for _, sh := range s.shards {
		for k, v := range sh {
			snap.Objects[k] = v
		}
	}
	return snap
}

// Restore replaces the store contents with snap.
func (s *Store) Restore(snap Snapshot) {
	for i := range s.shards {
		s.shards[i] = make(map[wire.ObjectID]Object)
	}
	s.slotCount = [wire.NumSlots]int32{}
	for k, v := range snap.Objects {
		s.shard(k)[k] = v
		s.slotCount[wire.SlotOf(k)]++
	}
	s.lastApplied = snap.LastApplied
}

// ExtractSlot copies every live object whose ID hashes to the given
// routing slot — the unit of state a group handoff transfers.
func (s *Store) ExtractSlot(slot int) map[wire.ObjectID]Object {
	out := make(map[wire.ObjectID]Object)
	for _, sh := range s.shards {
		for id, o := range sh {
			if wire.SlotOf(id) == slot {
				out[id] = o
			}
		}
	}
	return out
}

// InstallSlot installs migrated objects with Seed semantics: no
// write-order check, and lastApplied only ever moves forward. Callers
// migrating between groups must neuter the incoming sequence numbers
// (epoch 0) first — each group's scheduler counts in its own sequence
// space, and importing a foreign high-water mark into lastApplied
// would make this store reject its own group's subsequent writes as
// out of order.
func (s *Store) InstallSlot(objs map[wire.ObjectID]Object) {
	for id, o := range objs {
		s.Seed(id, o.Value, o.Seq)
	}
}

// DropSlot removes every object in the routing slot, returning the
// count. The handoff source calls it after the route flipped: the
// slot's reads can no longer reach this group, and keeping the copies
// would only shadow the now-authoritative destination.
func (s *Store) DropSlot(slot int) int {
	n := 0
	for _, sh := range s.shards {
		for id := range sh {
			if wire.SlotOf(id) == slot {
				delete(sh, id)
				n++
			}
		}
	}
	s.slotCount[slot] -= int32(n)
	return n
}

// SlotLen returns the number of live objects in one routing slot, read
// from the incrementally maintained counter (O(1), no scan).
func (s *Store) SlotLen(slot int) int { return int(s.slotCount[slot]) }

// SlotCounts returns a copy of the per-slot object counters — the
// occupancy input to the rebalancer's ObjectCost veto.
func (s *Store) SlotCounts() []int {
	out := make([]int, wire.NumSlots)
	for slot, n := range s.slotCount {
		out[slot] = int(n)
	}
	return out
}

// String summarizes the store for diagnostics.
func (s *Store) String() string {
	return fmt.Sprintf("store{objects=%d lastApplied=%s}", s.Len(), s.lastApplied)
}
