package cluster

import (
	"errors"
	"time"

	"harmonia/internal/metrics"
	"harmonia/internal/wire"
)

// SyncClient issues one operation at a time and advances the
// simulation until the reply arrives — the convenient interface for
// examples and interactive use, as opposed to the load generators.
type SyncClient struct {
	c *Cluster
	v *vclient

	done  bool
	reply *wire.Packet
}

// ErrTimeout reports an operation that received no reply within the
// synchronous wait budget.
var ErrTimeout = errors.New("cluster: operation timed out")

// NewSyncClient registers a synchronous client.
func (c *Cluster) NewSyncClient() *SyncClient {
	meas := &measurement{
		c:    c,
		lat:  metrics.NewHistogram(),
		rlat: metrics.NewHistogram(),
		wlat: metrics.NewHistogram(),
	}
	s := &SyncClient{c: c}
	s.v = c.newVClient(meas, &opGen{c: c}, false)
	s.v.onReply = func(pkt *wire.Packet) {
		s.done = true
		s.reply = pkt
	}
	return s
}

// do issues the op and drives the simulation to completion, retrying
// on the client's timeout like any other client.
func (s *SyncClient) do(key string, write, del bool, value []byte) (*wire.Packet, error) {
	s.done = false
	// The onReply observer handed us the previous reply's reference; it
	// stays live for LastGroup/LastSwitch until the next operation.
	if s.reply != nil {
		s.reply.Release()
	}
	s.reply = nil
	s.v.nextReq++
	req := s.v.nextReq
	st := &opState{firstInvoke: s.c.eng.Now(), histIdx: -1}
	st.pkt = wire.Packet{
		ObjID:    wire.HashKey(key),
		Key:      key,
		ClientID: s.v.id,
		ReqID:    req,
	}
	pkt := &st.pkt
	pkt.Group = uint16(s.c.routeObj(pkt.ObjID))
	if write {
		pkt.Op = wire.OpWrite
		if del {
			pkt.Flags |= wire.FlagDelete
		}
		s.c.valueCtr++
		st.valueID = s.c.valueCtr
		if del {
			st.valueID = -st.valueID
		}
		if value != nil {
			pkt.Value = append([]byte(nil), value...)
		} else {
			pkt.Value = s.c.varena.encode(st.valueID)
		}
	} else {
		pkt.Op = wire.OpRead
	}
	if s.c.cfg.RecordHistory {
		st.histIdx = s.c.hist.invoke(uint64(pkt.ObjID), write, st.valueID, int64(st.firstInvoke))
		// For reads the recorder captures the observed value id; raw
		// user values (Set with explicit bytes) are not id-coded, so
		// recording histories and custom values do not mix — the
		// public API documents this.
	}
	s.v.pending.put(req, st)

	// Issue with retries for up to one simulated second.
	deadline := s.c.eng.Now() + 1_000_000_000
	s.c.net.Send(s.v.addr, s.c.switchAddrForObj(pkt.ObjID), pkt.FlightClone())
	retry := s.c.eng.After(s.c.cfg.RetryTimeout, func() { s.syncRetry(st) })
	st.timer = retry
	for !s.done && s.c.eng.Now() < deadline {
		if !s.c.eng.Step() {
			break
		}
	}
	st.timer.Stop()
	if !s.done {
		s.v.pending.del(req)
		return nil, ErrTimeout
	}
	return s.reply, nil
}

func (s *SyncClient) syncRetry(st *opState) {
	if _, still := s.v.pending.get(st.pkt.ReqID); !still {
		return
	}
	s.c.net.Send(s.v.addr, s.c.switchAddrForObj(st.pkt.ObjID), st.pkt.FlightClone())
	st.timer = s.c.eng.After(s.c.cfg.RetryTimeout, func() { s.syncRetry(st) })
}

// Get reads a key. found reports whether the key exists.
func (s *SyncClient) Get(key string) (value []byte, found bool, err error) {
	rep, err := s.do(key, false, false, nil)
	if err != nil {
		return nil, false, err
	}
	if rep.Flags&wire.FlagNotFound != 0 {
		return nil, false, nil
	}
	// Reply values may alias replica store memory (the zero-copy read
	// path); hand the caller an owned copy so user code is free to
	// mutate it.
	return append([]byte(nil), rep.Value...), true, nil
}

// Set writes a key.
func (s *SyncClient) Set(key string, value []byte) error {
	_, err := s.do(key, true, false, value)
	return err
}

// Delete removes a key.
func (s *SyncClient) Delete(key string) error {
	_, err := s.do(key, true, true, nil)
	return err
}

// Latency returns the round-trip simulated duration of the last
// completed operation's issue-to-reply interval... simplest proxy: the
// current simulated clock, exposed for examples that report timings.
func (s *SyncClient) Now() time.Duration { return time.Duration(s.c.eng.Now()) }

// Drops reports how many of this client's writes the switch rejected
// with a FlagDropped reply (dirty set full) over the client's
// lifetime. Each rejection was retried automatically; a persistently
// full dirty set eventually surfaces as ErrTimeout.
func (s *SyncClient) Drops() uint64 { return s.v.drops }

// LastGroup returns the replica group that served the last completed
// operation, as stamped into the reply by the switch — the observable
// counterpart of the front-end's slot table (rebalancing tests check
// the two agree).
func (s *SyncClient) LastGroup() int {
	if s.reply == nil {
		return -1
	}
	return int(s.reply.Group)
}

// LastSwitch returns the switch front-end that served the last
// completed operation, as stamped into the reply — the observable
// counterpart of the rack's slot → switch map.
func (s *SyncClient) LastSwitch() int {
	if s.reply == nil {
		return -1
	}
	return int(s.reply.Switch)
}
