package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/wire"
)

// TestHeteroClusterServesMixedGroups: one cluster, three groups with
// two protocols and two replica counts — every group serves reads and
// writes through its own protocol instance, routed by the weighted
// slot table.
func TestHeteroClusterServesMixedGroups(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 7},
			{Protocol: NOPaxos, Replicas: 3},
			{Protocol: CRAQ, Replicas: 3},
		},
		Seed: 91, RecordHistory: true,
	})
	if c.Groups() != 3 {
		t.Fatalf("Groups() = %d", c.Groups())
	}
	for g, want := range []int{7, 3, 3} {
		if got := c.SpecOf(g).Replicas; got != want {
			t.Fatalf("group %d sized %d, want %d", g, got, want)
		}
		if got := len(c.groups[g].replicas); got != want {
			t.Fatalf("group %d built %d replicas, want %d", g, got, want)
		}
	}
	// The CRAQ group never takes switch assistance, even in a
	// UseHarmonia cluster.
	if c.SpecOf(0).Harmonia != true || c.SpecOf(2).Harmonia != false {
		t.Fatalf("harmonia resolution: %+v", c.cfg.GroupSpecs)
	}
	// Derived capacity weights follow replica counts: the 7-replica
	// fast-read group outweighs both 3-replica groups.
	w := c.GroupWeights()
	if !(w[0] > w[1]) || !(w[0] > w[2]) {
		t.Fatalf("weights %v do not favor the 7-replica group", w)
	}
	// The weighted boot layout grants it more routing slots.
	counts := make([]int, 3)
	for _, g := range c.SlotTable() {
		counts[g]++
	}
	if !(counts[0] > counts[1]) || !(counts[0] > counts[2]) {
		t.Fatalf("slot shares %v do not favor the 7-replica group", counts)
	}

	// End-to-end traffic lands on every group and stays linearizable.
	cl := c.NewSyncClient()
	hit := make([]bool, 3)
	for i := 0; i < 64; i++ {
		key := keyName(i)
		if err := cl.Set(key, []byte{byte(i)}); err != nil {
			t.Fatalf("Set(%s): %v", key, err)
		}
		if v, ok, err := cl.Get(key); err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("Get(%s) = %v %v %v", key, v, ok, err)
		}
		hit[c.GroupOf(key)] = true
	}
	for g, ok := range hit {
		if !ok {
			t.Fatalf("no key routed to group %d", g)
		}
	}
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			t.Fatalf("group %d: %+v", g, res)
		}
	}
	// Per-group scheduler wiring: the Harmonia chain group serves fast
	// reads, the CRAQ baseline partition never does.
	if st := c.GroupScheduler(0).Stats; st.FastReads == 0 {
		t.Fatal("7-replica Harmonia group served no fast reads")
	}
	if st := c.GroupScheduler(2).Stats; st.FastReads != 0 {
		t.Fatalf("CRAQ baseline partition served %d fast reads", st.FastReads)
	}
}

// TestHeteroCrashReplicaPerGroupBounds: failure injection bounds and
// protocol checks are per GROUP, not cluster-wide.
func TestHeteroCrashReplicaPerGroupBounds(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 5},
			{Protocol: Chain, Replicas: 3},
			{Protocol: CRAQ, Replicas: 3},
		},
		Seed: 97,
	})
	// Index 4 exists in the 5-replica group but not in the 3-replica
	// one.
	if err := c.CrashReplicaIn(1, 4); err == nil {
		t.Fatal("replica 4 of the 3-replica group accepted")
	}
	if err := c.CrashReplicaIn(0, 4); err != nil {
		t.Fatalf("crash tail of the 5-replica group: %v", err)
	}
	// Per-group protocol capability: the CRAQ group cannot
	// reconfigure, its chain neighbors can.
	if err := c.CrashReplicaIn(2, 1); err == nil {
		t.Fatal("CRAQ reconfiguration accepted")
	}
	if err := c.CrashReplicaIn(1, 1); err != nil {
		t.Fatalf("crash middle of the 3-replica chain: %v", err)
	}
	// Both reconfigured groups keep serving.
	cl := c.NewSyncClient()
	for i := 0; i < 48; i++ {
		key := keyName(i)
		g := c.GroupOf(key)
		if g != 0 && g != 1 {
			continue
		}
		if err := cl.Set(key, []byte("x")); err != nil {
			t.Fatalf("Set(%s) on reconfigured group %d: %v", key, g, err)
		}
	}
}

// TestHeteroSwitchAgreementSizedPerGroup: the §5.3 replacement
// agreement bills one ack per LIVE REPLICA of each hosted group — with
// heterogeneous groups the cost follows the actual replica counts, not
// a uniform groups×replicas product.
func TestHeteroSwitchAgreementSizedPerGroup(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 5},
			{Protocol: Chain, Replicas: 3},
			{Protocol: Chain, Replicas: 3},
			{Protocol: Chain, Replicas: 3},
		},
		Switches: 2, Seed: 101,
	})
	// Contiguous blocks: groups {0,1} behind switch 0 (5+3 replicas),
	// {2,3} behind switch 1 (3+3).
	if c.SwitchOfGroup(1) != 0 || c.SwitchOfGroup(2) != 1 {
		t.Fatalf("unexpected group placement: %v %v", c.SwitchOfGroup(1), c.SwitchOfGroup(2))
	}
	if err := c.CrashSwitch(0); err != nil {
		t.Fatalf("CrashSwitch: %v", err)
	}
	c.RunFor(2 * time.Millisecond)
	if err := c.ReactivateSwitch(0); err != nil {
		t.Fatalf("ReactivateSwitch: %v", err)
	}
	c.RunFor(10 * time.Millisecond)
	st := c.Rack().Stats(0)
	if st.Replacements != 1 {
		t.Fatalf("replacements = %d", st.Replacements)
	}
	if want := uint64(5 + 3); st.AcksReceived != want {
		t.Fatalf("agreement acks = %d, want %d (the hosted groups' replicas)", st.AcksReceived, want)
	}
	if st1 := c.Rack().Stats(1); st1.AcksReceived != 0 {
		t.Fatalf("untouched switch billed %d acks", st1.AcksReceived)
	}
}

// TestHeteroPinnedLoadFollowsWeights: the pinned closed-loop pool (the
// client-side router) offers each group load in proportion to its
// calibrated capacity, and the big group completes more work.
func TestHeteroPinnedLoadFollowsWeights(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 7},
			{Protocol: Chain, Replicas: 3},
		},
		Seed: 103,
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 96, Duration: 8 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.05, Keys: 4096,
		Dist: Uniform, PinGroups: true,
	})
	if rep.Ops == 0 {
		t.Fatal("no load completed")
	}
	if !(rep.GroupOps[0] > rep.GroupOps[1]) {
		t.Fatalf("GroupOps %v: the 7-replica group should complete more", rep.GroupOps)
	}
	// The split should lean meaningfully toward the big group — more
	// than the 3:2 a noisy even split could produce.
	if rep.GroupOps[0] < rep.GroupOps[1]*3/2 {
		t.Fatalf("GroupOps %v: weighted router barely favored the big group", rep.GroupOps)
	}
}

// TestGroupSpecNilBitCompatible: a nil-GroupSpecs cluster and its
// explicit uniform-spec equivalent are the SAME cluster — identical
// routing tables and an identical deterministic load run.
func TestGroupSpecNilBitCompatible(t *testing.T) {
	build := func(specs []GroupSpec) *Cluster {
		return New(Config{
			Protocol: Chain, Replicas: 3, UseHarmonia: true,
			Groups: 4, GroupSpecs: specs, Switches: 2, Seed: 77,
		})
	}
	a := build(nil)
	b := build([]GroupSpec{{Protocol: Chain}, {Protocol: Chain}, {Protocol: Chain}, {Protocol: Chain}})
	at, bt := a.SlotTable(), b.SlotTable()
	ast, bst := a.SlotSwitchTable(), b.SlotSwitchTable()
	for s := range at {
		if at[s] != bt[s] || ast[s] != bst[s] {
			t.Fatalf("slot %d: nil specs (%d,%d) vs uniform specs (%d,%d)", s, at[s], ast[s], bt[s], bst[s])
		}
	}
	// The historical layout formulas still describe the boot tables.
	for s := range at {
		if at[s] != c4legacyGroup(s) || ast[s] != s*2/wire.NumSlots {
			t.Fatalf("slot %d diverged from the historical layout: group %d switch %d", s, at[s], ast[s])
		}
	}
	spec := LoadSpec{
		Mode: Closed, Clients: 32, Duration: 6 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 0.1, Keys: 2048, Dist: Uniform, PinGroups: true,
	}
	ra, rb := a.RunLoad(spec), b.RunLoad(spec)
	if ra.Ops != rb.Ops || ra.Reads != rb.Reads || ra.Writes != rb.Writes {
		t.Fatalf("deterministic runs diverged: %+v vs %+v", ra.Ops, rb.Ops)
	}
	for g := range ra.GroupOps {
		if ra.GroupOps[g] != rb.GroupOps[g] {
			t.Fatalf("GroupOps diverged: %v vs %v", ra.GroupOps, rb.GroupOps)
		}
	}
}

// c4legacyGroup is the pre-spec boot route for a 2-switch, 4-group
// rack (contiguous shards, block striping).
func c4legacyGroup(slot int) int {
	sw := slot * 2 / wire.NumSlots
	lo := sw * 2
	return lo + slot%2
}

// TestMigrateCrossProtocolSteadyStateMatrix runs the full 5×5
// protocol-pair matrix (source ≠ destination) with a heterogeneous
// steady-state topology: both protocols are first-class residents, a
// populated slot migrates between them under 1% packet drops and live
// mixed load, and every group's history must stay linearizable. This
// is the cross-protocol ExtractSlot/InstallSlot path as a steady
// state, not a transient.
func TestMigrateCrossProtocolSteadyStateMatrix(t *testing.T) {
	protocols := []Protocol{PB, Chain, CRAQ, VR, NOPaxos}
	for _, src := range protocols {
		for _, dst := range protocols {
			if src == dst {
				continue
			}
			src, dst := src, dst
			t.Run(fmt.Sprintf("%s_to_%s", src, dst), func(t *testing.T) {
				crossProtocolCase(t, src, dst)
			})
		}
	}
}

func crossProtocolCase(t *testing.T, src, dst Protocol) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: src, Replicas: 3},
			{Protocol: dst, Replicas: 3},
		},
		DropProb: 0.01, RecordHistory: true,
		Seed: 131 + int64(src)*11 + int64(dst)*3,
	})
	const keys = 64
	cl := c.NewSyncClient()

	// Seed some keys of one group-0 slot through the protocol.
	slots := keysInSlotOwnedBy(c, keys, 0)
	var slot int
	var idxs []int
	for s, ii := range slots {
		if len(ii) >= 2 {
			slot, idxs = s, ii
			break
		}
	}
	if len(idxs) < 2 {
		t.Fatal("no slot with two keys found")
	}
	for _, i := range idxs {
		// nil values let the client encode its checkable value IDs —
		// explicit bytes would not mix with the recorded history.
		if err := cl.Set(keyName(i), nil); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}

	// Migrate mid-load: the handoff crosses the protocol boundary
	// while clients keep hammering both groups.
	c.Engine().After(3*time.Millisecond, func() {
		if _, err := c.StartBatchMigration([]int{slot}, 1); err != nil {
			t.Errorf("start cross-protocol handoff: %v", err)
		}
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 10, Duration: 8 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Uniform,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(20 * time.Millisecond) // settle the handoff and retries

	if got := c.SlotTable()[slot]; got != 1 {
		t.Fatalf("slot %d routed to %d after handoff", slot, got)
	}
	// The migrated keys live on (and write through) the destination
	// protocol.
	for _, i := range idxs {
		if _, ok, err := cl.Get(keyName(i)); err != nil || !ok {
			t.Fatalf("Get(%s) after cross-protocol handoff: %v %v", keyName(i), ok, err)
		}
		if g := cl.LastGroup(); g != 1 {
			t.Fatalf("key %s served by group %d, want 1", keyName(i), g)
		}
		// Writes keep working on the destination protocol (its
		// write-order guard was not wedged by imported sequence
		// numbers).
		if err := cl.Set(keyName(i), nil); err != nil {
			t.Fatalf("post-handoff Set(%s): %v", keyName(i), err)
		}
	}
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d (%s→%s) violated linearizability: %s", g, src, dst, res.Reason)
		}
	}
}

// TestOpenLoopPinGroupsOfferedSplit: the sharded open-loop driver's
// weight-aware draw offers a 2:1 weighted rack a 2:1 split — the
// regression this guards is a weight-blind uniform key draw
// under-offering the big shard.
func TestOpenLoopPinGroupsOfferedSplit(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 3, Weight: 2},
			{Protocol: Chain, Replicas: 3, Weight: 1},
		},
		Seed: 211,
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Open, Rate: 400000, Duration: 40 * time.Millisecond,
		Warmup: 5 * time.Millisecond, WriteRatio: 0.05, Keys: 8192,
		Dist: Uniform, PinGroups: true,
	})
	if rep.GroupOffered == nil {
		t.Fatal("sharded open-loop run reported no GroupOffered")
	}
	total := rep.GroupOffered[0] + rep.GroupOffered[1]
	if total == 0 {
		t.Fatal("no load offered")
	}
	ratio := float64(rep.GroupOffered[0]) / float64(rep.GroupOffered[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("offered split %v (ratio %.3f), want ~2:1", rep.GroupOffered, ratio)
	}
	// Completions follow the offer: the big group also does more work.
	if !(rep.GroupOps[0] > rep.GroupOps[1]) {
		t.Fatalf("GroupOps %v: weighted offer did not reach the big group", rep.GroupOps)
	}
	// Closed-loop and unsharded runs leave GroupOffered nil.
	if r := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 16, Duration: 4 * time.Millisecond,
		Keys: 2048, PinGroups: true,
	}); r.GroupOffered != nil {
		t.Fatalf("closed-loop run filled GroupOffered: %v", r.GroupOffered)
	}
	if r := c.RunLoad(LoadSpec{
		Mode: Open, Rate: 100000, Duration: 4 * time.Millisecond,
		Keys: 2048,
	}); r.GroupOffered != nil {
		t.Fatalf("unsharded open-loop run filled GroupOffered: %v", r.GroupOffered)
	}
}
