package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// keysInSlotOwnedBy collects key indices from [0, keys) whose slot the
// front-end currently routes to group g, grouped by slot.
func keysInSlotOwnedBy(c *Cluster, keys, g int) map[int][]int {
	out := make(map[int][]int)
	for i := 0; i < keys; i++ {
		id := wire.HashKey(keyName(i))
		if c.routeObj(id) == g {
			out[wire.SlotOf(id)] = append(out[wire.SlotOf(id)], i)
		}
	}
	return out
}

func TestMigrateSlotMovesKeysAndData(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 21,
	})
	cl := c.NewSyncClient()

	// Write through a handful of keys in one slot of group 0.
	slots := keysInSlotOwnedBy(c, 64, 0)
	var slot int
	var idxs []int
	for s, ii := range slots {
		if len(ii) >= 2 {
			slot, idxs = s, ii
			break
		}
	}
	if len(idxs) < 2 {
		t.Fatal("no slot with two keys found")
	}
	for _, i := range idxs {
		if err := cl.Set(keyName(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}

	if err := c.MigrateSlot(slot, 2); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if got := c.SlotTable()[slot]; got != 2 {
		t.Fatalf("slot %d routed to %d after migration, want 2", slot, got)
	}
	if c.Frontend().Frozen(slot) {
		t.Fatal("slot still frozen after migration")
	}

	// Every key now reads its value from the new group, observably.
	for _, i := range idxs {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after migration = %q %v %v", keyName(i), v, ok, err)
		}
		if g := cl.LastGroup(); g != 2 {
			t.Fatalf("key %s served by group %d, want 2", keyName(i), g)
		}
	}

	// The source replicas no longer hold the slot's objects.
	for _, r := range c.groups[0].replicas {
		if n := len(r.ExtractSlot(slot)); n != 0 {
			t.Fatalf("source replica still holds %d objects of slot %d", n, slot)
		}
	}

	// Writes to migrated keys keep working (the destination store's
	// write-order guard must not have been wedged by imported seqs).
	for _, i := range idxs {
		if err := cl.Set(keyName(i), []byte("post")); err != nil {
			t.Fatalf("post-migration Set: %v", err)
		}
		if v, ok, err := cl.Get(keyName(i)); err != nil || !ok || string(v) != "post" {
			t.Fatalf("post-migration Get = %q %v %v", v, ok, err)
		}
	}
}

func TestMigrateSlotValidation(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 5})
	if _, err := c.StartSlotMigration(-1, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := c.StartSlotMigration(wire.NumSlots, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := c.StartSlotMigration(0, 2); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	// Self-migration completes instantly and leaves nothing frozen.
	from := c.SlotTable()[7]
	m, err := c.StartSlotMigration(7, from)
	if err != nil || !m.Done() {
		t.Fatalf("self-migration: %v, done=%v", err, m.Done())
	}
	if c.Frontend().Frozen(7) {
		t.Fatal("self-migration froze the slot")
	}
	// Double migration of one slot is rejected while in flight.
	if _, err := c.StartSlotMigration(3, 1-c.SlotTable()[3]); err != nil {
		t.Fatalf("first migration: %v", err)
	}
	if _, err := c.StartSlotMigration(3, 0); err == nil {
		t.Fatal("concurrent migration of one slot accepted")
	}
}

// slotsOwnedBy lists (in slot order, for determinism) the routing
// slots currently owned by group g that contain at least one of the
// first `keys` workload keys.
func slotsOwnedBy(c *Cluster, keys, g int) []int {
	bySlot := keysInSlotOwnedBy(c, keys, g)
	var out []int
	for s := 0; s < wire.NumSlots; s++ {
		if len(bySlot[s]) > 0 {
			out = append(out, s)
		}
	}
	return out
}

func takeSlots(t *testing.T, slots []int, n int) []int {
	t.Helper()
	if len(slots) < n {
		t.Fatalf("only %d migratable slots, need %d", len(slots), n)
	}
	return slots[:n]
}

// TestMigrateChaosMatrix is the migration hardening matrix: every
// replication protocol × a chaos mode (packet drops, reordering, or a
// source-group replica crash mid-handoff) × a handoff shape
// (single-slot, batch, two-way swap), each run in the middle of a live
// load window. The acceptance bar per cell: the handoffs complete, the
// routes land where requested with nothing left frozen, and every
// group's history slice linearizes. CRAQ rides along where it can (its
// drain signal works differently: write replies piggyback the
// completions that empty the dirty set) but skips the crash column —
// its reconfiguration is not modeled.
func TestMigrateChaosMatrix(t *testing.T) {
	protocols := []Protocol{PB, Chain, CRAQ, VR, NOPaxos}
	chaosModes := []string{"drops", "reorder", "crash"}
	kinds := []string{"single", "batch", "swap"}
	for _, p := range protocols {
		for _, chaos := range chaosModes {
			for _, kind := range kinds {
				p, chaos, kind := p, chaos, kind
				t.Run(fmt.Sprintf("%s/%s/%s", p, chaos, kind), func(t *testing.T) {
					migrateChaosCase(t, p, chaos, kind)
				})
			}
		}
	}
}

func migrateChaosCase(t *testing.T, p Protocol, chaos, kind string) {
	if p == CRAQ && chaos == "crash" {
		t.Skip("CRAQ reconfiguration not modeled")
	}
	cfg := Config{
		Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 3,
		RecordHistory: true, Seed: 33 + int64(p)*7,
	}
	switch chaos {
	case "drops":
		cfg.DropProb = 0.01
	case "reorder":
		cfg.ReorderProb = 0.02
		cfg.ReorderDelay = 30 * time.Microsecond
	}
	c := New(cfg)
	const keys = 96

	g0 := slotsOwnedBy(c, keys, 0)
	g1 := slotsOwnedBy(c, keys, 1)

	var moves []*Migration
	c.Engine().After(4*time.Millisecond, func() {
		start := func(m *Migration, err error) {
			if err != nil {
				t.Errorf("start %s handoff: %v", kind, err)
				return
			}
			moves = append(moves, m)
		}
		switch kind {
		case "single":
			for i, s := range takeSlots(t, g0, 2) {
				start(c.StartSlotMigration(s, 1+i%2))
			}
		case "batch":
			start(c.StartBatchMigration(takeSlots(t, g0, 3), 2))
		case "swap":
			ma, mb, err := c.StartSwapSlots(takeSlots(t, g0, 2), takeSlots(t, g1, 2))
			start(ma, err)
			if err == nil {
				start(mb, nil)
			}
		}
	})
	if chaos == "crash" {
		// Fail a source-group replica moments into the handoff, while
		// the drain is (or may still be) in progress.
		c.Engine().After(4*time.Millisecond+200*time.Microsecond, func() {
			if err := c.CrashReplicaIn(0, 1); err != nil {
				t.Errorf("CrashReplicaIn: %v", err)
			}
		})
	}

	// Uniform keys keep every per-key history inside the checker's
	// budget; the skew dimension is Fig A's job, not this matrix's.
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 12, Duration: 10 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Uniform,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(25 * time.Millisecond) // settle in-flight ops and handoffs

	if len(moves) == 0 {
		t.Fatal("handoffs never started")
	}
	for _, m := range moves {
		if m.Aborted() {
			// An aborted handoff must always thaw its slots on their
			// original owner — mid-run aborts are legal, lost slots are
			// not.
			for _, s := range m.Slots {
				if c.Frontend().Frozen(s) {
					t.Fatalf("aborted handoff left slot %d frozen", s)
				}
				if got := c.SlotTable()[s]; got != m.From {
					t.Fatalf("aborted handoff moved slot %d to %d", s, got)
				}
			}
			continue
		}
		if !m.Done() {
			t.Fatalf("handoff of slots %v stuck (from %d to %d)", m.Slots, m.From, m.To)
		}
		for _, s := range m.Slots {
			if got := c.SlotTable()[s]; got != m.To {
				t.Fatalf("slot %d routed to %d, want %d", s, got, m.To)
			}
			if c.Frontend().Frozen(s) {
				t.Fatalf("slot %d still frozen after handoff", s)
			}
		}
	}
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d violated linearizability across the handoff: %s", g, res.Reason)
		}
	}
}

// TestMigrateSlotAllProtocols exercises the handoff under every
// replication protocol, including CRAQ's bespoke versioned store.
func TestMigrateSlotAllProtocols(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, CRAQ, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 2, Seed: 9,
			})
			cl := c.NewSyncClient()
			slots := keysInSlotOwnedBy(c, 32, 0)
			var slot int
			var idxs []int
			for s, ii := range slots {
				slot, idxs = s, ii
				break
			}
			for _, i := range idxs {
				if err := cl.Set(keyName(i), []byte("x")); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
			if err := c.MigrateSlot(slot, 1); err != nil {
				t.Fatalf("MigrateSlot: %v", err)
			}
			for _, i := range idxs {
				v, ok, err := cl.Get(keyName(i))
				if err != nil || !ok || string(v) != "x" {
					t.Fatalf("Get after migration = %q %v %v", v, ok, err)
				}
				if g := cl.LastGroup(); g != 1 {
					t.Fatalf("served by group %d, want 1", g)
				}
				if err := cl.Set(keyName(i), []byte("y")); err != nil {
					t.Fatalf("post-migration Set: %v", err)
				}
			}
		})
	}
}

// TestMigrateSlotAbortsWhenSourceCannotDrain wedges the source group
// (a sequenced write to the slot whose destination is down never
// completes, so the dirty entry never clears and the commit point
// never passes it), and requires the blocking MigrateSlot to give up
// and thaw the slot on its original owner — under every replication
// protocol, since the abort path is the safety net the chaos matrix
// leans on. For chain (where recovery of a fully-downed group is
// modeled cleanly) the test additionally recovers the group and
// retries the migration to completion.
func TestMigrateSlotAbortsWhenSourceCannotDrain(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, CRAQ, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 2,
				Stages: 1, SlotsPerStage: 64, Seed: 25 + int64(p),
			})
			cl := c.NewSyncClient()
			key, ok := c.keyInGroup(0, "wedge_", -1)
			if !ok {
				t.Fatal("no key in group 0")
			}
			if err := cl.Set(key, []byte("v")); err != nil {
				t.Fatal(err)
			}
			slot := c.SlotOfKey(key)

			// Take the whole source group down, then sequence a write
			// for the slot: the dirty entry sticks and nothing can ever
			// advance the commit point past it.
			for i := 0; i < 3; i++ {
				c.net.SetDown(c.GroupReplicaAddr(0, i), true)
			}
			c.rack.Front(0).Recv(clientBase, &wire.Packet{
				Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
				ClientID: 0, ReqID: 999, Value: []byte{2},
			})
			if c.GroupScheduler(0).DirtyInSlot(slot) == 0 {
				t.Fatal("wedge write not tracked")
			}

			if err := c.MigrateSlot(slot, 1); err == nil {
				t.Fatal("migration completed despite an undrainable source")
			}
			if c.rack.Frozen(slot) {
				t.Fatal("aborted migration left the slot frozen")
			}
			if got := c.SlotTable()[slot]; got != 0 {
				t.Fatalf("aborted migration flipped the route to %d", got)
			}
			if p != Chain {
				return
			}

			// Recover the group; the slot serves again and a retried
			// migration succeeds.
			for i := 0; i < 3; i++ {
				c.net.SetDown(c.GroupReplicaAddr(0, i), false)
			}
			c.RunFor(5 * time.Millisecond)
			if v, k2, err := cl.Get(key); err != nil || !k2 || len(v) == 0 {
				t.Fatalf("slot unavailable after aborted migration: %q %v %v", v, k2, err)
			}
			if err := c.MigrateSlot(slot, 1); err != nil {
				t.Fatalf("retried migration after recovery: %v", err)
			}
			if v, k2, err := cl.Get(key); err != nil || !k2 {
				t.Fatalf("Get after retried migration: %q %v %v", v, k2, err)
			}
		})
	}
}

// TestMigrateNonBlockingAbortsAtDeadline wedges the source group and
// starts a NON-blocking handoff — the rebalancer's path, where no
// caller drives the simulation or aborts on its behalf. The drain
// deadline must thaw the slot on its own; without it, the hottest
// slots of the cluster would stay frozen forever.
func TestMigrateNonBlockingAbortsAtDeadline(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2,
		Stages: 1, SlotsPerStage: 64, Seed: 83,
	})
	cl := c.NewSyncClient()
	key, ok := c.keyInGroup(0, "wedge_", -1)
	if !ok {
		t.Fatal("no key in group 0")
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	for i := 0; i < 3; i++ {
		c.net.SetDown(c.GroupReplicaAddr(0, i), true)
	}
	c.rack.Front(0).Recv(clientBase, &wire.Packet{
		Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
		ClientID: 0, ReqID: 999, Value: []byte{2},
	})
	m, err := c.StartSlotMigration(slot, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(600 * time.Millisecond) // past the drain deadline
	if !m.Aborted() || m.Done() {
		t.Fatalf("undrainable non-blocking handoff: aborted=%v done=%v", m.Aborted(), m.Done())
	}
	if c.rack.Frozen(slot) {
		t.Fatal("deadline abort left the slot frozen")
	}
	if got := c.SlotTable()[slot]; got != 0 {
		t.Fatalf("deadline abort flipped the route to %d", got)
	}
	if len(c.migrations) != 0 {
		t.Fatalf("%d handoffs still registered after the abort", len(c.migrations))
	}
	// Recover and migrate for real.
	for i := 0; i < 3; i++ {
		c.net.SetDown(c.GroupReplicaAddr(0, i), false)
	}
	c.RunFor(5 * time.Millisecond)
	if err := c.MigrateSlot(slot, 1); err != nil {
		t.Fatalf("retried migration after recovery: %v", err)
	}
	if v, k2, err := cl.Get(key); err != nil || !k2 {
		t.Fatalf("Get after retried migration: %q %v %v", v, k2, err)
	}
}

// TestMigrateToCurrentGroupIsNoop pins the regression: migrating slots
// to their current owner — in the single-slot, batch, and blocking
// forms — must succeed instantly without freezing the slot, copying
// any objects, or registering a handoff, rather than freezing and
// copying a slot onto itself.
func TestMigrateToCurrentGroupIsNoop(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 51})
	cl := c.NewSyncClient()
	key, ok := c.keyInGroup(1, "noop_", -1)
	if !ok {
		t.Fatal("no key in group 1")
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	drops := c.rack.Front(0).Stats.FrozenDrops

	m, err := c.StartSlotMigration(slot, 1)
	if err != nil || !m.Done() || m.Aborted() {
		t.Fatalf("self-migration: err=%v done=%v aborted=%v", err, m.Done(), m.Aborted())
	}
	if m.Objects() != 0 {
		t.Fatalf("self-migration copied %d objects", m.Objects())
	}
	if c.rack.Frozen(slot) {
		t.Fatal("self-migration froze the slot")
	}
	if len(c.migrations) != 0 {
		t.Fatalf("self-migration left %d handoffs registered", len(c.migrations))
	}

	// Batch form: a mix of no-op and real slots only moves the real
	// ones; an all-no-op batch moves nothing.
	m, err = c.StartBatchMigration([]int{slot}, 1)
	if err != nil || !m.Done() || len(m.Slots) != 0 {
		t.Fatalf("all-noop batch: err=%v done=%v slots=%v", err, m.Done(), m.Slots)
	}
	other := -1
	for s := 0; s < wire.NumSlots; s++ {
		if c.SlotTable()[s] == 0 {
			other = s
			break
		}
	}
	if err := c.MigrateSlots([]int{slot, other}, 1); err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	if got := c.SlotTable()[other]; got != 1 {
		t.Fatalf("real slot of the mixed batch routed to %d, want 1", got)
	}
	if got := c.SlotTable()[slot]; got != 1 {
		t.Fatalf("no-op slot rerouted to %d", got)
	}

	// Blocking form, and the data is untouched throughout.
	if err := c.MigrateSlot(slot, 1); err != nil {
		t.Fatalf("blocking self-migration: %v", err)
	}
	if c.rack.Front(0).Stats.FrozenDrops != drops {
		t.Fatal("a no-op migration dropped client traffic")
	}
	if v, k2, err := cl.Get(key); err != nil || !k2 || string(v) != "v" {
		t.Fatalf("Get after no-op migrations = %q %v %v", v, k2, err)
	}
	if g := cl.LastGroup(); g != 1 {
		t.Fatalf("key served by group %d, want 1", g)
	}
}

// TestMigrateSwapSlotsExchangesOwners swaps a slot set between two groups and
// verifies both directions moved, occupancy is conserved, and the data
// survived on both sides.
func TestMigrateSwapSlotsExchangesOwners(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 57})
	cl := c.NewSyncClient()
	const keys = 96
	a := takeSlots(t, slotsOwnedBy(c, keys, 0), 2)
	b := takeSlots(t, slotsOwnedBy(c, keys, 2), 2)
	write := func(slots []int, g int) map[int]string {
		vals := map[int]string{}
		for _, i := range keysInGroupSlots(c, keys, g, slots) {
			v := fmt.Sprintf("v%d", i)
			if err := cl.Set(keyName(i), []byte(v)); err != nil {
				t.Fatalf("Set: %v", err)
			}
			vals[i] = v
		}
		return vals
	}
	va := write(a, 0)
	vb := write(b, 2)

	occBefore := occupancy(c)
	if err := c.SwapSlots(a, b); err != nil {
		t.Fatalf("SwapSlots: %v", err)
	}
	for _, s := range a {
		if got := c.SlotTable()[s]; got != 2 {
			t.Fatalf("slot %d routed to %d after swap, want 2", s, got)
		}
	}
	for _, s := range b {
		if got := c.SlotTable()[s]; got != 0 {
			t.Fatalf("slot %d routed to %d after swap, want 0", s, got)
		}
	}
	if occAfter := occupancy(c); occAfter != occBefore {
		t.Fatalf("swap changed slot occupancy: %v != %v", occAfter, occBefore)
	}
	check := func(vals map[int]string, wantGroup int) {
		for i, v := range vals {
			got, ok, err := cl.Get(keyName(i))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("Get(%s) after swap = %q %v %v", keyName(i), got, ok, err)
			}
			if g := cl.LastGroup(); g != wantGroup {
				t.Fatalf("key %s served by group %d, want %d", keyName(i), g, wantGroup)
			}
		}
	}
	check(va, 2)
	check(vb, 0)

	// Validation: sets spanning owners, empty sets, shared owner.
	if err := c.SwapSlots(nil, b); err == nil {
		t.Fatal("empty swap set accepted")
	}
	if err := c.SwapSlots(a, a); err == nil {
		t.Fatal("same-owner swap accepted")
	}
	mixed := []int{a[0], b[0]}
	if err := c.SwapSlots(mixed, []int{a[1]}); err == nil {
		t.Fatal("owner-spanning swap set accepted")
	}
}

// keysInGroupSlots lists key indices of [0, keys) living in the given
// slots of group g, in index order.
func keysInGroupSlots(c *Cluster, keys, g int, slots []int) []int {
	in := map[int]bool{}
	for _, s := range slots {
		in[s] = true
	}
	var out []int
	for i := 0; i < keys; i++ {
		id := wire.HashKey(keyName(i))
		if c.routeObj(id) == g && in[wire.SlotOf(id)] {
			out = append(out, i)
		}
	}
	return out
}

// occupancy summarizes the slot table as a per-group slot count.
func occupancy(c *Cluster) [8]int {
	var counts [8]int
	for _, g := range c.SlotTable() {
		counts[g]++
	}
	return counts
}

// TestMigrateClientTableTravels pins the cross-group duplicate
// regression the chaos matrix first exposed: under a skewed workload
// with packet drops, a write the source group executed whose reply was
// lost keeps being retried by its client; after the handoff the retry
// lands on the destination, and without the migrated client-table
// records the destination re-executes it — which can resurrect an old
// value over a newer committed write (a decided linearizability
// violation), while a record folded into the main table instead of the
// exact-match overlay makes lagging replicas suppress writes their
// leader applied (stale fast reads of unrelated keys). NOPaxos's
// sync-lagged followers are the most sensitive detector, so it anchors
// the sweep.
func TestMigrateClientTableTravels(t *testing.T) {
	for seed := int64(60); seed < 70; seed++ {
		c := New(Config{
			Protocol: NOPaxos, Replicas: 3, UseHarmonia: true, Groups: 3,
			RecordHistory: true, Seed: seed, DropProb: 0.01,
		})
		const keys = 96
		g1 := slotsOwnedBy(c, keys, 1)
		c.Engine().After(4*time.Millisecond, func() {
			if _, err := c.StartBatchMigration(takeSlots(t, g1, 2), 0); err != nil {
				t.Errorf("seed %d: start: %v", seed, err)
			}
		})
		c.RunLoad(LoadSpec{
			Mode: Closed, Clients: 8, Duration: 10 * time.Millisecond,
			Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Zipf09,
		})
		c.RunFor(25 * time.Millisecond)
		for g := 0; g < c.Groups(); g++ {
			res := c.CheckLinearizabilityGroup(g)
			if !res.Decided {
				t.Fatalf("seed %d group %d undecided: %s", seed, g, res.Reason)
			}
			if !res.Ok {
				t.Fatalf("seed %d group %d violated linearizability: %s", seed, g, res.Reason)
			}
		}
	}
}

// TestKeyInGroupBoundedWhenGroupEmptied drains group 1 of every slot
// and checks the deterministic key search reports failure instead of
// spinning forever (the flush-write path skips its nudge then).
func TestKeyInGroupBoundedWhenGroupEmptied(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 3})
	for s := 0; s < wire.NumSlots; s++ {
		if c.SlotTable()[s] != 1 {
			continue
		}
		if err := c.MigrateSlot(s, 0); err != nil {
			t.Fatalf("migrate slot %d: %v", s, err)
		}
	}
	if _, ok := c.keyInGroup(1, "none_", -1); ok {
		t.Fatal("keyInGroup found a key in a group that owns no slots")
	}
	if _, ok := c.keyInGroup(0, "all_", -1); !ok {
		t.Fatal("keyInGroup failed on the group owning every slot")
	}
}

// TestFrozenSlotDropsAndRecovers verifies the freeze window behaves
// like a booting switch for the slot: requests are dropped (counted by
// the front-end) and the clients' own retries succeed once the slot
// thaws on the new group.
func TestFrozenSlotDropsAndRecovers(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 13})
	cl := c.NewSyncClient()
	key, ok := c.keyInGroup(0, "frozen_", -1)
	if !ok {
		t.Fatal("no key in group 0")
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	c.rack.FreezeSlot(slot)
	before := c.rack.Front(0).Stats.FrozenDrops
	// The synchronous client retries on its timeout; thaw the slot
	// shortly after so one of the retries lands.
	c.eng.After(5*time.Millisecond, func() { c.rack.UnfreezeSlot(slot) })
	v, ok, err := cl.Get(key)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get across freeze window = %q %v %v", v, ok, err)
	}
	if c.rack.Front(0).Stats.FrozenDrops == before {
		t.Fatal("freeze window dropped nothing")
	}
}

// TestSweepReclaimsStraysWithoutReads drops a fraction of the
// replica→switch completion traffic under a write-only load, then
// lets the periodic sweep reclaim the stray dirty entries — no read
// ever probes them, so the read-path lazy cleanup cannot help.
func TestSweepReclaimsStraysWithoutReads(t *testing.T) {
	dropCompletions := func(msg simnet.Message) bool {
		pkt, ok := msg.(*wire.Packet)
		return ok && (pkt.Op == wire.OpWriteReply || pkt.Op == wire.OpWriteCompletion)
	}
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 512, Seed: 29,
		SweepInterval: 2 * time.Millisecond,
	})
	for r := 0; r < 3; r++ {
		c.Network().SetLink(c.ReplicaAddr(r), c.SwitchAddr(), simnet.LinkConfig{
			Latency: 5 * time.Microsecond, DropProb: 0.3, DropFilter: dropCompletions,
		})
	}
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 32, Duration: 20 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 1, Keys: 400,
	})
	if rep.Writes == 0 {
		t.Fatal("no writes completed")
	}
	// Settle: in-flight writes finish (or are lost for good), then the
	// sweeps run with the cluster idle.
	c.RunFor(20 * time.Millisecond)
	st := c.Scheduler().Stats
	if st.SweptStale == 0 {
		t.Fatal("periodic sweep reclaimed nothing despite dropped completions")
	}
	if st.LazyCleanups != 0 {
		t.Fatalf("write-only load still saw %d read-path cleanups", st.LazyCleanups)
	}
	if n := c.Scheduler().DirtyCount(); n != 0 {
		t.Fatalf("%d stray entries survived the sweep", n)
	}
}

// TestDroppedWriteRepliesDriveImmediateRetry pins the FlagDropped
// regression at cluster level: with a one-slot dirty set, concurrent
// writes collide, the switch answers the losers with synthesized
// FlagDropped replies, and the clients reissue immediately — the run
// makes progress and reports the drops distinctly from timeout
// retries.
func TestDroppedWriteRepliesDriveImmediateRetry(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 1, Seed: 41,
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 8, Duration: 10 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 1, Keys: 64,
	})
	if c.Scheduler().Stats.WritesDropped == 0 {
		t.Fatal("one-slot dirty set never rejected a write (test lost its trigger)")
	}
	if rep.Dropped == 0 {
		t.Fatal("write drops were not surfaced in Report.Dropped")
	}
	if rep.Writes == 0 {
		t.Fatalf("no write ever completed: %+v", rep)
	}
	// With the synthesized replies the clients never need the timeout
	// for dropped writes; any residual retries come from the timeout
	// path and must be rarer than the drops they replaced.
	if rep.Retries > rep.Dropped {
		t.Fatalf("timeout retries (%d) exceed drop-driven reissues (%d)", rep.Retries, rep.Dropped)
	}
	// A synchronous client still completes operations afterwards.
	cl := c.NewSyncClient()
	if err := cl.Set("after", []byte("v")); err != nil {
		t.Fatalf("Set after drop storm: %v", err)
	}
	if v, ok, err := cl.Get("after"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
}
