package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// keysInSlotOwnedBy collects key indices from [0, keys) whose slot the
// front-end currently routes to group g, grouped by slot.
func keysInSlotOwnedBy(c *Cluster, keys, g int) map[int][]int {
	out := make(map[int][]int)
	for i := 0; i < keys; i++ {
		id := wire.HashKey(keyName(i))
		if c.routeObj(id) == g {
			out[wire.SlotOf(id)] = append(out[wire.SlotOf(id)], i)
		}
	}
	return out
}

func TestMigrateSlotMovesKeysAndData(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 21,
	})
	cl := c.NewSyncClient()

	// Write through a handful of keys in one slot of group 0.
	slots := keysInSlotOwnedBy(c, 64, 0)
	var slot int
	var idxs []int
	for s, ii := range slots {
		if len(ii) >= 2 {
			slot, idxs = s, ii
			break
		}
	}
	if len(idxs) < 2 {
		t.Fatal("no slot with two keys found")
	}
	for _, i := range idxs {
		if err := cl.Set(keyName(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}

	if err := c.MigrateSlot(slot, 2); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if got := c.SlotTable()[slot]; got != 2 {
		t.Fatalf("slot %d routed to %d after migration, want 2", slot, got)
	}
	if c.Frontend().Frozen(slot) {
		t.Fatal("slot still frozen after migration")
	}

	// Every key now reads its value from the new group, observably.
	for _, i := range idxs {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after migration = %q %v %v", keyName(i), v, ok, err)
		}
		if g := cl.LastGroup(); g != 2 {
			t.Fatalf("key %s served by group %d, want 2", keyName(i), g)
		}
	}

	// The source replicas no longer hold the slot's objects.
	for _, r := range c.groups[0].replicas {
		if n := len(r.ExtractSlot(slot)); n != 0 {
			t.Fatalf("source replica still holds %d objects of slot %d", n, slot)
		}
	}

	// Writes to migrated keys keep working (the destination store's
	// write-order guard must not have been wedged by imported seqs).
	for _, i := range idxs {
		if err := cl.Set(keyName(i), []byte("post")); err != nil {
			t.Fatalf("post-migration Set: %v", err)
		}
		if v, ok, err := cl.Get(keyName(i)); err != nil || !ok || string(v) != "post" {
			t.Fatalf("post-migration Get = %q %v %v", v, ok, err)
		}
	}
}

func TestMigrateSlotValidation(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 5})
	if _, err := c.StartSlotMigration(-1, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := c.StartSlotMigration(wire.NumSlots, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := c.StartSlotMigration(0, 2); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	// Self-migration completes instantly and leaves nothing frozen.
	from := c.SlotTable()[7]
	m, err := c.StartSlotMigration(7, from)
	if err != nil || !m.Done() {
		t.Fatalf("self-migration: %v, done=%v", err, m.Done())
	}
	if c.Frontend().Frozen(7) {
		t.Fatal("self-migration froze the slot")
	}
	// Double migration of one slot is rejected while in flight.
	if _, err := c.StartSlotMigration(3, 1-c.SlotTable()[3]); err != nil {
		t.Fatalf("first migration: %v", err)
	}
	if _, err := c.StartSlotMigration(3, 0); err == nil {
		t.Fatal("concurrent migration of one slot accepted")
	}
}

// TestMigrateSlotUnderChaos runs several migrations in the middle of a
// live load window with packet loss and reordering on the client
// paths, then requires every group's history slice to linearize — the
// acceptance bar for the handoff protocol. CRAQ rides along because
// its drain signal works differently (write replies piggyback the
// completions that empty the dirty set).
func TestMigrateSlotUnderChaos(t *testing.T) {
	for _, p := range []Protocol{Chain, CRAQ} {
		t.Run(p.String(), func(t *testing.T) { migrateUnderChaos(t, p) })
	}
}

func migrateUnderChaos(t *testing.T, p Protocol) {
	c := New(Config{
		Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 3,
		DropProb: 0.01, ReorderProb: 0.02, ReorderDelay: 30 * time.Microsecond,
		RecordHistory: true, Seed: 33,
	})
	const keys = 96

	// Pick up to three slots of group 0 that own workload keys, and
	// spread them over the other two groups mid-window.
	var moves []*Migration
	var slots []int
	for s, ii := range keysInSlotOwnedBy(c, keys, 0) {
		if len(ii) > 0 {
			slots = append(slots, s)
		}
		if len(slots) == 3 {
			break
		}
	}
	if len(slots) == 0 {
		t.Fatal("no migratable slots")
	}
	c.Engine().After(8*time.Millisecond, func() {
		for i, s := range slots {
			m, err := c.StartSlotMigration(s, 1+i%2)
			if err != nil {
				t.Errorf("StartSlotMigration(%d): %v", s, err)
				continue
			}
			moves = append(moves, m)
		}
	})

	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 12, Duration: 12 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Zipf09,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(20 * time.Millisecond) // settle in-flight ops and handoffs

	for _, m := range moves {
		if !m.Done() {
			t.Fatalf("migration of slot %d stuck (from %d to %d)", m.Slot, m.From, m.To)
		}
		if got := c.SlotTable()[m.Slot]; got != m.To {
			t.Fatalf("slot %d routed to %d, want %d", m.Slot, got, m.To)
		}
	}
	if len(moves) == 0 {
		t.Fatal("migrations never started")
	}
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d violated linearizability across the migration: %s", g, res.Reason)
		}
	}
}

// TestMigrateSlotAllProtocols exercises the handoff under every
// replication protocol, including CRAQ's bespoke versioned store.
func TestMigrateSlotAllProtocols(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, CRAQ, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ, Groups: 2, Seed: 9,
			})
			cl := c.NewSyncClient()
			slots := keysInSlotOwnedBy(c, 32, 0)
			var slot int
			var idxs []int
			for s, ii := range slots {
				slot, idxs = s, ii
				break
			}
			for _, i := range idxs {
				if err := cl.Set(keyName(i), []byte("x")); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
			if err := c.MigrateSlot(slot, 1); err != nil {
				t.Fatalf("MigrateSlot: %v", err)
			}
			for _, i := range idxs {
				v, ok, err := cl.Get(keyName(i))
				if err != nil || !ok || string(v) != "x" {
					t.Fatalf("Get after migration = %q %v %v", v, ok, err)
				}
				if g := cl.LastGroup(); g != 1 {
					t.Fatalf("served by group %d, want 1", g)
				}
				if err := cl.Set(keyName(i), []byte("y")); err != nil {
					t.Fatalf("post-migration Set: %v", err)
				}
			}
		})
	}
}

// TestMigrateSlotAbortsWhenSourceCannotDrain wedges the source group
// (a sequenced write to the slot whose destination is down never
// completes, so the dirty entry never clears and the commit point
// never passes it), and requires the blocking MigrateSlot to give up,
// thaw the slot on its original owner, and leave it migratable once
// the group recovers.
func TestMigrateSlotAbortsWhenSourceCannotDrain(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2,
		Stages: 1, SlotsPerStage: 64, Seed: 25,
	})
	cl := c.NewSyncClient()
	key, ok := c.keyInGroup(0, "wedge_", -1)
	if !ok {
		t.Fatal("no key in group 0")
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)

	// Take the whole source chain down, then sequence a write for the
	// slot: the dirty entry sticks and nothing can ever advance the
	// commit point past it.
	for i := 0; i < 3; i++ {
		c.net.SetDown(c.GroupReplicaAddr(0, i), true)
	}
	c.front.Recv(clientBase, &wire.Packet{
		Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
		ClientID: 0, ReqID: 999, Value: []byte{2},
	})
	if c.GroupScheduler(0).DirtyInSlot(slot) == 0 {
		t.Fatal("wedge write not tracked")
	}

	if err := c.MigrateSlot(slot, 1); err == nil {
		t.Fatal("migration completed despite an undrainable source")
	}
	if c.front.Frozen(slot) {
		t.Fatal("aborted migration left the slot frozen")
	}
	if got := c.SlotTable()[slot]; got != 0 {
		t.Fatalf("aborted migration flipped the route to %d", got)
	}

	// Recover the group; the slot serves again and a retried migration
	// succeeds.
	for i := 0; i < 3; i++ {
		c.net.SetDown(c.GroupReplicaAddr(0, i), false)
	}
	c.RunFor(5 * time.Millisecond)
	if v, k2, err := cl.Get(key); err != nil || !k2 || len(v) == 0 {
		t.Fatalf("slot unavailable after aborted migration: %q %v %v", v, k2, err)
	}
	if err := c.MigrateSlot(slot, 1); err != nil {
		t.Fatalf("retried migration after recovery: %v", err)
	}
	if v, k2, err := cl.Get(key); err != nil || !k2 {
		t.Fatalf("Get after retried migration: %q %v %v", v, k2, err)
	}
}

// TestKeyInGroupBoundedWhenGroupEmptied drains group 1 of every slot
// and checks the deterministic key search reports failure instead of
// spinning forever (the flush-write path skips its nudge then).
func TestKeyInGroupBoundedWhenGroupEmptied(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 3})
	for s := 0; s < wire.NumSlots; s++ {
		if c.SlotTable()[s] != 1 {
			continue
		}
		if err := c.MigrateSlot(s, 0); err != nil {
			t.Fatalf("migrate slot %d: %v", s, err)
		}
	}
	if _, ok := c.keyInGroup(1, "none_", -1); ok {
		t.Fatal("keyInGroup found a key in a group that owns no slots")
	}
	if _, ok := c.keyInGroup(0, "all_", -1); !ok {
		t.Fatal("keyInGroup failed on the group owning every slot")
	}
}

// TestFrozenSlotDropsAndRecovers verifies the freeze window behaves
// like a booting switch for the slot: requests are dropped (counted by
// the front-end) and the clients' own retries succeed once the slot
// thaws on the new group.
func TestFrozenSlotDropsAndRecovers(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 13})
	cl := c.NewSyncClient()
	key, ok := c.keyInGroup(0, "frozen_", -1)
	if !ok {
		t.Fatal("no key in group 0")
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	c.front.FreezeSlot(slot)
	before := c.front.Stats.FrozenDrops
	// The synchronous client retries on its timeout; thaw the slot
	// shortly after so one of the retries lands.
	c.eng.After(5*time.Millisecond, func() { c.front.UnfreezeSlot(slot) })
	v, ok, err := cl.Get(key)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get across freeze window = %q %v %v", v, ok, err)
	}
	if c.front.Stats.FrozenDrops == before {
		t.Fatal("freeze window dropped nothing")
	}
}

// TestSweepReclaimsStraysWithoutReads drops a fraction of the
// replica→switch completion traffic under a write-only load, then
// lets the periodic sweep reclaim the stray dirty entries — no read
// ever probes them, so the read-path lazy cleanup cannot help.
func TestSweepReclaimsStraysWithoutReads(t *testing.T) {
	dropCompletions := func(msg simnet.Message) bool {
		pkt, ok := msg.(*wire.Packet)
		return ok && (pkt.Op == wire.OpWriteReply || pkt.Op == wire.OpWriteCompletion)
	}
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 512, Seed: 29,
		SweepInterval: 2 * time.Millisecond,
	})
	for r := 0; r < 3; r++ {
		c.Network().SetLink(c.ReplicaAddr(r), c.SwitchAddr(), simnet.LinkConfig{
			Latency: 5 * time.Microsecond, DropProb: 0.3, DropFilter: dropCompletions,
		})
	}
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 32, Duration: 20 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 1, Keys: 400,
	})
	if rep.Writes == 0 {
		t.Fatal("no writes completed")
	}
	// Settle: in-flight writes finish (or are lost for good), then the
	// sweeps run with the cluster idle.
	c.RunFor(20 * time.Millisecond)
	st := c.Scheduler().Stats
	if st.SweptStale == 0 {
		t.Fatal("periodic sweep reclaimed nothing despite dropped completions")
	}
	if st.LazyCleanups != 0 {
		t.Fatalf("write-only load still saw %d read-path cleanups", st.LazyCleanups)
	}
	if n := c.Scheduler().DirtyCount(); n != 0 {
		t.Fatalf("%d stray entries survived the sweep", n)
	}
}

// TestDroppedWriteRepliesDriveImmediateRetry pins the FlagDropped
// regression at cluster level: with a one-slot dirty set, concurrent
// writes collide, the switch answers the losers with synthesized
// FlagDropped replies, and the clients reissue immediately — the run
// makes progress and reports the drops distinctly from timeout
// retries.
func TestDroppedWriteRepliesDriveImmediateRetry(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 1, Seed: 41,
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 8, Duration: 10 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 1, Keys: 64,
	})
	if c.Scheduler().Stats.WritesDropped == 0 {
		t.Fatal("one-slot dirty set never rejected a write (test lost its trigger)")
	}
	if rep.Dropped == 0 {
		t.Fatal("write drops were not surfaced in Report.Dropped")
	}
	if rep.Writes == 0 {
		t.Fatalf("no write ever completed: %+v", rep)
	}
	// With the synthesized replies the clients never need the timeout
	// for dropped writes; any residual retries come from the timeout
	// path and must be rarer than the drops they replaced.
	if rep.Retries > rep.Dropped {
		t.Fatalf("timeout retries (%d) exceed drop-driven reissues (%d)", rep.Retries, rep.Dropped)
	}
	// A synchronous client still completes operations afterwards.
	cl := c.NewSyncClient()
	if err := cl.Set("after", []byte("v")); err != nil {
		t.Fatalf("Set after drop storm: %v", err)
	}
	if v, ok, err := cl.Get("after"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
}
