package cluster

import (
	"time"

	"harmonia/internal/metrics"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// Dist selects a key distribution.
type Dist int

// Key distributions.
const (
	Uniform Dist = iota
	Zipf09       // zipf, θ = 0.9 (the paper's skewed workload)
	Zipf12       // zipf, θ = 1.2 (heavy-tailed hot-spot workload)
)

// Mode selects the load-generation discipline.
type Mode int

// Load modes.
const (
	// Closed runs N virtual clients with one outstanding op each;
	// throughput saturates at the bottleneck's capacity. Used for the
	// throughput figures.
	Closed Mode = iota
	// Open issues ops at a Poisson rate regardless of completions.
	// Used for the latency-vs-throughput figures.
	Open
)

// LoadSpec describes a measurement run.
type LoadSpec struct {
	Mode       Mode
	Clients    int     // closed-loop virtual clients
	Rate       float64 // open-loop ops/second
	Duration   time.Duration
	Warmup     time.Duration
	WriteRatio float64
	Keys       int
	Dist       Dist
	// PinGroups shards load generation the way the data is sharded.
	// Closed loop: the Clients are split across the replica groups in
	// proportion to their capacity weights (evenly, for a uniform
	// cluster) and each sub-pool draws keys only from its group's
	// slice of the key space. This is the sharded load-generation mode
	// — groups saturate independently instead of the whole fleet
	// throttling on the slowest shard, and a 7-replica group receives
	// proportionally more offered load than a 3-replica one — and the
	// per-group completions land in Report.GroupOps. Open loop: each
	// Poisson arrival first draws a group in proportion to its weight,
	// then a key from that group's slice, so big shards are offered
	// proportionally more; the offered split lands in
	// Report.GroupOffered. Ignored for single-group clusters.
	PinGroups bool
	// Bucket, when > 0, also collects a completion time series
	// (Fig. 10).
	Bucket time.Duration
}

func (s *LoadSpec) fillDefaults() {
	if s.Clients <= 0 {
		s.Clients = 64
	}
	if s.Duration <= 0 {
		s.Duration = 50 * time.Millisecond
	}
	if s.Keys <= 0 {
		s.Keys = 100000
	}
	if s.Warmup < 0 {
		s.Warmup = 0
	}
}

// Report summarizes a run. Rates count only completions inside the
// measurement window (after warmup).
type Report struct {
	Duration        time.Duration
	Ops             uint64
	Reads, Writes   uint64
	Throughput      float64 // ops per second
	ReadThroughput  float64
	WriteThroughput float64
	Latency         *metrics.Histogram
	ReadLatency     *metrics.Histogram
	WriteLatency    *metrics.Histogram
	Retries         uint64
	// Dropped counts writes the switch rejected with a FlagDropped
	// reply (dirty set full); each was immediately reissued by the
	// client without waiting for RetryTimeout. Distinct from Retries,
	// which counts timeout-driven resends.
	Dropped    uint64
	Unanswered uint64 // open-loop ops with no reply by run end
	// Rebalances counts slot moves the autonomous rebalancer completed
	// during the measurement window (0 unless Config.AutoRebalance).
	Rebalances uint64
	Series     *metrics.TimeSeries
	// GroupOps counts completions per replica group (index = group);
	// the aggregate load generator's view of how the shards shared the
	// work. Always length Config.Groups.
	GroupOps []uint64
	// GroupOffered counts operations issued per replica group inside
	// the measurement window by a sharded (PinGroups) open-loop run —
	// the offered-load split, before any completions. Nil otherwise.
	GroupOffered []uint64
	// LatencyBreakdown decomposes the sampled ops' end-to-end latency
	// into the five trace phases (queue, service, network, retry,
	// frozen-stall — see PhaseBreakdown for each phase's boundaries),
	// overall and sliced per group and per switch. Nil unless
	// Config.Trace armed span sampling; the histograms then cover the
	// 1-in-SampleEvery traced subset of Ops.
	LatencyBreakdown *LatencyBreakdown
}

// opState tracks one in-flight logical operation. The master packet is
// embedded by value and the records are pooled on the cluster, so a
// completed op recycles both in one free-list push; what actually
// reaches the network is a per-transmission ShallowClone.
type opState struct {
	pkt         wire.Packet
	valueID     int64
	firstInvoke sim.Time
	timer       sim.Timer
	histIdx     int // recorder slot, -1 when not recording
}

// getOp takes an opState from the pool (zeroed by putOp).
func (c *Cluster) getOp() *opState {
	if n := len(c.opFree); n > 0 {
		st := c.opFree[n-1]
		c.opFree[n-1] = nil
		c.opFree = c.opFree[:n-1]
		return st
	}
	return &opState{}
}

// putOp recycles a completed op. Zeroing drops the payload reference
// (the store owns it now) and leaves an inert zero Timer; the stopped
// retry event may still point here but dead events never fire.
func (c *Cluster) putOp(st *opState) {
	*st = opState{}
	c.opFree = append(c.opFree, st)
}

// vclient is one virtual client: a closed-loop issuer or a slot pool
// for open-loop ops.
type vclient struct {
	c    *Cluster
	id   uint32
	addr simnet.NodeID

	gen     *opGen
	pending pendingTab
	nextReq uint64

	measuring  *measurement
	closedLoop bool

	// drops counts FlagDropped write rejections over the client's
	// lifetime (SyncClient surfaces it regardless of any measurement
	// window).
	drops uint64

	// onReply, when set, observes every matched reply (SyncClient).
	onReply func(pkt *wire.Packet)

	// retryFn is the long-lived retry callback handed to AfterCallT
	// with the opState as argument, so arming a retry timer captures
	// nothing per op.
	retryFn func(any)
}

// opGen produces the next operation from the workload spec.
type opGen struct {
	c     *Cluster
	kt    *keyTab
	keys  keyGen
	ratio float64
}

type keyGen interface{ Next() int }

// pinnedGen confines a generator to one group's shard of the key
// space: inner draws a shard-local rank, owned maps it to the global
// key index.
type pinnedGen struct {
	owned []int
	inner keyGen
}

func (p *pinnedGen) Next() int { return p.owned[p.inner.Next()] }

func (g *opGen) next() (idx int, write bool) {
	return g.keys.Next(), g.c.eng.Rand().Float64() < g.ratio
}

// measurement accumulates the report during the window.
type measurement struct {
	c          *Cluster
	start      sim.Time
	collect    bool
	rebal0     uint64 // cluster rebalance counter at window start
	ops        uint64
	reads      uint64
	writes     uint64
	retriesCnt uint64
	droppedCnt uint64
	groupOps   []uint64
	// groupOffered counts issued (not completed) ops per group; only a
	// sharded open-loop run allocates and fills it.
	groupOffered []uint64
	lat          *metrics.Histogram
	rlat         *metrics.Histogram
	wlat         *metrics.Histogram
	series       *metrics.TimeSeries
	// bd receives the sampled spans' phase decomposition; nil unless
	// the cluster's tracer is armed (see breakdown.go).
	bd *LatencyBreakdown
}

func (m *measurement) observe(write bool, group int, d time.Duration, at sim.Time) {
	if !m.collect {
		return
	}
	m.ops++
	// Groups added elastically mid-run extend the counter vector on
	// first completion; group counts only ever grow, so the report's
	// index = group ID mapping stays stable.
	for group >= len(m.groupOps) && len(m.groupOps) < len(m.c.groups) {
		m.groupOps = append(m.groupOps, 0)
	}
	if group >= 0 && group < len(m.groupOps) {
		m.groupOps[group]++
	}
	m.lat.Observe(d)
	if write {
		m.writes++
		m.wlat.Observe(d)
	} else {
		m.reads++
		m.rlat.Observe(d)
	}
	if m.series != nil {
		m.series.Add(time.Duration(at - m.start))
	}
}

// Recv implements simnet.Handler for the client node. The client is
// the reply's terminal consumer: it releases the packet after matching
// it against the pending table, except when an onReply observer
// (SyncClient) takes over the reference.
func (v *vclient) Recv(from simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return
	}
	if !pkt.IsReply() {
		pkt.Release()
		return
	}
	st, ok := v.pending.get(pkt.ReqID)
	if !ok {
		pkt.Release() // late duplicate of an already-completed op
		return
	}
	if pkt.Op == wire.OpWriteReply && pkt.Flags&wire.FlagDropped != 0 {
		// The switch dropped this write (dirty set full) and said so:
		// the op is not complete. Reissue it immediately — the reply
		// already cost a round trip, so there is no point burning the
		// rest of a RetryTimeout — and leave the pending entry (same
		// ReqID, same value: one logical op) in place. SyncClients
		// drive their own retry timer; don't disturb it.
		v.drops++
		v.measuring.noteDropped()
		if v.closedLoop {
			st.timer.Stop()
		}
		if st.pkt.Span != 0 {
			v.c.tracer.StampResend(st.pkt.Span, int32(v.addr))
		}
		v.send(st)
		pkt.Release()
		return
	}
	v.pending.del(pkt.ReqID)
	st.timer.Stop()
	now := v.c.eng.Now()
	isWrite := st.pkt.Op == wire.OpWrite
	v.measuring.observe(isWrite, int(pkt.Group), time.Duration(now-st.firstInvoke), now)
	if st.pkt.Span != 0 {
		// Close the span and fold its phase decomposition, then recycle
		// the slot; any late duplicate still carrying this reference is
		// rejected by the generation check from here on.
		if sp := v.c.tracer.Finish(st.pkt.Span, int32(v.addr)); sp != nil {
			v.measuring.observeSpan(sp, int(pkt.Group))
		}
		v.c.tracer.Release(st.pkt.Span)
	}
	if st.histIdx >= 0 {
		var observed int64
		if pkt.Op == wire.OpReadReply && pkt.Flags&wire.FlagNotFound == 0 {
			observed = decodeValue(pkt.Value)
		}
		v.c.hist.ret(st.histIdx, int64(now), observed)
	}
	v.c.putOp(st)
	if v.onReply != nil {
		v.onReply(pkt) // the observer takes the reference (SyncClient)
	} else {
		pkt.Release()
	}
	if v.closedLoop {
		v.issueNext()
	}
}

// issueNext starts the next closed-loop op.
func (v *vclient) issueNext() {
	idx, write := v.gen.next()
	v.issue(v.gen.kt, idx, write)
}

// issue sends one operation for key index idx (resolved through kt's
// precomputed names and object IDs) and arms the retry timer (closed
// loop only; open-loop ops are never retried).
func (v *vclient) issue(kt *keyTab, idx int, write bool) {
	v.nextReq++
	req := v.nextReq
	st := v.c.getOp()
	st.firstInvoke = v.c.eng.Now()
	st.histIdx = -1
	st.pkt = wire.Packet{
		ObjID:    kt.ids[idx],
		Key:      kt.names[idx],
		ClientID: v.id,
		ReqID:    req,
	}
	// A routing guess from the client's view of the slot table; the
	// switch front-end overrides it from its authoritative table, so a
	// stale guess costs nothing.
	st.pkt.Group = uint16(v.c.routeObj(st.pkt.ObjID))
	if write {
		st.pkt.Op = wire.OpWrite
		v.c.valueCtr++
		st.valueID = v.c.valueCtr
		st.pkt.Value = v.c.varena.encode(st.valueID)
	} else {
		st.pkt.Op = wire.OpRead
	}
	if v.c.cfg.RecordHistory {
		st.histIdx = v.c.hist.invoke(uint64(st.pkt.ObjID), write, st.valueID, int64(st.firstInvoke))
	}
	if t := v.c.tracer; t != nil {
		st.pkt.Span = t.Sample(write, int16(st.pkt.Group),
			int16(v.c.rack.SwitchOfObj(st.pkt.ObjID)), int32(v.addr))
	}
	v.pending.put(req, st)
	v.send(st)
}

func (v *vclient) send(st *opState) {
	v.c.net.Send(v.addr, v.c.switchAddrForObj(st.pkt.ObjID), st.pkt.FlightClone())
	if v.closedLoop {
		st.timer = v.c.eng.AfterCallT(v.c.cfg.RetryTimeout, v.retryFn, st)
	}
}

func (v *vclient) retry(st *opState) {
	if _, still := v.pending.get(st.pkt.ReqID); !still {
		return
	}
	v.measuring.noteRetry()
	if st.pkt.Span != 0 {
		v.c.tracer.StampResend(st.pkt.Span, int32(v.addr))
	}
	v.send(st)
}

func (m *measurement) noteRetry() {
	if m.collect {
		m.retriesCnt++
	}
}

func (m *measurement) noteDropped() {
	if m.collect {
		m.droppedCnt++
	}
}

func (m *measurement) noteOffered(group int) {
	if !m.collect || group < 0 {
		return
	}
	for group >= len(m.groupOffered) && len(m.groupOffered) < len(m.c.groups) {
		m.groupOffered = append(m.groupOffered, 0)
	}
	if group < len(m.groupOffered) {
		m.groupOffered[group]++
	}
}

// RunLoad executes a measurement and returns the report. The cluster
// keeps running afterwards; RunLoad can be called repeatedly (e.g.
// around failure injection).
func (c *Cluster) RunLoad(spec LoadSpec) Report {
	return c.RunLoads([]LoadSpec{spec})[0]
}

// RunLoads drives several load groups concurrently through one shared
// warmup+measurement window and reports each separately. The paper's
// mixed-rate experiments (read throughput under a fixed write rate,
// Figs. 6a and 9) combine a closed-loop read group with an open-loop
// write group this way. Warmup and Duration are taken from the first
// spec.
func (c *Cluster) RunLoads(specs []LoadSpec) []Report {
	if len(specs) == 0 {
		return nil
	}
	for i := range specs {
		specs[i].fillDefaults()
	}
	window := specs[0].Duration
	warmup := specs[0].Warmup

	type group struct {
		meas    *measurement
		clients []*vclient
	}
	groups := make([]group, len(specs))
	for gi := range specs {
		spec := specs[gi]
		meas := &measurement{
			c:        c,
			groupOps: make([]uint64, len(c.groups)),
			lat:      metrics.NewHistogram(),
			rlat:     metrics.NewHistogram(),
			wlat:     metrics.NewHistogram(),
		}
		if spec.Bucket > 0 {
			meas.series = metrics.NewTimeSeries(spec.Bucket)
		}
		if c.tracer != nil {
			meas.bd = newLatencyBreakdown(len(c.groups), c.rack.Switches())
		}
		newKeysN := func(n int) keyGen {
			switch spec.Dist {
			case Zipf09:
				return newZipfGen(n, 0.9, c.eng.Rand())
			case Zipf12:
				return newZipfGen(n, 1.2, c.eng.Rand())
			default:
				return newUniformGen(n, c.eng.Rand())
			}
		}
		newKeys := func() keyGen { return newKeysN(spec.Keys) }
		kt := c.keyTab(spec.Keys)
		var clients []*vclient
		if spec.Mode == Closed {
			if spec.PinGroups && len(c.groups) > 1 {
				// Sharded load generation: the pool is split across the
				// groups by capacity weight — the client-side router's
				// service-rate calibration — and each sub-pool is
				// confined to its group's slice of the key space
				// (shard-local ranks keep the distribution's shape
				// within the slice). Uniform weights reproduce the
				// historical even split exactly.
				owned := c.ownedKeyIndices(spec.Keys)
				shares := workload.Apportion(spec.Clients, c.GroupWeights())
				for g, idxs := range owned {
					n := shares[g]
					if len(idxs) == 0 {
						continue // degenerate: shard owns no keys
					}
					for i := 0; i < n; i++ {
						gen := &opGen{c: c, kt: kt, keys: &pinnedGen{owned: idxs, inner: newKeysN(len(idxs))}, ratio: spec.WriteRatio}
						clients = append(clients, c.newVClient(meas, gen, true))
					}
				}
			} else {
				clients = make([]*vclient, spec.Clients)
				for i := range clients {
					clients[i] = c.newVClient(meas, &opGen{c: c, kt: kt, keys: newKeys(), ratio: spec.WriteRatio}, true)
				}
			}
			for _, v := range clients {
				v.issueNext()
			}
		} else {
			// Open loop: one Poisson arrival stream drives the whole
			// cluster — a single event-queue control plane in front of
			// the per-group data planes. nextOp decides what each
			// arrival issues.
			v := c.newVClient(meas, nil, false)
			clients = []*vclient{v}
			var nextOp func()
			if spec.PinGroups && len(c.groups) > 1 {
				// Sharded open loop: each arrival first draws a replica
				// group in proportion to its capacity weight, then a
				// key from that group's slice of the key space
				// (shard-local ranks keep the distribution's shape
				// within the slice). A weight-blind uniform key draw
				// would under-offer big shards — a 2:1 weighted rack
				// must see a 2:1 offered split — so the group draw goes
				// through the apportioned sampler and the realized
				// split lands in Report.GroupOffered.
				// The split is keyed to the topology epoch: an elastic
				// membership change mid-run (group added, retired, or
				// re-weighted) rebuilds the group sampler and the
				// shard-local key generators on the next arrival, so
				// offered load follows the LIVE weights within one op.
				var gens []*opGen
				var pick *workload.WeightedIndex
				var topoSeen uint64
				rebuild := func() {
					topoSeen = c.rack.TopoEpoch()
					owned := c.ownedKeyIndices(spec.Keys)
					weights := c.GroupWeights()
					gens = make([]*opGen, len(owned))
					for g, idxs := range owned {
						if len(idxs) == 0 {
							// Degenerate: the shard owns no keys and can
							// never be offered work.
							weights[g] = 0
							continue
						}
						gens[g] = &opGen{c: c, kt: kt, keys: &pinnedGen{owned: idxs, inner: newKeysN(len(idxs))}, ratio: spec.WriteRatio}
					}
					pick = workload.NewWeightedIndex(weights, c.eng.Rand())
				}
				rebuild()
				meas.groupOffered = make([]uint64, len(c.groups))
				nextOp = func() {
					if c.rack.TopoEpoch() != topoSeen {
						rebuild()
					}
					g := pick.Next()
					meas.noteOffered(g)
					idx, write := gens[g].next()
					v.issue(kt, idx, write)
				}
			} else {
				v.gen = &opGen{c: c, kt: kt, keys: newKeys(), ratio: spec.WriteRatio}
				nextOp = func() { v.issueNext() }
			}
			rate := spec.Rate
			// Poisson arrivals at rate.
			var arrive func()
			stop := c.eng.Now() + sim.Time(warmup+window)
			arrive = func() {
				if c.eng.Now() >= stop {
					return
				}
				nextOp()
				gap := time.Duration(c.eng.Rand().ExpFloat64() / rate * float64(time.Second))
				c.eng.After(gap, arrive)
			}
			c.eng.After(0, arrive)
		}
		groups[gi] = group{meas: meas, clients: clients}
	}

	// Shared warmup, then one measurement window for all groups.
	c.eng.RunFor(warmup)
	for _, g := range groups {
		g.meas.start = c.eng.Now()
		g.meas.collect = true
		g.meas.rebal0 = c.rebalanced
	}
	c.eng.RunFor(window)
	out := make([]Report, len(groups))
	for gi, g := range groups {
		g.meas.collect = false
		rep := Report{
			Duration: window,
			Ops:      g.meas.ops, Reads: g.meas.reads, Writes: g.meas.writes,
			Throughput:      float64(g.meas.ops) / window.Seconds(),
			ReadThroughput:  float64(g.meas.reads) / window.Seconds(),
			WriteThroughput: float64(g.meas.writes) / window.Seconds(),
			Latency:         g.meas.lat, ReadLatency: g.meas.rlat, WriteLatency: g.meas.wlat,
			Retries:          g.meas.retriesCnt,
			Dropped:          g.meas.droppedCnt,
			Rebalances:       c.rebalanced - g.meas.rebal0,
			Series:           g.meas.series,
			GroupOps:         g.meas.groupOps,
			GroupOffered:     g.meas.groupOffered,
			LatencyBreakdown: g.meas.bd,
		}
		// Tear down: detach clients so the next run starts clean.
		for _, v := range g.clients {
			v.closedLoop = false
			v.pending.each(func(st *opState) {
				st.timer.Stop()
				if st.pkt.Span != 0 {
					// Unanswered op: give its span back so successive
					// runs never drain the table. A straggler reply
					// carrying the stale reference stamps nothing.
					c.tracer.Release(st.pkt.Span)
					st.pkt.Span = 0
				}
				rep.Unanswered++
			})
		}
		out[gi] = rep
	}
	return out
}

// newVClient registers a fresh virtual client node.
func (c *Cluster) newVClient(meas *measurement, gen *opGen, closed bool) *vclient {
	id := uint32(len(c.clients) + 1) // 0 reserved for the priming client
	v := &vclient{
		c: c, id: id, addr: clientBase + simnet.NodeID(id),
		gen:       gen,
		measuring: meas, closedLoop: closed,
	}
	v.retryFn = func(a any) { v.retry(a.(*opState)) }
	c.clients = append(c.clients, v)
	c.net.AddNode(v.addr, v, simnet.ProcConfig{Workers: 0})
	return v
}
