package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/wire"
)

// liveSlotCounts tallies slots per owning group and fails on any slot
// owned by a retired group — the coverage invariant every elastic
// operation must preserve.
func liveSlotCounts(t *testing.T, c *Cluster) []int {
	t.Helper()
	counts := make([]int, c.Groups())
	for slot, g := range c.SlotTable() {
		if g < 0 || g >= c.Groups() || !c.rack.Live(g) {
			t.Fatalf("slot %d owned by non-live group %d", slot, g)
		}
		counts[g]++
	}
	return counts
}

func assertNothingFrozen(t *testing.T, c *Cluster) {
	t.Helper()
	for slot := 0; slot < wire.NumSlots; slot++ {
		if c.rack.Frozen(slot) {
			t.Fatalf("slot %d left frozen", slot)
		}
	}
}

// TestElasticAddGroupSeedsAndServes scales a uniform cluster out by
// one group: the new group must receive a weight-fair slot share
// without stranding any slot or emptying any donor, and must serve
// reads and writes for its seeded keys end to end.
func TestElasticAddGroupSeedsAndServes(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 4, Seed: 11})
	cl := c.NewSyncClient()
	// Touch some keys so the heat histogram has a signal to place by.
	for i := 0; i < 64; i++ {
		if err := cl.Set(keyName(i), []byte("pre")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	epoch0 := c.rack.TopoEpoch()
	g, err := c.AddGroupWait(GroupSpec{Protocol: Chain})
	if err != nil {
		t.Fatalf("AddGroupWait: %v", err)
	}
	if g != 4 || c.Groups() != 5 || !c.rack.Live(g) {
		t.Fatalf("g=%d groups=%d live=%v", g, c.Groups(), c.rack.Live(g))
	}
	if c.rack.TopoEpoch() <= epoch0 {
		t.Fatal("topology epoch did not advance")
	}
	counts := liveSlotCounts(t, c)
	for lg, n := range counts {
		if c.rack.Live(lg) && n == 0 {
			t.Fatalf("live group %d owns zero slots after scale-out: %v", lg, counts)
		}
	}
	// Uniform weights: the new share should be near 256/5.
	if counts[g] < wire.NumSlots/5-8 {
		t.Fatalf("new group seeded only %d slots: %v", counts[g], counts)
	}
	assertNothingFrozen(t, c)
	// Existing data survived the handoffs, and keys now routed to the
	// new group serve reads and writes through it.
	served := false
	for i := 0; i < 64; i++ {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != "pre" {
			t.Fatalf("Get(%s) = %q %v %v", keyName(i), v, ok, err)
		}
		if cl.LastGroup() == g {
			served = true
			if err := cl.Set(keyName(i), []byte("post")); err != nil {
				t.Fatalf("Set via new group: %v", err)
			}
		}
	}
	if !served {
		t.Fatal("no key routed to the new group")
	}
}

// TestElasticAddGroupWeightScaleRules pins the explicit/derived weight
// scale guard at runtime: a derived-weight cluster rejects an explicit
// weight and vice versa — the same all-or-none rule assembly enforces.
func TestElasticAddGroupWeightScaleRules(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 3})
	if _, _, err := c.AddGroup(GroupSpec{Protocol: Chain, Weight: 2}); err == nil {
		t.Fatal("derived-weight cluster accepted an explicit weight")
	}
	ec := New(Config{GroupSpecs: []GroupSpec{
		{Protocol: Chain, Replicas: 3, Weight: 2},
		{Protocol: Chain, Replicas: 3, Weight: 1},
	}, UseHarmonia: true, Seed: 3})
	if _, _, err := ec.AddGroup(GroupSpec{Protocol: Chain, Replicas: 3}); err == nil {
		t.Fatal("explicit-weight cluster accepted a derived weight")
	}
	if _, err := ec.AddGroupWait(GroupSpec{Protocol: Chain, Replicas: 3, Weight: 1.5}); err != nil {
		t.Fatalf("explicit-weight AddGroup: %v", err)
	}
}

// TestElasticRemoveGroupRetiresAndServes scales in: the retired
// group's slots land on the survivors by weight, its data stays
// readable, its member nodes shut down, and the retired ID rejects
// further operations.
func TestElasticRemoveGroupRetiresAndServes(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 17})
	cl := c.NewSyncClient()
	for i := 0; i < 64; i++ {
		if err := cl.Set(keyName(i), []byte("keep")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := c.RemoveGroup(1); err != nil {
		t.Fatalf("RemoveGroup: %v", err)
	}
	if c.rack.Live(1) {
		t.Fatal("group 1 still live")
	}
	counts := liveSlotCounts(t, c)
	if counts[1] != 0 {
		t.Fatalf("retired group still owns %d slots", counts[1])
	}
	assertNothingFrozen(t, c)
	for i := 0; i < c.groups[1].n; i++ {
		if !c.net.IsDown(c.groupAddr(1, i)) {
			t.Fatalf("retired member %d still up", i)
		}
	}
	for i := 0; i < 64; i++ {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != "keep" {
			t.Fatalf("Get(%s) after retirement = %q %v %v", keyName(i), v, ok, err)
		}
		if g := cl.LastGroup(); g == 1 {
			t.Fatalf("key %s still served by retired group", keyName(i))
		}
	}
	// The retired ID is permanently dead.
	if err := c.RemoveGroup(1); err == nil {
		t.Fatal("double retirement accepted")
	}
	if err := c.CrashReplicaIn(1, 0); err == nil {
		t.Fatal("crash in retired group accepted")
	}
	if _, err := c.StartRespecGroup(1, GroupSpec{Protocol: Chain}); err == nil {
		t.Fatal("respec of retired group accepted")
	}
	// Scale-in to a single group, then reject removing the last one.
	if err := c.RemoveGroup(2); err != nil {
		t.Fatalf("RemoveGroup(2): %v", err)
	}
	if err := c.RemoveGroup(0); err == nil {
		t.Fatal("removing the last live group accepted")
	}
}

// TestElasticRemoveGroupClientTableTravels is the lost-reply-retry
// regression across group retirement (the RemoveGroup analog of
// TestMigrateClientTableTravels): a write the departing group executed
// whose reply was dropped keeps being retried; after retirement the
// retry lands on a destination group, which must REPLAY the recorded
// reply from the migrated at-most-once table instead of re-executing
// the write over a newer committed value. NOPaxos's sync-lagged
// followers are the most sensitive detector.
func TestElasticRemoveGroupClientTableTravels(t *testing.T) {
	for seed := int64(80); seed < 86; seed++ {
		c := New(Config{
			Protocol: NOPaxos, Replicas: 3, UseHarmonia: true, Groups: 3,
			RecordHistory: true, Seed: seed, DropProb: 0.01,
		})
		const keys = 96
		var r *Reconfig
		c.Engine().After(4*time.Millisecond, func() {
			var err error
			r, err = c.StartRemoveGroup(1)
			if err != nil {
				t.Errorf("seed %d: StartRemoveGroup: %v", seed, err)
			}
		})
		c.RunLoad(LoadSpec{
			Mode: Closed, Clients: 8, Duration: 10 * time.Millisecond,
			Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Zipf09,
		})
		// Under drops the evacuation drains can retry for a while;
		// give the retirement sim time in bounded chunks.
		for i := 0; i < 12 && (r == nil || !r.Done()); i++ {
			c.RunFor(50 * time.Millisecond)
		}
		if r == nil || !r.Done() || r.Err() != nil {
			t.Fatalf("seed %d: retirement did not complete: %+v", seed, r)
		}
		if c.rack.Live(1) {
			t.Fatalf("seed %d: group 1 still live", seed)
		}
		liveSlotCounts(t, c)
		assertNothingFrozen(t, c)
		for g := 0; g < c.Groups(); g++ {
			res := c.CheckLinearizabilityGroup(g)
			if !res.Decided {
				t.Fatalf("seed %d group %d undecided: %s", seed, g, res.Reason)
			}
			if !res.Ok {
				t.Fatalf("seed %d group %d violated linearizability across retirement: %s", seed, g, res.Reason)
			}
		}
	}
}

// TestElasticRespecGroupSwapsMembers changes a live group's protocol
// and replica count in place: same group ID, same slots, fresh member
// set at the next incarnation's addresses, data and sequence space
// carried over.
func TestElasticRespecGroupSwapsMembers(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 23})
	cl := c.NewSyncClient()
	for i := 0; i < 48; i++ {
		if err := cl.Set(keyName(i), []byte("v1")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	oldAddrs := c.groups[1].addrs()
	slots0 := liveSlotCounts(t, c)
	if err := c.RespecGroup(1, GroupSpec{Protocol: VR, Replicas: 5}); err != nil {
		t.Fatalf("RespecGroup: %v", err)
	}
	grp := c.groups[1]
	if grp.inc != 1 || grp.n != 5 || grp.spec.Protocol != VR {
		t.Fatalf("respec state: inc=%d n=%d proto=%v", grp.inc, grp.n, grp.spec.Protocol)
	}
	if grp.sched == nil || !grp.sched.Ready() {
		t.Fatal("respec'd scheduler not ready (sequence space not adopted)")
	}
	for _, a := range oldAddrs {
		if !c.net.IsDown(a) {
			t.Fatalf("old member %d still up after respec", a)
		}
	}
	// Slots did not move.
	slots1 := liveSlotCounts(t, c)
	if slots1[1] != slots0[1] {
		t.Fatalf("respec moved slots: %v -> %v", slots0, slots1)
	}
	assertNothingFrozen(t, c)
	// Data survived into the new member set; reads and writes flow.
	for i := 0; i < 48; i++ {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("Get(%s) after respec = %q %v %v", keyName(i), v, ok, err)
		}
		if err := cl.Set(keyName(i), []byte("v2")); err != nil {
			t.Fatalf("Set after respec: %v", err)
		}
	}
	// A second respec lands in the next incarnation sub-window.
	if err := c.RespecGroup(1, GroupSpec{Protocol: Chain, Replicas: 3}); err != nil {
		t.Fatalf("second respec: %v", err)
	}
	if c.groups[1].inc != 2 {
		t.Fatalf("inc=%d after second respec, want 2", c.groups[1].inc)
	}
	if v, ok, err := cl.Get(keyName(5)); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after second respec = %q %v %v", v, ok, err)
	}
}

// TestElasticReassignDeadSwitchRestoresCoverage kills one switch of a
// two-switch rack for good and batch-recovers its slot shard from the
// victims' replica stores: afterwards every slot is served by a live
// group on the surviving switch, the victims are retired, and every
// pre-crash value reads back.
func TestElasticReassignDeadSwitchRestoresCoverage(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 4, Switches: 2, Seed: 31})
	cl := c.NewSyncClient()
	for i := 0; i < 96; i++ {
		if err := cl.Set(keyName(i), []byte("durable")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := c.ReassignDeadSwitch(1); err == nil {
		t.Fatal("reassign of an alive switch accepted")
	}
	if err := c.CrashSwitch(1); err != nil {
		t.Fatalf("CrashSwitch: %v", err)
	}
	if err := c.ReassignDeadSwitch(1); err != nil {
		t.Fatalf("ReassignDeadSwitch: %v", err)
	}
	for slot := 0; slot < wire.NumSlots; slot++ {
		if c.rack.SwitchOfSlot(slot) == 1 {
			t.Fatalf("slot %d still mapped to the dead switch", slot)
		}
	}
	counts := liveSlotCounts(t, c)
	if c.rack.Live(2) || c.rack.Live(3) {
		t.Fatalf("victim groups still live: %v %v", c.rack.Live(2), c.rack.Live(3))
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("survivors own %v slots", counts)
	}
	assertNothingFrozen(t, c)
	// Every committed write recovered from the victims' stores.
	for i := 0; i < 96; i++ {
		v, ok, err := cl.Get(keyName(i))
		if err != nil || !ok || string(v) != "durable" {
			t.Fatalf("Get(%s) after reassignment = %q %v %v", keyName(i), v, ok, err)
		}
		if err := cl.Set(keyName(i), []byte("fresh")); err != nil {
			t.Fatalf("Set after reassignment: %v", err)
		}
	}
}

// TestElasticMigrateChaosMatrix is the elastic hardening matrix:
// every elastic operation × a chaos mode (packet drops, reordering, or
// a replica crash mid-reconfiguration), each run in the middle of a
// live recorded load window. Per cell: the operation settles, the
// coverage invariants hold (every slot owned by a live group, nothing
// frozen), and every group's history slice linearizes.
func TestElasticMigrateChaosMatrix(t *testing.T) {
	ops := []string{"add", "remove", "respec", "reassign"}
	chaosModes := []string{"drops", "reorder", "crash"}
	for _, op := range ops {
		for _, chaos := range chaosModes {
			op, chaos := op, chaos
			t.Run(fmt.Sprintf("%s/%s", op, chaos), func(t *testing.T) {
				elasticChaosCase(t, op, chaos)
			})
		}
	}
}

func elasticChaosCase(t *testing.T, op, chaos string) {
	cfg := Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3,
		RecordHistory: true, Seed: 47 + int64(len(op))*13,
	}
	if op == "reassign" {
		cfg.Groups, cfg.Switches = 4, 2
	}
	switch chaos {
	case "drops":
		cfg.DropProb = 0.01
	case "reorder":
		cfg.ReorderProb = 0.02
		cfg.ReorderDelay = 30 * time.Microsecond
	}
	c := New(cfg)
	const keys = 96

	var r *Reconfig
	start := func(rc *Reconfig, err error) {
		if err != nil {
			t.Errorf("start %s: %v", op, err)
			return
		}
		r = rc
	}
	c.Engine().After(4*time.Millisecond, func() {
		switch op {
		case "add":
			_, rc, err := c.AddGroup(GroupSpec{Protocol: Chain})
			start(rc, err)
		case "remove":
			start(c.StartRemoveGroup(1))
		case "respec":
			start(c.StartRespecGroup(1, GroupSpec{Protocol: Chain, Replicas: 5}))
		case "reassign":
			if err := c.CrashSwitch(1); err != nil {
				t.Errorf("CrashSwitch: %v", err)
			}
			start(c.StartReassignDeadSwitch(1))
		}
	})
	if chaos == "crash" {
		// Fail a replica of an involved group while the
		// reconfiguration's drain or agreement is in flight — except
		// for reassignment, where the victims retire almost instantly:
		// there the replica dies BEFORE the switch, so recovery must
		// max-merge around a store that stopped early.
		when := 4*time.Millisecond + 200*time.Microsecond
		g := 1
		switch op {
		case "add":
			g = 0 // a seeding donor
		case "reassign":
			g, when = 2, 3800*time.Microsecond // a victim, pre-crash
		}
		c.Engine().After(when, func() {
			if err := c.CrashReplicaIn(g, 1); err != nil {
				t.Errorf("CrashReplicaIn: %v", err)
			}
		})
	}

	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 12, Duration: 10 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Uniform,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(60 * time.Millisecond) // settle handoffs, agreements, retries

	if r == nil {
		t.Fatal("reconfiguration never started")
	}
	if !r.Done() {
		t.Fatalf("%s reconfiguration stuck", op)
	}
	if r.Err() != nil {
		t.Fatalf("%s reconfiguration failed: %v", op, r.Err())
	}
	counts := liveSlotCounts(t, c)
	assertNothingFrozen(t, c)
	switch op {
	case "add":
		if !c.rack.Live(3) || counts[3] == 0 {
			t.Fatalf("added group live=%v slots=%v", c.rack.Live(3), counts)
		}
	case "remove":
		if c.rack.Live(1) || counts[1] != 0 {
			t.Fatalf("removed group live=%v slots=%d", c.rack.Live(1), counts[1])
		}
	case "respec":
		if c.groups[1].inc != 1 || c.groups[1].n != 5 {
			t.Fatalf("respec state: inc=%d n=%d", c.groups[1].inc, c.groups[1].n)
		}
	case "reassign":
		for slot := 0; slot < wire.NumSlots; slot++ {
			if c.rack.SwitchOfSlot(slot) == 1 {
				t.Fatalf("slot %d still on the dead switch", slot)
			}
		}
	}
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d violated linearizability across %s/%s: %s", g, op, chaos, res.Reason)
		}
	}
}

var routeSink int

// TestElasticTopologyRouteLookupAllocFree pins the client hot path's
// allocation budget: a route lookup through the epoch-versioned
// topology — slot → group and slot → switch — is a pair of array
// loads, 0 allocs/op, even after elastic membership changes.
func TestElasticTopologyRouteLookupAllocFree(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 4, Seed: 7})
	if _, err := c.AddGroupWait(GroupSpec{Protocol: Chain}); err != nil {
		t.Fatalf("AddGroupWait: %v", err)
	}
	topo := c.rack.Topo()
	id := wire.HashKey("hot-key")
	allocs := testing.AllocsPerRun(1000, func() {
		routeSink += topo.RouteObj(id)
		routeSink += topo.SwitchOfObj(id)
		routeSink += c.routeObj(id)
		routeSink += int(c.switchAddrForObj(id))
	})
	if allocs != 0 {
		t.Fatalf("topology route lookup allocates %v allocs/op, want 0", allocs)
	}
}
