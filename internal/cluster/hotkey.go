package cluster

// Hot-key replication: the cluster-side lifecycle for keys the switch
// spreads. The rebalancer's escape signal (a fired-but-empty tick, see
// rebalance.LastStuck) nominates the stuck slot's dominant key; the
// manager promotes it onto 2–4 holder groups of the same switch
// domain, seeds their copies from the home group with the migration
// machinery's neutered-sequence trick (epoch-0 objects pass the §7
// read checks at every replica, exactly like a migrated slot), and
// from then on:
//
//   - the switch round-robins the key's clean reads across home +
//     holders (frontend.pickHolder) — but only while the entry's
//     invalid bitmap is zero;
//   - every write to the key invalidates all holder copies in its
//     switch traversal (Hermes' broadcast-invalidate, with the switch
//     as the broadcast point) and the key's reads serialize at the
//     home group, through its dirty set, until a refresh catches up;
//   - when the write's completion traverses the switch, the front-end
//     cues refreshHot (SetHotWriteHook), which copies the newest
//     committed value to the holders and validates the entry with the
//     write generation it captured — a refresh that lost a race to a
//     newer write fails validation and is simply retried;
//   - the periodic tick is the retry backstop (the refresh completion
//     travels the lossy controller→switch path) and the demotion
//     clock: a key whose decayed per-key heat stays at or below
//     CoolOps for CoolRounds consecutive ticks is demoted and its
//     foreign-slot copies dropped.
//
// Linearizability: a holder serves a read only when the entry is valid
// at the switch. Valid means the holders hold the newest COMMITTED
// value and no later write has traversed the switch (any such write
// would have flipped the bitmap in that same traversal, before its
// data packet could reach a replica). The refresh itself only runs
// when the home partition's dirty set has no entry for the key —
// the same committed-everywhere barrier the migration drain uses —
// so the value it installs really is the newest sequenced write.

import (
	"fmt"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/rebalance"
	"harmonia/internal/store"
	"harmonia/internal/trace"
	"harmonia/internal/wire"
)

// hotKeyEntry is one promoted key's cluster-side state. The switch
// front-end owns the data-plane half (holders, invalid bitmap, write
// generation, round-robin cursor); this records where the key lives
// and the lifecycle counters.
type hotKeyEntry struct {
	id      wire.ObjectID
	slot    int
	sw      int   // switch domain the key was promoted on
	holders []int // holder groups (global indices), home excluded

	cool       int  // consecutive cold ticks toward demotion
	refreshing bool // a refresh copy is in flight
}

// startHotKeys arms the hot-key manager: the per-front write hooks
// (event-driven refresh) and the lifecycle tick (refresh retry,
// demotion cool-down, topology-change cleanup).
func (c *Cluster) startHotKeys() {
	c.hotKeys = make(map[wire.ObjectID]*hotKeyEntry)
	c.hotKeyCfg = c.cfg.HotKey.Filled()
	for s := 0; s < c.rack.Switches(); s++ {
		c.rack.Front(s).SetHotWriteHook(func(id wire.ObjectID, gen uint64) {
			// Deferred one event: the hook fires BEFORE the completion
			// reaches its scheduler partition, so the dirty-set entry
			// the refresh barrier checks is still standing. After(0)
			// runs once the traversal (and the dirty delete) finished.
			c.eng.After(0, func() {
				if st := c.hotKeys[id]; st != nil {
					c.refreshHot(st)
				}
			})
		})
	}
	iv := c.cfg.Rebalance.Interval
	if len(c.policies) > 0 {
		iv = c.policies[0].Config().Interval
	}
	if iv <= 0 {
		iv = time.Millisecond
	}
	var tick func()
	tick = func() {
		c.hotKeyTick()
		c.eng.After(iv, tick)
	}
	c.eng.After(iv, tick)
}

// maybePromoteHot runs the promotion policy for one stuck switch
// domain: if the stuck slot's hottest-key register shows a dominant
// key, promote it onto the domain's highest-capacity other groups.
func (c *Cluster) maybePromoteHot(s int, policy *rebalance.Policy, front *core.Frontend) {
	slot, stuck := policy.LastStuck()
	if !stuck {
		return
	}
	kh := front.KeyHeatOf(slot)
	if !c.hotKeyCfg.ShouldPromote(kh.Votes, front.HeatOf(slot).Total()) {
		return
	}
	id := kh.Cand
	if _, ok := c.hotKeys[id]; ok {
		return
	}
	// One promoted key per slot: demotion cleans a holder's copy up
	// with DropSlot, which is exact only when the key is the slot's
	// sole foreign object there.
	for _, st := range c.hotKeys {
		if st.slot == slot {
			return
		}
	}
	home := c.rack.RouteOf(slot)
	topo := c.rack.Topo()
	groups := c.rack.Groups()
	weights := make([]float64, groups)
	for g := 0; g < groups; g++ {
		if topo.Live(g) {
			weights[g] = topo.Weight(g)
		}
	}
	// Holders must live behind the SAME front-end: a spread read is
	// handed to the holder's scheduler partition in the home switch's
	// traversal, and partitions are hosted only on their owning switch.
	live := func(g int) bool {
		return topo.Live(g) && topo.SwitchOfGroup(g) == s
	}
	holders := c.hotKeyCfg.PickHolders(home, groups, weights, live)
	if len(holders) == 0 {
		return
	}
	c.promoteObject(id, slot, s, holders)
}

// promoteObject installs a hot-key table entry (all holders invalid,
// so reads stay home until the first refresh lands) and starts the
// seeding refresh.
func (c *Cluster) promoteObject(id wire.ObjectID, slot, sw int, holders []int) {
	c.rack.Front(sw).Promote(id, holders)
	st := &hotKeyEntry{id: id, slot: slot, sw: sw, holders: append([]int(nil), holders...)}
	c.hotKeys[id] = st
	c.hotKeyOrder = append(c.hotKeyOrder, id)
	c.hotKeyPromotions++
	c.rec.Emit(trace.Event{
		Kind: trace.EvHotPromote, Switch: int16(sw), Group: int16(c.rack.RouteOf(slot)),
		Slot: int16(slot), Arg: uint64(id), Arg2: uint64(len(holders)),
	})
	c.refreshHot(st)
}

// refreshHot copies the promoted key's newest committed value from the
// home group to every holder and validates the switch entry against
// the write generation captured at the start — the Hermes refresh.
func (c *Cluster) refreshHot(st *hotKeyEntry) {
	if st.refreshing {
		return
	}
	front := c.rack.Front(st.sw)
	gen, ok := front.WriteGen(st.id)
	if !ok {
		return // demoted at the switch; the tick reconciles
	}
	home := c.rack.RouteOf(st.slot)
	// Commit barrier: a standing dirty-set entry means a write was
	// sequenced whose value may not be applied anywhere yet — a
	// refresh now could validate generation N while carrying N−1's
	// value. Wait for the completion (whose traversal re-cues us).
	if sched := front.Group(home); sched != nil && sched.DirtyKey(st.id) {
		return
	}
	var best store.Object
	found := false
	for i, rep := range c.groups[home].replicas {
		if c.net.IsDown(c.groupAddr(home, i)) {
			continue
		}
		if o, ok := rep.GetObject(st.id); ok {
			if !found || best.Seq.Less(o.Seq) {
				best, found = o, true
			}
		}
	}
	if !found {
		return // never written: holders stay invalid, reads stay home
	}
	st.refreshing = true
	val := append([]byte(nil), best.Value...)
	seqN := best.Seq.N
	// One control round trip plus the single-object transfer cost —
	// the same model as the migration copy, for one key.
	delay := 2*c.cfg.LinkLatency + migratePerObjectCost
	c.eng.After(delay, func() {
		st.refreshing = false
		if c.hotKeys[st.id] != st {
			return // demoted while the copy was in flight
		}
		// Epoch-0 sequence neutering, exactly like a migrated object:
		// the holder's write-order guard is untouched and its replicas'
		// §7 fast-read checks pass.
		install := map[wire.ObjectID]store.Object{
			st.id: {Value: val, Seq: wire.Seq{Epoch: 0, N: seqN}},
		}
		curHome := c.rack.RouteOf(st.slot)
		for _, g := range st.holders {
			if g == curHome || !c.rack.Live(g) {
				continue
			}
			for _, rep := range c.groups[g].replicas {
				rep.InstallSlot(install)
			}
		}
		// The refresh completion travels the real (lossy) network to
		// the switch; its Seq carries the captured write generation,
		// and the front-end consumes it without touching a scheduler.
		// If it drops, the entry stays invalid and the tick retries.
		c.net.Send(controllerAddr, switchAddrOf(st.sw), &wire.Packet{
			Op: wire.OpWriteCompletion, Flags: wire.FlagRefresh,
			ObjID: st.id, Seq: wire.Seq{N: gen},
		})
		c.rec.Emit(trace.Event{
			Kind: trace.EvHotRefresh, Switch: int16(st.sw), Group: int16(curHome),
			Slot: int16(st.slot), Arg: uint64(st.id), Arg2: gen,
		})
		// A write sequenced while this copy was in flight makes the
		// completion above fail generation validation — and that
		// write's own hook found refreshing=true and gave up. Re-cue
		// here, or the entry stays invalid until the next tick.
		if g2, ok := front.WriteGen(st.id); ok && g2 != gen {
			c.refreshHot(st)
		}
	})
}

// hotKeyTick reconciles every promoted key once per interval: demote
// entries the topology moved out from under (cross-switch home move,
// switch reboot, vanished holders), retry refreshes whose completion
// was lost, and advance the demotion cool-down.
func (c *Cluster) hotKeyTick() {
	if len(c.hotKeys) == 0 {
		return
	}
	var demote []*hotKeyEntry
	for _, id := range c.hotKeyOrder {
		st := c.hotKeys[id]
		if st == nil {
			continue
		}
		front := c.rack.Front(st.sw)
		hk, ok := front.Promoted(id)
		if !ok || c.rack.SwitchOfSlot(st.slot) != st.sw || len(hk.Holders) == 0 {
			// The switch rebooted (soft entry gone), the home slot
			// migrated to another switch domain, or every holder
			// retired: the mechanism no longer applies here.
			demote = append(demote, st)
			continue
		}
		if hk.InvalidCount() > 0 {
			c.refreshHot(st)
		}
		r, w := front.HotHeatOf(id)
		if r+w <= c.hotKeyCfg.CoolOps {
			st.cool++
		} else {
			st.cool = 0
		}
		if st.cool >= c.hotKeyCfg.CoolRounds {
			demote = append(demote, st)
		}
	}
	for _, st := range demote {
		c.demoteObject(st)
	}
}

// demoteObject tears a promoted key down: the switch entry goes first
// (no further spread reads), then each holder drops its foreign-slot
// copy. DropSlot is exact because the holder owns no other object in
// that slot (route ≠ holder, and promotion enforces one key per slot).
func (c *Cluster) demoteObject(st *hotKeyEntry) {
	if c.hotKeys[st.id] != st {
		return
	}
	c.rack.Front(st.sw).Demote(st.id)
	home := c.rack.RouteOf(st.slot)
	for _, g := range st.holders {
		if g == home || !c.rack.Live(g) {
			continue
		}
		for _, rep := range c.groups[g].replicas {
			rep.DropSlot(st.slot)
		}
	}
	delete(c.hotKeys, st.id)
	for i, id := range c.hotKeyOrder {
		if id == st.id {
			c.hotKeyOrder = append(c.hotKeyOrder[:i], c.hotKeyOrder[i+1:]...)
			break
		}
	}
	c.hotKeyDemotions++
	c.rec.Emit(trace.Event{
		Kind: trace.EvHotDemote, Switch: int16(st.sw), Group: int16(home),
		Slot: int16(st.slot), Arg: uint64(st.id),
	})
}

// hotKeysDropGroup reacts to group g's store being replaced or retired
// (membership respec, removal, dead-switch reassignment): any promoted
// key g held must stop spreading there SYNCHRONOUSLY — the group's new
// incarnation does not hold the foreign-slot copy, so one spread read
// before the next tick would return not-found for a live object.
func (c *Cluster) hotKeysDropGroup(g int) {
	if len(c.hotKeys) == 0 {
		return
	}
	for _, id := range append([]wire.ObjectID(nil), c.hotKeyOrder...) {
		st := c.hotKeys[id]
		if st == nil {
			continue
		}
		if c.rack.RouteOf(st.slot) == g {
			// The key's HOME is being torn down; elastic evacuation has
			// already moved (or is moving) the slot's objects, and the
			// promotion no longer matches the topology it was made for.
			c.demoteObject(st)
			continue
		}
		for _, h := range st.holders {
			if h != g {
				continue
			}
			left := c.rack.Front(st.sw).RemoveHolder(id, g)
			out := st.holders[:0]
			for _, x := range st.holders {
				if x != g {
					out = append(out, x)
				}
			}
			st.holders = out
			if left == 0 {
				c.demoteObject(st)
			}
			break
		}
	}
}

// PromoteKey manually promotes key onto the given holder groups (or,
// with none given, the promotion policy's capacity-weighted pick).
// Holders must be live groups of the key's own switch domain.
func (c *Cluster) PromoteKey(key string, holders ...int) error {
	if c.hotKeys == nil {
		return fmt.Errorf("cluster: hot-key replication not enabled (Config.HotKeys)")
	}
	id := wire.HashKey(key)
	if _, ok := c.hotKeys[id]; ok {
		return nil
	}
	slot := wire.SlotOf(id)
	sw := c.rack.SwitchOfSlot(slot)
	home := c.rack.RouteOf(slot)
	topo := c.rack.Topo()
	for _, st := range c.hotKeys {
		if st.slot == slot {
			return fmt.Errorf("cluster: slot %d already has a promoted key", slot)
		}
	}
	if len(holders) == 0 {
		groups := c.rack.Groups()
		weights := make([]float64, groups)
		for g := 0; g < groups; g++ {
			if topo.Live(g) {
				weights[g] = topo.Weight(g)
			}
		}
		holders = c.hotKeyCfg.PickHolders(home, groups, weights, func(g int) bool {
			return topo.Live(g) && topo.SwitchOfGroup(g) == sw
		})
		if len(holders) == 0 {
			return fmt.Errorf("cluster: no eligible holder group for %q", key)
		}
	}
	for _, g := range holders {
		if g < 0 || g >= c.rack.Groups() || !topo.Live(g) {
			return fmt.Errorf("cluster: holder %d is not a live group", g)
		}
		if g == home {
			return fmt.Errorf("cluster: holder %d is %q's home group", g, key)
		}
		if topo.SwitchOfGroup(g) != sw {
			return fmt.Errorf("cluster: holder %d lives on switch %d, key on %d", g, topo.SwitchOfGroup(g), sw)
		}
	}
	c.promoteObject(id, slot, sw, holders)
	return nil
}

// DemoteKey manually demotes key, reporting whether it was promoted.
func (c *Cluster) DemoteKey(key string) bool {
	st := c.hotKeys[wire.HashKey(key)]
	if st == nil {
		return false
	}
	c.demoteObject(st)
	return true
}

// KeyPromoted reports whether key currently has a hot-key entry, and
// if so its wire-level switch view.
func (c *Cluster) KeyPromoted(key string) (wire.HotKey, bool) {
	st := c.hotKeys[wire.HashKey(key)]
	if st == nil {
		return wire.HotKey{}, false
	}
	return c.rack.Front(st.sw).Promoted(st.id)
}

// HotKeyCount returns the number of currently promoted keys.
func (c *Cluster) HotKeyCount() int { return len(c.hotKeys) }

// HotKeyStats returns lifetime promotion and demotion counts.
func (c *Cluster) HotKeyStats() (promotions, demotions uint64) {
	return c.hotKeyPromotions, c.hotKeyDemotions
}
