package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/rebalance"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// TestHotKeyManualPromoteLifecycle walks the full hot-key arc by hand:
// promote a key, watch clean reads spread across the holder groups,
// watch a write invalidate the copies and the refresh revalidate them,
// then demote and verify the foreign-slot copies are really gone.
func TestHotKeyManualPromoteLifecycle(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3,
		HotKeys: true, Seed: 31,
	})
	cl := c.NewSyncClient()
	const key = "celebrity"
	if err := cl.Set(key, []byte("v1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := c.PromoteKey(key); err != nil {
		t.Fatalf("PromoteKey: %v", err)
	}
	if c.HotKeyCount() != 1 {
		t.Fatalf("HotKeyCount = %d", c.HotKeyCount())
	}
	id := wire.HashKey(key)
	st := c.hotKeys[id]
	if len(st.holders) != 2 {
		t.Fatalf("auto-picked holders = %v", st.holders)
	}
	// Let the seeding refresh land; the switch entry must turn valid.
	c.RunFor(time.Millisecond)
	hk, ok := c.KeyPromoted(key)
	if !ok || hk.InvalidCount() != 0 {
		t.Fatalf("after seed: promoted=%v invalid=%d", ok, hk.InvalidCount())
	}

	// Clean reads round-robin across home + holders: 6 reads over 3
	// groups must touch more than one group and record spreads.
	served := map[int]int{}
	for i := 0; i < 6; i++ {
		v, found, err := cl.Get(key)
		if err != nil || !found || string(v) != "v1" {
			t.Fatalf("Get #%d = %q %v %v", i, v, found, err)
		}
		served[cl.LastGroup()]++
	}
	if len(served) < 2 {
		t.Fatalf("reads never spread: served=%v", served)
	}
	if c.rack.Front(st.sw).Stats.SpreadReads == 0 {
		t.Fatal("no spread reads recorded")
	}

	// A write invalidates the holder copies in its switch traversal,
	// and the completion-cued refresh revalidates them with v2.
	if err := cl.Set(key, []byte("v2")); err != nil {
		t.Fatalf("Set v2: %v", err)
	}
	if c.rack.Front(st.sw).Stats.Invalidations == 0 {
		t.Fatal("write did not invalidate the holders")
	}
	c.RunFor(time.Millisecond)
	hk, _ = c.KeyPromoted(key)
	if hk.InvalidCount() != 0 || hk.WriteGen == 0 {
		t.Fatalf("after write: invalid=%d gen=%d", hk.InvalidCount(), hk.WriteGen)
	}
	for i := 0; i < 6; i++ {
		v, found, err := cl.Get(key)
		if err != nil || !found || string(v) != "v2" {
			t.Fatalf("Get v2 #%d = %q %v %v", i, v, found, err)
		}
	}

	// Demotion collapses the key back home and drops every foreign
	// copy — DropSlot is exact because the holder owns nothing else in
	// that slot.
	holders := append([]int(nil), st.holders...)
	if !c.DemoteKey(key) {
		t.Fatal("DemoteKey reported not promoted")
	}
	if c.HotKeyCount() != 0 {
		t.Fatalf("HotKeyCount after demote = %d", c.HotKeyCount())
	}
	for _, g := range holders {
		for i, rep := range c.groups[g].replicas {
			if _, found := rep.GetObject(id); found {
				t.Fatalf("holder %d replica %d still has the demoted copy", g, i)
			}
		}
	}
	v, found, err := cl.Get(key)
	if err != nil || !found || string(v) != "v2" {
		t.Fatalf("Get after demote = %q %v %v", v, found, err)
	}
	p, d := c.HotKeyStats()
	if p != 1 || d != 1 {
		t.Fatalf("stats = %d promotions, %d demotions", p, d)
	}
}

// TestHotKeyAutoPromoteAndDemote drives the full control loop: a
// single dominant key makes its slot an indivisible hot spot, the
// rebalancer's fired-but-empty tick nominates it, the cluster promotes
// it, and once the skew stops the decayed per-key heat cools the entry
// back into a clean demotion.
func TestHotKeyAutoPromoteAndDemote(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3,
		AutoRebalance: true, HotKeys: true, Seed: 21,
		// A single synchronous client generates modest per-tick heat;
		// scale the op floors down to match (the production defaults
		// assume a fleet of load generators).
		Rebalance: rebalance.Config{MinOps: 32},
		HotKey:    rebalance.HotKeyConfig{MinOps: 16},
	})
	cl := c.NewSyncClient()
	const key = "celebrity"
	if err := cl.Set(key, []byte("hot")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	for i := 0; i < 4000 && c.HotKeyCount() == 0; i++ {
		if i%5 == 4 {
			if err := cl.Set(key, []byte("hot")); err != nil {
				t.Fatalf("Set #%d: %v", i, err)
			}
		} else {
			if _, _, err := cl.Get(key); err != nil {
				t.Fatalf("Get #%d: %v", i, err)
			}
		}
	}
	if c.HotKeyCount() != 1 {
		t.Fatal("sustained single-key skew never promoted the key")
	}
	st := c.hotKeys[wire.HashKey(key)]
	if len(st.holders) == 0 || len(st.holders) > 3 {
		t.Fatalf("holders = %v", st.holders)
	}

	// Promotion must actually relieve the home group: keep reading and
	// watch spread reads accumulate at the switch.
	before := c.rack.Front(st.sw).Stats.SpreadReads
	for i := 0; i < 200; i++ {
		if _, _, err := cl.Get(key); err != nil {
			t.Fatalf("post-promotion Get: %v", err)
		}
	}
	if c.rack.Front(st.sw).Stats.SpreadReads == before {
		t.Fatal("promotion did not spread any reads")
	}

	// Skew stops: per-key heat decays with the rebalancer's tick, the
	// cool-down counts it out, and the key demotes on its own.
	c.RunFor(60 * time.Millisecond)
	if c.HotKeyCount() != 0 {
		t.Fatalf("key still promoted %d after the skew stopped", c.HotKeyCount())
	}
	if _, d := c.HotKeyStats(); d == 0 {
		t.Fatal("no demotion recorded")
	}
	v, found, err := cl.Get(key)
	if err != nil || !found || string(v) != "hot" {
		t.Fatalf("Get after auto-demote = %q %v %v", v, found, err)
	}
}

// TestPromoteKeyValidation pins the manual API's refusals: promotion
// without the feature, a holder that is the key's own home, and a
// second key in an already-promoted slot.
func TestPromoteKeyValidation(t *testing.T) {
	plain := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 5})
	if err := plain.PromoteKey("x"); err == nil {
		t.Fatal("PromoteKey accepted without Config.HotKeys")
	}

	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3,
		HotKeys: true, Seed: 5,
	})
	const key = "celebrity"
	home := c.rack.RouteOf(wire.SlotOf(wire.HashKey(key)))
	if err := c.PromoteKey(key, home); err == nil {
		t.Fatal("PromoteKey accepted the home group as a holder")
	}
	if err := c.PromoteKey(key, 99); err == nil {
		t.Fatal("PromoteKey accepted an out-of-range holder")
	}
	if err := c.PromoteKey(key); err != nil {
		t.Fatalf("PromoteKey: %v", err)
	}
	// A slot-mate of the promoted key must be refused: demotion's
	// DropSlot cleanup is only exact with one promoted key per slot.
	slot := wire.SlotOf(wire.HashKey(key))
	mate := ""
	for i := 0; i < 1<<16; i++ {
		k := fmt.Sprintf("mate%06d", i)
		if k != key && wire.SlotOf(wire.HashKey(k)) == slot {
			mate = k
			break
		}
	}
	if mate == "" {
		t.Fatal("no slot-mate found")
	}
	if err := c.PromoteKey(mate); err == nil {
		t.Fatal("PromoteKey accepted a second key in a promoted slot")
	}
	if c.DemoteKey("never-promoted") {
		t.Fatal("DemoteKey invented an entry")
	}
}

// TestHotKeyChaosMatrix runs the promoted-key fast path through the
// failure modes that could each break it differently — packet drops
// (lost refresh completions), reordering, a holder replica crash, a
// concurrent migration of the key's home slot into a holder, and the
// elastic removal of a holder group — and requires every key's
// history, hot key included, to stay linearizable.
func TestHotKeyChaosMatrix(t *testing.T) {
	for _, chaos := range []string{"drops", "reorder", "crash", "migrate", "remove"} {
		chaos := chaos
		t.Run(chaos, func(t *testing.T) { hotKeyChaosCase(t, chaos) })
	}
}

func hotKeyChaosCase(t *testing.T, chaos string) {
	cfg := Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 4,
		HotKeys: true, RecordHistory: true, Seed: 61 + int64(len(chaos)),
	}
	switch chaos {
	case "drops":
		cfg.DropProb = 0.01
	case "reorder":
		cfg.ReorderProb = 0.02
		cfg.ReorderDelay = 30 * time.Microsecond
	}
	c := New(cfg)
	const keys = 16
	c.Preload(keys)
	hot := keyName(workload.ZipfKeyOfRank(keys, 0))
	if err := c.PromoteKey(hot); err != nil {
		t.Fatalf("PromoteKey: %v", err)
	}
	st := c.hotKeys[wire.HashKey(hot)]
	holder := st.holders[0]
	slot := st.slot

	c.Engine().After(4*time.Millisecond, func() {
		switch chaos {
		case "crash":
			if err := c.CrashReplicaIn(holder, 1); err != nil {
				t.Errorf("CrashReplicaIn: %v", err)
			}
		case "migrate":
			// Move the key's HOME slot into one of its holders while
			// the spread path is live: writes freeze and drain, holder
			// copies keep serving clean reads, and after the flip the
			// round-robin must skip the holder-turned-home.
			if _, err := c.StartBatchMigration([]int{slot}, holder); err != nil {
				t.Errorf("StartBatchMigration: %v", err)
			}
		case "remove":
			if _, err := c.StartRemoveGroup(holder); err != nil {
				t.Errorf("StartRemoveGroup: %v", err)
			}
		}
	})

	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 8, Duration: 8 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Zipf12,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(60 * time.Millisecond) // settle refreshes, handoffs, retries

	// With the chaos over and the last refresh landed, clean reads of
	// the hot key must spread again (under write-heavy chaos the entry
	// may have spent most of the run invalidated).
	cl := c.NewSyncClient()
	before := c.rack.Front(st.sw).Stats.SpreadReads
	for i := 0; i < 12; i++ {
		if _, found, err := cl.Get(hot); err != nil || !found {
			t.Fatalf("post-chaos Get #%d: found=%v err=%v", i, found, err)
		}
	}
	if c.rack.Front(st.sw).Stats.SpreadReads == before {
		t.Fatal("no reads were spread across the replicated set")
	}
	switch chaos {
	case "migrate":
		if got := c.rack.RouteOf(slot); got != holder {
			t.Fatalf("home slot route = %d, want holder %d", got, holder)
		}
	case "remove":
		if c.rack.Live(holder) {
			t.Fatal("removed holder still live")
		}
		if hk, ok := c.KeyPromoted(hot); ok {
			for _, h := range hk.Holders {
				if int(h) == holder {
					t.Fatalf("retired group %d still in holder set %v", holder, hk.Holders)
				}
			}
		}
	}
	for i := 0; i < keys; i++ {
		res := c.CheckLinearizabilityKey(keyName(i))
		if !res.Decided {
			t.Fatalf("%s: key %s undecided: %s", chaos, keyName(i), res.Reason)
		}
		if !res.Ok {
			t.Fatalf("%s: key %s violated linearizability: %s", chaos, keyName(i), res.Reason)
		}
	}
}
