package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmonia/internal/wire"
)

// slotsOnSwitchOwnedBy returns routing slots that are currently served
// by switch sw, routed to group g, and contain at least one of the
// first `keys` workload keys.
func slotsOnSwitchOwnedBy(c *Cluster, keys, sw, g int) []int {
	var out []int
	for _, s := range slotsOwnedBy(c, keys, g) {
		if c.SwitchOf(s) == sw {
			out = append(out, s)
		}
	}
	return out
}

// TestRackMultiSwitchBasicOps boots a 2-switch rack and drives
// operations against keys on both switch domains: every reply must
// come back stamped with the switch the rack's slot → switch map names,
// and both domains must serve reads and writes.
func TestRackMultiSwitchBasicOps(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 11,
	})
	if c.Switches() != 2 {
		t.Fatalf("Switches() = %d, want 2", c.Switches())
	}
	cl := c.NewSyncClient()
	served := make(map[int]int)
	for i := 0; i < 48; i++ {
		key := keyName(i)
		if err := cl.Set(key, []byte{byte(i)}); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
		v, ok, err := cl.Get(key)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("Get %s = %v %v %v", key, v, ok, err)
		}
		want := c.SwitchOf(wire.SlotOf(wire.HashKey(key)))
		if got := cl.LastSwitch(); got != want {
			t.Fatalf("key %s served via switch %d, rack map says %d", key, got, want)
		}
		served[want]++
	}
	if served[0] == 0 || served[1] == 0 {
		t.Fatalf("load did not touch both switch domains: %v", served)
	}
}

// TestRackCrossSwitchMigrationAllProtocols moves a slot from a group on
// switch 0 to a group on switch 1 under every protocol: the data must
// survive, the slot → switch map must flip with the route, and the
// destination front-end must own (and serve) the slot afterwards.
func TestRackCrossSwitchMigrationAllProtocols(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, CRAQ, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ,
				Groups: 4, Switches: 2, Seed: 13,
			})
			dst := c.Rack().GroupsOf(1)[0]
			cl := c.NewSyncClient()
			bySlot := keysInSlotOwnedBy(c, 64, 0)
			var slot int
			var idxs []int
			for s, ii := range bySlot {
				if c.SwitchOf(s) == 0 && len(ii) > 0 {
					slot, idxs = s, ii
					break
				}
			}
			if len(idxs) == 0 {
				t.Fatal("no migratable slot with keys on switch 0")
			}
			for _, i := range idxs {
				if err := cl.Set(keyName(i), []byte("x")); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
			if err := c.MigrateSlots([]int{slot}, dst); err != nil {
				t.Fatalf("cross-switch MigrateSlots: %v", err)
			}
			if got := c.SwitchOf(slot); got != 1 {
				t.Fatalf("slot %d still mapped to switch %d", slot, got)
			}
			if !c.FrontendOf(1).OwnsSlot(slot) || c.FrontendOf(0).OwnsSlot(slot) {
				t.Fatal("front-end ownership did not move with the slot")
			}
			for _, i := range idxs {
				v, ok, err := cl.Get(keyName(i))
				if err != nil || !ok || string(v) != "x" {
					t.Fatalf("Get after cross-switch migration = %q %v %v", v, ok, err)
				}
				if got := cl.LastGroup(); got != dst {
					t.Fatalf("served by group %d, want %d", got, dst)
				}
				if got := cl.LastSwitch(); got != 1 {
					t.Fatalf("served via switch %d, want 1", got)
				}
				if err := cl.Set(keyName(i), []byte("y")); err != nil {
					t.Fatalf("post-migration Set: %v", err)
				}
			}
		})
	}
}

// TestRackCrossSwitchMigrationHeatPickup checks that the destination
// front-end's heat registers take over accounting for a migrated slot:
// before the handoff only switch 0 counts it, afterwards new traffic
// lands in switch 1's registers.
func TestRackCrossSwitchMigrationHeatPickup(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 17,
	})
	dst := c.Rack().GroupsOf(1)[0]
	cl := c.NewSyncClient()
	bySlot := keysInSlotOwnedBy(c, 64, 0)
	var slot int
	var idxs []int
	for s, ii := range bySlot {
		if c.SwitchOf(s) == 0 && len(ii) > 0 {
			slot, idxs = s, ii
			break
		}
	}
	key := keyName(idxs[0])
	if err := cl.Set(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.FrontendOf(0).HeatOf(slot).Total() == 0 {
		t.Fatal("owning front-end did not count the slot's traffic")
	}
	if err := c.MigrateSlots([]int{slot}, dst); err != nil {
		t.Fatalf("MigrateSlots: %v", err)
	}
	before := c.FrontendOf(1).HeatOf(slot).Total()
	for i := 0; i < 5; i++ {
		if _, _, err := cl.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.FrontendOf(1).HeatOf(slot).Total(); got <= before {
		t.Fatalf("destination heat did not pick up the slot: %d -> %d", before, got)
	}
	// The rack-wide sample must read the destination's registers now.
	if got := c.SlotHeat()[slot].Total(); got != c.FrontendOf(1).HeatOf(slot).Total() {
		t.Fatalf("rack heat sample %d != destination registers %d",
			got, c.FrontendOf(1).HeatOf(slot).Total())
	}
}

// TestRackSwitchCrashIsolation crashes one switch of a 4-switch rack:
// keys on the other switches' shards must keep being served (fast
// path included), keys on the crashed shard must time out, and after
// reactivation only the crashed switch's epoch has advanced.
func TestRackSwitchCrashIsolation(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 4, Seed: 19,
	})
	cl := c.NewSyncClient()
	// One key per switch domain.
	keyOn := make(map[int]string)
	for i := 0; i < 512 && len(keyOn) < 4; i++ {
		k := keyName(i)
		sw := c.SwitchOf(wire.SlotOf(wire.HashKey(k)))
		if _, ok := keyOn[sw]; !ok {
			keyOn[sw] = k
		}
	}
	if len(keyOn) != 4 {
		t.Fatalf("key search found only %d domains", len(keyOn))
	}
	for _, k := range keyOn {
		if err := cl.Set(k, []byte("v")); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
	}

	if err := c.CrashSwitch(2); err != nil {
		t.Fatal(err)
	}
	for sw, k := range keyOn {
		_, ok, err := cl.Get(k)
		if sw == 2 {
			if err != ErrTimeout {
				t.Fatalf("crashed domain served %s: ok=%v err=%v", k, ok, err)
			}
			continue
		}
		if err != nil || !ok {
			t.Fatalf("healthy domain %d stalled on %s: ok=%v err=%v", sw, k, ok, err)
		}
		if got := cl.LastSwitch(); got != sw {
			t.Fatalf("key %s served via switch %d, want %d", k, got, sw)
		}
	}

	c.ReactivateSwitch(2)
	c.RunFor(10 * time.Millisecond)
	for _, k := range keyOn {
		if _, ok, err := cl.Get(k); err != nil || !ok {
			t.Fatalf("post-recovery Get %s: ok=%v err=%v", k, ok, err)
		}
	}
	for s := 0; s < 4; s++ {
		want := uint32(1)
		if s == 2 {
			want = 2
		}
		if got := c.Rack().Epoch(s); got != want {
			t.Fatalf("switch %d epoch %d, want %d (domains must be independent)", s, got, want)
		}
	}
	if c.Rack().Stats(2).Replacements != 1 {
		t.Fatalf("switch 2 replacements = %d, want 1", c.Rack().Stats(2).Replacements)
	}
	if lat := c.Rack().Stats(2).LastAgreementLatency; lat <= 0 {
		t.Fatalf("agreement latency not recorded: %v", lat)
	}
}

// TestRackSwitchAgreementMessageCount pins the §5.3 agreement cost of
// a switch replacement to exactly the live replicas of the groups that
// switch hosts: one revoke out and one ack back per live replica —
// never the whole rack, and crashed replicas excluded.
func TestRackSwitchAgreementMessageCount(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 23,
	})
	// Switch 0 hosts groups 0 and 1. Crash one replica of group 1 so
	// the live count drops below the nominal 2 groups × 3 replicas.
	if err := c.CrashReplicaIn(1, 2); err != nil {
		t.Fatal(err)
	}
	before0, before1 := c.Rack().Stats(0), c.Rack().Stats(1)
	c.CrashSwitch(0)
	c.RunFor(time.Millisecond)
	c.ReactivateSwitch(0)
	c.RunFor(10 * time.Millisecond)
	after0, after1 := c.Rack().Stats(0), c.Rack().Stats(1)

	liveOwned := 0
	for _, g := range c.Rack().GroupsOf(0) {
		for i := 0; i < 3; i++ {
			if !c.Network().IsDown(c.GroupReplicaAddr(g, i)) {
				liveOwned++
			}
		}
	}
	if liveOwned != 5 {
		t.Fatalf("expected 5 live replicas on switch 0's groups, have %d", liveOwned)
	}
	if got := after0.RevokesSent - before0.RevokesSent; got != uint64(liveOwned) {
		t.Fatalf("revokes sent = %d, want %d (live replicas of owned groups only)", got, liveOwned)
	}
	if got := after0.AcksReceived - before0.AcksReceived; got != uint64(liveOwned) {
		t.Fatalf("acks received = %d, want %d (live replicas of owned groups only)", got, liveOwned)
	}
	if after1.AgreementMsgs() != before1.AgreementMsgs() {
		t.Fatal("replacing switch 0 charged agreement messages to switch 1")
	}
}

// TestRackChaosMatrix is the rack hardening matrix: every replication
// protocol × a chaos mode (packet drops, reordering, a source-group
// replica crash, or a destination-switch crash + replacement
// mid-handoff) × a cross-switch handoff shape (single slot or batch),
// run in the middle of a live load window on a 2-switch rack. The bar
// per cell: handoffs settle (complete or abort with their slots thawed
// on the original owner), routes and slot → switch ownership agree,
// and every group's history slice linearizes.
func TestRackChaosMatrix(t *testing.T) {
	protocols := []Protocol{PB, Chain, CRAQ, VR, NOPaxos}
	chaosModes := []string{"drops", "reorder", "crashreplica", "crashswitch"}
	kinds := []string{"single", "batch"}
	for _, p := range protocols {
		for _, chaos := range chaosModes {
			for _, kind := range kinds {
				p, chaos, kind := p, chaos, kind
				t.Run(fmt.Sprintf("%s/%s/%s", p, chaos, kind), func(t *testing.T) {
					rackChaosCase(t, p, chaos, kind)
				})
			}
		}
	}
}

func rackChaosCase(t *testing.T, p Protocol, chaos, kind string) {
	if p == CRAQ && chaos == "crashreplica" {
		t.Skip("CRAQ reconfiguration not modeled")
	}
	if p == CRAQ && chaos == "crashswitch" {
		t.Skip("CRAQ takes no switch assistance, so it has no §5.3 lease agreement to replace a switch with")
	}
	cfg := Config{
		Protocol: p, Replicas: 3, UseHarmonia: p != CRAQ,
		Groups: 4, Switches: 2,
		RecordHistory: true, Seed: 43 + int64(p)*7,
	}
	switch chaos {
	case "drops":
		cfg.DropProb = 0.01
	case "reorder":
		cfg.ReorderProb = 0.02
		cfg.ReorderDelay = 30 * time.Microsecond
	}
	c := New(cfg)
	const keys = 96
	dst := c.Rack().GroupsOf(1)[0] // destination on the other switch

	var moves []*Migration
	c.Engine().After(4*time.Millisecond, func() {
		start := func(m *Migration, err error) {
			if err != nil {
				t.Errorf("start %s cross-switch handoff: %v", kind, err)
				return
			}
			moves = append(moves, m)
		}
		candidates := slotsOnSwitchOwnedBy(c, keys, 0, 0)
		switch kind {
		case "single":
			start(c.StartSlotMigration(takeSlots(t, candidates, 1)[0], dst))
		case "batch":
			start(c.StartBatchMigration(takeSlots(t, candidates, 3), dst))
		}
	})
	switch chaos {
	case "crashreplica":
		// Fail a source-group replica moments into the handoff.
		c.Engine().After(4*time.Millisecond+200*time.Microsecond, func() {
			if err := c.CrashReplicaIn(0, 1); err != nil {
				t.Errorf("CrashReplicaIn: %v", err)
			}
		})
	case "crashswitch":
		// Crash and replace the DESTINATION switch mid-handoff: its
		// epoch domain reboots and re-runs the §5.3 agreement while the
		// slots are in flight toward it.
		c.Engine().After(4*time.Millisecond+200*time.Microsecond, func() {
			if err := c.CrashSwitch(1); err != nil {
				t.Errorf("CrashSwitch: %v", err)
			}
		})
		c.Engine().After(6*time.Millisecond, func() { c.ReactivateSwitch(1) })
	}

	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 12, Duration: 10 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.3, Keys: keys, Dist: Uniform,
	})
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("no load completed: %+v", rep)
	}
	c.RunFor(25 * time.Millisecond) // settle in-flight ops and handoffs

	if len(moves) == 0 {
		t.Fatal("handoffs never started")
	}
	for _, m := range moves {
		if m.Aborted() {
			for _, s := range m.Slots {
				if c.Rack().Frozen(s) {
					t.Fatalf("aborted handoff left slot %d frozen", s)
				}
				if got := c.SlotTable()[s]; got != m.From {
					t.Fatalf("aborted handoff moved slot %d to %d", s, got)
				}
				if got := c.SwitchOf(s); got != 0 {
					t.Fatalf("aborted handoff moved slot %d to switch %d", s, got)
				}
			}
			continue
		}
		if !m.Done() {
			t.Fatalf("handoff of slots %v stuck (from %d to %d)", m.Slots, m.From, m.To)
		}
		for _, s := range m.Slots {
			if got := c.SlotTable()[s]; got != m.To {
				t.Fatalf("slot %d routed to %d, want %d", s, got, m.To)
			}
			if got := c.SwitchOf(s); got != 1 {
				t.Fatalf("migrated slot %d maps to switch %d, want 1", s, got)
			}
			if c.Rack().Frozen(s) {
				t.Fatalf("slot %d still frozen after handoff", s)
			}
			if !c.FrontendOf(1).OwnsSlot(s) {
				t.Fatalf("destination front-end does not own migrated slot %d", s)
			}
		}
	}
	for g := 0; g < c.Groups(); g++ {
		res := c.CheckLinearizabilityGroup(g)
		if !res.Decided {
			t.Fatalf("group %d undecided: %s", g, res.Reason)
		}
		if !res.Ok {
			t.Fatalf("group %d violated linearizability across the rack chaos: %s", g, res.Reason)
		}
	}
}

// TestRackRebalancerStaysWithinSwitchDomains arms the autonomous
// rebalancer on a 2-switch rack with a hot spot pinned inside switch
// 0's shard: every move the loop makes must keep its slot on the
// owning switch (the rack-aware policy never plans cross-switch
// moves), while the hot domain still spreads its load.
func TestRackRebalancerStaysWithinSwitchDomains(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 29, AutoRebalance: true,
	})
	before := c.SlotSwitchTable()
	// Pin a handful of hot keys' slots onto group 0 (switch 0's shard),
	// then run a skewed load over them.
	bySlot := keysInSlotOwnedBy(c, 64, 0)
	var hotKeys []int
	for s, ii := range bySlot {
		if c.SwitchOf(s) == 0 {
			hotKeys = append(hotKeys, ii...)
		}
	}
	if len(hotKeys) < 4 {
		t.Fatalf("need hot keys on switch 0, have %d", len(hotKeys))
	}
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 64, Duration: 12 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.05, Keys: 16, Dist: Zipf12,
	})
	if rep.Ops == 0 {
		t.Fatal("no load completed")
	}
	c.RunFor(10 * time.Millisecond)
	after := c.SlotSwitchTable()
	for s := range after {
		if after[s] != before[s] {
			t.Fatalf("rebalancer moved slot %d across switches (%d -> %d)", s, before[s], after[s])
		}
	}
}

// TestRackSwitchOverlappingReplacements starts a second replacement of
// the same switch before the first's agreement can complete (plus a
// duplicate-index call): the stale agreement must NOT install its
// scheduler over the newer epoch's — the group would stamp fast reads
// with an epoch the replicas' newer leases reject forever. The final
// state must serve fast reads at the newest epoch.
func TestRackSwitchOverlappingReplacements(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 31,
	})
	if err := c.CrashSwitch(0); err != nil {
		t.Fatal(err)
	}
	// Two immediate replacements (no time for the first agreement to
	// finish) and a duplicate index in one call.
	if err := c.ReactivateSwitch(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReactivateSwitch(0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Millisecond)

	wantEpoch := c.rack.Epoch(0)
	for _, g := range c.rack.GroupsOf(0) {
		if got := c.GroupScheduler(g).Epoch(); got != wantEpoch {
			t.Fatalf("group %d runs scheduler epoch %d, switch epoch is %d (stale agreement won)",
				g, got, wantEpoch)
		}
	}
	// Fast reads must flow again on the final epoch.
	cl := c.NewSyncClient()
	bySlot := keysInSlotOwnedBy(c, 64, 0)
	var key string
	for s, ii := range bySlot {
		if c.SwitchOf(s) == 0 && len(ii) > 0 {
			key = keyName(ii[0])
			break
		}
	}
	if err := cl.Set(key, []byte("v")); err != nil {
		t.Fatalf("Set after overlapping replacements: %v", err)
	}
	before := c.GroupScheduler(c.GroupOf(key)).Stats.FastReads
	for i := 0; i < 8; i++ {
		if _, ok, err := cl.Get(key); err != nil || !ok {
			t.Fatalf("Get: %v %v", ok, err)
		}
	}
	if got := c.GroupScheduler(c.GroupOf(key)).Stats.FastReads; got <= before {
		t.Fatalf("fast path dead after overlapping replacements: %d -> %d", before, got)
	}
}

// TestRackSwitchReplacementSurvivesCrashDuringAgreement crashes a
// replica inside the revoke → ack window of a switch replacement (the
// revokes are in flight, one link latency wide): the agreement must
// re-evaluate its quorum and complete on the survivors instead of
// wedging the group's scheduler install forever — and the replacement
// scheduler must target the SURVIVING chain, not the boot-time one
// (crashing the head or tail here used to install a scheduler whose
// write/read destination was the dead node, wedging the group for
// good). Every chain position is exercised.
func TestRackSwitchReplacementSurvivesCrashDuringAgreement(t *testing.T) {
	for _, victim := range []int{0, 1, 2} { // head, middle, tail
		victim := victim
		t.Run(fmt.Sprintf("victim-%d", victim), func(t *testing.T) {
			c := New(Config{
				Protocol: Chain, Replicas: 3, UseHarmonia: true,
				Groups: 4, Switches: 2, Seed: 37,
			})
			if err := c.CrashSwitch(0); err != nil {
				t.Fatal(err)
			}
			if err := c.ReactivateSwitch(0); err != nil {
				t.Fatal(err)
			}
			// The revokes are in flight now (no simulated time has
			// passed): crash a replica of an owned group before it can
			// ack.
			if err := c.CrashReplicaIn(0, victim); err != nil {
				t.Fatal(err)
			}
			c.RunFor(10 * time.Millisecond)

			st := c.Rack().Stats(0)
			if st.Replacements != 1 {
				t.Fatalf("replacement wedged: Replacements = %d, want 1", st.Replacements)
			}
			for _, g := range c.Rack().GroupsOf(0) {
				if got := c.GroupScheduler(g).Epoch(); got != c.Rack().Epoch(0) {
					t.Fatalf("group %d scheduler epoch %d, switch epoch %d (agreement never completed)",
						g, got, c.Rack().Epoch(0))
				}
			}
			// The group with the crashed member still serves reads AND
			// writes through its survivors.
			cl := c.NewSyncClient()
			bySlot := keysInSlotOwnedBy(c, 64, 0)
			for s, ii := range bySlot {
				if c.SwitchOf(s) == 0 && len(ii) > 0 {
					key := keyName(ii[0])
					if err := cl.Set(key, []byte("v")); err != nil {
						t.Fatalf("Set after mid-agreement crash of replica %d: %v", victim, err)
					}
					if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "v" {
						t.Fatalf("Get after mid-agreement crash of replica %d: %q %v %v", victim, v, ok, err)
					}
					break
				}
			}
		})
	}
}

// TestRackSwitchCrashReplicaIdempotent re-crashes an already-dead
// replica inside the revoke → ack window: the duplicate must not
// decrement the agreement quorum a second time, or the replacement
// would complete before a LIVE replica revoked its old-epoch lease.
func TestRackSwitchCrashReplicaIdempotent(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 41,
	})
	if err := c.CrashSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReactivateSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashReplicaIn(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashReplicaIn(0, 1); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	c.RunFor(10 * time.Millisecond)
	st := c.Rack().Stats(0)
	if st.Replacements != 1 {
		t.Fatalf("Replacements = %d, want 1", st.Replacements)
	}
	// 2 live of group 0 + 3 of group 1 acked; the double-crash must
	// not have let the agreement complete short of that.
	if st.AcksReceived != 5 {
		t.Fatalf("acks = %d, want 5 (every live replica revoked)", st.AcksReceived)
	}
}
