package cluster

import (
	"time"

	"harmonia/internal/metrics"
	"harmonia/internal/trace"
)

// PhaseBreakdown decomposes sampled operation latency into the five
// trace phases, one histogram per phase. Every sampled completion
// contributes one observation to EACH histogram — a phase the op never
// touched contributes zero — so all five hold the same sample count,
// the per-phase means are per-op averages, and the five Sum()s add up
// to the end-to-end latency Sum() of the same sampled ops (an identity
// of the telescoping stamps, not an estimate; see internal/trace).
type PhaseBreakdown struct {
	// Queue is scheduler-side wait: from a packet's arrival at a busy
	// replica until a worker starts serving it, plus the (zero-width)
	// switch sequencing stamp.
	Queue *metrics.Histogram
	// Service is the modeled per-op CPU time at the replicas.
	Service *metrics.Histogram
	// Network is everything in flight: link propagation, switch
	// traversal, and protocol-internal replication legs (chain
	// propagation, multicast fan-out) that carry no stamps of their
	// own and so collapse into the in-flight remainder.
	Network *metrics.Histogram
	// Retry is resend gaps from loss, reordering, or a dead switch:
	// the time between the last sign of life and the client putting
	// the op back on the wire.
	Retry *metrics.Histogram
	// FrozenStall is the same resend gap when the front-end explicitly
	// dropped the packet — slot frozen mid-migration, or switch
	// stalled in a §5.3 agreement. The migration tax, separated from
	// network-loss retries.
	FrozenStall *metrics.Histogram
}

func newPhaseBreakdown() *PhaseBreakdown {
	return &PhaseBreakdown{
		Queue:       metrics.NewHistogram(),
		Service:     metrics.NewHistogram(),
		Network:     metrics.NewHistogram(),
		Retry:       metrics.NewHistogram(),
		FrozenStall: metrics.NewHistogram(),
	}
}

// Phase returns the histogram for p, so callers can iterate the
// decomposition positionally (trace.Phase(0)..trace.NumPhases-1).
func (b *PhaseBreakdown) Phase(p trace.Phase) *metrics.Histogram {
	switch p {
	case trace.PhaseQueue:
		return b.Queue
	case trace.PhaseService:
		return b.Service
	case trace.PhaseNetwork:
		return b.Network
	case trace.PhaseRetry:
		return b.Retry
	case trace.PhaseFrozenStall:
		return b.FrozenStall
	}
	return nil
}

func (b *PhaseBreakdown) observe(sp *trace.Span) {
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		b.Phase(p).Observe(time.Duration(sp.Phases[p]))
	}
}

// LatencyBreakdown is a measurement window's latency decomposition:
// the overall view plus per-replica-group and per-switch slices of the
// same sampled completions.
type LatencyBreakdown struct {
	// Overall folds every sampled completion in the window.
	Overall *PhaseBreakdown
	// Groups[g] folds the sampled completions group g served (the
	// reply's authoritative group, so migrated ops count where they
	// actually ran). Indexed by group ID; grows if groups are added
	// elastically mid-run.
	Groups []*PhaseBreakdown
	// Switches[s] folds the sampled completions issued through switch
	// s's front-end (the client's routing view at issue time).
	Switches []*PhaseBreakdown
}

func newLatencyBreakdown(groups, switches int) *LatencyBreakdown {
	bd := &LatencyBreakdown{
		Overall:  newPhaseBreakdown(),
		Groups:   make([]*PhaseBreakdown, groups),
		Switches: make([]*PhaseBreakdown, switches),
	}
	for i := range bd.Groups {
		bd.Groups[i] = newPhaseBreakdown()
	}
	for i := range bd.Switches {
		bd.Switches[i] = newPhaseBreakdown()
	}
	return bd
}

// observeSpan folds one completed span, attributed to the group that
// served the op (from the reply) and the switch it was issued through.
func (m *measurement) observeSpan(sp *trace.Span, group int) {
	if !m.collect || m.bd == nil {
		return
	}
	m.bd.Overall.observe(sp)
	for group >= len(m.bd.Groups) && len(m.bd.Groups) < len(m.c.groups) {
		m.bd.Groups = append(m.bd.Groups, newPhaseBreakdown())
	}
	if group >= 0 && group < len(m.bd.Groups) {
		m.bd.Groups[group].observe(sp)
	}
	if sw := int(sp.Sw); sw >= 0 && sw < len(m.bd.Switches) {
		m.bd.Switches[sw].observe(sp)
	}
}
