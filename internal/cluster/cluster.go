// Package cluster assembles a complete simulated Harmonia rack: the
// in-switch request scheduler, a replica group running one of the five
// supported protocols, a controller for the §5.3 lease/failover
// agreements, and load-generating clients. It is the substrate every
// end-to-end test, example, and benchmark runs on.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/protocol"
	"harmonia/internal/protocol/chain"
	"harmonia/internal/protocol/craq"
	"harmonia/internal/protocol/nopaxos"
	"harmonia/internal/protocol/pb"
	"harmonia/internal/protocol/vr"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// Protocol selects the replication protocol.
type Protocol int

// The supported protocols.
const (
	PB Protocol = iota
	Chain
	CRAQ
	VR
	NOPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PB:
		return "PB"
	case Chain:
		return "CR"
	case CRAQ:
		return "CRAQ"
	case VR:
		return "VR"
	case NOPaxos:
		return "NOPaxos"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ReadBehind reports whether the protocol's §7 class is read-behind.
func (p Protocol) ReadBehind() bool { return p == VR || p == NOPaxos }

// Node addressing scheme.
const (
	switchAddr     simnet.NodeID = 1
	controllerAddr simnet.NodeID = 2
	replicaBase    simnet.NodeID = 10
	clientBase     simnet.NodeID = 1000
)

// Config parameterizes a cluster.
type Config struct {
	Protocol    Protocol
	Replicas    int
	UseHarmonia bool

	// Switch dirty-set sizing (defaults: 3 × 64000, the prototype's).
	Stages        int
	SlotsPerStage int

	// Server model. Defaults reproduce the paper's single-server Redis
	// numbers: 8 shards, 0.92 MQPS reads, 0.80 MQPS writes.
	Workers     int
	ReadCost    time.Duration
	WriteCost   time.Duration
	ControlCost time.Duration
	Shards      int

	// Network model (defaults: 5µs links, lossless).
	LinkLatency  time.Duration
	LinkJitter   time.Duration
	DropProb     float64
	ReorderProb  float64
	ReorderDelay time.Duration

	// Lease management (§5.3). The controller renews at half-life.
	LeaseDuration time.Duration

	// Client behavior.
	RetryTimeout time.Duration

	// Ablations.
	DisableCommitStamp bool          // switch stamps a maximal commit point (unsafe)
	DisableReadChecks  bool          // replicas skip the §7 fast-read check (unsafe)
	DisableLazyCleanup bool          // stray dirty entries never reclaimed
	EagerCompletions   bool          // VR: completions at commit, not after COMMIT-ACKs
	SyncEvery          time.Duration // NOPaxos sync cadence

	// RecordHistory captures every operation for linearizability
	// checking (costs memory; off for throughput runs).
	RecordHistory bool

	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Stages <= 0 {
		c.Stages = 3
	}
	if c.SlotsPerStage <= 0 {
		c.SlotsPerStage = 64000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ReadCost <= 0 {
		// 8 workers / 0.92 MQPS per server.
		c.ReadCost = time.Duration(float64(c.Workers) / 0.92e6 * float64(time.Second))
	}
	if c.WriteCost <= 0 {
		c.WriteCost = time.Duration(float64(c.Workers) / 0.80e6 * float64(time.Second))
	}
	if c.ControlCost <= 0 {
		c.ControlCost = 2 * time.Microsecond
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 5 * time.Microsecond
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 50 * time.Millisecond
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 2 * time.Millisecond
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ReplicaHandle is the cluster's view of one protocol replica.
type ReplicaHandle interface {
	simnet.Handler
	// Preload installs an object directly (cluster warm-up).
	Preload(id wire.ObjectID, value []byte, seq wire.Seq)
}

// Cluster is an assembled simulated rack.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	net *simnet.Network

	swWrap   *switchWrapper
	sched    *core.Scheduler
	replicas []ReplicaHandle
	raw      any // protocol-specific slice for reconfiguration

	ctl *controller

	clients []*vclient
	hist    *recorder

	valueCtr int64

	epoch uint32
}

// switchWrapper lets the cluster swap the scheduler on switch
// replacement (a rebooted switch runs a fresh program instance).
type switchWrapper struct {
	inner simnet.Handler // nil = booting: drop everything
}

// Recv implements simnet.Handler.
func (w *switchWrapper) Recv(from simnet.NodeID, msg simnet.Message) {
	if w.inner != nil {
		w.inner.Recv(from, msg)
	}
}

// New assembles and primes a cluster.
func New(cfg Config) *Cluster {
	cfg.fillDefaults()
	c := &Cluster{
		cfg:   cfg,
		eng:   sim.NewEngine(cfg.Seed),
		hist:  newRecorder(),
		epoch: 1,
	}
	c.net = simnet.New(c.eng, simnet.LinkConfig{
		Latency: cfg.LinkLatency, Jitter: cfg.LinkJitter,
		DropProb: cfg.DropProb, ReorderProb: cfg.ReorderProb, ReorderDelay: cfg.ReorderDelay,
	})

	// Switch: line-rate node wrapping the scheduler.
	c.swWrap = &switchWrapper{}
	c.net.AddNode(switchAddr, c.swWrap, simnet.ProcConfig{Workers: 0})
	c.sched = c.newScheduler(c.epoch)
	c.swWrap.inner = c.sched

	// Controller.
	c.ctl = newController(c)
	c.net.AddNode(controllerAddr, c.ctl, simnet.ProcConfig{Workers: 0})

	// Replicas.
	c.buildReplicas()

	// Replica↔replica and controller channels model TCP: reliable and
	// FIFO (chain replication and primary-backup are only correct
	// under reliable inter-replica channels — a write lost mid-chain
	// forever would break the commit-order-equals-sequence-order
	// invariant the §7.2 check relies on). Loss and reordering apply
	// to the client↔switch↔replica packet path, which is where
	// Harmonia's own recovery mechanisms (client retries, stray
	// dirty-set entries, OUM gap handling) operate.
	reliable := simnet.LinkConfig{Latency: cfg.LinkLatency, Jitter: cfg.LinkJitter}
	addrs := c.replicaAddrs()
	for i, a := range addrs {
		for _, b := range addrs[i+1:] {
			c.net.SetLinkBoth(a, b, reliable)
		}
		c.net.SetLinkBoth(a, controllerAddr, reliable)
	}

	// Initial lease and priming write so the switch becomes ready.
	c.ctl.grantLeases(c.epoch)
	c.prime()
	return c
}

// Engine exposes the simulation engine (tests and harnesses).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Network exposes the simulated network (tests).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Scheduler exposes the active switch program (tests and stats).
func (c *Cluster) Scheduler() *core.Scheduler { return c.sched }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// replicaAddrs lists the replica addresses in index order.
func (c *Cluster) replicaAddrs() []simnet.NodeID {
	out := make([]simnet.NodeID, c.cfg.Replicas)
	for i := range out {
		out[i] = replicaBase + simnet.NodeID(i)
	}
	return out
}

// writeDst and readDst give the normal-path entry points per protocol.
func (c *Cluster) writeDst() simnet.NodeID {
	switch c.cfg.Protocol {
	case Chain, CRAQ:
		return replicaBase // head
	default:
		return replicaBase // primary / leader (index 0 at start)
	}
}

func (c *Cluster) readDst() simnet.NodeID {
	switch c.cfg.Protocol {
	case Chain:
		return replicaBase + simnet.NodeID(c.cfg.Replicas-1) // tail
	case CRAQ:
		return replicaBase // unused: RandomReads mode
	default:
		return replicaBase // primary / leader
	}
}

func (c *Cluster) newScheduler(epoch uint32) *core.Scheduler {
	return core.New(core.Config{
		Epoch:              epoch,
		Stages:             c.cfg.Stages,
		SlotsPerStage:      c.cfg.SlotsPerStage,
		Replicas:           c.replicaAddrs(),
		WriteDst:           c.writeDst(),
		ReadDst:            c.readDst(),
		MulticastWrites:    c.cfg.Protocol == NOPaxos,
		ClientBase:         clientBase,
		DisableFastReads:   !c.cfg.UseHarmonia,
		RandomReads:        c.cfg.Protocol == CRAQ,
		DisableCommitStamp: c.cfg.DisableCommitStamp,
		DisableLazyCleanup: c.cfg.DisableLazyCleanup,
		Rand:               c.eng.Rand(),
	}, core.SenderFunc(func(to simnet.NodeID, pkt *wire.Packet) {
		c.net.Send(switchAddr, to, pkt)
	}))
}

// replicaEnv adapts the network to protocol.Env.
type replicaEnv struct {
	c  *Cluster
	id simnet.NodeID
}

func (e *replicaEnv) ID() simnet.NodeID { return e.id }
func (e *replicaEnv) Send(to simnet.NodeID, msg any) {
	e.c.net.Send(e.id, to, msg)
}
func (e *replicaEnv) SendSwitch(pkt *wire.Packet) {
	e.c.net.Send(e.id, switchAddr, pkt)
}
func (e *replicaEnv) After(d time.Duration, fn func()) *sim.Timer { return e.c.eng.After(d, fn) }
func (e *replicaEnv) Now() sim.Time                               { return e.c.eng.Now() }
func (e *replicaEnv) Rand() *rand.Rand                            { return e.c.eng.Rand() }

// buildReplicas constructs the protocol replica set and registers the
// nodes with the calibrated processor model.
func (c *Cluster) buildReplicas() {
	addrs := c.replicaAddrs()
	cost := func(msg simnet.Message) time.Duration {
		switch protocol.ClassOf(msg) {
		case protocol.CostRead:
			return c.cfg.ReadCost
		case protocol.CostWrite:
			return c.cfg.WriteCost
		default:
			return c.cfg.ControlCost
		}
	}
	proc := simnet.ProcConfig{Workers: c.cfg.Workers, Cost: cost}

	n := c.cfg.Replicas
	f := (n - 1) / 2
	c.replicas = make([]ReplicaHandle, n)
	switch c.cfg.Protocol {
	case PB:
		rs := make([]*pb.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{Replicas: addrs, Self: i, F: f}
			rs[i] = pb.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			c.replicas[i] = pbHandle{rs[i]}
			c.net.AddNode(addrs[i], c.replicas[i], proc)
		}
		c.raw = rs
	case Chain:
		rs := make([]*chain.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{Replicas: addrs, Self: i, F: f}
			rs[i] = chain.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			c.replicas[i] = chainHandle{rs[i]}
			c.net.AddNode(addrs[i], c.replicas[i], proc)
		}
		c.raw = rs
	case CRAQ:
		rs := make([]*craq.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{Replicas: addrs, Self: i, F: f}
			rs[i] = craq.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			c.replicas[i] = craqHandle{rs[i]}
			c.net.AddNode(addrs[i], c.replicas[i], proc)
		}
		c.raw = rs
	case VR:
		rs := make([]*vr.Replica, n)
		opts := vr.DefaultOptions()
		opts.EagerCompletions = c.cfg.EagerCompletions
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{Replicas: addrs, Self: i, F: f}
			rs[i] = vr.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards, opts)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			rs[i].OnViewChange = c.onViewChange
			c.replicas[i] = vrHandle{rs[i]}
			c.net.AddNode(addrs[i], c.replicas[i], proc)
		}
		c.raw = rs
	case NOPaxos:
		rs := make([]*nopaxos.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{Replicas: addrs, Self: i, F: f}
			rs[i] = nopaxos.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards,
				nopaxos.Options{SyncEvery: c.cfg.SyncEvery})
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			c.replicas[i] = nopaxosHandle{rs[i]}
			c.net.AddNode(addrs[i], c.replicas[i], proc)
		}
		c.raw = rs
	default:
		panic("cluster: unknown protocol")
	}
}

// onViewChange retargets the switch at a new VR leader.
func (c *Cluster) onViewChange(view uint64, leader int) {
	dst := replicaBase + simnet.NodeID(leader)
	c.sched.SetTargets(dst, dst)
}

// prime issues one write end-to-end so the switch observes its first
// WRITE-COMPLETION and enables single-replica reads (§5.3 applies to
// cold boots exactly as to replacements).
func (c *Cluster) prime() {
	pkt := &wire.Packet{
		Op: wire.OpWrite, ObjID: wire.HashKey("__prime__"), Key: "__prime__",
		ClientID: 0, ReqID: 1, Value: []byte{1},
	}
	c.net.Send(clientBase, switchAddr, pkt)
	// Drive the write (and for NOPaxos, a sync round) to completion.
	c.eng.RunFor(20 * time.Millisecond)
}

// Preload installs n objects across all replicas without going
// through the protocol, and returns the value ids used (for history
// seeding).
func (c *Cluster) Preload(n int) {
	for i := 0; i < n; i++ {
		key := keyName(i)
		id := wire.HashKey(key)
		c.valueCtr++
		val := encodeValue(c.valueCtr)
		seq := wire.Seq{Epoch: 0, N: uint64(i + 1)}
		for _, r := range c.replicas {
			r.Preload(id, val, seq)
		}
		if c.cfg.RecordHistory {
			c.hist.preload(uint64(id), c.valueCtr)
		}
	}
}

// RunFor advances simulated time.
func (c *Cluster) RunFor(d time.Duration) { c.eng.RunFor(d) }

// --- failure injection ---

// StopSwitch halts the switch (it stops forwarding entirely, as in
// §9.6's experiment).
func (c *Cluster) StopSwitch() {
	c.net.SetDown(switchAddr, true)
}

// ReactivateSwitch brings up a replacement switch with a fresh epoch
// and empty register state, then runs the §5.3 agreement: replicas
// revoke the old lease before the new switch may forward writes, and
// fast-path reads resume only after the first new-epoch
// WRITE-COMPLETION reaches the switch.
func (c *Cluster) ReactivateSwitch() {
	c.net.SetDown(switchAddr, false)
	c.epoch++
	next := c.newScheduler(c.epoch)
	c.swWrap.inner = nil // booting: drops traffic until agreement done
	c.ctl.revokeThen(c.epoch-1, func() {
		c.swWrap.inner = next
		c.sched = next
		c.ctl.grantLeases(c.epoch)
	})
}

// CrashReplica fails replica i: its node drops all traffic and the
// protocol reconfigures around it where supported (§5.3 server
// failures). The switch stops scheduling fast-path reads to it.
func (c *Cluster) CrashReplica(i int) error {
	if i < 0 || i >= c.cfg.Replicas {
		return fmt.Errorf("cluster: replica %d out of range", i)
	}
	addr := replicaBase + simnet.NodeID(i)
	c.net.SetDown(addr, true)
	c.sched.RemoveReplica(addr)
	switch rs := c.raw.(type) {
	case []*chain.Replica:
		for j, r := range rs {
			if j != i {
				r.Reconfigure(i)
			}
		}
		// Retarget head/tail.
		head, tail := -1, -1
		for j, r := range rs {
			if j == i {
				continue
			}
			if r.IsHead() && head == -1 {
				head = j
			}
			if r.IsTail() {
				tail = j
			}
		}
		if head >= 0 && tail >= 0 {
			c.sched.SetTargets(replicaBase+simnet.NodeID(head), replicaBase+simnet.NodeID(tail))
		}
	case []*pb.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: primary failover requires an external configuration service (not modeled)")
		}
		for j, r := range rs {
			if j != i {
				r.RemoveBackup(i)
			}
		}
	case []*vr.Replica:
		// The VR view-change timers handle leader failure. For any
		// failure, survivors stop waiting on the dead replica's
		// COMMIT-ACKs so WRITE-COMPLETIONs keep flowing.
		for j, r := range rs {
			if j != i {
				r.MarkDead(i)
			}
		}
	case []*nopaxos.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: NOPaxos leader failover (view change) not modeled")
		}
	case []*craq.Replica:
		return fmt.Errorf("cluster: CRAQ reconfiguration not modeled")
	}
	return nil
}

// SwitchAddr returns the switch's network address (experiment hooks).
func (c *Cluster) SwitchAddr() simnet.NodeID { return switchAddr }

// ReplicaAddr returns replica i's network address (experiment hooks).
func (c *Cluster) ReplicaAddr(i int) simnet.NodeID { return replicaBase + simnet.NodeID(i) }

// ShimStats sums the replicas' fast-path shim counters.
func (c *Cluster) ShimStats() (served, rejected, leaseRejected uint64) {
	add := func(b *protocol.Base) {
		served += b.FastServed
		rejected += b.FastRejected
		leaseRejected += b.LeaseRejected
	}
	switch rs := c.raw.(type) {
	case []*pb.Replica:
		for _, r := range rs {
			add(r.Base)
		}
	case []*chain.Replica:
		for _, r := range rs {
			add(r.Base)
		}
	case []*vr.Replica:
		for _, r := range rs {
			add(r.Base)
		}
	case []*nopaxos.Replica:
		for _, r := range rs {
			add(r.Base)
		}
	}
	return
}

// --- small helpers ---

func keyName(i int) string { return fmt.Sprintf("obj%08d", i) }

func encodeValue(id int64) []byte {
	b := make([]byte, 8)
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(id) >> (8 * k))
	}
	return b
}

func decodeValue(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(b[k]) << (8 * k)
	}
	return int64(v)
}
