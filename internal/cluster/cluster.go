// Package cluster assembles a complete simulated Harmonia rack: the
// in-switch request scheduler (partitioned across one or more replica
// groups behind a single switch front-end), the protocol instances
// running on the replicas, a controller for the §5.3 lease/failover
// agreements, and load-generating clients. It is the substrate every
// end-to-end test, example, and benchmark runs on.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/protocol"
	"harmonia/internal/protocol/chain"
	"harmonia/internal/protocol/craq"
	"harmonia/internal/protocol/nopaxos"
	"harmonia/internal/protocol/pb"
	"harmonia/internal/protocol/vr"
	"harmonia/internal/rebalance"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/store"
	"harmonia/internal/wire"
)

// Protocol selects the replication protocol.
type Protocol int

// The supported protocols.
const (
	PB Protocol = iota
	Chain
	CRAQ
	VR
	NOPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PB:
		return "PB"
	case Chain:
		return "CR"
	case CRAQ:
		return "CRAQ"
	case VR:
		return "VR"
	case NOPaxos:
		return "NOPaxos"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ReadBehind reports whether the protocol's §7 class is read-behind.
func (p Protocol) ReadBehind() bool { return p == VR || p == NOPaxos }

// Node addressing scheme. Each replica group owns a groupStride-wide
// window of the replica address space; clients sit far above it.
const (
	switchAddr     simnet.NodeID = 1
	controllerAddr simnet.NodeID = 2
	replicaBase    simnet.NodeID = 10
	groupStride    simnet.NodeID = 1024
	clientBase     simnet.NodeID = 1 << 20
)

// MaxGroups bounds Config.Groups so replica addresses never collide
// with the client address space.
const MaxGroups = 256

// groupReplicaAddr returns the network address of replica i of group g.
func groupReplicaAddr(g, i int) simnet.NodeID {
	return replicaBase + simnet.NodeID(g)*groupStride + simnet.NodeID(i)
}

// Config parameterizes a cluster.
type Config struct {
	Protocol    Protocol
	Replicas    int
	UseHarmonia bool

	// Groups shards the key space across this many replica groups
	// behind the one switch (§6.1). Each group runs its own protocol
	// instance over Replicas members and its own scheduler partition.
	// Default 1: the classic single-group rack.
	Groups int

	// Switch dirty-set sizing (defaults: 3 × 64000, the prototype's).
	// Each group's partition gets a table of this size.
	Stages        int
	SlotsPerStage int

	// Server model. Defaults reproduce the paper's single-server Redis
	// numbers: 8 shards, 0.92 MQPS reads, 0.80 MQPS writes.
	Workers     int
	ReadCost    time.Duration
	WriteCost   time.Duration
	ControlCost time.Duration
	Shards      int

	// Network model (defaults: 5µs links, lossless).
	LinkLatency  time.Duration
	LinkJitter   time.Duration
	DropProb     float64
	ReorderProb  float64
	ReorderDelay time.Duration

	// Lease management (§5.3). The controller renews at half-life.
	LeaseDuration time.Duration

	// SweepInterval is the cadence of the §5.2 periodic stray-entry
	// sweep, run per scheduler partition (strays accumulate when
	// WRITE-COMPLETIONs are lost and the object is never read again;
	// the read-path lazy cleanup cannot reach them). 0 selects the
	// 10ms default — unless DisableLazyCleanup is set, which disables
	// the sweep too (it is the "no reclamation" ablation). Negative
	// disables the sweep explicitly.
	SweepInterval time.Duration

	// Client behavior.
	RetryTimeout time.Duration

	// Ablations.
	DisableCommitStamp bool          // switch stamps a maximal commit point (unsafe)
	DisableReadChecks  bool          // replicas skip the §7 fast-read check (unsafe)
	DisableLazyCleanup bool          // stray dirty entries never reclaimed
	EagerCompletions   bool          // VR: completions at commit, not after COMMIT-ACKs
	SyncEvery          time.Duration // NOPaxos sync cadence

	// AutoRebalance arms the autonomous rebalancer: a control loop
	// that samples the front-end's per-slot heat counters every policy
	// interval (decaying them afterwards, so they track a recent
	// window), plans moves under the threshold/hysteresis/cost model
	// of internal/rebalance, and executes them as batch slot
	// migrations — no offline workload knowledge involved.
	AutoRebalance bool

	// Rebalance tunes the rebalancer policy; zero fields select the
	// package defaults. Ignored unless AutoRebalance is set.
	Rebalance rebalance.Config

	// RecordHistory captures every operation for linearizability
	// checking (costs memory; off for throughput runs).
	RecordHistory bool

	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.Groups > MaxGroups {
		// Beyond this the replica address windows would collide with
		// the client address space; clamp rather than misroute.
		c.Groups = MaxGroups
	}
	if c.Stages <= 0 {
		c.Stages = 3
	}
	if c.SlotsPerStage <= 0 {
		c.SlotsPerStage = 64000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ReadCost <= 0 {
		// 8 workers / 0.92 MQPS per server.
		c.ReadCost = time.Duration(float64(c.Workers) / 0.92e6 * float64(time.Second))
	}
	if c.WriteCost <= 0 {
		c.WriteCost = time.Duration(float64(c.Workers) / 0.80e6 * float64(time.Second))
	}
	if c.ControlCost <= 0 {
		c.ControlCost = 2 * time.Microsecond
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 5 * time.Microsecond
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 50 * time.Millisecond
	}
	if c.SweepInterval == 0 {
		if c.DisableLazyCleanup {
			c.SweepInterval = -1
		} else {
			c.SweepInterval = 10 * time.Millisecond
		}
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 2 * time.Millisecond
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ReplicaHandle is the cluster's view of one protocol replica.
type ReplicaHandle interface {
	simnet.Handler
	// Preload installs an object directly (cluster warm-up).
	Preload(id wire.ObjectID, value []byte, seq wire.Seq)
	// ExtractSlot copies the replica's live objects in one routing
	// slot (migration source side).
	ExtractSlot(slot int) map[wire.ObjectID]store.Object
	// InstallSlot installs migrated objects (migration destination
	// side). Sequence numbers must already be neutered to epoch 0 so
	// the destination's write-order guard is untouched.
	InstallSlot(objs map[wire.ObjectID]store.Object)
	// DropSlot removes the slot's objects (migration source cleanup).
	DropSlot(slot int) int
	// ExportClients copies the replica's at-most-once client table;
	// MergeClients installs exported records (newer request per client
	// wins). A handoff moves the table with the objects: without it the
	// destination would re-execute a write whose reply was lost, and
	// the duplicate could clobber a newer committed value.
	ExportClients() map[uint32]protocol.ClientRecord
	MergeClients(recs map[uint32]protocol.ClientRecord)
}

// replicaGroup is one replica group: a partition of the key space with
// its own protocol instance and scheduler state behind the shared
// switch.
type replicaGroup struct {
	idx      int
	n        int // group size (== Config.Replicas)
	sched    *core.Scheduler
	replicas []ReplicaHandle
	raw      any // protocol-specific slice for reconfiguration
}

// addrs lists the group's replica addresses in index order.
func (g *replicaGroup) addrs() []simnet.NodeID {
	out := make([]simnet.NodeID, g.n)
	for i := range out {
		out[i] = groupReplicaAddr(g.idx, i)
	}
	return out
}

// Cluster is an assembled simulated rack.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	net *simnet.Network

	front  *core.Frontend
	groups []*replicaGroup

	// replicas is the flattened, group-major view of every replica —
	// the convenient shape for stats sweeps and single-group tests.
	replicas []ReplicaHandle

	ctl *controller

	clients []*vclient
	hist    *recorder

	valueCtr int64

	epoch uint32

	// migrations tracks in-flight slot handoffs by slot.
	migrations map[int]*Migration
	// flushCtr numbers the drain protocol's flush writes.
	flushCtr uint64

	// policy is the autonomous rebalancer (nil unless AutoRebalance).
	policy *rebalance.Policy
	// rebalanced counts slot moves completed by the rebalancer;
	// rebalanceRounds counts its completed batch handoffs.
	rebalanced      uint64
	rebalanceRounds uint64
}

// New assembles and primes a cluster.
func New(cfg Config) *Cluster {
	cfg.fillDefaults()
	c := &Cluster{
		cfg:        cfg,
		eng:        sim.NewEngine(cfg.Seed),
		hist:       newRecorder(),
		epoch:      1,
		migrations: make(map[int]*Migration),
	}
	c.net = simnet.New(c.eng, simnet.LinkConfig{
		Latency: cfg.LinkLatency, Jitter: cfg.LinkJitter,
		DropProb: cfg.DropProb, ReorderProb: cfg.ReorderProb, ReorderDelay: cfg.ReorderDelay,
	})

	// Switch: one line-rate node hosting a scheduler partition per
	// group behind the hashing front-end.
	c.front = core.NewFrontend(cfg.Groups)
	c.net.AddNode(switchAddr, c.front, simnet.ProcConfig{Workers: 0})

	// Controller.
	c.ctl = newController(c)
	c.net.AddNode(controllerAddr, c.ctl, simnet.ProcConfig{Workers: 0})

	// Replica groups: scheduler partition + protocol instance each.
	c.groups = make([]*replicaGroup, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		grp := &replicaGroup{idx: g, n: cfg.Replicas}
		c.groups[g] = grp
		grp.sched = c.newScheduler(g, c.epoch)
		c.front.SetGroup(g, grp.sched)
		c.buildGroupReplicas(grp)
		c.replicas = append(c.replicas, grp.replicas...)
	}

	// Replica↔replica and controller channels model TCP: reliable and
	// FIFO (chain replication and primary-backup are only correct
	// under reliable inter-replica channels — a write lost mid-chain
	// forever would break the commit-order-equals-sequence-order
	// invariant the §7.2 check relies on). Loss and reordering apply
	// to the client↔switch↔replica packet path, which is where
	// Harmonia's own recovery mechanisms (client retries, stray
	// dirty-set entries, OUM gap handling) operate. Groups never talk
	// to each other: the key space is partitioned.
	reliable := simnet.LinkConfig{Latency: cfg.LinkLatency, Jitter: cfg.LinkJitter}
	for _, grp := range c.groups {
		addrs := grp.addrs()
		for i, a := range addrs {
			for _, b := range addrs[i+1:] {
				c.net.SetLinkBoth(a, b, reliable)
			}
			c.net.SetLinkBoth(a, controllerAddr, reliable)
		}
	}

	// Initial leases and one priming write per group so every
	// scheduler partition becomes ready.
	for _, grp := range c.groups {
		c.ctl.grantGroupLeases(grp.idx, c.epoch)
	}
	c.startSweeps()
	c.prime()
	if cfg.AutoRebalance {
		c.startRebalancer()
	}
	return c
}

// startRebalancer arms the autonomous rebalancing loop: every policy
// interval it samples the front-end's heat registers and routing
// table, asks the policy for a batch of moves, starts them as
// non-blocking batch migrations (so the loop never stalls the
// simulation), and then decays the heat counters — the EWMA round that
// keeps the sample tracking recent traffic.
func (c *Cluster) startRebalancer() {
	c.policy = rebalance.New(c.cfg.Rebalance, func() time.Duration {
		return time.Duration(c.eng.Now())
	})
	iv := c.policy.Config().Interval
	var tick func()
	tick = func() {
		c.rebalanceTick()
		c.eng.After(iv, tick)
	}
	c.eng.After(iv, tick)
}

// rebalanceTick runs one control-loop round.
func (c *Cluster) rebalanceTick() {
	raw := c.front.SlotHeat()
	heat := make([]rebalance.Heat, len(raw))
	for s, h := range raw {
		heat[s] = rebalance.Heat{Reads: h.Reads, Writes: h.Writes}
	}
	// Per-slot object counts are not sampled here: a store scan per
	// tick is exactly the kind of heavy probe the switch-side counters
	// exist to avoid, so the live loop charges the flat MoveCost per
	// slot and leaves ObjectCost to callers with offline knowledge.
	// Slots still mid-handoff from a previous round are reported busy
	// so the policy plans around them (and does not burn its trigger
	// on a round that could start nothing).
	busy := func(slot int) bool {
		_, b := c.migrations[slot]
		return b || c.front.Frozen(slot)
	}
	moves := c.policy.Plan(heat, c.front.SlotTable(), nil, len(c.groups), busy)
	// Group the moves into batches by (source, destination) pair,
	// preserving plan order so runs stay deterministic.
	type pair struct{ from, to int }
	var order []pair
	batches := make(map[pair][]int)
	for _, mv := range moves {
		p := pair{mv.From, mv.To}
		if _, ok := batches[p]; !ok {
			order = append(order, p)
		}
		batches[p] = append(batches[p], mv.Slot)
	}
	for _, p := range order {
		m, err := c.StartBatchMigration(batches[p], p.to)
		if err != nil {
			continue // e.g. a route changed under us; next tick re-plans
		}
		m.auto = true
	}
	c.front.DecayHeat()
}

// SlotHeat returns a copy of the switch front-end's per-slot heat
// counters.
func (c *Cluster) SlotHeat() []core.SlotHeat { return c.front.SlotHeat() }

// Rebalances returns the total slot moves completed by the autonomous
// rebalancer over the cluster's lifetime.
func (c *Cluster) Rebalances() uint64 { return c.rebalanced }

// RebalanceRounds returns the number of completed rebalancer batch
// handoffs.
func (c *Cluster) RebalanceRounds() uint64 { return c.rebalanceRounds }

// startSweeps arms the periodic §5.2 stray-entry sweep, one recurring
// timer per scheduler partition. The closure re-reads grp.sched each
// tick so the sweep follows a replacement switch's new scheduler.
func (c *Cluster) startSweeps() {
	iv := c.cfg.SweepInterval
	if iv <= 0 {
		return
	}
	for _, grp := range c.groups {
		grp := grp
		var tick func()
		tick = func() {
			if s := grp.sched; s != nil && s.DirtyCount() > 0 {
				s.SweepStale()
			}
			c.eng.After(iv, tick)
		}
		c.eng.After(iv, tick)
	}
}

// Engine exposes the simulation engine (tests and harnesses).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Network exposes the simulated network (tests).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Scheduler exposes group 0's active switch program — the whole switch
// state for single-group clusters (tests and stats).
func (c *Cluster) Scheduler() *core.Scheduler { return c.groups[0].sched }

// GroupScheduler exposes group g's active scheduler partition.
func (c *Cluster) GroupScheduler(g int) *core.Scheduler { return c.groups[g].sched }

// Groups returns the replica-group count.
func (c *Cluster) Groups() int { return len(c.groups) }

// Frontend exposes the switch front-end (tests and stats).
func (c *Cluster) Frontend() *core.Frontend { return c.front }

// routeObj returns the group currently serving id, per the switch
// front-end's slot table — the routing authority.
func (c *Cluster) routeObj(id wire.ObjectID) int { return c.front.RouteObj(id) }

// GroupOf returns the replica group that currently owns key.
func (c *Cluster) GroupOf(key string) int {
	return c.routeObj(wire.HashKey(key))
}

// SlotOfKey returns key's routing slot.
func (c *Cluster) SlotOfKey(key string) int {
	return wire.SlotOf(wire.HashKey(key))
}

// SlotTable returns a copy of the switch front-end's slot → group
// table.
func (c *Cluster) SlotTable() []int { return c.front.SlotTable() }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// writeDst and readDst give the normal-path entry points per protocol
// within group g.
func (c *Cluster) writeDst(g int) simnet.NodeID {
	switch c.cfg.Protocol {
	case Chain, CRAQ:
		return groupReplicaAddr(g, 0) // head
	default:
		return groupReplicaAddr(g, 0) // primary / leader (index 0 at start)
	}
}

func (c *Cluster) readDst(g int) simnet.NodeID {
	switch c.cfg.Protocol {
	case Chain:
		return groupReplicaAddr(g, c.cfg.Replicas-1) // tail
	case CRAQ:
		return groupReplicaAddr(g, 0) // unused: RandomReads mode
	default:
		return groupReplicaAddr(g, 0) // primary / leader
	}
}

func (c *Cluster) newScheduler(g int, epoch uint32) *core.Scheduler {
	addrs := c.groups[g].addrs()
	return core.New(core.Config{
		Epoch:              epoch,
		Stages:             c.cfg.Stages,
		SlotsPerStage:      c.cfg.SlotsPerStage,
		Replicas:           addrs,
		WriteDst:           c.writeDst(g),
		ReadDst:            c.readDst(g),
		MulticastWrites:    c.cfg.Protocol == NOPaxos,
		ClientBase:         clientBase,
		DisableFastReads:   !c.cfg.UseHarmonia,
		RandomReads:        c.cfg.Protocol == CRAQ,
		DisableCommitStamp: c.cfg.DisableCommitStamp,
		DisableLazyCleanup: c.cfg.DisableLazyCleanup,
		Rand:               c.eng.Rand(),
	}, core.SenderFunc(func(to simnet.NodeID, pkt *wire.Packet) {
		c.net.Send(switchAddr, to, pkt)
	}))
}

// replicaEnv adapts the network to protocol.Env.
type replicaEnv struct {
	c  *Cluster
	id simnet.NodeID
}

func (e *replicaEnv) ID() simnet.NodeID { return e.id }
func (e *replicaEnv) Send(to simnet.NodeID, msg any) {
	e.c.net.Send(e.id, to, msg)
}
func (e *replicaEnv) SendSwitch(pkt *wire.Packet) {
	e.c.net.Send(e.id, switchAddr, pkt)
}
func (e *replicaEnv) After(d time.Duration, fn func()) *sim.Timer { return e.c.eng.After(d, fn) }
func (e *replicaEnv) Now() sim.Time                               { return e.c.eng.Now() }
func (e *replicaEnv) Rand() *rand.Rand                            { return e.c.eng.Rand() }

// buildGroupReplicas constructs one group's protocol replica set and
// registers the nodes with the calibrated processor model.
func (c *Cluster) buildGroupReplicas(grp *replicaGroup) {
	addrs := grp.addrs()
	cost := func(msg simnet.Message) time.Duration {
		switch protocol.ClassOf(msg) {
		case protocol.CostRead:
			return c.cfg.ReadCost
		case protocol.CostWrite:
			return c.cfg.WriteCost
		default:
			return c.cfg.ControlCost
		}
	}
	proc := simnet.ProcConfig{Workers: c.cfg.Workers, Cost: cost}

	n := c.cfg.Replicas
	f := (n - 1) / 2
	gid := grp.idx
	grp.replicas = make([]ReplicaHandle, n)
	switch c.cfg.Protocol {
	case PB:
		rs := make([]*pb.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = pb.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = pbHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case Chain:
		rs := make([]*chain.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = chain.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = chainHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case CRAQ:
		rs := make([]*craq.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = craq.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards)
			grp.replicas[i] = craqHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case VR:
		rs := make([]*vr.Replica, n)
		opts := vr.DefaultOptions()
		opts.EagerCompletions = c.cfg.EagerCompletions
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = vr.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards, opts)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			rs[i].OnViewChange = c.viewChangeHook(gid)
			grp.replicas[i] = vrHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case NOPaxos:
		rs := make([]*nopaxos.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = nopaxos.New(&replicaEnv{c, addrs[i]}, g, c.cfg.Shards,
				nopaxos.Options{SyncEvery: c.cfg.SyncEvery})
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = nopaxosHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	default:
		panic("cluster: unknown protocol")
	}
}

// viewChangeHook retargets group g's scheduler partition at a new VR
// leader.
func (c *Cluster) viewChangeHook(g int) func(view uint64, leader int) {
	return func(view uint64, leader int) {
		dst := groupReplicaAddr(g, leader)
		c.groups[g].sched.SetTargets(dst, dst)
	}
}

// primeKey returns a key owned by group g. Single-group clusters keep
// the historical "__prime__" key; sharded ones search a deterministic
// suffix until the route lands in the right partition.
func (c *Cluster) primeKey(g int) string {
	if len(c.groups) == 1 {
		return "__prime__"
	}
	k, ok := c.keyInGroup(g, fmt.Sprintf("__prime__%d_", g), -1)
	if !ok {
		// At boot the default striping guarantees every group owns
		// slots (MaxGroups == wire.NumSlots), so the search cannot
		// fail there.
		panic(fmt.Sprintf("cluster: no prime key for group %d", g))
	}
	return k
}

// keyInGroup searches the deterministic key family prefix0, prefix1, …
// for one the front-end currently routes to group g through a slot
// that is neither avoidSlot (pass -1 to accept any) nor frozen. Used
// for priming writes and for the migration drain's flush writes, which
// must not land in the frozen slot they are trying to drain — or in
// any other slot mid-migration, whose packets the front-end drops. The
// search is bounded: a group can legitimately own no eligible slot
// (every slot migrated away, or its remaining slots all frozen), in
// which case ok is false.
func (c *Cluster) keyInGroup(g int, prefix string, avoidSlot int) (key string, ok bool) {
	// ~16 deterministic probes per slot of the table: ample to hit
	// every eligible slot, while still terminating when none exists.
	for t := 0; t < 16*wire.NumSlots; t++ {
		k := fmt.Sprintf("%s%d", prefix, t)
		id := wire.HashKey(k)
		slot := wire.SlotOf(id)
		if c.routeObj(id) == g && slot != avoidSlot && !c.front.Frozen(slot) {
			return k, true
		}
	}
	return "", false
}

// prime issues one write per group end-to-end so every scheduler
// partition observes its first WRITE-COMPLETION and enables
// single-replica reads (§5.3 applies to cold boots exactly as to
// replacements).
func (c *Cluster) prime() {
	for g := range c.groups {
		key := c.primeKey(g)
		pkt := &wire.Packet{
			Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
			Group: uint16(g), ClientID: 0, ReqID: uint64(g + 1), Value: []byte{1},
		}
		c.net.Send(clientBase, switchAddr, pkt)
	}
	// Drive the writes (and for NOPaxos, a sync round) to completion.
	c.eng.RunFor(20 * time.Millisecond)
}

// Preload installs n objects into their owning groups without going
// through the protocol, and records them for history seeding.
func (c *Cluster) Preload(n int) {
	for i := 0; i < n; i++ {
		key := keyName(i)
		id := wire.HashKey(key)
		c.valueCtr++
		val := encodeValue(c.valueCtr)
		seq := wire.Seq{Epoch: 0, N: uint64(i + 1)}
		grp := c.groups[c.routeObj(id)]
		for _, r := range grp.replicas {
			r.Preload(id, val, seq)
		}
		if c.cfg.RecordHistory {
			c.hist.preload(uint64(id), c.valueCtr)
		}
	}
}

// ownedKeyIndices partitions the workload's key indices [0, keys) by
// owning group — the load generator's view of the shard map.
func (c *Cluster) ownedKeyIndices(keys int) [][]int {
	out := make([][]int, len(c.groups))
	for i := 0; i < keys; i++ {
		g := c.routeObj(wire.HashKey(keyName(i)))
		out[g] = append(out[g], i)
	}
	return out
}

// RunFor advances simulated time.
func (c *Cluster) RunFor(d time.Duration) { c.eng.RunFor(d) }

// --- failure injection ---

// StopSwitch halts the switch (it stops forwarding entirely for every
// group, as in §9.6's experiment).
func (c *Cluster) StopSwitch() {
	c.net.SetDown(switchAddr, true)
}

// ReactivateSwitch brings up a replacement switch with a fresh epoch
// and empty register state, then runs the §5.3 agreement per group:
// a group's replicas revoke the old lease before the new switch may
// forward that group's writes, and its fast-path reads resume only
// after the first new-epoch WRITE-COMPLETION reaches the partition.
// Groups recover independently — a slow group does not hold back the
// rest of the rack.
func (c *Cluster) ReactivateSwitch() {
	c.net.SetDown(switchAddr, false)
	c.epoch++
	c.front.Reboot() // booting: drops traffic until agreement done
	for _, grp := range c.groups {
		grp := grp
		next := c.newScheduler(grp.idx, c.epoch)
		c.ctl.revokeThen(grp.idx, c.epoch-1, func() {
			c.front.SetGroup(grp.idx, next)
			grp.sched = next
			c.ctl.grantGroupLeases(grp.idx, c.epoch)
		})
	}
}

// CrashReplica fails replica i of group 0 — the whole story for
// single-group clusters. Sharded clusters use CrashReplicaIn.
func (c *Cluster) CrashReplica(i int) error { return c.CrashReplicaIn(0, i) }

// CrashReplicaIn fails replica i of group g: its node drops all
// traffic and the group's protocol instance reconfigures around it
// where supported (§5.3 server failures). The switch stops scheduling
// that group's fast-path reads to it; other groups are untouched.
func (c *Cluster) CrashReplicaIn(g, i int) error {
	if g < 0 || g >= len(c.groups) {
		return fmt.Errorf("cluster: group %d out of range", g)
	}
	if i < 0 || i >= c.cfg.Replicas {
		return fmt.Errorf("cluster: replica %d out of range", i)
	}
	grp := c.groups[g]
	addr := groupReplicaAddr(g, i)
	c.net.SetDown(addr, true)
	grp.sched.RemoveReplica(addr)
	switch rs := grp.raw.(type) {
	case []*chain.Replica:
		for j, r := range rs {
			if j != i {
				r.Reconfigure(i)
			}
		}
		// Retarget head/tail.
		head, tail := -1, -1
		for j, r := range rs {
			if j == i {
				continue
			}
			if r.IsHead() && head == -1 {
				head = j
			}
			if r.IsTail() {
				tail = j
			}
		}
		if head >= 0 && tail >= 0 {
			grp.sched.SetTargets(groupReplicaAddr(g, head), groupReplicaAddr(g, tail))
		}
	case []*pb.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: primary failover requires an external configuration service (not modeled)")
		}
		for j, r := range rs {
			if j != i {
				r.RemoveBackup(i)
			}
		}
	case []*vr.Replica:
		// The VR view-change timers handle leader failure. For any
		// failure, survivors stop waiting on the dead replica's
		// COMMIT-ACKs so WRITE-COMPLETIONs keep flowing.
		for j, r := range rs {
			if j != i {
				r.MarkDead(i)
			}
		}
	case []*nopaxos.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: NOPaxos leader failover (view change) not modeled")
		}
	case []*craq.Replica:
		return fmt.Errorf("cluster: CRAQ reconfiguration not modeled")
	}
	return nil
}

// SwitchAddr returns the switch's network address (experiment hooks).
func (c *Cluster) SwitchAddr() simnet.NodeID { return switchAddr }

// ReplicaAddr returns replica i of group 0's network address
// (experiment hooks; see GroupReplicaAddr for sharded clusters).
func (c *Cluster) ReplicaAddr(i int) simnet.NodeID { return groupReplicaAddr(0, i) }

// GroupReplicaAddr returns replica i of group g's network address.
func (c *Cluster) GroupReplicaAddr(g, i int) simnet.NodeID { return groupReplicaAddr(g, i) }

// ShimStats sums the replicas' fast-path shim counters across all
// groups.
func (c *Cluster) ShimStats() (served, rejected, leaseRejected uint64) {
	add := func(b *protocol.Base) {
		served += b.FastServed
		rejected += b.FastRejected
		leaseRejected += b.LeaseRejected
	}
	for _, grp := range c.groups {
		switch rs := grp.raw.(type) {
		case []*pb.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*chain.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*vr.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*nopaxos.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		}
	}
	return
}

// --- small helpers ---

func keyName(i int) string { return fmt.Sprintf("obj%08d", i) }

func encodeValue(id int64) []byte {
	b := make([]byte, 8)
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(id) >> (8 * k))
	}
	return b
}

func decodeValue(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(b[k]) << (8 * k)
	}
	return int64(v)
}
