// Package cluster assembles a complete simulated Harmonia rack: one or
// more switch front-ends (each an independent epoch/lease domain owning
// a shard of the routing slots, coordinated by internal/rack), the
// in-switch request schedulers partitioned across the replica groups,
// the protocol instances running on the replicas, a rack-level
// controller for the §5.3 lease/failover agreements, and
// load-generating clients. It is the substrate every end-to-end test,
// example, and benchmark runs on.
package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/protocol"
	"harmonia/internal/protocol/chain"
	"harmonia/internal/protocol/craq"
	"harmonia/internal/protocol/nopaxos"
	"harmonia/internal/protocol/pb"
	"harmonia/internal/protocol/vr"
	"harmonia/internal/rack"
	"harmonia/internal/rebalance"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
	"harmonia/internal/store"
	"harmonia/internal/trace"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// Protocol selects the replication protocol.
type Protocol int

// The supported protocols.
const (
	PB Protocol = iota
	Chain
	CRAQ
	VR
	NOPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PB:
		return "PB"
	case Chain:
		return "CR"
	case CRAQ:
		return "CRAQ"
	case VR:
		return "VR"
	case NOPaxos:
		return "NOPaxos"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ReadBehind reports whether the protocol's §7 class is read-behind.
func (p Protocol) ReadBehind() bool { return p == VR || p == NOPaxos }

// Node addressing scheme. Switch 0 keeps the historical address 1;
// additional switches of a multi-switch rack sit at 3..9 (between the
// controller and the replica windows). Each replica group owns a
// groupStride-wide window of the replica address space; clients sit
// far above it.
const (
	switchAddr     simnet.NodeID = 1
	controllerAddr simnet.NodeID = 2
	replicaBase    simnet.NodeID = 10
	groupStride    simnet.NodeID = 1024
	clientBase     simnet.NodeID = 1 << 20
)

// MaxGroups bounds Config.Groups so replica addresses never collide
// with the client address space.
const MaxGroups = 256

// MaxSwitches bounds Config.Switches (rack.MaxSwitches re-exported so
// the address block 3..9 always suffices).
const MaxSwitches = rack.MaxSwitches

// switchAddrOf returns the network address of switch s's front-end.
func switchAddrOf(s int) simnet.NodeID {
	if s == 0 {
		return switchAddr
	}
	return controllerAddr + simnet.NodeID(s) // 3..9 for switches 1..7
}

// groupReplicaAddr returns the network address of replica i of group
// g's ORIGINAL member set (incarnation 0).
func groupReplicaAddr(g, i int) simnet.NodeID {
	return groupIncReplicaAddr(g, 0, i)
}

// incStride carves each group's groupStride-wide address window into
// incarnation sub-windows: a membership respec replaces the whole
// member set, and the simulated network's node IDs are permanent
// (simnet.AddNode rejects reuse), so each new set lives at the next
// sub-window. 16 incarnations × up to 64 replicas per group.
const incStride simnet.NodeID = 64

// maxIncarnations bounds how many times one group can be respec'd.
const maxIncarnations = int(groupStride / incStride)

// groupIncReplicaAddr returns the network address of replica i of
// group g's incarnation inc.
func groupIncReplicaAddr(g, inc, i int) simnet.NodeID {
	return replicaBase + simnet.NodeID(g)*groupStride + simnet.NodeID(inc)*incStride + simnet.NodeID(i)
}

// GroupSpec describes one replica group of a (possibly heterogeneous)
// cluster: its replication protocol, its size, its relative capacity,
// and optional server-calibration overrides. The zero value of every
// field inherits the cluster-wide setting.
type GroupSpec struct {
	Protocol Protocol
	Replicas int // default: the cluster's Replicas

	// Harmonia enables in-network conflict detection for this group's
	// scheduler partition. Resolved during defaulting: the cluster's
	// UseHarmonia, except CRAQ groups, which are always the
	// protocol-level baseline and run without switch assistance.
	Harmonia bool

	// Weight is the group's relative capacity — the number the
	// weighted slot-shard layout, the rebalancer's per-capacity-unit
	// thresholds, and the pinned client pool's split all normalize by.
	// 0 derives it from the group's calibrated service rate
	// (workload.ServiceRate at the paper's default 5% write ratio), so
	// a 7-replica Harmonia group automatically outweighs a 3-replica
	// one. Set it on every spec or on none: derived weights are
	// absolute ops/s, a scale explicit ratios cannot meaningfully mix
	// with (the public API rejects the mixture).
	Weight float64

	// Server calibration overrides for this group's replicas; zero
	// fields inherit the cluster-wide server model.
	Workers   int
	Shards    int
	ReadCost  time.Duration
	WriteCost time.Duration
}

// Config parameterizes a cluster.
type Config struct {
	Protocol    Protocol
	Replicas    int
	UseHarmonia bool

	// Groups shards the key space across this many replica groups
	// (§6.1). Each group runs its own protocol instance over Replicas
	// members and its own scheduler partition. Default 1: the classic
	// single-group rack.
	Groups int

	// GroupSpecs, when non-nil, makes the cluster heterogeneous: one
	// spec per group, overriding Protocol/Replicas per shard (Groups
	// is then len(GroupSpecs)). Nil keeps today's uniform behavior —
	// every group a copy of the cluster-wide settings, bit-compatible
	// with the pre-spec layout, routing, and load split.
	GroupSpecs []GroupSpec

	// Switches spreads the groups across this many switch front-ends,
	// each a failure domain of its own: a contiguous shard of the
	// routing slots, an independent epoch counter, an independent lease
	// domain, and its own heat registers. Rebooting one switch stalls
	// only its groups. Default 1: the classic single-switch rack.
	// Must not exceed Groups (every switch hosts at least one group).
	Switches int

	// Switch dirty-set sizing (defaults: 3 × 64000, the prototype's).
	// Each group's partition gets a table of this size.
	Stages        int
	SlotsPerStage int

	// Server model. Defaults reproduce the paper's single-server Redis
	// numbers: 8 shards, 0.92 MQPS reads, 0.80 MQPS writes.
	Workers     int
	ReadCost    time.Duration
	WriteCost   time.Duration
	ControlCost time.Duration
	Shards      int

	// Network model (defaults: 5µs links, lossless).
	LinkLatency  time.Duration
	LinkJitter   time.Duration
	DropProb     float64
	ReorderProb  float64
	ReorderDelay time.Duration

	// Lease management (§5.3). The controller renews at half-life.
	LeaseDuration time.Duration

	// SweepInterval is the cadence of the §5.2 periodic stray-entry
	// sweep, run per scheduler partition (strays accumulate when
	// WRITE-COMPLETIONs are lost and the object is never read again;
	// the read-path lazy cleanup cannot reach them). 0 selects the
	// 10ms default — unless DisableLazyCleanup is set, which disables
	// the sweep too (it is the "no reclamation" ablation). Negative
	// disables the sweep explicitly.
	SweepInterval time.Duration

	// Client behavior.
	RetryTimeout time.Duration

	// Ablations.
	DisableCommitStamp bool          // switch stamps a maximal commit point (unsafe)
	DisableReadChecks  bool          // replicas skip the §7 fast-read check (unsafe)
	DisableLazyCleanup bool          // stray dirty entries never reclaimed
	EagerCompletions   bool          // VR: completions at commit, not after COMMIT-ACKs
	SyncEvery          time.Duration // NOPaxos sync cadence

	// AutoRebalance arms the autonomous rebalancer: a control loop
	// that samples the front-end's per-slot heat counters every policy
	// interval (decaying them afterwards, so they track a recent
	// window), plans moves under the threshold/hysteresis/cost model
	// of internal/rebalance, and executes them as batch slot
	// migrations — no offline workload knowledge involved.
	AutoRebalance bool

	// Rebalance tunes the rebalancer policy; zero fields select the
	// package defaults. Ignored unless AutoRebalance is set.
	Rebalance rebalance.Config

	// HotKeys arms per-key hot replication: when a switch domain's
	// rebalancer trigger fires but the round plans nothing (the
	// indivisible-hot-slot case batch migration cannot fix), the
	// slot's dominant key is promoted to a replicated set spanning
	// 2–4 groups of the domain. The switch then round-robins the
	// key's clean reads across home + holders and invalidates the
	// holder copies on every write, Hermes-style; the cluster
	// refreshes them from the home group as writes commit. Automatic
	// promotion needs AutoRebalance (the stuck signal comes from the
	// rebalancer's policy); PromoteKey/DemoteKey work regardless.
	HotKeys bool

	// HotKey tunes the promotion/demotion policy; zero fields select
	// the package defaults. Ignored unless HotKeys is set.
	HotKey rebalance.HotKeyConfig

	// RecordHistory captures every operation for linearizability
	// checking (costs memory; off for throughput runs).
	RecordHistory bool

	// Trace configures sampled per-op span tracing (internal/trace).
	// The zero value leaves tracing off, which keeps every guarded
	// fast path allocation-free; SampleEvery = N traces one op in N
	// and folds completed spans into the per-phase latency breakdown.
	// The control-plane flight recorder is independent of this knob —
	// it is always on (a bounded ring of fixed-size events costs
	// nothing on the data path).
	Trace trace.Config

	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.GroupSpecs) > 0 {
		if len(c.GroupSpecs) > MaxGroups {
			c.GroupSpecs = c.GroupSpecs[:MaxGroups]
		}
		c.Groups = len(c.GroupSpecs)
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.Groups > MaxGroups {
		// Beyond this the replica address windows would collide with
		// the client address space; clamp rather than misroute.
		c.Groups = MaxGroups
	}
	if c.Switches <= 0 {
		c.Switches = 1
	}
	if c.Switches > MaxSwitches {
		c.Switches = MaxSwitches
	}
	if c.Switches > c.Groups {
		// Every switch hosts at least one group; the public API rejects
		// this shape up front — clamp for direct internal users.
		c.Switches = c.Groups
	}
	if c.Stages <= 0 {
		c.Stages = 3
	}
	if c.SlotsPerStage <= 0 {
		c.SlotsPerStage = 64000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ReadCost <= 0 {
		// 8 workers / 0.92 MQPS per server.
		c.ReadCost = time.Duration(float64(c.Workers) / 0.92e6 * float64(time.Second))
	}
	if c.WriteCost <= 0 {
		c.WriteCost = time.Duration(float64(c.Workers) / 0.80e6 * float64(time.Second))
	}
	if c.ControlCost <= 0 {
		c.ControlCost = 2 * time.Microsecond
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 5 * time.Microsecond
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 50 * time.Millisecond
	}
	if c.SweepInterval == 0 {
		if c.DisableLazyCleanup {
			c.SweepInterval = -1
		} else {
			c.SweepInterval = 10 * time.Millisecond
		}
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 2 * time.Millisecond
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.resolveSpecs()
	for c.Switches > 1 && rack.ValidateWeights(c.Switches, c.Weights()) != nil {
		// Degenerate shard shapes (a uniform switch block with more
		// groups than slots) step down to the nearest assemblable
		// switch count; Switches == 1 always validates.
		c.Switches--
	}
}

// resolveSpecs materializes the effective per-group specs: a uniform
// cluster synthesizes one spec per group from the cluster-wide
// fields (so every downstream layer reads specs unconditionally), and
// an explicit spec list is copied and defaulted field by field. CRAQ
// groups never take switch assistance; unset weights derive from the
// group's calibrated service rate at the paper's default 5% write
// ratio.
func (c *Config) resolveSpecs() {
	specs := make([]GroupSpec, c.Groups)
	copy(specs, c.GroupSpecs)
	if len(c.GroupSpecs) == 0 {
		for g := range specs {
			specs[g] = GroupSpec{Protocol: c.Protocol, Replicas: c.Replicas}
		}
	}
	for g := range specs {
		c.resolveSpec(&specs[g])
	}
	c.GroupSpecs = specs
}

// resolveSpec defaults one group spec in place — the per-group half of
// resolveSpecs, shared with elastic AddGroup/RespecGroup so a group
// added at runtime is defaulted by exactly the assembly-time rules.
func (c *Config) resolveSpec(sp *GroupSpec) {
	if sp.Replicas <= 0 {
		sp.Replicas = c.Replicas
	}
	sp.Harmonia = c.UseHarmonia && sp.Protocol != CRAQ
	if sp.Workers <= 0 {
		sp.Workers = c.Workers
	}
	if sp.Shards <= 0 {
		sp.Shards = c.Shards
	}
	if sp.ReadCost <= 0 {
		sp.ReadCost = c.ReadCost
	}
	if sp.WriteCost <= 0 {
		sp.WriteCost = c.WriteCost
	}
	if sp.Weight <= 0 {
		// One server's calibrated per-class rate; reads spread
		// across the group under Harmonia fast reads or CRAQ's
		// per-replica clean reads, writes always load every member.
		readRate := float64(sp.Workers) / sp.ReadCost.Seconds()
		writeRate := float64(sp.Workers) / sp.WriteCost.Seconds()
		spread := sp.Harmonia || sp.Protocol == CRAQ
		sp.Weight = workload.ServiceRate(sp.Replicas, spread, defaultWriteRatio, readRate, writeRate)
		if !(sp.Weight > 0) {
			sp.Weight = 1 // degenerate calibration: neutral capacity
		}
	}
}

// defaultWriteRatio is the paper's default operation mix (§9.1, 5%
// writes) — the operating point the derived capacity weights are
// calibrated at.
const defaultWriteRatio = 0.05

// Weights returns the effective per-group capacity weights (specs must
// be resolved; New and the public API call fillDefaults first).
func (c *Config) Weights() []float64 {
	out := make([]float64, len(c.GroupSpecs))
	for g, sp := range c.GroupSpecs {
		out[g] = sp.Weight
	}
	return out
}

// ResolvedWeights returns the per-group capacity weights cfg would
// assemble with: defaults are applied to a copy (the receiver and its
// spec slice are untouched), so callers can validate a rack shape
// before building anything.
func (c Config) ResolvedWeights() []float64 {
	c.fillDefaults()
	return c.Weights()
}

// ReplicaHandle is the cluster's view of one protocol replica.
type ReplicaHandle interface {
	simnet.Handler
	// Preload installs an object directly (cluster warm-up).
	Preload(id wire.ObjectID, value []byte, seq wire.Seq)
	// ExtractSlot copies the replica's live objects in one routing
	// slot (migration source side).
	ExtractSlot(slot int) map[wire.ObjectID]store.Object
	// InstallSlot installs migrated objects (migration destination
	// side). Sequence numbers must already be neutered to epoch 0 so
	// the destination's write-order guard is untouched.
	InstallSlot(objs map[wire.ObjectID]store.Object)
	// DropSlot removes the slot's objects (migration source cleanup).
	DropSlot(slot int) int
	// ExportClients copies the replica's at-most-once client table;
	// MergeClients installs exported records (newer request per client
	// wins). A handoff moves the table with the objects: without it the
	// destination would re-execute a write whose reply was lost, and
	// the duplicate could clobber a newer committed value.
	ExportClients() map[uint32]protocol.ClientRecord
	MergeClients(recs map[uint32]protocol.ClientRecord)
	// SlotCounts returns the replica's per-slot live-object counters,
	// maintained incrementally at install/drop/write time — the
	// occupancy signal the rebalancer's ObjectCost veto samples without
	// scanning any store.
	SlotCounts() []int
	// GetObject reads one live object's committed state — the hot-key
	// refresh path, which copies a single promoted key instead of a
	// whole slot.
	GetObject(id wire.ObjectID) (store.Object, bool)
}

// replicaGroup is one replica group: a partition of the key space with
// its own protocol instance, size, calibration, and scheduler state
// behind the shared switch.
type replicaGroup struct {
	idx      int
	spec     GroupSpec
	n        int // group size (== spec.Replicas)
	inc      int // membership incarnation (bumped by RespecGroup)
	sched    *core.Scheduler
	replicas []ReplicaHandle
	raw      any // protocol-specific slice for reconfiguration

	// leaseGen invalidates the self-renewing lease-grant chain: the
	// controller's periodic re-grant closure captures the generation it
	// was started under and stops silently once it is stale. Respec and
	// retirement bump it, so an old member set's chain can never keep
	// re-granting leases to nodes that left the group.
	leaseGen uint64
}

// addrs lists the group's CURRENT member addresses in index order.
func (g *replicaGroup) addrs() []simnet.NodeID {
	out := make([]simnet.NodeID, g.n)
	for i := range out {
		out[i] = groupIncReplicaAddr(g.idx, g.inc, i)
	}
	return out
}

// Cluster is an assembled simulated rack.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	net *simnet.Network

	rack   *rack.Rack
	groups []*replicaGroup

	// replicas is the flattened, group-major view of every replica —
	// the convenient shape for stats sweeps and single-group tests.
	replicas []ReplicaHandle

	ctl *controller

	clients []*vclient
	hist    *recorder

	valueCtr int64

	// replacing tracks an in-flight switch replacement per switch: the
	// groups still mid-agreement and the revocation start time, from
	// which the rack's agreement-latency stat is recorded.
	replacing []*switchReplacement

	// migrations tracks in-flight slot handoffs by slot.
	migrations map[int]*Migration
	// flushCtr numbers the drain protocol's flush writes.
	flushCtr uint64

	// policies is the autonomous rebalancer, one control loop per
	// switch domain (nil unless AutoRebalance). Each loop samples only
	// its own front-end's heat registers and plans moves only among its
	// own groups, so the rebalancer can never ping-pong a slot across
	// switch boundaries.
	policies []*rebalance.Policy
	// rebalanced counts slot moves completed by the rebalancer;
	// rebalanceRounds counts its completed batch handoffs.
	rebalanced      uint64
	rebalanceRounds uint64

	// opFree pools completed in-flight op records and varena carves
	// their id-coded write payloads — the client-side halves of the
	// zero-allocation data path (key tables are process-global).
	opFree []*opState
	varena valueArena

	// weightsExplicit records whether the boot config set every group's
	// capacity weight by hand. Elastic AddGroup/RespecGroup must stay on
	// the same scale: explicit ratios and derived absolute service
	// rates cannot meaningfully mix (the same rule the public API
	// enforces at assembly).
	weightsExplicit bool

	// topoSeen is the topology epoch the rebalancer weight vectors were
	// last computed at; rebalanceTick refreshes them when it moves.
	topoSeen uint64

	// reconfigs tracks in-flight elastic membership operations.
	reconfigs []*Reconfig

	// Hot-key replication state (nil map unless Config.HotKeys):
	// promoted keys by object ID, plus a promotion-order slice so the
	// lifecycle tick iterates deterministically under the seeded
	// simulation. Counters feed the public stats.
	hotKeys          map[wire.ObjectID]*hotKeyEntry
	hotKeyOrder      []wire.ObjectID
	hotKeyCfg        rebalance.HotKeyConfig
	hotKeyPromotions uint64
	hotKeyDemotions  uint64

	// tracer samples per-op spans (nil unless Config.Trace arms it);
	// rec is the always-on control-plane flight recorder. hist above
	// is the unrelated linearizability op recorder.
	tracer *trace.Tracer
	rec    *trace.Recorder
}

// switchReplacement is one in-flight §5.3 switch replacement.
type switchReplacement struct {
	remaining int // owned groups whose agreement is still pending
	start     sim.Time
}

// New assembles and primes a cluster.
func New(cfg Config) *Cluster {
	// Whether weights are on the operator's explicit-ratio scale or the
	// derived service-rate scale is only visible BEFORE defaulting
	// (resolveSpecs overwrites zero weights); elastic reconfiguration
	// needs it to hold new specs to the same scale.
	weightsExplicit := len(cfg.GroupSpecs) > 0 && cfg.GroupSpecs[0].Weight > 0
	cfg.fillDefaults()
	c := &Cluster{
		weightsExplicit: weightsExplicit,
		cfg:             cfg,
		eng:             sim.NewEngine(cfg.Seed),
		hist:            newRecorder(),
		migrations:      make(map[int]*Migration),
		replacing:       make([]*switchReplacement, cfg.Switches),
	}
	c.net = simnet.New(c.eng, simnet.LinkConfig{
		Latency: cfg.LinkLatency, Jitter: cfg.LinkJitter,
		DropProb: cfg.DropProb, ReorderProb: cfg.ReorderProb, ReorderDelay: cfg.ReorderDelay,
	})

	// Observability: the flight recorder is unconditional (control-plane
	// events are rare and the ring is bounded); the span tracer exists
	// only when sampling is armed, so an untraced cluster pays exactly
	// one nil check per guarded site.
	now := func() sim.Time { return c.eng.Now() }
	c.rec = trace.NewRecorder(0, now)
	c.tracer = trace.NewTracer(cfg.Trace, now)
	if c.tracer != nil {
		c.net.SetTracer((*netTracer)(c))
	}

	// Switches: line-rate nodes, each hosting the scheduler partitions
	// of its owned groups behind its hashing front-end. The rack layer
	// owns the slot → switch map and the per-switch epochs; shard sizes
	// and boot-time slot shares follow the groups' capacity weights
	// (uniform specs reproduce the historical even layout exactly).
	c.rack = rack.NewWeighted(cfg.Switches, cfg.Weights())
	c.rack.SetRecorder(c.rec)
	for s := 0; s < cfg.Switches; s++ {
		f := c.rack.Front(s)
		c.net.AddNode(switchAddrOf(s), f, simnet.ProcConfig{Workers: 0})
		c.installFrontHooks(f, s)
	}

	// Controller.
	c.ctl = newController(c)
	c.net.AddNode(controllerAddr, c.ctl, simnet.ProcConfig{Workers: 0})

	// Replica groups: scheduler partition + protocol instance each,
	// installed on the group's owning switch.
	c.groups = make([]*replicaGroup, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		grp := &replicaGroup{idx: g, spec: cfg.GroupSpecs[g], n: cfg.GroupSpecs[g].Replicas}
		c.groups[g] = grp
		grp.sched = c.newScheduler(g, c.rack.Epoch(c.rack.SwitchOfGroup(g)))
		c.rack.SetGroup(g, grp.sched)
		c.buildGroupReplicas(grp)
		c.replicas = append(c.replicas, grp.replicas...)
	}

	// Replica↔replica and controller channels model TCP: reliable and
	// FIFO (chain replication and primary-backup are only correct
	// under reliable inter-replica channels — a write lost mid-chain
	// forever would break the commit-order-equals-sequence-order
	// invariant the §7.2 check relies on). Loss and reordering apply
	// to the client↔switch↔replica packet path, which is where
	// Harmonia's own recovery mechanisms (client retries, stray
	// dirty-set entries, OUM gap handling) operate. Groups never talk
	// to each other: the key space is partitioned.
	for _, grp := range c.groups {
		c.linkGroup(grp)
	}

	// Initial leases and one priming write per group so every
	// scheduler partition becomes ready. Leases are granted per
	// (switch, group) pair: each group's lease names its own switch's
	// epoch.
	for _, grp := range c.groups {
		c.ctl.grantGroupLeases(grp.idx, c.rack.Epoch(c.rack.SwitchOfGroup(grp.idx)))
	}
	c.startSweeps()
	c.prime()
	if cfg.AutoRebalance {
		c.startRebalancer()
	}
	if cfg.HotKeys {
		c.startHotKeys()
	}
	return c
}

// installFrontHooks wires switch s's front-end into the observability
// layer: traced-packet drops stamp the op's span so the coming client
// retry is attributed to the stall that caused it, and hot-key
// invalidations land in the flight recorder. Hooks live on the
// Frontend, which survives Reboot, so switch replacement keeps them.
func (c *Cluster) installFrontHooks(f *core.Frontend, s int) {
	f.SetHotInvalidateHook(func(id wire.ObjectID, gen uint64) {
		c.rec.Emit(trace.Event{
			Kind: trace.EvHotInvalidate, Switch: int16(s), Group: -1, Slot: -1,
			Arg: uint64(id), Arg2: gen,
		})
	})
	if c.tracer == nil {
		return
	}
	node := int32(switchAddrOf(s))
	f.SetDropHook(func(pkt *wire.Packet, reason core.DropReason) {
		switch reason {
		case core.DropMisrouted:
			// A stale route, not a stall: the retry is an ordinary
			// reissue, so leave the frozen-stall flag alone.
			c.tracer.Stamp(pkt.Span, trace.HopDrop, node, trace.PhaseNetwork)
		default: // frozen slot or stalled group
			c.tracer.StampDrop(pkt.Span, node)
		}
	})
}

// netTracer adapts simnet's delivery hooks onto span stamps. It is the
// Cluster itself under another method set: the adapter needs the
// address map and the tracer, nothing else, and a separate struct
// would be one more pointer chase on the per-packet path. Installed
// only when tracing is armed; untraced packets (Span == 0) return
// after two compares.
type netTracer Cluster

func (t *netTracer) PacketArrive(node simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok || pkt.Span == 0 {
		return
	}
	kind := trace.HopSwitchArrive
	if node >= clientBase {
		kind = trace.HopClientArrive
	} else if node >= replicaBase {
		kind = trace.HopReplicaArrive
	}
	(*Cluster)(t).tracer.Stamp(pkt.Span, kind, int32(node), trace.PhaseNetwork)
}

func (t *netTracer) PacketServe(node simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok || pkt.Span == 0 {
		return
	}
	(*Cluster)(t).tracer.Stamp(pkt.Span, trace.HopReplicaServe, int32(node), trace.PhaseQueue)
}

func (t *netTracer) PacketDone(node simnet.NodeID, msg simnet.Message) {
	pkt, ok := msg.(*wire.Packet)
	if !ok || pkt.Span == 0 {
		return
	}
	(*Cluster)(t).tracer.Stamp(pkt.Span, trace.HopReplicaDone, int32(node), trace.PhaseService)
}

// Events returns the control-plane flight recorder's contents, oldest
// first. The ring is bounded (trace.DefaultEventCapacity); once full,
// each new event overwrites the oldest and DroppedEvents counts the
// loss, so a long run keeps the most recent window.
func (c *Cluster) Events() []trace.Event { return c.rec.Events() }

// DroppedEvents reports how many flight-recorder events were
// overwritten before being read.
func (c *Cluster) DroppedEvents() uint64 { return c.rec.DroppedEvents() }

// WriteChromeTrace dumps the flight recorder as Chrome trace_event
// JSON (load via chrome://tracing or https://ui.perfetto.dev).
func (c *Cluster) WriteChromeTrace(w io.Writer) error { return c.rec.WriteChromeTrace(w) }

// startRebalancer arms the autonomous rebalancing loop, one policy
// instance per switch domain: every interval each loop samples its own
// front-end's heat registers and routing table, asks its policy for a
// batch of moves among its own groups, starts them as non-blocking
// batch migrations (so the loop never stalls the simulation), and then
// decays the heat counters — the EWMA round that keeps the sample
// tracking recent traffic. Confining each loop to one switch domain is
// what makes the rebalancer rack-aware: moves stay behind one
// front-end, so slots can never ping-pong across switch boundaries
// (cross-switch migration stays an explicit operation).
func (c *Cluster) startRebalancer() {
	now := func() time.Duration { return time.Duration(c.eng.Now()) }
	c.policies = make([]*rebalance.Policy, c.rack.Switches())
	for s := range c.policies {
		c.policies[s] = rebalance.New(c.cfg.Rebalance, now)
		c.policies[s].SetRecorder(c.rec, s)
	}
	c.refreshPolicyWeights()
	iv := c.policies[0].Config().Interval
	var tick func()
	tick = func() {
		c.rebalanceTick()
		c.eng.After(iv, tick)
	}
	c.eng.After(iv, tick)
}

// refreshPolicyWeights recomputes every domain's capacity-weight
// vector from the live topology — in domain-local index order, because
// the policy's thresholds are per capacity unit (a 7-replica group is
// entitled to proportionally more of its domain's load than a
// 3-replica neighbor before the loop calls it hot). Called at arm time
// and again whenever the topology epoch moves, so elastic membership
// changes reach the control loop incrementally, within one tick.
func (c *Cluster) refreshPolicyWeights() {
	topo := c.rack.Topo()
	for s, policy := range c.policies {
		domain := c.rack.GroupsOf(s)
		local := make([]float64, len(domain))
		for i, g := range domain {
			local[i] = topo.Weight(g)
		}
		policy.SetWeights(local)
	}
	c.topoSeen = topo.Epoch()
}

// rebalanceTick runs one control-loop round across every switch
// domain.
func (c *Cluster) rebalanceTick() {
	if c.rack.TopoEpoch() != c.topoSeen {
		c.refreshPolicyWeights()
	}
	// Per-slot object counts come from the incrementally maintained
	// store counters (sampled at one live replica of each owning group
	// — any live member works, the objects are replicated), so the
	// ObjectCost veto operates online: a slot dense with objects needs
	// a larger projected gain before the policy will pay its bulk copy.
	// The sampling is memoized per tick and pulled only by domains
	// whose policy could actually fire this tick (armed, out of
	// cooldown, enough heat) — gated ticks and single-group domains
	// cost nothing.
	table := c.rack.SlotTable()
	counts := make(map[int][]int, len(c.groups))
	countsOf := func(g int) []int {
		cnt, ok := counts[g]
		if !ok {
			cnt = c.slotCountsOf(g)
			counts[g] = cnt
		}
		return cnt
	}
	// Slots still mid-handoff from a previous round are reported busy
	// so the policy plans around them (and does not burn its trigger
	// on a round that could start nothing).
	busy := func(slot int) bool {
		_, b := c.migrations[slot]
		return b || c.rack.Frozen(slot)
	}
	for s, policy := range c.policies {
		c.rebalanceSwitch(s, policy, table, countsOf, busy)
	}
	c.rack.DecayHeat()
}

// rebalanceSwitch runs one switch domain's planning round: heat and
// routes are remapped to domain-local group indices (slots owned by
// other switches are masked out), so the policy's hottest/coolest
// search can only ever pick groups behind this front-end.
func (c *Cluster) rebalanceSwitch(s int, policy *rebalance.Policy, table []int, countsOf func(int) []int, busy func(int) bool) {
	domain := c.rack.GroupsOf(s)
	if len(domain) < 2 {
		return // a single-group domain has nothing to balance
	}
	// Explicit global ↔ domain-local index maps: after elastic
	// membership changes a switch's live groups are no longer a
	// contiguous ID block (added groups take fresh high IDs, retired
	// ones leave holes), so the mapping must be positional, not an
	// offset.
	toLocal := make(map[int]int, len(domain))
	for i, g := range domain {
		toLocal[g] = i
	}
	front := c.rack.Front(s)
	heat := make([]rebalance.Heat, wire.NumSlots)
	local := make([]int, wire.NumSlots)
	var total uint64
	for slot := range local {
		lg, ok := toLocal[table[slot]]
		if !front.OwnsSlot(slot) || !ok {
			local[slot] = -1 // masked: another switch's shard
			continue
		}
		local[slot] = lg
		h := front.HeatOf(slot)
		heat[slot] = rebalance.Heat{Reads: h.Reads, Writes: h.Writes}
		total += h.Total()
	}
	// Object counts are sampled only when this tick could fire a round
	// — the policy's own gates (disarmed, cooling down, too little
	// heat) would discard them unread. Heat is always passed: Plan
	// needs it to re-arm the trigger on calm readings.
	var objects []int
	if policy.Ready() && total >= policy.Config().MinOps {
		objects = make([]int, wire.NumSlots)
		for slot := range objects {
			if local[slot] >= 0 {
				objects[slot] = countsOf(table[slot])[slot]
			}
		}
	}
	round := policy.PlanRound(heat, local, objects, len(domain), busy)
	if round.Empty() && c.cfg.HotKeys {
		// A fired-but-empty tick is the indivisible hot spot: batch
		// migration gave up, so try replicating the slot's dominant
		// key instead.
		c.maybePromoteHot(s, policy, front)
	}
	// Group the moves into batches by (source, destination) pair,
	// preserving plan order so runs stay deterministic.
	type pair struct{ from, to int }
	var order []pair
	batches := make(map[pair][]int)
	for _, mv := range round.Moves {
		p := pair{domain[mv.From], domain[mv.To]}
		if _, ok := batches[p]; !ok {
			order = append(order, p)
		}
		batches[p] = append(batches[p], mv.Slot)
	}
	for _, p := range order {
		m, err := c.StartBatchMigration(batches[p], p.to)
		if err != nil {
			continue // e.g. a route changed under us; next tick re-plans
		}
		m.auto = true
	}
	// Swap rounds — planned when a one-way drain was occupancy-vetoed —
	// run as the usual concurrent two-way batch handoffs.
	for _, sw := range round.Swaps {
		ma, mb, err := c.StartSwapSlots([]int{sw.SlotA}, []int{sw.SlotB})
		if err != nil {
			continue // a route changed under us; next tick re-plans
		}
		ma.auto = true
		mb.auto = true
	}
}

// slotCountsOf samples group g's per-slot object counters from its
// first LIVE replica: a crashed member's counters froze at crash time
// and would feed the cost model stale occupancy. With every member
// down (nothing the cost model says matters then — the group cannot
// serve a handoff anyway) replica 0's frozen counters stand in.
func (c *Cluster) slotCountsOf(g int) []int {
	grp := c.groups[g]
	for i, r := range grp.replicas {
		if !c.net.IsDown(c.groupAddr(g, i)) {
			return r.SlotCounts()
		}
	}
	return grp.replicas[0].SlotCounts()
}

// groupAddr returns the network address of replica i of group g's
// CURRENT member set (the live incarnation).
func (c *Cluster) groupAddr(g, i int) simnet.NodeID {
	return groupIncReplicaAddr(g, c.groups[g].inc, i)
}

// SlotHeat returns the rack-wide per-slot heat sample, each slot read
// from its owning switch front-end's registers.
func (c *Cluster) SlotHeat() []core.SlotHeat { return c.rack.SlotHeat() }

// Rebalances returns the total slot moves completed by the autonomous
// rebalancer over the cluster's lifetime.
func (c *Cluster) Rebalances() uint64 { return c.rebalanced }

// RebalanceRounds returns the number of completed rebalancer batch
// handoffs.
func (c *Cluster) RebalanceRounds() uint64 { return c.rebalanceRounds }

// linkGroup models the group's replica↔replica and controller channels
// as TCP: reliable and FIFO (see New). Factored out so elastic
// AddGroup/RespecGroup wire new member sets identically.
func (c *Cluster) linkGroup(grp *replicaGroup) {
	reliable := simnet.LinkConfig{Latency: c.cfg.LinkLatency, Jitter: c.cfg.LinkJitter}
	addrs := grp.addrs()
	for i, a := range addrs {
		for _, b := range addrs[i+1:] {
			c.net.SetLinkBoth(a, b, reliable)
		}
		c.net.SetLinkBoth(a, controllerAddr, reliable)
	}
}

// startSweeps arms the periodic §5.2 stray-entry sweep, one recurring
// timer per scheduler partition.
func (c *Cluster) startSweeps() {
	for _, grp := range c.groups {
		c.startSweep(grp)
	}
}

// startSweep arms one group's sweep timer. The closure re-reads
// grp.sched each tick so the sweep follows a replacement switch's (or
// a respec's) new scheduler, and dies with the group: a retired
// group's nil scheduler ends the chain.
func (c *Cluster) startSweep(grp *replicaGroup) {
	iv := c.cfg.SweepInterval
	if iv <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if !c.rack.Live(grp.idx) {
			return
		}
		if s := grp.sched; s != nil && s.DirtyCount() > 0 {
			s.SweepStale()
		}
		c.eng.After(iv, tick)
	}
	c.eng.After(iv, tick)
}

// Engine exposes the simulation engine (tests and harnesses).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Network exposes the simulated network (tests).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Scheduler exposes group 0's active switch program — the whole switch
// state for single-group clusters (tests and stats).
func (c *Cluster) Scheduler() *core.Scheduler { return c.groups[0].sched }

// GroupScheduler exposes group g's active scheduler partition.
func (c *Cluster) GroupScheduler(g int) *core.Scheduler { return c.groups[g].sched }

// Groups returns the replica-group count.
func (c *Cluster) Groups() int { return len(c.groups) }

// SpecOf returns group g's effective (defaulted) spec.
func (c *Cluster) SpecOf(g int) GroupSpec { return c.groups[g].spec }

// GroupWeights returns the LIVE per-group capacity weights from the
// topology — the vector the slot layout, the rebalancer, and the
// pinned load split normalize by. Retired groups read exactly 0, which
// every consumer treats as "never pick this group".
func (c *Cluster) GroupWeights() []float64 { return c.rack.Topo().LiveWeights() }

// Switches returns the switch front-end count.
func (c *Cluster) Switches() int { return c.rack.Switches() }

// Frontend exposes switch 0's front-end — the whole switch for
// single-switch racks (tests and stats).
func (c *Cluster) Frontend() *core.Frontend { return c.rack.Front(0) }

// FrontendOf exposes switch s's front-end.
func (c *Cluster) FrontendOf(s int) *core.Frontend { return c.rack.Front(s) }

// Rack exposes the multi-switch coordination layer (tests and stats).
func (c *Cluster) Rack() *rack.Rack { return c.rack }

// SwitchOf returns the switch front-end currently serving slot.
func (c *Cluster) SwitchOf(slot int) int { return c.rack.SwitchOfSlot(slot) }

// SwitchOfGroup returns the switch hosting group g.
func (c *Cluster) SwitchOfGroup(g int) int { return c.rack.SwitchOfGroup(g) }

// routeObj returns the group currently serving id, per the rack's
// slot table — the routing authority.
func (c *Cluster) routeObj(id wire.ObjectID) int { return c.rack.RouteObj(id) }

// switchAddrForObj returns the network address of the switch front-end
// currently serving id's slot — the address clients (and the harness's
// own control writes) dial. The lookup models the client-side slot →
// switch map; the front-ends enforce it in-network, dropping packets
// for slots they do not own.
func (c *Cluster) switchAddrForObj(id wire.ObjectID) simnet.NodeID {
	return switchAddrOf(c.rack.SwitchOfObj(id))
}

// GroupOf returns the replica group that currently owns key.
func (c *Cluster) GroupOf(key string) int {
	return c.routeObj(wire.HashKey(key))
}

// SlotOfKey returns key's routing slot.
func (c *Cluster) SlotOfKey(key string) int {
	return wire.SlotOf(wire.HashKey(key))
}

// SlotTable returns a copy of the rack-wide slot → group table.
func (c *Cluster) SlotTable() []int { return c.rack.SlotTable() }

// SlotSwitchTable returns a copy of the rack's slot → switch map.
func (c *Cluster) SlotSwitchTable() []int { return c.rack.SlotSwitchTable() }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// writeDst and readDst give the normal-path entry points for group g's
// protocol.
func (c *Cluster) writeDst(g int) simnet.NodeID {
	switch c.groups[g].spec.Protocol {
	case Chain, CRAQ:
		return c.groupAddr(g, 0) // head
	default:
		return c.groupAddr(g, 0) // primary / leader (index 0 at start)
	}
}

func (c *Cluster) readDst(g int) simnet.NodeID {
	switch c.groups[g].spec.Protocol {
	case Chain:
		return c.groupAddr(g, c.groups[g].n-1) // tail
	case CRAQ:
		return c.groupAddr(g, 0) // unused: RandomReads mode
	default:
		return c.groupAddr(g, 0) // primary / leader
	}
}

func (c *Cluster) newScheduler(g int, epoch uint32) *core.Scheduler {
	grp := c.groups[g]
	addrs := grp.addrs()
	swAddr := switchAddrOf(c.rack.SwitchOfGroup(g))
	sched := core.New(core.Config{
		Epoch:              epoch,
		Stages:             c.cfg.Stages,
		SlotsPerStage:      c.cfg.SlotsPerStage,
		Replicas:           addrs,
		WriteDst:           c.writeDst(g),
		ReadDst:            c.readDst(g),
		MulticastWrites:    grp.spec.Protocol == NOPaxos,
		ClientBase:         clientBase,
		DisableFastReads:   !grp.spec.Harmonia,
		RandomReads:        grp.spec.Protocol == CRAQ,
		DisableCommitStamp: c.cfg.DisableCommitStamp,
		DisableLazyCleanup: c.cfg.DisableLazyCleanup,
	}, core.SenderFunc(func(to simnet.NodeID, pkt *wire.Packet) {
		c.net.Send(swAddr, to, pkt)
	}))
	if c.tracer != nil {
		// Every scheduler — boot, elastic add, or §5.3 replacement —
		// stamps traced writes at sequencing time.
		sched.SetTraceHook(func(pkt *wire.Packet) {
			c.tracer.Stamp(pkt.Span, trace.HopSwitchSeq, int32(swAddr), trace.PhaseQueue)
		})
	}
	return sched
}

// replicaEnv adapts the network to protocol.Env. Each replica's
// client-facing packets (replies, write-completions) go through its
// group's owning switch — the fixed home of the group's scheduler
// partition.
type replicaEnv struct {
	c  *Cluster
	id simnet.NodeID
	sw simnet.NodeID
}

func (e *replicaEnv) ID() simnet.NodeID { return e.id }
func (e *replicaEnv) Send(to simnet.NodeID, msg any) {
	e.c.net.Send(e.id, to, msg)
}
func (e *replicaEnv) SendSwitch(pkt *wire.Packet) {
	e.c.net.Send(e.id, e.sw, pkt)
}
func (e *replicaEnv) After(d time.Duration, fn func()) sim.Timer { return e.c.eng.After(d, fn) }
func (e *replicaEnv) Now() sim.Time                              { return e.c.eng.Now() }
func (e *replicaEnv) Rand() *rand.Rand                           { return e.c.eng.Rand() }

// buildGroupReplicas constructs one group's protocol replica set per
// its spec and registers the nodes with the group's calibrated
// processor model — heterogeneous clusters run different protocols,
// group sizes, and server calibrations side by side.
func (c *Cluster) buildGroupReplicas(grp *replicaGroup) {
	addrs := grp.addrs()
	swAddr := switchAddrOf(c.rack.SwitchOfGroup(grp.idx))
	spec := grp.spec
	cost := func(msg simnet.Message) time.Duration {
		switch protocol.ClassOf(msg) {
		case protocol.CostRead:
			return spec.ReadCost
		case protocol.CostWrite:
			return spec.WriteCost
		default:
			return c.cfg.ControlCost
		}
	}
	proc := simnet.ProcConfig{Workers: spec.Workers, Cost: cost}

	n := grp.n
	f := (n - 1) / 2
	gid := grp.idx
	grp.replicas = make([]ReplicaHandle, n)
	switch spec.Protocol {
	case PB:
		rs := make([]*pb.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = pb.New(&replicaEnv{c, addrs[i], swAddr}, g, spec.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = pbHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case Chain:
		rs := make([]*chain.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = chain.New(&replicaEnv{c, addrs[i], swAddr}, g, spec.Shards)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = chainHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case CRAQ:
		rs := make([]*craq.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = craq.New(&replicaEnv{c, addrs[i], swAddr}, g, spec.Shards)
			grp.replicas[i] = craqHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case VR:
		rs := make([]*vr.Replica, n)
		opts := vr.DefaultOptions()
		opts.EagerCompletions = c.cfg.EagerCompletions
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = vr.New(&replicaEnv{c, addrs[i], swAddr}, g, spec.Shards, opts)
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			rs[i].OnViewChange = c.viewChangeHook(gid)
			grp.replicas[i] = vrHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	case NOPaxos:
		rs := make([]*nopaxos.Replica, n)
		for i := 0; i < n; i++ {
			g := protocol.GroupConfig{ID: gid, Replicas: addrs, Self: i, F: f}
			rs[i] = nopaxos.New(&replicaEnv{c, addrs[i], swAddr}, g, spec.Shards,
				nopaxos.Options{SyncEvery: c.cfg.SyncEvery})
			rs[i].DisableCheck = c.cfg.DisableReadChecks
			grp.replicas[i] = nopaxosHandle{rs[i]}
			c.net.AddNode(addrs[i], grp.replicas[i], proc)
		}
		grp.raw = rs
	default:
		panic("cluster: unknown protocol")
	}
}

// viewChangeHook retargets group g's scheduler partition at a new VR
// leader. The hook is bound to the incarnation it was built for: after
// a membership respec the old set's view changes must not retarget the
// new set's scheduler.
func (c *Cluster) viewChangeHook(g int) func(view uint64, leader int) {
	inc := c.groups[g].inc
	return func(view uint64, leader int) {
		grp := c.groups[g]
		if grp.inc != inc || grp.sched == nil {
			return
		}
		dst := groupIncReplicaAddr(g, inc, leader)
		grp.sched.SetTargets(dst, dst)
	}
}

// primeKey returns a key owned by group g. Single-group clusters keep
// the historical "__prime__" key; sharded ones search a deterministic
// suffix until the route lands in the right partition.
func (c *Cluster) primeKey(g int) string {
	if len(c.groups) == 1 {
		return "__prime__"
	}
	k, ok := c.keyInGroup(g, fmt.Sprintf("__prime__%d_", g), -1)
	if !ok {
		// At boot the default striping guarantees every group owns
		// slots (MaxGroups == wire.NumSlots), so the search cannot
		// fail there.
		panic(fmt.Sprintf("cluster: no prime key for group %d", g))
	}
	return k
}

// keyInGroup searches the deterministic key family prefix0, prefix1, …
// for one the front-end currently routes to group g through a slot
// that is neither avoidSlot (pass -1 to accept any) nor frozen. Used
// for priming writes and for the migration drain's flush writes, which
// must not land in the frozen slot they are trying to drain — or in
// any other slot mid-migration, whose packets the front-end drops. The
// search is bounded: a group can legitimately own no eligible slot
// (every slot migrated away, or its remaining slots all frozen), in
// which case ok is false.
func (c *Cluster) keyInGroup(g int, prefix string, avoidSlot int) (key string, ok bool) {
	return c.keyInGroupAny(g, prefix, avoidSlot, false)
}

// keyInGroupAny is keyInGroup with the frozen-slot exclusion optional:
// allowFrozen is used only by the forced flush of a whole-group drain,
// whose write carries wire.FlagFlush and may pass the freeze.
func (c *Cluster) keyInGroupAny(g int, prefix string, avoidSlot int, allowFrozen bool) (key string, ok bool) {
	// ~16 deterministic probes per slot of the table: ample to hit
	// every eligible slot, while still terminating when none exists.
	for t := 0; t < 16*wire.NumSlots; t++ {
		k := fmt.Sprintf("%s%d", prefix, t)
		id := wire.HashKey(k)
		slot := wire.SlotOf(id)
		if c.routeObj(id) == g && slot != avoidSlot && (allowFrozen || !c.rack.Frozen(slot)) {
			return k, true
		}
	}
	return "", false
}

// prime issues one write per group end-to-end so every scheduler
// partition observes its first WRITE-COMPLETION and enables
// single-replica reads (§5.3 applies to cold boots exactly as to
// replacements).
func (c *Cluster) prime() {
	for g := range c.groups {
		key := c.primeKey(g)
		pkt := &wire.Packet{
			Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
			Group: uint16(g), ClientID: 0, ReqID: uint64(g + 1), Value: []byte{1},
		}
		c.net.Send(clientBase, c.switchAddrForObj(pkt.ObjID), pkt)
	}
	// Drive the writes (and for NOPaxos, a sync round) to completion.
	c.eng.RunFor(20 * time.Millisecond)
}

// Preload installs n objects into their owning groups without going
// through the protocol, and records them for history seeding.
func (c *Cluster) Preload(n int) {
	kt := c.keyTab(n)
	for i := 0; i < n; i++ {
		id := kt.ids[i]
		c.valueCtr++
		val := c.varena.encode(c.valueCtr)
		seq := wire.Seq{Epoch: 0, N: uint64(i + 1)}
		grp := c.groups[c.routeObj(id)]
		for _, r := range grp.replicas {
			r.Preload(id, val, seq)
		}
		if c.cfg.RecordHistory {
			c.hist.preload(uint64(id), c.valueCtr)
		}
	}
}

// ownedKeyIndices partitions the workload's key indices [0, keys) by
// owning group — the load generator's view of the shard map.
func (c *Cluster) ownedKeyIndices(keys int) [][]int {
	kt := c.keyTab(keys)
	out := make([][]int, len(c.groups))
	for i := 0; i < keys; i++ {
		g := c.routeObj(kt.ids[i])
		out[g] = append(out[g], i)
	}
	return out
}

// RunFor advances simulated time.
func (c *Cluster) RunFor(d time.Duration) { c.eng.RunFor(d) }

// --- failure injection ---

// CrashSwitch fails switch s: its front-end stops forwarding entirely
// for every group it hosts, while the rest of the rack's switches keep
// serving their own slot shards undisturbed.
func (c *Cluster) CrashSwitch(s int) error {
	if s < 0 || s >= c.rack.Switches() {
		return fmt.Errorf("cluster: switch %d out of range", s)
	}
	c.net.SetDown(switchAddrOf(s), true)
	c.rec.Emit(trace.Event{Kind: trace.EvSwitchCrash, Switch: int16(s), Group: -1, Slot: -1})
	return nil
}

// StopSwitch halts every switch in the rack (for the single-switch
// rack this is exactly §9.6's experiment: all traffic blackholed).
func (c *Cluster) StopSwitch() {
	for s := 0; s < c.rack.Switches(); s++ {
		c.net.SetDown(switchAddrOf(s), true)
		c.rec.Emit(trace.Event{Kind: trace.EvSwitchCrash, Switch: int16(s), Group: -1, Slot: -1})
	}
}

// ReactivateSwitch brings up replacement switches — the listed ones,
// or every switch when called with no arguments — each with a fresh
// epoch in ITS OWN epoch domain and empty register state, then runs
// the §5.3 agreement per (switch, group) pair: a group's replicas
// revoke the old lease before the new switch may forward that group's
// writes, and its fast-path reads resume only after the first
// new-epoch WRITE-COMPLETION reaches the partition. Groups recover
// independently — a slow group does not hold back the rest of the
// rack — and switches recover independently: replacing one switch
// bumps one epoch and stalls only the slots it owns, so the
// agreement's message count scales with groups-per-switch, not rack
// size. The rack records the per-switch agreement message counts and
// latency.
func (c *Cluster) ReactivateSwitch(switches ...int) error {
	if len(switches) == 0 {
		switches = make([]int, c.rack.Switches())
		for s := range switches {
			switches[s] = s
		}
	}
	for _, s := range switches {
		// Reject the whole call before touching anything: a typo'd
		// index must not silently leave a crashed switch down (the
		// paired CrashSwitch errors the same way).
		if s < 0 || s >= c.rack.Switches() {
			return fmt.Errorf("cluster: switch %d out of range", s)
		}
	}
	seen := make(map[int]bool, len(switches))
	for _, s := range switches {
		// Dedup: ReactivateSwitch(1, 1) must start ONE replacement, not
		// two racing agreements over the same groups.
		if !seen[s] {
			seen[s] = true
			c.reactivateOneSwitch(s)
		}
	}
	return nil
}

// reactivateOneSwitch replaces switch s (§5.3 scoped to one epoch
// domain).
func (c *Cluster) reactivateOneSwitch(s int) {
	c.net.SetDown(switchAddrOf(s), false)
	epoch := c.rack.BumpEpoch(s)
	c.rec.Emit(trace.Event{
		Kind: trace.EvSwitchReactivate, Switch: int16(s), Group: -1, Slot: -1,
		Arg: uint64(epoch),
	})
	c.rack.Front(s).Reboot() // booting: drops traffic until agreement done
	owned := c.rack.GroupsOf(s)
	rep := &switchReplacement{remaining: len(owned), start: c.eng.Now()}
	c.replacing[s] = rep
	for _, g := range owned {
		grp := c.groups[g]
		c.ctl.revokeThen(grp.idx, epoch-1, func() {
			if epoch != c.rack.Epoch(s) {
				// A newer replacement of this switch superseded us while
				// our agreement was in flight. Installing this scheduler
				// now would stamp fast reads with a stale epoch the
				// replicas' newer leases reject forever — the newer
				// replacement's own agreement installs the right one.
				return
			}
			// The replacement scheduler is built HERE, at agreement
			// completion, not when the replacement started: the group
			// may have reconfigured in between (a replica crash, a VR
			// view change), and those repairs land on the old scheduler.
			// Seeding from it carries the current fast-path set and
			// normal-path targets over — an eagerly built scheduler
			// would resurrect boot-time targets, including dead nodes.
			next := c.newScheduler(grp.idx, epoch)
			if old := grp.sched; old != nil {
				next.SetReplicas(old.Replicas())
				next.SetTargets(old.Targets())
			}
			c.rack.SetGroup(grp.idx, next)
			grp.sched = next
			c.ctl.grantGroupLeases(grp.idx, epoch)
			rep.remaining--
			if rep.remaining == 0 && c.replacing[s] == rep {
				c.replacing[s] = nil
				c.rack.NoteReplacement(s, time.Duration(c.eng.Now()-rep.start))
			}
		})
	}
}

// CrashReplica fails replica i of group 0 — the whole story for
// single-group clusters. Sharded clusters use CrashReplicaIn.
func (c *Cluster) CrashReplica(i int) error { return c.CrashReplicaIn(0, i) }

// CrashReplicaIn fails replica i of group g: its node drops all
// traffic and the group's protocol instance reconfigures around it
// where supported (§5.3 server failures). The switch stops scheduling
// that group's fast-path reads to it; other groups are untouched.
func (c *Cluster) CrashReplicaIn(g, i int) error {
	if g < 0 || g >= len(c.groups) {
		return fmt.Errorf("cluster: group %d out of range", g)
	}
	grp := c.groups[g]
	if !c.rack.Live(g) {
		return fmt.Errorf("cluster: group %d is retired", g)
	}
	if i < 0 || i >= grp.n {
		// Bounds are per GROUP: a heterogeneous cluster's replica
		// indices run to that group's own size, not a cluster-wide one.
		return fmt.Errorf("cluster: replica %d out of range for group %d (size %d)", i, g, grp.n)
	}
	addr := c.groupAddr(g, i)
	// Unsupported reconfigurations are rejected BEFORE any state
	// changes: an error here must mean "nothing happened", not "the
	// replica is dead but the protocol was never told".
	switch grp.raw.(type) {
	case []*pb.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: primary failover requires an external configuration service (not modeled)")
		}
	case []*nopaxos.Replica:
		if i == 0 {
			return fmt.Errorf("cluster: NOPaxos leader failover (view change) not modeled")
		}
	case []*craq.Replica:
		return fmt.Errorf("cluster: CRAQ reconfiguration not modeled")
	}
	if c.net.IsDown(addr) {
		// Idempotent: re-crashing a dead replica must not reconfigure
		// the protocol again or re-credit a pending revocation's ack
		// quorum (it was only counted as live once).
		return nil
	}
	c.net.SetDown(addr, true)
	c.ctl.replicaDown(g, i)
	if grp.sched != nil {
		grp.sched.RemoveReplica(addr)
	}
	switch rs := grp.raw.(type) {
	case []*chain.Replica:
		for j, r := range rs {
			if j != i {
				r.Reconfigure(i)
			}
		}
		// Retarget head/tail.
		head, tail := -1, -1
		for j, r := range rs {
			if j == i {
				continue
			}
			if r.IsHead() && head == -1 {
				head = j
			}
			if r.IsTail() {
				tail = j
			}
		}
		if head >= 0 && tail >= 0 {
			grp.sched.SetTargets(c.groupAddr(g, head), c.groupAddr(g, tail))
		}
	case []*pb.Replica:
		// i > 0: the primary case was rejected up front.
		for j, r := range rs {
			if j != i {
				r.RemoveBackup(i)
			}
		}
	case []*vr.Replica:
		// The VR view-change timers handle leader failure. For any
		// failure, survivors stop waiting on the dead replica's
		// COMMIT-ACKs so WRITE-COMPLETIONs keep flowing.
		for j, r := range rs {
			if j != i {
				r.MarkDead(i)
			}
		}
	}
	return nil
}

// SwitchAddr returns switch 0's network address — the whole switch
// plane for single-switch racks (experiment hooks).
func (c *Cluster) SwitchAddr() simnet.NodeID { return switchAddr }

// SwitchAddrOf returns switch s's network address (experiment hooks).
func (c *Cluster) SwitchAddrOf(s int) simnet.NodeID { return switchAddrOf(s) }

// ReplicaAddr returns replica i of group 0's network address
// (experiment hooks; see GroupReplicaAddr for sharded clusters).
func (c *Cluster) ReplicaAddr(i int) simnet.NodeID { return groupReplicaAddr(0, i) }

// GroupReplicaAddr returns replica i of group g's network address (the
// current member set's).
func (c *Cluster) GroupReplicaAddr(g, i int) simnet.NodeID { return c.groupAddr(g, i) }

// ShimStats sums the replicas' fast-path shim counters across all
// groups.
func (c *Cluster) ShimStats() (served, rejected, leaseRejected uint64) {
	add := func(b *protocol.Base) {
		served += b.FastServed
		rejected += b.FastRejected
		leaseRejected += b.LeaseRejected
	}
	for _, grp := range c.groups {
		switch rs := grp.raw.(type) {
		case []*pb.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*chain.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*vr.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		case []*nopaxos.Replica:
			for _, r := range rs {
				add(r.Base)
			}
		}
	}
	return
}

// --- small helpers ---

func keyName(i int) string { return fmt.Sprintf("obj%08d", i) }

// keyTab precomputes the key names and object IDs for the dense
// generator key space [0, n): per-op key materialization becomes two
// slice loads instead of a fmt.Sprintf plus a hash.
type keyTab struct {
	names []string
	ids   []wire.ObjectID
}

// ktabs caches the tables per key-space size. The entries are pure
// functions of n (keyName is deterministic, HashKey a pure hash), so
// the cache is process-global: a figure sweep that builds a fresh
// cluster per rate point reuses one table instead of re-rendering and
// re-hashing the whole key space every time.
var (
	ktabMu sync.Mutex
	ktabs  = make(map[int]*keyTab)
)

// keyTab returns the (cached) table for an n-key workload.
func (c *Cluster) keyTab(n int) *keyTab {
	ktabMu.Lock()
	defer ktabMu.Unlock()
	if t, ok := ktabs[n]; ok {
		return t
	}
	t := &keyTab{names: make([]string, n), ids: make([]wire.ObjectID, n)}
	for i := 0; i < n; i++ {
		t.names[i] = keyName(i)
		t.ids[i] = wire.HashKey(t.names[i])
	}
	ktabs[n] = t
	return t
}

// valueArena carves the 8-byte id-coded write payloads out of
// append-only chunks. Payload bytes are never recycled — stores,
// cached replies, and history records alias them indefinitely, the
// same rule wire.Packet.Value lives by — so the arena only appends,
// and one chunk allocation amortizes over thousands of writes.
type valueArena struct {
	chunk []byte
}

const valueArenaChunk = 64 * 1024

// encode appends one id-coded value and returns its 8-byte slice.
func (a *valueArena) encode(id int64) []byte {
	if cap(a.chunk)-len(a.chunk) < 8 {
		a.chunk = make([]byte, 0, valueArenaChunk)
	}
	n := len(a.chunk)
	a.chunk = a.chunk[:n+8]
	b := a.chunk[n : n+8 : n+8]
	for k := 0; k < 8; k++ {
		b[k] = byte(uint64(id) >> (8 * k))
	}
	return b
}

func decodeValue(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(b[k]) << (8 * k)
	}
	return int64(v)
}
