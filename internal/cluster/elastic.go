package cluster

import (
	"fmt"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/protocol"
	"harmonia/internal/rebalance"
	"harmonia/internal/sim"
	"harmonia/internal/store"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// Elastic membership: the four runtime mutations of the rack's
// epoch-versioned topology.
//
//   - AddGroup builds a new replica group on the most loaded alive
//     switch and seeds it a weight-fair slot share via the ordinary
//     online migration protocol (heat-aware: the new group takes the
//     rack's hottest slots first).
//   - RemoveGroup evacuates a group's slots to the surviving live
//     groups (weight-apportioned), then retires it through the §5.3
//     revoke/ack agreement so no member can serve a fast read past
//     retirement.
//   - RespecGroup replaces a live group's member set (protocol,
//     replica count, calibration) by a staged swap: freeze all its
//     slots, drain the scheduler partition, run the revoke agreement,
//     copy the state into the new incarnation, and resume at the SAME
//     switch epoch with the sequence space continued (AdoptFrom).
//   - ReassignDeadSwitch batch-recovers a permanently dead switch's
//     slot shard from its groups' replica stores — the replicas hold
//     every committed write — and re-homes the slots on the survivors.
//
// Every mutation lands in rack.Topology exactly once and bumps its
// epoch; the rebalancer, the client load split, and routing all read
// the new membership through that one indirection.

// Reconfig tracks one in-flight elastic membership operation. The
// non-blocking Start* forms return it immediately; the operation then
// advances on simulation timers exactly like an online migration.
type Reconfig struct {
	// Kind names the operation: "add", "remove", "respec", "reassign".
	Kind string
	// Group is the group the operation targets (for "reassign", the
	// dead switch's ID instead).
	Group int

	c    *Cluster
	done bool
	err  error
}

// Done reports whether the operation settled (successfully or not).
func (r *Reconfig) Done() bool { return r.done }

// Err returns the terminal error of a settled operation (nil on
// success; meaningless before Done).
func (r *Reconfig) Err() error { return r.err }

func (r *Reconfig) fail(err error) {
	if !r.done {
		r.err = err
		r.done = true
	}
}

func (r *Reconfig) finish() { r.done = true }

// elasticDeadline bounds one elastic operation's blocking drive: the
// slowest path (evacuate every slot of a group, then run the revoke
// agreement) is a handful of migration deadlines end to end.
const elasticDeadline = 4 * migrateDeadline

// driveReconfig runs the simulation until the operation settles,
// converting a terminal failure (or a wedged drain) into an error.
func (c *Cluster) driveReconfig(r *Reconfig) error {
	deadline := c.eng.Now() + sim.Time(elasticDeadline)
	for !r.done && c.eng.Now() < deadline {
		if !c.eng.Step() {
			break
		}
	}
	if !r.done {
		return fmt.Errorf("cluster: %s of group %d did not complete", r.Kind, r.Group)
	}
	return r.err
}

// --- AddGroup (scale-out) ---

// AddGroup grows the cluster by one replica group built from spec
// (defaulted by exactly the assembly-time rules) and returns its ID.
// The group is placed on the alive switch with the most heat per
// capacity unit, registered in the topology (epoch bump), and then
// seeded a weight-fair share of the slot space through ordinary
// online migrations — non-blocking, so scale-out under load costs at
// most the per-batch freeze windows, never a global pause. The
// returned Reconfig settles once the seeding migrations finish and
// the group has served its priming write.
func (c *Cluster) AddGroup(spec GroupSpec) (int, *Reconfig, error) {
	if len(c.groups) >= MaxGroups {
		return 0, nil, fmt.Errorf("cluster: group count is already at the maximum %d", MaxGroups)
	}
	if c.weightsExplicit && !(spec.Weight > 0) {
		return 0, nil, fmt.Errorf("cluster: this cluster uses explicit capacity weights; the new group's spec must set one")
	}
	if !c.weightsExplicit && spec.Weight > 0 {
		return 0, nil, fmt.Errorf("cluster: this cluster derives capacity weights from calibration; the new group's spec must not set an explicit one")
	}
	c.cfg.resolveSpec(&spec)
	if spec.Replicas > int(incStride) {
		return 0, nil, fmt.Errorf("cluster: group size %d exceeds the per-incarnation address window %d", spec.Replicas, incStride)
	}
	sw, err := c.placeGroup()
	if err != nil {
		return 0, nil, err
	}

	g := c.rack.AddGroup(sw, spec.Weight)
	grp := &replicaGroup{idx: g, spec: spec, n: spec.Replicas}
	c.groups = append(c.groups, grp)
	c.cfg.GroupSpecs = append(c.cfg.GroupSpecs, spec)
	c.cfg.Groups = len(c.groups)
	grp.sched = c.newScheduler(g, c.rack.Epoch(sw))
	c.rack.SetGroup(g, grp.sched)
	c.buildGroupReplicas(grp)
	c.replicas = append(c.replicas, grp.replicas...)
	c.linkGroup(grp)
	c.ctl.grantGroupLeases(g, c.rack.Epoch(sw))
	c.startSweep(grp)

	r := &Reconfig{Kind: "add", Group: g, c: c}
	c.reconfigs = append(c.reconfigs, r)
	migs := c.seedGroup(g)
	c.watchMigrations(migs, func() {
		owns := false
		for slot := 0; slot < wire.NumSlots; slot++ {
			if c.rack.RouteOf(slot) == g {
				owns = true
				break
			}
		}
		if !owns {
			r.fail(fmt.Errorf("cluster: seeding group %d moved no slots (sources could not drain)", g))
			return
		}
		c.primeGroupAsync(g)
		r.finish()
	})
	return g, r, nil
}

// AddGroupWait is the blocking form of AddGroup: it drives the
// simulation until the seeding migrations settle and the group is
// primed.
func (c *Cluster) AddGroupWait(spec GroupSpec) (int, error) {
	g, r, err := c.AddGroup(spec)
	if err != nil {
		return 0, err
	}
	if err := c.driveReconfig(r); err != nil {
		return g, err
	}
	return g, nil
}

// placeGroup picks the switch a new group should live on: the alive
// switch carrying the most heat per capacity unit — new capacity goes
// where the rack is working hardest. Cold racks (no heat yet) fall
// back to the alive switch hosting the fewest live groups.
func (c *Cluster) placeGroup() (int, error) {
	topo := c.rack.Topo()
	n := c.rack.Switches()
	heat := make([]float64, n)
	cap := make([]float64, n)
	groups := make([]int, n)
	var sample [wire.NumSlots]core.SlotHeat
	c.rack.SlotHeatInto(sample[:])
	for slot, h := range sample[:] {
		heat[topo.SwitchOfSlot(slot)] += float64(h.Total())
	}
	for _, g := range topo.LiveGroups() {
		s := topo.SwitchOfGroup(g)
		cap[s] += topo.Weight(g)
		groups[s]++
	}
	best := -1
	var bestScore float64
	for s := 0; s < n; s++ {
		if c.net.IsDown(switchAddrOf(s)) {
			continue
		}
		score := 0.0
		if cap[s] > 0 {
			score = heat[s] / cap[s]
		}
		if best == -1 || score > bestScore ||
			(score == bestScore && groups[s] < groups[best]) {
			best, bestScore = s, score
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: no alive switch to place the new group on")
	}
	return best, nil
}

// seedGroup computes the new group's heat-aware slot seed (PlanSeed's
// largest-remainder apportionment over the new live set) and starts it
// as one non-blocking batch migration per source group. A batch that
// cannot start (its source grew a conflicting freeze since planning)
// is simply skipped: the rebalancer evens the share out later.
func (c *Cluster) seedGroup(g int) []*Migration {
	var sample [wire.NumSlots]core.SlotHeat
	c.rack.SlotHeatInto(sample[:])
	heat := make([]rebalance.Heat, len(sample))
	for slot, h := range sample[:] {
		heat[slot] = rebalance.Heat{Reads: h.Reads, Writes: h.Writes}
	}
	topo := c.rack.Topo()
	moves := rebalance.PlanSeed(heat, c.rack.SlotTable(), topo.LiveWeights(), topo.LiveMask(), g)
	var sources []int
	bySource := make(map[int][]int)
	for _, mv := range moves {
		if _, ok := bySource[mv.From]; !ok {
			sources = append(sources, mv.From)
		}
		bySource[mv.From] = append(bySource[mv.From], mv.Slot)
	}
	var migs []*Migration
	for _, src := range sources {
		m, err := c.StartBatchMigration(bySource[src], g)
		if err != nil {
			continue
		}
		migs = append(migs, m)
	}
	return migs
}

// watchMigrations polls a set of in-flight handoffs and calls onDone
// once every one of them settled (completed or self-aborted at its
// drain deadline). An empty set settles immediately on the first poll.
func (c *Cluster) watchMigrations(migs []*Migration, onDone func()) {
	var tick func()
	tick = func() {
		for _, m := range migs {
			if !m.done && !m.aborted {
				c.eng.After(migratePollInterval, tick)
				return
			}
		}
		onDone()
	}
	c.eng.After(migratePollInterval, tick)
}

// primeGroupAsync issues the new group's priming write once it owns an
// unfrozen slot, so its scheduler partition observes a first
// WRITE-COMPLETION and enables fast reads (§5.3 applies to scale-out
// exactly as to cold boots). Bounded retries: a group that lost all
// its slots again in the meantime simply stays unprimed.
func (c *Cluster) primeGroupAsync(g int) {
	tries := 0
	var tick func()
	tick = func() {
		if !c.rack.Live(g) {
			return
		}
		key, ok := c.keyInGroup(g, fmt.Sprintf("__prime__%d_", g), -1)
		if !ok {
			if tries++; tries > 1024 {
				return
			}
			c.eng.After(migratePollInterval, tick)
			return
		}
		c.flushCtr++
		pkt := &wire.Packet{
			Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
			Group: uint16(g), ClientID: 0, ReqID: 1<<32 + c.flushCtr, Value: []byte{1},
		}
		c.net.Send(clientBase, c.switchAddrForObj(pkt.ObjID), pkt)
	}
	c.eng.After(migratePollInterval, tick)
}

// --- RemoveGroup (scale-in) ---

// StartRemoveGroup begins retiring group g: its slots are evacuated to
// the remaining live groups (weight-apportioned, via the ordinary
// online migrations — each batch carries its share of objects AND the
// group's at-most-once client table, so a lost-reply retry that lands
// on a destination after the flip replays instead of re-executing),
// and once the evacuation completes the §5.3 revoke agreement retires
// the group: every member acknowledges losing its lease, the
// scheduler partition is torn down, the topology marks the ID
// permanently dead (epoch bump), and the member nodes shut down.
func (c *Cluster) StartRemoveGroup(g int) (*Reconfig, error) {
	if g < 0 || g >= len(c.groups) {
		return nil, fmt.Errorf("cluster: group %d out of range", g)
	}
	if !c.rack.Live(g) {
		return nil, fmt.Errorf("cluster: group %d is already retired", g)
	}
	topo := c.rack.Topo()
	var dests []int
	for _, d := range topo.LiveGroups() {
		if d != g && !c.net.IsDown(switchAddrOf(topo.SwitchOfGroup(d))) {
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return nil, fmt.Errorf("cluster: no live destination group to evacuate group %d to", g)
	}
	var slots []int
	for slot := 0; slot < wire.NumSlots; slot++ {
		if c.rack.RouteOf(slot) == g {
			slots = append(slots, slot)
		}
	}
	r := &Reconfig{Kind: "remove", Group: g, c: c}
	c.reconfigs = append(c.reconfigs, r)
	if len(slots) == 0 {
		c.retireGroup(g, r)
		return r, nil
	}
	// Weight-apportioned contiguous chunks in slot order: destination k
	// takes share[k] slots. Each chunk is one batch handoff.
	w := make([]float64, len(dests))
	for k, d := range dests {
		w[k] = topo.Weight(d)
	}
	share := workload.Apportion(len(slots), w)
	var migs []*Migration
	start := 0
	for k, d := range dests {
		chunk := slots[start : start+share[k]]
		start += share[k]
		if len(chunk) == 0 {
			continue
		}
		m, err := c.StartBatchMigration(chunk, d)
		if err != nil {
			for _, prev := range migs {
				prev.Abort()
			}
			r.fail(err)
			return nil, err
		}
		migs = append(migs, m)
	}
	c.watchMigrations(migs, func() {
		for _, m := range migs {
			if m.aborted {
				// The group could not drain some batch: it keeps those
				// slots and stays live — scale-in failed cleanly.
				r.fail(fmt.Errorf("cluster: evacuating group %d aborted (%d slot(s) stayed)", g, len(m.Slots)))
				return
			}
		}
		c.retireGroup(g, r)
	})
	return r, nil
}

// RemoveGroup is the blocking form of StartRemoveGroup.
func (c *Cluster) RemoveGroup(g int) error {
	r, err := c.StartRemoveGroup(g)
	if err != nil {
		return err
	}
	return c.driveReconfig(r)
}

// retireGroup runs the retirement agreement for an evacuated group:
// the lease chain is cut (generation bump), every member acknowledges
// revocation of the current epoch's lease — so no member can serve a
// fast read past this point — and then the group leaves the topology
// for good.
func (c *Cluster) retireGroup(g int, r *Reconfig) {
	grp := c.groups[g]
	grp.leaseGen++
	epoch := c.rack.Epoch(c.rack.SwitchOfGroup(g))
	c.ctl.revokeThen(g, epoch, func() {
		c.rack.SetGroup(g, nil)
		grp.sched = nil
		c.rack.RetireGroup(g)
		for _, addr := range grp.addrs() {
			c.net.SetDown(addr, true)
		}
		// Any promoted key g held a replica of must stop spreading
		// there in the same event — g's copies leave with it.
		c.hotKeysDropGroup(g)
		r.finish()
	})
}

// --- RespecGroup (live membership swap) ---

// StartRespecGroup replaces group g's member set with one built from
// spec — a different protocol, replica count, or calibration — without
// moving any of its slots. The swap is staged like a whole-group
// migration onto itself: freeze every slot, drain the scheduler
// partition (forced flush writes pass the freeze), run the §5.3
// revoke agreement over the OLD members, copy the group's objects and
// client table into the NEW incarnation (fresh addresses in the next
// incarnation sub-window), and resume at the same switch epoch with
// the sequence space continued — in-flight sequencing state survives
// the swap, so the write-order guard never trips.
func (c *Cluster) StartRespecGroup(g int, spec GroupSpec) (*Reconfig, error) {
	if g < 0 || g >= len(c.groups) {
		return nil, fmt.Errorf("cluster: group %d out of range", g)
	}
	if !c.rack.Live(g) {
		return nil, fmt.Errorf("cluster: group %d is retired", g)
	}
	grp := c.groups[g]
	if grp.inc+1 >= maxIncarnations {
		return nil, fmt.Errorf("cluster: group %d exhausted its %d membership incarnations", g, maxIncarnations)
	}
	if c.weightsExplicit && !(spec.Weight > 0) {
		return nil, fmt.Errorf("cluster: this cluster uses explicit capacity weights; the new spec must set one")
	}
	if !c.weightsExplicit && spec.Weight > 0 {
		return nil, fmt.Errorf("cluster: this cluster derives capacity weights from calibration; the new spec must not set an explicit one")
	}
	c.cfg.resolveSpec(&spec)
	if spec.Replicas > int(incStride) {
		return nil, fmt.Errorf("cluster: group size %d exceeds the per-incarnation address window %d", spec.Replicas, incStride)
	}
	var slots []int
	for slot := 0; slot < wire.NumSlots; slot++ {
		if c.rack.RouteOf(slot) == g {
			if _, busy := c.migrations[slot]; busy || c.rack.Frozen(slot) {
				return nil, fmt.Errorf("cluster: slot %d of group %d is mid-migration; retry after it settles", slot, g)
			}
			slots = append(slots, slot)
		}
	}
	for _, s := range slots {
		c.rack.FreezeSlot(s)
	}
	r := &Reconfig{Kind: "respec", Group: g, c: c}
	c.reconfigs = append(c.reconfigs, r)
	deadline := c.eng.Now() + sim.Time(migrateDeadline)
	polls := 0
	var poll func()
	poll = func() {
		if c.eng.Now() >= deadline {
			for _, s := range slots {
				c.rack.UnfreezeSlot(s)
			}
			r.fail(fmt.Errorf("cluster: group %d could not drain for respec", g))
			return
		}
		sched := grp.sched
		if sched != nil {
			if sched.DirtyCount() > 0 {
				sched.SweepStale()
			}
			if sched.DirtyCount() == 0 {
				c.swapMembers(g, spec, slots, r)
				return
			}
			if polls++; polls%migrateFlushEvery == 0 {
				// Every slot of the group is frozen: the flush is forced
				// through with wire.FlagFlush.
				c.flushWrite(g, -1)
			}
		}
		c.eng.After(migratePollInterval, poll)
	}
	c.eng.After(migratePollInterval, poll)
	return r, nil
}

// RespecGroup is the blocking form of StartRespecGroup.
func (c *Cluster) RespecGroup(g int, spec GroupSpec) error {
	r, err := c.StartRespecGroup(g, spec)
	if err != nil {
		return err
	}
	return c.driveReconfig(r)
}

// swapMembers is the respec commit path, entered once the partition
// drained: revoke the old members' leases (they ack — the agreement —
// and can never serve a fast read again), then copy state sideways
// into the new incarnation and resume.
func (c *Cluster) swapMembers(g int, spec GroupSpec, slots []int, r *Reconfig) {
	grp := c.groups[g]
	sw := c.rack.SwitchOfGroup(g)
	epoch := c.rack.Epoch(sw)
	grp.leaseGen++ // cut the old chain before the new grant re-arms it
	c.ctl.revokeThen(g, epoch, func() {
		// Extract from the OLD members before they are replaced. After
		// the drain every committed write of the group is applied; the
		// max-merge covers a replica that lags in apply.
		oldReplicas := grp.replicas
		oldAddrs := grp.addrs()
		oldSched := grp.sched
		merged := make(map[wire.ObjectID]store.Object)
		for _, rep := range oldReplicas {
			for _, slot := range slots {
				for id, o := range rep.ExtractSlot(slot) {
					if cur, ok := merged[id]; !ok || cur.Seq.Less(o.Seq) {
						merged[id] = o
					}
				}
			}
		}
		install := make(map[wire.ObjectID]store.Object, len(merged))
		for id, o := range merged {
			install[id] = store.Object{Value: o.Value, Seq: wire.Seq{Epoch: 0, N: o.Seq.N}}
		}
		clients := mergeClientTables(oldReplicas, g)

		// New incarnation: fresh addresses, same group ID, same slots.
		grp.inc++
		grp.spec = spec
		grp.n = spec.Replicas
		c.cfg.GroupSpecs[g] = spec
		c.buildGroupReplicas(grp)
		c.linkGroup(grp)
		c.rebuildReplicaView()

		// One control round trip plus per-object transfer, then resume.
		delay := 2*c.cfg.LinkLatency + time.Duration(len(install))*migratePerObjectCost
		c.eng.After(delay, func() {
			for _, rep := range grp.replicas {
				rep.InstallSlot(install)
				rep.MergeClients(clients)
			}
			protocol.ReleaseRecords(clients)
			next := c.newScheduler(g, epoch)
			next.AdoptFrom(oldSched)
			c.rack.SetGroup(g, next)
			grp.sched = next
			// The respec'd incarnation only received the group's own
			// slots: promoted-key copies it held as a foreign holder
			// did not travel, so stop spreading reads to it.
			c.hotKeysDropGroup(g)
			c.ctl.grantGroupLeases(g, epoch)
			for _, a := range oldAddrs {
				c.net.SetDown(a, true)
			}
			for _, s := range slots {
				c.rack.UnfreezeSlot(s)
			}
			// The weight may have changed with the spec; installing it
			// bumps the topology epoch either way, announcing the
			// membership revision to every epoch-keyed consumer.
			c.rack.SetGroupWeight(g, spec.Weight)
			r.finish()
		})
	})
}

// mergeClientTables merges the at-most-once client tables of a
// replica set into one overlay for group dst: per client the newest
// request wins, and kept replies are re-stamped for dst with a zero
// Seq (so a replay's traversal of the switch cannot masquerade as a
// write-completion).
func mergeClientTables(replicas []ReplicaHandle, dst int) map[uint32]protocol.ClientRecord {
	clients := make(map[uint32]protocol.ClientRecord)
	for _, r := range replicas {
		for id, rec := range r.ExportClients() {
			cur, ok := clients[id]
			if !ok || rec.ReqID > cur.ReqID || (rec.ReqID == cur.ReqID && cur.Reply == nil && rec.Reply != nil) {
				if ok && cur.Reply != nil {
					cur.Reply.Release()
				}
				clients[id] = rec
			} else if rec.Reply != nil {
				rec.Reply.Release()
			}
		}
	}
	for id, rec := range clients {
		if rec.Reply == nil {
			continue
		}
		// Re-stamp on a pooled flight copy owned by the returned record
		// set (the caller drops it with ReleaseRecords after merging);
		// the exported reference returns to its table's lifecycle.
		rep := rec.Reply.FlightClone()
		rep.Seq = wire.Seq{}
		rep.Group = uint16(dst)
		rec.Reply.Release()
		clients[id] = protocol.ClientRecord{ReqID: rec.ReqID, Reply: rep}
	}
	return clients
}

// rebuildReplicaView refreshes the flattened group-major replica view
// after a membership swap (retired groups keep their last member set
// in the view: their counters remain readable for stats sweeps).
func (c *Cluster) rebuildReplicaView() {
	c.replicas = c.replicas[:0]
	for _, grp := range c.groups {
		c.replicas = append(c.replicas, grp.replicas...)
	}
}

// --- ReassignDeadSwitch (disaster recovery) ---

// StartReassignDeadSwitch batch-migrates a permanently dead switch's
// entire slot shard to the surviving switches' live groups. The dead
// front-end cannot drain — it is gone, along with its scheduler
// partitions — so this is a recovery transfer, not an online handoff:
// the victims' replica stores hold every committed write (the
// replicas are servers, not switch state), a max-merge per slot
// recovers the newest version of each object, and the victims'
// at-most-once client tables are merged into EVERY destination so a
// retry of any lost reply replays wherever its key now routes. The
// victims then retire through the revoke agreement and the topology
// epoch moves once per retired group.
func (c *Cluster) StartReassignDeadSwitch(s int) (*Reconfig, error) {
	if s < 0 || s >= c.rack.Switches() {
		return nil, fmt.Errorf("cluster: switch %d out of range", s)
	}
	if !c.net.IsDown(switchAddrOf(s)) {
		return nil, fmt.Errorf("cluster: switch %d is alive; use slot migration instead", s)
	}
	victims := c.rack.GroupsOf(s)
	if len(victims) == 0 {
		return nil, fmt.Errorf("cluster: switch %d hosts no live groups", s)
	}
	topo := c.rack.Topo()
	var dests []int
	for _, d := range topo.LiveGroups() {
		dsw := topo.SwitchOfGroup(d)
		if dsw != s && !c.net.IsDown(switchAddrOf(dsw)) {
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return nil, fmt.Errorf("cluster: no surviving live group to reassign switch %d's slots to", s)
	}
	victim := make(map[int]bool, len(victims))
	for _, v := range victims {
		victim[v] = true
	}
	var slots []int
	for slot := 0; slot < wire.NumSlots; slot++ {
		if victim[c.rack.RouteOf(slot)] {
			slots = append(slots, slot)
		}
	}
	r := &Reconfig{Kind: "reassign", Group: s, c: c}
	c.reconfigs = append(c.reconfigs, r)

	// Recover each stranded slot's objects from its owning group's
	// replicas (max-merge: all replicas are alive — the switch died,
	// not the servers — and the merge covers apply lag).
	bySlot := make(map[int]map[wire.ObjectID]store.Object, len(slots))
	total := 0
	for _, slot := range slots {
		merged := make(map[wire.ObjectID]store.Object)
		for _, rep := range c.groups[c.rack.RouteOf(slot)].replicas {
			for id, o := range rep.ExtractSlot(slot) {
				if cur, ok := merged[id]; !ok || cur.Seq.Less(o.Seq) {
					merged[id] = o
				}
			}
		}
		install := make(map[wire.ObjectID]store.Object, len(merged))
		for id, o := range merged {
			install[id] = store.Object{Value: o.Value, Seq: wire.Seq{Epoch: 0, N: o.Seq.N}}
		}
		bySlot[slot] = install
		total += len(install)
	}

	// Weight-apportioned contiguous chunks in slot order, one
	// destination per chunk; client tables go to every destination.
	w := make([]float64, len(dests))
	for k, d := range dests {
		w[k] = topo.Weight(d)
	}
	share := workload.Apportion(len(slots), w)
	destOf := make(map[int]int, len(slots))
	start := 0
	for k, d := range dests {
		for _, slot := range slots[start : start+share[k]] {
			destOf[slot] = d
		}
		start += share[k]
	}

	delay := 2*c.cfg.LinkLatency + time.Duration(total)*migratePerObjectCost
	c.eng.After(delay, func() {
		for _, slot := range slots {
			d := destOf[slot]
			for _, rep := range c.groups[d].replicas {
				rep.InstallSlot(bySlot[slot])
			}
		}
		for _, d := range dests {
			for _, v := range victims {
				clients := mergeClientTables(c.groups[v].replicas, d)
				for _, rep := range c.groups[d].replicas {
					rep.MergeClients(clients)
				}
				protocol.ReleaseRecords(clients)
			}
		}
		for _, slot := range slots {
			// SetRoute transfers front-end ownership off the dead
			// switch; the destination picks the slot up thawed.
			c.rack.SetRoute(slot, destOf[slot])
		}
		remaining := len(victims)
		for _, v := range victims {
			vr := v
			grp := c.groups[vr]
			grp.leaseGen++
			c.ctl.revokeThen(vr, c.rack.Epoch(s), func() {
				c.rack.SetGroup(vr, nil)
				grp.sched = nil
				c.rack.RetireGroup(vr)
				for _, addr := range grp.addrs() {
					c.net.SetDown(addr, true)
				}
				c.hotKeysDropGroup(vr)
				if remaining--; remaining == 0 {
					r.finish()
				}
			})
		}
	})
	return r, nil
}

// ReassignDeadSwitch is the blocking form of StartReassignDeadSwitch.
func (c *Cluster) ReassignDeadSwitch(s int) error {
	r, err := c.StartReassignDeadSwitch(s)
	if err != nil {
		return err
	}
	return c.driveReconfig(r)
}
