package cluster

// pendingTab maps in-flight request IDs to their op records without
// touching the heap on the steady path: open addressing with linear
// probing over power-of-two arrays. Request IDs are assigned
// sequentially from 1 and are scattered by a splitmix64-style mixer —
// identity hashing would lay an open-loop client's whole in-flight
// window out as one contiguous probe run, and the backward-shift
// delete below would then scan the entire window per completion. 0 is
// the empty marker and never a legal request ID; deletion
// backward-shifts the displaced probe run, so lookups never see
// tombstones and the table stays dense no matter how many ops cycle
// through it.
type pendingTab struct {
	keys []uint64 // 0 = empty slot
	vals []*opState
	n    int
}

// pendingTabMinSize is the initial capacity; a closed-loop client has
// one op in flight, an open-loop pool grows as deep as the offered
// backlog.
const pendingTabMinSize = 16

// ptabHash scatters sequential request IDs across the table (the
// 64-bit finalizer from splitmix64).
func ptabHash(req uint64) uint64 {
	req ^= req >> 33
	req *= 0xff51afd7ed558ccd
	req ^= req >> 33
	return req
}

func (t *pendingTab) len() int { return t.n }

// get returns the op record for req, if present.
func (t *pendingTab) get(req uint64) (*opState, bool) {
	if t.n == 0 {
		return nil, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := ptabHash(req) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case req:
			return t.vals[i], true
		case 0:
			return nil, false
		}
	}
}

// put inserts or replaces req's record, growing at 3/4 load.
func (t *pendingTab) put(req uint64, st *opState) {
	if t.keys == nil {
		t.keys = make([]uint64, pendingTabMinSize)
		t.vals = make([]*opState, pendingTabMinSize)
	} else if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := ptabHash(req) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case 0:
			t.keys[i], t.vals[i] = req, st
			t.n++
			return
		case req:
			t.vals[i] = st
			return
		}
	}
}

func (t *pendingTab) grow() {
	ok, ov := t.keys, t.vals
	t.keys = make([]uint64, 2*len(ok))
	t.vals = make([]*opState, 2*len(ov))
	t.n = 0
	for i, k := range ok {
		if k != 0 {
			t.put(k, ov[i])
		}
	}
}

// del removes req, reporting whether it was present.
func (t *pendingTab) del(req uint64) bool {
	if t.n == 0 {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	i := ptabHash(req) & mask
	for t.keys[i] != req {
		if t.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	// Backward shift: walk the rest of the probe run and pull every
	// entry whose home slot lies at or before the hole into it, keeping
	// all remaining entries reachable from their home slots.
	j := i
	for {
		j = (j + 1) & mask
		k := t.keys[j]
		if k == 0 {
			break
		}
		if (j-ptabHash(k))&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = k, t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.vals[i] = nil
	t.n--
	return true
}

// each calls fn for every in-flight record, in table order.
func (t *pendingTab) each(fn func(*opState)) {
	for i, k := range t.keys {
		if k != 0 {
			fn(t.vals[i])
		}
	}
}
