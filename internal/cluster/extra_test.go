package cluster

import (
	"bytes"
	"testing"
	"time"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

func TestSyncClientBasics(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 1})
	s := c.NewSyncClient()
	if err := s.Set("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k1")
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("phantom key")
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k1"); ok {
		t.Fatal("delete ignored")
	}
}

func TestSyncClientTimesOutWhenSwitchDown(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 1})
	c.StopSwitch()
	s := c.NewSyncClient()
	if err := s.Set("k", []byte("v")); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Recovery: the same client works after reactivation.
	c.ReactivateSwitch()
	c.RunFor(5 * time.Millisecond)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatalf("post-recovery Set: %v", err)
	}
}

func TestSyncClientRetriesThroughTransientLoss(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 3,
		DropProb: 0.3, // heavy loss on the packet path
	})
	s := c.NewSyncClient()
	for i := 0; i < 20; i++ {
		if err := s.Set(keyName(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Set %d under loss: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		v, ok, err := s.Get(keyName(i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("Get %d under loss: %q %v %v", i, v, ok, err)
		}
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 5})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 32, Duration: 15 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.1, Keys: 1000, Dist: Zipf09,
	})
	if rep.Ops == 0 {
		t.Fatal("zipf workload completed nothing")
	}
	// Skew means contended objects: some reads must have hit the
	// dirty set.
	if c.Scheduler().Stats.DirtyHits == 0 {
		t.Fatal("no dirty hits under zipf-0.9 with writes")
	}
}

func TestTwoReplicaGroups(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, CRAQ} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{Protocol: p, Replicas: 2, UseHarmonia: p != CRAQ, Seed: 7})
			rep := c.RunLoad(quickSpec())
			if rep.Ops == 0 {
				t.Fatal("no ops")
			}
		})
	}
}

func TestFiveReplicaQuorumProtocols(t *testing.T) {
	for _, p := range []Protocol{VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 5, UseHarmonia: true,
				RecordHistory: true, Seed: 7,
			})
			spec := quickSpec()
			spec.Clients = 6
			spec.Keys = 16
			spec.Duration = 8 * time.Millisecond
			spec.WriteRatio = 0.25
			rep := c.RunLoad(spec)
			if rep.Ops == 0 {
				t.Fatal("no ops")
			}
			c.RunFor(15 * time.Millisecond)
			res := c.CheckLinearizability()
			if !res.Decided || !res.Ok {
				t.Fatalf("5-replica %s history: %+v", p, res)
			}
		})
	}
}

func TestLinearizabilityUnderDuplication(t *testing.T) {
	// Duplicate every packet with 20% probability: at-most-once
	// machinery must hold the history together.
	for _, p := range []Protocol{Chain, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: true,
				RecordHistory: true, Seed: 17,
			})
			// Duplication on the client packet paths only (TCP-like
			// replica channels don't duplicate).
			dup := simnet.LinkConfig{Latency: 5 * time.Microsecond, DupProb: 0.2}
			for r := 0; r < 3; r++ {
				c.net.SetLinkBoth(switchAddr, c.ReplicaAddr(r), dup)
			}
			spec := quickSpec()
			spec.Clients = 6
			spec.Keys = 12
			spec.Duration = 8 * time.Millisecond
			spec.WriteRatio = 0.3
			c.RunLoad(spec)
			c.RunFor(15 * time.Millisecond)
			res := c.CheckLinearizability()
			if !res.Decided {
				t.Fatalf("undecided: %s", res.Reason)
			}
			if !res.Ok {
				t.Fatalf("duplication broke linearizability: %s", res.Reason)
			}
		})
	}
}

func TestHistoriesDeterministic(t *testing.T) {
	run := func() []byte {
		c := New(Config{Protocol: VR, Replicas: 3, UseHarmonia: true, RecordHistory: true, Seed: 77})
		spec := quickSpec()
		spec.Clients = 4
		spec.Duration = 5 * time.Millisecond
		c.RunLoad(spec)
		var buf bytes.Buffer
		for _, op := range c.History() {
			buf.WriteByte(byte(op.Key))
			buf.WriteByte(byte(op.Value))
			buf.WriteByte(byte(op.Invoke))
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("histories differ across identical runs")
	}
}

func TestSchedulerEpochSurvivesMultipleFailovers(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 21, RecordHistory: true})
	s := c.NewSyncClient()
	for round := 0; round < 3; round++ {
		if err := s.Set("k", nil); err != nil {
			t.Fatalf("round %d Set: %v", round, err)
		}
		c.StopSwitch()
		c.ReactivateSwitch()
		c.RunFor(5 * time.Millisecond)
	}
	if got := c.Scheduler().Epoch(); got != 4 {
		t.Fatalf("epoch = %d after 3 failovers, want 4", got)
	}
	// Fast path re-enabled after a write completes in the new epoch.
	if err := s.Set("k2", nil); err != nil {
		t.Fatal(err)
	}
	if !c.Scheduler().Ready() {
		t.Fatal("switch not ready after new-epoch write")
	}
	res := c.CheckLinearizability()
	if !res.Decided || !res.Ok {
		t.Fatalf("repeated failover history: %+v", res)
	}
}

func TestCrashedReplicaReceivesNoFastReads(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 9})
	if err := c.CrashReplica(1); err != nil {
		t.Fatal(err)
	}
	crashed := c.net.Node(c.ReplicaAddr(1))
	before := crashed.Delivered // priming traffic pre-crash
	spec := quickSpec()
	spec.WriteRatio = 0
	c.RunLoad(spec)
	if crashed.Delivered != before {
		t.Fatalf("crashed replica processed %d messages post-crash", crashed.Delivered-before)
	}
}

func TestProtocolStringAndReadBehind(t *testing.T) {
	if PB.String() != "PB" || Chain.String() != "CR" || CRAQ.String() != "CRAQ" ||
		VR.String() != "VR" || NOPaxos.String() != "NOPaxos" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(42).String() == "" {
		t.Fatal("unknown protocol name empty")
	}
	if PB.ReadBehind() || Chain.ReadBehind() || CRAQ.ReadBehind() {
		t.Fatal("PB family misclassified")
	}
	if !VR.ReadBehind() || !NOPaxos.ReadBehind() {
		t.Fatal("quorum family misclassified")
	}
}

func TestRunLoadsEmpty(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, Seed: 1})
	if out := c.RunLoads(nil); out != nil {
		t.Fatal("empty RunLoads returned reports")
	}
}

func TestMixedLoadGroupsIsolateStats(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 13})
	reps := c.RunLoads([]LoadSpec{
		{Mode: Closed, Clients: 32, Duration: 10 * time.Millisecond, Warmup: 2 * time.Millisecond,
			WriteRatio: 0, Keys: 1000},
		{Mode: Open, Rate: 50000, Duration: 10 * time.Millisecond, Warmup: 2 * time.Millisecond,
			WriteRatio: 1, Keys: 1000},
	})
	if reps[0].Writes != 0 {
		t.Fatalf("read group recorded %d writes", reps[0].Writes)
	}
	if reps[1].Reads != 0 {
		t.Fatalf("write group recorded %d reads", reps[1].Reads)
	}
	if reps[0].Reads == 0 || reps[1].Writes == 0 {
		t.Fatal("groups idle")
	}
	// Open-loop write rate should land near the offered 50k/s.
	if r := reps[1].WriteThroughput; r < 30000 || r > 70000 {
		t.Fatalf("open-loop write rate %f, want ≈50k", r)
	}
}

func TestDirtyReadsGoToNormalPath(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 3})
	// One hot key, 50% writes: reads frequently race writes.
	spec := LoadSpec{
		Mode: Closed, Clients: 16, Duration: 10 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 0.5, Keys: 1,
	}
	c.RunLoad(spec)
	st := c.Scheduler().Stats
	if st.DirtyHits == 0 {
		t.Fatal("hot-key workload produced no dirty hits")
	}
}

func TestSwitchStatsDirtySetDrainsWhenIdle(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 3})
	c.RunLoad(quickSpec())
	c.RunFor(20 * time.Millisecond) // all completions land
	if n := c.Scheduler().DirtyCount(); n != 0 {
		t.Fatalf("dirty set holds %d entries at quiescence", n)
	}
}

func TestWritePacketRoundTripsThroughWireFormat(t *testing.T) {
	// The simulation passes packets by pointer; verify the byte-level
	// format survives an encode/decode cycle for a real packet from
	// the running system (keeps wire and sim views in sync).
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 3})
	s := c.NewSyncClient()
	if err := s.Set("codec-key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	pkt := &wire.Packet{
		Op: wire.OpWrite, ObjID: wire.HashKey("codec-key"), Key: "codec-key",
		Seq: wire.Seq{Epoch: 1, N: 99}, ClientID: 7, ReqID: 3, Value: []byte("payload"),
	}
	b, err := pkt.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := wire.Decode(b)
	if err != nil || back.Key != pkt.Key || !bytes.Equal(back.Value, pkt.Value) {
		t.Fatalf("round trip: %v %v", back, err)
	}
}
