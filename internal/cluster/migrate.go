package cluster

import (
	"fmt"
	"time"

	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/store"
	"harmonia/internal/trace"
	"harmonia/internal/wire"
)

// Online slot migration (group rebalancing). The handoff follows the
// §5.3 playbook, applied to a set of routing slots instead of a whole
// switch:
//
//  1. freeze — the front-end drops the slots' client reads and writes,
//     exactly as a booting switch drops everything; client timeouts
//     handle retry. Replica-originated traffic (replies, completions)
//     still flows, which is what lets the source drain.
//  2. drain — poll until the source scheduler's dirty set holds no
//     entry for any of the slots. In-order write processing (§5.2)
//     makes this the full quiescence signal: every write the switch
//     sequenced for the slots has either committed everywhere or can
//     never apply. Stray entries (lost WRITE-COMPLETIONs) are swept as
//     the commit point passes them; if the group is otherwise idle, the
//     controller nudges the commit point forward with flush writes to
//     an unfrozen slot of the same group.
//  3. copy — extract the slots' objects from every source replica,
//     keep the newest version of each, and install them into the
//     destination replicas with epoch-0 sequence numbers (each group's
//     scheduler counts in its own sequence space; importing a foreign
//     high-water mark would wedge the destination's write-order
//     guard).
//  4. flip & thaw — point the slots' routes at the destination, drop
//     the source copies, and unfreeze. The next retry of any dropped
//     request lands on the new owner, which has everything.
//
// A batch pays the freeze window, the drain, the copy round trip, and
// the flip ONCE for the whole slot set, where per-slot migration pays
// each of them per slot — that amortization is what makes rebalancing
// rounds cheap enough to run from a control loop.
const (
	// migratePollInterval paces the drain check.
	migratePollInterval = 100 * time.Microsecond
	// migrateFlushEvery is how many empty polls pass between flush
	// writes nudging an idle source group's commit point forward.
	migrateFlushEvery = 5
	// migratePerObjectCost models the state-transfer time per copied
	// object (on top of one round trip).
	migratePerObjectCost = 200 * time.Nanosecond
	// migrateDeadline bounds the blocking MigrateSlot/MigrateSlots
	// calls.
	migrateDeadline = 500 * time.Millisecond
)

// Migration tracks one online handoff of a set of slots from one
// source group to one destination.
type Migration struct {
	// Slot is the first slot of the batch — the whole story for the
	// single-slot StartSlotMigration form.
	Slot int
	// Slots lists every slot in the handoff.
	Slots []int
	From  int
	To    int

	c       *Cluster
	polls   int
	objects int
	copying bool
	done    bool
	aborted bool

	// deadline bounds the drain: a poll past it aborts the handoff
	// (slots thaw on their original owner). Without it, a non-blocking
	// handoff whose source can never drain would keep its slots —
	// by construction the hottest ones, when the rebalancer started it
	// — frozen forever, with no caller around to notice.
	deadline sim.Time

	// auto marks a handoff initiated by the rebalancer control loop;
	// its completed slot moves land in the cluster's Rebalances
	// counter.
	auto bool
}

// Done reports whether the handoff completed (routes flipped, slots
// thawed).
func (m *Migration) Done() bool { return m.done }

// Aborted reports whether the handoff was cancelled before the copy
// started (slots thawed on their original group, nothing moved).
func (m *Migration) Aborted() bool { return m.aborted }

// Objects returns the number of objects copied (valid once Done).
func (m *Migration) Objects() int { return m.objects }

// Abort cancels a handoff that has not reached the copy stage: the
// slots thaw on their original group and become migratable again. It
// reports whether the cancellation took effect — once the copy is in
// flight the handoff is moments from completing and can no longer be
// abandoned (the routes will flip).
func (m *Migration) Abort() bool {
	if m.done || m.aborted || m.copying {
		return false
	}
	m.aborted = true
	for _, s := range m.Slots {
		m.c.rack.UnfreezeSlot(s)
		delete(m.c.migrations, s)
		m.c.rec.Emit(trace.Event{
			Kind: trace.EvMigrationAbort, Switch: int16(m.c.rack.SwitchOfSlot(s)),
			Group: int16(m.From), Slot: int16(s), Arg: uint64(m.To),
		})
	}
	return true
}

// StartSlotMigration begins an online handoff of slot to group "to"
// and returns immediately; the protocol advances on simulation timers
// so load keeps running while the slot migrates. A migration to the
// slot's current owner completes instantly as a no-op. At most one
// migration per slot may be in flight; different slots migrate
// concurrently.
func (c *Cluster) StartSlotMigration(slot, to int) (*Migration, error) {
	return c.StartBatchMigration([]int{slot}, to)
}

// StartBatchMigration begins an online handoff of a set of slots to
// group "to" as ONE operation: one freeze window, one drain, one bulk
// copy, one route flip — amortizing the per-slot costs StartSlotMigration
// pays individually. Slots already routed to "to" are dropped from the
// batch as no-ops; the remaining slots must share a single current
// owner (use MigrateSlots to move a mixed-owner set). An empty or
// fully-no-op batch completes instantly without freezing anything.
func (c *Cluster) StartBatchMigration(slots []int, to int) (*Migration, error) {
	if to < 0 || to >= len(c.groups) {
		return nil, fmt.Errorf("cluster: destination group %d out of range", to)
	}
	seen := make(map[int]bool, len(slots))
	var live []int
	for _, s := range slots {
		if s < 0 || s >= wire.NumSlots {
			return nil, fmt.Errorf("cluster: slot %d out of range [0, %d)", s, wire.NumSlots)
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: slot %d listed twice in the batch", s)
		}
		seen[s] = true
		if c.rack.RouteOf(s) == to {
			continue // already there: a no-op, not a handoff
		}
		live = append(live, s)
	}
	if len(live) == 0 {
		// Nothing to move. No freeze, no drain, no copy: the route is
		// already correct for every requested slot.
		first := -1
		if len(slots) > 0 {
			first = slots[0]
		}
		return &Migration{Slot: first, Slots: nil, From: to, To: to, c: c, done: true}, nil
	}
	from := c.rack.RouteOf(live[0])
	for _, s := range live[1:] {
		if g := c.rack.RouteOf(s); g != from {
			return nil, fmt.Errorf("cluster: batch spans source groups %d and %d (slot %d); use MigrateSlots", from, g, s)
		}
	}
	for _, s := range live {
		if _, busy := c.migrations[s]; busy {
			return nil, fmt.Errorf("cluster: slot %d is already migrating", s)
		}
		if c.rack.Frozen(s) {
			// Frozen without a migration record: an elastic operation
			// (respec drain, group retirement) holds the slot.
			return nil, fmt.Errorf("cluster: slot %d is frozen by another reconfiguration", s)
		}
	}
	m := &Migration{
		Slot: live[0], Slots: live, From: from, To: to, c: c,
		deadline: c.eng.Now() + sim.Time(migrateDeadline),
	}
	for _, s := range live {
		c.migrations[s] = m
		c.rack.FreezeSlot(s)
		c.rec.Emit(trace.Event{
			Kind: trace.EvMigrationStart, Switch: int16(c.rack.SwitchOfSlot(s)),
			Group: int16(from), Slot: int16(s), Arg: uint64(to),
		})
	}
	c.eng.After(migratePollInterval, m.poll)
	return m, nil
}

// MigrateSlot is the blocking convenience form: it starts the handoff
// and drives the simulation until it completes. If a generous deadline
// expires first (e.g. the source group can no longer commit anything,
// so its dirty set never drains), the handoff is aborted — the slot
// thaws on its original group and stays fully available — and an
// error is returned. Migrating a slot to its current owner is a no-op
// success.
func (c *Cluster) MigrateSlot(slot, to int) error {
	return c.MigrateSlots([]int{slot}, to)
}

// MigrateSlots is the blocking batch form: the slots are grouped by
// their current owner, one batch handoff is started per source group
// (each paying one freeze/drain/copy/flip for its share), and the
// simulation is driven until every handoff completes. Slots already
// owned by "to" are no-op successes. On deadline the undrained
// handoffs are aborted — their slots thaw on their original groups —
// and an error is returned.
func (c *Cluster) MigrateSlots(slots []int, to int) error {
	if to < 0 || to >= len(c.groups) {
		return fmt.Errorf("cluster: destination group %d out of range", to)
	}
	// Partition by current owner, preserving request order so runs stay
	// deterministic (map-keyed grouping would randomize start order).
	var sources []int
	bySource := make(map[int][]int)
	for _, s := range slots {
		if s < 0 || s >= wire.NumSlots {
			return fmt.Errorf("cluster: slot %d out of range [0, %d)", s, wire.NumSlots)
		}
		g := c.rack.RouteOf(s)
		if g == to {
			continue
		}
		if _, ok := bySource[g]; !ok {
			sources = append(sources, g)
		}
		bySource[g] = append(bySource[g], s)
	}
	var migs []*Migration
	for _, g := range sources {
		m, err := c.StartBatchMigration(bySource[g], to)
		if err != nil {
			for _, prev := range migs {
				prev.Abort()
			}
			return err
		}
		migs = append(migs, m)
	}
	return c.driveMigrations(migs)
}

// SwapSlots exchanges two slot sets between their owning groups as two
// concurrent batch handoffs — slotsA move to slotsB's owner and vice
// versa — so a rebalancing round can trade a hot slot for a cold one
// without changing either group's slot occupancy. Each set must be
// non-empty and uniformly owned, and the two owners must differ. The
// call blocks until both handoffs complete; on deadline both are
// aborted and every slot thaws on its original owner.
func (c *Cluster) SwapSlots(slotsA, slotsB []int) error {
	ma, mb, err := c.StartSwapSlots(slotsA, slotsB)
	if err != nil {
		return err
	}
	return c.driveMigrations([]*Migration{ma, mb})
}

// StartSwapSlots begins the two batch handoffs of a SwapSlots exchange
// and returns immediately (the non-blocking form, for swaps started
// mid-run from simulation timers).
func (c *Cluster) StartSwapSlots(slotsA, slotsB []int) (*Migration, *Migration, error) {
	ga, err := c.uniformOwner(slotsA)
	if err != nil {
		return nil, nil, err
	}
	gb, err := c.uniformOwner(slotsB)
	if err != nil {
		return nil, nil, err
	}
	if ga == gb {
		return nil, nil, fmt.Errorf("cluster: swap sets share owner group %d", ga)
	}
	ma, err := c.StartBatchMigration(slotsA, gb)
	if err != nil {
		return nil, nil, err
	}
	mb, err := c.StartBatchMigration(slotsB, ga)
	if err != nil {
		ma.Abort()
		return nil, nil, err
	}
	return ma, mb, nil
}

// uniformOwner returns the single group currently owning every slot of
// the set, or an error when the set is empty, out of range, or spans
// owners.
func (c *Cluster) uniformOwner(slots []int) (int, error) {
	if len(slots) == 0 {
		return 0, fmt.Errorf("cluster: empty swap set")
	}
	for _, s := range slots {
		if s < 0 || s >= wire.NumSlots {
			return 0, fmt.Errorf("cluster: slot %d out of range [0, %d)", s, wire.NumSlots)
		}
	}
	g := c.rack.RouteOf(slots[0])
	for _, s := range slots[1:] {
		if got := c.rack.RouteOf(s); got != g {
			return 0, fmt.Errorf("cluster: swap set spans groups %d and %d (slot %d)", g, got, s)
		}
	}
	return g, nil
}

// driveMigrations runs the simulation until every handoff settles
// (completes, or self-aborts at its drain deadline), reporting the
// aborted ones as an error.
func (c *Cluster) driveMigrations(migs []*Migration) error {
	settled := func() bool {
		for _, m := range migs {
			if !m.done && !m.aborted {
				return false
			}
		}
		return true
	}
	deadline := c.eng.Now() + sim.Time(migrateDeadline)
	for !settled() && c.eng.Now() < deadline {
		if !c.eng.Step() {
			break
		}
	}
	var stuck []*Migration
	for _, m := range migs {
		if m.done {
			continue
		}
		if !m.aborted && !m.Abort() {
			// The copy was already in flight: let it finish.
			for !m.done && c.eng.Step() {
			}
			if m.done {
				continue
			}
		}
		stuck = append(stuck, m)
	}
	if len(stuck) > 0 {
		m := stuck[0]
		return fmt.Errorf("cluster: migration of %d slot(s) to group %d did not complete (aborted, slots stay on group %d)",
			len(m.Slots), m.To, m.From)
	}
	return nil
}

// poll is the drain check (step 2).
func (m *Migration) poll() {
	if m.aborted {
		return
	}
	c := m.c
	if c.eng.Now() >= m.deadline {
		// The source could not drain in a generous window (e.g. it can
		// no longer commit anything): give the slots back. Blocking
		// callers report the abort as an error; the rebalancer simply
		// re-plans from fresh heat once the imbalance persists.
		m.Abort()
		return
	}
	sched := c.groups[m.From].sched
	if sched != nil {
		// Reclaim strays the commit point has passed, then test
		// quiescence. DirtyCount is a cheap occupancy counter gating
		// both register scans.
		if sched.DirtyCount() > 0 {
			sched.SweepStale()
		}
		if sched.DirtyCount() == 0 || sched.DirtyInSlots(m.Slots) == 0 {
			m.copyAndFlip()
			return
		}
		m.polls++
		if m.polls%migrateFlushEvery == 0 {
			// The slots still look busy and nothing has cleared them:
			// the group may be idle with a stray entry whose completion
			// was lost. A write to an unfrozen slot of the same group
			// advances the commit point past the stray so the next
			// sweep reclaims it (every slot of this batch is frozen, so
			// the flush can never land in one).
			c.flushWrite(m.From, -1)
		}
	}
	c.eng.After(migratePollInterval, m.poll)
}

// copyAndFlip runs steps 3 and 4 for the whole batch at once.
func (m *Migration) copyAndFlip() {
	m.copying = true
	c := m.c
	// Newest version of each object across the source replicas. After
	// the drain, replicas agree on every committed write of the slots;
	// the max-merge additionally covers a replica that lags in apply.
	merged := make(map[wire.ObjectID]store.Object)
	for _, r := range c.groups[m.From].replicas {
		for _, slot := range m.Slots {
			for id, o := range r.ExtractSlot(slot) {
				if cur, ok := merged[id]; !ok || cur.Seq.Less(o.Seq) {
					merged[id] = o
				}
			}
		}
	}
	m.objects = len(merged)
	install := make(map[wire.ObjectID]store.Object, len(merged))
	for id, o := range merged {
		install[id] = store.Object{Value: o.Value, Seq: wire.Seq{Epoch: 0, N: o.Seq.N}}
	}
	// The at-most-once client tables travel with the objects: a write
	// the source executed whose reply was lost in flight is still being
	// retried by its client, and after the flip that retry lands on the
	// destination — whose table would otherwise admit it as fresh and
	// re-execute it, possibly clobbering a newer committed value of the
	// same key (observed as a linearizability violation under drops).
	// Per client the newest request wins; replies kept for replay are
	// re-stamped for the destination (zero Seq, so the replay's
	// traversal of the switch cannot masquerade as a source-group
	// write-completion and inflate its commit point).
	clients := make(map[uint32]protocol.ClientRecord)
	for _, r := range c.groups[m.From].replicas {
		for id, rec := range r.ExportClients() {
			cur, ok := clients[id]
			if !ok || rec.ReqID > cur.ReqID || (rec.ReqID == cur.ReqID && cur.Reply == nil && rec.Reply != nil) {
				if ok && cur.Reply != nil {
					cur.Reply.Release()
				}
				clients[id] = rec
			} else if rec.Reply != nil {
				rec.Reply.Release()
			}
		}
	}
	for id, rec := range clients {
		if rec.Reply == nil {
			continue
		}
		// Re-stamp on a pooled flight copy owned by this record set; the
		// exported reference is returned to its table's lifecycle.
		rep := rec.Reply.FlightClone()
		rep.Seq = wire.Seq{}
		rep.Group = uint16(m.To)
		rec.Reply.Release()
		clients[id] = protocol.ClientRecord{ReqID: rec.ReqID, Reply: rep}
	}
	// One control round trip plus a per-object transfer cost for the
	// whole batch; the slots stay frozen while the copy is in flight.
	delay := 2*c.cfg.LinkLatency + time.Duration(len(install))*migratePerObjectCost
	c.eng.After(delay, func() {
		for _, r := range c.groups[m.To].replicas {
			r.InstallSlot(install)
			r.MergeClients(clients)
		}
		protocol.ReleaseRecords(clients)
		for _, r := range c.groups[m.From].replicas {
			for _, slot := range m.Slots {
				r.DropSlot(slot)
			}
		}
		for _, slot := range m.Slots {
			c.rack.SetRoute(slot, m.To)
			c.rack.UnfreezeSlot(slot)
			delete(c.migrations, slot)
			c.rec.Emit(trace.Event{
				Kind: trace.EvMigrationFlip, Switch: int16(c.rack.SwitchOfSlot(slot)),
				Group: int16(m.To), Slot: int16(slot), Arg: uint64(m.From),
			})
		}
		m.done = true
		if m.auto {
			c.rebalanced += uint64(len(m.Slots))
			c.rebalanceRounds++
		}
	})
}

// flushWrite issues one control-plane write to group g, steering clear
// of avoidSlot and preferring unfrozen slots, so the group's
// last-committed point advances even when client load is idle. It uses
// the priming client identity (ClientID 0) with a request ID range of
// its own. When EVERY slot the group serves is frozen — the
// whole-group drain of a retirement or membership respec — the nudge
// is forced through the freeze with wire.FlagFlush: the flush write
// quiesces like any other and its object travels with the batch, but
// without it the drain would wedge on a stray entry forever.
func (c *Cluster) flushWrite(g, avoidSlot int) {
	var flags wire.Flags
	key, ok := c.keyInGroup(g, fmt.Sprintf("__flush__%d_", g), avoidSlot)
	if !ok {
		key, ok = c.keyInGroupAny(g, fmt.Sprintf("__flush__%d_", g), avoidSlot, true)
		if !ok {
			return
		}
		flags = wire.FlagFlush
	}
	c.flushCtr++
	pkt := &wire.Packet{
		Op: wire.OpWrite, Flags: flags, ObjID: wire.HashKey(key), Key: key,
		Group: uint16(g), ClientID: 0, ReqID: 1<<32 + c.flushCtr, Value: []byte{1},
	}
	c.net.Send(clientBase, c.switchAddrForObj(pkt.ObjID), pkt)
}
