package cluster

import (
	"fmt"
	"time"

	"harmonia/internal/sim"
	"harmonia/internal/store"
	"harmonia/internal/wire"
)

// Online slot migration (group rebalancing). The handoff follows the
// §5.3 playbook, applied to one routing slot instead of a whole
// switch:
//
//  1. freeze — the front-end drops the slot's client reads and writes,
//     exactly as a booting switch drops everything; client timeouts
//     handle retry. Replica-originated traffic (replies, completions)
//     still flows, which is what lets the source drain.
//  2. drain — poll until the source scheduler's dirty set holds no
//     entry for the slot. In-order write processing (§5.2) makes this
//     the full quiescence signal: every write the switch sequenced for
//     the slot has either committed everywhere or can never apply.
//     Stray entries (lost WRITE-COMPLETIONs) are swept as the
//     commit point passes them; if the group is otherwise idle, the
//     controller nudges the commit point forward with flush writes to
//     a different slot of the same group.
//  3. copy — extract the slot's objects from every source replica,
//     keep the newest version of each, and install them into the
//     destination replicas with epoch-0 sequence numbers (each group's
//     scheduler counts in its own sequence space; importing a foreign
//     high-water mark would wedge the destination's write-order
//     guard).
//  4. flip & thaw — point the slot's route at the destination, drop
//     the source copies, and unfreeze. The next retry of any dropped
//     request lands on the new owner, which has everything.
const (
	// migratePollInterval paces the drain check.
	migratePollInterval = 100 * time.Microsecond
	// migrateFlushEvery is how many empty polls pass between flush
	// writes nudging an idle source group's commit point forward.
	migrateFlushEvery = 5
	// migratePerObjectCost models the state-transfer time per copied
	// object (on top of one round trip).
	migratePerObjectCost = 200 * time.Nanosecond
	// migrateDeadline bounds the blocking MigrateSlot call.
	migrateDeadline = 500 * time.Millisecond
)

// Migration tracks one online slot handoff.
type Migration struct {
	Slot int
	From int
	To   int

	c       *Cluster
	polls   int
	objects int
	copying bool
	done    bool
	aborted bool
}

// Done reports whether the handoff completed (route flipped, slot
// thawed).
func (m *Migration) Done() bool { return m.done }

// Aborted reports whether the handoff was cancelled before the copy
// started (slot thawed on its original group, nothing moved).
func (m *Migration) Aborted() bool { return m.aborted }

// Objects returns the number of objects copied (valid once Done).
func (m *Migration) Objects() int { return m.objects }

// Abort cancels a handoff that has not reached the copy stage: the
// slot thaws on its original group and the slot becomes migratable
// again. It reports whether the cancellation took effect — once the
// copy is in flight the handoff is moments from completing and can no
// longer be abandoned (the route will flip).
func (m *Migration) Abort() bool {
	if m.done || m.aborted || m.copying {
		return false
	}
	m.aborted = true
	m.c.front.UnfreezeSlot(m.Slot)
	delete(m.c.migrations, m.Slot)
	return true
}

// StartSlotMigration begins an online handoff of slot to group "to"
// and returns immediately; the protocol advances on simulation timers
// so load keeps running while the slot migrates. A migration to the
// slot's current owner completes instantly. At most one migration per
// slot may be in flight; different slots migrate concurrently.
func (c *Cluster) StartSlotMigration(slot, to int) (*Migration, error) {
	if slot < 0 || slot >= wire.NumSlots {
		return nil, fmt.Errorf("cluster: slot %d out of range [0, %d)", slot, wire.NumSlots)
	}
	if to < 0 || to >= len(c.groups) {
		return nil, fmt.Errorf("cluster: destination group %d out of range", to)
	}
	if _, busy := c.migrations[slot]; busy {
		return nil, fmt.Errorf("cluster: slot %d is already migrating", slot)
	}
	from := c.front.RouteOf(slot)
	m := &Migration{Slot: slot, From: from, To: to, c: c}
	if from == to {
		m.done = true
		return m, nil
	}
	c.migrations[slot] = m
	c.front.FreezeSlot(slot)
	c.eng.After(migratePollInterval, m.poll)
	return m, nil
}

// MigrateSlot is the blocking convenience form: it starts the handoff
// and drives the simulation until it completes. If a generous deadline
// expires first (e.g. the source group can no longer commit anything,
// so its dirty set never drains), the handoff is aborted — the slot
// thaws on its original group and stays fully available — and an
// error is returned.
func (c *Cluster) MigrateSlot(slot, to int) error {
	m, err := c.StartSlotMigration(slot, to)
	if err != nil {
		return err
	}
	deadline := c.eng.Now() + sim.Time(migrateDeadline)
	for !m.done && c.eng.Now() < deadline {
		if !c.eng.Step() {
			break
		}
	}
	if !m.done {
		if !m.Abort() {
			// The copy was already in flight: let it finish.
			for !m.done && c.eng.Step() {
			}
			if m.done {
				return nil
			}
		}
		return fmt.Errorf("cluster: migration of slot %d to group %d did not complete (aborted, slot stays on group %d)", slot, to, m.From)
	}
	return nil
}

// poll is the drain check (step 2).
func (m *Migration) poll() {
	if m.aborted {
		return
	}
	c := m.c
	sched := c.groups[m.From].sched
	if sched != nil {
		// Reclaim strays the commit point has passed, then test
		// quiescence. DirtyCount is a cheap occupancy counter gating
		// both register scans.
		if sched.DirtyCount() > 0 {
			sched.SweepStale()
		}
		if sched.DirtyCount() == 0 || sched.DirtyInSlot(m.Slot) == 0 {
			m.copyAndFlip()
			return
		}
		m.polls++
		if m.polls%migrateFlushEvery == 0 {
			// The slot still looks busy and nothing has cleared it: the
			// group may be idle with a stray entry whose completion was
			// lost. A write to a *different* slot of the same group
			// advances the commit point past the stray so the next
			// sweep reclaims it.
			c.flushWrite(m.From, m.Slot)
		}
	}
	c.eng.After(migratePollInterval, m.poll)
}

// copyAndFlip runs steps 3 and 4.
func (m *Migration) copyAndFlip() {
	m.copying = true
	c := m.c
	// Newest version of each object across the source replicas. After
	// the drain, replicas agree on every committed write of the slot;
	// the max-merge additionally covers a replica that lags in apply.
	merged := make(map[wire.ObjectID]store.Object)
	for _, r := range c.groups[m.From].replicas {
		for id, o := range r.ExtractSlot(m.Slot) {
			if cur, ok := merged[id]; !ok || cur.Seq.Less(o.Seq) {
				merged[id] = o
			}
		}
	}
	m.objects = len(merged)
	install := make(map[wire.ObjectID]store.Object, len(merged))
	for id, o := range merged {
		install[id] = store.Object{Value: o.Value, Seq: wire.Seq{Epoch: 0, N: o.Seq.N}}
	}
	// One control round trip plus a per-object transfer cost; the slot
	// stays frozen while the copy is in flight.
	delay := 2*c.cfg.LinkLatency + time.Duration(len(install))*migratePerObjectCost
	c.eng.After(delay, func() {
		for _, r := range c.groups[m.To].replicas {
			r.InstallSlot(install)
		}
		for _, r := range c.groups[m.From].replicas {
			r.DropSlot(m.Slot)
		}
		c.front.SetRoute(m.Slot, m.To)
		c.front.UnfreezeSlot(m.Slot)
		delete(c.migrations, m.Slot)
		m.done = true
	})
}

// flushWrite issues one control-plane write to group g, steering clear
// of avoidSlot and of frozen slots, so the group's last-committed
// point advances even when client load is idle. It uses the priming
// client identity (ClientID 0) with a request ID range of its own. If
// the group currently owns no eligible slot the nudge is skipped — the
// drain then waits on client traffic or an abort.
func (c *Cluster) flushWrite(g, avoidSlot int) {
	key, ok := c.keyInGroup(g, fmt.Sprintf("__flush__%d_", g), avoidSlot)
	if !ok {
		return
	}
	c.flushCtr++
	pkt := &wire.Packet{
		Op: wire.OpWrite, ObjID: wire.HashKey(key), Key: key,
		Group: uint16(g), ClientID: 0, ReqID: 1<<32 + c.flushCtr, Value: []byte{1},
	}
	c.net.Send(clientBase, switchAddr, pkt)
}
