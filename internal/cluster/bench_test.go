package cluster

import (
	"testing"
	"time"
)

// BenchmarkOpenLoopDriver measures the whole simulated data path end
// to end: Poisson arrivals through the weighted group draw, the
// switch scheduler, a chain group and an OUM multicast group, and the
// reply path. Each iteration is one 2ms open-loop window over a
// 2-group rack; the reported custom metric is simulated operations
// completed per wall second — the number the BENCH snapshots track.
func BenchmarkOpenLoopDriver(b *testing.B) {
	c := New(Config{
		UseHarmonia: true, Seed: 99,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 3, Weight: 2},
			{Protocol: NOPaxos, Replicas: 3, Weight: 1},
		},
	})
	c.Preload(256)
	var simOps uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := c.RunLoad(LoadSpec{
			Mode: Open, Rate: 400000, Duration: 2 * time.Millisecond,
			WriteRatio: 0.2, Keys: 256, Dist: Zipf09, PinGroups: true,
		})
		simOps += rep.Ops
	}
	b.StopTimer()
	if simOps == 0 {
		b.Fatal("no operations completed")
	}
	b.ReportMetric(float64(simOps)/b.Elapsed().Seconds(), "simops/s")
	b.ReportMetric(float64(simOps)/float64(b.N), "simops/iter")
}
