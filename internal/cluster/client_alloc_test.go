package cluster

import (
	"math/rand"
	"testing"
	"time"

	"harmonia/internal/metrics"
	"harmonia/internal/wire"
)

// TestPendingTabMatchesMap drives the open-addressed pending table and
// a reference map through the same randomized insert/lookup/delete
// sequence; the backward-shift delete must keep every surviving entry
// reachable.
func TestPendingTabMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab pendingTab
	ref := make(map[uint64]*opState)
	var live []uint64
	var next uint64
	for i := 0; i < 200000; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			next++
			st := &opState{}
			tab.put(next, st)
			ref[next] = st
			live = append(live, next)
		case op < 7: // delete (live key, or a guaranteed miss)
			if len(live) == 0 {
				if tab.del(next + 1) {
					t.Fatal("del of absent key reported true")
				}
				continue
			}
			j := rng.Intn(len(live))
			k := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if !tab.del(k) {
				t.Fatalf("del(%d) reported absent, want present", k)
			}
			delete(ref, k)
		default: // lookup
			if len(live) == 0 {
				continue
			}
			k := live[rng.Intn(len(live))]
			got, ok := tab.get(k)
			if !ok || got != ref[k] {
				t.Fatalf("get(%d) = (%p, %v), want (%p, true)", k, got, ok, ref[k])
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("len = %d, want %d", tab.len(), len(ref))
		}
	}
	seen := 0
	tab.each(func(st *opState) { seen++ })
	if seen != len(ref) {
		t.Fatalf("each visited %d entries, want %d", seen, len(ref))
	}
	for k, want := range ref {
		if got, ok := tab.get(k); !ok || got != want {
			t.Fatalf("final get(%d) = (%p, %v), want (%p, true)", k, got, ok, want)
		}
	}
}

// TestPendingTabSequentialWindow is the open-loop shape: a sliding
// window of sequential request IDs inserted and completed in order —
// the pattern that made identity hashing degenerate into one giant
// probe run.
func TestPendingTabSequentialWindow(t *testing.T) {
	var tab pendingTab
	const window, total = 512, 20000
	var lo, hi uint64
	for hi < total {
		for hi-lo < window {
			hi++
			tab.put(hi, &opState{})
		}
		lo++
		if !tab.del(lo) {
			t.Fatalf("del(%d) missed", lo)
		}
		if _, ok := tab.get(lo); ok {
			t.Fatalf("get(%d) found a deleted key", lo)
		}
		if _, ok := tab.get(lo + 1); !ok && lo+1 <= hi {
			t.Fatalf("get(%d) lost a live key after backward shift", lo+1)
		}
	}
	if tab.len() != int(hi-lo) {
		t.Fatalf("len = %d, want %d", tab.len(), hi-lo)
	}
}

// TestClientOpPathAllocs pins the client op path's allocation floor
// with tracing off: pending-table insert+delete, retry-timer arm via
// AfterCallT, the full completion path (reply match, timer stop, op
// recycle, packet release), and the chunked history record.
func TestClientOpPathAllocs(t *testing.T) {
	c := New(Config{
		UseHarmonia: true,
		GroupSpecs:  []GroupSpec{{Protocol: Chain, Replicas: 3}},
		Seed:        7,
	})

	// Pending-table insert + delete, steady state.
	var tab pendingTab
	st := &opState{}
	for i := uint64(1); i <= 64; i++ { // pre-grow past the test's load
		tab.put(i, st)
	}
	for i := uint64(1); i <= 64; i++ {
		tab.del(i)
	}
	req := uint64(64)
	if a := testing.AllocsPerRun(1000, func() {
		req++
		tab.put(req, st)
		tab.del(req)
	}); a != 0 {
		t.Errorf("pending insert+delete: %.2f allocs/op, want 0", a)
	}

	// Retry arm: AfterCallT + Stop must recycle the wheel node.
	eng := c.Engine()
	fn := func(any) {}
	if a := testing.AllocsPerRun(1000, func() {
		tm := eng.AfterCallT(time.Millisecond, fn, st)
		tm.Stop()
	}); a != 0 {
		t.Errorf("retry arm+stop: %.2f allocs/op, want 0", a)
	}

	// Completion: a pooled reply delivered to a client with the op
	// pending. collect is off (no measurement window), tracing off.
	meas := &measurement{
		c:    c,
		lat:  metrics.NewHistogram(),
		rlat: metrics.NewHistogram(),
		wlat: metrics.NewHistogram(),
	}
	v := c.newVClient(meas, nil, false)
	if a := testing.AllocsPerRun(1000, func() {
		v.nextReq++
		op := c.getOp()
		op.histIdx = -1
		op.pkt = wire.Packet{Op: wire.OpRead, ClientID: v.id, ReqID: v.nextReq}
		v.pending.put(v.nextReq, op)
		rep := wire.NewPacket()
		rep.Op, rep.ClientID, rep.ReqID = wire.OpReadReply, v.id, v.nextReq
		v.Recv(0, rep)
	}); a != 0 {
		t.Errorf("completion path: %.2f allocs/op, want 0", a)
	}

	// History record: invoke+ret amortize to one chunk allocation per
	// recorderChunkSize ops.
	rec := newRecorder()
	if a := testing.AllocsPerRun(2*recorderChunkSize, func() {
		idx := rec.invoke(1, false, 0, 10)
		rec.ret(idx, 20, 42)
	}); a > 0.01 {
		t.Errorf("history record: %.4f allocs/op, want ≤ 1/%d", a, recorderChunkSize)
	}

	// Value encode from the arena: one chunk per 8192 writes.
	var va valueArena
	id := int64(0)
	if a := testing.AllocsPerRun(10000, func() {
		id++
		b := va.encode(id)
		if decodeValue(b) != id {
			t.Fatal("arena value roundtrip failed")
		}
	}); a > 0.01 {
		t.Errorf("value encode: %.4f allocs/op, want ≤ 8/%d", a, valueArenaChunk)
	}
}
