package cluster

import (
	"fmt"
	"math/rand"

	"harmonia/internal/lincheck"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// recorder captures the operation history for linearizability
// checking in fixed-size chunks: an append-only arena, so recording an
// op never re-copies the accumulated history the way a single growing
// slice would, and the slot index arithmetic stays two shifts.
type recorder struct {
	chunks [][]lincheck.Op // every chunk is capped at recorderChunkSize
	n      int
}

const (
	recorderChunkShift = 12
	recorderChunkSize  = 1 << recorderChunkShift
)

func newRecorder() *recorder { return &recorder{} }

// add appends one record and returns its slot index.
func (r *recorder) add(op lincheck.Op) int {
	ci := r.n >> recorderChunkShift
	if ci == len(r.chunks) {
		r.chunks = append(r.chunks, make([]lincheck.Op, 0, recorderChunkSize))
	}
	r.chunks[ci] = append(r.chunks[ci], op)
	idx := r.n
	r.n++
	return idx
}

// at returns the record in slot idx.
func (r *recorder) at(idx int) *lincheck.Op {
	return &r.chunks[idx>>recorderChunkShift][idx&(recorderChunkSize-1)]
}

// all flattens the history into one slice (checker input; cold path).
func (r *recorder) all() []lincheck.Op {
	out := make([]lincheck.Op, 0, r.n)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return out
}

// invoke registers an operation start and returns its slot index.
func (r *recorder) invoke(key uint64, write bool, value int64, at int64) int {
	return r.add(lincheck.Op{
		Key: key, Write: write, Value: value, Invoke: at, Return: -1,
	})
}

// ret completes the op in slot idx. Reads record the observed value.
func (r *recorder) ret(idx int, at int64, observed int64) {
	op := r.at(idx)
	op.Return = at
	if !op.Write {
		op.Value = observed
	}
}

// preload records an instantaneous write at time 0, representing data
// installed before the run.
func (r *recorder) preload(key uint64, value int64) {
	r.add(lincheck.Op{Key: key, Write: true, Value: value, Invoke: 0, Return: 0})
}

// History returns the recorded operations.
func (c *Cluster) History() []lincheck.Op {
	return c.hist.all()
}

// CheckLinearizability verifies the recorded history.
func (c *Cluster) CheckLinearizability() lincheck.Result {
	return lincheck.Check(c.hist.all())
}

// CheckLinearizabilityGroup verifies the slice of the recorded history
// owned by replica group g. Because the key space is partitioned and
// linearizability is compositional, each group's history stands on its
// own — this is the per-shard verdict a sharded deployment monitors.
// Ownership follows the front-end's current slot table, so a migrated
// key's entire history (including operations served by its old group
// before the handoff) is checked as one piece in its new group's
// slice, never split across verdicts.
func (c *Cluster) CheckLinearizabilityGroup(g int) lincheck.Result {
	if g < 0 || g >= len(c.groups) {
		return lincheck.Result{Reason: fmt.Sprintf("group %d out of range", g)}
	}
	var ops []lincheck.Op
	for _, ch := range c.hist.chunks {
		for _, op := range ch {
			if c.routeObj(wire.ObjectID(op.Key)) == g {
				ops = append(ops, op)
			}
		}
	}
	return lincheck.Check(ops)
}

// CheckLinearizabilityKey verifies the slice of the recorded history
// touching a single key. A promoted hot key's operations span several
// replica groups, so neither the whole-history nor the per-group
// verdict isolates it; this is the check the hot-key chaos tests lean
// on to show the replicated fast path never reorders that one register.
func (c *Cluster) CheckLinearizabilityKey(key string) lincheck.Result {
	id := uint64(wire.HashKey(key))
	var ops []lincheck.Op
	for _, ch := range c.hist.chunks {
		for _, op := range ch {
			if op.Key == id {
				ops = append(ops, op)
			}
		}
	}
	// A promoted key is by definition absurdly contended; raise the
	// default per-key op cap so the verdict stays decided.
	return lincheck.CheckConfig(ops, lincheck.Config{MaxOpsPerKey: 1 << 14})
}

// --- key generators (thin adapters over internal/workload) ---

func newUniformGen(n int, rng *rand.Rand) keyGen { return workload.NewUniform(n, rng) }

func newZipfGen(n int, theta float64, rng *rand.Rand) keyGen {
	return workload.NewZipfianTheta(n, theta, rng)
}
