package cluster

import (
	"testing"
	"time"

	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// quickSpec is a small mixed workload for functional tests.
func quickSpec() LoadSpec {
	return LoadSpec{
		Mode: Closed, Clients: 16, Duration: 20 * time.Millisecond,
		Warmup: 2 * time.Millisecond, WriteRatio: 0.1, Keys: 64,
	}
}

func allProtocols() []Protocol { return []Protocol{PB, Chain, CRAQ, VR, NOPaxos} }

func TestEveryProtocolServesLoad(t *testing.T) {
	for _, p := range allProtocols() {
		for _, harmonia := range []bool{false, true} {
			if p == CRAQ && harmonia {
				continue // CRAQ is the no-switch baseline
			}
			name := p.String()
			if harmonia {
				name = "Harmonia(" + name + ")"
			}
			t.Run(name, func(t *testing.T) {
				c := New(Config{Protocol: p, Replicas: 3, UseHarmonia: harmonia, Seed: 7})
				rep := c.RunLoad(quickSpec())
				if rep.Ops == 0 {
					t.Fatal("no operations completed")
				}
				if rep.Reads == 0 || rep.Writes == 0 {
					t.Fatalf("mix not exercised: reads=%d writes=%d", rep.Reads, rep.Writes)
				}
			})
		}
	}
}

func TestLinearizabilityAllProtocols(t *testing.T) {
	for _, p := range allProtocols() {
		for _, harmonia := range []bool{false, true} {
			if p == CRAQ && harmonia {
				continue
			}
			name := p.String()
			if harmonia {
				name = "Harmonia(" + name + ")"
			}
			t.Run(name, func(t *testing.T) {
				c := New(Config{
					Protocol: p, Replicas: 3, UseHarmonia: harmonia,
					RecordHistory: true, Seed: 11,
				})
				// Contended but small enough for the checker: ~6
				// clients × 8ms ≈ 1500 ops over 12 keys.
				spec := quickSpec()
				spec.Keys = 12
				spec.WriteRatio = 0.3
				spec.Clients = 6
				spec.Duration = 8 * time.Millisecond
				c.RunLoad(spec)
				c.RunFor(10 * time.Millisecond) // settle in-flight ops
				res := c.CheckLinearizability()
				if !res.Decided {
					t.Fatalf("undecided: %s", res.Reason)
				}
				if !res.Ok {
					t.Fatalf("linearizability violated: %s", res.Reason)
				}
			})
		}
	}
}

func TestLinearizabilityUnderLossyNetwork(t *testing.T) {
	for _, p := range []Protocol{Chain, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{
				Protocol: p, Replicas: 3, UseHarmonia: true,
				RecordHistory: true, Seed: 13,
				DropProb: 0.02, ReorderProb: 0.1, ReorderDelay: 50 * time.Microsecond,
			})
			spec := quickSpec()
			spec.Keys = 12
			spec.WriteRatio = 0.3
			spec.Clients = 6
			spec.Duration = 10 * time.Millisecond
			c.RunLoad(spec)
			c.RunFor(20 * time.Millisecond)
			res := c.CheckLinearizability()
			if !res.Decided {
				t.Fatalf("undecided: %s", res.Reason)
			}
			if !res.Ok {
				t.Fatalf("linearizability violated under loss: %s", res.Reason)
			}
		})
	}
}

func TestHarmoniaUsesFastPath(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 3})
	spec := quickSpec()
	spec.WriteRatio = 0.05
	c.RunLoad(spec)
	st := c.Scheduler().Stats
	if st.FastReads == 0 {
		t.Fatal("no fast-path reads scheduled")
	}
	if st.FastReads < st.NormalReads {
		t.Fatalf("fast path underused: fast=%d normal=%d", st.FastReads, st.NormalReads)
	}
}

func TestBaselineNeverUsesFastPath(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: false, Seed: 3})
	c.RunLoad(quickSpec())
	if st := c.Scheduler().Stats; st.FastReads != 0 {
		t.Fatalf("baseline used fast path %d times", st.FastReads)
	}
}

func TestHarmoniaReadThroughputScales(t *testing.T) {
	// The headline claim in miniature: Harmonia(CR) with 3 replicas
	// should deliver ≥ 2× the read-only throughput of CR.
	run := func(h bool) float64 {
		c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: h, Seed: 5})
		rep := c.RunLoad(LoadSpec{
			Mode: Closed, Clients: 192, Duration: 30 * time.Millisecond,
			Warmup: 5 * time.Millisecond, WriteRatio: 0, Keys: 10000,
		})
		return rep.Throughput
	}
	cr := run(false)
	harmonia := run(true)
	if harmonia < 2*cr {
		t.Fatalf("no read scaling: CR=%.0f Harmonia=%.0f", cr, harmonia)
	}
	// CR read-only throughput should be near one server's capacity
	// (0.92 MQPS ±25%).
	if cr < 0.6e6 || cr > 1.2e6 {
		t.Fatalf("CR baseline off calibration: %.0f ops/s", cr)
	}
}

func TestWriteOnlyThroughputUnchanged(t *testing.T) {
	run := func(h bool) float64 {
		c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: h, Seed: 5})
		rep := c.RunLoad(LoadSpec{
			Mode: Closed, Clients: 192, Duration: 30 * time.Millisecond,
			Warmup: 5 * time.Millisecond, WriteRatio: 1, Keys: 100000,
		})
		return rep.Throughput
	}
	cr, harmonia := run(false), run(true)
	ratio := harmonia / cr
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("write path changed by Harmonia: CR=%.0f Harmonia=%.0f", cr, harmonia)
	}
}

func TestSwitchFailoverRestoresService(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		RecordHistory: true, Seed: 9,
	})
	spec := quickSpec()
	spec.Duration = 60 * time.Millisecond
	spec.Clients = 4
	spec.Keys = 48
	spec.WriteRatio = 0.2

	// Inject failure mid-run.
	c.eng.After(15*time.Millisecond, func() { c.StopSwitch() })
	c.eng.After(25*time.Millisecond, func() { c.ReactivateSwitch() })
	rep := c.RunLoad(spec)
	if rep.Ops == 0 {
		t.Fatal("no ops at all")
	}
	// New epoch active and serving fast reads again.
	if c.Scheduler().Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", c.Scheduler().Epoch())
	}
	if !c.Scheduler().Ready() {
		t.Fatal("replacement switch never became ready")
	}
	c.RunFor(20 * time.Millisecond)
	res := c.CheckLinearizability()
	if !res.Decided || !res.Ok {
		t.Fatalf("failover violated linearizability: %+v", res)
	}
}

func TestOldEpochFastReadsRefusedAfterFailover(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 9})
	c.StopSwitch()
	c.ReactivateSwitch()
	c.RunFor(5 * time.Millisecond) // agreement completes
	// Hand-craft an old-epoch fast read straight to a replica.
	pkt := &wire.Packet{
		Op: wire.OpRead, ObjID: wire.HashKey("obj00000001"), Key: "obj00000001",
		Flags: wire.FlagFastPath, LastCommitted: wire.Seq{Epoch: 1, N: 999},
		ClientID: 1, ReqID: 12345,
	}
	c.net.Send(clientBase, replicaBase+1, pkt)
	c.RunFor(5 * time.Millisecond)
	// The read must have been forwarded to the normal path, not
	// answered locally — observable via scheduler stats after it
	// passed back through the switch... it goes straight to the tail.
	// Simplest check: the packet reached the tail as FlagForwarded,
	// meaning the lease gate fired. We verify via replica counters.
	type fastStats interface {
		Stats() (served, rejected, lease uint64)
	}
	_ = fastStats(nil)
	// (chain replicas expose Base counters directly)
	if h, ok := c.replicas[1].(chainHandle); !ok || h.r.LeaseRejected == 0 {
		t.Fatal("old-epoch fast read was not refused by the lease gate")
	}
}

func TestCrashBackupKeepsServing(t *testing.T) {
	for _, p := range []Protocol{PB, Chain, VR, NOPaxos} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(Config{Protocol: p, Replicas: 3, UseHarmonia: true, Seed: 21})
			crash := 2 // last replica: chain tail / pb backup / vr+nopaxos follower
			if err := c.CrashReplica(crash); err != nil {
				t.Fatal(err)
			}
			spec := quickSpec()
			spec.Duration = 30 * time.Millisecond
			rep := c.RunLoad(spec)
			if rep.Ops == 0 {
				t.Fatal("no ops after crash")
			}
			if rep.Writes == 0 {
				t.Fatal("writes stalled after crash")
			}
		})
	}
}

func TestVRLeaderCrashTriggersViewChange(t *testing.T) {
	c := New(Config{Protocol: VR, Replicas: 3, UseHarmonia: true, Seed: 23, RecordHistory: true})
	if err := c.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(100 * time.Millisecond) // view change timers fire
	spec := quickSpec()
	spec.Duration = 8 * time.Millisecond
	spec.Clients = 4
	spec.Keys = 16
	rep := c.RunLoad(spec)
	if rep.Writes == 0 {
		t.Fatal("writes never resumed after leader crash")
	}
	c.RunFor(20 * time.Millisecond)
	res := c.CheckLinearizability()
	if !res.Decided || !res.Ok {
		t.Fatalf("leader failover violated linearizability: %+v", res)
	}
}

func TestCrashPrimaryRejected(t *testing.T) {
	c := New(Config{Protocol: PB, Replicas: 3, Seed: 1})
	if err := c.CrashReplica(0); err == nil {
		t.Fatal("PB primary crash should be rejected (needs external config service)")
	}
}

func TestPreloadVisibleToReads(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 1, RecordHistory: true})
	c.Preload(10)
	spec := quickSpec()
	spec.WriteRatio = 0
	spec.Keys = 10
	spec.Clients = 4
	spec.Duration = 5 * time.Millisecond
	rep := c.RunLoad(spec)
	if rep.Ops == 0 {
		t.Fatal("no reads")
	}
	c.RunFor(10 * time.Millisecond)
	res := c.CheckLinearizability()
	if !res.Decided || !res.Ok {
		t.Fatalf("preloaded reads inconsistent: %+v", res)
	}
}

func TestOpenLoopLatencyRisesWithLoad(t *testing.T) {
	lat := func(rate float64) time.Duration {
		c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: false, Seed: 31})
		rep := c.RunLoad(LoadSpec{
			Mode: Open, Rate: rate, Duration: 30 * time.Millisecond,
			Warmup: 5 * time.Millisecond, WriteRatio: 0, Keys: 10000,
		})
		if rep.Ops == 0 {
			t.Fatalf("open loop at %v op/s completed nothing", rate)
		}
		return rep.Latency.Mean()
	}
	low := lat(0.1e6)
	high := lat(0.85e6) // near CR's single-server read capacity
	if high <= low {
		t.Fatalf("latency did not rise near saturation: low=%v high=%v", low, high)
	}
}

func TestSmallDirtySetDropsWritesUnderLoad(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 4, Seed: 17,
	})
	spec := quickSpec()
	spec.WriteRatio = 0.5
	spec.Clients = 32
	spec.Keys = 1000
	rep := c.RunLoad(spec)
	if c.Scheduler().Stats.WritesDropped == 0 {
		t.Fatal("tiny dirty set never dropped a write")
	}
	// Drops are no longer silent: the switch's FlagDropped reply drives
	// an immediate reissue, counted distinctly from timeout retries.
	if rep.Dropped == 0 {
		t.Fatal("dropped writes never surfaced to the clients")
	}
	if rep.Ops == 0 || rep.Writes == 0 {
		t.Fatalf("cluster stalled under write drops: %+v", rep)
	}
}

// buildLaggardVR builds a 3-replica Harmonia(VR) cluster where replica
// 2's inbound replica links are slow, so it chronically lags the
// commit point — the §3 read-behind scenario. EagerCompletions makes
// the switch's commit stamp run ahead of the laggard (the normal
// delayed-completion policy would otherwise wait for it), which is
// precisely the situation the §7.3 replica-side check exists for.
func buildLaggardVR(seed int64, disableCheck bool) *Cluster {
	c := New(Config{
		Protocol: VR, Replicas: 3, UseHarmonia: true,
		EagerCompletions:  true,
		DisableReadChecks: disableCheck, RecordHistory: true, Seed: seed,
	})
	slow := simnet.LinkConfig{Latency: 300 * time.Microsecond}
	c.net.SetLink(replicaBase, replicaBase+2, slow)
	c.net.SetLink(replicaBase+1, replicaBase+2, slow)
	return c
}

func laggardSpec() LoadSpec {
	return LoadSpec{
		Mode: Closed, Clients: 4, Duration: 6 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 0.3, Keys: 3,
	}
}

func TestVisibilityCheckProtectsLaggingReplica(t *testing.T) {
	// With the §7.3 check in place, the chronically lagging replica
	// rejects stale fast reads and the history stays linearizable.
	c := buildLaggardVR(1, false)
	c.RunLoad(laggardSpec())
	c.RunFor(10 * time.Millisecond)
	var rejected uint64
	for _, h := range c.replicas {
		rejected += h.(vrHandle).r.FastRejected
	}
	if rejected == 0 {
		t.Fatal("lagging replica never exercised the visibility check")
	}
	res := c.CheckLinearizability()
	if !res.Decided {
		t.Fatalf("undecided: %s", res.Reason)
	}
	if !res.Ok {
		t.Fatalf("protected run violated linearizability: %s", res.Reason)
	}
}

func TestAblationNoReadCheckViolatesLinearizability(t *testing.T) {
	// With the §7 replica-side check disabled, the dirty set alone
	// cannot prevent stale fast-path reads (§5.2's argument): the
	// lagging replica serves them and the checker catches the
	// anomaly.
	violated := false
	for seed := int64(1); seed <= 4 && !violated; seed++ {
		c := buildLaggardVR(seed, true)
		c.RunLoad(laggardSpec())
		c.RunFor(10 * time.Millisecond)
		var unsafeServed uint64
		for _, h := range c.replicas {
			unsafeServed += h.(vrHandle).r.UnsafeServed
		}
		if unsafeServed == 0 {
			continue // this seed never hit the race; try another
		}
		res := c.CheckLinearizability()
		if res.Decided && !res.Ok {
			violated = true
		}
	}
	if !violated {
		t.Fatal("ablated fast-read check never produced a detectable anomaly; " +
			"either the checker or the ablation is broken")
	}
}

func TestSchedulerStatsAccumulate(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Seed: 1})
	c.RunLoad(quickSpec())
	st := c.Scheduler().Stats
	if st.Writes == 0 || st.Completions == 0 {
		t.Fatalf("write path stats empty: %+v", st)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		c := New(Config{Protocol: VR, Replicas: 3, UseHarmonia: true, Seed: 99})
		rep := c.RunLoad(quickSpec())
		return rep.Ops, rep.Retries
	}
	o1, r1 := run()
	o2, r2 := run()
	if o1 != o2 || r1 != r2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", o1, r1, o2, r2)
	}
}
