package cluster

import (
	"runtime"
	"testing"
	"time"

	"harmonia/internal/trace"
	"harmonia/internal/wire"
)

// TestTraceLatencyBreakdownReconciles pins the telescoping identity at
// cluster scale: on a drop-free run with every op sampled, the five
// phase histograms hold exactly one observation per completed op, and
// their sums reconcile with the end-to-end latency histogram within the
// 5% acceptance bound (the identity makes them match exactly; the bound
// only allows for histogram-independent counting differences).
func TestTraceLatencyBreakdownReconciles(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2,
		Switches: 2, Seed: 7,
		Trace: trace.Config{SampleEvery: 1, Capacity: 2048},
	})
	rep := c.RunLoad(LoadSpec{
		Mode: Closed, Clients: 8, Duration: 8 * time.Millisecond,
		Warmup: time.Millisecond, WriteRatio: 0.3, Keys: 64, Dist: Uniform,
	})
	if rep.Ops == 0 {
		t.Fatal("no operations completed")
	}
	bd := rep.LatencyBreakdown
	if bd == nil {
		t.Fatal("LatencyBreakdown nil with Config.Trace armed")
	}
	// Every sampled completion contributes one observation to EACH
	// phase histogram, and at SampleEvery=1 the sampled set is the
	// observed set.
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if got := bd.Overall.Phase(p).Count(); got != rep.Latency.Count() {
			t.Fatalf("phase %v count = %d, want %d (one per completed op)",
				p, got, rep.Latency.Count())
		}
	}
	var phaseSum time.Duration
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		phaseSum += bd.Overall.Phase(p).Sum()
	}
	e2e := rep.Latency.Sum()
	diff := phaseSum - e2e
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(e2e) {
		t.Fatalf("phase sums %v vs end-to-end %v: off by %.1f%%, want ≤5%%",
			phaseSum, e2e, 100*float64(diff)/float64(e2e))
	}
	// The per-group and per-switch views partition the same ops.
	var groupCnt, switchCnt uint64
	for _, g := range bd.Groups {
		if g != nil {
			groupCnt += g.Queue.Count()
		}
	}
	for _, s := range bd.Switches {
		if s != nil {
			switchCnt += s.Queue.Count()
		}
	}
	if groupCnt != rep.Latency.Count() || switchCnt != rep.Latency.Count() {
		t.Fatalf("per-group %d / per-switch %d counts, want %d each",
			groupCnt, switchCnt, rep.Latency.Count())
	}
}

// TestTraceEventsHotKeyLifecycle drives a manual promote → write
// (invalidate + refresh) → demote arc and checks the flight recorder
// kept the whole story in order for that object.
func TestTraceEventsHotKeyLifecycle(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 3,
		HotKeys: true, Seed: 31,
	})
	cl := c.NewSyncClient()
	const key = "celebrity"
	if err := cl.Set(key, []byte("v1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := c.PromoteKey(key); err != nil {
		t.Fatalf("PromoteKey: %v", err)
	}
	c.RunFor(time.Millisecond) // seeding refresh
	if err := cl.Set(key, []byte("v2")); err != nil {
		t.Fatalf("Set v2: %v", err)
	}
	c.RunFor(time.Millisecond) // write-cued refresh
	if !c.DemoteKey(key) {
		t.Fatal("DemoteKey reported not promoted")
	}

	id := uint64(wire.HashKey(key))
	idx := map[trace.EventKind]int{}
	for i, e := range c.Events() {
		if e.Arg != id {
			continue
		}
		switch e.Kind {
		case trace.EvHotPromote:
			idx[e.Kind] = i
		case trace.EvHotInvalidate, trace.EvHotRefresh, trace.EvHotDemote:
			// Keep the LAST invalidate/refresh and the demote; order is
			// checked pairwise below.
			if _, seen := idx[e.Kind]; !seen || e.Kind != trace.EvHotInvalidate {
				idx[e.Kind] = i
			}
		}
	}
	for _, k := range []trace.EventKind{
		trace.EvHotPromote, trace.EvHotInvalidate, trace.EvHotRefresh, trace.EvHotDemote,
	} {
		if _, ok := idx[k]; !ok {
			t.Fatalf("no %v event recorded for object %d", k, id)
		}
	}
	if !(idx[trace.EvHotPromote] < idx[trace.EvHotInvalidate] &&
		idx[trace.EvHotInvalidate] < idx[trace.EvHotRefresh] &&
		idx[trace.EvHotRefresh] < idx[trace.EvHotDemote]) {
		t.Fatalf("lifecycle out of order: promote@%d invalidate@%d refresh@%d demote@%d",
			idx[trace.EvHotPromote], idx[trace.EvHotInvalidate],
			idx[trace.EvHotRefresh], idx[trace.EvHotDemote])
	}
}

// TestTraceEventsMigration checks the recorder sees a slot handoff's
// start and flip — and an early-cancelled batch's abort.
func TestTraceEventsMigration(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 11,
	})
	c.Preload(64)
	const slot = 7
	from := c.SlotTable()[slot]
	m, err := c.StartSlotMigration(slot, 1-from)
	if err != nil {
		t.Fatalf("StartSlotMigration: %v", err)
	}
	for i := 0; i < 20 && !m.Done(); i++ {
		c.RunFor(time.Millisecond)
	}
	if !m.Done() || m.Aborted() {
		t.Fatalf("migration done=%v aborted=%v", m.Done(), m.Aborted())
	}

	abortSlot := -1
	for s := 0; s < wire.NumSlots; s++ {
		if s != slot && c.SlotTable()[s] == from {
			abortSlot = s
			break
		}
	}
	ma, err := c.StartBatchMigration([]int{abortSlot}, 1-from)
	if err != nil {
		t.Fatalf("StartBatchMigration: %v", err)
	}
	if !ma.Abort() {
		t.Fatal("Abort before the copy stage must succeed")
	}

	var start, flip, abort bool
	for _, e := range c.Events() {
		switch {
		case e.Kind == trace.EvMigrationStart && int(e.Slot) == slot:
			if int(e.Group) != from || int(e.Arg) != 1-from {
				t.Fatalf("start event groups: src=%d dst=%d", e.Group, e.Arg)
			}
			start = true
		case e.Kind == trace.EvMigrationFlip && int(e.Slot) == slot:
			if int(e.Group) != 1-from || int(e.Arg) != from {
				t.Fatalf("flip event groups: dst=%d src=%d", e.Group, e.Arg)
			}
			flip = true
		case e.Kind == trace.EvMigrationAbort && int(e.Slot) == abortSlot:
			abort = true
		}
	}
	if !start || !flip || !abort {
		t.Fatalf("missing migration events: start=%v flip=%v abort=%v", start, flip, abort)
	}
}

// TestTraceEventsSwitchReplacement checks the crash / reactivate /
// agreement-complete sequence lands in the recorder.
func TestTraceEventsSwitchReplacement(t *testing.T) {
	c := New(Config{
		Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 4,
		Switches: 2, Seed: 13,
	})
	if err := c.CrashSwitch(1); err != nil {
		t.Fatalf("CrashSwitch: %v", err)
	}
	c.RunFor(time.Millisecond)
	if err := c.ReactivateSwitch(1); err != nil {
		t.Fatalf("ReactivateSwitch: %v", err)
	}
	c.RunFor(5 * time.Millisecond) // let the §5.3 agreement finish

	var crash, react, agree bool
	for _, e := range c.Events() {
		if int(e.Switch) != 1 {
			continue
		}
		switch e.Kind {
		case trace.EvSwitchCrash:
			crash = true
		case trace.EvSwitchReactivate:
			if e.Arg < 2 {
				t.Fatalf("reactivate epoch = %d, want ≥2", e.Arg)
			}
			react = true
		case trace.EvAgreement:
			if e.Arg == 0 {
				t.Fatal("agreement event has zero latency")
			}
			agree = true
		}
	}
	if !crash || !react || !agree {
		t.Fatalf("missing replacement events: crash=%v reactivate=%v agreement=%v",
			crash, react, agree)
	}
}

// TestTraceRecorderAccessors smoke-tests the cluster-level accessors so
// regressions in wiring (not just the trace package) get caught.
func TestTraceRecorderAccessors(t *testing.T) {
	c := New(Config{Protocol: Chain, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 3})
	if c.DroppedEvents() != 0 {
		t.Fatal("fresh cluster dropped events")
	}
	if len(c.Events()) != 0 {
		t.Fatal("fresh cluster has events")
	}
}

// driverAllocsPerOp measures steady-state heap allocations per
// completed op across one open-loop window, after a warmup window has
// populated the packet and op pools.
func driverAllocsPerOp(c *Cluster) float64 {
	c.RunLoad(LoadSpec{ // warmup: grow pools, tables, histograms
		Mode: Open, Rate: 400000, Duration: 2 * time.Millisecond,
		WriteRatio: 0.2, Keys: 256, Dist: Zipf09, PinGroups: true,
	})
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rep := c.RunLoad(LoadSpec{
		Mode: Open, Rate: 400000, Duration: 40 * time.Millisecond,
		WriteRatio: 0.2, Keys: 256, Dist: Zipf09, PinGroups: true,
	})
	runtime.ReadMemStats(&m1)
	if rep.Ops == 0 {
		return -1
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(rep.Ops)
}

// benchDriverCluster builds the BenchmarkOpenLoopDriver rack with an
// optional tracing config, so alloc comparisons hold everything else
// fixed.
func benchDriverCluster(tc trace.Config) *Cluster {
	c := New(Config{
		UseHarmonia: true, Seed: 99,
		GroupSpecs: []GroupSpec{
			{Protocol: Chain, Replicas: 3, Weight: 2},
			{Protocol: NOPaxos, Replicas: 3, Weight: 1},
		},
		Trace: tc,
	})
	c.Preload(256)
	return c
}

// TestTraceDriverAllocRegression pins the data-plane cost of tracing
// on the open-loop driver. The driver itself carries a pre-existing
// ~3 allocs/op floor (simulated-clock timer events, identical before
// this feature); what tracing must guarantee is differential: with
// tracing off the guarded hooks are a nil check and add NOTHING, and
// 1-in-1024 sampling stays within 2 extra allocs/op (spans are pooled;
// the breakdown histograms are per-RunLoad, amortized).
func TestTraceDriverAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	off := driverAllocsPerOp(benchDriverCluster(trace.Config{}))
	sampled := driverAllocsPerOp(benchDriverCluster(trace.Config{SampleEvery: 1024}))
	if off < 0 || sampled < 0 {
		t.Fatal("no operations completed")
	}
	if off > 3.5 {
		t.Fatalf("tracing off: %.2f allocs/op, above the driver's pre-tracing floor (~3)", off)
	}
	if delta := sampled - off; delta > 2 {
		t.Fatalf("1-in-1024 sampling adds %.2f allocs/op over tracing-off (%.2f vs %.2f), want ≤2",
			delta, sampled, off)
	}
}
