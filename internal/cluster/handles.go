package cluster

import (
	"harmonia/internal/protocol/chain"
	"harmonia/internal/protocol/craq"
	"harmonia/internal/protocol/nopaxos"
	"harmonia/internal/protocol/pb"
	"harmonia/internal/protocol/vr"
	"harmonia/internal/simnet"
	"harmonia/internal/wire"
)

// The handle adapters give the cluster a uniform view of the five
// replica types: message delivery plus the preload hook used to warm
// the key space without driving millions of protocol writes.

type pbHandle struct{ r *pb.Replica }

func (h pbHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h pbHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}

type chainHandle struct{ r *chain.Replica }

func (h chainHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h chainHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}

type craqHandle struct{ r *craq.Replica }

func (h craqHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h craqHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.PreloadClean(id, value, 0)
}

type vrHandle struct{ r *vr.Replica }

func (h vrHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h vrHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}

type nopaxosHandle struct{ r *nopaxos.Replica }

func (h nopaxosHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h nopaxosHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}
